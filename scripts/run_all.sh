#!/usr/bin/env bash
# Build, test, and regenerate every paper table/figure.
# Usage: scripts/run_all.sh [build-dir]
set -euo pipefail
BUILD="${1:-build}"
cd "$(dirname "$0")/.."

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

for b in "$BUILD"/bench/*; do
    [ -x "$b" ] || continue
    echo "### $(basename "$b")"
    "$b"
done 2>&1 | tee bench_output.txt

#!/usr/bin/env bash
# Build, test, and regenerate every paper table/figure.
#
# Benchmark binaries run fault-isolated: one failing experiment is
# recorded in the summary table instead of aborting the sweep (see
# docs/robustness.md). Exit status is nonzero if anything failed.
#
# Usage: scripts/run_all.sh [build-dir]
set -uo pipefail
BUILD="${1:-build}"
cd "$(dirname "$0")/.."

# Build + unit tests must succeed before any sweep is worth running.
set -e
if [ -f "$BUILD/CMakeCache.txt" ]; then
    cmake -B "$BUILD"
else
    cmake -B "$BUILD" -G Ninja
fi
cmake --build "$BUILD"
ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt
set +e

declare -a names statuses
failures=0
: > bench_output.txt
for b in "$BUILD"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "### $name" | tee -a bench_output.txt
    "$b" >> bench_output.txt 2>&1
    rc=$?
    names+=("$name")
    if [ "$rc" -eq 0 ]; then
        statuses+=("pass")
    else
        statuses+=("FAIL (exit $rc)")
        failures=$((failures + 1))
    fi
done

echo
echo "=== benchmark summary ==="
for i in "${!names[@]}"; do
    printf '%-40s %s\n' "${names[$i]}" "${statuses[$i]}"
done

if [ "$failures" -ne 0 ]; then
    echo "error: $failures benchmark binaries failed (see bench_output.txt)" >&2
    exit 1
fi

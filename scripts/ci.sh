#!/usr/bin/env bash
# Tier-1 CI gate: build and run the unit/integration test suite three
# ways — plain (with VRSIM_JOBS=2 so every sweep-driven test exercises
# the parallel executor), under AddressSanitizer + UBSan, and under
# ThreadSanitizer for the concurrency-bearing subset (sweep runner,
# workload cache) (VRSIM_SANITIZE, see CMakeLists.txt) — then runs a
# differential-check stage under standalone UBSan: a small real grid
# with --check-digests (every technique's committed stream must hash
# identically to the OoO baseline's) plus a repro-bundle replay
# round-trip smoke. Bench smoke tests are included; the full figure
# sweeps live in scripts/run_all.sh.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail
JOBS="${1:-$(nproc)}"
cd "$(dirname "$0")/.."

echo "=== plain build (VRSIM_JOBS=2) ==="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-ci -j "$JOBS"
VRSIM_JOBS=2 ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== sanitized build (ASan + UBSan) ==="
cmake -B build-ci-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVRSIM_SANITIZE=address
cmake --build build-ci-asan -j "$JOBS"
ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS"

echo "=== sanitized build (TSan: sweep runner + workload cache) ==="
cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVRSIM_SANITIZE=tsan
cmake --build build-ci-tsan -j "$JOBS" \
    --target driver_sweep_runner_test workloads_cache_test
VRSIM_JOBS=4 ctest --test-dir build-ci-tsan --output-on-failure \
    -j "$JOBS" -R 'SweepRunner|RunPlan|ResultTable|WorkloadCache'

echo "=== differential check (UBSan build, small grid) ==="
cmake -B build-ci-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVRSIM_SANITIZE=undefined
cmake --build build-ci-ubsan -j "$JOBS" --target vrsim

# Every technique column must commit a stream hashing identically to
# the OoO baseline's, on real (scaled-down) workloads, in parallel.
for spec in camel kangaroo hj2; do
    VRSIM_JOBS=2 build-ci-ubsan/tools/vrsim \
        --workload "$spec" --all-techniques --check-digests \
        --roi 8000 --warmup 1000 --nodes 2048 --degree 8 \
        --elems 2048 --format csv >/dev/null
done
echo "differential check: all techniques match the OoO baseline"

# Repro-bundle replay round-trip: an injected divergence must be
# flagged, bundled, and reproduce (exit 70) under --replay.
REPRO_DIR="$(mktemp -d)"
trap 'rm -rf "$REPRO_DIR"' EXIT
rc=0
VRSIM_JOBS=2 build-ci-ubsan/tools/vrsim \
    --workload camel --all-techniques --check-digests --keep-going \
    --inject-fail vr:diverge --repro-dir "$REPRO_DIR" \
    --roi 8000 --warmup 1000 --nodes 2048 --degree 8 --elems 2048 \
    --format csv >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "replay smoke: injected divergence exited $rc, expected 1" >&2
    exit 1
fi
rc=0
build-ci-ubsan/tools/vrsim --replay "$REPRO_DIR/camel_VR.json" \
    >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 70 ]; then
    echo "replay smoke: --replay exited $rc, expected 70" >&2
    exit 1
fi
echo "replay smoke: bundle reproduced the divergence (exit 70)"

echo "ci: all configurations passed"

#!/usr/bin/env bash
# Tier-1 CI gate: build and run the unit/integration test suite three
# ways — plain (with VRSIM_JOBS=2 so every sweep-driven test exercises
# the parallel executor), under AddressSanitizer + UBSan, and under
# ThreadSanitizer for the concurrency-bearing subset (sweep runner,
# workload cache) (VRSIM_SANITIZE, see CMakeLists.txt) — then runs a
# differential-check stage under standalone UBSan: a small real grid
# with --check-digests (every technique's committed stream must hash
# identically to the OoO baseline's) plus a repro-bundle replay
# round-trip smoke. A throughput stage regenerates
# BENCH_throughput.json (two specs, all techniques, enriched with
# commit/date/simulated-inst counts) and fails on a >20% camel:OoO
# regression against the committed file (override: VRSIM_PERF_OVERRIDE=1;
# docs/performance.md). A docs stage checks README/--help flag parity,
# exit-code parity across robustness.md / --help / README, and
# docs/performance.md knob+schema parity,
# renders a trace through tools/trace2chrome.py under the ASan build,
# and builds the Doxygen API reference when doxygen is installed.
# Bench smoke tests are included; the full figure sweeps live in
# scripts/run_all.sh.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail
JOBS="${1:-$(nproc)}"
cd "$(dirname "$0")/.."

echo "=== plain build (VRSIM_JOBS=2) ==="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-ci -j "$JOBS"
VRSIM_JOBS=2 ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== sanitized build (ASan + UBSan) ==="
cmake -B build-ci-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVRSIM_SANITIZE=address
cmake --build build-ci-asan -j "$JOBS"
ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS"

echo "=== sanitized build (TSan: sweep runner + workload cache) ==="
cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVRSIM_SANITIZE=tsan
cmake --build build-ci-tsan -j "$JOBS" \
    --target driver_sweep_runner_test workloads_cache_test
VRSIM_JOBS=4 ctest --test-dir build-ci-tsan --output-on-failure \
    -j "$JOBS" -R 'SweepRunner|RunPlan|ResultTable|WorkloadCache'

echo "=== differential check (UBSan build, small grid) ==="
cmake -B build-ci-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVRSIM_SANITIZE=undefined
cmake --build build-ci-ubsan -j "$JOBS" --target vrsim

# Every technique column must commit a stream hashing identically to
# the OoO baseline's, on real (scaled-down) workloads, in parallel.
for spec in camel kangaroo hj2; do
    VRSIM_JOBS=2 build-ci-ubsan/tools/vrsim \
        --workload "$spec" --all-techniques --check-digests \
        --roi 8000 --warmup 1000 --nodes 2048 --degree 8 \
        --elems 2048 --format csv >/dev/null
done
echo "differential check: all techniques match the OoO baseline"

# Repro-bundle replay round-trip: an injected divergence must be
# flagged, bundled, and reproduce (exit 70) under --replay.
REPRO_DIR="$(mktemp -d)"
trap 'rm -rf "$REPRO_DIR"' EXIT
rc=0
VRSIM_JOBS=2 build-ci-ubsan/tools/vrsim \
    --workload camel --all-techniques --check-digests --keep-going \
    --inject-fail vr:diverge --repro-dir "$REPRO_DIR" \
    --roi 8000 --warmup 1000 --nodes 2048 --degree 8 --elems 2048 \
    --format csv >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "replay smoke: injected divergence exited $rc, expected 1" >&2
    exit 1
fi
rc=0
build-ci-ubsan/tools/vrsim --replay "$REPRO_DIR/camel_VR.json" \
    >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 70 ]; then
    echo "replay smoke: --replay exited $rc, expected 70" >&2
    exit 1
fi
echo "replay smoke: bundle reproduced the divergence (exit 70)"

echo "=== chaos stage (ASan build, process isolation) ==="
# Process-isolated sweep with random process-grade fault injection:
# the parent must survive every fault class (exit 0 or 1, never a
# signal death) and still deliver a row for every cell. No --cell-mem-mb
# here: RLIMIT_AS is incompatible with ASan's shadow reservation.
CHAOS_CSV="$(mktemp)"
trap 'rm -rf "$REPRO_DIR" "$CHAOS_CSV"' EXIT
rc=0
VRSIM_JOBS=2 build-ci-asan/tools/vrsim \
    --workload camel --all-techniques --keep-going \
    --isolation process --chaos 35:0.3 --retries 2 --backoff-ms 1 \
    --cell-timeout 5 \
    --roi 6000 --warmup 500 --nodes 2048 --degree 8 --elems 2048 \
    --format csv >"$CHAOS_CSV" 2>/dev/null || rc=$?
if [ "$rc" -gt 1 ]; then
    echo "chaos stage: parent exited $rc (expected 0 or 1)" >&2
    exit 1
fi
rows="$(($(wc -l <"$CHAOS_CSV") - 1))"
if [ "$rows" -ne 8 ]; then
    echo "chaos stage: table has $rows rows, expected 8 (one per" \
        "technique; a lost cell means the parent dropped a death)" >&2
    exit 1
fi
echo "chaos stage: parent survived, all 8 cells accounted for (ASan)"

echo "=== sampling stage (ASan build, digest identity + accuracy) ==="
# Fast-forwarded and interval-sampled runs must commit the exact
# architectural stream a full-detail run does (docs/sampling.md):
# the --digest-json files from all three execution modes over the
# same 60K-instruction stream must be byte-identical. Checked for a
# plain OoO column and for VR, whose runahead engine must not
# perturb the committed stream either way.
SAMP_DIR="$(mktemp -d)"
trap 'rm -rf "$REPRO_DIR" "$CHAOS_CSV" "$SAMP_DIR"' EXIT
for tech in ooo vr; do
    build-ci-asan/tools/vrsim --workload camel --technique "$tech" \
        --roi 60000 --elems 4096 \
        --digest-json "$SAMP_DIR/full_$tech.json" \
        --format csv >/dev/null
    build-ci-asan/tools/vrsim --workload camel --technique "$tech" \
        --ff-insts 20000 --roi 40000 --elems 4096 \
        --digest-json "$SAMP_DIR/ff_$tech.json" \
        --format csv >/dev/null
    build-ci-asan/tools/vrsim --workload camel --technique "$tech" \
        --sample 2000:10000:3000 --roi 60000 --elems 4096 \
        --digest-json "$SAMP_DIR/samp_$tech.json" \
        --format csv >/dev/null
    cmp "$SAMP_DIR/full_$tech.json" "$SAMP_DIR/ff_$tech.json"
    cmp "$SAMP_DIR/full_$tech.json" "$SAMP_DIR/samp_$tech.json"
done
echo "sampling stage: ff/sampled digests byte-identical to full detail"

# Accuracy: a sampled VR run's CPI must land within its own reported
# 95% CI of the full-detail reference (the EXPERIMENTS.md contract;
# the integration test covers all 8 techniques, this exercises the
# CLI end to end under ASan). The check runs in the CPI domain — the
# quantity SMARTS estimates (docs/sampling.md).
build-ci-asan/tools/vrsim --workload camel --technique vr \
    --sample 20000:200000:50000 --roi 1600000 \
    --stats-json "$SAMP_DIR/samp_acc.json" --format csv >/dev/null
build-ci-asan/tools/vrsim --workload camel --technique vr \
    --roi 1600000 --warmup 100000 \
    --stats-json "$SAMP_DIR/full_acc.json" --format csv >/dev/null
python3 - "$SAMP_DIR" <<'EOF'
import json, os, sys
d = sys.argv[1]
samp = json.load(open(os.path.join(d, "samp_acc.json")))[0]["stats"]
full = json.load(open(os.path.join(d, "full_acc.json")))[0]["stats"]
mean, ci = samp["sample.cpi"]["mean"], samp["sample.cpi"]["ci95"]
ref = full["core.cycles"] / full["core.instructions"]
assert abs(mean - ref) <= ci + 1e-9, (
    f"sampled CPI {mean:.4f} +- {ci:.4f} vs full-detail {ref:.4f}: "
    "outside its own 95% CI (docs/sampling.md)")
print(f"sampling stage: sampled CPI {mean:.3f} +- {ci:.3f} covers "
      f"full-detail {ref:.3f} (ASan)")
EOF

echo "=== throughput baseline (plain build, self-profiler) ==="
# Publish the host-side simulation throughput the plain build achieves
# (PR 4 self-profiler host.* columns) as BENCH_throughput.json — two
# specs so single-workload noise can't masquerade as a trend — and
# gate on it: a >20% camel:OoO regression against the committed file
# fails CI unless VRSIM_PERF_OVERRIDE=1 (docs/performance.md).
#
# De-noised gate: each spec runs 5 trials at a 200K-instruction ROI
# and the ratchet takes the best trial per point — single short
# trials were dominated by scheduler noise and fired the gate on
# phantom regressions. The functional fast-forward rate (the
# docs/sampling.md >=50 Minsts/s floor) is measured the same way
# (best of 3 x 50M instructions) and published as the top-level
# "ff" entry.
THRU_DIR="$(mktemp -d)"
trap 'rm -rf "$REPRO_DIR" "$CHAOS_CSV" "$SAMP_DIR" "$THRU_DIR"' EXIT
for trial in 1 2 3 4 5; do
    for spec in camel kangaroo; do
        VRSIM_JOBS=2 build-ci/tools/vrsim \
            --workload "$spec" --all-techniques --profile \
            --stats-json "$THRU_DIR/$spec.$trial.json" \
            --roi 200000 --warmup 20000 --nodes 4096 --degree 8 \
            --elems 16384 --format csv >/dev/null 2>&1
    done
done
for trial in 1 2 3; do
    build-ci/tools/vrsim --workload camel --technique ooo \
        --ff-insts 50000000 --roi 200000 --elems 2097152 --profile \
        --stats-json "$THRU_DIR/ff.$trial.json" \
        --format csv >/dev/null 2>&1
done
python3 - "$THRU_DIR" BENCH_throughput.json <<'EOF'
import datetime, json, os, subprocess, sys
thru_dir, out_path = sys.argv[1], sys.argv[2]
points, ff = {}, None
for name in sorted(os.listdir(thru_dir)):
    for ent in json.load(open(os.path.join(thru_dir, name))):
        stats = ent.get("stats", {})
        if "host.seconds" not in stats:
            continue
        if name.startswith("ff."):
            rate = stats["host.ff_minsts_per_sec"]
            if ff is None or rate > ff["minsts_per_sec"]:
                ff = {
                    "ff_insts": int(stats["sample.ff_insts"]),
                    "host_seconds": stats["host.ff_seconds"],
                    "minsts_per_sec": rate,
                }
            continue
        cur = points.get(ent["point"])
        if cur is None or stats["host.minsts_per_sec"] > \
                cur["minsts_per_sec"]:
            points[ent["point"]] = {
                "host_seconds": stats["host.seconds"],
                "minsts_per_sec": stats["host.minsts_per_sec"],
                "simulated_insts": int(stats["core.instructions"]),
            }
assert points, "no host.* columns in --profile --stats-json output"
assert ff, "no host.ff_* columns in the --ff-insts profile output"

override = os.environ.get("VRSIM_PERF_OVERRIDE") == "1"

# Regression gate: the committed file is a ratchet on camel:OoO.
new_ooo = points["camel:OoO"]["minsts_per_sec"]
if os.path.exists(out_path):
    old = json.load(open(out_path)).get("points", {}).get("camel:OoO")
    if (old and not override
            and new_ooo < 0.8 * old["minsts_per_sec"]):
        sys.exit(
            f"throughput gate: camel:OoO {new_ooo:.3f} Minsts/s is "
            f">20% below committed {old['minsts_per_sec']:.3f}; rerun "
            "with VRSIM_PERF_OVERRIDE=1 to accept a justified slowdown "
            "(docs/performance.md)")

# Absolute floor on the functional fast-forward path: interval
# sampling only pays off while ff runs at native-loop speed.
if not override and ff["minsts_per_sec"] < 50:
    sys.exit(
        f"throughput gate: functional fast-forward at "
        f"{ff['minsts_per_sec']:.2f} Minsts/s is below the 50 Minsts/s "
        "floor (docs/sampling.md); rerun with VRSIM_PERF_OVERRIDE=1 "
        "to accept a justified slowdown")

try:
    commit = subprocess.check_output(
        ["git", "rev-parse", "--short", "HEAD"], text=True).strip()
except Exception:
    commit = "unknown"
out = {
    "bench": "vrsim throughput (camel + kangaroo, all techniques)",
    "commit": commit,
    "date": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%d"),
    "ff": ff,
    "trials": {"detailed": 5, "ff": 3, "pick": "best"},
    "unit": "simulated Minsts per host second",
    "points": points,
}
json.dump(out, open(out_path, "w"), indent=2, sort_keys=True)
print(f"throughput baseline: {len(points)} points + ff "
      f"{ff['minsts_per_sec']:.1f} Minsts/s ->", out_path)
EOF

echo "=== docs & observability stage ==="
# README/--help parity: every --flag the CLI's help lists must be
# documented in the README, and vice versa (drift guard).
help_flags="$(build-ci/tools/vrsim --help |
    grep -oE -- '--[a-z-]+' | sort -u)"
readme_flags="$(grep -oE -- '--[a-z-]+' README.md | sort -u)"
missing_in_readme="$(comm -23 <(echo "$help_flags") \
    <(echo "$readme_flags") || true)"
if [ -n "$missing_in_readme" ]; then
    echo "docs check: flags in vrsim --help but not README.md:" >&2
    echo "$missing_in_readme" >&2
    exit 1
fi
echo "docs check: README covers every vrsim --help flag"

# Exit-code parity: every code documented in docs/robustness.md's
# table must also appear in vrsim --help and README.md (drift guard
# for the taxonomy rows: 0 / 1 / 2 / 70 / 124 / 128+N).
doc_codes="$(grep -oE '^\| +`?[0-9]+(\+N)?`? +\|' docs/robustness.md |
    grep -oE '[0-9]+(\+N)?' | sort -u)"
if [ -z "$doc_codes" ]; then
    echo "docs check: no exit-code rows found in docs/robustness.md" >&2
    exit 1
fi
help_text="$(build-ci/tools/vrsim --help)"
for code in $doc_codes; do
    # -F: "128+N" must match literally, not as an ERE quantifier.
    if ! echo "$help_text" | grep -qF "$code"; then
        echo "docs check: exit code $code (docs/robustness.md) missing" \
            "from vrsim --help" >&2
        exit 1
    fi
    if ! grep -qF "\`$code\`" README.md; then
        echo "docs check: exit code $code (docs/robustness.md) missing" \
            "from README.md's table" >&2
        exit 1
    fi
done
echo "docs check: exit-code table consistent across robustness.md," \
    "--help, README"

# Cycle-skip architecture doc (docs/performance.md): the knobs and the
# BENCH_throughput.json schema it documents must exist in the tree,
# and every top-level schema key must be documented (drift guard).
for knob in VRSIM_CYCLE_SKIP VRSIM_PERF_OVERRIDE; do
    if ! grep -q "$knob" docs/performance.md; then
        echo "docs check: $knob undocumented in docs/performance.md" >&2
        exit 1
    fi
done
if ! grep -q VRSIM_CYCLE_SKIP src/sim/event_calendar.hh; then
    echo "docs check: VRSIM_CYCLE_SKIP knob gone from" \
        "src/sim/event_calendar.hh but still documented" >&2
    exit 1
fi
for key in $(python3 -c \
    'import json; print(" ".join(sorted(json.load(open("BENCH_throughput.json")))))'); do
    if ! grep -q "\`$key\`" docs/performance.md; then
        echo "docs check: BENCH_throughput.json key '$key' undocumented" \
            "in docs/performance.md" >&2
        exit 1
    fi
done
echo "docs check: docs/performance.md covers skip knobs + BENCH schema"

# Sampling doc (docs/sampling.md): the CLI flags and environment
# knobs the sampling subsystem exposes must be documented there, and
# the documented knobs must still exist in the tree (drift guard).
for flag in ff-insts sample digest-json; do
    if ! grep -q -- "--$flag" docs/sampling.md; then
        echo "docs check: --$flag undocumented in docs/sampling.md" >&2
        exit 1
    fi
    if ! echo "$help_text" | grep -q -- "--$flag"; then
        echo "docs check: --$flag documented in docs/sampling.md but" \
            "missing from vrsim --help" >&2
        exit 1
    fi
done
for knob in VRSIM_FF_INSTS VRSIM_SAMPLE; do
    if ! grep -q "$knob" docs/sampling.md; then
        echo "docs check: $knob undocumented in docs/sampling.md" >&2
        exit 1
    fi
    if ! grep -q "$knob" bench/bench_common.hh; then
        echo "docs check: $knob knob gone from bench/bench_common.hh" \
            "but still documented" >&2
        exit 1
    fi
done
echo "docs check: docs/sampling.md covers sampling flags + env knobs"

# Trace schema end-to-end under ASan: emit a real trace, convert it,
# and require valid Chrome-tracing JSON out the other side.
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$REPRO_DIR" "$CHAOS_CSV" "$SAMP_DIR" "$THRU_DIR" "$TRACE_DIR"' EXIT
build-ci-asan/tools/vrsim --workload camel --technique vr \
    --roi 6000 --warmup 500 --nodes 2048 --degree 8 \
    --trace "all:$TRACE_DIR/t.ndjson" --format csv >/dev/null 2>&1
python3 tools/trace2chrome.py "$TRACE_DIR/t.ndjson" \
    -o "$TRACE_DIR/t.chrome.json" >/dev/null
python3 - "$TRACE_DIR/t.chrome.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["traceEvents"], "empty Chrome trace"
EOF
echo "trace check: NDJSON -> Chrome tracing round-trip ok (ASan)"

# API reference, when the container has doxygen (not required).
if command -v doxygen >/dev/null 2>&1; then
    (cd docs && doxygen Doxyfile >/dev/null)
    echo "docs check: doxygen API reference built (docs/api)"
else
    echo "docs check: doxygen not installed; skipping API reference"
fi

echo "ci: all configurations passed"

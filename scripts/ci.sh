#!/usr/bin/env bash
# Tier-1 CI gate: build and run the unit/integration test suite three
# ways — plain (with VRSIM_JOBS=2 so every sweep-driven test exercises
# the parallel executor), under AddressSanitizer + UBSan, and under
# ThreadSanitizer for the concurrency-bearing subset (sweep runner,
# workload cache) (VRSIM_SANITIZE, see CMakeLists.txt). Bench smoke
# tests are included; the full figure sweeps live in
# scripts/run_all.sh.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail
JOBS="${1:-$(nproc)}"
cd "$(dirname "$0")/.."

echo "=== plain build (VRSIM_JOBS=2) ==="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-ci -j "$JOBS"
VRSIM_JOBS=2 ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== sanitized build (ASan + UBSan) ==="
cmake -B build-ci-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVRSIM_SANITIZE=address
cmake --build build-ci-asan -j "$JOBS"
ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS"

echo "=== sanitized build (TSan: sweep runner + workload cache) ==="
cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVRSIM_SANITIZE=tsan
cmake --build build-ci-tsan -j "$JOBS" \
    --target driver_sweep_runner_test workloads_cache_test
VRSIM_JOBS=4 ctest --test-dir build-ci-tsan --output-on-failure \
    -j "$JOBS" -R 'SweepRunner|RunPlan|ResultTable|WorkloadCache'

echo "ci: all three configurations passed"

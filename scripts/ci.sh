#!/usr/bin/env bash
# Tier-1 CI gate: build and run the unit/integration test suite twice —
# once plain, once under AddressSanitizer + UBSan (VRSIM_SANITIZE,
# see CMakeLists.txt). Bench smoke tests are included in both; the
# full figure sweeps live in scripts/run_all.sh.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail
JOBS="${1:-$(nproc)}"
cd "$(dirname "$0")/.."

echo "=== plain build ==="
cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== sanitized build (ASan + UBSan) ==="
cmake -B build-ci-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVRSIM_SANITIZE=ON
cmake --build build-ci-asan -j "$JOBS"
ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS"

echo "ci: both configurations passed"

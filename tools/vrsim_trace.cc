/**
 * @file
 * Pipeline-trace dumper: runs a workload and writes one CSV row per
 * dynamic instruction (dispatch/ready/issue/complete/commit cycles),
 * the raw material for pipeline visualizations and for debugging
 * where time goes in a kernel.
 *
 * Usage: vrsim_trace [--workload SPEC] [--technique NAME] [--n COUNT]
 *                    [--skip COUNT]
 */

#include <cstring>
#include <iostream>

#include "core/ooo_core.hh"
#include "driver/simulation.hh"
#include "runahead/dvr.hh"
#include "runahead/pre.hh"
#include "runahead/vector_runahead.hh"

using namespace vrsim;

int
main(int argc, char **argv)
{
    std::string spec = "camel";
    std::string tech = "ooo";
    uint64_t count = 200;
    uint64_t skip = 0;

    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        auto need = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << a << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--workload") spec = need();
        else if (a == "--technique") tech = need();
        else if (a == "--n") count = std::strtoull(need(), nullptr, 0);
        else if (a == "--skip")
            skip = std::strtoull(need(), nullptr, 0);
        else {
            std::cerr << "usage: vrsim_trace [--workload SPEC] "
                         "[--technique NAME] [--n N] [--skip N]\n";
            return 2;
        }
    }

    SystemConfig cfg = SystemConfig::benchScale();
    Workload w = makeWorkload(spec, GraphScale{}, HpcDbScale{});

    cfg.technique = tech == "dvr" ? Technique::Dvr
                  : tech == "vr" ? Technique::Vr
                  : tech == "pre" ? Technique::Pre
                  : tech == "oracle" ? Technique::Oracle
                  : Technique::OoO;

    MemoryHierarchy hier(cfg, w.image);
    std::unique_ptr<RunaheadEngine> engine;
    if (cfg.technique == Technique::Dvr)
        engine = std::make_unique<DecoupledVectorRunahead>(
            cfg, w.prog, w.image, hier);
    else if (cfg.technique == Technique::Vr)
        engine = std::make_unique<VectorRunahead>(cfg, w.prog, w.image,
                                                  hier);
    else if (cfg.technique == Technique::Pre)
        engine = std::make_unique<PreEngine>(cfg, w.prog, w.image,
                                             hier);

    OooCore core(cfg, w.prog, w.image, hier, engine.get());

    std::cout << "i,pc,disasm,dispatch,ready,issue,complete,commit,"
                 "load,mispredict\n";
    core.setTrace([&](const TraceRecord &t) {
        if (t.index < skip || t.index >= skip + count)
            return;
        std::string dis = t.inst->toString();
        for (char &c : dis)
            if (c == ',')
                c = ';';
        std::cout << t.index << "," << t.pc << "," << dis << ","
                  << t.dispatch << "," << t.ready << "," << t.issue
                  << "," << t.complete << "," << t.commit << ","
                  << (t.is_load ? 1 : 0) << ","
                  << (t.mispredicted ? 1 : 0) << "\n";
    });
    core.run(w.init, skip + count);
    return 0;
}

/**
 * @file
 * Pipeline-trace dumper: runs a workload and writes one CSV row per
 * dynamic instruction (dispatch/ready/issue/complete/commit cycles),
 * the raw material for pipeline visualizations and for debugging
 * where time goes in a kernel.
 *
 * Usage: vrsim_trace [--workload SPEC] [--technique NAME] [--n COUNT]
 *                    [--skip COUNT]
 *
 * Exit codes match vrsim (docs/robustness.md): 0 success, 1 fatal,
 * 2 usage, 70 internal panic or watchdog hang.
 */

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/ooo_core.hh"
#include "driver/simulation.hh"
#include "runahead/dvr.hh"
#include "runahead/pre.hh"
#include "runahead/vector_runahead.hh"

using namespace vrsim;

namespace
{

uint64_t
parseU64(const std::string &flag, const char *s)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 0);
    if (end == s || *end != '\0' || std::strchr(s, '-'))
        fatal("invalid value for " + flag + ": '" + s +
              "' (expected a non-negative integer)");
    if (errno == ERANGE)
        fatal("value for " + flag + " out of range: '" + s + "'");
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string spec = "camel";
    std::string tech = "ooo";
    uint64_t count = 200;
    uint64_t skip = 0;

    try {
        for (int i = 1; i < argc; i++) {
            std::string a = argv[i];
            auto need = [&]() -> const char * {
                if (i + 1 >= argc) {
                    std::cerr << "missing value for " << a << "\n";
                    std::exit(2);
                }
                return argv[++i];
            };
            if (a == "--workload") spec = need();
            else if (a == "--technique") tech = need();
            else if (a == "--n") count = parseU64(a, need());
            else if (a == "--skip") skip = parseU64(a, need());
            else {
                std::cerr << "usage: vrsim_trace [--workload SPEC] "
                             "[--technique NAME] [--n N] [--skip N]\n";
                return 2;
            }
        }

        SystemConfig cfg = SystemConfig::benchScale();
        Workload w = makeWorkload(spec, GraphScale{}, HpcDbScale{});

        cfg.technique = tech == "dvr" ? Technique::Dvr
                      : tech == "vr" ? Technique::Vr
                      : tech == "pre" ? Technique::Pre
                      : tech == "oracle" ? Technique::Oracle
                      : Technique::OoO;

        MemoryHierarchy hier(cfg, w.image);
        std::unique_ptr<RunaheadEngine> engine;
        if (cfg.technique == Technique::Dvr)
            engine = std::make_unique<DecoupledVectorRunahead>(
                cfg, w.prog, w.image, hier);
        else if (cfg.technique == Technique::Vr)
            engine = std::make_unique<VectorRunahead>(cfg, w.prog,
                                                      w.image, hier);
        else if (cfg.technique == Technique::Pre)
            engine = std::make_unique<PreEngine>(cfg, w.prog, w.image,
                                                 hier);

        OooCore core(cfg, w.prog, w.image, hier, engine.get());

        std::cout << "i,pc,disasm,dispatch,ready,issue,complete,commit,"
                     "load,mispredict\n";
        core.setTrace([&](const TraceRecord &t) {
            if (t.index < skip || t.index >= skip + count)
                return;
            std::string dis = t.inst->toString();
            for (char &c : dis)
                if (c == ',')
                    c = ';';
            std::cout << t.index << "," << t.pc << "," << dis << ","
                      << t.dispatch << "," << t.ready << "," << t.issue
                      << "," << t.complete << "," << t.commit << ","
                      << (t.is_load ? 1 : 0) << ","
                      << (t.mispredicted ? 1 : 0) << "\n";
        });
        core.run(w.init, skip + count);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    } catch (const HangError &e) {
        std::cerr << e.what() << "\n";
        return 70;
    } catch (const PanicError &e) {
        std::cerr << e.what() << "\n";
        return 70;
    }
    return 0;
}

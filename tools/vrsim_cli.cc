/**
 * @file
 * The vrsim command-line runner: simulate any workload under any
 * technique with configuration overrides, printing a full report, a
 * CSV row, or machine-readable JSON. Runs are described as a RunPlan
 * and executed by the SweepRunner, so --all-techniques sweeps share
 * one workload build and can run in parallel (--jobs / VRSIM_JOBS).
 *
 * Usage:
 *   vrsim [options]
 *     --workload SPEC     bfs/KR, camel, hj8, ... (default camel)
 *     --technique NAME    ooo|pre|imp|vr|dvr-offload|dvr-discovery|
 *                         dvr|oracle (default dvr)
 *     --all-techniques    run every technique, print a speedup table
 *     --jobs N            worker threads for sweeps (default
 *                         VRSIM_JOBS or 1; 0 = hardware concurrency)
 *     --roi N             dynamic-instruction budget (default 150000)
 *     --warmup N          instructions excluded from statistics
 *     --ff-insts N        functionally fast-forward N instructions at
 *                         native-loop speed before the ROI (timing
 *                         state stays cold; docs/sampling.md)
 *     --sample N:M[:W]    SMARTS interval sampling over the ROI:
 *                         measure N detailed instructions per period
 *                         of M, after W detailed-warm instructions
 *                         (default min(N, M-N)); reports mean IPC
 *                         with a 95% confidence interval; mutually
 *                         exclusive with --warmup
 *     --rob N             ROB entries (default 350)
 *     --mshrs N           L1D MSHRs (default 24)
 *     --lanes N           DVR scalar-equivalent lanes (default 128)
 *     --nodes N           graph nodes (default 16384)
 *     --degree N          graph average degree (default 16)
 *     --elems N           hpc-db elements (default 65536)
 *     --watchdog-cycles N forward-progress watchdog bound (0 = off)
 *     --keep-going        record failed runs in a sweep and continue
 *     --inject-fail NAME[:KIND]
 *                         fault injection: fail the named technique's
 *                         run with KIND = fatal|panic|hang|diverge|
 *                         segv|oom|spin|exit:N|killself:SIG (default
 *                         panic); the process-grade kinds require
 *                         --isolation process; exercises the
 *                         robustness machinery end to end
 *     --isolation MODE    thread (default) | process: run each sweep
 *                         cell in its own forked child so a SIGSEGV/
 *                         OOM/wedge becomes a crashed/timedout row
 *                         instead of killing the sweep
 *     --cell-timeout S    per-cell wall-clock deadline in seconds
 *                         (SIGKILL on expiry; process isolation)
 *     --cell-mem-mb N     per-cell RLIMIT_AS cap in MiB (process
 *                         isolation; do not combine with ASan)
 *     --cell-cpu-s N      per-cell RLIMIT_CPU cap in seconds
 *     --retries N         re-run a cell after a process-grade death
 *                         up to N times (exponential backoff);
 *                         in-taxonomy failures are never retried
 *     --backoff-ms N      first retry delay, doubling per retry
 *                         (default 100)
 *     --chaos SEED:RATE   chaos harness: randomly inject process-
 *                         grade faults into cells with probability
 *                         RATE per attempt (requires --isolation
 *                         process; see docs/robustness.md)
 *     --check-digests     differential oracle: hash every run's
 *                         committed stream and compare each technique
 *                         against the OoO baseline (added implicitly);
 *                         a mismatch is SimStatus::Diverged (exit 70)
 *     --digest-interval N retired instructions per digest sample
 *                         (default 8192)
 *     --digest-json FILE  collect every run's committed-state digest
 *                         and write them to FILE as JSON (one entry
 *                         per plan point) — lets the shell compare two
 *                         runs' committed streams byte for byte (the
 *                         ci.sh sampling stage)
 *     --repro-dir DIR     write a crash-repro bundle for every failed
 *                         run into DIR
 *     --trace EVENTS:FILE cycle-level NDJSON event trace; EVENTS is a
 *                         comma list of pipeline,mem,runahead,lanes or
 *                         all (a bare FILE traces everything); forces
 *                         --jobs 1; convert with tools/trace2chrome.py
 *     --stats-json FILE   dump the full stats registry per plan point
 *                         as a JSON array (docs/observability.md)
 *     --profile           add host.seconds / host.minsts_per_sec
 *                         columns to CSV/JSON output (also
 *                         VRSIM_PROFILE=1); host timing is
 *                         nondeterministic, hence opt-in
 *     --replay BUNDLE     re-run the exact point a repro bundle
 *                         describes and exit with its status's code
 *     --checkpoint FILE   journal completed sweep points to FILE
 *     --resume            restore completed points from --checkpoint
 *                         and run only the rest
 *     --paper-caches      full Table-1 L2/L3 instead of bench scaling
 *     --format FMT        table (default) | csv | json
 *     --csv               alias for --format csv
 *     --list              list available workload specs
 *     --help              print usage and exit 0
 *
 * Every run ends with a one-line self-profile on stderr (simulated
 * Minsts per host second, per-phase wall time; obs/self_profile.hh).
 *
 * Exit codes (see docs/robustness.md):
 *   0 success; 1 fatal (bad configuration / failed runs under
 *   --keep-going); 2 usage; 70 internal panic, watchdog hang, or
 *   digest divergence; 124 cell deadline expired; 128+signo cell
 *   killed by a signal (process isolation).
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>

#include "driver/report.hh"
#include "driver/repro.hh"
#include "driver/sweep_runner.hh"
#include "rt/cell_supervisor.hh"
#include "obs/self_profile.hh"
#include "obs/trace.hh"
#include "sim/parse.hh"

using namespace vrsim;

namespace
{

constexpr int EXIT_FATAL = 1;
constexpr int EXIT_USAGE = 2;
constexpr int EXIT_PANIC_OR_HANG = 70;  //!< sysexits EX_SOFTWARE

enum class Format { Table, Csv, Json };

Technique
parseTechnique(const std::string &s)
{
    if (s == "ooo") return Technique::OoO;
    if (s == "pre") return Technique::Pre;
    if (s == "imp") return Technique::Imp;
    if (s == "vr") return Technique::Vr;
    if (s == "dvr-offload") return Technique::DvrOffload;
    if (s == "dvr-discovery") return Technique::DvrDiscovery;
    if (s == "dvr") return Technique::Dvr;
    if (s == "oracle") return Technique::Oracle;
    fatal("unknown technique: " + s);
}

Format
parseFormat(const std::string &s)
{
    if (s == "table") return Format::Table;
    if (s == "csv") return Format::Csv;
    if (s == "json") return Format::Json;
    fatal("unknown format: " + s + " (expected table, csv or json)");
}

/** Map a failed run's status to the process exit-code contract
 *  (exitCodeForStatus: 124 for a deadline kill, 128+signo for a
 *  signal death — never aliasing 70). */
int
exitCodeFor(const SimResult &r)
{
    return exitCodeForStatus(r.status, r.term_signal);
}

/**
 * --replay: reconstruct the exact point a repro bundle describes,
 * re-run it (honoring any injected-failure kind), re-apply the
 * differential check against the bundled baseline digest, and report
 * whether the recorded failure reproduced.
 */
int
replayBundle(const std::string &path)
{
    ReproBundle b = readReproBundle(path);
    inform("replaying " + b.point.id() + " (recorded status: " +
           simStatusName(b.status) + ")");

    SimResult r;
    if (b.point.inject_fail &&
        injectKindIsProcessGrade(b.point.inject_kind)) {
        // A process-grade fault must run in a supervised child (it
        // kills its process by design); the deadline makes a spin
        // fault reproduce as timedout instead of wedging the replay.
        CellOptions copts;
        copts.timeout_ms = 10'000;
        CellSupervisor sup(copts, WorkloadCache::process());
        r = sup.runCell(b.point).result;
    } else {
        r = SweepRunner::runPoint(b.point, WorkloadCache::process());
    }
    if (b.baseline_digest && r.ok()) {
        if (!r.digest)
            fatal("replayed run produced no digest but the bundle "
                  "carries a baseline digest");
        if (auto div = compareDigests(*b.baseline_digest, *r.digest)) {
            r.status = SimStatus::Diverged;
            r.status_message =
                "committed-state digest diverged from the OoO "
                "baseline at " + div->toString();
        }
    }

    if (r.ok())
        printReport(std::cout, r, b.point.cfg);
    else
        std::cerr << r.status_message << "\n";

    if (r.status == b.status)
        inform("replay reproduced the recorded status (" +
               std::string(simStatusName(r.status)) + ")");
    else
        warn("replay ended with status " +
             std::string(simStatusName(r.status)) +
             " but the bundle recorded " +
             std::string(simStatusName(b.status)));
    return exitCodeFor(r);
}

void
printUsage(std::ostream &os)
{
    os <<
        "usage: vrsim [--workload SPEC] [--technique NAME]\n"
        "             [--all-techniques] [--jobs N] [--roi N]\n"
        "             [--warmup N] [--ff-insts N] [--sample N:M[:W]]\n"
        "             [--rob N] [--mshrs N] [--lanes N]\n"
        "             [--nodes N] [--degree N] [--elems N]\n"
        "             [--watchdog-cycles N] [--keep-going]\n"
        "             [--inject-fail NAME[:KIND]] [--check-digests]\n"
        "             [--isolation thread|process] [--cell-timeout S]\n"
        "             [--cell-mem-mb N] [--cell-cpu-s N] [--retries N]\n"
        "             [--backoff-ms N] [--chaos SEED:RATE]\n"
        "             [--digest-interval N] [--digest-json FILE]\n"
        "             [--repro-dir DIR]\n"
        "             [--trace EVENTS:FILE] [--stats-json FILE]\n"
        "             [--profile] [--replay BUNDLE]\n"
        "             [--checkpoint FILE] [--resume] [--paper-caches]\n"
        "             [--format table|csv|json] [--csv] [--list]\n"
        "             [--help]\n"
        "\n"
        "exit codes (docs/robustness.md):\n"
        "  0      success\n"
        "  1      fatal error, or failed run(s) under --keep-going\n"
        "  2      usage: unknown flag or missing value\n"
        "  70     internal panic, watchdog hang, or digest divergence\n"
        "  124    cell exceeded its --cell-timeout deadline "
        "(--isolation process)\n"
        "  128+N  cell child died by signal N "
        "(--isolation process)\n";
}

[[noreturn]] void
usage()
{
    printUsage(std::cerr);
    std::exit(EXIT_USAGE);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string spec = "camel";
    std::string tech = "dvr";
    std::string inject_fail;
    std::string replay_path;
    std::string trace_spec;
    std::string stats_json_path;
    std::string digest_json_path;
    std::string sample_spec;
    uint64_t ff_insts = 0;
    bool all_techniques = false;
    bool keep_going = false;
    bool paper_caches = false;
    bool check_digests = false;
    Format format = Format::Table;
    uint64_t jobs = 0;  // 0 = VRSIM_JOBS / default 1
    uint64_t roi = 150'000;
    uint64_t warmup = 0;
    GraphScale gscale;
    HpcDbScale hscale;
    SystemConfig cfg = SystemConfig::benchScale();
    SweepOptions opts;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };

    try {
        for (int i = 1; i < argc; i++) {
            std::string a = argv[i];
            if (a == "--workload") spec = need(i);
            else if (a == "--technique") tech = need(i);
            else if (a == "--all-techniques") all_techniques = true;
            else if (a == "--keep-going") keep_going = true;
            else if (a == "--inject-fail") inject_fail = need(i);
            else if (a == "--check-digests") check_digests = true;
            else if (a == "--digest-interval")
                cfg.digest_interval = parseU64(a, need(i));
            else if (a == "--digest-json") digest_json_path = need(i);
            else if (a == "--ff-insts")
                ff_insts = parseU64(a, need(i));
            else if (a == "--sample") sample_spec = need(i);
            else if (a == "--repro-dir") opts.repro_dir = need(i);
            else if (a == "--isolation")
                opts.isolation = isolationFromName(need(i));
            else if (a == "--cell-timeout")
                opts.cell_timeout_ms =
                    uint64_t(parseF64(a, need(i)) * 1000.0);
            else if (a == "--cell-mem-mb")
                opts.cell_mem_mb = parseU64(a, need(i));
            else if (a == "--cell-cpu-s")
                opts.cell_cpu_s = parseU64(a, need(i));
            else if (a == "--retries")
                opts.retries = unsigned(parseU64(a, need(i)));
            else if (a == "--backoff-ms")
                opts.backoff_ms = parseU64(a, need(i));
            else if (a == "--chaos")
                opts.chaos = ChaosPolicy::parse(need(i));
            else if (a == "--trace") trace_spec = need(i);
            else if (a == "--stats-json") stats_json_path = need(i);
            else if (a == "--profile") setProfileColumns(true);
            else if (a == "--replay") replay_path = need(i);
            else if (a == "--checkpoint") opts.checkpoint = need(i);
            else if (a == "--resume") opts.resume = true;
            else if (a == "--jobs") jobs = parseU64(a, need(i));
            else if (a == "--roi") roi = parseU64(a, need(i));
            else if (a == "--warmup") warmup = parseU64(a, need(i));
            else if (a == "--rob")
                cfg.core.rob_size = parseU32(a, need(i));
            else if (a == "--mshrs")
                cfg.l1d.mshrs = parseU32(a, need(i));
            else if (a == "--lanes")
                cfg.runahead.vector_regs =
                    parseU32(a, need(i)) /
                    cfg.runahead.lanes_per_vector;
            else if (a == "--nodes")
                gscale.nodes = parseU64(a, need(i));
            else if (a == "--degree")
                gscale.avg_degree = parseU64(a, need(i));
            else if (a == "--elems")
                hscale.elements = parseU64(a, need(i));
            else if (a == "--watchdog-cycles")
                cfg.watchdog_cycles = parseU64(a, need(i));
            else if (a == "--paper-caches") paper_caches = true;
            else if (a == "--format")
                format = parseFormat(need(i));
            else if (a == "--csv") format = Format::Csv;
            else if (a == "--list") {
                for (const auto &k : gapKernelNames())
                    for (const char *in : {"KR", "LJN", "ORK", "TW",
                                           "UR"})
                        std::cout << k << "/" << in << "\n";
                for (const auto &n : hpcDbNames())
                    std::cout << n << "\n";
                std::cout << "camel-swpf\n";
                return 0;
            } else if (a == "--help") {
                printUsage(std::cout);
                return 0;
            } else {
                usage();
            }
        }

        if (!replay_path.empty())
            return replayBundle(replay_path);

        if (paper_caches) {
            SystemConfig p = SystemConfig::paper();
            cfg.l2 = p.l2;
            cfg.l3 = p.l3;
        }

        if (!digest_json_path.empty())
            cfg.collect_digest = true;

        RunPlan plan(cfg);
        plan.scale(gscale, hscale).roi(roi).warmup(warmup);
        {
            SamplingPlan splan;
            if (!sample_spec.empty())
                splan = SamplingPlan::parse(sample_spec);
            splan.ff_insts = ff_insts;
            plan.sample(splan);
        }
        if (all_techniques) {
            plan.add({spec},
                     {Technique::OoO, Technique::Pre, Technique::Imp,
                      Technique::Vr, Technique::DvrOffload,
                      Technique::DvrDiscovery, Technique::Dvr,
                      Technique::Oracle});
        } else {
            Technique t = parseTechnique(tech);
            std::vector<TechColumn> columns;
            // Differential checking needs the OoO baseline column;
            // add it implicitly for single-technique runs.
            if (check_digests && t != Technique::OoO)
                columns.push_back(Technique::OoO);
            columns.push_back(t);
            plan.add({spec}, std::move(columns));
        }
        if (!inject_fail.empty()) {
            // NAME[:KIND], e.g. "vr:diverge" or "dvr:exit:3"; the
            // split is at the FIRST colon only — the kind spec may
            // carry its own ":arg". KIND defaults to panic.
            InjectKind kind = InjectKind::Panic;
            uint32_t arg = 0;
            std::string name = inject_fail;
            if (size_t colon = inject_fail.find(':');
                colon != std::string::npos) {
                name = inject_fail.substr(0, colon);
                kind = injectKindParse(inject_fail.substr(colon + 1),
                                       arg);
            }
            plan.injectFail(parseTechnique(name), kind, arg);
        }

        // The trace stream and sink outlive the sweep; the sink only
        // borrows the stream (obs/trace.hh).
        std::ofstream trace_os;
        std::optional<TraceSink> trace_sink;
        if (!trace_spec.empty()) {
            uint32_t mask = TRACE_ALL;
            std::string path;
            TraceSink::parseSpec(trace_spec, mask, path);
            trace_os.open(path, std::ios::trunc);
            if (!trace_os)
                fatal("cannot write trace file '" + path + "'");
            trace_sink.emplace(trace_os, mask);
            opts.trace = &*trace_sink;
        }

        opts.jobs = unsigned(jobs);
        opts.progress = all_techniques && format == Format::Table;
        opts.check_digests = check_digests;
        SweepRunner runner(opts);
        ResultTable table = runner.run(plan);

        if (trace_sink) {
            trace_os.flush();
            inform("trace: " +
                   std::to_string(trace_sink->eventsEmitted()) +
                   " events written (convert with "
                   "tools/trace2chrome.py)");
        }

        if (!stats_json_path.empty()) {
            std::ofstream sj(stats_json_path, std::ios::trunc);
            if (!sj)
                fatal("cannot write stats-json file '" +
                      stats_json_path + "'");
            writeStatsJson(sj, table, &runner.stats());
        }

        if (!digest_json_path.empty()) {
            std::ofstream dj(digest_json_path, std::ios::trunc);
            if (!dj)
                fatal("cannot write digest-json file '" +
                      digest_json_path + "'");
            dj << "[\n";
            bool first = true;
            for (size_t i = 0; i < table.size(); i++) {
                const SimResult &r = table.results()[i];
                if (!r.ok())
                    continue;
                if (!r.digest)
                    fatal("--digest-json: run " +
                          table.points()[i].id() +
                          " produced no digest");
                dj << (first ? "" : ",\n")
                   << "{\"id\":\""
                   << jsonEscape(table.points()[i].id())
                   << "\",\"digest\":"
                   << digestRecordToJson(*r.digest) << "}";
                first = false;
            }
            dj << "\n]\n";
        }

        // Time the rendering below as the "report" phase; reset()
        // before the summary so its seconds are included.
        std::optional<SelfProfiler::PhaseTimer> report_timer(
            SelfProfiler::process().phase("report"));

        // Without --keep-going, the first failure ends the program
        // with the same exit codes an unguarded run would have had.
        if (!keep_going) {
            for (const SimResult &r : table.results()) {
                if (!r.ok()) {
                    std::cerr << r.status_message << "\n";
                    return exitCodeFor(r);
                }
            }
        }

        if (format == Format::Csv) {
            if (table.size() > 1)
                table.writeCsv(std::cout);
            else
                CsvWriter(std::cout).row(table.results().front());
        } else if (format == Format::Json) {
            if (table.size() > 1)
                printJson(std::cout, table.results());
            else
                printJson(std::cout, table.results().front());
        } else if (all_techniques) {
            double base = 0;
            const SimResult *ooo =
                table.find(spec, techniqueName(Technique::OoO));
            if (ooo && ooo->ok())
                base = ooo->ipc();
            for (const SimResult &r : table.results()) {
                if (r.ok()) {
                    std::printf("%-14s IPC %-8.3f speedup %-7.2f "
                                "MLP %-6.1f DRAM %llu\n",
                                techniqueName(r.technique).c_str(),
                                r.ipc(),
                                base > 0 ? r.ipc() / base : 0.0,
                                r.mlp,
                                (unsigned long long)r.mem.dramTotal());
                } else {
                    std::printf("%-14s %-6s %s\n",
                                techniqueName(r.technique).c_str(),
                                simStatusName(r.status),
                                r.status_message.c_str());
                }
            }
        } else {
            printReport(std::cout, table.results().back(), cfg);
        }

        report_timer.reset();
        inform(SelfProfiler::process().summary());

        if (size_t failures = table.failures()) {
            std::cerr << "warn: " << failures << " of " << table.size()
                      << " technique runs failed (partial results "
                         "above)\n";
            return EXIT_FATAL;
        }
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return EXIT_FATAL;
    } catch (const HangError &e) {
        std::cerr << e.what() << "\n";
        return EXIT_PANIC_OR_HANG;
    } catch (const PanicError &e) {
        std::cerr << e.what() << "\n";
        return EXIT_PANIC_OR_HANG;
    }
    return 0;
}

/**
 * @file
 * The vrsim command-line runner: simulate any workload under any
 * technique with configuration overrides, printing a full report or a
 * CSV row.
 *
 * Usage:
 *   vrsim [options]
 *     --workload SPEC     bfs/KR, camel, hj8, ... (default camel)
 *     --technique NAME    ooo|pre|imp|vr|dvr-offload|dvr-discovery|
 *                         dvr|oracle (default dvr)
 *     --all-techniques    run every technique, print a speedup table
 *     --roi N             dynamic-instruction budget (default 150000)
 *     --warmup N          instructions excluded from statistics
 *     --rob N             ROB entries (default 350)
 *     --mshrs N           L1D MSHRs (default 24)
 *     --lanes N           DVR scalar-equivalent lanes (default 128)
 *     --nodes N           graph nodes (default 16384)
 *     --degree N          graph average degree (default 16)
 *     --elems N           hpc-db elements (default 65536)
 *     --watchdog-cycles N forward-progress watchdog bound (0 = off)
 *     --keep-going        record failed runs in a sweep and continue
 *     --inject-fail NAME  fault injection: panic the named technique's
 *                         run (exercises --keep-going in tests)
 *     --paper-caches      full Table-1 L2/L3 instead of bench scaling
 *     --csv               emit a CSV row instead of the report
 *     --list              list available workload specs
 *
 * Exit codes (see docs/robustness.md):
 *   0 success; 1 fatal (bad configuration / failed runs under
 *   --keep-going); 2 usage; 70 internal panic or watchdog hang.
 */

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <iterator>

#include "driver/report.hh"
#include "driver/simulation.hh"

using namespace vrsim;

namespace
{

constexpr int EXIT_FATAL = 1;
constexpr int EXIT_USAGE = 2;
constexpr int EXIT_PANIC_OR_HANG = 70;  //!< sysexits EX_SOFTWARE

Technique
parseTechnique(const std::string &s)
{
    if (s == "ooo") return Technique::OoO;
    if (s == "pre") return Technique::Pre;
    if (s == "imp") return Technique::Imp;
    if (s == "vr") return Technique::Vr;
    if (s == "dvr-offload") return Technique::DvrOffload;
    if (s == "dvr-discovery") return Technique::DvrDiscovery;
    if (s == "dvr") return Technique::Dvr;
    if (s == "oracle") return Technique::Oracle;
    fatal("unknown technique: " + s);
}

/**
 * Strict numeric parsing: strtoull's silent-zero on garbage would
 * e.g. turn `--roi garbage` into max_insts = 0, flipping the run into
 * unlimited-budget mode. Reject non-numeric, trailing-junk and
 * overflowing values with the flag named.
 */
uint64_t
parseU64(const std::string &flag, const char *s)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 0);
    if (end == s || *end != '\0')
        fatal("invalid value for " + flag + ": '" + s +
              "' (expected a non-negative integer)");
    if (errno == ERANGE)
        fatal("value for " + flag + " out of range: '" + s + "'");
    if (std::strchr(s, '-'))
        fatal("invalid value for " + flag + ": '" + s +
              "' (negative values are not allowed)");
    return v;
}

uint32_t
parseU32(const std::string &flag, const char *s)
{
    uint64_t v = parseU64(flag, s);
    if (v > UINT32_MAX)
        fatal("value for " + flag + " out of range: '" + s + "'");
    return uint32_t(v);
}

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: vrsim [--workload SPEC] [--technique NAME]\n"
        "             [--all-techniques] [--roi N] [--warmup N]\n"
        "             [--rob N] [--mshrs N] [--lanes N] [--nodes N]\n"
        "             [--degree N] [--elems N] [--watchdog-cycles N]\n"
        "             [--keep-going] [--inject-fail NAME]\n"
        "             [--paper-caches] [--csv] [--list]\n";
    std::exit(EXIT_USAGE);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string spec = "camel";
    std::string tech = "dvr";
    std::string inject_fail;
    bool all_techniques = false;
    bool keep_going = false;
    bool csv = false;
    bool paper_caches = false;
    uint64_t roi = 150'000;
    uint64_t warmup = 0;
    GraphScale gscale;
    HpcDbScale hscale;
    SystemConfig cfg = SystemConfig::benchScale();

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };

    try {
        for (int i = 1; i < argc; i++) {
            std::string a = argv[i];
            if (a == "--workload") spec = need(i);
            else if (a == "--technique") tech = need(i);
            else if (a == "--all-techniques") all_techniques = true;
            else if (a == "--keep-going") keep_going = true;
            else if (a == "--inject-fail") inject_fail = need(i);
            else if (a == "--roi") roi = parseU64(a, need(i));
            else if (a == "--warmup") warmup = parseU64(a, need(i));
            else if (a == "--rob")
                cfg.core.rob_size = parseU32(a, need(i));
            else if (a == "--mshrs")
                cfg.l1d.mshrs = parseU32(a, need(i));
            else if (a == "--lanes")
                cfg.runahead.vector_regs =
                    parseU32(a, need(i)) /
                    cfg.runahead.lanes_per_vector;
            else if (a == "--nodes")
                gscale.nodes = parseU64(a, need(i));
            else if (a == "--degree")
                gscale.avg_degree = parseU64(a, need(i));
            else if (a == "--elems")
                hscale.elements = parseU64(a, need(i));
            else if (a == "--watchdog-cycles")
                cfg.watchdog_cycles = parseU64(a, need(i));
            else if (a == "--paper-caches") paper_caches = true;
            else if (a == "--csv") csv = true;
            else if (a == "--list") {
                for (const auto &k : gapKernelNames())
                    for (const char *in : {"KR", "LJN", "ORK", "TW",
                                           "UR"})
                        std::cout << k << "/" << in << "\n";
                for (const auto &n : hpcDbNames())
                    std::cout << n << "\n";
                std::cout << "camel-swpf\n";
                return 0;
            } else {
                usage();
            }
        }

        if (paper_caches) {
            SystemConfig p = SystemConfig::paper();
            cfg.l2 = p.l2;
            cfg.l3 = p.l3;
        }

        if (all_techniques) {
            const Technique techs[] = {
                Technique::OoO, Technique::Pre, Technique::Imp,
                Technique::Vr, Technique::DvrOffload,
                Technique::DvrDiscovery, Technique::Dvr,
                Technique::Oracle,
            };
            CsvWriter writer(std::cout);
            double base = 0;
            size_t failures = 0;
            for (Technique t : techs) {
                auto runOne = [&]() -> SimResult {
                    if (!inject_fail.empty() &&
                        parseTechnique(inject_fail) == t)
                        panic("fault injection requested for " +
                              techniqueName(t) + " (--inject-fail)");
                    return runSimulation(spec, t, cfg, gscale, hscale,
                                         roi + warmup, warmup);
                };
                SimResult r;
                if (keep_going) {
                    // Fault-isolated sweep: a failed run becomes a
                    // recorded status row instead of ending the sweep.
                    if (!inject_fail.empty() &&
                        parseTechnique(inject_fail) == t) {
                        r.workload = spec;
                        r.technique = t;
                        r.status = SimStatus::Panic;
                        r.status_message =
                            "panic: fault injection requested for " +
                            techniqueName(t) + " (--inject-fail)";
                    } else {
                        r = runSimulationGuarded(spec, t, cfg, gscale,
                                                 hscale, roi + warmup,
                                                 warmup);
                    }
                } else {
                    r = runOne();
                }
                if (!r.ok())
                    ++failures;
                if (t == Technique::OoO && r.ok())
                    base = r.ipc();
                if (csv) {
                    writer.row(r);
                } else if (r.ok()) {
                    std::printf("%-14s IPC %-8.3f speedup %-7.2f "
                                "MLP %-6.1f DRAM %llu\n",
                                techniqueName(t).c_str(), r.ipc(),
                                base > 0 ? r.ipc() / base : 0.0,
                                r.mlp,
                                (unsigned long long)r.mem.dramTotal());
                } else {
                    std::printf("%-14s %-6s %s\n",
                                techniqueName(t).c_str(),
                                simStatusName(r.status),
                                r.status_message.c_str());
                }
            }
            if (failures) {
                std::cerr << "warn: " << failures << " of "
                          << std::size(techs)
                          << " technique runs failed (partial "
                             "results above)\n";
                return EXIT_FATAL;
            }
            return 0;
        }

        Technique t = parseTechnique(tech);
        if (!inject_fail.empty() && parseTechnique(inject_fail) == t)
            panic("fault injection requested for " + techniqueName(t) +
                  " (--inject-fail)");
        SimResult r = runSimulation(spec, t, cfg, gscale, hscale,
                                    roi + warmup, warmup);
        if (csv) {
            CsvWriter writer(std::cout);
            writer.row(r);
        } else {
            printReport(std::cout, r, cfg);
        }
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return EXIT_FATAL;
    } catch (const HangError &e) {
        std::cerr << e.what() << "\n";
        return EXIT_PANIC_OR_HANG;
    } catch (const PanicError &e) {
        std::cerr << e.what() << "\n";
        return EXIT_PANIC_OR_HANG;
    }
    return 0;
}

/**
 * @file
 * The vrsim command-line runner: simulate any workload under any
 * technique with configuration overrides, printing a full report, a
 * CSV row, or machine-readable JSON. Runs are described as a RunPlan
 * and executed by the SweepRunner, so --all-techniques sweeps share
 * one workload build and can run in parallel (--jobs / VRSIM_JOBS).
 *
 * Usage:
 *   vrsim [options]
 *     --workload SPEC     bfs/KR, camel, hj8, ... (default camel)
 *     --technique NAME    ooo|pre|imp|vr|dvr-offload|dvr-discovery|
 *                         dvr|oracle (default dvr)
 *     --all-techniques    run every technique, print a speedup table
 *     --jobs N            worker threads for sweeps (default
 *                         VRSIM_JOBS or 1; 0 = hardware concurrency)
 *     --roi N             dynamic-instruction budget (default 150000)
 *     --warmup N          instructions excluded from statistics
 *     --rob N             ROB entries (default 350)
 *     --mshrs N           L1D MSHRs (default 24)
 *     --lanes N           DVR scalar-equivalent lanes (default 128)
 *     --nodes N           graph nodes (default 16384)
 *     --degree N          graph average degree (default 16)
 *     --elems N           hpc-db elements (default 65536)
 *     --watchdog-cycles N forward-progress watchdog bound (0 = off)
 *     --keep-going        record failed runs in a sweep and continue
 *     --inject-fail NAME  fault injection: panic the named technique's
 *                         run (exercises --keep-going in tests)
 *     --paper-caches      full Table-1 L2/L3 instead of bench scaling
 *     --format FMT        table (default) | csv | json
 *     --csv               alias for --format csv
 *     --list              list available workload specs
 *
 * Exit codes (see docs/robustness.md):
 *   0 success; 1 fatal (bad configuration / failed runs under
 *   --keep-going); 2 usage; 70 internal panic or watchdog hang.
 */

#include <cstdlib>
#include <iostream>

#include "driver/report.hh"
#include "driver/sweep_runner.hh"
#include "sim/parse.hh"

using namespace vrsim;

namespace
{

constexpr int EXIT_FATAL = 1;
constexpr int EXIT_USAGE = 2;
constexpr int EXIT_PANIC_OR_HANG = 70;  //!< sysexits EX_SOFTWARE

enum class Format { Table, Csv, Json };

Technique
parseTechnique(const std::string &s)
{
    if (s == "ooo") return Technique::OoO;
    if (s == "pre") return Technique::Pre;
    if (s == "imp") return Technique::Imp;
    if (s == "vr") return Technique::Vr;
    if (s == "dvr-offload") return Technique::DvrOffload;
    if (s == "dvr-discovery") return Technique::DvrDiscovery;
    if (s == "dvr") return Technique::Dvr;
    if (s == "oracle") return Technique::Oracle;
    fatal("unknown technique: " + s);
}

Format
parseFormat(const std::string &s)
{
    if (s == "table") return Format::Table;
    if (s == "csv") return Format::Csv;
    if (s == "json") return Format::Json;
    fatal("unknown format: " + s + " (expected table, csv or json)");
}

/** Map a failed run's status to the process exit-code contract. */
int
exitCodeFor(const SimResult &r)
{
    switch (r.status) {
      case SimStatus::Ok: return 0;
      case SimStatus::Fatal: return EXIT_FATAL;
      case SimStatus::Panic:
      case SimStatus::Hang: return EXIT_PANIC_OR_HANG;
    }
    return EXIT_FATAL;
}

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: vrsim [--workload SPEC] [--technique NAME]\n"
        "             [--all-techniques] [--jobs N] [--roi N]\n"
        "             [--warmup N] [--rob N] [--mshrs N] [--lanes N]\n"
        "             [--nodes N] [--degree N] [--elems N]\n"
        "             [--watchdog-cycles N] [--keep-going]\n"
        "             [--inject-fail NAME] [--paper-caches]\n"
        "             [--format table|csv|json] [--csv] [--list]\n";
    std::exit(EXIT_USAGE);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string spec = "camel";
    std::string tech = "dvr";
    std::string inject_fail;
    bool all_techniques = false;
    bool keep_going = false;
    bool paper_caches = false;
    Format format = Format::Table;
    uint64_t jobs = 0;  // 0 = VRSIM_JOBS / default 1
    uint64_t roi = 150'000;
    uint64_t warmup = 0;
    GraphScale gscale;
    HpcDbScale hscale;
    SystemConfig cfg = SystemConfig::benchScale();

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };

    try {
        for (int i = 1; i < argc; i++) {
            std::string a = argv[i];
            if (a == "--workload") spec = need(i);
            else if (a == "--technique") tech = need(i);
            else if (a == "--all-techniques") all_techniques = true;
            else if (a == "--keep-going") keep_going = true;
            else if (a == "--inject-fail") inject_fail = need(i);
            else if (a == "--jobs") jobs = parseU64(a, need(i));
            else if (a == "--roi") roi = parseU64(a, need(i));
            else if (a == "--warmup") warmup = parseU64(a, need(i));
            else if (a == "--rob")
                cfg.core.rob_size = parseU32(a, need(i));
            else if (a == "--mshrs")
                cfg.l1d.mshrs = parseU32(a, need(i));
            else if (a == "--lanes")
                cfg.runahead.vector_regs =
                    parseU32(a, need(i)) /
                    cfg.runahead.lanes_per_vector;
            else if (a == "--nodes")
                gscale.nodes = parseU64(a, need(i));
            else if (a == "--degree")
                gscale.avg_degree = parseU64(a, need(i));
            else if (a == "--elems")
                hscale.elements = parseU64(a, need(i));
            else if (a == "--watchdog-cycles")
                cfg.watchdog_cycles = parseU64(a, need(i));
            else if (a == "--paper-caches") paper_caches = true;
            else if (a == "--format")
                format = parseFormat(need(i));
            else if (a == "--csv") format = Format::Csv;
            else if (a == "--list") {
                for (const auto &k : gapKernelNames())
                    for (const char *in : {"KR", "LJN", "ORK", "TW",
                                           "UR"})
                        std::cout << k << "/" << in << "\n";
                for (const auto &n : hpcDbNames())
                    std::cout << n << "\n";
                std::cout << "camel-swpf\n";
                return 0;
            } else {
                usage();
            }
        }

        if (paper_caches) {
            SystemConfig p = SystemConfig::paper();
            cfg.l2 = p.l2;
            cfg.l3 = p.l3;
        }

        RunPlan plan(cfg);
        plan.scale(gscale, hscale).roi(roi).warmup(warmup);
        if (all_techniques) {
            plan.add({spec},
                     {Technique::OoO, Technique::Pre, Technique::Imp,
                      Technique::Vr, Technique::DvrOffload,
                      Technique::DvrDiscovery, Technique::Dvr,
                      Technique::Oracle});
        } else {
            plan.add({spec}, {parseTechnique(tech)});
        }
        if (!inject_fail.empty())
            plan.injectFail(parseTechnique(inject_fail));

        SweepOptions opts;
        opts.jobs = unsigned(jobs);
        opts.progress = all_techniques && format == Format::Table;
        ResultTable table = SweepRunner(opts).run(plan);

        // Without --keep-going, the first failure ends the program
        // with the same exit codes an unguarded run would have had.
        if (!keep_going) {
            for (const SimResult &r : table.results()) {
                if (!r.ok()) {
                    std::cerr << r.status_message << "\n";
                    return exitCodeFor(r);
                }
            }
        }

        if (format == Format::Csv) {
            if (all_techniques)
                table.writeCsv(std::cout);
            else
                CsvWriter(std::cout).row(table.results().front());
        } else if (format == Format::Json) {
            if (all_techniques)
                printJson(std::cout, table.results());
            else
                printJson(std::cout, table.results().front());
        } else if (all_techniques) {
            double base = 0;
            const SimResult *ooo =
                table.find(spec, techniqueName(Technique::OoO));
            if (ooo && ooo->ok())
                base = ooo->ipc();
            for (const SimResult &r : table.results()) {
                if (r.ok()) {
                    std::printf("%-14s IPC %-8.3f speedup %-7.2f "
                                "MLP %-6.1f DRAM %llu\n",
                                techniqueName(r.technique).c_str(),
                                r.ipc(),
                                base > 0 ? r.ipc() / base : 0.0,
                                r.mlp,
                                (unsigned long long)r.mem.dramTotal());
                } else {
                    std::printf("%-14s %-6s %s\n",
                                techniqueName(r.technique).c_str(),
                                simStatusName(r.status),
                                r.status_message.c_str());
                }
            }
        } else {
            printReport(std::cout, table.results().front(), cfg);
        }

        if (size_t failures = table.failures()) {
            std::cerr << "warn: " << failures << " of " << table.size()
                      << " technique runs failed (partial results "
                         "above)\n";
            return EXIT_FATAL;
        }
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return EXIT_FATAL;
    } catch (const HangError &e) {
        std::cerr << e.what() << "\n";
        return EXIT_PANIC_OR_HANG;
    } catch (const PanicError &e) {
        std::cerr << e.what() << "\n";
        return EXIT_PANIC_OR_HANG;
    }
    return 0;
}

/**
 * @file
 * The vrsim command-line runner: simulate any workload under any
 * technique with configuration overrides, printing a full report or a
 * CSV row.
 *
 * Usage:
 *   vrsim [options]
 *     --workload SPEC     bfs/KR, camel, hj8, ... (default camel)
 *     --technique NAME    ooo|pre|imp|vr|dvr-offload|dvr-discovery|
 *                         dvr|oracle (default dvr)
 *     --all-techniques    run every technique, print a speedup table
 *     --roi N             dynamic-instruction budget (default 150000)
 *     --rob N             ROB entries (default 350)
 *     --mshrs N           L1D MSHRs (default 24)
 *     --lanes N           DVR scalar-equivalent lanes (default 128)
 *     --nodes N           graph nodes (default 16384)
 *     --degree N          graph average degree (default 16)
 *     --elems N           hpc-db elements (default 65536)
 *     --paper-caches      full Table-1 L2/L3 instead of bench scaling
 *     --csv               emit a CSV row instead of the report
 *     --list              list available workload specs
 */

#include <cstring>
#include <iostream>

#include "driver/report.hh"
#include "driver/simulation.hh"

using namespace vrsim;

namespace
{

Technique
parseTechnique(const std::string &s)
{
    if (s == "ooo") return Technique::OoO;
    if (s == "pre") return Technique::Pre;
    if (s == "imp") return Technique::Imp;
    if (s == "vr") return Technique::Vr;
    if (s == "dvr-offload") return Technique::DvrOffload;
    if (s == "dvr-discovery") return Technique::DvrDiscovery;
    if (s == "dvr") return Technique::Dvr;
    if (s == "oracle") return Technique::Oracle;
    fatal("unknown technique: " + s);
}

[[noreturn]] void
usage()
{
    std::cerr <<
        "usage: vrsim [--workload SPEC] [--technique NAME]\n"
        "             [--all-techniques] [--roi N] [--rob N]\n"
        "             [--mshrs N] [--lanes N] [--nodes N]\n"
        "             [--degree N] [--elems N] [--paper-caches]\n"
        "             [--csv] [--list]\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string spec = "camel";
    std::string tech = "dvr";
    bool all_techniques = false;
    bool csv = false;
    bool paper_caches = false;
    uint64_t roi = 150'000;
    uint64_t warmup = 0;
    GraphScale gscale;
    HpcDbScale hscale;
    SystemConfig cfg = SystemConfig::benchScale();

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };

    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--workload") spec = need(i);
        else if (a == "--technique") tech = need(i);
        else if (a == "--all-techniques") all_techniques = true;
        else if (a == "--roi") roi = std::strtoull(need(i), nullptr, 0);
        else if (a == "--warmup")
            warmup = std::strtoull(need(i), nullptr, 0);
        else if (a == "--rob")
            cfg.core.rob_size =
                uint32_t(std::strtoul(need(i), nullptr, 0));
        else if (a == "--mshrs")
            cfg.l1d.mshrs = uint32_t(std::strtoul(need(i), nullptr, 0));
        else if (a == "--lanes")
            cfg.runahead.vector_regs =
                uint32_t(std::strtoul(need(i), nullptr, 0)) /
                cfg.runahead.lanes_per_vector;
        else if (a == "--nodes")
            gscale.nodes = std::strtoull(need(i), nullptr, 0);
        else if (a == "--degree")
            gscale.avg_degree = std::strtoull(need(i), nullptr, 0);
        else if (a == "--elems")
            hscale.elements = std::strtoull(need(i), nullptr, 0);
        else if (a == "--paper-caches") paper_caches = true;
        else if (a == "--csv") csv = true;
        else if (a == "--list") {
            for (const auto &k : gapKernelNames())
                for (const char *in : {"KR", "LJN", "ORK", "TW", "UR"})
                    std::cout << k << "/" << in << "\n";
            for (const auto &n : hpcDbNames())
                std::cout << n << "\n";
            std::cout << "camel-swpf\n";
            return 0;
        } else {
            usage();
        }
    }

    if (paper_caches) {
        SystemConfig p = SystemConfig::paper();
        cfg.l2 = p.l2;
        cfg.l3 = p.l3;
    }

    try {
        if (all_techniques) {
            const Technique techs[] = {
                Technique::OoO, Technique::Pre, Technique::Imp,
                Technique::Vr, Technique::DvrOffload,
                Technique::DvrDiscovery, Technique::Dvr,
                Technique::Oracle,
            };
            CsvWriter writer(std::cout);
            double base = 0;
            for (Technique t : techs) {
                SimResult r = runSimulation(spec, t, cfg, gscale,
                                            hscale, roi + warmup,
                                            warmup);
                if (t == Technique::OoO)
                    base = r.ipc();
                if (csv) {
                    writer.row(r);
                } else {
                    std::printf("%-14s IPC %-8.3f speedup %-7.2f "
                                "MLP %-6.1f DRAM %llu\n",
                                techniqueName(t).c_str(), r.ipc(),
                                base > 0 ? r.ipc() / base : 0.0,
                                r.mlp,
                                (unsigned long long)r.mem.dramTotal());
                }
            }
            return 0;
        }

        SimResult r = runSimulation(spec, parseTechnique(tech), cfg,
                                    gscale, hscale, roi + warmup,
                                    warmup);
        if (csv) {
            CsvWriter writer(std::cout);
            writer.row(r);
        } else {
            printReport(std::cout, r, cfg);
        }
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    return 0;
}

#!/usr/bin/env python3
"""Convert a vrsim NDJSON event trace to Chrome's tracing format.

Input is the file written by `vrsim --trace EVENTS:FILE` (one JSON
object per line; schema in docs/observability.md). Output is a Chrome
"JSON Array Format" trace loadable in chrome://tracing, Perfetto
(ui.perfetto.dev) or speedscope.

Two modes:

  events (default)
      Everything in the trace, one timeline row ("thread") per event
      class:
        * pipeline  — one duration slice per retired instruction,
                      dispatch..commit, labelled with the disassembly;
                      ROB occupancy as a counter track
        * mem       — instant events at each access's issue cycle,
                      named by hit level; L1D MSHR occupancy counter
        * runahead  — duration slices between enter/exit episode
                      markers, labelled engine/kind, with lane and
                      prefetch counts attached
        * lanes     — instant events per vector issue group

  intervals (--mode intervals)
      A compact episode timeline: only the runahead enter/exit slices
      and the ROB-occupancy counter, for eyeballing when each engine
      was active and what triggered it. Useful on long traces where
      per-instruction slices are too dense to render.

Simulated cycles are mapped 1:1 to microseconds (Chrome's `ts` unit),
so "1 us" in the viewer is one core cycle.

Usage:
  tools/trace2chrome.py TRACE.ndjson [-o OUT.json] [--mode MODE]
"""

import argparse
import json
import sys

# Fixed pid/tid layout: one process for the simulated machine, one
# thread row per event class (sorted by tid in the viewer).
PID = 1
TID_PIPELINE = 1
TID_MEM = 2
TID_RUNAHEAD = 3
TID_LANES = 4

THREAD_NAMES = {
    TID_PIPELINE: "pipeline (retired instructions)",
    TID_MEM: "memory accesses",
    TID_RUNAHEAD: "runahead episodes",
    TID_LANES: "vector lane groups",
}


def thread_metadata(tids):
    for tid in sorted(tids):
        yield {
            "ph": "M",
            "pid": PID,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": THREAD_NAMES[tid]},
        }


def counter(name, cycle, value):
    return {
        "ph": "C",
        "pid": PID,
        "name": name,
        "ts": cycle,
        "args": {name: value},
    }


def convert(lines, mode):
    """Yield Chrome trace events for the NDJSON lines of one trace."""
    tids_seen = set()
    open_episodes = []  # stack of pending runahead "enter" events
    events = []

    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as e:
            raise SystemExit(f"line {lineno}: not valid JSON: {e}")
        kind = ev.get("ev")
        if kind is None:
            raise SystemExit(f"line {lineno}: missing 'ev' field")

        if kind == "meta":
            # Run boundary: record it as process metadata so the
            # viewer's process row names the workload/technique.
            events.append({
                "ph": "M",
                "pid": PID,
                "name": "process_name",
                "args": {"name": "{}  [{}]  {}".format(
                    ev.get("workload", "?"), ev.get("technique", "?"),
                    ev.get("point", ""))},
            })
            if ev.get("version") != 1:
                print(f"warning: line {lineno}: schema version "
                      f"{ev.get('version')} (converter expects 1)",
                      file=sys.stderr)

        elif kind == "inst":
            if mode == "intervals":
                events.append(counter("rob_occupancy", ev["cyc"],
                                      ev["rob"]))
                continue
            tids_seen.add(TID_PIPELINE)
            start = ev["disp"]
            dur = max(1, ev["cyc"] - start)
            events.append({
                "ph": "X",
                "pid": PID,
                "tid": TID_PIPELINE,
                "name": ev.get("op", "inst"),
                "cat": "pipeline",
                "ts": start,
                "dur": dur,
                "args": {
                    "index": ev["i"],
                    "pc": ev["pc"],
                    "ready": ev["ready"],
                    "issue": ev["iss"],
                    "complete": ev["comp"],
                    "commit": ev["cyc"],
                    "load": bool(ev["load"]),
                    "mispredicted": bool(ev["misp"]),
                },
            })
            events.append(counter("rob_occupancy", ev["cyc"],
                                  ev["rob"]))

        elif kind == "mem":
            if mode == "intervals":
                continue
            tids_seen.add(TID_MEM)
            events.append({
                "ph": "i",
                "pid": PID,
                "tid": TID_MEM,
                "name": "{} {}".format(ev["req"], ev["lvl"]),
                "cat": "mem",
                "ts": ev["cyc"],
                "s": "t",
                "args": {
                    "addr": hex(ev["addr"]),
                    "pc": ev["pc"],
                    "latency": ev["lat"],
                    "store": bool(ev["store"]),
                    "mshr_stalled": bool(ev["mshr_stall"]),
                },
            })
            events.append(counter("l1d_mshrs_busy", ev["cyc"],
                                  ev["mshr"]))

        elif kind == "runahead":
            tids_seen.add(TID_RUNAHEAD)
            if ev["phase"] == "enter":
                open_episodes.append(ev)
            elif ev["phase"] == "exit":
                if not open_episodes:
                    print(f"warning: line {lineno}: runahead exit "
                          "without matching enter; skipped",
                          file=sys.stderr)
                    continue
                enter = open_episodes.pop()
                start = enter["cyc"]
                events.append({
                    "ph": "X",
                    "pid": PID,
                    "tid": TID_RUNAHEAD,
                    "name": "{} ({})".format(ev["engine"], ev["kind"]),
                    "cat": "runahead",
                    "ts": start,
                    "dur": max(1, ev["cyc"] - start),
                    "args": {
                        "trigger_pc": enter["trigger_pc"],
                        "lanes": ev["lanes"],
                        "prefetches": ev["pf"],
                    },
                })
            else:
                raise SystemExit(f"line {lineno}: unknown runahead "
                                 f"phase '{ev['phase']}'")

        elif kind == "lane":
            if mode == "intervals":
                continue
            tids_seen.add(TID_LANES)
            events.append({
                "ph": "i",
                "pid": PID,
                "tid": TID_LANES,
                "name": "issue x{}".format(ev["active"]),
                "cat": "lanes",
                "ts": ev["cyc"],
                "s": "t",
                "args": {"pc": ev["pc"], "prefetches": ev["pf"]},
            })

        else:
            raise SystemExit(f"line {lineno}: unknown event kind "
                             f"'{kind}'")

    for enter in open_episodes:
        print("warning: runahead enter at cycle "
              f"{enter['cyc']} never exited; dropped", file=sys.stderr)

    return list(thread_metadata(tids_seen)) + events


def main():
    ap = argparse.ArgumentParser(
        description="Convert a vrsim NDJSON trace to Chrome tracing "
                    "format (chrome://tracing / Perfetto).")
    ap.add_argument("trace", help="NDJSON trace from vrsim --trace")
    ap.add_argument("-o", "--output", default=None,
                    help="output file (default: TRACE.chrome.json)")
    ap.add_argument("--mode", choices=("events", "intervals"),
                    default="events",
                    help="events: everything; intervals: runahead "
                         "episodes + ROB occupancy only")
    args = ap.parse_args()

    out_path = args.output or args.trace + ".chrome.json"
    with open(args.trace) as f:
        events = convert(f, args.mode)
    with open(out_path, "w") as f:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ms"}, f)
        f.write("\n")
    print(f"{out_path}: {len(events)} Chrome trace events "
          f"({args.mode} mode)")


if __name__ == "__main__":
    main()

/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * A xorshift128+ generator: fast, reproducible across platforms, and
 * independent of libstdc++'s distribution implementations so that
 * generated graphs and tables are bit-identical everywhere.
 */

#ifndef VRSIM_SIM_RNG_HH
#define VRSIM_SIM_RNG_HH

#include <cstdint>

namespace vrsim
{

/** xorshift128+ PRNG with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // splitmix64 to expand the seed into two nonzero words.
        auto next = [&seed]() {
            seed += 0x9E3779B97F4A7C15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            return z ^ (z >> 31);
        };
        s0_ = next();
        s1_ = next();
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = s0_;
        const uint64_t y = s1_;
        s0_ = y;
        x ^= x << 23;
        s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
        return s1_ + y;
    }

    /** Uniform value in [0, bound). bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Modulo bias is negligible for bounds << 2^64 (all our uses).
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    uint64_t s0_;
    uint64_t s1_;
};

} // namespace vrsim

#endif // VRSIM_SIM_RNG_HH

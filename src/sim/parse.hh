/**
 * @file
 * Strict numeric parsing shared by every CLI flag and VRSIM_* knob.
 *
 * strtoull's silent-zero on garbage would e.g. turn `--roi garbage`
 * or `VRSIM_ROI=garbage` into an unlimited-budget run; these helpers
 * reject non-numeric, trailing-junk, negative and overflowing values
 * with the offending flag/variable named, via fatal() so callers can
 * map the failure onto their usual FatalError handling.
 */

#ifndef VRSIM_SIM_PARSE_HH
#define VRSIM_SIM_PARSE_HH

#include <cstdint>
#include <string>

namespace vrsim
{

/**
 * Parse @p s as a non-negative integer. @p what names the flag or
 * environment variable in the diagnostic. Throws FatalError on
 * anything but a clean, in-range, non-negative value.
 */
uint64_t parseU64(const std::string &what, const char *s);

/** parseU64 restricted to the uint32_t range. */
uint32_t parseU32(const std::string &what, const char *s);

/**
 * Read environment variable @p name as a strict non-negative integer,
 * returning @p dflt when unset. Throws FatalError on malformed values
 * (a typo must not silently fall back to the default).
 */
uint64_t envU64(const char *name, uint64_t dflt);

} // namespace vrsim

#endif // VRSIM_SIM_PARSE_HH

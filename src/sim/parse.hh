/**
 * @file
 * Strict parsing shared by every CLI flag, VRSIM_* knob, and
 * machine-readable artifact (repro bundles, sweep journals).
 *
 * strtoull's silent-zero on garbage would e.g. turn `--roi garbage`
 * or `VRSIM_ROI=garbage` into an unlimited-budget run; these helpers
 * reject non-numeric, trailing-junk, negative and overflowing values
 * with the offending flag/variable named, via fatal() so callers can
 * map the failure onto their usual FatalError handling.
 *
 * JsonValue is a deliberately small, strict JSON reader in the same
 * spirit: repro bundles and checkpoint journals must either parse
 * exactly or fail with a diagnostic naming the offending byte — a
 * half-read bundle silently replaying the wrong point would be worse
 * than no replay at all.
 */

#ifndef VRSIM_SIM_PARSE_HH
#define VRSIM_SIM_PARSE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vrsim
{

/**
 * Parse @p s as a non-negative integer. @p what names the flag or
 * environment variable in the diagnostic. Throws FatalError on
 * anything but a clean, in-range, non-negative value.
 */
uint64_t parseU64(const std::string &what, const char *s);

/** parseU64 restricted to the uint32_t range. */
uint32_t parseU32(const std::string &what, const char *s);

/**
 * Parse @p s as a finite double (strict: the whole string must be
 * consumed). Throws FatalError otherwise.
 */
double parseF64(const std::string &what, const char *s);

/**
 * Read environment variable @p name as a strict non-negative integer,
 * returning @p dflt when unset. Throws FatalError on malformed values
 * (a typo must not silently fall back to the default).
 */
uint64_t envU64(const char *name, uint64_t dflt);

/**
 * A parsed JSON document node. Strict reader: any syntax error,
 * trailing garbage, duplicate object key, or type mismatch on access
 * raises FatalError with the document name and byte offset. Numbers
 * keep their raw token so u64 values round-trip exactly (doubles go
 * through parseF64 / "%.17g" which round-trips IEEE binary64).
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /** Parse a complete document. @p what names it in diagnostics. */
    static JsonValue parse(const std::string &what,
                           const std::string &text);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }

    bool asBool() const;
    uint64_t asU64() const;          //!< strict non-negative integer
    double asF64() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;

    /** Object member; fatal() if absent. */
    const JsonValue &at(const std::string &key) const;

    /** Object member or null if absent (optional fields). */
    const JsonValue *find(const std::string &key) const;

    /** Object keys in document order (introspection, tests). */
    const std::vector<std::string> &keys() const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::string scalar_;             //!< number token or string value
    std::vector<JsonValue> array_;
    std::vector<std::string> keys_;  //!< object keys, document order
    std::map<std::string, JsonValue> object_;
    std::string what_;               //!< document name for diagnostics

    [[noreturn]] void typeError(const char *wanted) const;
};

/** Minimal JSON string escaping for writers (quotes, control chars). */
std::string jsonEscape(const std::string &s);

} // namespace vrsim

#endif // VRSIM_SIM_PARSE_HH

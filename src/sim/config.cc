#include "sim/config.hh"

#include "runahead/hardware_budget.hh"
#include "runahead/reconv_stack.hh"
#include "sim/logging.hh"

namespace vrsim
{

namespace
{

bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** fatal() with the offending parameter name and value spelled out. */
[[noreturn]] void
reject(const std::string &what, uint64_t value, const std::string &why)
{
    fatal(what + " = " + std::to_string(value) + ": " + why);
}

void
validateCache(const std::string &name, const CacheConfig &c)
{
    if (c.line_bytes == 0 || !isPow2(c.line_bytes))
        reject(name + ".line_bytes", c.line_bytes,
               "cache lines must be a nonzero power of two");
    if (c.assoc == 0)
        reject(name + ".assoc", c.assoc, "caches need at least one way");
    if (c.size_bytes < uint64_t(c.assoc) * c.line_bytes)
        reject(name + ".size_bytes", c.size_bytes,
               "smaller than one set (assoc x line_bytes = " +
                   std::to_string(uint64_t(c.assoc) * c.line_bytes) +
                   ")");
    const uint64_t sets =
        c.size_bytes / (uint64_t(c.assoc) * c.line_bytes);
    if (!isPow2(sets) ||
        sets * uint64_t(c.assoc) * c.line_bytes != c.size_bytes)
        reject(name + ".size_bytes", c.size_bytes,
               "geometry must give a power-of-two set count "
               "(size / (assoc x line_bytes))");
    if (c.mshrs == 0)
        reject(name + ".mshrs", c.mshrs,
               "a cache with no MSHRs can never fill a miss");
    if (c.ports == 0)
        reject(name + ".ports", c.ports,
               "a cache with no ports accepts no accesses");
    if (c.latency == 0)
        reject(name + ".latency", c.latency,
               "zero-cycle caches break the timing model");
}

} // namespace

void
SystemConfig::validate(bool verbose) const
{
    // ---- core window structures ----
    if (core.width == 0)
        reject("core.width", core.width,
               "the core must dispatch at least one µop per cycle");
    if (core.rob_size == 0)
        reject("core.rob_size", core.rob_size,
               "a zero-entry ROB dispatches nothing");
    if (core.issue_queue == 0)
        reject("core.issue_queue", core.issue_queue,
               "a zero-entry issue queue dispatches nothing");
    if (core.load_queue == 0)
        reject("core.load_queue", core.load_queue,
               "a zero-entry load queue admits no loads");
    if (core.store_queue == 0)
        reject("core.store_queue", core.store_queue,
               "a zero-entry store queue admits no stores");
    if (core.frontend_stages == 0)
        reject("core.frontend_stages", core.frontend_stages,
               "the pipeline needs at least one front-end stage");
    if (core.load_ports == 0 || core.store_ports == 0)
        fatal("core.load_ports/store_ports = " +
              std::to_string(core.load_ports) + "/" +
              std::to_string(core.store_ports) +
              ": memory instructions need at least one port each");
    if (core.int_add_units == 0 || core.int_mul_units == 0 ||
        core.int_div_units == 0 || core.fp_add_units == 0 ||
        core.fp_mul_units == 0 || core.fp_div_units == 0)
        fatal("every functional-unit class needs at least one unit "
              "(int add/mul/div, fp add/mul/div)");
    if (core.int_phys_regs == 0 || core.vec_phys_regs == 0)
        fatal("core.int_phys_regs/vec_phys_regs must be nonzero: the "
              "runahead subthread renames into them");

    // ---- memory hierarchy ----
    validateCache("l1i", l1i);
    validateCache("l1d", l1d);
    validateCache("l2", l2);
    validateCache("l3", l3);
    if (dram.latency == 0)
        reject("dram.latency", dram.latency,
               "DRAM cannot be faster than the caches in front of it");
    if (!(dram.bytes_per_cycle > 0.0))
        fatal("dram.bytes_per_cycle = " +
              std::to_string(dram.bytes_per_cycle) +
              ": bandwidth must be positive");
    if (dram.channels == 0)
        reject("dram.channels", dram.channels,
               "at least one DRAM channel is required");

    // ---- prefetchers ----
    if (stride_pf.enabled && stride_pf.streams == 0)
        reject("stride_pf.streams", stride_pf.streams,
               "the enabled stride prefetcher needs table entries "
               "(or set stride_pf.enabled = false)");
    if (technique == Technique::Imp && imp.table_entries == 0)
        reject("imp.table_entries", imp.table_entries,
               "IMP needs table entries under Technique::Imp");

    // ---- runahead geometry ----
    if (runahead.lanes_per_vector == 0)
        reject("runahead.lanes_per_vector", runahead.lanes_per_vector,
               "vector registers need at least one lane");
    if (runahead.vector_regs == 0)
        reject("runahead.vector_regs", runahead.vector_regs,
               "runahead needs at least one vector register "
               "(--lanes below lanes_per_vector truncates to zero)");
    if (runahead.max_lanes() > MAX_LANES)
        reject("runahead.vector_regs x lanes_per_vector",
               runahead.max_lanes(),
               "exceeds the " + std::to_string(MAX_LANES) +
                   "-lane structural limit (see reconv_stack.hh)");
    if (runahead.stride_entries == 0)
        reject("runahead.stride_entries", runahead.stride_entries,
               "the stride detector needs entries");
    if (runahead.discovery_max_insts == 0)
        reject("runahead.discovery_max_insts",
               runahead.discovery_max_insts,
               "a zero discovery cap aborts every Discovery walk");
    if (runahead.subthread_timeout == 0)
        reject("runahead.subthread_timeout", runahead.subthread_timeout,
               "lanes with a zero instruction budget cannot run");
    if (runahead.reconv_stack_entries == 0)
        reject("runahead.reconv_stack_entries",
               runahead.reconv_stack_entries,
               "DVR reconvergence needs stack entries");
    if (runahead.frontend_buffer_uops == 0)
        reject("runahead.frontend_buffer_uops",
               runahead.frontend_buffer_uops,
               "the runahead front-end buffer needs capacity");
    if (runahead.pre_chain_cap == 0)
        reject("runahead.pre_chain_cap", runahead.pre_chain_cap,
               "PRE needs a nonzero chain-walk cap");

    // Table-1 hardware budget (§4.4): reject geometries whose storage
    // cost exceeds the configured ceiling.
    if (runahead.max_budget_bytes != 0) {
        const uint64_t bytes = computeHardwareBudget(runahead).total();
        if (bytes > runahead.max_budget_bytes)
            fatal("runahead hardware budget " + std::to_string(bytes) +
                  " bytes exceeds runahead.max_budget_bytes = " +
                  std::to_string(runahead.max_budget_bytes) +
                  " (paper Table 1 budget is 1139 bytes)");
    }

    // ---- differential oracle ----
    if (collect_digest && digest_interval == 0)
        reject("digest_interval", digest_interval,
               "digest collection needs a nonzero sampling interval");

    // ---- suspicious-but-legal values ----
    if (!verbose)
        return;
    if (core.rob_size < core.width)
        warn("core.rob_size (" + std::to_string(core.rob_size) +
             ") below dispatch width (" + std::to_string(core.width) +
             "): the window refills slower than it drains");
    if (l1d.mshrs > l1d.size_bytes / l1d.line_bytes)
        warn("l1d.mshrs (" + std::to_string(l1d.mshrs) +
             ") exceeds the number of L1D lines; extra MSHRs cannot "
             "be used");
    if (watchdog_cycles != 0 && watchdog_cycles < 10'000)
        warn("watchdog_cycles = " + std::to_string(watchdog_cycles) +
             " is tight; legitimate runs may be reported as hangs");
    if (runahead.lanes_per_vector != 8)
        warn("runahead.lanes_per_vector = " +
             std::to_string(runahead.lanes_per_vector) +
             " differs from the paper's 8-lane vector registers");
}

std::string
techniqueName(Technique t)
{
    switch (t) {
      case Technique::OoO: return "OoO";
      case Technique::Pre: return "PRE";
      case Technique::Imp: return "IMP";
      case Technique::Vr: return "VR";
      case Technique::DvrOffload: return "DVR-Offload";
      case Technique::DvrDiscovery: return "DVR-Discovery";
      case Technique::Dvr: return "DVR";
      case Technique::Oracle: return "Oracle";
    }
    panic("unknown technique");
}

Technique
techniqueFromName(const std::string &name)
{
    static const Technique all[] = {
        Technique::OoO,         Technique::Pre,
        Technique::Imp,         Technique::Vr,
        Technique::DvrOffload,  Technique::DvrDiscovery,
        Technique::Dvr,         Technique::Oracle,
    };
    std::string valid;
    for (Technique t : all) {
        if (techniqueName(t) == name)
            return t;
        if (!valid.empty())
            valid += ", ";
        valid += techniqueName(t);
    }
    fatal("unknown technique '" + name + "' (valid: " + valid + ")");
}

SystemConfig
SystemConfig::paper()
{
    return SystemConfig{};
}

SystemConfig
SystemConfig::benchScale()
{
    SystemConfig cfg;
    // Inputs in the harness are ~100-1000x smaller than the paper's
    // graphs; shrink L2/L3 so the LLC is still defeated while L1
    // behaviour stays realistic.
    cfg.l2.size_bytes = 64 * 1024;
    cfg.l3.size_bytes = 512 * 1024;
    cfg.l3.latency = 30;
    cfg.dram.latency = 200;
    return cfg;
}

void
printConfig(std::ostream &os, const SystemConfig &cfg)
{
    os << "core            " << cfg.core.width << "-wide OoO, ROB "
       << cfg.core.rob_size << ", IQ " << cfg.core.issue_queue << ", LQ "
       << cfg.core.load_queue << ", SQ " << cfg.core.store_queue
       << ", " << cfg.core.frontend_stages << " front-end stages\n";
    os << "L1 D-cache      " << cfg.l1d.size_bytes / 1024 << " KB, assoc "
       << cfg.l1d.assoc << ", " << cfg.l1d.latency << "-cycle, "
       << cfg.l1d.mshrs << " MSHRs\n";
    os << "L2 cache        " << cfg.l2.size_bytes / 1024 << " KB, assoc "
       << cfg.l2.assoc << ", " << cfg.l2.latency << "-cycle\n";
    os << "L3 cache        " << cfg.l3.size_bytes / 1024 << " KB, assoc "
       << cfg.l3.assoc << ", " << cfg.l3.latency << "-cycle\n";
    os << "memory          " << cfg.dram.latency << "-cycle min latency, "
       << cfg.dram.bytes_per_cycle << " B/cycle\n";
    os << "stride pf       "
       << (cfg.stride_pf.enabled ? "enabled" : "disabled") << ", "
       << cfg.stride_pf.streams << " streams, degree "
       << cfg.stride_pf.degree << "\n";
    os << "technique       " << techniqueName(cfg.technique) << "\n";
}

} // namespace vrsim

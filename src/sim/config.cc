#include "sim/config.hh"

#include "sim/logging.hh"

namespace vrsim
{

std::string
techniqueName(Technique t)
{
    switch (t) {
      case Technique::OoO: return "OoO";
      case Technique::Pre: return "PRE";
      case Technique::Imp: return "IMP";
      case Technique::Vr: return "VR";
      case Technique::DvrOffload: return "DVR-Offload";
      case Technique::DvrDiscovery: return "DVR-Discovery";
      case Technique::Dvr: return "DVR";
      case Technique::Oracle: return "Oracle";
    }
    panic("unknown technique");
}

SystemConfig
SystemConfig::paper()
{
    return SystemConfig{};
}

SystemConfig
SystemConfig::benchScale()
{
    SystemConfig cfg;
    // Inputs in the harness are ~100-1000x smaller than the paper's
    // graphs; shrink L2/L3 so the LLC is still defeated while L1
    // behaviour stays realistic.
    cfg.l2.size_bytes = 64 * 1024;
    cfg.l3.size_bytes = 512 * 1024;
    cfg.l3.latency = 30;
    cfg.dram.latency = 200;
    return cfg;
}

void
printConfig(std::ostream &os, const SystemConfig &cfg)
{
    os << "core            " << cfg.core.width << "-wide OoO, ROB "
       << cfg.core.rob_size << ", IQ " << cfg.core.issue_queue << ", LQ "
       << cfg.core.load_queue << ", SQ " << cfg.core.store_queue
       << ", " << cfg.core.frontend_stages << " front-end stages\n";
    os << "L1 D-cache      " << cfg.l1d.size_bytes / 1024 << " KB, assoc "
       << cfg.l1d.assoc << ", " << cfg.l1d.latency << "-cycle, "
       << cfg.l1d.mshrs << " MSHRs\n";
    os << "L2 cache        " << cfg.l2.size_bytes / 1024 << " KB, assoc "
       << cfg.l2.assoc << ", " << cfg.l2.latency << "-cycle\n";
    os << "L3 cache        " << cfg.l3.size_bytes / 1024 << " KB, assoc "
       << cfg.l3.assoc << ", " << cfg.l3.latency << "-cycle\n";
    os << "memory          " << cfg.dram.latency << "-cycle min latency, "
       << cfg.dram.bytes_per_cycle << " B/cycle\n";
    os << "stride pf       "
       << (cfg.stride_pf.enabled ? "enabled" : "disabled") << ", "
       << cfg.stride_pf.streams << " streams, degree "
       << cfg.stride_pf.degree << "\n";
    os << "technique       " << techniqueName(cfg.technique) << "\n";
}

} // namespace vrsim

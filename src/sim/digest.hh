/**
 * @file
 * Differential correctness oracle: an incremental hash over the
 * committed architectural effects of a run.
 *
 * Runahead is microarchitectural only — PRE/VR/DVR may prefetch and
 * speculate, but the committed instruction stream (program-order
 * register writebacks and store values) of any technique must be
 * bit-identical to the plain OoO baseline's. The StateDigest makes
 * that contract checkable: the core's commit path feeds it every
 * retired instruction, it folds the architecturally visible effects
 * into a running 64-bit hash, and records the hash at fixed
 * instruction intervals so a divergence can be localized to an
 * instruction window instead of "somewhere in 150k instructions".
 *
 * The speculation guard half of the contract lives here too: runahead
 * engines bracket their transient execution in a ScopedSpeculation,
 * and StateDigest::retire() panics if a commit is recorded while any
 * speculation scope is open — committed state must never originate
 * inside transient execution.
 */

#ifndef VRSIM_SIM_DIGEST_HH
#define VRSIM_SIM_DIGEST_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/logging.hh"

namespace vrsim
{

/**
 * The architecturally visible effects of one committed instruction,
 * as fed to the digest by the core's commit path. A plain-old-data
 * mirror of the StepInfo fields that matter architecturally, so the
 * digest layer (src/sim) needs no ISA types.
 */
struct CommitRecord
{
    uint32_t pc = 0;
    bool writes_reg = false;
    uint8_t reg = 0;            //!< destination register if writes_reg
    uint64_t reg_value = 0;     //!< value written to reg
    bool is_store = false;
    uint64_t store_addr = 0;    //!< effective address if is_store
    uint64_t store_value = 0;   //!< value stored if is_store
};

/** The finished digest of one run's committed stream. */
struct DigestRecord
{
    uint64_t interval = 0;      //!< instructions per interval digest
    uint64_t instructions = 0;  //!< retired instructions covered
    uint64_t final_digest = 0;  //!< hash after the last instruction
    /** Running hash sampled after each full interval, in order. */
    std::vector<uint64_t> intervals;

    bool
    operator==(const DigestRecord &o) const
    {
        return interval == o.interval &&
               instructions == o.instructions &&
               final_digest == o.final_digest &&
               intervals == o.intervals;
    }
};

/**
 * Where two digests first disagree: the interval index and the
 * retired-instruction window [inst_lo, inst_hi) it covers, plus the
 * two hash values, so the bug is localized to a replayable window.
 */
struct DigestDivergence
{
    uint64_t interval_index = 0;
    uint64_t inst_lo = 0;
    uint64_t inst_hi = 0;
    uint64_t expected = 0;  //!< baseline hash of the window
    uint64_t actual = 0;    //!< diverged run's hash

    std::string
    toString() const
    {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "interval %llu (insts [%llu, %llu)): "
                      "digest %016llx != baseline %016llx",
                      (unsigned long long)interval_index,
                      (unsigned long long)inst_lo,
                      (unsigned long long)inst_hi,
                      (unsigned long long)actual,
                      (unsigned long long)expected);
        return buf;
    }
};

/** Incremental committed-state hasher. */
class StateDigest
{
  public:
    /** @param interval retired instructions per interval sample. */
    explicit StateDigest(uint64_t interval = 8192)
        : interval_(interval)
    {
        panicIfNot(interval_ != 0,
                   "StateDigest interval must be nonzero");
    }

    /** Fold one committed instruction into the digest. */
    void retire(const CommitRecord &cr);

    /** Finish and return the record (callable once per run). */
    DigestRecord record() const;

    uint64_t instructions() const { return insts_; }

  private:
    uint64_t interval_;
    uint64_t insts_ = 0;
    uint64_t hash_ = 0xcbf29ce484222325ull;  //!< FNV-1a offset basis
    std::vector<uint64_t> intervals_;
};

/**
 * Compare a run's digest against the baseline's, localizing the first
 * mismatching interval. Returns nullopt when the digests agree.
 */
std::optional<DigestDivergence>
compareDigests(const DigestRecord &baseline, const DigestRecord &run);

/**
 * RAII commit-visibility guard: runahead engines open one around any
 * transient (speculative) execution region. While at least one scope
 * is open on the thread, StateDigest::retire() panics — a commit
 * recorded inside transient execution means speculative state leaked
 * into the architectural stream.
 */
class ScopedSpeculation
{
  public:
    ScopedSpeculation() { ++depth(); }
    ~ScopedSpeculation() { --depth(); }
    ScopedSpeculation(const ScopedSpeculation &) = delete;
    ScopedSpeculation &operator=(const ScopedSpeculation &) = delete;

    /** Open speculation scopes on the calling thread. */
    static uint32_t
    current()
    {
        return depth();
    }

  private:
    static uint32_t &
    depth()
    {
        thread_local uint32_t d = 0;
        return d;
    }
};

} // namespace vrsim

#endif // VRSIM_SIM_DIGEST_HH

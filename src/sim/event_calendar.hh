/**
 * @file
 * Event-driven cycle-skipping occupancy calendar.
 *
 * Every capacity-over-time resource in the simulator (MSHR banks,
 * DRAM channels, L1 ports, FU issue ports) answers one question on
 * its hot path: "what is the first bucket at or after B with a free
 * slot?". The original calendars answered it by polling bucket by
 * bucket through a hash map — O(backlog) probes per allocation, and
 * the dominant cost of the whole simulator on memory-bound workloads
 * where thousands of consecutive buckets are full.
 *
 * EventCalendar replaces the poll with an event skip: occupancy lives
 * in flat chunked arrays, and each chunk carries union-find style
 * "next possibly-free bucket" pointers with path compression. Once a
 * bucket is observed full, every later query through it jumps over
 * the entire known-full run in near-constant time. The skip structure
 * is sound because bucket fullness is monotone — reservations are
 * never released, only retired wholesale once the core's dispatch
 * horizon has passed them (retireBefore), so "full" can never revert
 * to "free".
 *
 * The skip layer changes *where the answer is found, never what the
 * answer is*: a skipped bucket is by construction full, so the result
 * is bit-for-bit the bucket the linear poll would have returned.
 * Setting VRSIM_CYCLE_SKIP=0 (or setSkipEnabled(false) in tests)
 * falls back to the linear reference scan so the equivalence is
 * directly testable; the digest oracle (--check-digests) and the
 * stats byte-identity matrix in tests/sim/event_calendar_test.cc
 * gate it in CI. probes()/skips() expose how much scanning actually
 * happened, which is what the all-stalled-window regression test
 * bounds.
 */

#ifndef VRSIM_SIM_EVENT_CALENDAR_HH
#define VRSIM_SIM_EVENT_CALENDAR_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "sim/logging.hh"

namespace vrsim
{

using Cycle = uint64_t;  // mirrors mem/request.hh (no cyclic include)

/**
 * Chunked bucket-occupancy timeline for one resource of `capacity`
 * simultaneous users. Buckets are abstract time units; callers apply
 * their own cycle-to-bucket shift (see mem/interval_resource.hh).
 */
class EventCalendar
{
  public:
    /** Buckets per chunk: the retirement granularity, and the unit of
     *  storage growth (one chunk = 24 KB). */
    static constexpr uint32_t CHUNK_BITS = 12;
    static constexpr uint32_t CHUNK_SIZE = 1u << CHUNK_BITS;

    explicit EventCalendar(uint32_t capacity)
        : capacity_(capacity), skip_(skipEnabled())
    {
        panicIfNot(capacity > 0, "calendar needs capacity");
    }

    /**
     * Process-wide mode switch, resolved from VRSIM_CYCLE_SKIP at
     * first use (unset or any value but "0" = skipping on). Captured
     * per instance at construction so a run's behaviour cannot change
     * midway; tests flip it between runs via setSkipEnabled().
     */
    static bool
    skipEnabled()
    {
        int m = mode().load(std::memory_order_relaxed);
        if (m < 0) {
            const char *e = std::getenv("VRSIM_CYCLE_SKIP");
            m = (e && e[0] == '0' && e[1] == '\0') ? 0 : 1;
            mode().store(m, std::memory_order_relaxed);
        }
        return m != 0;
    }

    /** Override the mode for calendars constructed from now on. */
    static void
    setSkipEnabled(bool on)
    {
        mode().store(on ? 1 : 0, std::memory_order_relaxed);
    }

    /** Whether this instance was built with skipping on. */
    bool skipping() const { return skip_; }

    /** Occupancy of bucket @p b (0 for untouched or retired ones). */
    uint32_t
    at(Cycle b) const
    {
        size_t ci = size_t(b >> CHUNK_BITS);
        if (ci < retired_chunks_ || ci >= chunks_.size() || !chunks_[ci])
            return 0;
        return chunks_[ci]->used[b & (CHUNK_SIZE - 1)];
    }

    /**
     * First bucket >= @p b whose occupancy is below capacity. Mutates
     * only the skip pointers (the answer itself is mode-independent).
     */
    Cycle
    nextFree(Cycle b)
    {
        size_t ci = size_t(b >> CHUNK_BITS);
        panicIfNot(ci >= retired_chunks_,
                   "calendar probed retired history (allocation below "
                   "the dispatch horizon)");
        while (true) {
            if (ci >= chunks_.size() || !chunks_[ci]) {
                // Untouched chunk: every bucket is empty.
                ++probes_;
                return b;
            }
            Chunk &c = *chunks_[ci];
            uint32_t idx = uint32_t(b & (CHUNK_SIZE - 1));
            uint32_t f = skip_ ? findFrom(c, idx) : scanFrom(c, idx);
            if (f < CHUNK_SIZE)
                return (Cycle(ci) << CHUNK_BITS) + f;
            ++ci;
            b = Cycle(ci) << CHUNK_BITS;
        }
    }

    /** Add one user to every bucket in [@p first_b, @p last_b]. */
    void
    fill(Cycle first_b, Cycle last_b)
    {
        for (Cycle b = first_b; b <= last_b; b++) {
            size_t ci = size_t(b >> CHUNK_BITS);
            panicIfNot(ci >= retired_chunks_,
                       "calendar filled retired history (allocation "
                       "below the dispatch horizon)");
            if (ci >= chunks_.size())
                chunks_.resize(ci + 1);
            if (!chunks_[ci]) {
                if (!pool_.empty()) {
                    chunks_[ci] = std::move(pool_.back());
                    pool_.pop_back();
                    chunks_[ci]->reset();
                } else {
                    chunks_[ci] = std::make_unique<Chunk>();
                }
            }
            ++chunks_[ci]->used[b & (CHUNK_SIZE - 1)];
        }
    }

    /**
     * Drop all storage for chunks wholly below bucket @p b. Callers
     * guarantee no later allocation starts below the horizon; a
     * violation panics in nextFree()/fill() rather than mis-timing.
     * Retired chunks are pooled for reuse, so steady state touches no
     * fresh pages.
     */
    void
    retireBefore(Cycle b)
    {
        size_t ci = size_t(b >> CHUNK_BITS);
        size_t end = ci < chunks_.size() ? ci : chunks_.size();
        for (size_t k = retired_chunks_; k < end; k++) {
            if (chunks_[k])
                pool_.push_back(std::move(chunks_[k]));
        }
        if (ci > retired_chunks_)
            retired_chunks_ = ci;
    }

    /** Buckets whose occupancy was actually examined. */
    uint64_t probes() const { return probes_; }

    /** Buckets jumped over without examination (skip mode only). */
    uint64_t skips() const { return skips_; }

    void
    clear()
    {
        chunks_.clear();
        pool_.clear();
        retired_chunks_ = 0;
        probes_ = 0;
        skips_ = 0;
    }

  private:
    struct Chunk
    {
        std::array<uint32_t, CHUNK_SIZE> used{};
        // Skip pointers are stored as deltas so an all-zero chunk is
        // the valid initial state (value-init = one memset, and pooled
        // chunks re-zero cheaply):
        //   next[i] == 0: bucket i's fullness is unknown, examine it.
        //   next[i] == d: buckets [i, i + d) are known full.
        std::array<uint16_t, CHUNK_SIZE> next{};

        void
        reset()
        {
            used.fill(0);
            next.fill(0);
        }
    };

    static std::atomic<int> &
    mode()
    {
        static std::atomic<int> m{-1};
        return m;
    }

    /** Linear reference scan (VRSIM_CYCLE_SKIP=0). */
    uint32_t
    scanFrom(const Chunk &c, uint32_t i)
    {
        for (; i < CHUNK_SIZE; i++) {
            ++probes_;
            if (c.used[i] < capacity_)
                return i;
        }
        return CHUNK_SIZE;
    }

    /** Union-find skip with path halving (deltas; 0 = examine). */
    uint32_t
    findFrom(Chunk &c, uint32_t i)
    {
        while (i < CHUNK_SIZE) {
            uint32_t d = c.next[i];
            if (d == 0) {
                ++probes_;
                if (c.used[i] < capacity_)
                    return i;
                // Observed full; fullness is monotone, so this edge
                // stays valid forever.
                c.next[i] = 1;
                ++i;
            } else {
                uint32_t n = i + d;
                // Invariant: i + next[i] <= CHUNK_SIZE, so the halved
                // delta below still fits and never points past the
                // chunk.
                if (n < CHUNK_SIZE && c.next[n] != 0)
                    c.next[i] = uint16_t(n + c.next[n] - i);
                skips_ += d;
                i = n;
            }
        }
        return CHUNK_SIZE;
    }

    uint32_t capacity_;
    bool skip_;
    std::vector<std::unique_ptr<Chunk>> chunks_;
    std::vector<std::unique_ptr<Chunk>> pool_;  //!< retired, reusable
    size_t retired_chunks_ = 0;
    uint64_t probes_ = 0;
    uint64_t skips_ = 0;
};

} // namespace vrsim

#endif // VRSIM_SIM_EVENT_CALENDAR_HH

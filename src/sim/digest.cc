#include "sim/digest.hh"

#include <algorithm>

namespace vrsim
{

namespace
{

/** FNV-1a over one 64-bit word, byte by byte. */
inline uint64_t
fnv1a64(uint64_t h, uint64_t word)
{
    for (int i = 0; i < 8; i++) {
        h ^= (word >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;  // FNV prime
    }
    return h;
}

} // namespace

void
StateDigest::retire(const CommitRecord &cr)
{
    panicIfNot(ScopedSpeculation::current() == 0,
               "commit recorded inside a speculative-execution scope: "
               "transient runahead state leaked into the committed "
               "stream");
    // Tag each field class so (pc, value) pairs cannot alias between
    // register writebacks and stores.
    uint64_t h = hash_;
    h = fnv1a64(h, cr.pc);
    if (cr.writes_reg) {
        h = fnv1a64(h, 0x01ull | (uint64_t(cr.reg) << 8));
        h = fnv1a64(h, cr.reg_value);
    }
    if (cr.is_store) {
        h = fnv1a64(h, 0x02ull);
        h = fnv1a64(h, cr.store_addr);
        h = fnv1a64(h, cr.store_value);
    }
    hash_ = h;
    if (++insts_ % interval_ == 0)
        intervals_.push_back(hash_);
}

DigestRecord
StateDigest::record() const
{
    DigestRecord r;
    r.interval = interval_;
    r.instructions = insts_;
    r.final_digest = hash_;
    r.intervals = intervals_;
    return r;
}

std::optional<DigestDivergence>
compareDigests(const DigestRecord &baseline, const DigestRecord &run)
{
    DigestDivergence d;
    if (baseline.interval != run.interval) {
        // Incomparable sampling: treat as divergence over the whole
        // run rather than guessing a window.
        d.inst_hi = std::max(baseline.instructions, run.instructions);
        d.expected = baseline.final_digest;
        d.actual = run.final_digest;
        return d;
    }
    const size_t n =
        std::min(baseline.intervals.size(), run.intervals.size());
    for (size_t i = 0; i < n; i++) {
        if (baseline.intervals[i] != run.intervals[i]) {
            d.interval_index = i;
            d.inst_lo = i * baseline.interval;
            d.inst_hi = (i + 1) * baseline.interval;
            d.expected = baseline.intervals[i];
            d.actual = run.intervals[i];
            return d;
        }
    }
    if (baseline.instructions != run.instructions ||
        baseline.final_digest != run.final_digest ||
        baseline.intervals.size() != run.intervals.size()) {
        // Diverged in (or truncated within) the tail past the last
        // common interval sample.
        d.interval_index = n;
        d.inst_lo = n * baseline.interval;
        d.inst_hi = std::max(baseline.instructions, run.instructions);
        d.expected = baseline.final_digest;
        d.actual = run.final_digest;
        return d;
    }
    return std::nullopt;
}

} // namespace vrsim

/**
 * @file
 * A small statistics package: scalar counters, averages, distributions
 * and formulas, registered in a named group and printable as a table.
 */

#ifndef VRSIM_SIM_STATS_HH
#define VRSIM_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace vrsim
{

/** A named scalar statistic (a 64-bit counter or double value). */
class Scalar
{
  public:
    Scalar() = default;
    explicit Scalar(std::string name, std::string desc = "")
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    Scalar &operator++() { value_ += 1.0; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }
    void reset() { value_ = 0.0; }

  private:
    std::string name_;
    std::string desc_;
    double value_ = 0.0;
};

/** Arithmetic-mean statistic: accumulates samples, reports the mean. */
class Average
{
  public:
    Average() = default;
    explicit Average(std::string name, std::string desc = "")
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    void sample(double v) { sum_ += v; count_ += 1; }

    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }
    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** One self-describing line: "name mean (desc, N samples)". */
    void
    dump(std::ostream &os) const
    {
        os << name_ << " " << mean();
        if (!desc_.empty())
            os << " # " << desc_;
        os << " (" << count_ << " samples)\n";
    }

    void reset() { sum_ = 0.0; count_ = 0; }

  private:
    std::string name_;
    std::string desc_;
    double sum_ = 0.0;
    uint64_t count_ = 0;
};

/**
 * A fixed-bucket histogram over [0, max) with uniform bucket width,
 * plus an overflow bucket. Used e.g. for MSHR-occupancy distributions.
 */
class Histogram
{
  public:
    Histogram() = default;
    Histogram(std::string name, size_t buckets, double bucket_width)
        : name_(std::move(name)), width_(bucket_width),
          counts_(buckets + 1, 0)
    {
        panicIfNot(buckets > 0 && bucket_width > 0,
                   "histogram needs positive geometry");
    }

    void
    sample(double v, uint64_t weight = 1)
    {
        size_t idx = v < 0 ? 0 : size_t(v / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        counts_[idx] += weight;
        total_ += weight;
        sum_ += v * double(weight);
    }

    uint64_t total() const { return total_; }
    double mean() const { return total_ ? sum_ / double(total_) : 0.0; }
    const std::string &name() const { return name_; }
    double bucketWidth() const { return width_; }
    const std::vector<uint64_t> &buckets() const { return counts_; }

    /**
     * Attributable dump: every line carries the histogram's name, so
     * several histograms can share one stream and stay separable.
     */
    void
    dump(std::ostream &os) const
    {
        os << name_ << ".mean " << mean() << "\n";
        os << name_ << ".total " << total_ << "\n";
        for (size_t i = 0; i < counts_.size(); i++) {
            os << name_ << "[";
            if (i + 1 == counts_.size())
                os << width_ * double(i) << "+";
            else
                os << width_ * double(i) << "," << width_ * double(i + 1);
            os << ") " << counts_[i] << "\n";
        }
    }

    /** Fraction of samples in bucket i. */
    double
    fraction(size_t i) const
    {
        panicIfNot(i < counts_.size(), "histogram bucket out of range");
        return total_ ? double(counts_[i]) / double(total_) : 0.0;
    }

    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        total_ = 0;
        sum_ = 0.0;
    }

  private:
    std::string name_;
    double width_ = 1.0;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
    double sum_ = 0.0;
};

/**
 * A named group of scalar statistics; supports lookup, dumping and
 * reset. Engines register their counters here so the driver can print
 * uniform result tables.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "stats") : name_(std::move(name))
    {}

    /** Create (or fetch) a scalar by name. */
    Scalar &
    scalar(const std::string &name, const std::string &desc = "")
    {
        auto it = scalars_.find(name);
        if (it == scalars_.end())
            it = scalars_.emplace(name, Scalar(name, desc)).first;
        return it->second;
    }

    bool has(const std::string &name) const { return scalars_.count(name); }

    double
    value(const std::string &name) const
    {
        auto it = scalars_.find(name);
        if (it == scalars_.end())
            panic("unknown stat: " + name);
        return it->second.value();
    }

    void
    reset()
    {
        for (auto &kv : scalars_)
            kv.second.reset();
    }

    void
    dump(std::ostream &os) const
    {
        for (const auto &kv : scalars_)
            os << name_ << "." << kv.first << " " << kv.second.value()
               << "\n";
    }

    const std::map<std::string, Scalar> &all() const { return scalars_; }

  private:
    std::string name_;
    std::map<std::string, Scalar> scalars_;
};

} // namespace vrsim

#endif // VRSIM_SIM_STATS_HH

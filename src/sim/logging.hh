/**
 * @file
 * Logging, panic and fatal helpers in the gem5 tradition.
 *
 * panic() is for internal simulator bugs (aborts); fatal() is for user
 * or configuration errors (clean exit); hang() is for forward-progress
 * watchdog expiry (a run that stopped retiring/draining); warn()/
 * inform() report status. All output and all error messages raised
 * while a sweep worker is executing a point are tagged with that
 * point's ID (see setLogContext), so parallel-sweep diagnostics stay
 * attributable. warn() is rate-limited per call-site: the first
 * occurrence prints, later occurrences are counted and summarized at
 * process exit, so a pathological grid point cannot flood the
 * mutex-serialized log and stall sibling workers. See
 * docs/robustness.md for the taxonomy and the exit codes the tools
 * map each class to.
 */

#ifndef VRSIM_SIM_LOGGING_HH
#define VRSIM_SIM_LOGGING_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <source_location>
#include <stdexcept>
#include <string>

namespace vrsim
{

namespace log_detail
{

/** One process-wide mutex so concurrent sweep workers cannot
 *  interleave half-lines on stderr. */
inline std::mutex &
mutex()
{
    static std::mutex m;
    return m;
}

/** Per-thread tag naming the sweep point this thread is running. */
inline std::string &
tag()
{
    thread_local std::string t;
    return t;
}

} // namespace log_detail

/**
 * Label all warn()/inform() output — and the messages of any
 * FatalError/PanicError/HangError raised — by the calling thread with
 * @p tag (the sweep-point ID while a SweepRunner worker executes a
 * point). An empty tag restores untagged output.
 */
inline void
setLogContext(std::string tag)
{
    log_detail::tag() = std::move(tag);
}

/** The calling thread's current log tag ("" when unset). */
inline const std::string &
logContext()
{
    return log_detail::tag();
}

namespace log_detail
{

/** "[tag] msg" when a log context is set, plain msg otherwise. */
inline std::string
tagged(const std::string &msg)
{
    const std::string &t = tag();
    return t.empty() ? msg : "[" + t + "] " + msg;
}

} // namespace log_detail

/** Exception thrown by panic() so tests can assert on invariants. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal() for user/configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/**
 * Forward-progress snapshot attached to a HangError: where the run
 * was when the watchdog concluded it had wedged.
 */
struct ProgressSnapshot
{
    std::string point;           //!< sweep-point ID (logContext) if any
    std::string where;           //!< which loop fired (core, lanes, ...)
    uint64_t pc = 0;             //!< architectural PC at expiry
    uint64_t retired = 0;        //!< instructions retired so far
    uint64_t cycles = 0;         //!< simulated cycles elapsed
    uint64_t rob_occupancy = 0;  //!< in-flight window entries
    uint64_t mshr_busy = 0;      //!< L1D MSHRs outstanding

    std::string
    toString() const
    {
        return (point.empty() ? "" : "point=" + point + " ") + where +
               " pc=" + std::to_string(pc) +
               " retired=" + std::to_string(retired) +
               " cycles=" + std::to_string(cycles) +
               " rob=" + std::to_string(rob_occupancy) +
               " mshrs=" + std::to_string(mshr_busy);
    }
};

/**
 * Exception thrown by hang() when a forward-progress watchdog expires:
 * the run was structurally alive but stopped making progress (or can
 * never halt). Carries the progress snapshot for the failure report.
 */
class HangError : public std::runtime_error
{
  public:
    HangError(const std::string &msg, ProgressSnapshot snap)
        : std::runtime_error(msg + " [" + snap.toString() + "]"),
          snapshot_(std::move(snap))
    {}

    const ProgressSnapshot &progress() const { return snapshot_; }

  private:
    ProgressSnapshot snapshot_;
};

/**
 * Report a forward-progress watchdog expiry. The snapshot (and hence
 * the report) is stamped with the running point ID so watchdog
 * expiries from parallel sweeps are attributable.
 */
[[noreturn]] inline void
hang(const std::string &msg, ProgressSnapshot snap)
{
    if (snap.point.empty())
        snap.point = logContext();
    throw HangError("hang: " + msg, std::move(snap));
}

/**
 * Report an internal simulator invariant violation.
 *
 * Throws PanicError so unit tests can exercise defensive checks without
 * terminating the test binary.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw PanicError("panic: " + log_detail::tagged(msg));
}

/** Report an unrecoverable user/configuration error. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + log_detail::tagged(msg));
}

namespace log_detail
{

/** Per-call-site warn occurrence counts (guarded by mutex()). */
inline std::map<std::string, uint64_t> &
warnSites()
{
    static std::map<std::string, uint64_t> m;
    return m;
}

/** "file:line" key identifying one warn() call site. */
inline std::string
siteKey(const std::source_location &loc)
{
    const char *file = loc.file_name();
    // Basename only: full build paths add noise and differ between
    // checkouts.
    for (const char *p = file; *p; p++)
        if (*p == '/')
            file = p + 1;
    return std::string(file) + ":" + std::to_string(loc.line());
}

} // namespace log_detail

/** Serialized, context-tagged line writer behind warn()/inform(). */
inline void
logLine(const char *prefix, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(log_detail::mutex());
    const std::string &tag = log_detail::tag();
    if (tag.empty())
        std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
    else
        std::fprintf(stderr, "%s: [%s] %s\n", prefix, tag.c_str(),
                     msg.c_str());
}

/**
 * Print the end-of-run warning summary: one line per call site whose
 * warnings were suppressed by the rate limiter, with the total count.
 * Registered via atexit the first time a site repeats; tests may call
 * it directly.
 */
inline void
printWarnSummary()
{
    std::lock_guard<std::mutex> lock(log_detail::mutex());
    for (const auto &kv : log_detail::warnSites()) {
        if (kv.second > 1)
            std::fprintf(stderr,
                         "warn-summary: %s warned %llu times "
                         "(%llu suppressed)\n",
                         kv.first.c_str(),
                         (unsigned long long)kv.second,
                         (unsigned long long)(kv.second - 1));
    }
}

/** Drop all per-site warn counts (tests). */
inline void
resetWarnRateLimit()
{
    std::lock_guard<std::mutex> lock(log_detail::mutex());
    log_detail::warnSites().clear();
}

/** Times the call site at @p loc has warned so far (tests). */
inline uint64_t
warnCount(const std::source_location loc =
              std::source_location::current())
{
    std::lock_guard<std::mutex> lock(log_detail::mutex());
    auto &sites = log_detail::warnSites();
    auto it = sites.find(log_detail::siteKey(loc));
    return it == sites.end() ? 0 : it->second;
}

/**
 * Report a suspicious but survivable condition. Rate-limited per call
 * site (warn-once-then-count): the first occurrence prints, the second
 * prints once more with a suppression notice, and later occurrences
 * are only counted; printWarnSummary() reports the totals at process
 * exit.
 */
inline void
warn(const std::string &msg, const std::source_location loc =
                                 std::source_location::current())
{
    uint64_t n;
    {
        std::lock_guard<std::mutex> lock(log_detail::mutex());
        n = ++log_detail::warnSites()[log_detail::siteKey(loc)];
    }
    if (n == 1) {
        logLine("warn", msg);
    } else if (n == 2) {
        static std::once_flag once;
        std::call_once(once, [] { std::atexit(printWarnSummary); });
        logLine("warn", msg + " [" + log_detail::siteKey(loc) +
                            " repeats; further occurrences counted, "
                            "summary at exit]");
    }
}

/** Report normal operational status. */
inline void
inform(const std::string &msg)
{
    logLine("info", msg);
}

/** panic() unless the condition holds. */
inline void
panicIfNot(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

/**
 * Literal-message overload: hot-path assertions pass string literals,
 * and the std::string conversion must not be paid on the
 * passing-check path (it would be constructed before the branch).
 */
inline void
panicIfNot(bool cond, const char *msg)
{
    if (!cond) [[unlikely]]
        panic(std::string(msg));
}

} // namespace vrsim

#endif // VRSIM_SIM_LOGGING_HH

/**
 * @file
 * Logging, panic and fatal helpers in the gem5 tradition.
 *
 * panic() is for internal simulator bugs (aborts); fatal() is for user
 * or configuration errors (clean exit); hang() is for forward-progress
 * watchdog expiry (a run that stopped retiring/draining); warn()/
 * inform() report status. See docs/robustness.md for the taxonomy and
 * the exit codes the tools map each class to.
 */

#ifndef VRSIM_SIM_LOGGING_HH
#define VRSIM_SIM_LOGGING_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>

namespace vrsim
{

/** Exception thrown by panic() so tests can assert on invariants. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal() for user/configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/**
 * Forward-progress snapshot attached to a HangError: where the run
 * was when the watchdog concluded it had wedged.
 */
struct ProgressSnapshot
{
    std::string where;           //!< which loop fired (core, lanes, ...)
    uint64_t pc = 0;             //!< architectural PC at expiry
    uint64_t retired = 0;        //!< instructions retired so far
    uint64_t cycles = 0;         //!< simulated cycles elapsed
    uint64_t rob_occupancy = 0;  //!< in-flight window entries
    uint64_t mshr_busy = 0;      //!< L1D MSHRs outstanding

    std::string
    toString() const
    {
        return where + " pc=" + std::to_string(pc) +
               " retired=" + std::to_string(retired) +
               " cycles=" + std::to_string(cycles) +
               " rob=" + std::to_string(rob_occupancy) +
               " mshrs=" + std::to_string(mshr_busy);
    }
};

/**
 * Exception thrown by hang() when a forward-progress watchdog expires:
 * the run was structurally alive but stopped making progress (or can
 * never halt). Carries the progress snapshot for the failure report.
 */
class HangError : public std::runtime_error
{
  public:
    HangError(const std::string &msg, ProgressSnapshot snap)
        : std::runtime_error(msg + " [" + snap.toString() + "]"),
          snapshot_(std::move(snap))
    {}

    const ProgressSnapshot &progress() const { return snapshot_; }

  private:
    ProgressSnapshot snapshot_;
};

/** Report a forward-progress watchdog expiry. */
[[noreturn]] inline void
hang(const std::string &msg, ProgressSnapshot snap)
{
    throw HangError("hang: " + msg, std::move(snap));
}

/**
 * Report an internal simulator invariant violation.
 *
 * Throws PanicError so unit tests can exercise defensive checks without
 * terminating the test binary.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

/** Report an unrecoverable user/configuration error. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

namespace log_detail
{

/** One process-wide mutex so concurrent sweep workers cannot
 *  interleave half-lines on stderr. */
inline std::mutex &
mutex()
{
    static std::mutex m;
    return m;
}

/** Per-thread tag naming the sweep point this thread is running. */
inline std::string &
tag()
{
    thread_local std::string t;
    return t;
}

} // namespace log_detail

/**
 * Label all warn()/inform() output of the calling thread with @p tag
 * (the sweep-point ID while a SweepRunner worker executes a point).
 * An empty tag restores untagged output.
 */
inline void
setLogContext(std::string tag)
{
    log_detail::tag() = std::move(tag);
}

/** The calling thread's current log tag ("" when unset). */
inline const std::string &
logContext()
{
    return log_detail::tag();
}

/** Serialized, context-tagged line writer behind warn()/inform(). */
inline void
logLine(const char *prefix, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(log_detail::mutex());
    const std::string &tag = log_detail::tag();
    if (tag.empty())
        std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
    else
        std::fprintf(stderr, "%s: [%s] %s\n", prefix, tag.c_str(),
                     msg.c_str());
}

/** Report suspicious but survivable conditions. */
inline void
warn(const std::string &msg)
{
    logLine("warn", msg);
}

/** Report normal operational status. */
inline void
inform(const std::string &msg)
{
    logLine("info", msg);
}

/** panic() unless the condition holds. */
inline void
panicIfNot(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace vrsim

#endif // VRSIM_SIM_LOGGING_HH

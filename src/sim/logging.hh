/**
 * @file
 * Logging, panic and fatal helpers in the gem5 tradition.
 *
 * panic() is for internal simulator bugs (aborts); fatal() is for user
 * or configuration errors (clean exit); warn()/inform() report status.
 */

#ifndef VRSIM_SIM_LOGGING_HH
#define VRSIM_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace vrsim
{

/** Exception thrown by panic() so tests can assert on invariants. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Exception thrown by fatal() for user/configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/**
 * Report an internal simulator invariant violation.
 *
 * Throws PanicError so unit tests can exercise defensive checks without
 * terminating the test binary.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

/** Report an unrecoverable user/configuration error. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg);
}

/** Report suspicious but survivable conditions. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Report normal operational status. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/** panic() unless the condition holds. */
inline void
panicIfNot(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

} // namespace vrsim

#endif // VRSIM_SIM_LOGGING_HH

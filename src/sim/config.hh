/**
 * @file
 * System configuration: every structure of Table 1 in the paper, plus
 * the knobs for the runahead engines and the benchmark scaling used by
 * the reproduction harness.
 */

#ifndef VRSIM_SIM_CONFIG_HH
#define VRSIM_SIM_CONFIG_HH

#include <cstdint>
#include <ostream>
#include <string>

namespace vrsim
{

/** Cache replacement policies. */
enum class ReplPolicy : uint8_t
{
    Lru,     //!< least recently used (default)
    Fifo,    //!< insertion order
    Random,  //!< pseudo-random victim
};

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    uint32_t size_bytes = 32 * 1024;
    uint32_t assoc = 8;
    uint32_t line_bytes = 64;
    uint32_t latency = 4;       //!< access latency in cycles
    uint32_t mshrs = 24;        //!< outstanding-miss capacity
    uint32_t ports = 2;         //!< accesses accepted per cycle
    ReplPolicy repl = ReplPolicy::Lru;
};

/** DRAM timing/bandwidth model parameters. */
struct DramConfig
{
    uint32_t latency = 200;       //!< min load-to-use latency, cycles (50ns@4GHz)
    double bytes_per_cycle = 12.8; //!< 51.2 GB/s at 4 GHz (total)
    uint32_t channels = 1;        //!< independent channels sharing the
                                  //!< configured total bandwidth
};

/** Out-of-order core parameters (Table 1). */
struct CoreConfig
{
    uint32_t width = 5;           //!< fetch/dispatch/rename/commit width
    uint32_t rob_size = 350;
    uint32_t issue_queue = 128;
    uint32_t load_queue = 128;
    uint32_t store_queue = 72;
    uint32_t frontend_stages = 15; //!< pipeline depth => mispredict penalty

    // Functional units: count and latency per class.
    uint32_t int_add_units = 4, int_add_lat = 1;
    uint32_t int_mul_units = 1, int_mul_lat = 3;
    uint32_t int_div_units = 1, int_div_lat = 18;
    uint32_t fp_add_units = 1,  fp_add_lat = 3;
    uint32_t fp_mul_units = 1,  fp_mul_lat = 5;
    uint32_t fp_div_units = 1,  fp_div_lat = 6;
    uint32_t load_ports = 2;
    uint32_t store_ports = 1;

    // Physical register files shared with the runahead subthread.
    uint32_t int_phys_regs = 256;
    uint32_t vec_phys_regs = 128;
};

/** Stride-prefetcher (L1D, always on) parameters. */
struct StridePrefetcherConfig
{
    bool enabled = true;
    uint32_t streams = 16;
    uint32_t degree = 2;       //!< lines prefetched ahead per trigger
    uint32_t train_threshold = 2;
};

/** Indirect Memory Prefetcher (IMP baseline) parameters. */
struct ImpConfig
{
    uint32_t table_entries = 32;
    uint32_t prefetch_distance = 16;
    uint32_t train_threshold = 2;
};

/** Shared runahead knobs (PRE / VR / DVR). */
struct RunaheadConfig
{
    // Stride detector (RPT): 32 entries per the paper's budget analysis.
    uint32_t stride_entries = 32;
    uint32_t stride_confidence = 2; //!< saturating-counter threshold

    // Vectorization geometry: 16 vector registers x 8 lanes each.
    uint32_t vector_regs = 16;
    uint32_t lanes_per_vector = 8;
    uint32_t max_lanes() const { return vector_regs * lanes_per_vector; }

    uint32_t discovery_max_insts = 200;  //!< discovery-mode walk cap
    uint32_t subthread_timeout = 200;    //!< per-invocation inst timeout
    uint32_t nested_trigger_lanes = 64;  //!< NDM when bound < this (paper 4.3.1)
    uint32_t reconv_stack_entries = 8;
    uint32_t frontend_buffer_uops = 8;

    // PRE specifics.
    uint32_t pre_chain_cap = 1024; //!< max µops walked per interval

    /**
     * Guardrail: ceiling on the computed §4.4 storage budget of the
     * DVR structures. The paper's configuration costs 1139 bytes;
     * the default leaves headroom for the 256-lane §6.1 design point
     * while rejecting runaway geometries. 0 disables the check.
     */
    uint64_t max_budget_bytes = 8192;
};

/** Which latency-tolerance technique drives a simulation run. */
enum class Technique
{
    OoO,        //!< plain out-of-order baseline
    Pre,        //!< Precise Runahead Execution
    Imp,        //!< Indirect Memory Prefetcher
    Vr,         //!< Vector Runahead (ISCA 2021)
    DvrOffload, //!< VR offloaded to the subthread (Fig. 8 step 2)
    DvrDiscovery, //!< + Discovery Mode (Fig. 8 step 3)
    Dvr,        //!< full DVR incl. Nested Vector Runahead (Fig. 8 step 4)
    Oracle,     //!< perfect prefetching (all loads L1 hits)
};

/** Printable name of a technique, as used in the paper's figures. */
std::string techniqueName(Technique t);

/**
 * Inverse of techniqueName: parse a technique from its printable name
 * (case-sensitive, e.g. "DVR-Offload"). fatal() on unknown names,
 * listing the valid ones. Shared by the CLI and repro-bundle replay.
 */
Technique techniqueFromName(const std::string &name);

/** Complete system configuration for one simulation. */
struct SystemConfig
{
    CoreConfig core;
    CacheConfig l1i{32 * 1024, 4, 64, 2, 8};
    CacheConfig l1d{32 * 1024, 8, 64, 4, 24};
    CacheConfig l2{256 * 1024, 8, 64, 8, 32};
    CacheConfig l3{8 * 1024 * 1024, 16, 64, 30, 64};
    DramConfig dram;
    StridePrefetcherConfig stride_pf;
    ImpConfig imp;
    RunaheadConfig runahead;
    Technique technique = Technique::OoO;

    uint64_t max_insts = 0;   //!< dynamic-instruction budget (0 = run to halt)

    /**
     * Forward-progress watchdog bound in cycles (0 disables). An
     * unbounded run (`max_insts == 0` everywhere) that has not halted
     * within this many simulated cycles, or a single instruction whose
     * dispatch-to-commit gap exceeds it, raises HangError with a
     * progress snapshot instead of spinning forever. The default is
     * far beyond any harness run (~3 orders of magnitude above the
     * benchmark ROI) so it only fires on genuinely wedged runs.
     */
    uint64_t watchdog_cycles = 100'000'000;

    /**
     * Collect a StateDigest over the committed instruction stream
     * (see sim/digest.hh). Off by default: hashing every retirement
     * costs a few percent of simulation speed, so only differential
     * runs (`--check-digests`) and replay pay for it.
     */
    bool collect_digest = false;

    /**
     * Retired instructions per interval digest sample when
     * collect_digest is set. Smaller intervals localize a divergence
     * more tightly at the cost of a longer digest record.
     */
    uint64_t digest_interval = 8192;

    /**
     * Cheap always-on invariant checks (MSHR busy-integral
     * monotonicity, non-negative stats after warmup subtraction,
     * reconvergence-stack balance). Tests force-enable this; huge
     * sweeps may disable it to shave the last few percent.
     */
    bool invariant_checks = true;

    /**
     * Reject degenerate or inconsistent parameters with fatal(), and
     * warn() about suspicious-but-legal ones when @p verbose. Invoked
     * at MemoryHierarchy/OooCore/engine construction so a bad sweep
     * point fails with an actionable diagnostic instead of wedging or
     * silently mis-modelling.
     */
    void validate(bool verbose = true) const;

    /**
     * The benchmark harness runs scaled-down inputs; this shrinks the
     * LLC proportionally so the paper's "working set defeats the LLC"
     * property is preserved (see DESIGN.md substitution table).
     */
    static SystemConfig benchScale();

    /** Paper Table 1 configuration, unmodified. */
    static SystemConfig paper();
};

/** Print the configuration as a Table 1-style block. */
void printConfig(std::ostream &os, const SystemConfig &cfg);

} // namespace vrsim

#endif // VRSIM_SIM_CONFIG_HH

#include "sim/parse.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"

namespace vrsim
{

uint64_t
parseU64(const std::string &what, const char *s)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 0);
    if (end == s || *end != '\0')
        fatal("invalid value for " + what + ": '" + s +
              "' (expected a non-negative integer)");
    if (errno == ERANGE)
        fatal("value for " + what + " out of range: '" + s + "'");
    // strtoull wraps negatives into huge positives; reject them.
    if (std::strchr(s, '-'))
        fatal("invalid value for " + what + ": '" + s +
              "' (negative values are not allowed)");
    return v;
}

uint32_t
parseU32(const std::string &what, const char *s)
{
    uint64_t v = parseU64(what, s);
    if (v > UINT32_MAX)
        fatal("value for " + what + " out of range: '" + s + "'");
    return uint32_t(v);
}

double
parseF64(const std::string &what, const char *s)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(s, &end);
    if (end == s || *end != '\0')
        fatal("invalid value for " + what + ": '" + s +
              "' (expected a number)");
    if (errno == ERANGE)
        fatal("value for " + what + " out of range: '" + s + "'");
    return v;
}

uint64_t
envU64(const char *name, uint64_t dflt)
{
    const char *v = std::getenv(name);
    if (!v)
        return dflt;
    return parseU64(name, v);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Recursive-descent JSON reader. Covers the subset vrsim writes:
 * null, true/false, numbers, strings with the escapes jsonEscape
 * emits (plus \uXXXX for control characters), arrays and objects.
 */
class JsonParser
{
  public:
    JsonParser(const std::string &what, const std::string &text)
        : what_(what), s_(text)
    {}

    JsonValue
    document()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing garbage after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        fatal(what_ + ": JSON parse error at byte " +
              std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end of document");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + peek() +
                 "'");
        ++pos_;
    }

    bool
    consume(const char *lit)
    {
        size_t n = std::strlen(lit);
        if (s_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        skipWs();
        JsonValue v;
        v.what_ = what_;
        switch (peek()) {
          case 'n':
            if (!consume("null"))
                fail("bad literal");
            v.kind_ = JsonValue::Kind::Null;
            return v;
          case 't':
            if (!consume("true"))
                fail("bad literal");
            v.kind_ = JsonValue::Kind::Bool;
            v.bool_ = true;
            return v;
          case 'f':
            if (!consume("false"))
                fail("bad literal");
            v.kind_ = JsonValue::Kind::Bool;
            v.bool_ = false;
            return v;
          case '"':
            v.kind_ = JsonValue::Kind::String;
            v.scalar_ = string();
            return v;
          case '[':
            return array();
          case '{':
            return object();
          default:
            return number();
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            char e = s_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; i++) {
                    char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') code |= h - '0';
                    else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
                    else fail("bad hex digit in \\u escape");
                }
                if (code > 0x7f)
                    fail("non-ASCII \\u escape unsupported");
                out += char(code);
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        JsonValue v;
        v.what_ = what_;
        v.kind_ = JsonValue::Kind::Number;
        v.scalar_ = s_.substr(start, pos_ - start);
        // Validate the token now so access never surprises later.
        parseF64(what_ + " (number)", v.scalar_.c_str());
        return v;
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v;
        v.what_ = what_;
        v.kind_ = JsonValue::Kind::Array;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array_.push_back(value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v;
        v.what_ = what_;
        v.kind_ = JsonValue::Kind::Object;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            if (!v.object_.emplace(key, value()).second)
                fail("duplicate object key '" + key + "'");
            v.keys_.push_back(std::move(key));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    const std::string &what_;
    const std::string &s_;
    size_t pos_ = 0;
};

JsonValue
JsonValue::parse(const std::string &what, const std::string &text)
{
    return JsonParser(what, text).document();
}

void
JsonValue::typeError(const char *wanted) const
{
    static const char *names[] = {"null", "bool", "number", "string",
                                  "array", "object"};
    fatal(what_ + ": expected " + wanted + ", got " +
          names[size_t(kind_)]);
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        typeError("bool");
    return bool_;
}

uint64_t
JsonValue::asU64() const
{
    if (kind_ != Kind::Number)
        typeError("number");
    return parseU64(what_, scalar_.c_str());
}

double
JsonValue::asF64() const
{
    if (kind_ != Kind::Number)
        typeError("number");
    return parseF64(what_, scalar_.c_str());
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        typeError("string");
    return scalar_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    if (kind_ != Kind::Array)
        typeError("array");
    return array_;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        fatal(what_ + ": missing required key '" + key + "'");
    return *v;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        typeError("object");
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

const std::vector<std::string> &
JsonValue::keys() const
{
    if (kind_ != Kind::Object)
        typeError("object");
    return keys_;
}

} // namespace vrsim

#include "sim/parse.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"

namespace vrsim
{

uint64_t
parseU64(const std::string &what, const char *s)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 0);
    if (end == s || *end != '\0')
        fatal("invalid value for " + what + ": '" + s +
              "' (expected a non-negative integer)");
    if (errno == ERANGE)
        fatal("value for " + what + " out of range: '" + s + "'");
    // strtoull wraps negatives into huge positives; reject them.
    if (std::strchr(s, '-'))
        fatal("invalid value for " + what + ": '" + s +
              "' (negative values are not allowed)");
    return v;
}

uint32_t
parseU32(const std::string &what, const char *s)
{
    uint64_t v = parseU64(what, s);
    if (v > UINT32_MAX)
        fatal("value for " + what + " out of range: '" + s + "'");
    return uint32_t(v);
}

uint64_t
envU64(const char *name, uint64_t dflt)
{
    const char *v = std::getenv(name);
    if (!v)
        return dflt;
    return parseU64(name, v);
}

} // namespace vrsim

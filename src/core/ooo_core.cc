#include "core/ooo_core.hh"

#include <algorithm>
#include <queue>
#include <vector>

#include "obs/stats_registry.hh"
#include "obs/trace.hh"

namespace vrsim
{

namespace
{

/** PCs handed to the memory hierarchy are offset so pc 0 is valid. */
uint64_t
pcKey(uint32_t pc)
{
    return uint64_t(pc) + 1;
}

} // namespace

void
CoreStats::registerIn(StatsRegistry &reg) const
{
    reg.addCounter("core.instructions",
                   "retired instructions in the ROI") += instructions;
    reg.addCounter("core.cycles", "core cycles in the ROI") += cycles;
    reg.addFormula(
        "core.ipc",
        [](const StatsRegistry &r) {
            double cyc = r.value("core.cycles");
            return cyc ? r.value("core.instructions") / cyc : 0.0;
        },
        "retired instructions per cycle");
    reg.addCounter("core.loads", "retired loads") += loads;
    reg.addCounter("core.stores", "retired stores") += stores;
    reg.addCounter("core.branches", "retired conditional branches") +=
        branches;
    reg.addCounter("core.mispredicts", "mispredicted branches") +=
        mispredicts;
    reg.addCounter("core.stall_fetch",
                   "dispatch-stall cycles from mispredict redirects")
        += stall_fetch;
    reg.addCounter("core.stall_iq",
                   "dispatch-stall cycles from issue-queue occupancy")
        += stall_iq;
    reg.addCounter("core.stall_lq",
                   "dispatch-stall cycles from load-queue occupancy")
        += stall_lq;
    reg.addCounter("core.stall_sq",
                   "dispatch-stall cycles from store-queue occupancy")
        += stall_sq;
    reg.addCounter("core.stall_rob",
                   "dispatch-stall cycles from ROB occupancy") +=
        rob_stall_cycles;
    reg.addCounter("core.runahead_triggers",
                   "full-window stall episodes handed to the engine")
        += full_rob_stall_events;
    reg.addCounter("core.runahead_commit_stall",
                   "commit-stall cycles from VR delayed termination")
        += runahead_commit_stall;

    const CpiStack cs = cpiStack();
    reg.addGauge("cpi.base", "CPI not attributed to any stall source") =
        cs.base;
    reg.addGauge("cpi.frontend", "CPI from mispredict redirects") =
        cs.frontend;
    reg.addGauge("cpi.issue_queue", "CPI from issue-queue stalls") =
        cs.issue_queue;
    reg.addGauge("cpi.load_queue", "CPI from load-queue stalls") =
        cs.load_queue;
    reg.addGauge("cpi.store_queue", "CPI from store-queue stalls") =
        cs.store_queue;
    reg.addGauge("cpi.rob", "CPI from full-ROB stalls") = cs.rob;
    reg.addGauge("cpi.runahead",
                 "CPI from VR delayed-termination commit stalls") =
        cs.runahead;
    reg.addGauge("cpi.total", "total cycles per instruction") =
        cs.total();
}

OooCore::OooCore(const SystemConfig &cfg, const Program &prog,
                 MemoryImage &image, MemoryHierarchy &hier,
                 RunaheadEngine *engine)
    : cfg_(cfg), prog_(prog), image_(image), hier_(hier),
      engine_(engine), l1i_("l1i", cfg.l1i)
{
    cfg_.validate(false);
    const CoreConfig &c = cfg.core;
    int_add_ = PortBank(c.int_add_units, c.int_add_lat, true);
    int_mul_ = PortBank(c.int_mul_units, c.int_mul_lat, true);
    int_div_ = PortBank(c.int_div_units, c.int_div_lat, false);
    fp_add_ = PortBank(c.fp_add_units, c.fp_add_lat, true);
    fp_mul_ = PortBank(c.fp_mul_units, c.fp_mul_lat, true);
    fp_div_ = PortBank(c.fp_div_units, c.fp_div_lat, false);
    load_ports_ = PortBank(c.load_ports, 1, true);
    store_ports_ = PortBank(c.store_ports, 1, true);
}

CoreStats
OooCore::run(const CpuState &init, uint64_t max_insts,
             uint64_t warmup_insts, const std::function<void()> &at_warmup)
{
    CpuState state = init;
    Cycle clock = 0;
    return runFrom(state, max_insts, warmup_insts, clock, at_warmup);
}

CoreStats
OooCore::runFrom(CpuState &state, uint64_t max_insts,
                 uint64_t warmup_insts, Cycle &clock,
                 const std::function<void()> &at_warmup)
{
    const CoreConfig &c = cfg_.core;
    const bool oracle = cfg_.technique == Technique::Oracle;
    uint64_t budget = max_insts ? max_insts : cfg_.max_insts;
    // Segmented (sampled) runs re-enter with the clock where the last
    // window (or warming fast-forward) left it: every timestamp below
    // is measured against this base, so the reported cycles cover this
    // window only while cache recency and calendar reservations stay
    // monotone across windows.
    const Cycle base = clock;

    CoreStats st;

    // Writeback time per architectural register, padded to the full
    // uint8_t range so REG_NONE (0xFF) indexes a permanently-zero
    // slot: operand wakeup then reads every source field
    // unconditionally instead of branching on REG_NONE per operand.
    static_assert(REG_NONE == 0xFF && NUM_ARCH_REGS <= 0xFF);
    std::array<Cycle, 256> reg_ready{};

    // Ring buffers modelling structure occupancy: entry i % N holds
    // the cycle at which the instruction N-before the current one
    // freed its slot.
    std::vector<Cycle> rob_ring(c.rob_size, 0);
    std::vector<uint8_t> rob_head_trigger(c.rob_size, 0);
    std::vector<Cycle> rob_head_fill(c.rob_size, 0);
    // Issue-queue occupancy: instructions wait in the IQ from
    // dispatch to issue, out of order. A slot is free for inst i once
    // at most IQ-1 older instructions are still waiting, i.e. at the
    // IQ-th largest issue time among older instructions. We keep the
    // IQ largest issue times in a min-heap.
    std::priority_queue<Cycle, std::vector<Cycle>,
                        std::greater<Cycle>> iq_heap;
    // Loads/stores leave their queues at commit (in order), so rings
    // indexed by load/store count are exact.
    std::vector<Cycle> lq_ring(c.load_queue, 0);
    std::vector<uint8_t> lq_trigger(c.load_queue, 0);
    std::vector<Cycle> lq_fill(c.load_queue, 0);
    std::vector<Cycle> sq_ring(c.store_queue, 0);
    std::vector<Cycle> commit_width_ring(c.width, 0);
    uint64_t load_count = 0;
    uint64_t store_count = 0;
    // Ring cursors tracking i % rob_size (etc.) incrementally: the
    // structure sizes are not powers of two, so a literal modulo is
    // a hardware divide on every dispatched instruction.
    uint32_t rob_idx = 0;  // i % c.rob_size
    uint32_t cw_idx = 0;   // i % c.width
    uint32_t lq_idx = 0;   // load_count % c.load_queue
    uint32_t sq_idx = 0;   // store_count % c.store_queue

    Cycle disp_cycle = base;
    uint32_t disp_count = 0;
    Cycle fetch_resume = base;
    uint64_t last_iline = UINT64_MAX;  // L1I same-line fast path
    Cycle last_iline_cycle = base;
    Cycle last_commit = base;
    Cycle commit_floor = base;
    uint64_t last_trigger_head = UINT64_MAX;
    Cycle last_cycle = base;

    CoreStats warm;
    Cycle warm_cycle = base;

    // Forward-progress watchdog: how the run looked when the snapshot
    // is taken at expiry. ROB occupancy = entries whose commit is
    // still in the future at the current cycle.
    const uint64_t watchdog = cfg_.watchdog_cycles;
    auto progressSnapshot = [&](uint64_t retired, const char *where) {
        ProgressSnapshot snap;
        snap.where = where;
        snap.pc = state.pc;
        snap.retired = retired;
        snap.cycles = last_cycle;
        for (Cycle freed : rob_ring)
            if (freed > last_cycle)
                ++snap.rob_occupancy;
        snap.mshr_busy = hier_.l1Mshrs().busyAt(last_cycle);
        return snap;
    };

    uint64_t i = 0;
    for (; !state.halted && (budget == 0 || i < budget); i++) {
        // A run with no instruction budget anywhere (max_insts = 0)
        // terminates only if the program halts; bound it so a
        // non-halting program raises a diagnosable HangError instead
        // of spinning forever. A budgeted run terminates by
        // construction, so only the per-instruction gap check below
        // applies there.
        if (watchdog && budget == 0 && last_cycle - base > watchdog)
            hang("unbounded run passed " + std::to_string(watchdog) +
                     " cycles without halting (raise "
                     "--watchdog-cycles for longer programs)",
                 progressSnapshot(i, "core.run"));
        if (warmup_insts && i == warmup_insts) {
            warm = st;
            warm_cycle = last_cycle;
            if (at_warmup)
                at_warmup();
        }
        // Event-calendar housekeeping: every reservation made from
        // here on — demand load/store, L1I fill, software or stride
        // prefetch, or a runahead engine's — starts at or after the
        // current dispatch point (docs/performance.md proves the
        // floor), so calendar history behind it is dead. Retire it
        // in bulk so resident calendar state tracks the instruction
        // window rather than the whole run. The slack keeps a full
        // retirement granule of history around the horizon so
        // boundary queries (e.g. hang snapshots) stay answerable.
        constexpr Cycle RETIRE_SLACK = 8192;
        if ((i & 0xFFF) == 0 && disp_cycle > RETIRE_SLACK) {
            const Cycle horizon = disp_cycle - RETIRE_SLACK;
            hier_.retireHistory(horizon);
            int_add_.retireBefore(horizon);
            int_mul_.retireBefore(horizon);
            int_div_.retireBefore(horizon);
            fp_add_.retireBefore(horizon);
            fp_mul_.retireBefore(horizon);
            fp_div_.retireBefore(horizon);
            load_ports_.retireBefore(horizon);
            store_ports_.retireBefore(horizon);
        }
        StepInfo si = step(prog_, state, image_);

        // ---------------- fetch: L1I ----------------
        // µops are 4 bytes in a notional text segment; an I-cache
        // miss stalls fetch for an L2 access (kernels fit in the
        // 32 KB L1I after the first touch).
        //
        // Same-line fast path: this block is the only L1I user, so
        // between two fetches of the same line no insert (and hence
        // no eviction) can occur — a repeat fetch is a guaranteed hit
        // and its next-line prefetch a guaranteed no-op. Skipping the
        // array walks is byte-identical as long as the line's LRU
        // timestamp is caught up before the next different-line
        // access observes it (the lookup below on line change); the
        // interleaved inserts of line+1 land in a different set and
        // cannot consult this set's recency.
        {
            uint64_t iline = l1i_.lineAddr(uint64_t(si.pc) * 4);
            if (iline != last_iline) {
                if (last_iline != UINT64_MAX)
                    l1i_.lookup(last_iline, last_iline_cycle);
                if (!l1i_.lookup(iline, disp_cycle)) {
                    ++st.icache_misses;
                    l1i_.insert(iline, disp_cycle,
                                disp_cycle + cfg_.l2.latency,
                                Requester::Demand);
                    fetch_resume = std::max(fetch_resume,
                                            disp_cycle + cfg_.l2.latency);
                }
                // Sequential next-line instruction prefetch:
                // straight-line fetch runs ahead of demand, so only
                // the first line of a fresh region pays the miss.
                if (!l1i_.peek(iline + 1)) {
                    l1i_.insert(iline + 1, disp_cycle,
                                disp_cycle + cfg_.l2.latency,
                                Requester::StridePf);
                }
                last_iline = iline;
            }
            last_iline_cycle = disp_cycle;
        }

        // ---------------- dispatch ----------------
        Cycle d = disp_cycle;
        if (fetch_resume > d) {
            st.stall_fetch += fetch_resume - d;
            d = fetch_resume;
        }
        if (iq_heap.size() >= c.issue_queue && iq_heap.top() > d) {
            st.stall_iq += iq_heap.top() - d;
            d = iq_heap.top();
        }
        if (si.is_mem && !si.is_store && lq_ring[lq_idx] > d) {
            // The load queue is the instruction window's binding
            // resource for load-heavy code (128 loads span fewer
            // µops than the 350-entry ROB): a full LQ blocked on a
            // long-latency load is the same window-exhaustion event
            // as a full ROB, and triggers runahead identically.
            st.stall_lq += lq_ring[lq_idx] - d;
            uint64_t lhead = load_count >= c.load_queue
                ? load_count - c.load_queue : 0;
            Cycle lq_free = lq_ring[lq_idx];
            if (engine_ && lq_trigger[lq_idx] &&
                (lhead | (1ull << 63)) != last_trigger_head) {
                ++st.full_rob_stall_events;
                last_trigger_head = lhead | (1ull << 63);
                Cycle head_fill = lq_fill[lq_idx];
                Cycle resume = engine_->onFullRobStall(d, head_fill,
                                                       state);
                if (resume > lq_free) {
                    st.runahead_commit_stall += resume - lq_free;
                    commit_floor = std::max(commit_floor, resume);
                    lq_free = resume;
                }
            }
            d = lq_free;
        }
        if (si.is_store && sq_ring[sq_idx] > d) {
            st.stall_sq += sq_ring[sq_idx] - d;
            d = sq_ring[sq_idx];
        }

        Cycle rob_free = rob_ring[rob_idx];
        if (rob_free > d) {
            st.rob_stall_cycles += rob_free - d;
            uint64_t head_idx = i >= c.rob_size ? i - c.rob_size : 0;
            if (engine_ && rob_head_trigger[rob_idx] &&
                head_idx != last_trigger_head) {
                ++st.full_rob_stall_events;
                last_trigger_head = head_idx;
                Cycle head_fill = rob_head_fill[rob_idx];
                Cycle resume = engine_->onFullRobStall(d, head_fill,
                                                       state);
                if (resume > rob_free) {
                    st.runahead_commit_stall += resume - rob_free;
                    commit_floor = std::max(commit_floor, resume);
                    rob_free = resume;
                }
            }
            d = rob_free;
        }

        // Width enforcement.
        if (d > disp_cycle) {
            disp_cycle = d;
            disp_count = 1;
        } else if (disp_count < c.width) {
            ++disp_count;
        } else {
            ++disp_cycle;
            d = disp_cycle;
            disp_count = 1;
        }
        const Cycle dispatch = d;

        // ---------------- issue & execute ----------------
        bool mispredicted_now = false;
        Cycle ready = dispatch + 1;
        const Inst &inst = *si.inst;
        // Branchless wakeup: REG_NONE and a non-store's rs3 both
        // land on the always-zero padding slots of reg_ready.
        ready = std::max(ready, reg_ready[inst.rs1]);
        ready = std::max(ready, reg_ready[inst.rs2]);
        ready = std::max(ready,
                         reg_ready[si.is_store ? inst.rs3 : REG_NONE]);

        Cycle complete = ready;
        Cycle issue = ready;
        bool trigger_candidate = false;
        Cycle fill_cycle = 0;

        const FuClass fu = inst.traits().fu;
        if (inst.isPrefetch()) {
            // Software prefetch: occupies a load port, kicks the
            // line fill, completes immediately (non-binding).
            issue = load_ports_.issue(ready);
            if (!oracle)
                hier_.access(si.addr, pcKey(si.pc), issue, false,
                             Requester::StridePf);
            complete = issue + 1;
        } else if (si.is_mem && !si.is_store) {
            ++st.loads;
            issue = load_ports_.issue(ready);
            Cycle lat;
            if (oracle) {
                // The paper's Oracle "knows all memory accesses in
                // advance and prefetches them at the appropriate
                // point in time to avoid stalling": modelled as the
                // pure upper bound where every load completes with
                // the L1 hit latency and charges no hierarchy
                // resources (see EXPERIMENTS.md for the caveat).
                lat = cfg_.l1d.latency;
            } else {
                AccessResult res = hier_.access(si.addr, pcKey(si.pc),
                                                issue, false,
                                                Requester::Demand);
                lat = res.latency;
                if (lat >= cfg_.l3.latency) {
                    trigger_candidate = true;
                    fill_cycle = issue + lat;
                }
            }
            complete = issue + lat;
        } else if (si.is_store) {
            ++st.stores;
            issue = store_ports_.issue(ready);
            complete = issue + 1;
        } else if (fu != FuClass::None) {
            PortBank &bank = portsFor(fu);
            issue = bank.issue(ready);
            complete = issue + bank.latency;
        }

        if (inst.writesDst())
            reg_ready[inst.rd] = complete;

        // ---------------- branches ----------------
        if (si.is_branch && si.taken) {
            // Taken transfers need the BTB for a bubble-free fetch
            // redirect; a miss costs a decode-stage re-steer.
            if (!btb_.hit(pcKey(si.pc))) {
                ++st.btb_misses;
                fetch_resume = std::max(fetch_resume,
                                        dispatch + 1 +
                                            c.frontend_stages / 3);
                btb_.install(pcKey(si.pc), si.next_pc);
            }
        }
        if (si.is_branch && inst.isCondBranch()) {
            ++st.branches;
            bool pred = bp_.predict(pcKey(si.pc));
            bp_.update(pcKey(si.pc), si.taken);
            if (pred != si.taken) {
                mispredicted_now = true;
                ++st.mispredicts;
                Cycle resolve = complete;
                // A mispredicted branch whose resolution waits on a
                // long-latency load lets the front-end fill the
                // entire window with wrong-path µops long before the
                // branch resolves -- the classic full-ROB stall that
                // triggers runahead (the runahead prefetches future
                // striding-load iterations, which are on the correct
                // path even when this branch was not).
                Cycle window_fill = dispatch + c.rob_size / c.width;
                if (engine_ && resolve > window_fill + 16) {
                    ++st.full_rob_stall_events;
                    Cycle resume = engine_->onFullRobStall(
                        window_fill, resolve, state,
                        TriggerKind::BranchStall);
                    if (resume > resolve) {
                        st.runahead_commit_stall += resume - resolve;
                        resolve = resume;
                    }
                }
                fetch_resume = std::max(fetch_resume,
                                        resolve + c.frontend_stages);
            }
        }

        // ---------------- commit ----------------
        Cycle commit = std::max({complete + 1, last_commit,
                                 commit_floor,
                                 commit_width_ring[cw_idx] + 1});
        if (watchdog && commit - dispatch > watchdog)
            hang("no retirement for " + std::to_string(watchdog) +
                     " cycles: a resource reservation pushed commit " +
                     std::to_string(commit - dispatch) +
                     " cycles past dispatch",
                 progressSnapshot(i, "core.commit"));
        last_commit = commit;
        commit_width_ring[cw_idx] = commit;

        // Stores drain to memory post-commit.
        Cycle slot_free = commit;
        if (si.is_store && !oracle) {
            AccessResult res = hier_.access(si.addr, pcKey(si.pc),
                                            commit, true,
                                            Requester::Demand);
            slot_free = commit + (res.latency > cfg_.l1d.latency
                                  ? 1 : 0);
        }

        rob_ring[rob_idx] = commit;
        rob_head_trigger[rob_idx] = trigger_candidate;
        rob_head_fill[rob_idx] = fill_cycle;
        iq_heap.push(issue);
        if (iq_heap.size() > c.issue_queue)
            iq_heap.pop();
        if (si.is_mem && !si.is_store) {
            lq_ring[lq_idx] = commit;
            lq_trigger[lq_idx] = trigger_candidate;
            lq_fill[lq_idx] = fill_cycle;
            ++load_count;
            if (++lq_idx == c.load_queue)
                lq_idx = 0;
        }
        if (si.is_store) {
            sq_ring[sq_idx] = slot_free;
            ++store_count;
            if (++sq_idx == c.store_queue)
                sq_idx = 0;
        }

        last_cycle = std::max(last_cycle, commit);

        // Feed the differential oracle before the engine hook: the
        // engine may open a speculation scope, and retirement must be
        // recorded strictly outside transient execution. The record is
        // built by the same helper the functional fast-forward loop
        // uses, so both paths hash identically (docs/sampling.md).
        if (digest_)
            digest_->retire(commitRecordOf(si));

        if (engine_)
            engine_->onInstruction(si, state, dispatch);

        if (tsink_ && tsink_->enabled(TraceCat::Pipeline)) {
            // ROB occupancy at dispatch: entries whose commit is
            // still in the future. O(rob_size), paid only with the
            // pipeline trace category enabled.
            uint32_t rob_occ = 0;
            for (Cycle freed : rob_ring)
                if (freed > dispatch)
                    ++rob_occ;
            tsink_->inst(i, si.pc, inst.toString(), dispatch, ready,
                         issue, complete, commit,
                         si.is_mem && !si.is_store, mispredicted_now,
                         rob_occ);
        }

        if (trace_) {
            TraceRecord tr;
            tr.index = i;
            tr.pc = si.pc;
            tr.inst = &inst;
            tr.dispatch = dispatch;
            tr.ready = ready;
            tr.issue = issue;
            tr.complete = complete;
            tr.commit = commit;
            tr.is_load = si.is_mem && !si.is_store;
            tr.mispredicted = mispredicted_now;
            trace_(tr);
        }

        if (++rob_idx == c.rob_size)
            rob_idx = 0;
        if (++cw_idx == c.width)
            cw_idx = 0;
    }

    st.instructions = i;
    st.cycles = last_cycle - base;
    clock = last_cycle;

    if (warmup_insts && i > warmup_insts) {
        // Report the region of interest only; timing state (caches,
        // predictors, in-flight misses) carried across the boundary.
        if (cfg_.invariant_checks) {
            // Counters are monotone, so the warmup snapshot can never
            // exceed the final value; a violation means the subtraction
            // below would wrap to a huge bogus statistic.
            panicIfNot(last_cycle >= warm_cycle &&
                           st.loads >= warm.loads &&
                           st.stores >= warm.stores &&
                           st.branches >= warm.branches &&
                           st.mispredicts >= warm.mispredicts &&
                           st.rob_stall_cycles >= warm.rob_stall_cycles &&
                           st.full_rob_stall_events >=
                               warm.full_rob_stall_events &&
                           st.runahead_commit_stall >=
                               warm.runahead_commit_stall &&
                           st.stall_fetch >= warm.stall_fetch &&
                           st.stall_iq >= warm.stall_iq &&
                           st.stall_lq >= warm.stall_lq &&
                           st.stall_sq >= warm.stall_sq,
                       "core stats regressed across the warmup "
                       "boundary (subtraction would underflow)");
        }
        st.instructions = i - warmup_insts;
        st.cycles = last_cycle - warm_cycle;
        st.loads -= warm.loads;
        st.stores -= warm.stores;
        st.branches -= warm.branches;
        st.mispredicts -= warm.mispredicts;
        st.rob_stall_cycles -= warm.rob_stall_cycles;
        st.full_rob_stall_events -= warm.full_rob_stall_events;
        st.runahead_commit_stall -= warm.runahead_commit_stall;
        st.stall_fetch -= warm.stall_fetch;
        st.stall_iq -= warm.stall_iq;
        st.stall_lq -= warm.stall_lq;
        st.stall_sq -= warm.stall_sq;
    }
    return st;
}

uint64_t
OooCore::fastForward(CpuState &state, uint64_t max_insts, Cycle &clock,
                     bool warm)
{
    if (!warm && !digest_)
        return vrsim::fastForward(prog_, state, image_, max_insts);
    if (!warm)
        return vrsim::fastForward(prog_, state, image_, max_insts,
                                  digest_);

    // Functional warming: the architectural stream drives the same
    // structures the fetch/commit path would touch — L1I tags (with
    // the same-line memo and next-line prefetch of the detailed
    // path), the branch predictor (predict-then-update, as predict()
    // latches state update() consumes), the BTB, and the data-cache
    // tags via MemoryHierarchy::warmAccess — without any port, MSHR,
    // DRAM, or statistics traffic. The clock ticks once per
    // instruction so LRU recency established here stays ordered
    // against the surrounding detailed windows.
    uint64_t n = 0;
    uint64_t last_iline = UINT64_MAX;
    for (; n < max_insts && !state.halted; ++n) {
        StepInfo si = step(prog_, state, image_);
        ++clock;
        uint64_t iline = l1i_.lineAddr(uint64_t(si.pc) * 4);
        if (iline != last_iline) {
            if (!l1i_.lookup(iline, clock))
                l1i_.insert(iline, clock, clock, Requester::Demand);
            if (!l1i_.peek(iline + 1))
                l1i_.insert(iline + 1, clock, clock,
                            Requester::StridePf);
            last_iline = iline;
        }
        if (si.is_branch) {
            if (si.inst->isCondBranch()) {
                bp_.predict(pcKey(si.pc));
                bp_.update(pcKey(si.pc), si.taken);
            }
            if (si.taken && !btb_.hit(pcKey(si.pc)))
                btb_.install(pcKey(si.pc), si.next_pc);
        }
        if (si.is_mem && si.size != 0)
            hier_.warmAccess(si.addr, pcKey(si.pc), clock, si.is_store);
        if (digest_)
            digest_->retire(commitRecordOf(si));
    }
    return n;
}

} // namespace vrsim

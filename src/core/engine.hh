/**
 * @file
 * The interface between the out-of-order core timing model and the
 * pluggable latency-tolerance engines (PRE, VR, DVR).
 */

#ifndef VRSIM_CORE_ENGINE_HH
#define VRSIM_CORE_ENGINE_HH

#include "isa/interp.hh"
#include "mem/request.hh"

namespace vrsim
{

class TraceSink;

/** Why the core entered a runahead window. */
enum class TriggerKind : uint8_t
{
    WindowFull,   //!< ROB/LQ exhausted behind a long-latency load
    BranchStall,  //!< mispredict waiting on memory; the window fills
                  //!< with wrong-path µops (full-ROB stall too, but
                  //!< the fetched instructions are wrong-path)
};

/** Stable lower-case trigger name (trace events). */
constexpr const char *
triggerKindName(TriggerKind k)
{
    switch (k) {
      case TriggerKind::WindowFull: return "window";
      case TriggerKind::BranchStall: return "branch";
    }
    return "unknown";
}

/**
 * Hook interface implemented by the runahead engines. The core invokes
 * these as it processes the dynamic instruction stream.
 */
class RunaheadEngine
{
  public:
    virtual ~RunaheadEngine() = default;

    /**
     * Called for every instruction the main thread processes, in
     * program order, with the functional outcome and the architectural
     * state *after* the instruction.
     *
     * @param si      functional outcome of the instruction
     * @param after   architectural state after the instruction
     * @param cycle   approximate dispatch cycle in the timing model
     */
    virtual void
    onInstruction(const StepInfo &si, const CpuState &after, Cycle cycle)
    {
        (void)si; (void)after; (void)cycle;
    }

    /**
     * Called when dispatch blocks on a full ROB whose head is a
     * pending long-latency load (the classic runahead trigger).
     *
     * @param stall_start cycle the stall began
     * @param head_fill   cycle the blocking load's data returns
     * @param frontier    architectural state at the fetch frontier
     *                    (where transient runahead execution begins)
     * @param kind        what caused the stall (see TriggerKind)
     * @return the cycle at which the core may resume committing;
     *         head_fill for non-delayed techniques, later for VR's
     *         delayed termination
     */
    virtual Cycle
    onFullRobStall(Cycle stall_start, Cycle head_fill,
                   const CpuState &frontier,
                   TriggerKind kind = TriggerKind::WindowFull)
    {
        (void)stall_start; (void)frontier; (void)kind;
        return head_fill;
    }

    /** Engine name for reports. */
    virtual const char *name() const = 0;

    /**
     * Attach a cycle-trace sink (obs/trace.hh). Engines emit
     * TraceCat::Runahead enter/exit events around each runahead
     * interval; vectorized engines forward the sink to their lane
     * executor for TraceCat::Lanes events. nullptr detaches.
     */
    virtual void setTraceSink(TraceSink *sink) { trace_sink_ = sink; }

  protected:
    TraceSink *trace_sink_ = nullptr;
};

} // namespace vrsim

#endif // VRSIM_CORE_ENGINE_HH

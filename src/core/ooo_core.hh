/**
 * @file
 * Instruction-window-centric timing model of a superscalar
 * out-of-order core (the modelling style of Sniper 6.0, which the
 * paper uses). Models: fetch/dispatch/commit width, ROB, issue queue,
 * load/store queues, functional-unit ports, branch mispredict
 * redirects, the cache hierarchy with MSHRs and DRAM bandwidth, and
 * full-ROB-stall detection that triggers the runahead engines.
 */

#ifndef VRSIM_CORE_OOO_CORE_HH
#define VRSIM_CORE_OOO_CORE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/engine.hh"
#include "frontend/branch_predictor.hh"
#include "frontend/btb.hh"
#include "mem/cache.hh"
#include "isa/interp.hh"
#include "mem/hierarchy.hh"
#include "sim/config.hh"
#include "sim/digest.hh"

namespace vrsim
{

class StatsRegistry;

/** Timing results of one core run. */
struct CoreStats
{
    uint64_t instructions = 0;
    uint64_t cycles = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    uint64_t rob_stall_cycles = 0;      //!< dispatch blocked, ROB full
    uint64_t full_rob_stall_events = 0; //!< runahead trigger episodes
    uint64_t runahead_commit_stall = 0; //!< VR delayed-termination cycles
    uint64_t btb_misses = 0;            //!< taken branches without a
                                        //!< BTB entry (decode redirect)
    uint64_t icache_misses = 0;         //!< L1I line misses

    // Dispatch-stall attribution: cycles each constraint pushed the
    // dispatch point beyond all previous constraints.
    uint64_t stall_fetch = 0;           //!< mispredict redirects
    uint64_t stall_iq = 0;              //!< issue-queue occupancy
    uint64_t stall_lq = 0;              //!< load-queue occupancy
    uint64_t stall_sq = 0;              //!< store-queue occupancy

    double ipc() const
    { return cycles ? double(instructions) / double(cycles) : 0.0; }

    /**
     * CPI-stack decomposition (cycles per instruction attributed to
     * each dispatch-stall source; "base" is the remainder).
     */
    struct CpiStack
    {
        double base = 0;
        double frontend = 0;   //!< mispredict redirects
        double issue_queue = 0;
        double load_queue = 0;
        double store_queue = 0;
        double rob = 0;
        double runahead = 0;   //!< VR delayed-termination commit stall

        double
        total() const
        {
            return base + frontend + issue_queue + load_queue +
                   store_queue + rob + runahead;
        }
    };

    CpiStack
    cpiStack() const
    {
        CpiStack s;
        if (!instructions)
            return s;
        double n = double(instructions);
        s.frontend = double(stall_fetch) / n;
        s.issue_queue = double(stall_iq) / n;
        s.load_queue = double(stall_lq) / n;
        s.store_queue = double(stall_sq) / n;
        s.rob = double(rob_stall_cycles) / n;
        s.runahead = double(runahead_commit_stall) / n;
        double attributed = s.frontend + s.issue_queue + s.load_queue +
                            s.store_queue + s.rob + s.runahead;
        double cpi = double(cycles) / n;
        s.base = cpi > attributed ? cpi - attributed : 0.0;
        return s;
    }

    /**
     * Register the reported core statistics under "core." and "cpi."
     * paths in @p reg (docs/observability.md lists every path).
     * core.ipc is a Formula over core.instructions / core.cycles, so
     * it tracks the registry values rather than a snapshot.
     */
    void registerIn(StatsRegistry &reg) const;
};

/** One traced instruction's pipeline timestamps. */
struct TraceRecord
{
    uint64_t index = 0;      //!< dynamic instruction number
    uint32_t pc = 0;
    const Inst *inst = nullptr;
    Cycle dispatch = 0;
    Cycle ready = 0;         //!< operands available
    Cycle issue = 0;
    Cycle complete = 0;
    Cycle commit = 0;
    bool is_load = false;
    bool mispredicted = false;
};

/** The out-of-order core. */
class OooCore
{
  public:
    /**
     * @param cfg    system configuration
     * @param prog   program to execute
     * @param image  functional memory (workload data already loaded)
     * @param hier   timing memory hierarchy
     * @param engine optional runahead engine (nullptr for plain OoO)
     */
    OooCore(const SystemConfig &cfg, const Program &prog,
            MemoryImage &image, MemoryHierarchy &hier,
            RunaheadEngine *engine = nullptr);

    /**
     * Run until the program halts or @p max_insts dynamic
     * instructions execute (0 = only the config's max_insts cap).
     *
     * @param init initial architectural state (workload registers)
     * @param max_insts dynamic-instruction budget incl. warmup
     * @param warmup_insts instructions whose statistics are excluded
     *        from the returned CoreStats (cache/predictor state and
     *        pipeline timing carry over); @p at_warmup, when set, is
     *        invoked at the boundary so callers can snapshot external
     *        statistics (e.g. the memory hierarchy's)
     */
    CoreStats run(const CpuState &init, uint64_t max_insts = 0,
                  uint64_t warmup_insts = 0,
                  const std::function<void()> &at_warmup = {});

    /** Run from a zeroed architectural state. */
    CoreStats run(uint64_t max_insts = 0)
    { return run(CpuState{}, max_insts); }

    /**
     * One detailed window of a segmented (sampled) run: like run(),
     * but advances @p state in place and starts the pipeline clock at
     * @p clock instead of 0 — cache LRU recency, calendar reservations
     * and the monotone retire horizon all continue from the previous
     * window. On return @p clock holds the window's final cycle; the
     * returned CoreStats covers this window only (cycles relative to
     * entry). The pipeline itself restarts empty each window, which is
     * why SamplingPlan runs detailed-warm instructions before each
     * measured window (docs/sampling.md).
     */
    CoreStats runFrom(CpuState &state, uint64_t max_insts,
                      uint64_t warmup_insts, Cycle &clock,
                      const std::function<void()> &at_warmup = {});

    /**
     * Timing-free functional fast-forward of up to @p max_insts
     * instructions. With @p warm set, each instruction also warms the
     * timing-relevant-but-timing-free state: L1I/L1D/L2/L3 tags and
     * LRU recency (via MemoryHierarchy::warmAccess), the branch
     * predictor, and the BTB, with @p clock advancing one cycle per
     * instruction so recency stays ordered against detailed windows.
     * With @p warm clear this is the native-speed interpreter loop and
     * @p clock is untouched. Either way an attached digest receives
     * every instruction exactly as the detailed commit path would.
     *
     * @return instructions executed (short only on program halt).
     */
    uint64_t fastForward(CpuState &state, uint64_t max_insts,
                         Cycle &clock, bool warm);

    /**
     * Copyable snapshot of the core-side warm state (branch predictor,
     * BTB, L1I tags); the memory-side counterpart is
     * MemoryHierarchy::warmSnapshot(). Only meaningful at a quiesced
     * window boundary (no in-flight calendar state is captured).
     */
    struct WarmState
    {
        BranchPredictor bp;
        Btb btb;
        CacheArray l1i;
    };

    WarmState warmSnapshot() const { return WarmState{bp_, btb_, l1i_}; }

    void
    warmRestore(const WarmState &s)
    {
        bp_ = s.bp;
        btb_ = s.btb;
        l1i_ = s.l1i;
    }

    const BranchPredictor &branchPredictor() const { return bp_; }
    const Btb &btb() const { return btb_; }

    /** Install a per-instruction pipeline-trace callback. */
    void setTrace(std::function<void(const TraceRecord &)> sink)
    { trace_ = std::move(sink); }

    /**
     * Attach a differential-oracle digest (sim/digest.hh): the commit
     * path feeds it every retired instruction's architectural effects,
     * in program order, outside any speculation scope. nullptr
     * detaches. Not owned.
     */
    void setDigest(StateDigest *digest) { digest_ = digest; }

    /**
     * Attach a cycle-trace sink (obs/trace.hh): every committed
     * instruction emits one TraceCat::Pipeline event with its
     * dispatch/ready/issue/complete/commit timestamps and the ROB
     * occupancy at dispatch. nullptr detaches; when detached the only
     * cost is a null check per instruction.
     */
    void setTraceSink(TraceSink *sink) { tsink_ = sink; }

  private:
    /**
     * Per-FU-class issue-port calendar with cycle-granular occupancy.
     * Out-of-order issue schedules non-chronologically (a later
     * instruction may issue at an earlier cycle than a previously
     * scheduled one), so the calendar tracks per-cycle usage counts
     * rather than per-unit next-free times. Built on the same
     * cycle-skipping IntervalResource as the memory-side resources
     * (sim/event_calendar.hh): a non-pipelined unit's backlog is
     * jumped, not polled, and history behind the dispatch horizon is
     * retired by the core's periodic retireBefore() sweep.
     */
    struct PortBank
    {
        uint32_t units = 1;
        uint32_t latency = 1;
        bool pipelined = true;
        IntervalResource res{1, 0};

        PortBank() = default;
        PortBank(uint32_t u, uint32_t lat, bool pipe)
            : units(u), latency(lat), pipelined(pipe), res(u, 0)
        {}

        /** Issue at the earliest cycle >= ready with a free unit. */
        Cycle
        issue(Cycle ready)
        {
            return res.allocate(ready, pipelined ? 1 : latency);
        }

        /** Drop calendar history wholly before @p cycle. */
        void retireBefore(Cycle cycle) { res.retireBefore(cycle); }
    };

    /** Bank for an FU class. Inline: once per dispatched instruction. */
    PortBank &
    portsFor(FuClass fu)
    {
        switch (fu) {
          case FuClass::IntAdd: return int_add_;
          case FuClass::IntMul: return int_mul_;
          case FuClass::IntDiv: return int_div_;
          case FuClass::FpAdd: return fp_add_;
          case FuClass::FpMul: return fp_mul_;
          case FuClass::FpDiv: return fp_div_;
          case FuClass::Load: return load_ports_;
          case FuClass::Store: return store_ports_;
          case FuClass::Branch: return int_add_;
          case FuClass::None: return int_add_;
        }
        panic("bad FU class");
    }

    SystemConfig cfg_;
    const Program &prog_;
    MemoryImage &image_;
    MemoryHierarchy &hier_;
    RunaheadEngine *engine_;
    BranchPredictor bp_;
    Btb btb_;
    CacheArray l1i_;
    std::function<void(const TraceRecord &)> trace_;
    StateDigest *digest_ = nullptr;
    TraceSink *tsink_ = nullptr;

    PortBank int_add_, int_mul_, int_div_;
    PortBank fp_add_, fp_mul_, fp_div_;
    PortBank load_ports_, store_ports_;
};

} // namespace vrsim

#endif // VRSIM_CORE_OOO_CORE_HH

/**
 * @file
 * CellSupervisor: runs one RunPlan cell in its own child process
 * (rt/subprocess.hh) and turns whatever happens to that process into
 * a SimResult the sweep layer can record.
 *
 * The contract mirrors thread isolation exactly for everything the
 * guarded runner already handles: the child runs
 * SweepRunner::runPoint, so in-taxonomy failures (fatal, panic, hang,
 * diverge) become status-carrying result rows written to the result
 * pipe and are NOT retried — a rejected configuration is just as
 * rejected on attempt 2. Only process-grade deaths — signal, rlimit
 * kill, deadline SIGKILL, or an exit without a result line — are
 * retried with exponential backoff, and a cell that exhausts its
 * attempts is synthesized into a SimStatus::Crashed / TimedOut row
 * carrying the terminating signal and the child's peak RSS.
 *
 * The chaos harness plugs in here: a ChaosPolicy (rt/chaos.hh) can
 * assign a process-grade fault per (cell, attempt), executed inside
 * the child before the point runs. The fault-mutated point (`as_run`)
 * is reported back so repro bundles capture exactly what the child
 * executed and `vrsim --replay` reproduces the death.
 */

#ifndef VRSIM_RT_CELL_SUPERVISOR_HH
#define VRSIM_RT_CELL_SUPERVISOR_HH

#include <cstdint>
#include <limits>

#include "driver/sweep_runner.hh"
#include "rt/chaos.hh"
#include "rt/subprocess.hh"

namespace vrsim
{

/** Per-cell supervision knobs (the --cell-* / --retries flags). */
struct CellOptions
{
    /** Wall-clock deadline per attempt in ms; 0 = none. */
    uint64_t timeout_ms = 0;

    /** RLIMIT_AS per cell in MiB; 0 = none. Incompatible with ASan
     *  builds (see rt/subprocess.hh). */
    uint64_t mem_mb = 0;

    /** RLIMIT_CPU per cell in seconds; 0 = none. */
    uint64_t cpu_s = 0;

    /** Extra attempts after a process-grade death (--retries). */
    unsigned retries = 0;

    /** First retry delay; doubles per further retry (--backoff-ms). */
    uint64_t backoff_ms = 100;

    /** Chaos fault assignment (disabled by default). */
    ChaosPolicy chaos;

    /**
     * Test knob: the point's own injected process-grade fault only
     * executes on attempts < inject_attempts, modelling a transient
     * fault that a retry survives. Default: every attempt faults.
     */
    unsigned inject_attempts = std::numeric_limits<unsigned>::max();
};

/** What supervising one cell produced. */
struct CellOutcome
{
    SimResult result;

    /** The point as the final attempt's child executed it (chaos may
     *  have injected a fault); what a repro bundle should record. */
    RunPoint as_run;

    unsigned attempts = 1;        //!< child processes spawned
    uint64_t backoff_ms_total = 0;

    bool retried() const { return attempts > 1; }
};

class CellSupervisor
{
  public:
    CellSupervisor(CellOptions opts, WorkloadCache &cache)
        : opts_(opts), cache_(cache)
    {}

    /**
     * Run @p point to completion under the supervision policy. Never
     * throws for anything the child does; fatal() only on parent-side
     * syscall failure. The parent must have prebuilt the point's
     * workload artifact if other threads share the cache (fork
     * safety; see SweepRunner's process mode).
     */
    CellOutcome runCell(const RunPoint &point);

    const CellOptions &options() const { return opts_; }

  private:
    CellOptions opts_;
    WorkloadCache &cache_;
};

} // namespace vrsim

#endif // VRSIM_RT_CELL_SUPERVISOR_HH

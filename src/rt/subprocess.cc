#include "rt/subprocess.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sim/logging.hh"

namespace vrsim
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Best-known name for a terminating signal ("SIGSEGV"). */
const char *
signalName(int sig)
{
    switch (sig) {
      case SIGSEGV: return "SIGSEGV";
      case SIGBUS: return "SIGBUS";
      case SIGABRT: return "SIGABRT";
      case SIGKILL: return "SIGKILL";
      case SIGTERM: return "SIGTERM";
      case SIGINT: return "SIGINT";
      case SIGXCPU: return "SIGXCPU";
      case SIGFPE: return "SIGFPE";
      case SIGILL: return "SIGILL";
      case SIGPIPE: return "SIGPIPE";
      case SIGHUP: return "SIGHUP";
      default: return "unknown";
    }
}

void
setNonBlocking(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/** Install the resource caps in the child. Failures are reported on
 *  the (already redirected) stderr but are not fatal: an uncapped
 *  child still runs under the parent's wall-clock deadline. */
void
applyCaps(const ResourceCaps &caps)
{
    if (caps.mem_bytes) {
        rlimit rl{caps.mem_bytes, caps.mem_bytes};
        if (setrlimit(RLIMIT_AS, &rl) != 0)
            std::fprintf(stderr, "rt: setrlimit(RLIMIT_AS) failed: %s\n",
                         std::strerror(errno));
    }
    if (caps.cpu_seconds) {
        // Soft == hard: SIGXCPU at the limit (default action kills);
        // no grace period a spinning cell could hide in.
        rlimit rl{caps.cpu_seconds, caps.cpu_seconds};
        if (setrlimit(RLIMIT_CPU, &rl) != 0)
            std::fprintf(stderr, "rt: setrlimit(RLIMIT_CPU) failed: %s\n",
                         std::strerror(errno));
    }
}

/** Drain whatever is readable from @p fd into @p sink (capped).
 *  Returns false on EOF/error, i.e. when the fd should be closed. */
bool
drain(int fd, std::string &sink, uint64_t &dropped, size_t cap)
{
    char buf[4096];
    for (;;) {
        ssize_t n = read(fd, buf, sizeof(buf));
        if (n > 0) {
            size_t room = sink.size() < cap ? cap - sink.size() : 0;
            size_t keep = std::min<size_t>(size_t(n), room);
            sink.append(buf, keep);
            dropped += uint64_t(n) - keep;
            continue;
        }
        if (n == 0)
            return false;                  // EOF: writer closed
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return true;                   // drained for now
        if (errno == EINTR)
            continue;
        return false;                      // unexpected read error
    }
}

} // namespace

std::string
ExitStatus::describe() const
{
    if (!known)
        return "unknown (reap failed: " +
               std::string(reap_errno ? std::strerror(reap_errno)
                                      : "wrong pid") + ")";
    if (exited)
        return "exit code " + std::to_string(code);
    return "signal " + std::to_string(signal) + " (" +
           signalName(signal) + ")";
}

bool
Subprocess::writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += size_t(n);
    }
    return true;
}

ChildOutcome
Subprocess::run(const Body &body, const ResourceCaps &caps,
                uint64_t deadline_ms)
{
    int result_pipe[2];
    int err_pipe[2];
    pid_t pid;
    {
        // Hold the process-wide log mutex across pipe() + fork() +
        // the parent-side close of the write ends. It serializes
        // sibling logLine calls (the child's single thread must
        // inherit a consistent logging state) and, just as
        // importantly, sibling run() calls: a child forked by another
        // worker inside the pipe()..close() window would inherit this
        // cell's write ends and hold them open past our child's
        // death, so the poll loop below would never see EOF and a
        // healthy cell could be misclassified TimedOut (or block
        // forever with no deadline). fatal() throws, so the guard
        // releases the lock on every exit path.
        std::lock_guard<std::mutex> lock(log_detail::mutex());
        if (pipe(result_pipe) != 0)
            fatal("rt: pipe() failed: " +
                  std::string(std::strerror(errno)));
        if (pipe(err_pipe) != 0) {
            int saved = errno;
            close(result_pipe[0]);
            close(result_pipe[1]);
            fatal("rt: pipe() failed: " +
                  std::string(std::strerror(saved)));
        }
        pid = fork();
        if (pid < 0) {
            int saved = errno;
            close(result_pipe[0]);
            close(result_pipe[1]);
            close(err_pipe[0]);
            close(err_pipe[1]);
            fatal("rt: fork() failed: " +
                  std::string(std::strerror(saved)));
        }
        if (pid > 0) {
            // The write ends must vanish before the lock drops so no
            // sibling's child can ever inherit them.
            close(result_pipe[1]);
            close(err_pipe[1]);
        }
    }

    if (pid == 0) {
        // ---- child ----
        close(result_pipe[0]);
        close(err_pipe[0]);
        dup2(err_pipe[1], 2);
        if (err_pipe[1] != 2)
            close(err_pipe[1]);
        // Dying quietly when the parent is gone beats SIGPIPE noise.
        signal(SIGPIPE, SIG_IGN);
        applyCaps(caps);
        int code = 81;   // body threw: distinct from any sane return
        try {
            code = body(result_pipe[1]);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "rt: child body raised: %s\n", e.what());
        } catch (...) {
            std::fprintf(stderr, "rt: child body raised a non-standard "
                                 "exception\n");
        }
        // _exit, not exit: the forked copy of the parent's stdio
        // buffers and atexit handlers (warn summaries, gtest
        // teardown) must not run here.
        _exit(code);
    }

    // ---- parent ---- (write ends already closed under the lock)
    setNonBlocking(result_pipe[0]);
    setNonBlocking(err_pipe[0]);

    ChildOutcome out;
    uint64_t result_dropped = 0;
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(deadline_ms);

    int fds_open = 2;
    bool open_result = true, open_err = true;
    while (fds_open > 0) {
        pollfd pfds[2];
        nfds_t n = 0;
        if (open_result)
            pfds[n++] = {result_pipe[0], POLLIN, 0};
        if (open_err)
            pfds[n++] = {err_pipe[0], POLLIN, 0};

        // Bounded slice even with no deadline: a child stopped by a
        // signal (SIGSTOP et al.) holds its pipes open while burning
        // no CPU, so only a periodic liveness check below can unwedge
        // the loop. The slice also keeps the timeout far from
        // INT_MAX, where a huge deadline would overflow into poll's
        // "wait forever" -1.
        long long timeout = kPollSliceMs;
        if (deadline_ms && !out.timed_out) {
            auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(deadline - Clock::now())
                .count();
            timeout = std::max<long long>(
                0, std::min<long long>(left, kPollSliceMs));
        }
        int rv = poll(pfds, n, int(timeout));
        if (rv < 0) {
            if (errno == EINTR)
                continue;
            break;   // give up polling; fall through to wait below
        }
        // SIGKILL a stopped child: it would otherwise hold the pipes
        // open indefinitely (SIGKILL terminates stopped processes
        // without a SIGCONT). WNOWAIT leaves it reapable by the wait4
        // below. Match on the pid alone: WSTOPPED only ever reports
        // stopped children, and some kernels fill si_code with
        // CLD_KILLED rather than CLD_STOPPED here.
        siginfo_t si;
        si.si_pid = 0;
        if (waitid(P_PID, id_t(pid), &si,
                   WSTOPPED | WNOHANG | WNOWAIT) == 0 &&
            si.si_pid == pid) {
            kill(pid, SIGKILL);
        }
        if (rv > 0) {
            for (nfds_t i = 0; i < n; i++) {
                if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                    continue;
                if (pfds[i].fd == result_pipe[0]) {
                    if (!drain(result_pipe[0], out.result_line,
                               result_dropped, kResultCap)) {
                        close(result_pipe[0]);
                        open_result = false;
                        fds_open--;
                    }
                } else {
                    if (!drain(err_pipe[0], out.stderr_text,
                               out.stderr_dropped, kStderrCap)) {
                        close(err_pipe[0]);
                        open_err = false;
                        fds_open--;
                    }
                }
            }
        }
        if (deadline_ms && !out.timed_out && Clock::now() >= deadline) {
            kill(pid, SIGKILL);
            out.timed_out = true;
        }
    }
    if (open_result)
        close(result_pipe[0]);
    if (open_err)
        close(err_pipe[0]);

    // Both pipes are at EOF, so the child has exited (or is in its
    // final teardown); reap it and harvest peak RSS.
    rusage ru{};
    int status = 0;
    pid_t reaped;
    do {
        reaped = wait4(pid, &status, 0, &ru);
    } while (reaped < 0 && errno == EINTR);
    if (reaped == pid) {
        out.status.known = true;
        if (WIFEXITED(status)) {
            out.status.exited = true;
            out.status.code = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
            out.status.exited = false;
            out.status.signal = WTERMSIG(status);
        }
        out.rss_peak_kb = uint64_t(ru.ru_maxrss);  // KiB on Linux
    } else {
        // The reap itself failed (e.g. ECHILD after an interfering
        // wait elsewhere): record that distinctly instead of letting
        // defaults masquerade as "signal 0".
        out.status.reap_errno = reaped < 0 ? errno : 0;
    }

    out.protocol_ok = out.status.exited && out.status.code == 0 &&
                      result_dropped == 0 && !out.result_line.empty() &&
                      out.result_line.back() == '\n' && !out.timed_out;
    return out;
}

} // namespace vrsim

/**
 * @file
 * Process-level execution primitive for the runtime (rt) subsystem:
 * fork a child, run an arbitrary body inside it under POSIX resource
 * caps (RLIMIT_AS / RLIMIT_CPU), enforce a wall-clock deadline from
 * the parent (SIGKILL on expiry), and transport the body's one-line
 * result plus its stderr back through pipes. The parent decodes the
 * waitpid status and peak RSS, so a SIGSEGV, OOM kill, runaway
 * allocation, or infinite loop in the child is an *observation* in
 * the parent, never a shared fate.
 *
 * Protocol: the child body receives a writable fd, writes exactly one
 * newline-terminated result line to it, and returns an exit code
 * (the child always leaves via _exit, so duplicated stdio buffers and
 * atexit handlers of the parent never run twice). The parent reports
 * `protocol_ok` only when a complete line arrived and the child
 * exited 0 — anything else (signal death, rlimit kill, bare exit) is
 * a process-grade failure the caller maps onto its own taxonomy.
 *
 * Fork safety: the process-wide log mutex (sim/logging.hh) is held
 * across pipe() + fork() + the parent-side close of the pipe write
 * ends, so no sibling thread can be mid-logLine when the address
 * space is duplicated — the child's single thread inherits a
 * consistent, unlocked logging state — and no sibling's child can
 * inherit this cell's pipe write ends (a leaked write end would keep
 * the read side from ever reaching EOF). Callers must ensure any other
 * locks they share with sibling threads (e.g. a workload cache) are
 * quiescent at spawn time; see CellSupervisor for the prebuild
 * discipline the sweep layer uses.
 */

#ifndef VRSIM_RT_SUBPROCESS_HH
#define VRSIM_RT_SUBPROCESS_HH

#include <cstdint>
#include <functional>
#include <string>

namespace vrsim
{

/** Resource caps installed inside the child before the body runs. */
struct ResourceCaps
{
    /** RLIMIT_AS in bytes; 0 = unlimited. Note: incompatible with
     *  AddressSanitizer builds (ASan reserves terabytes of virtual
     *  address space up front). */
    uint64_t mem_bytes = 0;

    /** RLIMIT_CPU in seconds; 0 = unlimited. The kernel delivers
     *  SIGXCPU at the soft limit (default action: terminate), so a
     *  spinning child dies even without a wall-clock deadline. */
    uint64_t cpu_seconds = 0;
};

/** Decoded waitpid(2) status of a finished child. */
struct ExitStatus
{
    /** The reap succeeded and exited/code/signal below are real. When
     *  false the child's fate is unknown (reap_errno says why) and
     *  must not be reported as a signal-0 death. */
    bool known = false;

    bool exited = false;  //!< normal exit (code below) vs. signal death
    int code = 0;         //!< exit code when exited
    int signal = 0;       //!< terminating signal when !exited
    int reap_errno = 0;   //!< wait4 errno when !known (e.g. ECHILD)

    /** "exit code 3" / "signal 11 (SIGSEGV)" /
     *  "unknown (reap failed: ...)". */
    std::string describe() const;
};

/** Everything the parent learned about one child execution. */
struct ChildOutcome
{
    ExitStatus status;

    /** The wall-clock deadline expired and the child was SIGKILLed. */
    bool timed_out = false;

    /** A complete result line arrived and the child exited 0. */
    bool protocol_ok = false;

    /** Bytes the body wrote to its result fd (newline included). */
    std::string result_line;

    /** Child stderr, capped at kStderrCap bytes. */
    std::string stderr_text;

    /** Stderr bytes discarded beyond the cap. */
    uint64_t stderr_dropped = 0;

    /** Child peak resident set size in KiB (wait4 rusage). */
    uint64_t rss_peak_kb = 0;
};

class Subprocess
{
  public:
    /** Child stderr capture cap: a crash-looping cell cannot balloon
     *  the parent's memory through the relay pipe. */
    static constexpr size_t kStderrCap = 64 * 1024;

    /** Result-line capture cap, generous next to any real result row.
     *  A child that loops writing to its result fd cannot balloon the
     *  parent's memory; exceeding the cap fails the protocol. */
    static constexpr size_t kResultCap = 4 * 1024 * 1024;

    /** Longest single poll(2) wait: bounds how late a stopped child
     *  (SIGSTOP holds the pipes open, burns no CPU) is detected and
     *  SIGKILLed, and keeps huge deadlines out of int-truncation
     *  territory. */
    static constexpr long long kPollSliceMs = 1000;

    /**
     * The child's entry point: runs with @p result_fd open for
     * writing and fd 2 redirected into the stderr capture pipe; its
     * return value becomes the child's exit code. Must not return
     * control to any parent-owned frame (the wrapper _exits).
     */
    using Body = std::function<int(int result_fd)>;

    /**
     * Fork, run @p body in the child under @p caps, and wait for it
     * with a wall-clock deadline of @p deadline_ms milliseconds
     * (0 = no deadline). On expiry the child is SIGKILLed and the
     * outcome is marked timed_out. The parent drains the result and
     * stderr pipes while waiting, so a chatty child can never block
     * on a full pipe. fatal() only on parent-side syscall failure
     * (pipe/fork) — never because of anything the child did.
     */
    static ChildOutcome run(const Body &body, const ResourceCaps &caps,
                            uint64_t deadline_ms);

    /** Write all of @p data to @p fd, retrying on EINTR/short writes.
     *  Returns false on error (e.g. parent died; EPIPE). */
    static bool writeAll(int fd, const std::string &data);
};

} // namespace vrsim

#endif // VRSIM_RT_SUBPROCESS_HH

#include "rt/chaos.hh"

#include <csignal>

#include "sim/logging.hh"
#include "sim/parse.hh"

namespace vrsim
{

namespace
{

/** splitmix64 finalizer: the avalanche stage is enough to decorrelate
 *  the structured (seed, id-hash, attempt) inputs. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** FNV-1a so the point id contributes every byte, not just length. */
uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

ChaosPolicy::ChaosPolicy(uint64_t seed, double rate)
    : seed_(seed), rate_(rate)
{
    if (rate_ < 0.0 || rate_ > 1.0)
        fatal("--chaos rate " + std::to_string(rate_) +
              " is outside [0, 1]");
}

ChaosPolicy
ChaosPolicy::parse(const std::string &spec)
{
    size_t colon = spec.find(':');
    if (colon == std::string::npos)
        fatal("--chaos expects SEED:RATE (e.g. 7:0.3), got '" + spec +
              "'");
    uint64_t seed =
        parseU64("--chaos seed", spec.substr(0, colon).c_str());
    double rate =
        parseF64("--chaos rate", spec.substr(colon + 1).c_str());
    return ChaosPolicy(seed, rate);
}

std::optional<ChaosFault>
ChaosPolicy::decide(const std::string &point_id, unsigned attempt) const
{
    if (!enabled())
        return std::nullopt;
    uint64_t h = mix64(seed_ ^ mix64(fnv1a(point_id) + attempt));
    // Top 53 bits -> uniform double in [0, 1).
    double u = double(h >> 11) * 0x1.0p-53;
    if (u >= rate_)
        return std::nullopt;
    ChaosFault f;
    switch (mix64(h) % 5) {
      case 0:
        f.kind = InjectKind::Segv;
        break;
      case 1:
        f.kind = InjectKind::Oom;
        break;
      case 2:
        f.kind = InjectKind::Spin;
        break;
      case 3:
        f.kind = InjectKind::ExitCode;
        f.arg = 3;
        break;
      default:
        f.kind = InjectKind::KillSelf;
        f.arg = SIGKILL;  // uninterceptable: identical under sanitizers
        break;
    }
    return f;
}

} // namespace vrsim

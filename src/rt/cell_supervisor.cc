#include "rt/cell_supervisor.hh"

#include <csignal>
#include <cstring>
#include <new>
#include <thread>

#include "driver/repro.hh"
#include "obs/self_profile.hh"
#include "sim/logging.hh"

#include <unistd.h>

namespace vrsim
{

namespace
{

/** How many relayed child-stderr lines to print per cell before
 *  summarizing; a crash-looping cell cannot flood the sweep log. */
constexpr size_t kRelayLines = 8;

/** Execute a process-grade injected fault inside the child. Never
 *  returns normally: the point of these kinds is to kill or wedge
 *  this process so the parent's supervision is what saves the sweep. */
[[noreturn]] void
executeProcessFault(InjectKind kind, uint32_t arg)
{
    switch (kind) {
      case InjectKind::Segv: {
        volatile int *p = nullptr;
        *p = 42;
        std::abort();  // unreachable unless SIGSEGV is being traced
      }
      case InjectKind::Oom: {
        // Allocate-and-touch until RLIMIT_AS says no; self-bound at
        // 256 MiB so an uncapped (e.g. sanitizer) child still dies
        // promptly instead of eating the host.
        constexpr size_t kChunk = 8u << 20;
        constexpr size_t kSelfBound = 256u << 20;
        size_t total = 0;
        for (;;) {
            char *m = new (std::nothrow) char[kChunk];
            if (!m)
                std::abort();
            std::memset(m, 0xA5, kChunk);
            total += kChunk;
            if (total >= kSelfBound)
                std::abort();
        }
      }
      case InjectKind::Spin: {
        volatile uint64_t burn = 0;
        for (;;)
            burn = burn + 1;
      }
      case InjectKind::ExitCode:
        _exit(int(arg));
      case InjectKind::KillSelf:
        raise(int(arg));
        // A caught/ignored signal must still end the attempt without
        // a result line.
        _exit(82);
      default:
        _exit(80);  // not a process-grade kind; supervisor bug
    }
}

/**
 * Print the child's captured stderr through the parent's serialized
 * log (the caller's log context tags each line with the point ID):
 * the first kRelayLines lines verbatim, the rest summarized via the
 * rate-limited warn() so a crash-looping cell cannot flood the sweep
 * output.
 */
void
relayChildStderr(const std::string &point_id, const ChildOutcome &out)
{
    if (out.stderr_text.empty() && out.stderr_dropped == 0)
        return;
    size_t lines = 0, start = 0, suppressed = 0;
    while (start < out.stderr_text.size()) {
        size_t end = out.stderr_text.find('\n', start);
        size_t len = (end == std::string::npos
                          ? out.stderr_text.size()
                          : end) - start;
        if (len > 0) {
            if (lines < kRelayLines)
                logLine("child", out.stderr_text.substr(start, len));
            else
                suppressed++;
            lines++;
        }
        if (end == std::string::npos)
            break;
        start = end + 1;
    }
    if (suppressed > 0 || out.stderr_dropped > 0)
        warn(point_id + ": child stderr truncated (" +
             std::to_string(suppressed) + " lines suppressed, " +
             std::to_string(out.stderr_dropped) +
             " bytes dropped at the pipe)");
}

} // namespace

CellOutcome
CellSupervisor::runCell(const RunPoint &point)
{
    ResourceCaps caps;
    caps.mem_bytes = opts_.mem_mb << 20;
    caps.cpu_seconds = opts_.cpu_s;

    CellOutcome cell;
    cell.as_run = point;

    for (unsigned attempt = 0;; attempt++) {
        RunPoint as_run = point;
        // A point-carried process-grade fault models a transient bug:
        // the inject_attempts knob decides for how many attempts it
        // fires. In-taxonomy kinds always run (they are results, not
        // deaths, and must stay deterministic across attempts).
        if (as_run.inject_fail &&
            injectKindIsProcessGrade(as_run.inject_kind) &&
            attempt >= opts_.inject_attempts) {
            as_run.inject_fail = false;
            as_run.inject_kind = InjectKind::None;
            as_run.inject_arg = 0;
        }
        // Chaos draws per (cell, attempt), so a cell can die on its
        // first attempt and succeed on the retry. Points that already
        // carry a fault are left alone: explicit injection wins.
        if (opts_.chaos.enabled() && !as_run.inject_fail) {
            if (auto fault = opts_.chaos.decide(point.id(), attempt)) {
                as_run.inject_fail = true;
                as_run.inject_kind = fault->kind;
                as_run.inject_arg = fault->arg;
            }
        }
        cell.as_run = as_run;
        cell.attempts = attempt + 1;

        WorkloadCache &cache = cache_;
        ChildOutcome out = Subprocess::run(
            [&as_run, &cache](int result_fd) {
                setLogContext(as_run.id());
                if (as_run.inject_fail &&
                    injectKindIsProcessGrade(as_run.inject_kind))
                    executeProcessFault(as_run.inject_kind,
                                        as_run.inject_arg);
                SimResult r = SweepRunner::runPoint(as_run, cache);
                std::string line = resultToJson(r) + "\n";
                return Subprocess::writeAll(result_fd, line) ? 0 : 83;
            },
            caps, opts_.timeout_ms);

        relayChildStderr(point.id(), out);

        if (out.protocol_ok) {
            // The child completed the protocol: its row (possibly a
            // guarded in-taxonomy failure) is the result, identical
            // to what thread isolation would have recorded.
            cell.result = resultFromJson(
                "result from cell " + point.id(), out.result_line);
            // Keep the process-wide throughput accounting whole: the
            // child's counters died with it.
            SelfProfiler::process().addSimulated(
                cell.result.core.instructions, cell.result.core.cycles);
            return cell;
        }

        // Process-grade death. Retry with backoff while attempts
        // remain; the backoff gives a transiently overloaded host
        // (OOM killer, load spike) room to recover.
        if (attempt < opts_.retries) {
            uint64_t delay = opts_.backoff_ms << attempt;
            warn(point.id() + ": cell process died (" +
                 out.status.describe() +
                 (out.timed_out ? ", deadline expired" : "") +
                 "); retrying in " + std::to_string(delay) + " ms (" +
                 std::to_string(opts_.retries - attempt) +
                 " retries left)");
            if (delay)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay));
            cell.backoff_ms_total += delay;
            continue;
        }

        // Out of attempts: synthesize the crash row.
        SimResult r;
        r.workload = point.spec;
        r.technique = point.technique;
        if (out.timed_out) {
            r.status = SimStatus::TimedOut;
            r.status_message =
                "cell exceeded " + std::to_string(opts_.timeout_ms) +
                " ms wall-clock deadline and was SIGKILLed (attempt " +
                std::to_string(attempt + 1) + "/" +
                std::to_string(opts_.retries + 1) + ")";
        } else {
            r.status = SimStatus::Crashed;
            r.status_message =
                "cell process died: " + out.status.describe() +
                " (attempt " + std::to_string(attempt + 1) + "/" +
                std::to_string(opts_.retries + 1) + ")";
            if (!out.status.exited)
                r.term_signal = out.status.signal;
        }
        r.rss_peak_kb = out.rss_peak_kb;
        cell.result = std::move(r);
        return cell;
    }
}

} // namespace vrsim

/**
 * @file
 * Deterministic chaos harness for process-isolated sweeps: a
 * ChaosPolicy decides, per (cell, attempt), whether to inject a
 * process-grade fault into the child and which kind. Decisions are a
 * pure hash of (seed, point id, attempt) — the same `--chaos
 * SEED:RATE` spec produces the same fault assignment at any job
 * count, so tests can recompute the policy and predict exactly which
 * cells must end Crashed/TimedOut and which must be byte-identical to
 * a clean run. Per-attempt draws mean a cell can fault on attempt 0
 * and come up clean on the retry, exercising the
 * retried-then-succeeded path naturally.
 */

#ifndef VRSIM_RT_CHAOS_HH
#define VRSIM_RT_CHAOS_HH

#include <cstdint>
#include <optional>
#include <string>

#include "driver/plan.hh"

namespace vrsim
{

/** One fault assignment: an inject kind plus its argument (exit code
 *  for ExitCode, signal number for KillSelf; 0 otherwise). */
struct ChaosFault
{
    InjectKind kind = InjectKind::None;
    uint32_t arg = 0;
};

/**
 * Parsed `--chaos SEED:RATE` spec. RATE is the per-attempt injection
 * probability in [0, 1].
 */
class ChaosPolicy
{
  public:
    ChaosPolicy() = default;
    ChaosPolicy(uint64_t seed, double rate);

    /** Parse "SEED:RATE" (e.g. "7:0.3"); fatal() on malformed specs
     *  or a rate outside [0, 1]. */
    static ChaosPolicy parse(const std::string &spec);

    bool enabled() const { return rate_ > 0.0; }
    uint64_t seed() const { return seed_; }
    double rate() const { return rate_; }

    /**
     * The fault (if any) to inject into attempt @p attempt of the
     * cell named @p point_id. Deterministic: depends only on the
     * policy's seed/rate and the arguments. Kinds rotate over the
     * five process-grade classes (segv, oom, spin, exit:N,
     * killself:SIG) so every class appears in a large enough sweep.
     */
    std::optional<ChaosFault> decide(const std::string &point_id,
                                     unsigned attempt) const;

  private:
    uint64_t seed_ = 0;
    double rate_ = 0.0;
};

} // namespace vrsim

#endif // VRSIM_RT_CHAOS_HH

#include "frontend/branch_predictor.hh"

namespace vrsim
{

BranchPredictor::BranchPredictor()
{
    base_.assign(1u << BASE_BITS, 0);
    for (auto &t : tables_)
        t.assign(1u << TABLE_BITS, TageEntry{});
}

uint64_t
BranchPredictor::foldedHistory(unsigned bits, unsigned length) const
{
    uint64_t h = ghist_ & ((length >= 64) ? ~0ull
                                          : ((1ull << length) - 1));
    uint64_t folded = 0;
    while (h) {
        folded ^= h & ((1ull << bits) - 1);
        h >>= bits;
    }
    return folded;
}

uint32_t
BranchPredictor::tableIndex(uint64_t pc, unsigned table) const
{
    uint64_t h = foldedHistory(TABLE_BITS, HIST_LEN[table]);
    return uint32_t((pc ^ (pc >> TABLE_BITS) ^ h) &
                    ((1u << TABLE_BITS) - 1));
}

uint16_t
BranchPredictor::tableTag(uint64_t pc, unsigned table) const
{
    uint64_t h = foldedHistory(TAG_BITS, HIST_LEN[table]);
    return uint16_t((pc ^ (pc >> 3) ^ (h << 1)) &
                    ((1u << TAG_BITS) - 1));
}

BranchPredictor::LoopEntry *
BranchPredictor::findLoop(uint64_t pc)
{
    for (auto &l : loops_) {
        if (l.valid && l.pc == pc)
            return &l;
    }
    return nullptr;
}

bool
BranchPredictor::predict(uint64_t pc)
{
    ++lookups_;
    last_ = {};
    last_.base_idx = uint32_t(pc & ((1u << BASE_BITS) - 1));
    last_.base_pred = base_[last_.base_idx] >= 0;

    // Loop predictor override: confident loops predict not-taken at
    // the learned trip count (our loops branch backwards when taken).
    if (LoopEntry *l = findLoop(pc)) {
        if (l->confidence >= 3 && l->trip > 0) {
            last_.loop_hit = true;
            last_.loop_pred = (l->count + 1u < l->trip);
        }
    }

    int provider = -1;
    bool pred = last_.base_pred;
    for (unsigned t = 0; t < NUM_TABLES; t++) {
        last_.idx[t] = tableIndex(pc, t);
        last_.tag[t] = tableTag(pc, t);
        const TageEntry &e = tables_[t][last_.idx[t]];
        if (e.tag == last_.tag[t]) {
            provider = int(t);
            pred = e.ctr >= 0;
        }
    }
    last_.provider = provider;
    last_.pred = last_.loop_hit ? last_.loop_pred : pred;
    return last_.pred;
}

void
BranchPredictor::update(uint64_t pc, bool taken)
{
    if (last_.pred != taken)
        ++mispredicts_;

    // Loop predictor training: count taken streaks.
    LoopEntry *l = findLoop(pc);
    if (!l) {
        // Allocate lazily on a taken backward-ish branch.
        for (auto &e : loops_) {
            if (!e.valid) {
                e = LoopEntry{};
                e.pc = pc;
                e.valid = true;
                l = &e;
                break;
            }
        }
    }
    if (l) {
        if (taken) {
            ++l->count;
        } else {
            uint16_t trip = l->count + 1;
            if (trip == l->last_trip) {
                if (l->confidence < 3)
                    ++l->confidence;
                l->trip = trip;
            } else {
                l->confidence = 0;
                l->trip = 0;
            }
            l->last_trip = trip;
            l->count = 0;
        }
    }

    // TAGE update: provider counter, usefulness, allocation on
    // mispredict.
    auto bump = [](int8_t &c, bool up, int8_t lo, int8_t hi) {
        if (up && c < hi)
            ++c;
        else if (!up && c > lo)
            --c;
    };

    if (last_.provider >= 0) {
        TageEntry &e = tables_[last_.provider][last_.idx[last_.provider]];
        bool table_pred = e.ctr >= 0;
        bump(e.ctr, taken, -4, 3);
        if (table_pred == taken && last_.base_pred != taken) {
            if (e.useful < 3)
                ++e.useful;
        } else if (table_pred != taken && e.useful > 0) {
            --e.useful;
        }
    } else {
        bump(base_[last_.base_idx], taken, -2, 1);
    }

    // Allocate a longer-history entry on mispredict.
    bool tage_pred = last_.provider >= 0
        ? (tables_[last_.provider][last_.idx[last_.provider]].tag ==
               last_.tag[last_.provider]
           && last_.pred == (last_.loop_hit ? last_.pred : last_.pred))
        : last_.base_pred;
    (void)tage_pred;
    if (last_.pred != taken) {
        for (unsigned t = unsigned(last_.provider + 1); t < NUM_TABLES;
             t++) {
            TageEntry &e = tables_[t][last_.idx[t]];
            if (e.useful == 0) {
                e.tag = last_.tag[t];
                e.ctr = taken ? 0 : -1;
                break;
            }
        }
    }

    ghist_ = (ghist_ << 1) | (taken ? 1 : 0);
}

} // namespace vrsim

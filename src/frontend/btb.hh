/**
 * @file
 * Branch Target Buffer: tracks taken-branch targets so the fetch
 * stage can redirect without a decode-stage bubble. A taken branch
 * that misses in the BTB costs a front-end redirect; a hit is
 * effectively free on a modern fetch pipeline.
 */

#ifndef VRSIM_FRONTEND_BTB_HH
#define VRSIM_FRONTEND_BTB_HH

#include <cstdint>
#include <vector>

namespace vrsim
{

/** Direct-mapped BTB with tags. */
class Btb
{
  public:
    explicit Btb(uint32_t entries = 512)
        : mask_(entries - 1), table_(entries)
    {
        // Round down to a power of two for cheap indexing.
        uint32_t p = 1;
        while (p * 2 <= entries)
            p *= 2;
        mask_ = p - 1;
        table_.assign(p, Entry{});
    }

    /** Does the BTB know the target of the branch at @p pc? */
    bool
    hit(uint64_t pc) const
    {
        const Entry &e = table_[pc & mask_];
        return e.valid && e.pc == pc;
    }

    /** Install/refresh the entry after a taken branch resolves. */
    void
    install(uint64_t pc, uint64_t target)
    {
        Entry &e = table_[pc & mask_];
        e.valid = true;
        e.pc = pc;
        e.target = target;
        ++installs_;
    }

    uint64_t installs() const { return installs_; }
    uint32_t capacity() const { return mask_ + 1; }

  private:
    struct Entry
    {
        uint64_t pc = 0;
        uint64_t target = 0;
        bool valid = false;
    };

    uint32_t mask_;
    std::vector<Entry> table_;
    uint64_t installs_ = 0;
};

} // namespace vrsim

#endif // VRSIM_FRONTEND_BTB_HH

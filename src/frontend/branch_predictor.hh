/**
 * @file
 * Conditional-branch direction predictor: a TAGE-style predictor with
 * geometric history lengths plus a loop predictor, standing in for the
 * paper's 8 KB TAGE-SC-L (see DESIGN.md substitution table).
 */

#ifndef VRSIM_FRONTEND_BRANCH_PREDICTOR_HH
#define VRSIM_FRONTEND_BRANCH_PREDICTOR_HH

#include <array>
#include <cstdint>
#include <vector>

namespace vrsim
{

/**
 * TAGE-lite: bimodal base predictor + NUM_TABLES partially tagged
 * components indexed by geometrically increasing history lengths,
 * with a simple loop predictor overriding on confident loops.
 */
class BranchPredictor
{
  public:
    BranchPredictor();

    /** Predict the direction of the conditional branch at @p pc. */
    bool predict(uint64_t pc);

    /** Update with the resolved outcome (call after predict). */
    void update(uint64_t pc, bool taken);

    uint64_t lookups() const { return lookups_; }
    uint64_t mispredicts() const { return mispredicts_; }

    double
    mispredictRate() const
    {
        return lookups_ ? double(mispredicts_) / double(lookups_) : 0.0;
    }

  private:
    static constexpr unsigned NUM_TABLES = 4;
    static constexpr unsigned TABLE_BITS = 10;   //!< 1K entries/table
    static constexpr unsigned BASE_BITS = 12;    //!< 4K bimodal
    static constexpr unsigned TAG_BITS = 9;
    static constexpr std::array<unsigned, NUM_TABLES> HIST_LEN =
        {4, 10, 24, 60};

    struct TageEntry
    {
        uint16_t tag = 0;
        int8_t ctr = 0;      //!< 3-bit signed counter [-4, 3]
        uint8_t useful = 0;  //!< 2-bit usefulness
    };

    struct LoopEntry
    {
        uint64_t pc = 0;
        uint16_t trip = 0;     //!< learned trip count
        uint16_t count = 0;    //!< current iteration
        uint16_t last_trip = 0;
        uint8_t confidence = 0;
        bool valid = false;
    };

    uint32_t tableIndex(uint64_t pc, unsigned table) const;
    uint16_t tableTag(uint64_t pc, unsigned table) const;
    uint64_t foldedHistory(unsigned bits, unsigned length) const;

    LoopEntry *findLoop(uint64_t pc);

    std::vector<int8_t> base_;               //!< 2-bit bimodal counters
    std::array<std::vector<TageEntry>, NUM_TABLES> tables_;
    std::array<LoopEntry, 64> loops_;
    uint64_t ghist_ = 0;                     //!< global history register

    // State carried from predict() to update().
    struct
    {
        int provider = -1;     //!< providing table (-1 = base)
        bool pred = false;
        bool base_pred = false;
        uint32_t idx[NUM_TABLES] = {};
        uint16_t tag[NUM_TABLES] = {};
        uint32_t base_idx = 0;
        bool loop_hit = false;
        bool loop_pred = false;
    } last_;

    uint64_t lookups_ = 0;
    uint64_t mispredicts_ = 0;
};

} // namespace vrsim

#endif // VRSIM_FRONTEND_BRANCH_PREDICTOR_HH

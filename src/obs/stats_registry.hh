/**
 * @file
 * Hierarchical statistics registry, the uniform reporting layer of
 * the observability subsystem (docs/observability.md): named nodes —
 * Counter, Gauge, Average, Histogram, Formula — registered exactly
 * once under dotted lower-case paths ("core.commit.insts",
 * "dvr.lanes.issued"), looked up by path, iterated in lexicographic
 * order, and dumped as JSON or CSV. Stat-producing components expose
 * a `registerIn(StatsRegistry &, prefix)` method that maps their raw
 * counter structs onto registry paths, so every report format (human
 * report, sweep CSV, --format json, --stats-json) renders one shared
 * name space instead of ad-hoc per-writer field lists.
 */

#ifndef VRSIM_OBS_STATS_REGISTRY_HH
#define VRSIM_OBS_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace vrsim
{

class StatsRegistry;

/** What kind of statistic a registry node holds. */
enum class StatKind : uint8_t
{
    Counter,    //!< monotone 64-bit event count
    Gauge,      //!< instantaneous/derived double value
    Average,    //!< arithmetic mean over samples
    Histogram,  //!< fixed-width bucket distribution
    Formula,    //!< value computed from other nodes on read
    Sample,     //!< mean + spread over independent observations,
                //!< reported with a 95% confidence interval
};

/** Printable kind name ("counter", "gauge", ...). */
const char *statKindName(StatKind k);

/**
 * Two-sided 95% Student-t critical value for @p dof degrees of
 * freedom (tabulated through 30, then the common coarse steps,
 * converging to the normal 1.96). Used by Sample nodes to widen small-
 * n confidence intervals honestly.
 */
double studentT95(uint64_t dof);

/** Sample standard deviation from raw moments (n-1 denominator;
 *  0 when n < 2). */
double momentsStddev(double sum, double sumsq, uint64_t n);

/** Half-width of the 95% confidence interval of the mean from raw
 *  moments: t_{.95, n-1} * stddev / sqrt(n) (0 when n < 2). */
double momentsCi95(double sum, double sumsq, uint64_t n);

/**
 * One registered statistic. Nodes live inside the registry; the
 * references handed out by the add* methods stay valid for the
 * registry's lifetime (node storage is never reallocated).
 */
class StatNode
{
  public:
    using FormulaFn = std::function<double(const StatsRegistry &)>;

    StatKind kind() const { return kind_; }
    const std::string &path() const { return path_; }
    const std::string &desc() const { return desc_; }

    // -- Counter --
    StatNode &operator++()
    {
        count_ += 1;
        return *this;
    }
    StatNode &
    operator+=(uint64_t v)
    {
        count_ += v;
        return *this;
    }
    uint64_t count() const { return count_; }

    // -- Gauge --
    StatNode &
    operator=(double v)
    {
        gauge_ = v;
        return *this;
    }

    // -- Average / Histogram / Sample --
    void sample(double v, uint64_t weight = 1);
    uint64_t samples() const { return samples_; }
    const std::vector<uint64_t> &buckets() const { return buckets_; }
    double bucketWidth() const { return bucket_width_; }

    // -- Sample --
    /** Sample standard deviation (n-1 denominator; 0 when n < 2). */
    double stddev() const;
    /** Half-width of the 95% CI of the mean (Student-t). */
    double ci95() const;
    /**
     * Restore a Sample node from previously accumulated raw moments
     * (sum, sum of squares, count) — how a serialized SampleSummary
     * re-enters the registry without replaying every observation.
     */
    void setMoments(double sum, double sumsq, uint64_t n);

    /**
     * The node's scalar value: Counter -> count, Gauge -> value,
     * Average/Histogram -> mean of samples, Formula -> evaluated.
     */
    double value(const StatsRegistry &reg) const;

  private:
    friend class StatsRegistry;

    StatNode(StatKind kind, std::string path, std::string desc)
        : kind_(kind), path_(std::move(path)), desc_(std::move(desc))
    {}

    StatKind kind_;
    std::string path_;
    std::string desc_;

    uint64_t count_ = 0;        //!< Counter
    double gauge_ = 0.0;        //!< Gauge
    double sum_ = 0.0;          //!< Average/Histogram/Sample sum
    uint64_t samples_ = 0;      //!< Average/Histogram/Sample count
    double sumsq_ = 0.0;        //!< Sample sum of squares
    double bucket_width_ = 1.0; //!< Histogram geometry
    std::vector<uint64_t> buckets_;
    FormulaFn formula_;
};

/**
 * The registry: a flat map from dotted path to node. Paths are
 * validated (`[a-z0-9_]+` segments joined by '.') and may be
 * registered exactly once — a duplicate registration fatal()s with
 * both the old and new kind, because silently aliasing two
 * components' counters is how statistics go quietly wrong.
 */
class StatsRegistry
{
  public:
    StatsRegistry() = default;
    StatsRegistry(StatsRegistry &&) = default;
    StatsRegistry &operator=(StatsRegistry &&) = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /** Register a monotone event counter. */
    StatNode &addCounter(const std::string &path,
                         const std::string &desc = "");

    /** Register an instantaneous/derived value. */
    StatNode &addGauge(const std::string &path,
                       const std::string &desc = "");

    /** Register an arithmetic-mean statistic. */
    StatNode &addAverage(const std::string &path,
                         const std::string &desc = "");

    /**
     * Register a sampled statistic over independent observations
     * (e.g. per-interval IPC under SMARTS sampling): reports mean,
     * sample stddev and the 95% confidence interval of the mean, and
     * dumps as {"mean":, "n":, "stddev":, "ci95":} in JSON.
     */
    StatNode &addSample(const std::string &path,
                        const std::string &desc = "");

    /** Register a fixed-width histogram over [0, buckets*width) plus
     *  an overflow bucket. */
    StatNode &addHistogram(const std::string &path, size_t buckets,
                           double bucket_width,
                           const std::string &desc = "");

    /**
     * Register a value computed from other nodes at read time. The
     * function receives the registry so it can combine any paths;
     * evaluation order is irrelevant because formulas never write.
     */
    StatNode &addFormula(const std::string &path, StatNode::FormulaFn fn,
                         const std::string &desc = "");

    bool has(const std::string &path) const;

    /** Node by path; fatal() if absent. */
    const StatNode &at(const std::string &path) const;
    StatNode &at(const std::string &path);

    /** Node by path or null. */
    const StatNode *find(const std::string &path) const;

    /** Scalar value of the node at @p path; fatal() if absent. */
    double value(const std::string &path) const;

    /** All paths in lexicographic order (the canonical dump order). */
    std::vector<std::string> paths() const;

    /** Visit every node in lexicographic path order. */
    void visit(const std::function<void(const StatNode &)> &fn) const;

    size_t size() const { return nodes_.size(); }

    /**
     * JSON object {"path": value, ...} in path order; histograms dump
     * as {"mean":, "total":, "bucket_width":, "buckets": [...]} and
     * sample nodes as {"mean":, "n":, "stddev":, "ci95":}. Parseable
     * by sim/parse.hh's strict JsonValue reader (round-trip tested).
     */
    void dumpJson(std::ostream &os) const;

    /** CSV: "path,kind,value,description" header plus one row per
     *  node in path order. */
    void dumpCsv(std::ostream &os) const;

  private:
    StatNode &add(StatKind kind, const std::string &path,
                  const std::string &desc);

    // unique_ptr keeps handed-out StatNode references stable across
    // later registrations.
    std::map<std::string, std::unique_ptr<StatNode>> nodes_;
};

} // namespace vrsim

#endif // VRSIM_OBS_STATS_REGISTRY_HH

/**
 * @file
 * Host-side self-profiling, the third leg of the observability
 * subsystem (docs/observability.md): how fast is the *simulator*
 * running? A process-wide SelfProfiler accumulates per-phase wall
 * time (workload-build, simulate, report) and simulated-work counts
 * (instructions, cycles, points) so the exit summary and BENCH_*
 * sweeps can report simulated-insts/host-second across PRs.
 *
 * Host timing is inherently nondeterministic, so it never enters the
 * default result tables: per-cell host columns appear in CSV/JSON
 * only when profiling columns are explicitly enabled (`vrsim
 * --profile` or VRSIM_PROFILE=1), keeping sweep output byte-identical
 * run to run otherwise.
 */

#ifndef VRSIM_OBS_SELF_PROFILE_HH
#define VRSIM_OBS_SELF_PROFILE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace vrsim
{

/**
 * Should host-timing columns be included in per-cell CSV/JSON output?
 * Resolved once from VRSIM_PROFILE (any nonempty value other than
 * "0") and overridable by the CLI's --profile flag.
 */
bool profileColumnsEnabled();
void setProfileColumns(bool enabled);

class SelfProfiler
{
  public:
    using Clock = std::chrono::steady_clock;

    /** The process-wide profiler (what the vrsim exit summary prints). */
    static SelfProfiler &process();

    SelfProfiler() : start_(Clock::now()) {}

    /**
     * RAII phase timer: elapsed wall time between construction and
     * destruction is added to the named phase. Phases nest naturally
     * (time spent in an inner phase is also counted by the outer one;
     * the summary reports them side by side, not as a strict
     * partition).
     */
    class PhaseTimer
    {
      public:
        PhaseTimer(SelfProfiler &p, const char *phase)
            : prof_(&p), phase_(phase), start_(Clock::now())
        {}
        PhaseTimer(PhaseTimer &&o) noexcept
            : prof_(o.prof_), phase_(o.phase_), start_(o.start_)
        {
            o.prof_ = nullptr;
        }
        PhaseTimer(const PhaseTimer &) = delete;
        PhaseTimer &operator=(const PhaseTimer &) = delete;
        PhaseTimer &operator=(PhaseTimer &&) = delete;

        ~PhaseTimer()
        {
            if (prof_)
                prof_->addPhase(phase_, seconds());
        }

        /** Elapsed seconds so far (the timer keeps running). */
        double
        seconds() const
        {
            return std::chrono::duration<double>(Clock::now() - start_)
                .count();
        }

      private:
        SelfProfiler *prof_;
        const char *phase_;
        Clock::time_point start_;
    };

    /** Start timing @p phase (a stable string literal). */
    PhaseTimer phase(const char *name) { return PhaseTimer(*this, name); }

    /** Record completed simulated work (thread-safe). */
    void
    addSimulated(uint64_t insts, uint64_t cycles)
    {
        insts_.fetch_add(insts, std::memory_order_relaxed);
        cycles_.fetch_add(cycles, std::memory_order_relaxed);
        points_.fetch_add(1, std::memory_order_relaxed);
    }

    void addPhase(const char *name, double seconds);

    uint64_t insts() const { return insts_.load(); }
    uint64_t cycles() const { return cycles_.load(); }
    uint64_t points() const { return points_.load(); }

    /** Accumulated seconds for @p name (0 if never timed). */
    double phaseSeconds(const char *name) const;

    /** Wall seconds since construction/reset. */
    double
    wallSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_)
            .count();
    }

    /** Simulated instructions per host wall second (0 if no time). */
    double instsPerSecond() const;

    /**
     * One-line human summary for the exit path, e.g.:
     * "self-profile: 8 points, 1.20 Minsts in 0.84 s host
     *  (1.43 Minsts/s; workload-build 0.02 s, simulate 0.78 s)"
     */
    std::string summary() const;

    /** Forget everything (tests). */
    void reset();

  private:
    Clock::time_point start_;
    std::atomic<uint64_t> insts_{0};
    std::atomic<uint64_t> cycles_{0};
    std::atomic<uint64_t> points_{0};
    mutable std::mutex mutex_;
    std::map<std::string, double> phases_;
};

} // namespace vrsim

#endif // VRSIM_OBS_SELF_PROFILE_HH

#include "obs/self_profile.hh"

#include <cstdio>
#include <cstdlib>

namespace vrsim
{

namespace
{

std::atomic<int> profile_columns{-1};  //!< -1 = resolve from env

} // namespace

bool
profileColumnsEnabled()
{
    int v = profile_columns.load(std::memory_order_relaxed);
    if (v < 0) {
        const char *env = std::getenv("VRSIM_PROFILE");
        v = (env && *env && std::string(env) != "0") ? 1 : 0;
        profile_columns.store(v, std::memory_order_relaxed);
    }
    return v == 1;
}

void
setProfileColumns(bool enabled)
{
    profile_columns.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

SelfProfiler &
SelfProfiler::process()
{
    static SelfProfiler instance;
    return instance;
}

void
SelfProfiler::addPhase(const char *name, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    phases_[name] += seconds;
}

double
SelfProfiler::phaseSeconds(const char *name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = phases_.find(name);
    return it == phases_.end() ? 0.0 : it->second;
}

double
SelfProfiler::instsPerSecond() const
{
    double wall = wallSeconds();
    return wall > 0.0 ? double(insts()) / wall : 0.0;
}

std::string
SelfProfiler::summary() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "self-profile: %llu points, %.2f Minsts in %.2f s "
                  "host (%.2f Minsts/s",
                  (unsigned long long)points(), double(insts()) / 1e6,
                  wallSeconds(), instsPerSecond() / 1e6);
    std::string out = buf;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &kv : phases_) {
            std::snprintf(buf, sizeof(buf), "; %s %.2f s",
                          kv.first.c_str(), kv.second);
            out += buf;
        }
    }
    out += ")";
    return out;
}

void
SelfProfiler::reset()
{
    start_ = Clock::now();
    insts_.store(0);
    cycles_.store(0);
    points_.store(0);
    std::lock_guard<std::mutex> lock(mutex_);
    phases_.clear();
}

} // namespace vrsim

#include "obs/trace.hh"

#include <cstdio>

#include "sim/logging.hh"
#include "sim/parse.hh"

namespace vrsim
{

uint32_t
TraceSink::parseCats(const std::string &spec)
{
    uint32_t mask = 0;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        std::string name = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (name == "all")
            mask |= TRACE_ALL;
        else if (name == "pipeline")
            mask |= uint32_t(TraceCat::Pipeline);
        else if (name == "mem")
            mask |= uint32_t(TraceCat::Mem);
        else if (name == "runahead")
            mask |= uint32_t(TraceCat::Runahead);
        else if (name == "lanes")
            mask |= uint32_t(TraceCat::Lanes);
        else
            fatal("unknown trace category '" + name +
                  "' (want pipeline, mem, runahead, lanes or all)");
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (!mask)
        fatal("empty trace category list");
    return mask;
}

void
TraceSink::parseSpec(const std::string &spec, uint32_t &mask,
                     std::string &path)
{
    size_t colon = spec.find(':');
    if (colon == std::string::npos) {
        mask = TRACE_ALL;
        path = spec;
    } else {
        mask = parseCats(spec.substr(0, colon));
        path = spec.substr(colon + 1);
    }
    if (path.empty())
        fatal("--trace needs an output file: EVENTS:FILE or FILE");
}

void
TraceSink::meta(const std::string &point, const std::string &workload,
                const std::string &technique, uint64_t roi,
                uint64_t warmup)
{
    os_ << "{\"ev\":\"meta\",\"version\":" << TRACE_SCHEMA_VERSION
        << ",\"point\":\"" << jsonEscape(point) << "\",\"workload\":\""
        << jsonEscape(workload) << "\",\"technique\":\""
        << jsonEscape(technique) << "\",\"roi\":" << roi
        << ",\"warmup\":" << warmup << "}\n";
    ++events_;
}

void
TraceSink::inst(uint64_t index, uint32_t pc, const std::string &disasm,
                uint64_t dispatch, uint64_t ready, uint64_t issue,
                uint64_t complete, uint64_t commit, bool is_load,
                bool mispredicted, uint32_t rob_occupancy)
{
    char buf[256];
    int n = std::snprintf(
        buf, sizeof(buf),
        "{\"ev\":\"inst\",\"cyc\":%llu,\"i\":%llu,\"pc\":%u,"
        "\"disp\":%llu,\"ready\":%llu,\"iss\":%llu,\"comp\":%llu,"
        "\"load\":%d,\"misp\":%d,\"rob\":%u,\"op\":\"",
        (unsigned long long)commit, (unsigned long long)index, pc,
        (unsigned long long)dispatch, (unsigned long long)ready,
        (unsigned long long)issue, (unsigned long long)complete,
        is_load ? 1 : 0, mispredicted ? 1 : 0, rob_occupancy);
    os_.write(buf, n);
    os_ << jsonEscape(disasm) << "\"}\n";
    ++events_;
}

void
TraceSink::mem(uint64_t cycle, uint64_t addr, uint64_t pc,
               const char *level, uint64_t latency,
               const char *requester, bool is_store, uint32_t mshr_busy,
               bool mshr_stalled)
{
    char buf[256];
    int n = std::snprintf(
        buf, sizeof(buf),
        "{\"ev\":\"mem\",\"cyc\":%llu,\"addr\":%llu,\"pc\":%llu,"
        "\"lvl\":\"%s\",\"lat\":%llu,\"req\":\"%s\",\"store\":%d,"
        "\"mshr\":%u,\"mshr_stall\":%d}\n",
        (unsigned long long)cycle, (unsigned long long)addr,
        (unsigned long long)pc, level, (unsigned long long)latency,
        requester, is_store ? 1 : 0, mshr_busy, mshr_stalled ? 1 : 0);
    os_.write(buf, n);
    ++events_;
}

void
TraceSink::runahead(uint64_t cycle, const char *phase,
                    const char *engine, const char *kind,
                    uint32_t trigger_pc, uint64_t lanes,
                    uint64_t prefetches)
{
    char buf[256];
    int n = std::snprintf(
        buf, sizeof(buf),
        "{\"ev\":\"runahead\",\"cyc\":%llu,\"phase\":\"%s\","
        "\"engine\":\"%s\",\"kind\":\"%s\",\"trigger_pc\":%u,"
        "\"lanes\":%llu,\"pf\":%llu}\n",
        (unsigned long long)cycle, phase, engine, kind, trigger_pc,
        (unsigned long long)lanes, (unsigned long long)prefetches);
    os_.write(buf, n);
    ++events_;
}

void
TraceSink::lane(uint64_t cycle, uint32_t pc, uint32_t active_lanes,
                uint32_t prefetches)
{
    char buf[128];
    int n = std::snprintf(
        buf, sizeof(buf),
        "{\"ev\":\"lane\",\"cyc\":%llu,\"pc\":%u,\"active\":%u,"
        "\"pf\":%u}\n",
        (unsigned long long)cycle, pc, active_lanes, prefetches);
    os_.write(buf, n);
    ++events_;
}

} // namespace vrsim

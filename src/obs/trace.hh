/**
 * @file
 * Cycle-level event tracing, the second leg of the observability
 * subsystem (docs/observability.md): a TraceSink owns an output
 * stream and a category mask and emits one newline-delimited JSON
 * object per event. Components hold a nullable TraceSink pointer and
 * guard every emission with `if (sink && sink->enabled(cat))`, so a
 * run with tracing off pays exactly one branch per potential event
 * and produces byte-identical statistics and digests.
 *
 * Event categories map to CLI selectors (`--trace EVENTS:file`):
 *   pipeline  per-retired-instruction timestamps + ROB occupancy
 *   mem       per-access hit level/latency + L1D MSHR occupancy
 *   runahead  runahead-episode enter/exit with trigger PC and kind
 *   lanes     vector-lane issue groups from the SIMT lane executor
 *
 * The field-by-field schema is documented in docs/observability.md;
 * tools/trace2chrome.py converts a trace to Chrome's tracing format.
 */

#ifndef VRSIM_OBS_TRACE_HH
#define VRSIM_OBS_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>

namespace vrsim
{

/** Event categories; values are bitmask bits. */
enum class TraceCat : uint32_t
{
    Pipeline = 1u << 0,
    Mem = 1u << 1,
    Runahead = 1u << 2,
    Lanes = 1u << 3,
};

/** Schema version stamped into every meta event; bump on any
 *  incompatible field change and update docs/observability.md. */
constexpr uint32_t TRACE_SCHEMA_VERSION = 1;

/** All categories enabled. */
constexpr uint32_t TRACE_ALL = 0xF;

class TraceSink
{
  public:
    /**
     * @param os   destination stream (owned by the caller; one JSON
     *             object per line)
     * @param mask bitwise-or of TraceCat bits (TRACE_ALL = everything)
     */
    explicit TraceSink(std::ostream &os, uint32_t mask = TRACE_ALL)
        : os_(os), mask_(mask)
    {}

    /**
     * Parse a category list: comma-separated names from {pipeline,
     * mem, runahead, lanes, all}. fatal() on unknown names.
     */
    static uint32_t parseCats(const std::string &spec);

    /**
     * Split a `--trace EVENTS:file` argument into (mask, path). A
     * bare path with no ':' selects all categories.
     */
    static void parseSpec(const std::string &spec, uint32_t &mask,
                          std::string &path);

    bool
    enabled(TraceCat c) const
    {
        return (mask_ & uint32_t(c)) != 0;
    }

    uint64_t eventsEmitted() const { return events_; }

    /** Run-boundary marker: workload/technique/point id + schema
     *  version; emitted unconditionally (any category). */
    void meta(const std::string &point, const std::string &workload,
              const std::string &technique, uint64_t roi,
              uint64_t warmup);

    /** One retired instruction (TraceCat::Pipeline). */
    void inst(uint64_t index, uint32_t pc, const std::string &disasm,
              uint64_t dispatch, uint64_t ready, uint64_t issue,
              uint64_t complete, uint64_t commit, bool is_load,
              bool mispredicted, uint32_t rob_occupancy);

    /** One timed memory access (TraceCat::Mem). */
    void mem(uint64_t cycle, uint64_t addr, uint64_t pc,
             const char *level, uint64_t latency, const char *requester,
             bool is_store, uint32_t mshr_busy, bool mshr_stalled);

    /** Runahead episode boundary (TraceCat::Runahead). @p phase is
     *  "enter" or "exit". */
    void runahead(uint64_t cycle, const char *phase, const char *engine,
                  const char *kind, uint32_t trigger_pc, uint64_t lanes,
                  uint64_t prefetches);

    /** One SIMT vector-lane issue group (TraceCat::Lanes). */
    void lane(uint64_t cycle, uint32_t pc, uint32_t active_lanes,
              uint32_t prefetches);

  private:
    std::ostream &os_;
    uint32_t mask_;
    uint64_t events_ = 0;
};

} // namespace vrsim

#endif // VRSIM_OBS_TRACE_HH

#include "obs/stats_registry.hh"

#include <cmath>

namespace vrsim
{

const char *
statKindName(StatKind k)
{
    switch (k) {
      case StatKind::Counter: return "counter";
      case StatKind::Gauge: return "gauge";
      case StatKind::Average: return "average";
      case StatKind::Histogram: return "histogram";
      case StatKind::Formula: return "formula";
      case StatKind::Sample: return "sample";
    }
    panic("unknown StatKind");
}

double
studentT95(uint64_t dof)
{
    // Two-sided 95% critical values. Exact through 30 dof, then the
    // textbook coarse rows; the n -> inf limit is the normal 1.96.
    static constexpr double kSmall[31] = {
        0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
        2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
        2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
        2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (dof == 0)
        return 0.0;
    if (dof <= 30)
        return kSmall[dof];
    if (dof <= 40)
        return 2.021;
    if (dof <= 60)
        return 2.000;
    if (dof <= 120)
        return 1.980;
    return 1.960;
}

double
momentsStddev(double sum, double sumsq, uint64_t n)
{
    if (n < 2)
        return 0.0;
    double mean = sum / double(n);
    double var = (sumsq - sum * mean) / double(n - 1);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

double
momentsCi95(double sum, double sumsq, uint64_t n)
{
    if (n < 2)
        return 0.0;
    return studentT95(n - 1) * momentsStddev(sum, sumsq, n) /
           std::sqrt(double(n));
}

namespace
{

/** Paths are dotted lower-case segments: [a-z0-9_]+(\.[a-z0-9_]+)*. */
bool
validPath(const std::string &path)
{
    if (path.empty() || path.front() == '.' || path.back() == '.')
        return false;
    bool prev_dot = false;
    for (char c : path) {
        if (c == '.') {
            if (prev_dot)
                return false;
            prev_dot = true;
            continue;
        }
        prev_dot = false;
        if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
              c == '_'))
            return false;
    }
    return true;
}

} // namespace

void
StatNode::sample(double v, uint64_t weight)
{
    panicIfNot(kind_ == StatKind::Average ||
                   kind_ == StatKind::Histogram ||
                   kind_ == StatKind::Sample,
               "sample() on non-sampling stat node " + path_);
    sum_ += v * double(weight);
    samples_ += weight;
    if (kind_ == StatKind::Histogram) {
        size_t idx = v < 0 ? 0 : size_t(v / bucket_width_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        buckets_[idx] += weight;
    }
    if (kind_ == StatKind::Sample)
        sumsq_ += v * v * double(weight);
}

double
StatNode::stddev() const
{
    panicIfNot(kind_ == StatKind::Sample,
               "stddev() on non-sample stat node " + path_);
    return momentsStddev(sum_, sumsq_, samples_);
}

double
StatNode::ci95() const
{
    panicIfNot(kind_ == StatKind::Sample,
               "ci95() on non-sample stat node " + path_);
    return momentsCi95(sum_, sumsq_, samples_);
}

void
StatNode::setMoments(double sum, double sumsq, uint64_t n)
{
    panicIfNot(kind_ == StatKind::Sample,
               "setMoments() on non-sample stat node " + path_);
    sum_ = sum;
    sumsq_ = sumsq;
    samples_ = n;
}

double
StatNode::value(const StatsRegistry &reg) const
{
    switch (kind_) {
      case StatKind::Counter:
        return double(count_);
      case StatKind::Gauge:
        return gauge_;
      case StatKind::Average:
      case StatKind::Histogram:
      case StatKind::Sample:
        return samples_ ? sum_ / double(samples_) : 0.0;
      case StatKind::Formula:
        return formula_(reg);
    }
    panic("unknown StatKind");
}

StatNode &
StatsRegistry::add(StatKind kind, const std::string &path,
                   const std::string &desc)
{
    if (!validPath(path))
        fatal("invalid stat path '" + path +
              "' (want dotted lower-case segments, e.g. "
              "core.commit.insts)");
    auto it = nodes_.find(path);
    if (it != nodes_.end())
        fatal("duplicate stat registration for '" + path +
              "': already registered as " +
              statKindName(it->second->kind()) + ", re-registered as " +
              statKindName(kind));
    auto node = std::unique_ptr<StatNode>(
        new StatNode(kind, path, desc));
    StatNode &ref = *node;
    nodes_.emplace(path, std::move(node));
    return ref;
}

StatNode &
StatsRegistry::addCounter(const std::string &path,
                          const std::string &desc)
{
    return add(StatKind::Counter, path, desc);
}

StatNode &
StatsRegistry::addGauge(const std::string &path, const std::string &desc)
{
    return add(StatKind::Gauge, path, desc);
}

StatNode &
StatsRegistry::addAverage(const std::string &path,
                          const std::string &desc)
{
    return add(StatKind::Average, path, desc);
}

StatNode &
StatsRegistry::addSample(const std::string &path,
                         const std::string &desc)
{
    return add(StatKind::Sample, path, desc);
}

StatNode &
StatsRegistry::addHistogram(const std::string &path, size_t buckets,
                            double bucket_width,
                            const std::string &desc)
{
    panicIfNot(buckets > 0 && bucket_width > 0,
               "histogram needs positive geometry: " + path);
    StatNode &n = add(StatKind::Histogram, path, desc);
    n.bucket_width_ = bucket_width;
    n.buckets_.assign(buckets + 1, 0);
    return n;
}

StatNode &
StatsRegistry::addFormula(const std::string &path,
                          StatNode::FormulaFn fn,
                          const std::string &desc)
{
    panicIfNot(bool(fn), "formula stat needs a function: " + path);
    StatNode &n = add(StatKind::Formula, path, desc);
    n.formula_ = std::move(fn);
    return n;
}

bool
StatsRegistry::has(const std::string &path) const
{
    return nodes_.count(path) != 0;
}

const StatNode &
StatsRegistry::at(const std::string &path) const
{
    auto it = nodes_.find(path);
    if (it == nodes_.end())
        fatal("unknown stat path: " + path);
    return *it->second;
}

StatNode &
StatsRegistry::at(const std::string &path)
{
    auto it = nodes_.find(path);
    if (it == nodes_.end())
        fatal("unknown stat path: " + path);
    return *it->second;
}

const StatNode *
StatsRegistry::find(const std::string &path) const
{
    auto it = nodes_.find(path);
    return it == nodes_.end() ? nullptr : it->second.get();
}

double
StatsRegistry::value(const std::string &path) const
{
    return at(path).value(*this);
}

std::vector<std::string>
StatsRegistry::paths() const
{
    std::vector<std::string> out;
    out.reserve(nodes_.size());
    for (const auto &kv : nodes_)
        out.push_back(kv.first);
    return out;
}

void
StatsRegistry::visit(const std::function<void(const StatNode &)> &fn)
    const
{
    for (const auto &kv : nodes_)
        fn(*kv.second);
}

namespace
{

/**
 * JSON number rendering that the strict reader accepts: integers as
 * integers, finite doubles via %.17g (binary64 round-trip), and
 * non-finite values as 0 (JSON has no NaN/Inf).
 */
void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << 0;
        return;
    }
    if (v == double(int64_t(v)) && std::fabs(v) < 1e15) {
        os << int64_t(v);
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

} // namespace

void
StatsRegistry::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const auto &kv : nodes_) {
        const StatNode &n = *kv.second;
        os << (first ? "\n" : ",\n") << "  \"" << n.path() << "\": ";
        first = false;
        if (n.kind() == StatKind::Histogram) {
            os << "{\"mean\": ";
            jsonNumber(os, n.value(*this));
            os << ", \"total\": " << n.samples();
            os << ", \"bucket_width\": ";
            jsonNumber(os, n.bucketWidth());
            os << ", \"buckets\": [";
            const auto &b = n.buckets();
            for (size_t i = 0; i < b.size(); i++)
                os << (i ? ", " : "") << b[i];
            os << "]}";
        } else if (n.kind() == StatKind::Sample) {
            os << "{\"mean\": ";
            jsonNumber(os, n.value(*this));
            os << ", \"n\": " << n.samples();
            os << ", \"stddev\": ";
            jsonNumber(os, n.stddev());
            os << ", \"ci95\": ";
            jsonNumber(os, n.ci95());
            os << "}";
        } else {
            jsonNumber(os, n.value(*this));
        }
    }
    os << "\n}\n";
}

void
StatsRegistry::dumpCsv(std::ostream &os) const
{
    os << "path,kind,value,description\n";
    for (const auto &kv : nodes_) {
        const StatNode &n = *kv.second;
        // Descriptions may contain the separator; keep rows parsable.
        std::string desc = n.desc();
        for (char &c : desc)
            if (c == ',' || c == '\n')
                c = ';';
        os << n.path() << "," << statKindName(n.kind()) << ",";
        jsonNumber(os, n.value(*this));
        os << "," << desc << "\n";
    }
}

} // namespace vrsim

/**
 * @file
 * A tag-only set-associative cache with LRU replacement and a bank of
 * miss-status holding registers (MSHRs). Data values live in the
 * functional MemoryImage; this class models timing and occupancy only.
 */

#ifndef VRSIM_MEM_CACHE_HH
#define VRSIM_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mem/interval_resource.hh"
#include "mem/request.hh"
#include "sim/config.hh"
#include "sim/logging.hh"

namespace vrsim
{

/**
 * Bank of MSHRs. Each in-flight line miss occupies one register from
 * issue until fill. Built on IntervalResource so reservations can be
 * made non-chronologically (see interval_resource.hh). Also
 * integrates occupancy over time so the driver can report average
 * outstanding misses per cycle (Fig. 9's MLP metric).
 */
class MshrBank
{
  public:
    explicit MshrBank(uint32_t entries)
        : entries_(entries), res_(entries, 3)
    {}

    /**
     * Allocate an MSHR for a miss issued at @p cycle whose fill takes
     * @p fill_latency cycles. If the bank is saturated around that
     * time the allocation is delayed.
     *
     * @param fill_out receives the fill-completion cycle
     * @return the cycle the request actually issued
     */
    Cycle
    allocate(Cycle cycle, Cycle fill_latency, Cycle &fill_out)
    {
        Cycle issue = res_.allocate(cycle, fill_latency);
        fill_out = issue + fill_latency;
        return issue;
    }

    /** Number of registers busy around @p cycle. */
    uint32_t busyAt(Cycle cycle) const { return res_.busyAt(cycle); }

    /** Release calendar history wholly before @p cycle. */
    void retireBefore(Cycle cycle) { res_.retireBefore(cycle); }

    uint32_t size() const { return entries_; }
    uint64_t allocations() const { return res_.allocations(); }
    uint64_t stalls() const { return res_.stalls(); }

    /** Calendar buckets examined while searching (perf telemetry). */
    uint64_t probes() const { return res_.probes(); }

    /** Sum over time of busy registers (cycles x registers). */
    uint64_t busyIntegral() const { return res_.busyIntegral(); }

    void reset() { res_.reset(); }

  private:
    uint32_t entries_;
    IntervalResource res_;
};

/**
 * Tag array with LRU replacement. Lines carry their fill time so a
 * demand access arriving before the fill completes observes the
 * remaining fill latency (hit-under-fill), which is what makes
 * prefetch timeliness measurable.
 */
class CacheArray
{
  public:
    CacheArray(std::string name, const CacheConfig &cfg);

    struct Line
    {
        uint64_t tag = 0;   //!< full line address (tag + index)
        bool valid = false;
        Cycle fill_time = 0;   //!< cycle at which data is present
        Cycle last_use = 0;    //!< LRU timestamp
        Requester origin = Requester::Demand;
        bool used_since_fill = false;
    };

    /** Probe for a line; returns nullptr on miss. Updates
     *  replacement state (LRU recency; FIFO/Random ignore it). */
    Line *lookup(uint64_t line_addr, Cycle cycle);

    /** Probe without updating replacement state. */
    const Line *peek(uint64_t line_addr) const;

    /**
     * Insert a line (victim evicted by LRU).
     * @return the evicted line if a valid one was displaced.
     */
    std::optional<Line> insert(uint64_t line_addr, Cycle cycle,
                               Cycle fill_time, Requester origin);

    /** Invalidate a line if present (back-invalidation). */
    void invalidate(uint64_t line_addr);

    uint32_t lineBytes() const { return cfg_.line_bytes; }
    uint64_t lineAddr(uint64_t addr) const
    { return addr / cfg_.line_bytes; }

    uint32_t numSets() const { return num_sets_; }
    const std::string &name() const { return name_; }

  private:
    // The ways of one set sit contiguously in a single flat array
    // (no per-set vector indirection), and the set index is a mask
    // when num_sets is a power of two — which every shipped geometry
    // is — instead of a modulo (a hardware divide per probe).
    uint64_t
    setIndex(uint64_t line_addr) const
    {
        return set_mask_ ? (line_addr & set_mask_)
                         : (line_addr % num_sets_);
    }

    Line *set(uint64_t line_addr)
    { return &lines_[setIndex(line_addr) * cfg_.assoc]; }
    const Line *set(uint64_t line_addr) const
    { return &lines_[setIndex(line_addr) * cfg_.assoc]; }

    /** Pick the victim way per the configured policy. */
    Line *victimIn(Line *set);

    std::string name_;
    CacheConfig cfg_;
    uint32_t num_sets_;
    uint64_t set_mask_ = 0;  //!< num_sets - 1 when a power of two
    std::vector<Line> lines_;  //!< num_sets * assoc, set-major
    uint64_t rand_state_ = 0x2545F4914F6CDD1Dull;  //!< Random policy
};

} // namespace vrsim

#endif // VRSIM_MEM_CACHE_HH

/**
 * @file
 * The three-level cache hierarchy with MSHRs, DRAM bandwidth model,
 * the always-on L1D stride prefetcher, the optional IMP, and the
 * accounting needed for the paper's accuracy/coverage/timeliness
 * figures.
 */

#ifndef VRSIM_MEM_HIERARCHY_HH
#define VRSIM_MEM_HIERARCHY_HH

#include <array>
#include <cstdint>
#include <memory>

#include "isa/memory_image.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/interval_resource.hh"
#include "mem/request.hh"
#include "mem/stride_rpt.hh"
#include "sim/config.hh"

namespace vrsim
{

class ImpPrefetcher;
class StatsRegistry;
class TraceSink;

/** Aggregated memory-system statistics for one simulation run. */
struct MemStats
{
    // Demand accesses by level serviced.
    uint64_t demand_accesses = 0;
    uint64_t demand_l1_hits = 0;
    uint64_t demand_l2_hits = 0;
    uint64_t demand_l3_hits = 0;
    uint64_t demand_mem = 0;
    uint64_t demand_latency_sum = 0;   //!< total demand latency cycles

    // DRAM line fills attributed to their requester.
    std::array<uint64_t, 4> dram_by_requester{};

    // Runahead-prefetch timeliness: where the main thread found
    // runahead-prefetched lines on first use (Fig. 11).
    uint64_t pf_lines_filled = 0;   //!< runahead prefetch fills issued
    uint64_t pf_used_l1 = 0;
    uint64_t pf_used_l2 = 0;
    uint64_t pf_used_l3 = 0;
    uint64_t pf_used_inflight = 0;  //!< arrived while still in transfer

    uint64_t dramTotal() const
    {
        uint64_t t = 0;
        for (uint64_t v : dram_by_requester)
            t += v;
        return t;
    }

    /** DRAM accesses from the main thread (demand + stride pf + IMP). */
    uint64_t
    dramMain() const
    {
        return dram_by_requester[size_t(Requester::Demand)] +
               dram_by_requester[size_t(Requester::StridePf)] +
               dram_by_requester[size_t(Requester::Imp)];
    }

    /** DRAM accesses from runahead prefetching. */
    uint64_t
    dramRunahead() const
    {
        return dram_by_requester[size_t(Requester::Runahead)];
    }

    /**
     * Register the reported memory statistics under "mem." paths in
     * @p reg (docs/observability.md lists every path). @p mlp is the
     * run's mean-L1D-MSHRs-per-cycle value (computed by the driver,
     * which knows the cycle count).
     */
    void registerIn(StatsRegistry &reg, double mlp) const;

    /**
     * Counter-wise difference (for warmup exclusion). With @p check
     * set (cfg.invariant_checks), panics if any counter regressed —
     * an unsigned subtraction that would wrap to a bogus statistic.
     */
    MemStats
    since(const MemStats &w, bool check = false) const
    {
        if (check) {
            panicIfNot(
                demand_accesses >= w.demand_accesses &&
                    demand_l1_hits >= w.demand_l1_hits &&
                    demand_l2_hits >= w.demand_l2_hits &&
                    demand_l3_hits >= w.demand_l3_hits &&
                    demand_mem >= w.demand_mem &&
                    demand_latency_sum >= w.demand_latency_sum &&
                    pf_lines_filled >= w.pf_lines_filled &&
                    pf_used_l1 >= w.pf_used_l1 &&
                    pf_used_l2 >= w.pf_used_l2 &&
                    pf_used_l3 >= w.pf_used_l3 &&
                    pf_used_inflight >= w.pf_used_inflight,
                "memory stats regressed across the warmup boundary "
                "(subtraction would underflow)");
            for (size_t i = 0; i < dram_by_requester.size(); i++)
                panicIfNot(dram_by_requester[i] >=
                               w.dram_by_requester[i],
                           "DRAM requester counter regressed across "
                           "the warmup boundary");
        }
        MemStats d = *this;
        d.demand_accesses -= w.demand_accesses;
        d.demand_l1_hits -= w.demand_l1_hits;
        d.demand_l2_hits -= w.demand_l2_hits;
        d.demand_l3_hits -= w.demand_l3_hits;
        d.demand_mem -= w.demand_mem;
        d.demand_latency_sum -= w.demand_latency_sum;
        for (size_t i = 0; i < d.dram_by_requester.size(); i++)
            d.dram_by_requester[i] -= w.dram_by_requester[i];
        d.pf_lines_filled -= w.pf_lines_filled;
        d.pf_used_l1 -= w.pf_used_l1;
        d.pf_used_l2 -= w.pf_used_l2;
        d.pf_used_l3 -= w.pf_used_l3;
        d.pf_used_inflight -= w.pf_used_inflight;
        return d;
    }
};

/**
 * Copyable snapshot of the hierarchy's warmable state: the three tag
 * arrays and the stride RPT. Deliberately excludes the calendar-backed
 * resources (ports, MSHRs, DRAM) — a checkpoint is only meaningful at
 * a quiesced window boundary, where no reservation is in flight (see
 * docs/sampling.md).
 */
struct MemWarmState
{
    CacheArray l1d;
    CacheArray l2;
    CacheArray l3;
    StrideRpt stride_rpt;
};

/**
 * Timing model of the memory system. Data values live in the
 * functional MemoryImage; the hierarchy answers "when is this byte
 * usable" and maintains all occupancy/traffic accounting.
 */
class MemoryHierarchy
{
  public:
    MemoryHierarchy(const SystemConfig &cfg, MemoryImage &image);
    ~MemoryHierarchy();

    /**
     * Perform one timed access.
     *
     * @param addr   byte address
     * @param pc     program counter of the memory instruction (trains
     *               the prefetchers; pass 0 for pc-less requests)
     * @param cycle  issue cycle
     * @param is_store true for stores (write-allocate)
     * @param who    requester class for accounting
     */
    AccessResult access(uint64_t addr, uint64_t pc, Cycle cycle,
                        bool is_store, Requester who);

    /**
     * Warmup-only access mode for functional fast-forward: install
     * @p addr's line through L1D/L2/L3 (inclusive, tags + LRU recency
     * only, fill complete at @p cycle) and train the stride RPT on
     * demand loads, touching no ports, MSHRs, DRAM bandwidth, or
     * statistics — timing and accounting are exactly as if the access
     * never happened, but the next detailed window starts against
     * warm tag state. @p cycle must be monotone with the detailed
     * windows' clock so LRU timestamps stay ordered.
     */
    void warmAccess(uint64_t addr, uint64_t pc, Cycle cycle,
                    bool is_store);

    /** Snapshot the warmable state (see MemWarmState). */
    MemWarmState
    warmSnapshot() const
    {
        return MemWarmState{l1d_, l2_, l3_, stride_rpt_};
    }

    /** Restore a warmSnapshot() taken from this hierarchy. */
    void
    warmRestore(const MemWarmState &s)
    {
        l1d_ = s.l1d;
        l2_ = s.l2;
        l3_ = s.l3;
        stride_rpt_ = s.stride_rpt;
    }

    /** Probe-only: would @p addr hit in L1D right now? */
    bool inL1(uint64_t addr) const;

    /** Line size in bytes. */
    uint32_t lineBytes() const { return l1d_.lineBytes(); }

    /** Average L1D MSHR occupancy per cycle over [0, cycles). */
    double
    mlp(Cycle cycles) const
    {
        return cycles ? double(l1_mshrs_.busyIntegral()) / double(cycles)
                      : 0.0;
    }

    /** L1D MSHR bank (for occupancy queries by the runahead engines). */
    const MshrBank &l1Mshrs() const { return l1_mshrs_; }

    /**
     * Release calendar history wholly before @p cycle across every
     * capacity-over-time resource (L1 ports, MSHR banks, DRAM
     * channel). Called periodically by the core with its dispatch
     * horizon: every future access — demand, store drain, stride/IMP
     * prefetch, or a runahead engine's — issues at or after the
     * dispatch point that triggers it, so nothing ever allocates
     * below the horizon (the calendars panic if that contract is
     * broken). See docs/performance.md.
     */
    void
    retireHistory(Cycle cycle)
    {
        l1_ports_.retireBefore(cycle);
        l1_mshrs_.retireBefore(cycle);
        l2_mshrs_.retireBefore(cycle);
        l3_mshrs_.retireBefore(cycle);
        dram_.retireBefore(cycle);
    }

    /** Total calendar buckets examined across the hierarchy's
     *  resources (bounded by the cycle-skip regression test). */
    uint64_t
    calendarProbes() const
    {
        return l1_ports_.probes() + l1_mshrs_.probes() +
               l2_mshrs_.probes() + l3_mshrs_.probes() +
               dram_.probes();
    }

    const MemStats &stats() const { return stats_; }
    const StrideRpt &strideRpt() const { return stride_rpt_; }
    DramModel &dram() { return dram_; }

    /** Enable the IMP (constructed only for Technique::Imp). */
    void enableImp();

    /**
     * Attach a cycle-trace sink (obs/trace.hh): every timed access
     * emits one TraceCat::Mem event. nullptr (the default) detaches;
     * the only cost when detached is a null check per access.
     */
    void setTraceSink(TraceSink *sink) { tsink_ = sink; }

  private:
    friend class ImpPrefetcher;

    /**
     * The internal access path; @p train controls prefetcher training
     * so prefetch requests do not train the prefetchers on themselves.
     */
    AccessResult accessInternal(uint64_t addr, Cycle cycle, bool is_store,
                                Requester who);

    void runStridePrefetcher(uint64_t pc, uint64_t addr, Cycle cycle);

    SystemConfig cfg_;
    MemoryImage &image_;

    CacheArray l1d_;
    CacheArray l2_;
    CacheArray l3_;
    IntervalResource l1_ports_;  //!< L1D access ports: the main
                                 //!< thread and the runahead
                                 //!< subthread contend here (§4.2)
    MshrBank l1_mshrs_;
    MshrBank l2_mshrs_;
    MshrBank l3_mshrs_;
    DramModel dram_;

    StrideRpt stride_rpt_;
    std::unique_ptr<ImpPrefetcher> imp_;

    TraceSink *tsink_ = nullptr;

    MemStats stats_;
};

} // namespace vrsim

#endif // VRSIM_MEM_HIERARCHY_HH

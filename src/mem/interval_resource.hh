/**
 * @file
 * A capacity-over-time resource calendar. The instruction-window-
 * centric core (and the decoupled runahead engines) schedule memory
 * accesses non-chronologically: an access with an early issue time
 * may be processed after one scheduled far in the future. Resources
 * with "next free time" state (classic MSHR banks, DRAM channels)
 * mis-model this badly — one far-future reservation would block all
 * earlier traffic. IntervalResource instead tracks per-time-bucket
 * occupancy, so reservations can be made at any point on the
 * timeline.
 */

#ifndef VRSIM_MEM_INTERVAL_RESOURCE_HH
#define VRSIM_MEM_INTERVAL_RESOURCE_HH

#include <cstdint>
#include <unordered_map>

#include "mem/request.hh"
#include "sim/logging.hh"

namespace vrsim
{

/**
 * Calendar of a resource with `capacity` simultaneous users, tracked
 * at `1 << bucket_shift`-cycle granularity.
 */
class IntervalResource
{
  public:
    IntervalResource(uint32_t capacity, uint32_t bucket_shift)
        : capacity_(capacity), shift_(bucket_shift)
    {
        panicIfNot(capacity > 0, "resource needs capacity");
    }

    /**
     * Reserve the resource for `duration` cycles at the earliest
     * start >= `earliest` with a free slot throughout.
     *
     * @return the start cycle of the reservation
     */
    Cycle
    allocate(Cycle earliest, Cycle duration)
    {
        if (duration == 0)
            duration = 1;
        Cycle first_b = earliest >> shift_;
        Cycle last_b = (earliest + duration - 1) >> shift_;
        while (true) {
            bool ok = true;
            for (Cycle b = first_b; b <= last_b; b++) {
                auto it = used_.find(b);
                if (it != used_.end() && it->second >= capacity_) {
                    ok = false;
                    first_b = b + 1;
                    last_b = ((first_b << shift_) + duration - 1)
                             >> shift_;
                    break;
                }
            }
            if (ok)
                break;
        }
        for (Cycle b = first_b; b <= last_b; b++)
            ++used_[b];
        Cycle start = std::max(earliest, first_b << shift_);
        // Guardrail: the busy integral is monotone by construction;
        // a decrease means the duration arithmetic wrapped (e.g. a
        // fill time earlier than its issue time upstream) and every
        // MLP statistic derived from it would be garbage.
        const uint64_t before = busy_integral_;
        busy_integral_ += duration;
        panicIfNot(busy_integral_ >= before,
                   "MSHR/port busy integral went backwards "
                   "(duration arithmetic wrapped)");
        ++allocations_;
        if (start > earliest)
            ++stalls_;
        return start;
    }

    /** Occupancy of the bucket containing @p cycle. */
    uint32_t
    busyAt(Cycle cycle) const
    {
        auto it = used_.find(cycle >> shift_);
        return it == used_.end() ? 0 : it->second;
    }

    uint32_t capacity() const { return capacity_; }
    uint64_t allocations() const { return allocations_; }
    uint64_t stalls() const { return stalls_; }

    /** Total reserved cycles (occupancy integral) for MLP stats. */
    uint64_t busyIntegral() const { return busy_integral_; }

    void
    reset()
    {
        used_.clear();
        busy_integral_ = 0;
        allocations_ = 0;
        stalls_ = 0;
    }

  private:
    uint32_t capacity_;
    uint32_t shift_;
    std::unordered_map<Cycle, uint32_t> used_;
    uint64_t busy_integral_ = 0;
    uint64_t allocations_ = 0;
    uint64_t stalls_ = 0;
};

} // namespace vrsim

#endif // VRSIM_MEM_INTERVAL_RESOURCE_HH

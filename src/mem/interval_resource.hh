/**
 * @file
 * A capacity-over-time resource calendar. The instruction-window-
 * centric core (and the decoupled runahead engines) schedule memory
 * accesses non-chronologically: an access with an early issue time
 * may be processed after one scheduled far in the future. Resources
 * with "next free time" state (classic MSHR banks, DRAM channels)
 * mis-model this badly — one far-future reservation would block all
 * earlier traffic. IntervalResource instead tracks per-time-bucket
 * occupancy, so reservations can be made at any point on the
 * timeline.
 *
 * Storage and search live in sim/event_calendar.hh: instead of
 * polling bucket by bucket through a saturated backlog, allocation
 * skips straight to the next possibly-free bucket (docs/
 * performance.md). The placement returned is identical to the
 * linear scan's by construction — every skipped start bucket is
 * known full, hence infeasible — and VRSIM_CYCLE_SKIP=0 restores
 * the linear reference scan for differential testing.
 */

#ifndef VRSIM_MEM_INTERVAL_RESOURCE_HH
#define VRSIM_MEM_INTERVAL_RESOURCE_HH

#include <cstdint>

#include "mem/request.hh"
#include "sim/event_calendar.hh"
#include "sim/logging.hh"

namespace vrsim
{

/**
 * Calendar of a resource with `capacity` simultaneous users, tracked
 * at `1 << bucket_shift`-cycle granularity.
 */
class IntervalResource
{
  public:
    IntervalResource(uint32_t capacity, uint32_t bucket_shift)
        : capacity_(capacity), shift_(bucket_shift), cal_(capacity)
    {
        panicIfNot(capacity > 0, "resource needs capacity");
    }

    /**
     * Reserve the resource for `duration` cycles at the earliest
     * start >= `earliest` with a free slot throughout.
     *
     * First-fit over start buckets, exactly as the historical linear
     * scan: a candidate window is abandoned as soon as it contains a
     * full bucket, and the start jumps past that bucket's known-full
     * run (all intermediate starts are infeasible because each is
     * itself a full bucket or spans one).
     *
     * @return the start cycle of the reservation
     */
    Cycle
    allocate(Cycle earliest, Cycle duration)
    {
        if (duration == 0)
            duration = 1;
        Cycle first_b = earliest >> shift_;
        Cycle last_b = (earliest + duration - 1) >> shift_;
        while (true) {
            Cycle f = cal_.nextFree(first_b);
            if (f != first_b) {
                first_b = f;
                last_b = ((first_b << shift_) + duration - 1) >> shift_;
            }
            bool ok = true;
            for (Cycle b = first_b + 1; b <= last_b; b++) {
                Cycle g = cal_.nextFree(b);
                if (g != b) {
                    first_b = g;
                    last_b = ((first_b << shift_) + duration - 1)
                             >> shift_;
                    ok = false;
                    break;
                }
            }
            if (ok)
                break;
        }
        cal_.fill(first_b, last_b);
        Cycle start = std::max(earliest, first_b << shift_);
        // Guardrail: the busy integral is monotone by construction;
        // a decrease means the duration arithmetic wrapped (e.g. a
        // fill time earlier than its issue time upstream) and every
        // MLP statistic derived from it would be garbage.
        const uint64_t before = busy_integral_;
        busy_integral_ += duration;
        panicIfNot(busy_integral_ >= before,
                   "MSHR/port busy integral went backwards "
                   "(duration arithmetic wrapped)");
        ++allocations_;
        if (start > earliest)
            ++stalls_;
        return start;
    }

    /** Occupancy of the bucket containing @p cycle. */
    uint32_t
    busyAt(Cycle cycle) const
    {
        return cal_.at(cycle >> shift_);
    }

    /**
     * Release calendar storage for history wholly before @p cycle.
     * The caller promises no future allocation starts below this
     * horizon (the core's dispatch cycle is such a floor: every
     * access — demand, store drain, prefetch, or runahead — issues at
     * or after the dispatch point that triggered it). Violations
     * panic instead of mis-timing.
     */
    void retireBefore(Cycle cycle) { cal_.retireBefore(cycle >> shift_); }

    uint32_t capacity() const { return capacity_; }
    uint64_t allocations() const { return allocations_; }
    uint64_t stalls() const { return stalls_; }

    /** Buckets examined while searching (regression-test bound). */
    uint64_t probes() const { return cal_.probes(); }

    /** Buckets skipped without examination (cycle-skip telemetry). */
    uint64_t skips() const { return cal_.skips(); }

    /** Total reserved cycles (occupancy integral) for MLP stats. */
    uint64_t busyIntegral() const { return busy_integral_; }

    void
    reset()
    {
        cal_.clear();
        busy_integral_ = 0;
        allocations_ = 0;
        stalls_ = 0;
    }

  private:
    uint32_t capacity_;
    uint32_t shift_;
    EventCalendar cal_;
    uint64_t busy_integral_ = 0;
    uint64_t allocations_ = 0;
    uint64_t stalls_ = 0;
};

} // namespace vrsim

#endif // VRSIM_MEM_INTERVAL_RESOURCE_HH

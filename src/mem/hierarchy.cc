#include "mem/hierarchy.hh"

#include "mem/imp.hh"
#include "obs/stats_registry.hh"
#include "obs/trace.hh"

namespace vrsim
{

namespace
{

/**
 * Guardrail on every simulation path: the hierarchy is built before
 * the core and the engines, so a degenerate sweep point fails here
 * with the full diagnostic (including warnings). Validation must run
 * before the member initializers — a zero-capacity MSHR bank would
 * otherwise panic() inside IntervalResource instead of fatal()ing
 * with the offending parameter name.
 */
const SystemConfig &
validated(const SystemConfig &cfg)
{
    cfg.validate(true);
    return cfg;
}

} // namespace

MemoryHierarchy::MemoryHierarchy(const SystemConfig &cfg,
                                 MemoryImage &image)
    : cfg_(validated(cfg)), image_(image),
      l1d_("l1d", cfg.l1d),
      l2_("l2", cfg.l2),
      l3_("l3", cfg.l3),
      l1_ports_(cfg.l1d.ports, 0),
      l1_mshrs_(cfg.l1d.mshrs),
      l2_mshrs_(cfg.l2.mshrs),
      l3_mshrs_(cfg.l3.mshrs),
      dram_(cfg.dram, cfg.l1d.line_bytes),
      stride_rpt_(cfg.stride_pf.streams, cfg.stride_pf.train_threshold)
{
    stride_rpt_.reset();
}

MemoryHierarchy::~MemoryHierarchy() = default;

void
MemoryHierarchy::enableImp()
{
    imp_ = std::make_unique<ImpPrefetcher>(cfg_.imp, *this, image_);
}

bool
MemoryHierarchy::inL1(uint64_t addr) const
{
    return l1d_.peek(l1d_.lineAddr(addr)) != nullptr;
}

void
MemStats::registerIn(StatsRegistry &reg, double mlp) const
{
    reg.addCounter("mem.demand_accesses",
                   "timed demand loads+stores") += demand_accesses;
    reg.addCounter("mem.l1_hits", "demand accesses serviced by L1D") +=
        demand_l1_hits;
    reg.addCounter("mem.l2_hits", "demand accesses serviced by L2") +=
        demand_l2_hits;
    reg.addCounter("mem.l3_hits", "demand accesses serviced by L3") +=
        demand_l3_hits;
    reg.addCounter("mem.mem_accesses",
                   "demand accesses serviced by DRAM") += demand_mem;
    // Captured by value so the formula is self-contained (the raw
    // latency sum is not itself a reported column).
    const uint64_t acc = demand_accesses;
    const uint64_t lat = demand_latency_sum;
    reg.addFormula(
        "mem.mean_load_latency",
        [acc, lat](const StatsRegistry &) {
            return acc ? double(lat) / double(acc) : 0.0;
        },
        "mean demand access latency in cycles");
    reg.addCounter("mem.dram_total", "DRAM line fills, all requesters")
        += dramTotal();
    reg.addCounter("mem.dram_main",
                   "DRAM fills from the main thread "
                   "(demand + stride pf + IMP)") += dramMain();
    reg.addCounter("mem.dram_runahead",
                   "DRAM fills from runahead prefetching") +=
        dramRunahead();
    reg.addGauge("mem.mlp", "mean L1D MSHRs busy per cycle") = mlp;
    reg.addCounter("mem.pf_lines_filled",
                   "runahead prefetch fills issued") += pf_lines_filled;
    reg.addCounter("mem.pf_used_l1",
                   "runahead-prefetched lines first used from L1") +=
        pf_used_l1;
    reg.addCounter("mem.pf_used_l2",
                   "runahead-prefetched lines first used from L2") +=
        pf_used_l2;
    reg.addCounter("mem.pf_used_l3",
                   "runahead-prefetched lines first used from L3") +=
        pf_used_l3;
    reg.addCounter("mem.pf_used_inflight",
                   "runahead-prefetched lines used while in transfer")
        += pf_used_inflight;
}

AccessResult
MemoryHierarchy::access(uint64_t addr, uint64_t pc, Cycle cycle,
                        bool is_store, Requester who)
{
    AccessResult res = accessInternal(addr, cycle, is_store, who);

    if (tsink_ && tsink_->enabled(TraceCat::Mem))
        tsink_->mem(cycle, addr, pc, hitLevelName(res.level),
                    res.latency, requesterName(who), is_store,
                    l1_mshrs_.busyAt(cycle), res.mshr_stalled);

    if (who == Requester::Demand) {
        ++stats_.demand_accesses;
        stats_.demand_latency_sum += res.latency;
        switch (res.level) {
          case HitLevel::L1: ++stats_.demand_l1_hits; break;
          case HitLevel::L2: ++stats_.demand_l2_hits; break;
          case HitLevel::L3: ++stats_.demand_l3_hits; break;
          case HitLevel::Memory: ++stats_.demand_mem; break;
        }
        // Train the always-on stride prefetcher on demand loads.
        if (!is_store && cfg_.stride_pf.enabled && pc != 0)
            runStridePrefetcher(pc, addr, cycle);
        // IMP observes the architectural value of demand loads.
        if (!is_store && imp_ && pc != 0) {
            uint64_t value = image_.read64(addr);
            imp_->observe(pc, addr, value, 8, cycle);
        }
    }
    return res;
}

void
MemoryHierarchy::warmAccess(uint64_t addr, uint64_t pc, Cycle cycle,
                            bool is_store)
{
    const uint64_t line = l1d_.lineAddr(addr);
    // Mirror the fill path of accessInternal() — L3 then L2 on the
    // return path, inclusive back-invalidation on L3 eviction — with
    // the fill complete immediately. lookup() refreshes LRU recency
    // on hits, which is the whole point of warming.
    if (!l1d_.lookup(line, cycle)) {
        if (!l2_.lookup(line, cycle)) {
            if (!l3_.lookup(line, cycle)) {
                auto ev3 = l3_.insert(line, cycle, cycle,
                                      Requester::Demand);
                if (ev3) {
                    l2_.invalidate(ev3->tag);
                    l1d_.invalidate(ev3->tag);
                }
            }
            l2_.insert(line, cycle, cycle, Requester::Demand);
        }
        l1d_.insert(line, cycle, cycle, Requester::Demand);
    }
    // Keep the stride RPT's PC history continuous across fast-forward
    // so the detailed window's prefetcher starts trained; the
    // prefetch fills themselves are not issued (no timing to hide).
    if (!is_store && cfg_.stride_pf.enabled && pc != 0)
        stride_rpt_.train(pc, addr);
    // Same for IMP: its stream/candidate/pattern tables train on the
    // architectural values of demand loads, and its prefetched lines
    // warm tags through this same path (observe's warm mode). A cold
    // IMP measures too fast — fewer resident harmful prefetches.
    // pc == 0 cannot recurse: warm-mode prefetch fills come back in
    // here with pc 0 and stop at the guards above.
    if (!is_store && imp_ && pc != 0)
        imp_->observe(pc, addr, image_.read64(addr), 8, cycle, true);
}

AccessResult
MemoryHierarchy::accessInternal(uint64_t addr, Cycle cycle, bool is_store,
                                Requester who)
{
    AccessResult res;
    const uint64_t line = l1d_.lineAddr(addr);
    const bool demand = (who == Requester::Demand);

    // L1 access ports: demand and runahead accesses contend for the
    // same `ports`-per-cycle acceptance bandwidth.
    cycle = l1_ports_.allocate(cycle, 1);
    Cycle t = cycle + cfg_.l1d.latency;

    if (CacheArray::Line *l1 = l1d_.lookup(line, cycle)) {
        Cycle ready = std::max(t, l1->fill_time);
        res.latency = ready - cycle;
        res.level = HitLevel::L1;
        res.mshr_merged = l1->fill_time > t;
        // Timeliness accounting: first demand use of a runahead-
        // prefetched line.
        if (demand && l1->origin == Requester::Runahead &&
            !l1->used_since_fill) {
            if (l1->fill_time > t)
                ++stats_.pf_used_inflight;
            else
                ++stats_.pf_used_l1;
        }
        if (demand)
            l1->used_since_fill = true;
        return res;
    }

    // L1 miss: needs an L1 MSHR for the duration of the fill. We
    // compute the fill path first, then allocate the MSHR over it.
    Cycle l2_probe = t + cfg_.l2.latency;
    Cycle fill_time = 0;

    if (CacheArray::Line *l2 = l2_.lookup(line, cycle)) {
        Cycle ready = std::max(l2_probe, l2->fill_time);
        res.level = HitLevel::L2;
        if (demand && l2->origin == Requester::Runahead &&
            !l2->used_since_fill) {
            if (l2->fill_time > l2_probe)
                ++stats_.pf_used_inflight;
            else
                ++stats_.pf_used_l2;
        }
        if (demand)
            l2->used_since_fill = true;
        fill_time = ready;
    } else {
        Cycle l3_probe = l2_probe + cfg_.l3.latency;
        if (CacheArray::Line *l3 = l3_.lookup(line, cycle)) {
            Cycle ready = std::max(l3_probe, l3->fill_time);
            res.level = HitLevel::L3;
            if (demand && l3->origin == Requester::Runahead &&
                !l3->used_since_fill) {
                if (l3->fill_time > l3_probe)
                    ++stats_.pf_used_inflight;
                else
                    ++stats_.pf_used_l3;
            }
            if (demand)
                l3->used_since_fill = true;
            fill_time = ready;
        } else {
            // Full miss to DRAM. L3 MSHR covers the DRAM access.
            Cycle fill;
            Cycle issue = l3_mshrs_.allocate(l3_probe,
                                             cfg_.dram.latency, fill);
            Cycle done = dram_.access(issue);
            fill_time = std::max(fill, done);
            res.level = HitLevel::Memory;
            ++stats_.dram_by_requester[size_t(who)];
            // Fill L3 (inclusive); back-invalidate nothing yet.
            auto ev3 = l3_.insert(line, cycle, fill_time, who);
            if (ev3) {
                // Inclusive hierarchy: L3 eviction back-invalidates.
                l2_.invalidate(ev3->tag);
                l1d_.invalidate(ev3->tag);
            }
        }
        // Fill L2 on the return path.
        Cycle l2_fill;
        l2_mshrs_.allocate(l2_probe, fill_time - l2_probe, l2_fill);
        l2_.insert(line, cycle, fill_time, who);
    }

    // Allocate the L1 MSHR from the miss detection until the fill. A
    // full bank delays the fill (the request waits for a register).
    Cycle mshr_fill;
    Cycle issue = l1_mshrs_.allocate(t, fill_time - t, mshr_fill);
    if (issue > t) {
        res.mshr_stalled = true;
        fill_time = mshr_fill;
    }

    l1d_.insert(line, cycle, fill_time, who);
    if (who == Requester::Runahead)
        ++stats_.pf_lines_filled;

    res.latency = fill_time - cycle;
    (void)is_store;
    return res;
}

void
MemoryHierarchy::runStridePrefetcher(uint64_t pc, uint64_t addr,
                                     Cycle cycle)
{
    stride_rpt_.train(pc, addr);
    const RptEntry *e = stride_rpt_.predict(pc);
    if (!e)
        return;
    uint64_t cur_line = l1d_.lineAddr(addr);
    for (uint32_t k = 1; k <= cfg_.stride_pf.degree; k++) {
        uint64_t target =
            uint64_t(int64_t(addr) + e->stride * int64_t(k));
        uint64_t target_line = l1d_.lineAddr(target);
        if (target_line == cur_line)
            continue;
        if (l1d_.peek(target_line))
            continue;
        accessInternal(target, cycle, false, Requester::StridePf);
    }
}

} // namespace vrsim

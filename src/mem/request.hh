/**
 * @file
 * Memory-request vocabulary shared by the hierarchy and its clients.
 */

#ifndef VRSIM_MEM_REQUEST_HH
#define VRSIM_MEM_REQUEST_HH

#include <cstdint>

namespace vrsim
{

/** Simulated time in core cycles. */
using Cycle = uint64_t;

/** Who generated a memory request (for accuracy/coverage accounting). */
enum class Requester : uint8_t
{
    Demand,     //!< the main thread's own loads/stores
    Runahead,   //!< PRE/VR/DVR generated prefetches
    StridePf,   //!< the always-on L1D stride prefetcher
    Imp,        //!< the indirect memory prefetcher
};

/** Which level serviced an access. */
enum class HitLevel : uint8_t
{
    L1 = 1,
    L2 = 2,
    L3 = 3,
    Memory = 4,
};

/** Stable lower-case requester name (trace events, stats paths). */
constexpr const char *
requesterName(Requester r)
{
    switch (r) {
      case Requester::Demand: return "demand";
      case Requester::Runahead: return "runahead";
      case Requester::StridePf: return "stride_pf";
      case Requester::Imp: return "imp";
    }
    return "unknown";
}

/** Stable lower-case level name (trace events). */
constexpr const char *
hitLevelName(HitLevel l)
{
    switch (l) {
      case HitLevel::L1: return "l1";
      case HitLevel::L2: return "l2";
      case HitLevel::L3: return "l3";
      case HitLevel::Memory: return "dram";
    }
    return "unknown";
}

/** Timing outcome of one access. */
struct AccessResult
{
    Cycle latency = 0;       //!< cycles from issue to data available
    HitLevel level = HitLevel::L1;
    bool mshr_merged = false; //!< merged into an in-flight miss
    bool mshr_stalled = false; //!< delayed waiting for a free MSHR
};

} // namespace vrsim

#endif // VRSIM_MEM_REQUEST_HH

#include "mem/cache.hh"

namespace vrsim
{

CacheArray::CacheArray(std::string name, const CacheConfig &cfg)
    : name_(std::move(name)), cfg_(cfg)
{
    panicIfNot(cfg.line_bytes > 0 && cfg.assoc > 0,
               "bad cache geometry");
    uint32_t lines = cfg.size_bytes / cfg.line_bytes;
    panicIfNot(lines >= cfg.assoc, "cache smaller than one set");
    num_sets_ = lines / cfg.assoc;
    panicIfNot(num_sets_ > 0, "cache must have at least one set");
    if ((num_sets_ & (num_sets_ - 1)) == 0)
        set_mask_ = num_sets_ - 1;
    lines_.assign(size_t(num_sets_) * cfg.assoc, Line{});
}

CacheArray::Line *
CacheArray::lookup(uint64_t line_addr, Cycle cycle)
{
    Line *s = set(line_addr);
    for (uint32_t w = 0; w < cfg_.assoc; w++) {
        Line &l = s[w];
        if (l.valid && l.tag == line_addr) {
            if (cfg_.repl == ReplPolicy::Lru)
                l.last_use = cycle;
            return &l;
        }
    }
    return nullptr;
}

CacheArray::Line *
CacheArray::victimIn(Line *s)
{
    for (uint32_t w = 0; w < cfg_.assoc; w++)
        if (!s[w].valid)
            return &s[w];
    switch (cfg_.repl) {
      case ReplPolicy::Lru:
      case ReplPolicy::Fifo: {
        // FIFO: last_use is only written at insertion, so the oldest
        // insertion is evicted; LRU refreshes it on every hit.
        Line *v = &s[0];
        for (uint32_t w = 0; w < cfg_.assoc; w++)
            if (s[w].last_use < v->last_use)
                v = &s[w];
        return v;
      }
      case ReplPolicy::Random: {
        rand_state_ ^= rand_state_ << 13;
        rand_state_ ^= rand_state_ >> 7;
        rand_state_ ^= rand_state_ << 17;
        return &s[rand_state_ % cfg_.assoc];
      }
    }
    panic("unknown replacement policy");
}

const CacheArray::Line *
CacheArray::peek(uint64_t line_addr) const
{
    const Line *s = set(line_addr);
    for (uint32_t w = 0; w < cfg_.assoc; w++) {
        if (s[w].valid && s[w].tag == line_addr)
            return &s[w];
    }
    return nullptr;
}

std::optional<CacheArray::Line>
CacheArray::insert(uint64_t line_addr, Cycle cycle, Cycle fill_time,
                   Requester origin)
{
    Line *s = set(line_addr);
    for (uint32_t w = 0; w < cfg_.assoc; w++) {
        Line &l = s[w];
        if (l.valid && l.tag == line_addr) {
            // Refill of a present line: just refresh metadata.
            l.fill_time = std::min(l.fill_time, fill_time);
            if (cfg_.repl == ReplPolicy::Lru)
                l.last_use = cycle;
            return std::nullopt;
        }
    }
    Line *victim = victimIn(s);
    std::optional<Line> evicted;
    if (victim->valid)
        evicted = *victim;
    victim->valid = true;
    victim->tag = line_addr;
    victim->fill_time = fill_time;
    victim->last_use = cycle;
    victim->origin = origin;
    victim->used_since_fill = false;
    return evicted;
}

void
CacheArray::invalidate(uint64_t line_addr)
{
    Line *s = set(line_addr);
    for (uint32_t w = 0; w < cfg_.assoc; w++) {
        if (s[w].valid && s[w].tag == line_addr) {
            s[w].valid = false;
            return;
        }
    }
}

} // namespace vrsim

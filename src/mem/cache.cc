#include "mem/cache.hh"

namespace vrsim
{

CacheArray::CacheArray(std::string name, const CacheConfig &cfg)
    : name_(std::move(name)), cfg_(cfg)
{
    panicIfNot(cfg.line_bytes > 0 && cfg.assoc > 0,
               "bad cache geometry");
    uint32_t lines = cfg.size_bytes / cfg.line_bytes;
    panicIfNot(lines >= cfg.assoc, "cache smaller than one set");
    num_sets_ = lines / cfg.assoc;
    panicIfNot(num_sets_ > 0, "cache must have at least one set");
    sets_.assign(num_sets_, std::vector<Line>(cfg.assoc));
}

CacheArray::Line *
CacheArray::lookup(uint64_t line_addr, Cycle cycle)
{
    for (Line &l : set(line_addr)) {
        if (l.valid && l.tag == line_addr) {
            if (cfg_.repl == ReplPolicy::Lru)
                l.last_use = cycle;
            return &l;
        }
    }
    return nullptr;
}

CacheArray::Line *
CacheArray::victimIn(std::vector<Line> &s)
{
    for (Line &l : s)
        if (!l.valid)
            return &l;
    switch (cfg_.repl) {
      case ReplPolicy::Lru:
      case ReplPolicy::Fifo: {
        // FIFO: last_use is only written at insertion, so the oldest
        // insertion is evicted; LRU refreshes it on every hit.
        Line *v = &s[0];
        for (Line &l : s)
            if (l.last_use < v->last_use)
                v = &l;
        return v;
      }
      case ReplPolicy::Random: {
        rand_state_ ^= rand_state_ << 13;
        rand_state_ ^= rand_state_ >> 7;
        rand_state_ ^= rand_state_ << 17;
        return &s[rand_state_ % s.size()];
      }
    }
    panic("unknown replacement policy");
}

const CacheArray::Line *
CacheArray::peek(uint64_t line_addr) const
{
    for (const Line &l : set(line_addr)) {
        if (l.valid && l.tag == line_addr)
            return &l;
    }
    return nullptr;
}

std::optional<CacheArray::Line>
CacheArray::insert(uint64_t line_addr, Cycle cycle, Cycle fill_time,
                   Requester origin)
{
    auto &s = set(line_addr);
    for (Line &l : s) {
        if (l.valid && l.tag == line_addr) {
            // Refill of a present line: just refresh metadata.
            l.fill_time = std::min(l.fill_time, fill_time);
            if (cfg_.repl == ReplPolicy::Lru)
                l.last_use = cycle;
            return std::nullopt;
        }
    }
    Line *victim = victimIn(s);
    std::optional<Line> evicted;
    if (victim->valid)
        evicted = *victim;
    victim->valid = true;
    victim->tag = line_addr;
    victim->fill_time = fill_time;
    victim->last_use = cycle;
    victim->origin = origin;
    victim->used_since_fill = false;
    return evicted;
}

void
CacheArray::invalidate(uint64_t line_addr)
{
    for (Line &l : set(line_addr)) {
        if (l.valid && l.tag == line_addr) {
            l.valid = false;
            return;
        }
    }
}

} // namespace vrsim

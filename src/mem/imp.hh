/**
 * @file
 * Indirect Memory Prefetcher (Yu et al., MICRO 2015), the paper's IMP
 * baseline: detects `A[f(B[i])]` patterns where a striding load's value
 * linearly determines a subsequent load's address, then prefetches the
 * indirect targets of future stride iterations.
 */

#ifndef VRSIM_MEM_IMP_HH
#define VRSIM_MEM_IMP_HH

#include <cstdint>
#include <vector>

#include "mem/request.hh"
#include "sim/config.hh"

namespace vrsim
{

class MemoryHierarchy;
class MemoryImage;

/**
 * IMP implementation. For each confident stride stream it keeps the
 * last values loaded; when another load PC's address matches
 * `base + value * coeff` for a small set of coefficients across two
 * consecutive observations, an indirect pattern entry is created.
 * Thereafter, every stride advance prefetches the indirect target of
 * the iteration `distance` ahead (reading future index values from
 * the functional image, as real IMP reads them from prefetched lines).
 */
class ImpPrefetcher
{
  public:
    ImpPrefetcher(const ImpConfig &cfg, MemoryHierarchy &hier,
                  MemoryImage &image);

    /**
     * Observe a committed demand load (pc, addr, loaded value). In
     * @p warm mode (functional fast-forward with warming,
     * docs/sampling.md) the tables train identically, but prefetches
     * fill tags through warmAccess() instead of occupying MSHRs/DRAM
     * bandwidth, and the issued counter is untouched — so sampled
     * runs enter detailed windows with the pattern tables and
     * prefetched lines a continuous detailed run would have, without
     * perturbing statistics.
     */
    void observe(uint64_t pc, uint64_t addr, uint64_t value, uint8_t size,
                 Cycle cycle, bool warm = false);

    /** Number of established indirect patterns (for tests). */
    size_t patterns() const { return patterns_.size(); }

    uint64_t prefetchesIssued() const { return issued_; }

  private:
    struct StrideStream
    {
        uint64_t pc = 0;
        uint64_t last_addr = 0;
        int64_t stride = 0;
        uint8_t confidence = 0;
        uint8_t size = 8;
        // Last two loaded values for candidate matching.
        uint64_t value[2] = {0, 0};
        bool have[2] = {false, false};
        uint64_t lru = 0;
        bool valid = false;
    };

    struct IndirectPattern
    {
        uint64_t stride_pc = 0;   //!< producing stride stream
        uint64_t indirect_pc = 0; //!< consuming indirect load
        uint64_t base = 0;
        int64_t coeff = 0;
        uint8_t hits = 0;         //!< verification count
        bool valid = false;
    };

    struct Candidate
    {
        uint64_t stride_pc = 0;
        uint64_t indirect_pc = 0;
        uint64_t base = 0;
        int64_t coeff = 0;
        bool valid = false;
    };

    StrideStream *findStream(uint64_t pc);
    StrideStream *allocStream(uint64_t pc);

    ImpConfig cfg_;
    MemoryHierarchy &hier_;
    MemoryImage &image_;
    std::vector<StrideStream> streams_;
    std::vector<IndirectPattern> patterns_;
    std::vector<Candidate> candidates_;
    uint64_t tick_ = 0;
    uint64_t issued_ = 0;
};

} // namespace vrsim

#endif // VRSIM_MEM_IMP_HH

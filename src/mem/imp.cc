#include "mem/imp.hh"

#include "isa/memory_image.hh"
#include "mem/hierarchy.hh"

namespace vrsim
{

namespace
{
/** Coefficients IMP tries when matching indirect patterns. */
constexpr int64_t COEFFS[] = {1, 2, 4, 8};
} // namespace

ImpPrefetcher::ImpPrefetcher(const ImpConfig &cfg, MemoryHierarchy &hier,
                             MemoryImage &image)
    : cfg_(cfg), hier_(hier), image_(image),
      streams_(cfg.table_entries), patterns_(cfg.table_entries),
      candidates_(cfg.table_entries)
{
}

ImpPrefetcher::StrideStream *
ImpPrefetcher::findStream(uint64_t pc)
{
    for (auto &s : streams_) {
        if (s.valid && s.pc == pc)
            return &s;
    }
    return nullptr;
}

ImpPrefetcher::StrideStream *
ImpPrefetcher::allocStream(uint64_t pc)
{
    StrideStream *victim = &streams_[0];
    for (auto &s : streams_) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (s.lru < victim->lru)
            victim = &s;
    }
    *victim = StrideStream{};
    victim->pc = pc;
    victim->valid = true;
    return victim;
}

void
ImpPrefetcher::observe(uint64_t pc, uint64_t addr, uint64_t value,
                       uint8_t size, Cycle cycle, bool warm)
{
    ++tick_;

    // 1. Stride-stream training.
    StrideStream *s = findStream(pc);
    if (!s)
        s = allocStream(pc);
    int64_t stride = int64_t(addr) - int64_t(s->last_addr);
    if (s->last_addr != 0 && stride == s->stride && stride != 0) {
        if (s->confidence < 3)
            ++s->confidence;
    } else if (s->last_addr != 0) {
        s->stride = stride;
        s->confidence = 0;
    }
    s->last_addr = addr;
    s->lru = tick_;
    s->size = size;
    // Shift the observed-value window.
    s->value[1] = s->value[0];
    s->have[1] = s->have[0];
    s->value[0] = value;
    s->have[0] = true;

    // 2. Candidate matching: does this load's address correlate with a
    //    previous stride load's value?
    for (auto &st : streams_) {
        if (!st.valid || st.pc == pc || st.confidence < cfg_.train_threshold)
            continue;
        if (!st.have[0] || !st.have[1])
            continue;
        for (int64_t coeff : COEFFS) {
            uint64_t base0 = addr - st.value[0] * uint64_t(coeff);
            // Look for an existing candidate verified by the older
            // value; promote to a pattern on the second match.
            bool matched = false;
            for (auto &c : candidates_) {
                if (c.valid && c.stride_pc == st.pc &&
                    c.indirect_pc == pc && c.coeff == coeff &&
                    c.base == base0) {
                    matched = true;
                    break;
                }
            }
            if (matched) {
                // Verified twice: install the pattern.
                bool exists = false;
                for (auto &p : patterns_) {
                    if (p.valid && p.stride_pc == st.pc &&
                        p.indirect_pc == pc) {
                        p.base = base0;
                        p.coeff = coeff;
                        exists = true;
                        break;
                    }
                }
                if (!exists) {
                    for (auto &p : patterns_) {
                        if (!p.valid) {
                            p = IndirectPattern{st.pc, pc, base0, coeff,
                                                0, true};
                            break;
                        }
                    }
                }
            } else {
                // Record a fresh candidate keyed off the current value.
                for (auto &c : candidates_) {
                    if (!c.valid) {
                        c = Candidate{st.pc, pc, base0, coeff, true};
                        break;
                    }
                }
            }
        }
    }

    // 3. Prefetch generation: when a stride stream with an installed
    //    pattern advances, fetch the indirect target `distance` ahead.
    if (s->confidence >= cfg_.train_threshold && s->stride != 0) {
        for (auto &p : patterns_) {
            if (!p.valid || p.stride_pc != pc)
                continue;
            uint64_t future_addr = uint64_t(
                int64_t(addr) + s->stride * int64_t(cfg_.prefetch_distance));
            // Cover the index stream itself so the future index line
            // is on chip by the time its iteration's prefetch fires.
            // Warm mode fills tags only (pc 0: no RPT training, no
            // stats) — the line lands instantly, matching where a
            // detailed run's prefetch would have left it.
            if (warm)
                hier_.warmAccess(future_addr, 0, cycle, false);
            else
                hier_.accessInternal(future_addr, cycle, false,
                                     Requester::Imp);
            // Real IMP reads index values out of cache lines it has
            // already fetched; it cannot conjure values from DRAM.
            // Only compute the indirect target if the index line is
            // resident in the L1 by now.
            if (!hier_.inL1(future_addr))
                continue;
            uint64_t future_value = s->size == 4
                ? image_.read32(future_addr) : image_.read64(future_addr);
            uint64_t target =
                p.base + future_value * uint64_t(p.coeff);
            if (warm) {
                hier_.warmAccess(target, 0, cycle, false);
            } else {
                hier_.accessInternal(target, cycle, false,
                                     Requester::Imp);
                ++issued_;
            }
        }
    }
}

} // namespace vrsim

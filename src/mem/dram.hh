/**
 * @file
 * Request-based DRAM contention model: fixed minimum latency plus a
 * single shared channel whose service rate is the configured bandwidth
 * (Table 1: 50 ns minimum latency, 51.2 GB/s).
 */

#ifndef VRSIM_MEM_DRAM_HH
#define VRSIM_MEM_DRAM_HH

#include <algorithm>
#include <cstdint>

#include "mem/interval_resource.hh"
#include "mem/request.hh"
#include "sim/config.hh"

namespace vrsim
{

/** Bandwidth-limited memory channel. */
class DramModel
{
  public:
    DramModel(const DramConfig &cfg, uint32_t line_bytes)
        : cfg_(cfg),
          service_cycles_(std::max<Cycle>(
              1, Cycle(double(line_bytes) * cfg.channels /
                       cfg.bytes_per_cycle))),
          channel_(std::max(1u, cfg.channels), 0)
    {}

    /**
     * Issue a line fill at @p cycle. Each of the `channels` channels
     * serves one line per (per-channel) service interval; the
     * aggregate bandwidth matches bytes_per_cycle. Reservations may
     * be made at any point on the timeline (interval_resource.hh).
     *
     * @return the cycle at which the line's data is available.
     */
    Cycle
    access(Cycle cycle)
    {
        Cycle start = channel_.allocate(cycle, service_cycles_);
        ++accesses_;
        queue_delay_ += (start - cycle);
        return start + cfg_.latency;
    }

    uint64_t accesses() const { return accesses_; }
    uint64_t queueDelay() const { return queue_delay_; }
    Cycle serviceCycles() const { return service_cycles_; }

    /** Release channel-calendar history wholly before @p cycle. */
    void retireBefore(Cycle cycle) { channel_.retireBefore(cycle); }

    /** Calendar buckets examined while searching (perf telemetry). */
    uint64_t probes() const { return channel_.probes(); }

    void
    reset()
    {
        channel_.reset();
        accesses_ = 0;
        queue_delay_ = 0;
    }

  private:
    DramConfig cfg_;
    Cycle service_cycles_;
    IntervalResource channel_;
    uint64_t accesses_ = 0;
    uint64_t queue_delay_ = 0;
};

} // namespace vrsim

#endif // VRSIM_MEM_DRAM_HH

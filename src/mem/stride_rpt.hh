/**
 * @file
 * Reference Prediction Table (Chen & Baer): per-PC stride detection
 * with saturating confidence. Shared by the L1D stride prefetcher and
 * the runahead engines' stride detector (the paper's 32-entry, 460-byte
 * structure with an innermost bit per entry).
 */

#ifndef VRSIM_MEM_STRIDE_RPT_HH
#define VRSIM_MEM_STRIDE_RPT_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace vrsim
{

/** One RPT entry (budget: 48b PC, 48b last addr, 16b stride, 2b ctr,
 *  1b innermost). */
struct RptEntry
{
    uint64_t pc = 0;
    bool valid = false;
    uint64_t last_addr = 0;
    int64_t stride = 0;
    uint8_t confidence = 0;   //!< 2-bit saturating counter
    bool innermost = false;   //!< set by Discovery Mode (DVR)
    uint64_t lru = 0;
};

/** The Reference Prediction Table. */
class StrideRpt
{
  public:
    StrideRpt(uint32_t entries, uint8_t confidence_threshold)
        : entries_(entries), threshold_(confidence_threshold)
    {
        panicIfNot(entries > 0, "RPT needs at least one entry");
    }

    /**
     * Train on a load's (pc, address) pair.
     * @return pointer to the entry after training.
     */
    RptEntry *
    train(uint64_t pc, uint64_t addr)
    {
        ++tick_;
        RptEntry *e = find(pc);
        if (!e) {
            e = victim();
            *e = RptEntry{};
            e->pc = pc;
            e->valid = true;
            e->last_addr = addr;
            e->lru = tick_;
            return e;
        }
        int64_t stride = int64_t(addr) - int64_t(e->last_addr);
        if (stride == e->stride && stride != 0) {
            if (e->confidence < 3)
                ++e->confidence;
        } else {
            e->stride = stride;
            e->confidence = e->confidence > 0 ? e->confidence - 1 : 0;
        }
        e->last_addr = addr;
        e->lru = tick_;
        return e;
    }

    /** Confident, nonzero-stride entry for pc, or nullptr. */
    const RptEntry *
    predict(uint64_t pc) const
    {
        for (const RptEntry &e : table_) {
            if (e.valid && e.pc == pc && e.stride != 0 &&
                e.confidence >= threshold_) {
                return &e;
            }
        }
        return nullptr;
    }

    /** Whether pc has a confident striding entry. */
    bool isStriding(uint64_t pc) const { return predict(pc) != nullptr; }

    /** Mutable entry lookup (for the innermost bit). */
    RptEntry *
    find(uint64_t pc)
    {
        for (RptEntry &e : table_) {
            if (e.valid && e.pc == pc)
                return &e;
        }
        return nullptr;
    }

    uint32_t capacity() const { return entries_; }

    void
    reset()
    {
        table_.assign(entries_, RptEntry{});
        tick_ = 0;
    }

  private:
    RptEntry *
    victim()
    {
        if (table_.size() < entries_) {
            table_.emplace_back();
            return &table_.back();
        }
        RptEntry *v = &table_[0];
        for (RptEntry &e : table_) {
            if (!e.valid)
                return &e;
            if (e.lru < v->lru)
                v = &e;
        }
        return v;
    }

    uint32_t entries_;
    uint8_t threshold_;
    std::vector<RptEntry> table_;
    uint64_t tick_ = 0;
};

} // namespace vrsim

#endif // VRSIM_MEM_STRIDE_RPT_HH

#include "workloads/workload_cache.hh"

#include "obs/self_profile.hh"
#include "sim/logging.hh"

namespace vrsim
{

std::string
WorkloadCache::key(const std::string &spec, const GraphScale &gscale,
                   const HpcDbScale &hscale)
{
    return spec + "|n=" + std::to_string(gscale.nodes) +
           "|d=" + std::to_string(gscale.avg_degree) +
           "|gs=" + std::to_string(gscale.seed) +
           "|e=" + std::to_string(hscale.elements) +
           "|hs=" + std::to_string(hscale.seed);
}

std::shared_ptr<const Workload>
WorkloadCache::artifact(const std::string &spec,
                        const GraphScale &gscale,
                        const HpcDbScale &hscale)
{
    const std::string k = key(spec, gscale, hscale);

    std::promise<std::shared_ptr<const Workload>> promise;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        auto it = slots_.find(k);
        if (it != slots_.end()) {
            // Wait outside the lock: a slow build of this key must not
            // stall unrelated keys.
            Slot slot = it->second;
            lock.unlock();
            return slot.get();  // built, building, or failed
        }
        slots_.emplace(k, promise.get_future().share());
    }

    // Build outside the lock so other keys proceed concurrently;
    // waiters for this key block on the shared future instead.
    try {
        SelfProfiler::PhaseTimer pt =
            SelfProfiler::process().phase("workload-build");
        auto built = std::make_shared<const Workload>(
            makeWorkload(spec, gscale, hscale));
        builds_.fetch_add(1);
        promise.set_value(built);
        return built;
    } catch (...) {
        // Propagate the build failure to every waiter, then forget
        // the slot: a later retry (e.g. after the file appears) must
        // not be pinned to the stale error.
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mutex_);
        slots_.erase(k);
        throw;
    }
}

Workload
WorkloadCache::instantiate(const std::string &spec,
                           const GraphScale &gscale,
                           const HpcDbScale &hscale)
{
    return *artifact(spec, gscale, hscale);
}

size_t
WorkloadCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return slots_.size();
}

void
WorkloadCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    slots_.clear();
}

WorkloadCache &
WorkloadCache::process()
{
    static WorkloadCache cache;
    return cache;
}

} // namespace vrsim

#include "workloads/graph.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vrsim
{

std::string
graphInputName(GraphInput g)
{
    switch (g) {
      case GraphInput::Kron: return "KR";
      case GraphInput::Ljn: return "LJN";
      case GraphInput::Ork: return "ORK";
      case GraphInput::Tw: return "TW";
      case GraphInput::Ur: return "UR";
    }
    panic("unknown graph input");
}

namespace
{

Graph
fromEdgeList(uint64_t nodes,
             std::vector<std::pair<uint64_t, uint64_t>> &el)
{
    Graph g;
    g.num_nodes = nodes;
    g.num_edges = el.size();
    g.offsets.assign(nodes + 1, 0);
    for (auto &e : el)
        ++g.offsets[e.first + 1];
    for (uint64_t v = 0; v < nodes; v++)
        g.offsets[v + 1] += g.offsets[v];
    g.edges.resize(el.size());
    std::vector<uint64_t> cursor(g.offsets.begin(),
                                 g.offsets.end() - 1);
    for (auto &e : el)
        g.edges[cursor[e.first]++] = e.second;
    return g;
}

} // namespace

Graph
makeRmat(uint64_t nodes, uint64_t edges, double a, double b, double c,
         uint64_t seed)
{
    panicIfNot(nodes >= 2 && (nodes & (nodes - 1)) == 0,
               "RMAT node count must be a power of two");
    unsigned levels = 0;
    while ((1ull << levels) < nodes)
        ++levels;

    Rng rng(seed);
    std::vector<std::pair<uint64_t, uint64_t>> el;
    el.reserve(edges);
    for (uint64_t i = 0; i < edges; i++) {
        uint64_t src = 0, dst = 0;
        for (unsigned l = 0; l < levels; l++) {
            double r = rng.uniform();
            src <<= 1;
            dst <<= 1;
            if (r < a) {
                // top-left: nothing
            } else if (r < a + b) {
                dst |= 1;
            } else if (r < a + b + c) {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        el.emplace_back(src, dst);
    }
    return fromEdgeList(nodes, el);
}

Graph
makeUniform(uint64_t nodes, uint64_t edges, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<uint64_t, uint64_t>> el;
    el.reserve(edges);
    for (uint64_t i = 0; i < edges; i++)
        el.emplace_back(rng.below(nodes), rng.below(nodes));
    return fromEdgeList(nodes, el);
}

Graph
makeGraph(GraphInput input, const GraphScale &scale)
{
    const uint64_t n = scale.nodes;
    const uint64_t m = scale.nodes * scale.avg_degree;
    switch (input) {
      case GraphInput::Kron:
        // Graph500 parameters: heavily skewed power law.
        return makeRmat(n, m, 0.57, 0.19, 0.19, scale.seed);
      case GraphInput::Ljn:
        // Milder skew, sparser (LiveJournal: 4.8M nodes, 69M edges).
        return makeRmat(n, m / 2 ? m / 2 : 1, 0.45, 0.22, 0.22,
                        scale.seed + 1);
      case GraphInput::Ork:
        // Dense community graph (Orkut: 3.1M nodes, 1.9B edges).
        return makeRmat(n / 4 ? n / 4 : 2, m, 0.45, 0.22, 0.22,
                        scale.seed + 2);
      case GraphInput::Tw:
        // Twitter: extreme skew, dense.
        return makeRmat(n / 2 ? n / 2 : 2, m, 0.62, 0.18, 0.18,
                        scale.seed + 3);
      case GraphInput::Ur:
        return makeUniform(n, m, scale.seed + 4);
    }
    panic("unknown graph input");
}

} // namespace vrsim

/**
 * @file
 * The five GAP kernels (Beamer et al.) lowered to the vrsim µop ISA:
 * bfs, pr, cc, sssp, bc. Each preserves the memory-access structure
 * the paper's techniques key on: striding worklist/offset loads,
 * striding edge loads in data-dependent inner loops, indirect loads of
 * per-vertex state, and data-dependent branches.
 */

#include "workloads/workload.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vrsim
{

namespace
{

/** Addresses of a CSR graph laid into a memory image. */
struct GraphImage
{
    uint64_t offsets = 0;
    uint64_t edges = 0;
    uint64_t n = 0;
    uint64_t m = 0;
};

GraphImage
loadGraph(MemoryImage &img, Layout &lay, const Graph &g)
{
    GraphImage gi;
    gi.n = g.num_nodes;
    gi.m = g.num_edges;
    gi.offsets = lay.put64(img, g.offsets);
    gi.edges = lay.put64(img, g.edges);
    return gi;
}

std::string
gapName(const char *kernel, GraphInput input)
{
    return std::string(kernel) + "/" + graphInputName(input);
}

/**
 * Pick @p count root vertices with non-trivial out-degree (power-law
 * graphs are full of isolated vertices; a zero-degree root would end
 * the traversal immediately).
 */
std::vector<uint64_t>
pickRoots(const Graph &g, uint64_t seed, uint64_t count)
{
    Rng rng(seed);
    std::vector<uint64_t> roots;
    uint64_t tries = 0;
    while (roots.size() < count && tries < 100 * count) {
        uint64_t v = rng.below(g.num_nodes);
        ++tries;
        if (g.degree(v) >= 1)
            roots.push_back(v);
    }
    // Fallback: take the highest-degree vertices.
    for (uint64_t v = 0; roots.size() < count && v < g.num_nodes; v++)
        if (g.degree(v) >= 1)
            roots.push_back(v);
    if (roots.empty())
        roots.push_back(0);
    return roots;
}

// Register conventions shared by the GAP kernels.
constexpr uint8_t R_WL = 1;       //!< worklist base
constexpr uint8_t R_HEAD = 2;
constexpr uint8_t R_TAIL = 3;
constexpr uint8_t R_OFF = 4;      //!< offsets base
constexpr uint8_t R_EDG = 5;      //!< edges base
constexpr uint8_t R_AUX = 6;      //!< visited / comp / dist base
constexpr uint8_t R_V = 7;        //!< current vertex
constexpr uint8_t R_J = 8;        //!< edge cursor
constexpr uint8_t R_END = 9;      //!< row end
constexpr uint8_t R_E = 10;       //!< edge target
constexpr uint8_t R_T1 = 11;
constexpr uint8_t R_T2 = 12;
constexpr uint8_t R_CND = 13;
constexpr uint8_t R_N = 14;       //!< node count / bound
constexpr uint8_t R_AUX2 = 15;    //!< second per-vertex array
constexpr uint8_t R_AUX3 = 16;    //!< third per-vertex array
constexpr uint8_t R_SUM = 17;
constexpr uint8_t R_ONE = 18;

} // namespace

Workload
makeBfsFromGraph(const Graph &g, const std::string &name, uint64_t seed)
{
    Workload w;
    w.name = name;
    Layout lay;
    GraphImage gi = loadGraph(w.image, lay, g);

    // Worklist sized for every vertex; visited flags as u64 words.
    uint64_t wl = lay.alloc((gi.n + 64) * 8);
    uint64_t visited = lay.alloc(gi.n * 8);

    // Seed a handful of well-connected roots so the frontier is
    // non-trivial (multi-source BFS; same access pattern).
    auto roots = pickRoots(g, seed ^ 0xbf5, 8);
    uint64_t seeds = roots.size();
    for (uint64_t s = 0; s < seeds; s++) {
        w.image.write64(wl + s * 8, roots[s]);
        w.image.write64(visited + roots[s] * 8, 1);
    }

    ProgramBuilder b(w.name);
    auto exit_l = b.makeLabel();
    auto skip_l = b.makeLabel();
    auto outer_top = b.here();
    b.cmpltu(R_CND, R_HEAD, R_TAIL);
    b.brz(R_CND, exit_l);
    b.ld(R_V, R_WL, R_HEAD, 8);          // v = wl[head]  (outer stride)
    b.addi(R_HEAD, R_HEAD, 1);
    b.ld(R_J, R_OFF, R_V, 8);            // start = offsets[v]
    b.ld(R_END, R_OFF, R_V, 8, 8);       // end = offsets[v+1]
    b.cmpltu(R_CND, R_J, R_END);
    b.brz(R_CND, outer_top);
    auto inner_top = b.here();
    b.ld(R_E, R_EDG, R_J, 8);            // e = edges[j]  (inner stride)
    b.ld(R_T1, R_AUX, R_E, 8);           // visited[e]    (indirect)
    b.br(R_T1, skip_l);                  // data-dependent branch
    b.st(R_ONE, R_AUX, R_E, 8);          // visited[e] = 1
    b.st(R_E, R_WL, R_TAIL, 8);          // push e
    b.addi(R_TAIL, R_TAIL, 1);
    b.bind(skip_l);
    b.addi(R_J, R_J, 1);
    b.cmpltu(R_CND, R_J, R_END);         // LCR compare (j, end)
    b.br(R_CND, inner_top);              // backward loop branch
    b.jmp(outer_top);
    b.bind(exit_l);
    b.halt();
    w.prog = b.build();

    w.init.regs[R_WL] = wl;
    w.init.regs[R_HEAD] = 0;
    w.init.regs[R_TAIL] = seeds;
    w.init.regs[R_OFF] = gi.offsets;
    w.init.regs[R_EDG] = gi.edges;
    w.init.regs[R_AUX] = visited;
    w.init.regs[R_ONE] = 1;
    return w;
}

Workload
makePrFromGraph(const Graph &g, const std::string &name, uint64_t seed)
{
    (void)seed;
    Workload w;
    w.name = name;
    Layout lay;
    GraphImage gi = loadGraph(w.image, lay, g);

    // Pull-style PageRank iteration: rank_new[v] = sum of contrib of
    // incoming neighbors (we reuse the out-CSR as in-CSR; the access
    // pattern is identical).
    std::vector<double> contrib(gi.n);
    for (uint64_t v = 0; v < gi.n; v++)
        contrib[v] = 1.0 / double(gi.n) /
                     double(std::max<uint64_t>(1, g.degree(v)));
    uint64_t contrib_base = lay.putF64(w.image, contrib);
    uint64_t rank_new = lay.alloc(gi.n * 8);

    ProgramBuilder b(w.name);
    auto exit_l = b.makeLabel();
    auto row_done = b.makeLabel();
    auto outer_top = b.here();
    b.cmpltu(R_CND, R_V, R_N);
    b.brz(R_CND, exit_l);
    b.ld(R_J, R_OFF, R_V, 8);
    b.ld(R_END, R_OFF, R_V, 8, 8);
    b.movi(R_SUM, 0);                    // 0.0 bits
    b.cmpltu(R_CND, R_J, R_END);
    b.brz(R_CND, row_done);
    auto inner_top = b.here();
    b.ld(R_E, R_EDG, R_J, 8);            // u = edges[j]   (stride)
    b.ld(R_T1, R_AUX, R_E, 8);           // contrib[u]     (indirect)
    b.fadd(R_SUM, R_SUM, R_T1);
    b.addi(R_J, R_J, 1);
    b.cmpltu(R_CND, R_J, R_END);
    b.br(R_CND, inner_top);
    b.bind(row_done);
    b.st(R_SUM, R_AUX2, R_V, 8);         // rank_new[v] = sum
    b.addi(R_V, R_V, 1);
    b.jmp(outer_top);
    b.bind(exit_l);
    b.halt();
    w.prog = b.build();

    w.init.regs[R_OFF] = gi.offsets;
    w.init.regs[R_EDG] = gi.edges;
    w.init.regs[R_AUX] = contrib_base;
    w.init.regs[R_AUX2] = rank_new;
    w.init.regs[R_V] = 0;
    w.init.regs[R_N] = gi.n;
    return w;
}

Workload
makeCcFromGraph(const Graph &g, const std::string &name, uint64_t seed)
{
    (void)seed;
    Workload w;
    w.name = name;
    Layout lay;
    GraphImage gi = loadGraph(w.image, lay, g);

    // One hooking pass of Shiloach-Vishkin: for every edge (v,u),
    // comp[v] = min(comp[v], comp[u]).
    std::vector<uint64_t> comp(gi.n);
    for (uint64_t v = 0; v < gi.n; v++)
        comp[v] = v;
    uint64_t comp_base = lay.put64(w.image, comp);

    ProgramBuilder b(w.name);
    auto exit_l = b.makeLabel();
    auto no_hook = b.makeLabel();
    auto outer_top = b.here();
    b.cmpltu(R_CND, R_V, R_N);
    b.brz(R_CND, exit_l);
    b.ld(R_J, R_OFF, R_V, 8);
    b.ld(R_END, R_OFF, R_V, 8, 8);
    b.ld(R_T2, R_AUX, R_V, 8);           // comp[v]
    b.cmpltu(R_CND, R_J, R_END);
    b.brz(R_CND, no_hook);
    auto inner_top = b.here();
    b.ld(R_E, R_EDG, R_J, 8);            // u = edges[j]   (stride)
    b.ld(R_T1, R_AUX, R_E, 8);           // comp[u]        (indirect)
    b.cmpltu(R_CND, R_T1, R_T2);
    auto skip_hook = b.makeLabel();
    b.brz(R_CND, skip_hook);             // data-dependent branch
    // Hook: comp[v] = comp[u].
    b.mov(R_T2, R_T1);
    b.st(R_T1, R_AUX, R_V, 8);
    b.bind(skip_hook);
    b.addi(R_J, R_J, 1);
    b.cmpltu(R_CND, R_J, R_END);
    b.br(R_CND, inner_top);
    b.bind(no_hook);
    b.addi(R_V, R_V, 1);
    b.jmp(outer_top);
    b.bind(exit_l);
    b.halt();
    w.prog = b.build();

    w.init.regs[R_OFF] = gi.offsets;
    w.init.regs[R_EDG] = gi.edges;
    w.init.regs[R_AUX] = comp_base;
    w.init.regs[R_V] = 0;
    w.init.regs[R_N] = gi.n;
    return w;
}

Workload
makeSsspFromGraph(const Graph &g, const std::string &name, uint64_t seed)
{
    Workload w;
    w.name = name;
    Layout lay;
    GraphImage gi = loadGraph(w.image, lay, g);

    // Bellman-Ford-style relaxations driven by a worklist.
    Rng rng(seed ^ 0x55e);
    std::vector<uint64_t> weights(gi.m);
    for (uint64_t e = 0; e < gi.m; e++)
        weights[e] = 1 + rng.below(255);
    uint64_t wgt = lay.put64(w.image, weights);

    std::vector<uint64_t> dist(gi.n, UINT32_MAX);
    auto roots = pickRoots(g, seed ^ 0x55e1, 8);
    uint64_t dist_base;
    uint64_t wl = 0;
    {
        for (uint64_t r : roots)
            dist[r] = 0;
        dist_base = lay.put64(w.image, dist);
        wl = lay.alloc((4 * gi.n + 64) * 8);
        for (size_t s = 0; s < roots.size(); s++)
            w.image.write64(wl + s * 8, roots[s]);
    }

    ProgramBuilder b(w.name);
    auto exit_l = b.makeLabel();
    auto no_relax = b.makeLabel();
    auto outer_top = b.here();
    b.cmpltu(R_CND, R_HEAD, R_TAIL);
    b.brz(R_CND, exit_l);
    b.andi(R_T1, R_HEAD, (4 * gi.n) - 1); // ring worklist
    b.ld(R_V, R_WL, R_T1, 8);            // v = wl[head]
    b.addi(R_HEAD, R_HEAD, 1);
    b.ld(R_J, R_OFF, R_V, 8);
    b.ld(R_END, R_OFF, R_V, 8, 8);
    b.ld(R_T2, R_AUX, R_V, 8);           // dist[v]
    b.cmpltu(R_CND, R_J, R_END);
    b.brz(R_CND, outer_top);
    auto inner_top = b.here();
    b.ld(R_E, R_EDG, R_J, 8);            // u = edges[j]   (stride)
    b.ld(R_T1, R_AUX2, R_J, 8);          // w = weights[j] (stride)
    b.add(R_T1, R_T2, R_T1);             // nd = dist[v] + w
    b.ld(R_SUM, R_AUX, R_E, 8);          // dist[u]        (indirect)
    b.cmpltu(R_CND, R_T1, R_SUM);
    b.brz(R_CND, no_relax);              // data-dependent branch
    b.st(R_T1, R_AUX, R_E, 8);           // dist[u] = nd
    b.andi(R_AUX3, R_TAIL, (4 * gi.n) - 1);
    b.st(R_E, R_WL, R_AUX3, 8);          // push u
    b.addi(R_TAIL, R_TAIL, 1);
    b.bind(no_relax);
    b.addi(R_J, R_J, 1);
    b.cmpltu(R_CND, R_J, R_END);
    b.br(R_CND, inner_top);
    b.jmp(outer_top);
    b.bind(exit_l);
    b.halt();
    w.prog = b.build();

    w.init.regs[R_WL] = wl;
    w.init.regs[R_HEAD] = 0;
    w.init.regs[R_TAIL] = roots.size();
    w.init.regs[R_OFF] = gi.offsets;
    w.init.regs[R_EDG] = gi.edges;
    w.init.regs[R_AUX] = dist_base;
    w.init.regs[R_AUX2] = wgt;
    return w;
}

Workload
makeBcFromGraph(const Graph &g, const std::string &name, uint64_t seed)
{
    Workload w;
    w.name = name;
    Layout lay;
    GraphImage gi = loadGraph(w.image, lay, g);

    // Brandes forward phase: BFS with shortest-path counting. The two
    // divergent paths (discover vs. recount) touch different arrays,
    // giving the broad divergence the paper attributes to bc.
    std::vector<uint64_t> depth(gi.n, UINT32_MAX);
    std::vector<uint64_t> sigma(gi.n, 0);
    auto roots = pickRoots(g, seed ^ 0xbc1, 4);
    for (uint64_t r : roots) {
        depth[r] = 0;
        sigma[r] = 1;
    }
    uint64_t depth_base = lay.put64(w.image, depth);
    uint64_t sigma_base = lay.put64(w.image, sigma);
    uint64_t wl = lay.alloc((gi.n + 64) * 8);
    for (size_t s = 0; s < roots.size(); s++)
        w.image.write64(wl + s * 8, roots[s]);

    constexpr uint8_t R_DV = 19;    //!< depth[v]
    constexpr uint8_t R_SV = 20;    //!< sigma[v]

    ProgramBuilder b(w.name);
    auto exit_l = b.makeLabel();
    auto next_e = b.makeLabel();
    auto recount = b.makeLabel();
    auto outer_top = b.here();
    b.cmpltu(R_CND, R_HEAD, R_TAIL);
    b.brz(R_CND, exit_l);
    b.ld(R_V, R_WL, R_HEAD, 8);          // v = wl[head]
    b.addi(R_HEAD, R_HEAD, 1);
    b.ld(R_J, R_OFF, R_V, 8);
    b.ld(R_END, R_OFF, R_V, 8, 8);
    b.ld(R_DV, R_AUX, R_V, 8);           // depth[v]
    b.ld(R_SV, R_AUX2, R_V, 8);          // sigma[v]
    b.addi(R_DV, R_DV, 1);               // d+1
    b.cmpltu(R_CND, R_J, R_END);
    b.brz(R_CND, outer_top);
    auto inner_top = b.here();
    b.ld(R_E, R_EDG, R_J, 8);            // u = edges[j]   (stride)
    b.ld(R_T1, R_AUX, R_E, 8);           // depth[u]       (indirect)
    b.cmpeqi(R_CND, R_T1, int64_t(UINT32_MAX));
    b.brz(R_CND, recount);               // visited before?
    // Path A: first discovery.
    b.st(R_DV, R_AUX, R_E, 8);           // depth[u] = d+1
    b.st(R_SV, R_AUX2, R_E, 8);          // sigma[u] = sigma[v]
    b.st(R_E, R_WL, R_TAIL, 8);          // push u
    b.addi(R_TAIL, R_TAIL, 1);
    b.jmp(next_e);
    b.bind(recount);
    // Path B: same-level recount, touches sigma only.
    b.cmpeq(R_CND, R_T1, R_DV);
    b.brz(R_CND, next_e);
    b.ld(R_T2, R_AUX2, R_E, 8);          // sigma[u]       (indirect)
    b.add(R_T2, R_T2, R_SV);
    b.st(R_T2, R_AUX2, R_E, 8);
    b.bind(next_e);
    b.addi(R_J, R_J, 1);
    b.cmpltu(R_CND, R_J, R_END);
    b.br(R_CND, inner_top);
    b.jmp(outer_top);
    b.bind(exit_l);
    b.halt();
    w.prog = b.build();

    w.init.regs[R_WL] = wl;
    w.init.regs[R_HEAD] = 0;
    w.init.regs[R_TAIL] = roots.size();
    w.init.regs[R_OFF] = gi.offsets;
    w.init.regs[R_EDG] = gi.edges;
    w.init.regs[R_AUX] = depth_base;
    w.init.regs[R_AUX2] = sigma_base;
    return w;
}

Workload
makeBfs(GraphInput input, const GraphScale &scale)
{
    return makeBfsFromGraph(makeGraph(input, scale),
                         gapName("bfs", input), scale.seed);
}

Workload
makePr(GraphInput input, const GraphScale &scale)
{
    return makePrFromGraph(makeGraph(input, scale),
                         gapName("pr", input), scale.seed);
}

Workload
makeCc(GraphInput input, const GraphScale &scale)
{
    return makeCcFromGraph(makeGraph(input, scale),
                         gapName("cc", input), scale.seed);
}

Workload
makeSssp(GraphInput input, const GraphScale &scale)
{
    return makeSsspFromGraph(makeGraph(input, scale),
                         gapName("sssp", input), scale.seed);
}

Workload
makeBc(GraphInput input, const GraphScale &scale)
{
    return makeBcFromGraph(makeGraph(input, scale),
                         gapName("bc", input), scale.seed);
}

} // namespace vrsim

#include "workloads/graph_io.hh"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "sim/logging.hh"

namespace vrsim
{

namespace
{

Graph
fromPairs(std::vector<std::pair<uint64_t, uint64_t>> &el)
{
    if (el.empty())
        fatal("graph file contains no edges");
    uint64_t nodes = 0;
    for (auto &e : el)
        nodes = std::max({nodes, e.first + 1, e.second + 1});

    Graph g;
    g.num_nodes = nodes;
    g.num_edges = el.size();
    g.offsets.assign(nodes + 1, 0);
    for (auto &e : el)
        ++g.offsets[e.first + 1];
    for (uint64_t v = 0; v < nodes; v++)
        g.offsets[v + 1] += g.offsets[v];
    g.edges.resize(el.size());
    std::vector<uint64_t> cursor(g.offsets.begin(),
                                 g.offsets.end() - 1);
    for (auto &e : el)
        g.edges[cursor[e.first]++] = e.second;
    return g;
}

bool
isCommentOrBlank(const std::string &line)
{
    for (char c : line) {
        if (c == ' ' || c == '\t')
            continue;
        return c == '#' || c == '%';
    }
    return true;
}

} // namespace

Graph
readEdgeList(std::istream &in)
{
    std::vector<std::pair<uint64_t, uint64_t>> el;
    std::string line;
    uint64_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (isCommentOrBlank(line))
            continue;
        std::istringstream ls(line);
        uint64_t src, dst;
        if (!(ls >> src >> dst))
            fatal("malformed edge-list line " + std::to_string(lineno)
                  + ": '" + line + "'");
        el.emplace_back(src, dst);
    }
    return fromPairs(el);
}

Graph
readMatrixMarket(std::istream &in)
{
    std::string line;
    // Skip the banner and comments.
    do {
        if (!std::getline(in, line))
            fatal("MatrixMarket file has no size line");
    } while (!line.empty() && line[0] == '%');

    std::istringstream hdr(line);
    uint64_t rows, cols, nnz;
    if (!(hdr >> rows >> cols >> nnz))
        fatal("malformed MatrixMarket size line: '" + line + "'");

    std::vector<std::pair<uint64_t, uint64_t>> el;
    el.reserve(nnz);
    uint64_t seen = 0;
    while (seen < nnz && std::getline(in, line)) {
        if (isCommentOrBlank(line))
            continue;
        std::istringstream ls(line);
        uint64_t r, c;
        if (!(ls >> r >> c))
            fatal("malformed MatrixMarket entry: '" + line + "'");
        if (r == 0 || c == 0)
            fatal("MatrixMarket indices are 1-based; got a zero");
        el.emplace_back(r - 1, c - 1);
        ++seen;
    }
    if (seen != nnz)
        fatal("MatrixMarket file truncated: expected "
              + std::to_string(nnz) + " entries, got "
              + std::to_string(seen));
    return fromPairs(el);
}

Graph
loadGraph(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open graph file: " + path);
    if (path.size() >= 4 &&
        path.compare(path.size() - 4, 4, ".mtx") == 0) {
        return readMatrixMarket(in);
    }
    return readEdgeList(in);
}

void
writeEdgeList(std::ostream &out, const Graph &g)
{
    for (uint64_t v = 0; v < g.num_nodes; v++)
        for (uint64_t e = g.offsets[v]; e < g.offsets[v + 1]; e++)
            out << v << " " << g.edges[e] << "\n";
}

} // namespace vrsim

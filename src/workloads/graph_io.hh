/**
 * @file
 * Graph file I/O: load real graphs for the GAP kernels instead of the
 * synthetic generators. Supports plain edge lists ("src dst" per
 * line, '#'/'%' comments) and MatrixMarket coordinate files.
 */

#ifndef VRSIM_WORKLOADS_GRAPH_IO_HH
#define VRSIM_WORKLOADS_GRAPH_IO_HH

#include <iosfwd>
#include <string>

#include "workloads/graph.hh"

namespace vrsim
{

/**
 * Load an edge-list graph from a stream: one "src dst" pair per line,
 * whitespace separated, lines starting with '#' or '%' ignored.
 * Vertex ids are 0-based; the node count is max id + 1.
 *
 * @throws FatalError on malformed input or an empty graph.
 */
Graph readEdgeList(std::istream &in);

/**
 * Load a MatrixMarket coordinate file (the header and the size line
 * are consumed; 1-based indices are converted to 0-based).
 */
Graph readMatrixMarket(std::istream &in);

/**
 * Load a graph from @p path, dispatching on the extension: ".mtx"
 * uses MatrixMarket, everything else the edge-list reader.
 *
 * @throws FatalError if the file cannot be opened.
 */
Graph loadGraph(const std::string &path);

/** Write a graph as an edge list (round-trip/testing aid). */
void writeEdgeList(std::ostream &out, const Graph &g);

} // namespace vrsim

#endif // VRSIM_WORKLOADS_GRAPH_IO_HH

/**
 * @file
 * Workload build artifact cache: splits workload construction into an
 * immutable build product (µop program + pristine memory image +
 * initial registers) built once per spec+scale, and a cheap per-run
 * instantiation that copies the image so stores cannot leak between
 * runs. A full figure sweep builds each benchmark input once instead
 * of once per grid point.
 *
 * Thread-safe: concurrent first requests for the same key build the
 * artifact exactly once (the losers block on the builder's future),
 * so a parallel SweepRunner pool shares one cache without duplicate
 * graph/CSR construction.
 */

#ifndef VRSIM_WORKLOADS_WORKLOAD_CACHE_HH
#define VRSIM_WORKLOADS_WORKLOAD_CACHE_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "workloads/workload.hh"

namespace vrsim
{

class WorkloadCache
{
  public:
    /**
     * The immutable build artifact for @p spec at the given scales.
     * Built on first request; later requests (from any thread) share
     * the same object. A failed build (unknown spec, unreadable graph
     * file) rethrows its FatalError to every requester.
     */
    std::shared_ptr<const Workload>
    artifact(const std::string &spec, const GraphScale &gscale = {},
             const HpcDbScale &hscale = {});

    /**
     * A private, runnable copy of the artifact: the returned Workload
     * owns its memory image, so stores during simulation never touch
     * the pristine artifact or any sibling run.
     */
    Workload instantiate(const std::string &spec,
                         const GraphScale &gscale = {},
                         const HpcDbScale &hscale = {});

    /** How many artifacts were actually constructed (cache misses). */
    uint64_t builds() const { return builds_.load(); }

    /** Number of distinct artifacts resident. */
    size_t size() const;

    /** Drop all artifacts (tests; scale changes mid-process). */
    void clear();

    /**
     * The process-wide cache the driver layers use by default, giving
     * "each spec is built once per binary" without threading a cache
     * through every call site.
     */
    static WorkloadCache &process();

    /** Cache key for one spec+scale combination (stable, printable). */
    static std::string key(const std::string &spec,
                           const GraphScale &gscale,
                           const HpcDbScale &hscale);

  private:
    using Slot = std::shared_future<std::shared_ptr<const Workload>>;

    mutable std::mutex mutex_;
    std::map<std::string, Slot> slots_;
    std::atomic<uint64_t> builds_{0};
};

} // namespace vrsim

#endif // VRSIM_WORKLOADS_WORKLOAD_CACHE_HH

/**
 * @file
 * Synthetic graph inputs for the GAP kernels (paper Table 2): CSR
 * graphs generated as Kronecker/RMAT power-law graphs (Kron, and the
 * LiveJournal/Orkut/Twitter stand-ins with different skew/density) or
 * uniform-random graphs (Urand). See DESIGN.md for the scaling
 * substitution.
 */

#ifndef VRSIM_WORKLOADS_GRAPH_HH
#define VRSIM_WORKLOADS_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"

namespace vrsim
{

/** The five graph inputs of Table 2. */
enum class GraphInput
{
    Kron,   //!< Kronecker power-law (synthetic, Graph500-style)
    Ljn,    //!< LiveJournal stand-in (moderate power-law, sparse)
    Ork,    //!< Orkut stand-in (power-law, dense)
    Tw,     //!< Twitter stand-in (heavy power-law)
    Ur,     //!< uniform random (low-degree variance)
};

std::string graphInputName(GraphInput g);

/** CSR graph. */
struct Graph
{
    uint64_t num_nodes = 0;
    uint64_t num_edges = 0;
    std::vector<uint64_t> offsets;   //!< size num_nodes + 1
    std::vector<uint64_t> edges;     //!< size num_edges

    uint64_t degree(uint64_t v) const
    { return offsets[v + 1] - offsets[v]; }
};

/** Scale knobs for synthetic graph generation. */
struct GraphScale
{
    uint64_t nodes = 1 << 15;
    uint64_t avg_degree = 16;
    uint64_t seed = 42;
};

/**
 * Generate one of the Table 2 inputs at the given scale. Kron/Ljn/
 * Ork/Tw are RMAT graphs with decreasing skew; Ur is uniform random.
 */
Graph makeGraph(GraphInput input, const GraphScale &scale);

/** RMAT generator (a/b/c quadrant probabilities). */
Graph makeRmat(uint64_t nodes, uint64_t edges, double a, double b,
               double c, uint64_t seed);

/** Uniform-random multigraph. */
Graph makeUniform(uint64_t nodes, uint64_t edges, uint64_t seed);

} // namespace vrsim

#endif // VRSIM_WORKLOADS_GRAPH_HH

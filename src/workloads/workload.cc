#include "workloads/workload.hh"

#include "workloads/graph_io.hh"

#include "sim/logging.hh"

namespace vrsim
{

const std::vector<std::string> &
gapKernelNames()
{
    static const std::vector<std::string> names =
        {"bc", "bfs", "cc", "pr", "sssp"};
    return names;
}

const std::vector<std::string> &
hpcDbNames()
{
    static const std::vector<std::string> names =
        {"camel", "graph500", "hj2", "hj8", "kangaroo", "nas-cg",
         "nas-is", "randomaccess"};
    return names;
}

namespace
{

GraphInput
parseInput(const std::string &s)
{
    if (s == "KR") return GraphInput::Kron;
    if (s == "LJN") return GraphInput::Ljn;
    if (s == "ORK") return GraphInput::Ork;
    if (s == "TW") return GraphInput::Tw;
    if (s == "UR") return GraphInput::Ur;
    fatal("unknown graph input: " + s);
}

} // namespace

Workload
makeWorkload(const std::string &spec, const GraphScale &gscale,
             const HpcDbScale &hscale)
{
    auto slash = spec.find('/');
    if (slash != std::string::npos) {
        std::string kernel = spec.substr(0, slash);
        std::string rest = spec.substr(slash + 1);
        if (rest.rfind("file:", 0) == 0) {
            // "bfs/file:/path/to/graph.el": run on a real graph.
            Graph g = loadGraph(rest.substr(5));
            if (kernel == "bfs")
                return makeBfsFromGraph(g, spec, gscale.seed);
            if (kernel == "pr")
                return makePrFromGraph(g, spec, gscale.seed);
            if (kernel == "cc")
                return makeCcFromGraph(g, spec, gscale.seed);
            if (kernel == "sssp")
                return makeSsspFromGraph(g, spec, gscale.seed);
            if (kernel == "bc")
                return makeBcFromGraph(g, spec, gscale.seed);
            fatal("unknown GAP kernel: " + kernel);
        }
        GraphInput input = parseInput(rest);
        if (kernel == "bfs") return makeBfs(input, gscale);
        if (kernel == "pr") return makePr(input, gscale);
        if (kernel == "cc") return makeCc(input, gscale);
        if (kernel == "sssp") return makeSssp(input, gscale);
        if (kernel == "bc") return makeBc(input, gscale);
        fatal("unknown GAP kernel: " + kernel);
    }
    if (spec == "camel") return makeCamel(hscale);
    if (spec == "camel-swpf") return makeCamelSwPf(hscale);
    if (spec == "graph500") return makeGraph500(hscale);
    if (spec == "hj2") return makeHashJoin(2, hscale);
    if (spec == "hj8") return makeHashJoin(8, hscale);
    if (spec == "kangaroo") return makeKangaroo(hscale);
    if (spec == "nas-cg") return makeNasCg(hscale);
    if (spec == "nas-is") return makeNasIs(hscale);
    if (spec == "randomaccess") return makeRandomAccess(hscale);
    fatal("unknown workload: " + spec);
}

} // namespace vrsim

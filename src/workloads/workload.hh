/**
 * @file
 * Workload container and registry: each benchmark is a µop program,
 * a pre-initialized memory image and an initial register state.
 */

#ifndef VRSIM_WORKLOADS_WORKLOAD_HH
#define VRSIM_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "isa/inst.hh"
#include "isa/interp.hh"
#include "isa/memory_image.hh"
#include "workloads/graph.hh"

namespace vrsim
{

/** A runnable benchmark instance. */
struct Workload
{
    std::string name;
    Program prog;
    MemoryImage image;
    CpuState init;
    uint64_t suggested_insts = 400'000;   //!< default ROI length
};

/** Simple bump allocator laying arrays into the memory image. */
class Layout
{
  public:
    explicit Layout(uint64_t base = 0x100000) : cursor_(base) {}

    /** Reserve @p bytes, 64-byte aligned; returns the base address. */
    uint64_t
    alloc(uint64_t bytes)
    {
        uint64_t base = cursor_;
        cursor_ = (cursor_ + bytes + 63) & ~uint64_t(63);
        return base;
    }

    /** Store a u64 array and return its base. */
    uint64_t
    put64(MemoryImage &img, const std::vector<uint64_t> &data)
    {
        uint64_t base = alloc(data.size() * 8);
        for (size_t i = 0; i < data.size(); i++)
            img.write64(base + i * 8, data[i]);
        return base;
    }

    /** Store an f64 array and return its base. */
    uint64_t
    putF64(MemoryImage &img, const std::vector<double> &data)
    {
        uint64_t base = alloc(data.size() * 8);
        for (size_t i = 0; i < data.size(); i++)
            img.writeF64(base + i * 8, data[i]);
        return base;
    }

    uint64_t cursor() const { return cursor_; }

  private:
    uint64_t cursor_;
};

/** Scale knobs for the hpc-db benchmarks. */
struct HpcDbScale
{
    uint64_t elements = 1 << 17;   //!< main table / key count
    uint64_t seed = 7;
};

// --- GAP kernels (graph analytics) ---
Workload makeBfs(GraphInput input, const GraphScale &scale);
Workload makePr(GraphInput input, const GraphScale &scale);
Workload makeCc(GraphInput input, const GraphScale &scale);
Workload makeSssp(GraphInput input, const GraphScale &scale);
Workload makeBc(GraphInput input, const GraphScale &scale);

// GAP kernels over an externally built/loaded graph (see graph_io.hh).
Workload makeBfsFromGraph(const Graph &g, const std::string &name,
                          uint64_t seed);
Workload makePrFromGraph(const Graph &g, const std::string &name,
                         uint64_t seed);
Workload makeCcFromGraph(const Graph &g, const std::string &name,
                         uint64_t seed);
Workload makeSsspFromGraph(const Graph &g, const std::string &name,
                           uint64_t seed);
Workload makeBcFromGraph(const Graph &g, const std::string &name,
                         uint64_t seed);

// --- hpc-db benchmarks ---
Workload makeCamel(const HpcDbScale &scale);
Workload makeCamelSwPf(const HpcDbScale &scale); //!< + SW prefetching
Workload makeGraph500(const HpcDbScale &scale);
Workload makeHashJoin(unsigned hashes, const HpcDbScale &scale); //!< HJ2/HJ8
Workload makeKangaroo(const HpcDbScale &scale);
Workload makeNasCg(const HpcDbScale &scale);
Workload makeNasIs(const HpcDbScale &scale);
Workload makeRandomAccess(const HpcDbScale &scale);

/** The 5 GAP kernel names. */
const std::vector<std::string> &gapKernelNames();

/** The 8 hpc-db benchmark names. */
const std::vector<std::string> &hpcDbNames();

/**
 * Build a workload from a spec string: "bfs/KR", "pr/UR", "camel",
 * "hj8", ... GAP kernels take a graph-input suffix.
 */
Workload makeWorkload(const std::string &spec, const GraphScale &gscale,
                      const HpcDbScale &hscale);

} // namespace vrsim

#endif // VRSIM_WORKLOADS_WORKLOAD_HH

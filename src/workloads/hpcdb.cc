/**
 * @file
 * The eight hpc-db benchmarks (paper §5): Camel, Graph500, HJ2, HJ8,
 * Kangaroo, NAS-CG, NAS-IS, RandomAccess — database and HPC kernels
 * with one to three levels of indirect memory accesses.
 */

#include "workloads/workload.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vrsim
{

namespace
{

// Register conventions for the hpc-db kernels.
constexpr uint8_t R_A = 1;
constexpr uint8_t R_B = 2;
constexpr uint8_t R_C = 3;
constexpr uint8_t R_I = 4;
constexpr uint8_t R_N = 5;
constexpr uint8_t R_MASK = 6;
constexpr uint8_t R_T1 = 7;
constexpr uint8_t R_T2 = 8;
constexpr uint8_t R_T3 = 9;
constexpr uint8_t R_T4 = 10;
constexpr uint8_t R_CND = 11;
constexpr uint8_t R_SUM = 12;
constexpr uint8_t R_P = 13;
constexpr uint8_t R_MASK2 = 14;

} // namespace

Workload
makeCamel(const HpcDbScale &scale)
{
    // Figure 1 of the paper: C[hash(B[hash(A[i])])]++, a two-level
    // hashed indirect chain behind a striding induction load.
    Workload w;
    w.name = "camel";
    Layout lay;
    const uint64_t n = scale.elements;
    Rng rng(scale.seed);

    std::vector<uint64_t> a(n);
    for (auto &v : a)
        v = rng.next();
    uint64_t a_base = lay.put64(w.image, a);
    uint64_t b_base = lay.alloc(n * 8);
    uint64_t c_base = lay.alloc(n * 8);
    for (uint64_t i = 0; i < n; i++)
        w.image.write64(b_base + i * 8, rng.next());

    // The hashes are emitted as their real µop sequences (~9 µops
    // each) so the per-miss instruction density matches compiled
    // code; see ProgramBuilder::hashSeq.
    ProgramBuilder b(w.name);
    auto top = b.here();
    b.ld(R_T1, R_A, R_I, 8);        // A[i]            (stride)
    b.hashSeq(R_T2, R_T1, R_MASK2);
    b.andi(R_T2, R_T2, int64_t(n - 1));
    b.ld(R_T3, R_B, R_T2, 8);       // B[hash(A[i])]   (indirect 1)
    b.hashSeq(R_T4, R_T3, R_MASK2, 1);
    b.andi(R_T4, R_T4, int64_t(n - 1));
    b.ld(R_T1, R_C, R_T4, 8);       // C[hash(B[..])]  (indirect 2)
    b.addi(R_T1, R_T1, 1);
    b.st(R_T1, R_C, R_T4, 8);
    b.addi(R_I, R_I, 1);
    b.cmpltu(R_CND, R_I, R_N);
    b.br(R_CND, top);
    b.halt();
    w.prog = b.build();

    w.init.regs[R_A] = a_base;
    w.init.regs[R_B] = b_base;
    w.init.regs[R_C] = c_base;
    w.init.regs[R_N] = n;
    return w;
}

Workload
makeCamelSwPf(const HpcDbScale &scale)
{
    // Camel with software prefetching for indirect accesses
    // (Ainsworth & Jones, CGO 2017 -- the paper's §7.3 comparison):
    // a staged look-ahead that prefetches A[i+2D] and, after loading
    // A[i+D] and hashing it, B[hash(A[i+D])]. The final C level
    // cannot be prefetched without also loading B[i+D], which is the
    // scheme's well-known depth limitation.
    Workload w;
    w.name = "camel-swpf";
    Layout lay;
    const uint64_t n = scale.elements;
    Rng rng(scale.seed);

    std::vector<uint64_t> a(n + 256);
    for (auto &v : a)
        v = rng.next();
    uint64_t a_base = lay.put64(w.image, a);
    uint64_t b_base = lay.alloc(n * 8);
    uint64_t c_base = lay.alloc(n * 8);
    for (uint64_t i = 0; i < n; i++)
        w.image.write64(b_base + i * 8, rng.next());

    constexpr int64_t D = 16;   // per-stage look-ahead distance

    ProgramBuilder b(w.name);
    auto top = b.here();
    // Stage 0 (distance 2D): cover the index stream.
    b.prefetch(R_A, R_I, 8, 2 * D * 8);
    // Stage 1 (distance D): load the future index, hash, prefetch B.
    b.ld(R_T3, R_A, R_I, 8, D * 8);
    b.hashSeq(R_T4, R_T3, R_MASK2);
    b.andi(R_T4, R_T4, int64_t(n - 1));
    b.prefetch(R_B, R_T4, 8);
    // Stage 2 (distance 0): the actual computation.
    b.ld(R_T1, R_A, R_I, 8);        // A[i]            (stride)
    b.hashSeq(R_T2, R_T1, R_MASK2);
    b.andi(R_T2, R_T2, int64_t(n - 1));
    b.ld(R_T3, R_B, R_T2, 8);       // B[hash(A[i])]   (indirect 1)
    b.hashSeq(R_T4, R_T3, R_MASK2, 1);
    b.andi(R_T4, R_T4, int64_t(n - 1));
    b.ld(R_T1, R_C, R_T4, 8);       // C[hash(B[..])]  (indirect 2)
    b.addi(R_T1, R_T1, 1);
    b.st(R_T1, R_C, R_T4, 8);
    b.addi(R_I, R_I, 1);
    b.cmpltu(R_CND, R_I, R_N);
    b.br(R_CND, top);
    b.halt();
    w.prog = b.build();

    w.init.regs[R_A] = a_base;
    w.init.regs[R_B] = b_base;
    w.init.regs[R_C] = c_base;
    w.init.regs[R_N] = n;
    return w;
}

Workload
makeGraph500(const HpcDbScale &scale)
{
    // Graph500 BFS (Algorithm 1): top-down step over a Kronecker
    // graph recording a parent per vertex. The parent array (8 B per
    // vertex) is the indirect, LLC-defeating state; parent == 0 means
    // unvisited, so the visited check is a data-dependent branch on
    // an indirect load, exactly as in the paper.
    Workload w;
    w.name = "graph500";
    const uint64_t nodes = std::max<uint64_t>(4096, scale.elements);
    Graph g = makeRmat(nodes, nodes * 16, 0.57, 0.19, 0.19,
                       scale.seed + 9);
    Layout lay;
    uint64_t off = lay.put64(w.image, g.offsets);
    uint64_t edg = lay.put64(w.image, g.edges);
    uint64_t wl = lay.alloc((g.num_nodes + 64) * 8);
    uint64_t parent = lay.alloc(g.num_nodes * 8);

    // Seed well-connected roots (parent[root] = root + 1).
    Rng rng(scale.seed ^ 0x500);
    uint64_t seeds = 0;
    for (uint64_t tries = 0; seeds < 8 && tries < 1000; tries++) {
        uint64_t root = rng.below(g.num_nodes);
        if (g.degree(root) == 0)
            continue;
        w.image.write64(wl + seeds * 8, root);
        w.image.write64(parent + root * 8, root + 1);
        ++seeds;
    }
    if (seeds == 0) {
        w.image.write64(wl, 0);
        w.image.write64(parent, 1);
        seeds = 1;
    }

    constexpr uint8_t R_WL = 1, R_HEAD = 2, R_TAIL = 3, R_OFF = 4,
                      R_EDG = 5, R_PAR = 6, R_V = 16, R_J = 8,
                      R_END = 9, R_E = 10, R_VP = 15;

    ProgramBuilder b(w.name);
    auto exit_l = b.makeLabel();
    auto skip_l = b.makeLabel();
    auto outer_top = b.here();
    b.cmpltu(R_CND, R_HEAD, R_TAIL);
    b.brz(R_CND, exit_l);
    b.ld(R_V, R_WL, R_HEAD, 8);          // v = wl[head]
    b.addi(R_HEAD, R_HEAD, 1);
    b.ld(R_J, R_OFF, R_V, 8);
    b.ld(R_END, R_OFF, R_V, 8, 8);
    b.addi(R_VP, R_V, 1);                // parent tag for v
    b.cmpltu(R_CND, R_J, R_END);
    b.brz(R_CND, outer_top);
    auto inner_top = b.here();
    b.ld(R_E, R_EDG, R_J, 8);            // e = edges[j]   (stride)
    b.ld(R_T1, R_PAR, R_E, 8);           // parent[e]      (indirect)
    b.br(R_T1, skip_l);                  // visited?
    b.st(R_VP, R_PAR, R_E, 8);           // parent[e] = v + 1
    b.st(R_E, R_WL, R_TAIL, 8);          // push e
    b.addi(R_TAIL, R_TAIL, 1);
    b.bind(skip_l);
    b.addi(R_J, R_J, 1);
    b.cmpltu(R_CND, R_J, R_END);
    b.br(R_CND, inner_top);
    b.jmp(outer_top);
    b.bind(exit_l);
    b.halt();
    w.prog = b.build();

    w.init.regs[R_WL] = wl;
    w.init.regs[R_TAIL] = seeds;
    w.init.regs[R_OFF] = off;
    w.init.regs[R_EDG] = edg;
    w.init.regs[R_PAR] = parent;
    return w;
}

Workload
makeHashJoin(unsigned hashes, const HpcDbScale &scale)
{
    // Hash-join probe phase: hash each probe key, load the bucket
    // head, chase the chain comparing keys. `hashes` controls the
    // average chain length (2 for HJ2, 8 for HJ8).
    panicIfNot(hashes >= 1, "chain length must be positive");
    Workload w;
    w.name = "hj" + std::to_string(hashes);
    Layout lay;
    Rng rng(scale.seed ^ hashes);

    const uint64_t tuples = scale.elements;
    const uint64_t buckets = std::max<uint64_t>(64, tuples / hashes);
    panicIfNot((buckets & (buckets - 1)) == 0 ||
               true, "bucket count");
    // Round buckets to a power of two for mask indexing.
    uint64_t bmask = 1;
    while (bmask * 2 <= buckets)
        bmask *= 2;
    const uint64_t nbuckets = bmask;

    // Build-side nodes: {key, payload, next_ptr}, 24 bytes each,
    // placed in shuffled order so chains jump around memory.
    struct Node { uint64_t key, payload, next; };
    const uint64_t node_bytes = 24;
    uint64_t nodes_base = lay.alloc(tuples * node_bytes);
    uint64_t heads_base = lay.alloc(nbuckets * 8);

    std::vector<uint64_t> order(tuples);
    for (uint64_t i = 0; i < tuples; i++)
        order[i] = i;
    for (uint64_t i = tuples - 1; i > 0; i--)
        std::swap(order[i], order[rng.below(i + 1)]);

    std::vector<uint64_t> head(nbuckets, 0);
    std::vector<uint64_t> keys(tuples);
    for (uint64_t i = 0; i < tuples; i++) {
        uint64_t key = rng.next() | 1;   // nonzero keys
        keys[i] = key;
        uint64_t h = hashMix64(key) & (nbuckets - 1);
        uint64_t addr = nodes_base + order[i] * node_bytes;
        w.image.write64(addr + 0, key);
        w.image.write64(addr + 8, key ^ 0x9E3779B97F4A7C15ull);
        w.image.write64(addr + 16, head[h]);
        head[h] = addr;
    }
    for (uint64_t hh = 0; hh < nbuckets; hh++)
        w.image.write64(heads_base + hh * 8, head[hh]);

    // Probe keys: existing keys in random order.
    std::vector<uint64_t> probes(tuples);
    for (uint64_t i = 0; i < tuples; i++)
        probes[i] = keys[rng.below(tuples)];
    uint64_t probes_base = lay.put64(w.image, probes);

    constexpr uint8_t R_KEYS = 1, R_HEADS = 2, R_K = 7, R_H = 8,
                      R_NK = 9;

    ProgramBuilder b(w.name);
    auto probe_done = b.makeLabel();
    auto match_l = b.makeLabel();
    auto exit_l = b.makeLabel();
    auto top = b.here();
    b.ld(R_K, R_KEYS, R_I, 8);         // key = probes[i]  (stride)
    b.hashSeq(R_H, R_K, R_MASK2);      // real hash µop sequence
    b.andi(R_H, R_H, int64_t(nbuckets - 1));
    b.ld(R_P, R_HEADS, R_H, 8);        // bucket head      (indirect 1)
    auto chase = b.here();
    b.brz(R_P, probe_done);
    b.ld(R_NK, R_P, REG_NONE, 1, 0);   // node.key (pointer chase)
    b.cmpeq(R_CND, R_NK, R_K);
    b.br(R_CND, match_l);
    b.ld(R_P, R_P, REG_NONE, 1, 16);   // node.next
    b.jmp(chase);
    b.bind(match_l);
    b.ld(R_T1, R_P, REG_NONE, 1, 8);   // node.payload
    b.add(R_SUM, R_SUM, R_T1);
    b.bind(probe_done);
    b.addi(R_I, R_I, 1);
    b.cmpltu(R_CND, R_I, R_N);
    b.br(R_CND, top);
    b.jmp(exit_l);
    b.bind(exit_l);
    b.halt();
    w.prog = b.build();

    w.init.regs[R_KEYS] = probes_base;
    w.init.regs[R_HEADS] = heads_base;
    w.init.regs[R_N] = tuples;
    return w;
}

Workload
makeKangaroo(const HpcDbScale &scale)
{
    // Kangaroo: three-level indirect hop chain A -> B -> C.
    Workload w;
    w.name = "kangaroo";
    Layout lay;
    Rng rng(scale.seed ^ 0x4a6);
    const uint64_t n = scale.elements;

    std::vector<uint64_t> a(n), bv(n), c(n);
    for (uint64_t i = 0; i < n; i++) {
        a[i] = rng.below(n);
        bv[i] = rng.below(n);
        c[i] = rng.next();
    }
    uint64_t a_base = lay.put64(w.image, a);
    uint64_t b_base = lay.put64(w.image, bv);
    uint64_t c_base = lay.put64(w.image, c);

    // Each hop recomputes its jump target with a full mix (the
    // original kangaroo hops through tables via hashed indices),
    // keeping a realistic µop/miss ratio.
    ProgramBuilder b(w.name);
    auto top = b.here();
    b.ld(R_T1, R_A, R_I, 8);        // x = A[i]     (stride)
    b.hashSeq(R_T4, R_T1, R_MASK2, 3);
    b.andi(R_T4, R_T4, int64_t(n - 1));
    b.ld(R_T2, R_B, R_T4, 8);       // y = B[mix(x)] (indirect 1)
    b.hashSeq(R_T4, R_T2, R_MASK2, 5);
    b.andi(R_T4, R_T4, int64_t(n - 1));
    b.ld(R_T3, R_C, R_T4, 8);       // z = C[mix(y)] (indirect 2)
    b.muli(R_T4, R_T3, 31);
    b.add(R_SUM, R_SUM, R_T4);
    b.addi(R_I, R_I, 1);
    b.cmpltu(R_CND, R_I, R_N);
    b.br(R_CND, top);
    b.halt();
    w.prog = b.build();

    w.init.regs[R_A] = a_base;
    w.init.regs[R_B] = b_base;
    w.init.regs[R_C] = c_base;
    w.init.regs[R_N] = n;
    return w;
}

Workload
makeNasCg(const HpcDbScale &scale)
{
    // NAS-CG inner kernel: CSR sparse matrix-vector product with an
    // indirect gather of the dense vector.
    Workload w;
    w.name = "nas-cg";
    Layout lay;
    Rng rng(scale.seed ^ 0xc6);

    const uint64_t rows = std::max<uint64_t>(4096, scale.elements * 2);
    const uint64_t avg_nnz = 12;
    std::vector<uint64_t> offsets(rows + 1, 0);
    for (uint64_t r = 0; r < rows; r++)
        offsets[r + 1] = offsets[r] + 4 + rng.below(2 * avg_nnz - 8);
    const uint64_t nnz = offsets[rows];
    std::vector<uint64_t> cols(nnz);
    std::vector<double> vals(nnz), x(rows);
    for (uint64_t i = 0; i < nnz; i++) {
        cols[i] = rng.below(rows);
        vals[i] = rng.uniform();
    }
    for (uint64_t r = 0; r < rows; r++)
        x[r] = rng.uniform();

    uint64_t off_base = lay.put64(w.image, offsets);
    uint64_t col_base = lay.put64(w.image, cols);
    uint64_t val_base = lay.putF64(w.image, vals);
    uint64_t x_base = lay.putF64(w.image, x);
    uint64_t y_base = lay.alloc(rows * 8);

    constexpr uint8_t R_OFF = 1, R_COL = 2, R_VAL = 3, R_X = 14,
                      R_Y = 15, R_ROW = 4, R_J = 8, R_END = 9;

    ProgramBuilder b(w.name);
    auto exit_l = b.makeLabel();
    auto row_done = b.makeLabel();
    auto outer_top = b.here();
    b.cmpltu(R_CND, R_ROW, R_N);
    b.brz(R_CND, exit_l);
    b.ld(R_J, R_OFF, R_ROW, 8);
    b.ld(R_END, R_OFF, R_ROW, 8, 8);
    b.movi(R_SUM, 0);
    b.cmpltu(R_CND, R_J, R_END);
    b.brz(R_CND, row_done);
    auto inner_top = b.here();
    b.ld(R_T1, R_COL, R_J, 8);      // col = cols[j]   (stride)
    b.ld(R_T2, R_VAL, R_J, 8);      // val = vals[j]   (stride)
    b.ld(R_T3, R_X, R_T1, 8);       // x[col]          (indirect)
    b.fmul(R_T3, R_T3, R_T2);
    b.fadd(R_SUM, R_SUM, R_T3);
    b.addi(R_J, R_J, 1);
    b.cmpltu(R_CND, R_J, R_END);
    b.br(R_CND, inner_top);
    b.bind(row_done);
    b.st(R_SUM, R_Y, R_ROW, 8);
    b.addi(R_ROW, R_ROW, 1);
    b.jmp(outer_top);
    b.bind(exit_l);
    b.halt();
    w.prog = b.build();

    w.init.regs[R_OFF] = off_base;
    w.init.regs[R_COL] = col_base;
    w.init.regs[R_VAL] = val_base;
    w.init.regs[R_X] = x_base;
    w.init.regs[R_Y] = y_base;
    w.init.regs[R_N] = rows;
    return w;
}

Workload
makeNasIs(const HpcDbScale &scale)
{
    // NAS-IS key kernel: bucket counting, a single-level indirect
    // read-modify-write.
    Workload w;
    w.name = "nas-is";
    Layout lay;
    Rng rng(scale.seed ^ 0x15);
    const uint64_t n = scale.elements;
    const uint64_t nbuckets = n / 2;

    std::vector<uint64_t> keys(n);
    for (auto &k : keys)
        k = rng.below(nbuckets);
    uint64_t keys_base = lay.put64(w.image, keys);
    uint64_t count_base = lay.alloc(nbuckets * 8);

    // NAS IS ranks keys into buckets; the key-to-bucket mapping does
    // a few shifts/adds per key (range scaling), reflected here.
    ProgramBuilder b(w.name);
    auto top = b.here();
    b.ld(R_T1, R_A, R_I, 8);        // key = keys[i]   (stride)
    b.shli(R_T3, R_T1, 1);
    b.add(R_T3, R_T3, R_T1);
    b.shri(R_T3, R_T3, 2);
    b.andi(R_T1, R_T1, int64_t(nbuckets - 1));
    b.ld(R_T2, R_B, R_T1, 8);       // count[key]      (indirect)
    b.addi(R_T2, R_T2, 1);
    b.add(R_SUM, R_SUM, R_T3);
    b.st(R_T2, R_B, R_T1, 8);
    b.addi(R_I, R_I, 1);
    b.cmpltu(R_CND, R_I, R_N);
    b.br(R_CND, top);
    b.halt();
    w.prog = b.build();

    w.init.regs[R_A] = keys_base;
    w.init.regs[R_B] = count_base;
    w.init.regs[R_N] = n;
    return w;
}

Workload
makeRandomAccess(const HpcDbScale &scale)
{
    // HPCC RandomAccess (GUPS): xor-update the table at pseudo-random
    // indices taken from a precomputed stream.
    Workload w;
    w.name = "randomaccess";
    Layout lay;
    Rng rng(scale.seed ^ 0x6a);
    const uint64_t n = scale.elements;
    const uint64_t tsize = n;   // table entries (power of two below)
    uint64_t tmask = 1;
    while (tmask * 2 <= tsize)
        tmask *= 2;

    std::vector<uint64_t> ran(n);
    for (auto &r : ran)
        r = rng.next();
    uint64_t ran_base = lay.put64(w.image, ran);
    uint64_t table_base = lay.alloc(tmask * 8);

    // GUPS recomputes the LCG step alongside each update; the shift/
    // xor/select sequence is kept so µop density matches real GUPS.
    ProgramBuilder b(w.name);
    auto top = b.here();
    b.ld(R_T1, R_A, R_I, 8);        // r = ran[i]      (stride)
    b.shli(R_T4, R_T1, 1);
    b.shri(R_MASK2, R_T1, 63);
    b.muli(R_MASK2, R_MASK2, 7);
    b.xor_(R_T4, R_T4, R_MASK2);
    b.andi(R_T2, R_T1, int64_t(tmask - 1));
    b.ld(R_T3, R_B, R_T2, 8);       // T[idx]          (indirect)
    b.xor_(R_T3, R_T3, R_T1);
    b.st(R_T3, R_B, R_T2, 8);
    b.add(R_SUM, R_SUM, R_T4);
    b.addi(R_I, R_I, 1);
    b.cmpltu(R_CND, R_I, R_N);
    b.br(R_CND, top);
    b.halt();
    w.prog = b.build();

    w.init.regs[R_A] = ran_base;
    w.init.regs[R_B] = table_base;
    w.init.regs[R_N] = n;
    return w;
}

} // namespace vrsim

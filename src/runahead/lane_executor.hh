/**
 * @file
 * The SIMT lane executor: runs many scalar-equivalent lanes of the
 * speculatively vectorized dependence chain in lockstep, issuing timed
 * memory accesses through the hierarchy, with either GPU-style
 * divergence/reconvergence (DVR, §4.2.3) or first-lane control flow
 * with divergent-lane invalidation (VR, §2.3).
 */

#ifndef VRSIM_RUNAHEAD_LANE_EXECUTOR_HH
#define VRSIM_RUNAHEAD_LANE_EXECUTOR_HH

#include <cstdint>
#include <vector>

#include "isa/interp.hh"
#include "mem/hierarchy.hh"
#include "runahead/reconv_stack.hh"
#include "runahead/vir.hh"
#include "runahead/vrat.hh"
#include "sim/config.hh"

namespace vrsim
{

class TraceSink;

/** One scalar-equivalent lane of the vectorized subthread. */
struct Lane
{
    CpuState ctx;        //!< per-lane architectural context
    Cycle ready = 0;     //!< when the lane's latest loaded value lands
    uint32_t insts = 0;  //!< instructions executed (timeout)
    bool done = false;
};

/** Outcome of one lane-executor run. */
struct LaneRunStats
{
    uint64_t prefetches = 0;    //!< runahead loads issued
    uint64_t insts = 0;         //!< total scalar-equivalent µops
    uint64_t divergences = 0;   //!< divergent branch events
    uint64_t invalidated = 0;   //!< lanes killed (VR mode divergence)
    uint64_t reconv_drops = 0;  //!< groups dropped on stack overflow
    uint64_t vrat_stalls = 0;   //!< cycles stalled on the register
                                //!< free list (VRAT exhausted)
    Cycle end_time = 0;         //!< cycle the last access was issued
};

/** Runs lanes in SIMT lockstep. */
class LaneExecutor
{
  public:
    /**
     * @param invariant_checks enable the cheap end-of-run invariant
     *        checks (reconvergence-stack balance); the engines pass
     *        SystemConfig::invariant_checks through
     */
    LaneExecutor(const RunaheadConfig &cfg, const Program &prog,
                 MemoryImage &image, MemoryHierarchy &hier,
                 bool invariant_checks = true)
        : cfg_(cfg), prog_(prog), image_(image), hier_(hier),
          invariant_checks_(invariant_checks)
    {}

    /**
     * Execute the given lanes from their shared current pc until each
     * terminates: executing the FLR load (when @p stop_at_flr),
     * reaching @p stride_pc again (the next loop iteration), halting,
     * or the per-lane timeout.
     *
     * @param lanes       lane contexts; all active lanes must share
     *                    ctx.pc on entry
     * @param stride_pc   pc of the initiating striding load
     * @param flr_pc      pc in the Final-Load Register (0 = unknown)
     * @param stop_at_flr stop lanes after issuing the FLR load
     * @param reconverge  true = DVR divergence/reconvergence,
     *                    false = VR first-lane flow + invalidation
     * @param start_cycle subthread timeline start
     * @param vrat        optional register-allocation model: when a
     *                    vectorized destination needs a fresh set of
     *                    vector physical registers and the free list
     *                    is exhausted, the subthread stalls one
     *                    recycling round (paper §4.2.1)
     */
    LaneRunStats run(std::vector<Lane> &lanes, uint32_t stride_pc,
                     uint32_t flr_pc, bool stop_at_flr, bool reconverge,
                     Cycle start_cycle, Vrat *vrat = nullptr);

    /**
     * Attach a cycle-trace sink (obs/trace.hh): every vector-load
     * issue group emits one TraceCat::Lanes event. nullptr detaches.
     */
    void setTraceSink(TraceSink *sink) { tsink_ = sink; }

  private:
    const RunaheadConfig &cfg_;
    const Program &prog_;
    MemoryImage &image_;
    MemoryHierarchy &hier_;
    bool invariant_checks_;
    TraceSink *tsink_ = nullptr;
};

} // namespace vrsim

#endif // VRSIM_RUNAHEAD_LANE_EXECUTOR_HH

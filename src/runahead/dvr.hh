/**
 * @file
 * Decoupled Vector Runahead (the supplied paper's contribution):
 * Vector Runahead offloaded to an always-available, in-order,
 * speculative subthread that triggers on stride detection rather than
 * full-ROB stalls, extended with Discovery Mode (innermost stride
 * selection, dependent-load checking, loop-bound inference), GPU-style
 * branch divergence/reconvergence across the vector lanes, and Nested
 * Vector Runahead for short inner loops (§4 of the paper).
 */

#ifndef VRSIM_RUNAHEAD_DVR_HH
#define VRSIM_RUNAHEAD_DVR_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "core/engine.hh"
#include "mem/stride_rpt.hh"
#include "runahead/lane_executor.hh"
#include "runahead/loop_bound.hh"
#include "runahead/taint_tracker.hh"
#include "runahead/vrat.hh"
#include "sim/config.hh"

namespace vrsim
{

class StatsRegistry;

/** Feature toggles reproducing Fig. 8's breakdown steps. */
struct DvrFeatures
{
    bool discovery = true;   //!< Discovery Mode (step 3)
    bool nested = true;      //!< Nested Vector Runahead (step 4)
    bool reconverge = true;  //!< SIMT divergence handling

    static DvrFeatures offloadOnly()
    { return {false, false, false}; }
    static DvrFeatures withDiscovery()
    { return {true, false, true}; }
    static DvrFeatures full()
    { return {true, true, true}; }
};

/** Statistics of the DVR engine. */
struct DvrStats
{
    uint64_t discoveries = 0;       //!< Discovery Mode entries
    uint64_t discovery_aborts = 0;  //!< no dependent chain / timeout
    uint64_t innermost_switches = 0; //!< retargeted to inner stride
    uint64_t spawns = 0;            //!< vector subthread invocations
    uint64_t nested_spawns = 0;     //!< NDM-expanded invocations
    uint64_t ndm_fallbacks = 0;     //!< NDM found no outer stride
    uint64_t lanes_spawned = 0;
    uint64_t prefetches = 0;
    uint64_t divergences = 0;
    uint64_t bound_limited = 0;     //!< spawns clipped by loop bound
    uint64_t dedupe_skips = 0;      //!< spawns skipped, already covered

    double
    meanLanes() const
    {
        return spawns ? double(lanes_spawned) / double(spawns) : 0.0;
    }

    /** Register the reported statistics under "dvr." paths. */
    void registerIn(StatsRegistry &reg) const;
};

/** The Decoupled Vector Runahead engine. */
class DecoupledVectorRunahead : public RunaheadEngine
{
  public:
    DecoupledVectorRunahead(const SystemConfig &cfg, const Program &prog,
                            MemoryImage &image, MemoryHierarchy &hier,
                            DvrFeatures features = DvrFeatures::full());

    void onInstruction(const StepInfo &si, const CpuState &after,
                       Cycle cycle) override;

    // DVR never delays the main thread: the subthread is decoupled.
    Cycle
    onFullRobStall(Cycle, Cycle head_fill, const CpuState &,
                   TriggerKind) override
    {
        return head_fill;
    }

    const char *name() const override { return "DVR"; }

    void
    setTraceSink(TraceSink *sink) override
    {
        RunaheadEngine::setTraceSink(sink);
        executor_.setTraceSink(sink);
    }

    const DvrStats &stats() const { return stats_; }
    const StrideRpt &rpt() const { return rpt_; }
    const Vrat &vrat() const { return vrat_; }

  private:
    enum class Mode { Idle, Discovery };

    void maybeStartDiscovery(const StepInfo &si, const CpuState &after,
                             Cycle cycle);
    void discoveryStep(const StepInfo &si, const CpuState &after,
                       Cycle cycle);

    /** Spawn the vector subthread at the striding load. */
    void spawn(const StepInfo &si, const CpuState &after, Cycle cycle);

    /** Nested Discovery Mode + expanded vectorization (§4.3). */
    void spawnNested(const StepInfo &si, const CpuState &after,
                     Cycle cycle, const LoopBoundInfo &info,
                     uint64_t remaining);

    /** First future iteration not yet covered by earlier spawns. */
    uint64_t laneStartIndex(uint32_t pc, uint64_t cur_addr,
                            int64_t stride) const;

    const SystemConfig &cfg_;
    const Program &prog_;
    MemoryImage &image_;
    MemoryHierarchy &hier_;
    DvrFeatures features_;

    StrideRpt rpt_;
    LaneExecutor executor_;
    Vrat vrat_;

    Mode mode_ = Mode::Idle;
    Cycle busy_until_ = 0;

    // Discovery Mode state.
    uint32_t target_pc_ = 0;
    TaintTracker vtt_;
    LoopBoundDetector lbd_;
    std::unordered_set<uint64_t> stride_seen_; //!< bit per RPT entry
    uint32_t discovery_insts_ = 0;
    bool saw_other_branch_ = false;

    // Skip-ahead dedupe: next unprefetched address per stride pc.
    std::unordered_map<uint32_t, uint64_t> next_addr_;

    DvrStats stats_;
};

} // namespace vrsim

#endif // VRSIM_RUNAHEAD_DVR_HH

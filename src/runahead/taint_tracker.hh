/**
 * @file
 * The Vector Taint Tracker (VTT, paper §4.1.2): one bit per
 * architectural integer register, marking values derived from the
 * initiating striding load. Taint propagates through register
 * dataflow and is killed by untainted overwrites.
 */

#ifndef VRSIM_RUNAHEAD_TAINT_TRACKER_HH
#define VRSIM_RUNAHEAD_TAINT_TRACKER_HH

#include <cstdint>

#include "isa/inst.hh"

namespace vrsim
{

/** VTT: tracks which architectural registers carry tainted values. */
class TaintTracker
{
  public:
    /** Clear all taint and seed the striding load's destination. */
    void
    init(uint8_t seed_reg)
    {
        bits_ = 0;
        if (seed_reg != REG_NONE)
            set(seed_reg);
    }

    void clear() { bits_ = 0; }

    bool
    isTainted(uint8_t reg) const
    {
        return reg != REG_NONE && (bits_ >> reg) & 1;
    }

    void set(uint8_t reg) { bits_ |= 1ull << reg; }
    void unset(uint8_t reg) { bits_ &= ~(1ull << reg); }

    /** Whether any source register of @p inst is tainted. */
    bool
    sourceTainted(const Inst &inst) const
    {
        if (isTainted(inst.rs1) || isTainted(inst.rs2))
            return true;
        if (inst.isStore() && isTainted(inst.rs3))
            return true;
        return false;
    }

    /**
     * Propagate taint across one instruction: destinations of tainted
     * sources become tainted; untainted writes clear a previously
     * tainted destination (paper §4.1.2).
     */
    void
    propagate(const Inst &inst)
    {
        if (!inst.writesDst())
            return;
        if (sourceTainted(inst))
            set(inst.rd);
        else
            unset(inst.rd);
    }

    uint64_t raw() const { return bits_; }

  private:
    uint64_t bits_ = 0;
};

} // namespace vrsim

#endif // VRSIM_RUNAHEAD_TAINT_TRACKER_HH

/**
 * @file
 * Vector Issue Register timing model (paper §4.2.2, Fig. 5): the
 * single in-order issue slot of the subthread. Each vectorized
 * instruction is issued as up to 16 AVX-512 copies in sequence, one
 * copy per cycle when an execution port is free; vectorized loads
 * split into scalar gathers in the LSQ, each allocating its own MSHR.
 */

#ifndef VRSIM_RUNAHEAD_VIR_HH
#define VRSIM_RUNAHEAD_VIR_HH

#include <cstdint>

#include "mem/request.hh"
#include "runahead/reconv_stack.hh"
#include "sim/config.hh"

namespace vrsim
{

/**
 * VIR pacing model. Tracks the subthread's issue timeline: the cycle
 * at which the next vector copy may issue.
 */
class VectorIssueRegister
{
  public:
    explicit VectorIssueRegister(const RunaheadConfig &cfg)
        : lanes_per_vector_(cfg.lanes_per_vector)
    {}

    /** Start a new invocation at @p cycle. */
    void
    start(Cycle cycle)
    {
        time_ = cycle;
    }

    /**
     * Issue one (possibly vectorized) instruction over the lanes in
     * @p mask. Scalar instructions take one slot; vectorized ones take
     * one slot per AVX-512 copy (ceil(lanes/8)).
     *
     * @return the cycle of the *first* copy's issue; per-copy issue
     *         cycles are first + copy_index.
     */
    Cycle
    issue(const LaneMask &mask, bool vectorized)
    {
        Cycle first = time_;
        uint32_t copies = 1;
        if (vectorized) {
            uint32_t lanes = uint32_t(mask.count());
            copies = (lanes + lanes_per_vector_ - 1) / lanes_per_vector_;
            if (copies == 0)
                copies = 1;
        }
        time_ += copies;
        issued_copies_ += copies;
        return first;
    }

    /** Which copy (0-based) a lane belongs to. */
    uint32_t
    copyOf(uint32_t lane, const LaneMask &mask) const
    {
        // Copies are formed over the *active* lanes in mask order.
        uint32_t idx = 0;
        for (uint32_t l = 0; l < lane; l++)
            if (mask.test(l))
                ++idx;
        return idx / lanes_per_vector_;
    }

    /** Advance the timeline to at least @p cycle (stall). */
    void
    waitUntil(Cycle cycle)
    {
        if (cycle > time_)
            time_ = cycle;
    }

    Cycle now() const { return time_; }
    uint64_t issuedCopies() const { return issued_copies_; }

  private:
    uint32_t lanes_per_vector_;
    Cycle time_ = 0;
    uint64_t issued_copies_ = 0;
};

} // namespace vrsim

#endif // VRSIM_RUNAHEAD_VIR_HH

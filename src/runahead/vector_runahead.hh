/**
 * @file
 * Vector Runahead (Naithani et al., ISCA 2021), the headline
 * technique: triggered on a full-ROB stall, it scans the future
 * instruction stream for a striding load (via the stride detector),
 * speculatively vectorizes its forward dependence chain over 128
 * future loop iterations (16 AVX-512-style gathers), and issues all
 * lanes' memory accesses. Runahead only terminates once the whole
 * chain's accesses have been generated (delayed termination), which
 * can stall commit past the blocking load's return.
 */

#ifndef VRSIM_RUNAHEAD_VECTOR_RUNAHEAD_HH
#define VRSIM_RUNAHEAD_VECTOR_RUNAHEAD_HH

#include <cstdint>

#include "core/engine.hh"
#include "mem/stride_rpt.hh"
#include "runahead/lane_executor.hh"
#include "sim/config.hh"

namespace vrsim
{

class StatsRegistry;

/** Statistics of the VR engine. */
struct VrStats
{
    uint64_t triggers = 0;        //!< full-ROB stalls seen
    uint64_t vectorizations = 0;  //!< stalls where a stride was found
    uint64_t lanes_spawned = 0;
    uint64_t prefetches = 0;
    uint64_t lanes_invalidated = 0; //!< control-divergent lanes killed
    uint64_t delayed_term_cycles = 0; //!< commit stalled past head fill

    /** Register the reported statistics under "vr." paths. */
    void registerIn(StatsRegistry &reg) const;
};

/** The Vector Runahead engine. */
class VectorRunahead : public RunaheadEngine
{
  public:
    VectorRunahead(const SystemConfig &cfg, const Program &prog,
                   MemoryImage &image, MemoryHierarchy &hier)
        : cfg_(cfg), prog_(prog), image_(image), hier_(hier),
          rpt_(cfg.runahead.stride_entries,
               uint8_t(cfg.runahead.stride_confidence)),
          executor_(cfg_.runahead, prog, image, hier,
                    cfg.invariant_checks)
    {
        cfg_.validate(false);
        rpt_.reset();
    }

    void onInstruction(const StepInfo &si, const CpuState &after,
                       Cycle cycle) override;

    Cycle onFullRobStall(Cycle stall_start, Cycle head_fill,
                         const CpuState &frontier,
                         TriggerKind kind) override;

    const char *name() const override { return "VR"; }

    void
    setTraceSink(TraceSink *sink) override
    {
        RunaheadEngine::setTraceSink(sink);
        executor_.setTraceSink(sink);
    }

    const VrStats &stats() const { return stats_; }
    const StrideRpt &rpt() const { return rpt_; }

  private:
    const SystemConfig &cfg_;
    const Program &prog_;
    MemoryImage &image_;
    MemoryHierarchy &hier_;
    StrideRpt rpt_;
    LaneExecutor executor_;
    VrStats stats_;
};

} // namespace vrsim

#endif // VRSIM_RUNAHEAD_VECTOR_RUNAHEAD_HH

#include "runahead/vector_runahead.hh"

#include <algorithm>

#include "obs/stats_registry.hh"
#include "obs/trace.hh"
#include "sim/digest.hh"

namespace vrsim
{

void
VrStats::registerIn(StatsRegistry &reg) const
{
    reg.addCounter("vr.triggers", "full-window stalls VR saw") +=
        triggers;
    reg.addCounter("vr.vectorizations",
                   "stalls where a striding load was vectorized") +=
        vectorizations;
    reg.addCounter("vr.lanes", "vector lanes spawned") += lanes_spawned;
    reg.addCounter("vr.prefetches", "prefetches issued by VR lanes") +=
        prefetches;
    reg.addCounter("vr.lanes_invalidated",
                   "control-divergent lanes invalidated") +=
        lanes_invalidated;
}

void
VectorRunahead::onInstruction(const StepInfo &si, const CpuState &after,
                              Cycle cycle)
{
    (void)after;
    (void)cycle;
    // Train the runahead stride detector on the main thread's loads
    // (software prefetches are non-binding and do not train).
    if (si.is_mem && !si.is_store && !si.inst->isPrefetch())
        rpt_.train(si.pc, si.addr);
}

Cycle
VectorRunahead::onFullRobStall(Cycle stall_start, Cycle head_fill,
                               const CpuState &frontier,
                               TriggerKind kind)
{
    // VR vectorizes from the stride detector, whose future iterations
    // are on the correct path even when the trigger came from a
    // wrong-path window, so both trigger kinds engage it.
    ++stats_.triggers;
    const uint64_t pf_before = stats_.prefetches;
    if (trace_sink_ && trace_sink_->enabled(TraceCat::Runahead))
        trace_sink_->runahead(stall_start, "enter", name(),
                              triggerKindName(kind), frontier.pc, 0, 0);

    // The whole runahead interval (scan + vectorized lanes) is
    // transient execution: the guard makes any commit recorded inside
    // it panic (see sim/digest.hh).
    ScopedSpeculation spec;

    // Runahead mode: transiently execute the future instruction
    // stream from the fetch frontier until a striding load is found
    // (the front-end keeps supplying instructions at `width` per
    // cycle while the ROB drains nothing).
    CpuState scan = frontier;
    const uint32_t scan_cap = cfg_.runahead.discovery_max_insts;
    uint32_t scanned = 0;
    const RptEntry *entry = nullptr;
    StepInfo hit{};
    while (!scan.halted && scanned < scan_cap) {
        StepInfo si = step(prog_, scan, image_, true);
        ++scanned;
        if (si.is_mem && !si.is_store) {
            if (const RptEntry *e = rpt_.predict(si.pc)) {
                entry = e;
                hit = si;
                break;
            }
        }
    }
    if (!entry) {
        if (trace_sink_ && trace_sink_->enabled(TraceCat::Runahead))
            trace_sink_->runahead(head_fill, "exit", name(),
                                  triggerKindName(kind), frontier.pc,
                                  0, 0);
        return head_fill;
    }

    ++stats_.vectorizations;

    // Speculatively vectorize: 128 lanes covering the next 128
    // iterations of the striding load, unconditionally (VR has no
    // loop-bound inference — the source of its over-fetching).
    const uint32_t lanes_n = cfg_.runahead.max_lanes();
    const int64_t stride = entry->stride;
    const uint64_t base = hit.addr;

    // The vector gathers for the striding load itself: 16 AVX-512
    // copies issued back to back starting one cycle into runahead.
    VectorIssueRegister vir(cfg_.runahead);
    Cycle t0 = stall_start + cfg_.core.frontend_stages / 3 +
               scanned / cfg_.core.width;
    vir.start(t0);
    LaneMask all;
    for (uint32_t j = 0; j < lanes_n; j++)
        all.set(j);
    Cycle gather0 = vir.issue(all, true);

    std::vector<Lane> lanes(lanes_n);
    const Inst &sload = *hit.inst;
    for (uint32_t j = 0; j < lanes_n; j++) {
        Lane &lane = lanes[j];
        lane.ctx = scan;
        lane.ctx.pc = hit.next_pc;
        uint64_t addr = uint64_t(int64_t(base) + stride * int64_t(j + 1));
        // gather0 >= the triggering stall's dispatch point, so every
        // lane access honours the calendar-horizon floor
        // (docs/performance.md) and never lands in retired history.
        Cycle issue = gather0 + vir.copyOf(j, all);
        AccessResult res = hier_.access(addr, 0, issue, false,
                                        Requester::Runahead);
        ++stats_.prefetches;
        lane.ready = issue + res.latency;
        uint64_t value = sload.op == Op::Ld32 ? image_.read32(addr)
                                              : image_.read64(addr);
        if (sload.writesDst())
            lane.ctx.setReg(sload.rd, value);
    }
    stats_.lanes_spawned += lanes_n;

    // Run the dependence chain: VR follows the first lane's control
    // flow and invalidates divergent lanes; it does not know the FLR,
    // so lanes run until the next occurrence of the striding load.
    LaneRunStats lr = executor_.run(lanes, hit.pc, 0, false, false,
                                    vir.now());
    stats_.prefetches += lr.prefetches;
    stats_.lanes_invalidated += lr.invalidated;

    // Delayed termination: runahead ends only when the entire chain's
    // accesses have been generated.
    Cycle exit = std::max(head_fill, lr.end_time);
    stats_.delayed_term_cycles += exit - head_fill;
    if (trace_sink_ && trace_sink_->enabled(TraceCat::Runahead))
        trace_sink_->runahead(exit, "exit", name(),
                              triggerKindName(kind), frontier.pc,
                              lanes_n, stats_.prefetches - pf_before);
    return exit;
}

} // namespace vrsim

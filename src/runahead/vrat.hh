/**
 * @file
 * Vector Register Allocation Table (paper §4.2.1, Fig. 4): maps each
 * architectural integer register of the subthread to either one shared
 * scalar physical register or a set of vector physical registers (one
 * per in-flight AVX-512 copy). Physical registers are shared with the
 * main thread, so the VRAT enforces the configured free-list budgets.
 */

#ifndef VRSIM_RUNAHEAD_VRAT_HH
#define VRSIM_RUNAHEAD_VRAT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/opcodes.hh"
#include "sim/logging.hh"

namespace vrsim
{

/**
 * The VRAT resource model. Lane *values* live in the engine's
 * functional lane contexts; this class models the register mapping
 * and free-list occupancy so vectorization stalls when physical
 * registers run out, as real hardware would.
 */
class Vrat
{
  public:
    /**
     * @param scalar_free  scalar physical registers available to the
     *                     subthread (beyond the main thread's needs)
     * @param vector_free  vector physical registers available
     * @param vector_regs  vector registers per architectural mapping
     *                     (16 in the paper: 16 x 8 lanes = 128)
     */
    Vrat(uint32_t scalar_free, uint32_t vector_free, uint32_t vector_regs)
        : scalar_budget_(scalar_free), vector_budget_(vector_free),
          vector_regs_(vector_regs)
    {
        reset();
    }

    /**
     * Initialize for a new subthread invocation: every architectural
     * register gets a fresh scalar physical register (decoupling the
     * subthread from the main thread's map).
     */
    void
    reset()
    {
        scalar_used_ = 0;
        vector_used_ = 0;
        failed_ = false;
        for (auto &m : map_) {
            m.vectorized = false;
            m.scalar_allocated = false;
        }
        // Fresh scalar copies of all architectural registers.
        for (auto &m : map_) {
            if (scalar_used_ < scalar_budget_) {
                ++scalar_used_;
                m.scalar_allocated = true;
            }
        }
    }

    /** Is the architectural register currently vectorized? */
    bool
    isVectorized(uint8_t reg) const
    {
        return reg != REG_NONE && map_[reg].vectorized;
    }

    /**
     * Vectorize the destination register: allocate vector_regs_
     * vector physical registers (paper: 16 AVX-512 registers).
     *
     * @return false if the free list is exhausted (the engine must
     *         stop expanding; tracked via failed()).
     */
    bool
    vectorizeDst(uint8_t reg)
    {
        panicIfNot(reg < NUM_ARCH_REGS, "bad register");
        Mapping &m = map_[reg];
        if (m.vectorized)
            return true;
        if (vector_used_ + vector_regs_ > vector_budget_) {
            failed_ = true;
            return false;
        }
        vector_used_ += vector_regs_;
        if (m.scalar_allocated) {
            --scalar_used_;          // freed on overwrite
            m.scalar_allocated = false;
        }
        m.vectorized = true;
        return true;
    }

    /**
     * A scalar instruction overwrites a vectorized destination (WAW in
     * the original code): rename back to a scalar physical register,
     * freeing the vector set.
     */
    bool
    scalarizeDst(uint8_t reg)
    {
        panicIfNot(reg < NUM_ARCH_REGS, "bad register");
        Mapping &m = map_[reg];
        if (m.vectorized) {
            vector_used_ -= vector_regs_;
            m.vectorized = false;
        }
        if (!m.scalar_allocated) {
            if (scalar_used_ >= scalar_budget_) {
                failed_ = true;
                return false;
            }
            ++scalar_used_;
            m.scalar_allocated = true;
        }
        return true;
    }

    uint32_t scalarUsed() const { return scalar_used_; }
    uint32_t vectorUsed() const { return vector_used_; }
    bool failed() const { return failed_; }

  private:
    struct Mapping
    {
        bool vectorized = false;
        bool scalar_allocated = false;
    };

    uint32_t scalar_budget_;
    uint32_t vector_budget_;
    uint32_t vector_regs_;
    uint32_t scalar_used_ = 0;
    uint32_t vector_used_ = 0;
    bool failed_ = false;
    std::array<Mapping, NUM_ARCH_REGS> map_{};
};

} // namespace vrsim

#endif // VRSIM_RUNAHEAD_VRAT_HH

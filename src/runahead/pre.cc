#include "runahead/pre.hh"

#include <algorithm>
#include <array>

#include "obs/stats_registry.hh"
#include "obs/trace.hh"
#include "sim/digest.hh"

namespace vrsim
{

void
PreStats::registerIn(StatsRegistry &reg) const
{
    reg.addCounter("pre.intervals", "PRE runahead episodes") +=
        intervals;
    reg.addCounter("pre.prefetches", "loads issued during PRE") +=
        prefetches;
    reg.addCounter("pre.skipped_dependent",
                   "loads skipped past the first indirection level") +=
        skipped_dependent;
}

Cycle
PreEngine::onFullRobStall(Cycle stall_start, Cycle head_fill,
                          const CpuState &frontier, TriggerKind kind)
{
    if (head_fill <= stall_start)
        return head_fill;
    // On a mispredict-induced stall the window holds wrong-path
    // µops; PRE's chain pre-execution would chase garbage, so it
    // only engages on genuine window-exhaustion stalls.
    if (kind == TriggerKind::BranchStall)
        return head_fill;
    ++stats_.intervals;
    const uint64_t pf_before = stats_.prefetches;
    if (trace_sink_ && trace_sink_->enabled(TraceCat::Runahead))
        trace_sink_->runahead(stall_start, "enter", name(), "window",
                              frontier.pc, 0, 0);

    // Runahead executes future instructions using the front-end's
    // delivery rate for the duration of the interval. We track
    // per-register value-ready times seeded at the stall start; a
    // load whose operands are not ready before the interval ends
    // cannot issue (dependent on an in-runahead miss), which models
    // PRE's first-level-of-indirection limit.
    CpuState ctx = frontier;
    std::array<Cycle, NUM_ARCH_REGS> ready{};
    ready.fill(stall_start);

    const Cycle interval_end = head_fill;
    const uint32_t width = cfg_.core.width;
    uint64_t walked = 0;

    // Everything below is transient pre-execution: the guard makes
    // any commit recorded inside it panic (see sim/digest.hh).
    ScopedSpeculation spec;

    while (!ctx.halted && walked < cfg_.runahead.pre_chain_cap) {
        // Front-end supply: instruction `walked` arrives at this time.
        Cycle fetch_time = stall_start + walked / width;
        if (fetch_time >= interval_end)
            break;

        StepInfo si = step(prog_, ctx, image_, true);
        ++walked;
        ++stats_.insts_examined;

        const Inst &inst = *si.inst;
        Cycle opready = fetch_time;
        auto use = [&](uint8_t r) {
            if (r != REG_NONE)
                opready = std::max(opready, ready[r]);
        };
        use(inst.rs1);
        use(inst.rs2);

        if (si.is_mem && !si.is_store) {
            if (opready >= interval_end) {
                // Dependent load: its inputs return after runahead
                // terminates; PRE cannot prefetch it.
                ++stats_.skipped_dependent;
                if (inst.writesDst())
                    ready[inst.rd] = opready + cfg_.dram.latency;
                continue;
            }
            // Issues at opready >= the triggering stall's dispatch
            // point — the calendar-horizon floor every requester
            // honours (docs/performance.md), which is what lets the
            // cycle-skipping calendars retire history behind the
            // core instead of being polled while idle.
            AccessResult res = hier_.access(si.addr, 0, opready, false,
                                            Requester::Runahead);
            ++stats_.prefetches;
            if (inst.writesDst())
                ready[inst.rd] = opready + res.latency;
        } else if (inst.writesDst()) {
            ready[inst.rd] = opready + 1;
        }
    }

    if (trace_sink_ && trace_sink_->enabled(TraceCat::Runahead))
        trace_sink_->runahead(head_fill, "exit", name(), "window",
                              frontier.pc, 0,
                              stats_.prefetches - pf_before);
    return head_fill;   // PRE exits when the blocking load returns
}

} // namespace vrsim

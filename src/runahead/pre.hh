/**
 * @file
 * Precise Runahead Execution (Naithani et al., HPCA 2020), the
 * scalar-runahead baseline: on a full-ROB stall it uses the free
 * front-end bandwidth to pre-execute the future instruction stream for
 * the duration of the runahead interval (until the blocking load
 * returns), prefetching the loads whose operands become available
 * within the interval — which is why it cannot reach past the first
 * level of indirection.
 */

#ifndef VRSIM_RUNAHEAD_PRE_HH
#define VRSIM_RUNAHEAD_PRE_HH

#include <cstdint>

#include "core/engine.hh"
#include "isa/interp.hh"
#include "mem/hierarchy.hh"
#include "sim/config.hh"

namespace vrsim
{

class StatsRegistry;

/** Statistics of the PRE engine. */
struct PreStats
{
    uint64_t intervals = 0;       //!< runahead episodes
    uint64_t insts_examined = 0;  //!< future µops walked
    uint64_t prefetches = 0;      //!< loads issued in runahead
    uint64_t skipped_dependent = 0; //!< loads whose inputs missed the
                                    //!< interval (>= 1st indirection)

    /** Register the reported statistics under "pre." paths. */
    void registerIn(StatsRegistry &reg) const;
};

/** The PRE engine. */
class PreEngine : public RunaheadEngine
{
  public:
    PreEngine(const SystemConfig &cfg, const Program &prog,
              MemoryImage &image, MemoryHierarchy &hier)
        : cfg_(cfg), prog_(prog), image_(image), hier_(hier)
    {
        cfg_.validate(false);
    }

    Cycle onFullRobStall(Cycle stall_start, Cycle head_fill,
                         const CpuState &frontier,
                         TriggerKind kind) override;

    const char *name() const override { return "PRE"; }

    const PreStats &stats() const { return stats_; }

  private:
    const SystemConfig &cfg_;
    const Program &prog_;
    MemoryImage &image_;
    MemoryHierarchy &hier_;
    PreStats stats_;
};

} // namespace vrsim

#endif // VRSIM_RUNAHEAD_PRE_HH

#include "runahead/lane_executor.hh"

#include <algorithm>

#include "obs/trace.hh"
#include "sim/digest.hh"

namespace vrsim
{

namespace
{

/**
 * Do all active lanes agree on the source values of @p inst? When
 * they do, the instruction is issued once as a scalar; when they
 * differ it occupies one VIR copy per 8 lanes.
 */
bool
sourcesUniform(const Inst &inst, const std::vector<Lane> &lanes,
               const LaneMask &mask)
{
    int first = -1;
    for (unsigned j = 0; j < lanes.size(); j++) {
        if (!mask.test(j) || lanes[j].done)
            continue;
        if (first < 0) {
            first = int(j);
            continue;
        }
        auto same = [&](uint8_t r) {
            return r == REG_NONE ||
                   lanes[j].ctx.regs[r] == lanes[first].ctx.regs[r];
        };
        if (!same(inst.rs1) || !same(inst.rs2) || !same(inst.rs3))
            return false;
    }
    return true;
}

} // namespace

LaneRunStats
LaneExecutor::run(std::vector<Lane> &lanes, uint32_t stride_pc,
                  uint32_t flr_pc, bool stop_at_flr, bool reconverge,
                  Cycle start_cycle, Vrat *vrat)
{
    LaneRunStats st;
    VectorIssueRegister vir(cfg_);
    vir.start(start_cycle);
    ReconvergenceStack stack(cfg_.reconv_stack_entries);

    panicIfNot(lanes.size() <= MAX_LANES, "too many lanes");

    LaneMask active;
    uint32_t pc = 0;
    bool have_pc = false;
    for (unsigned j = 0; j < lanes.size(); j++) {
        if (lanes[j].done)
            continue;
        active.set(j);
        if (!have_pc) {
            pc = lanes[j].ctx.pc;
            have_pc = true;
        } else {
            panicIfNot(lanes[j].ctx.pc == pc,
                       "lanes must share pc on entry");
        }
    }

    Cycle last_issue = start_cycle;

    // Forward-progress watchdog on the SIMT loop. Every iteration
    // either executes at least one lane instruction (bounded by
    // lanes x subthread_timeout), pops the bounded stack, or kills a
    // group, so this limit is unreachable unless the loop wedges; it
    // converts a simulator hang into a diagnosable HangError.
    const uint64_t step_limit =
        (uint64_t(lanes.size()) + 1) *
            (uint64_t(cfg_.subthread_timeout) + 2) * 4 +
        1024;
    uint64_t steps = 0;

    // Lane execution is transient by definition: the guard makes any
    // commit recorded inside it panic (see sim/digest.hh).
    ScopedSpeculation spec;

    while (true) {
        if (++steps > step_limit) {
            ProgressSnapshot snap;
            snap.where = "runahead.lanes";
            snap.pc = pc;
            snap.retired = st.insts;
            snap.cycles = vir.now();
            hang("lane executor exceeded its structural step bound "
                 "(" + std::to_string(step_limit) + ")",
                 std::move(snap));
        }
        // Refill the active group from the reconvergence stack.
        if (active.none()) {
            if (stack.empty())
                break;
            auto e = stack.pop();
            pc = e.pc;
            active = e.mask;
            for (unsigned j = 0; j < lanes.size(); j++)
                if (active.test(j) && lanes[j].done)
                    active.reset(j);
            continue;
        }

        if (pc >= prog_.size()) {
            // Ran off the program (speculative wild path): kill group.
            for (unsigned j = 0; j < lanes.size(); j++)
                if (active.test(j))
                    lanes[j].done = true;
            active.reset();
            continue;
        }

        const Inst &inst = prog_.at(pc);
        const bool vectorized = !sourcesUniform(inst, lanes, active);

        // VRAT bookkeeping: vector results need a fresh set of vector
        // physical registers; scalar overwrites of vectorized
        // registers rename back and free the set. An exhausted free
        // list stalls the in-order subthread until registers recycle
        // (we charge one vector-instruction round).
        if (vrat && inst.writesDst()) {
            if (vectorized) {
                if (!vrat->isVectorized(inst.rd) &&
                    !vrat->vectorizeDst(inst.rd)) {
                    st.vrat_stalls += cfg_.vector_regs;
                    vir.waitUntil(vir.now() + cfg_.vector_regs);
                    vrat->vectorizeDst(inst.rd);
                }
            } else if (vrat->isVectorized(inst.rd)) {
                vrat->scalarizeDst(inst.rd);
            }
        }

        Cycle t0 = vir.issue(active, vectorized);
        const uint64_t pf_before_step = st.prefetches;
        const uint32_t active_at_issue = uint32_t(active.count());

        // Execute all active lanes functionally and time their
        // memory accesses.
        uint32_t common_next = UINT32_MAX;
        bool divergent = false;
        for (unsigned j = 0; j < lanes.size(); j++) {
            if (!active.test(j))
                continue;
            Lane &lane = lanes[j];
            lane.ctx.pc = pc;
            StepInfo si = step(prog_, lane.ctx, image_, true);
            ++lane.insts;
            ++st.insts;

            if (si.is_mem && !si.is_store) {
                Cycle copy = vectorized ? vir.copyOf(j, active) : 0;
                // t0 >= the spawning stall's dispatch point: lane
                // traffic stays at or after the calendar horizon
                // (docs/performance.md), so the shared calendars can
                // retire history instead of being polled while idle.
                Cycle issue = std::max(t0 + copy, lane.ready);
                AccessResult res = hier_.access(si.addr, 0, issue,
                                                false,
                                                Requester::Runahead);
                lane.ready = issue + res.latency;
                last_issue = std::max(last_issue, issue);
                ++st.prefetches;
            }

            if (common_next == UINT32_MAX)
                common_next = si.next_pc;
            else if (si.next_pc != common_next)
                divergent = true;

            // Per-lane termination conditions.
            bool term = false;
            if (lane.ctx.halted)
                term = true;
            else if (stop_at_flr && flr_pc != 0 && pc == flr_pc &&
                     inst.isLoad())
                term = true;
            else if (si.next_pc == stride_pc && lane.insts > 0)
                term = true;
            else if (lane.insts >= cfg_.subthread_timeout)
                term = true;
            if (term) {
                lane.done = true;
                active.reset(j);
            }
        }

        if (tsink_ && tsink_->enabled(TraceCat::Lanes) &&
            st.prefetches > pf_before_step)
            tsink_->lane(t0, pc, active_at_issue,
                         uint32_t(st.prefetches - pf_before_step));

        if (active.none())
            continue;

        if (!divergent) {
            pc = common_next;
            continue;
        }

        ++st.divergences;
        if (!reconverge) {
            // VR semantics: follow the first active lane, invalidate
            // the rest.
            unsigned first = 0;
            while (first < lanes.size() && !active.test(first))
                ++first;
            uint32_t lead_pc = lanes[first].ctx.pc;
            for (unsigned j = first + 1; j < lanes.size(); j++) {
                if (active.test(j) && lanes[j].ctx.pc != lead_pc) {
                    lanes[j].done = true;
                    active.reset(j);
                    ++st.invalidated;
                }
            }
            pc = lead_pc;
            continue;
        }

        // DVR semantics: split by next pc, follow the first lane's
        // group, push the others.
        unsigned first = 0;
        while (first < lanes.size() && !active.test(first))
            ++first;
        uint32_t lead_pc = lanes[first].ctx.pc;
        // Group the non-leading lanes by destination pc.
        while (true) {
            uint32_t group_pc = UINT32_MAX;
            LaneMask group;
            for (unsigned j = 0; j < lanes.size(); j++) {
                if (!active.test(j) || lanes[j].ctx.pc == lead_pc)
                    continue;
                if (group_pc == UINT32_MAX)
                    group_pc = lanes[j].ctx.pc;
                if (lanes[j].ctx.pc == group_pc) {
                    group.set(j);
                    active.reset(j);
                }
            }
            if (group_pc == UINT32_MAX)
                break;
            if (!stack.push(group_pc, group)) {
                // Stack full: these lanes are dropped.
                for (unsigned j = 0; j < lanes.size(); j++) {
                    if (group.test(j)) {
                        lanes[j].done = true;
                        ++st.reconv_drops;
                    }
                }
            }
        }
        pc = lead_pc;
    }

    if (invariant_checks_) {
        // The loop exits only once the active group and the stack are
        // both drained: every pushed divergence group must have been
        // popped (drops never enter the stack).
        panicIfNot(stack.empty() && stack.pushes() == stack.pops(),
                   "reconvergence stack unbalanced at subthread end "
                   "(pushes=" + std::to_string(stack.pushes()) +
                       " pops=" + std::to_string(stack.pops()) + ")");
    }

    st.end_time = std::max(vir.now(), last_issue + 1);
    return st;
}

} // namespace vrsim

#include "runahead/dvr.hh"

#include <algorithm>

#include "obs/stats_registry.hh"
#include "obs/trace.hh"
#include "sim/digest.hh"

namespace vrsim
{

void
DvrStats::registerIn(StatsRegistry &reg) const
{
    reg.addCounter("dvr.discoveries", "Discovery Mode entries") +=
        discoveries;
    reg.addCounter("dvr.discovery_aborts",
                   "discoveries abandoned (no chain / timeout)") +=
        discovery_aborts;
    reg.addCounter("dvr.innermost_switches",
                   "Discovery retargets to an inner stride") +=
        innermost_switches;
    reg.addCounter("dvr.spawns", "vector subthread invocations") +=
        spawns;
    reg.addCounter("dvr.nested_spawns",
                   "NDM-expanded subthread invocations") += nested_spawns;
    reg.addCounter("dvr.lanes", "vector lanes spawned") += lanes_spawned;
    reg.addFormula(
        "dvr.mean_lanes",
        [](const StatsRegistry &r) {
            double s = r.value("dvr.spawns");
            return s ? r.value("dvr.lanes") / s : 0.0;
        },
        "mean lanes per subthread invocation");
    reg.addCounter("dvr.prefetches", "prefetches issued by DVR") +=
        prefetches;
    reg.addCounter("dvr.divergences", "SIMT lane divergence events") +=
        divergences;
    reg.addCounter("dvr.bound_limited",
                   "spawns clipped by the inferred loop bound") +=
        bound_limited;
    reg.addCounter("dvr.dedupe_skips",
                   "spawns skipped as already covered") += dedupe_skips;
}

DecoupledVectorRunahead::DecoupledVectorRunahead(
    const SystemConfig &cfg, const Program &prog, MemoryImage &image,
    MemoryHierarchy &hier, DvrFeatures features)
    : cfg_(cfg), prog_(prog), image_(image), hier_(hier),
      features_(features),
      rpt_(cfg.runahead.stride_entries,
           uint8_t(cfg.runahead.stride_confidence)),
      executor_(cfg_.runahead, prog, image, hier,
                cfg.invariant_checks),
      vrat_(cfg.core.int_phys_regs / 2, cfg.core.vec_phys_regs,
            cfg.runahead.vector_regs)
{
    cfg_.validate(false);
    rpt_.reset();
}

void
DecoupledVectorRunahead::onInstruction(const StepInfo &si,
                                       const CpuState &after,
                                       Cycle cycle)
{
    if (si.is_mem && !si.is_store && !si.inst->isPrefetch())
        rpt_.train(si.pc, si.addr);

    switch (mode_) {
      case Mode::Idle:
        maybeStartDiscovery(si, after, cycle);
        break;
      case Mode::Discovery:
        discoveryStep(si, after, cycle);
        break;
    }
}

void
DecoupledVectorRunahead::maybeStartDiscovery(const StepInfo &si,
                                             const CpuState &after,
                                             Cycle cycle)
{
    if (!si.is_mem || si.is_store || si.inst->isPrefetch())
        return;
    if (cycle < busy_until_)
        return;   // the subthread context is occupied
    const RptEntry *e = rpt_.predict(si.pc);
    if (!e)
        return;

    if (!features_.discovery) {
        // Fig. 8 "Offload": trigger a VR-style subthread immediately,
        // with the full 128 lanes and no chain/bound analysis.
        target_pc_ = si.pc;
        spawn(si, after, cycle);
        return;
    }

    ++stats_.discoveries;
    mode_ = Mode::Discovery;
    target_pc_ = si.pc;
    vtt_.init(si.inst->rd);
    lbd_.enter(after, si.pc);
    stride_seen_.clear();
    stride_seen_.insert(si.pc);
    discovery_insts_ = 0;
    saw_other_branch_ = false;
}

void
DecoupledVectorRunahead::discoveryStep(const StepInfo &si,
                                       const CpuState &after,
                                       Cycle cycle)
{
    if (++discovery_insts_ > cfg_.runahead.discovery_max_insts) {
        ++stats_.discovery_aborts;
        mode_ = Mode::Idle;
        return;
    }

    const Inst &inst = *si.inst;

    if (si.is_mem && !si.is_store) {
        if (si.pc == target_pc_) {
            // Reached the striding load again: Discovery complete;
            // the subthread spawns right here (§4.2).
            mode_ = Mode::Idle;
            spawn(si, after, cycle);
            return;
        }
        if (rpt_.predict(si.pc)) {
            if (stride_seen_.count(si.pc)) {
                // Seen the same stride pc twice before the target
                // recurred: it belongs to a more inner loop. Switch
                // Discovery to it (§4.1.1).
                ++stats_.innermost_switches;
                if (RptEntry *re = rpt_.find(si.pc))
                    re->innermost = true;
                target_pc_ = si.pc;
                vtt_.init(inst.rd);
                lbd_.enter(after, si.pc);
                stride_seen_.clear();
                stride_seen_.insert(si.pc);
                discovery_insts_ = 0;
                saw_other_branch_ = false;
                return;
            }
            stride_seen_.insert(si.pc);
        }
        // Dependent-load check: a load whose address registers are
        // tainted updates the FLR (§4.1.2).
        if (vtt_.isTainted(inst.rs1) || vtt_.isTainted(inst.rs2))
            lbd_.finalLoadSeen(si.pc);
    }

    vtt_.propagate(inst);

    if (inst.isCompare()) {
        lbd_.compareSeen(si.pc, inst);
    } else if (si.is_branch && inst.isCondBranch()) {
        bool sbb_before = lbd_.sbbSet();
        lbd_.branchSeen(si.pc, inst, uint32_t(inst.imm));
        // Footnote 1: other branches between FLR and the loop branch
        // mean lanes must explore the full iteration, not stop at FLR.
        if (lbd_.flr() != 0 && sbb_before == lbd_.sbbSet())
            saw_other_branch_ = true;
    }
}

uint64_t
DecoupledVectorRunahead::laneStartIndex(uint32_t pc, uint64_t cur_addr,
                                        int64_t stride) const
{
    auto it = next_addr_.find(pc);
    if (it == next_addr_.end() || stride == 0)
        return 1;
    int64_t diff = int64_t(it->second) - int64_t(cur_addr);
    int64_t k = diff / stride;
    if (k < 1 || k > int64_t(4 * MAX_LANES))
        return 1;
    return uint64_t(k);
}

void
DecoupledVectorRunahead::spawn(const StepInfo &si, const CpuState &after,
                               Cycle cycle)
{
    const RptEntry *entry = rpt_.predict(target_pc_);
    if (!entry)
        return;
    const uint64_t pf_before = stats_.prefetches;
    const int64_t stride = entry->stride;
    const uint32_t flr = features_.discovery ? lbd_.flr() : 0;

    if (features_.discovery && flr == 0) {
        // No dependent-load chain: the plain stride prefetcher
        // already covers this loop; DVR is not worth triggering.
        ++stats_.discovery_aborts;
        return;
    }

    uint64_t lanes_target = cfg_.runahead.max_lanes();
    std::optional<uint64_t> remaining;
    LoopBoundInfo info;
    if (features_.discovery) {
        info = lbd_.infer(after);
        remaining = LoopBoundDetector::remainingIterations(info, after);
        if (remaining) {
            if (*remaining < lanes_target) {
                lanes_target = *remaining;
                ++stats_.bound_limited;
            }
            if (features_.nested &&
                *remaining < cfg_.runahead.nested_trigger_lanes) {
                spawnNested(si, after, cycle, info, *remaining);
                return;
            }
        }
    }

    // Skip iterations already prefetched by earlier invocations.
    uint64_t k0 = laneStartIndex(target_pc_, si.addr, stride);
    if (k0 > lanes_target) {
        ++stats_.dedupe_skips;
        return;
    }
    uint64_t lanes_n =
        std::min<uint64_t>(lanes_target - (k0 - 1),
                           cfg_.runahead.max_lanes());
    if (lanes_n == 0) {
        ++stats_.dedupe_skips;
        return;
    }

    // Seed the lanes: vector gathers for the striding load.
    VectorIssueRegister vir(cfg_.runahead);
    vir.start(cycle + 1);
    LaneMask mask;
    for (uint64_t j = 0; j < lanes_n; j++)
        mask.set(j);
    Cycle gather0 = vir.issue(mask, true);

    vrat_.reset();
    const Inst &sload = *si.inst;
    if (sload.writesDst())
        vrat_.vectorizeDst(sload.rd);

    std::vector<Lane> lanes(lanes_n);
    uint64_t last_addr = si.addr;
    for (uint64_t j = 0; j < lanes_n; j++) {
        Lane &lane = lanes[j];
        lane.ctx = after;
        lane.ctx.pc = si.next_pc;
        uint64_t addr = uint64_t(int64_t(si.addr) +
                                 stride * int64_t(k0 + j));
        last_addr = addr;
        Cycle issue = gather0 + vir.copyOf(uint32_t(j), mask);
        AccessResult res = hier_.access(addr, 0, issue, false,
                                        Requester::Runahead);
        ++stats_.prefetches;
        lane.ready = issue + res.latency;
        uint64_t value = sload.op == Op::Ld32 ? image_.read32(addr)
                                              : image_.read64(addr);
        if (sload.writesDst())
            lane.ctx.setReg(sload.rd, value);
        // Advance the induction register to the lane's iteration so
        // non-chain address math stays consistent: the lane's address
        // is k0 + j stride steps ahead of the current iteration.
        if (info.valid && info.induction_reg != REG_NONE) {
            lane.ctx.regs[info.induction_reg] =
                after.regs[info.induction_reg] +
                uint64_t(info.increment) * (k0 + j);
        }
    }
    next_addr_[target_pc_] = uint64_t(int64_t(last_addr) + stride);

    ++stats_.spawns;
    stats_.lanes_spawned += lanes_n;
    if (trace_sink_ && trace_sink_->enabled(TraceCat::Runahead))
        trace_sink_->runahead(cycle, "enter", name(), "stride",
                              target_pc_, lanes_n, 0);

    bool stop_at_flr = flr != 0 && !saw_other_branch_;
    LaneRunStats lr = executor_.run(lanes, target_pc_, flr, stop_at_flr,
                                    features_.reconverge, vir.now(),
                                    &vrat_);
    stats_.prefetches += lr.prefetches;
    stats_.divergences += lr.divergences;
    busy_until_ = lr.end_time;
    if (trace_sink_ && trace_sink_->enabled(TraceCat::Runahead))
        trace_sink_->runahead(busy_until_, "exit", name(), "stride",
                              target_pc_, lanes_n,
                              stats_.prefetches - pf_before);
}

void
DecoupledVectorRunahead::spawnNested(const StepInfo &si,
                                     const CpuState &after, Cycle cycle,
                                     const LoopBoundInfo &info,
                                     uint64_t remaining)
{
    const uint32_t ilr_pc = target_pc_;   // Inner Load Register
    const RptEntry *inner = rpt_.predict(ilr_pc);
    if (!inner || info.branch_pc == 0) {
        ++stats_.ndm_fallbacks;
        return;
    }
    const uint64_t pf_before = stats_.prefetches;
    const int64_t istride = inner->stride;

    // NDM and both vectorization steps below are transient subthread
    // execution: the guard makes any commit recorded inside them
    // panic (see sim/digest.hh).
    ScopedSpeculation spec;

    // NDM: run the in-order subthread down the branch's not-taken
    // path, skipping the remaining inner-loop iterations (§4.3.1).
    CpuState ndm = after;
    ndm.pc = info.branch_pc + 1;
    // All NDM/outer/inner-lane accesses below issue at >= cycle, the
    // triggering stall's dispatch point: the calendar-horizon floor
    // (docs/performance.md) that lets the cycle-skipping calendars
    // retire history behind the core.
    Cycle t = cycle + 1;
    const Inst *outer_inst = nullptr;
    uint64_t outer_addr = 0;
    int64_t ostride = 0;
    for (uint32_t n = 0; n < cfg_.runahead.subthread_timeout &&
                         !ndm.halted; n++) {
        StepInfo s = step(prog_, ndm, image_, true);
        ++t;
        if (s.is_mem && !s.is_store) {
            AccessResult res = hier_.access(s.addr, 0, t, false,
                                            Requester::Runahead);
            ++stats_.prefetches;
            // The NDM subthread is in-order and scalar: it waits for
            // each of its own loads (these are loop-header values the
            // main thread touched recently, so they are usually
            // L1-resident).
            t += res.latency;
            const RptEntry *oe = rpt_.predict(s.pc);
            if (oe && s.pc < ilr_pc) {
                outer_inst = s.inst;
                outer_addr = s.addr;
                ostride = oe->stride;
                break;
            }
        }
    }

    if (!outer_inst) {
        // No outer striding load in range: fall back to vectorizing
        // the inner loop by the detected bound alone.
        ++stats_.ndm_fallbacks;
        uint64_t lanes_n = std::min<uint64_t>(
            std::max<uint64_t>(remaining, 1),
            cfg_.runahead.max_lanes());
        std::vector<Lane> lanes(lanes_n);
        VectorIssueRegister vir(cfg_.runahead);
        vir.start(cycle + 1);
        LaneMask mask;
        for (uint64_t j = 0; j < lanes_n; j++)
            mask.set(j);
        Cycle g0 = vir.issue(mask, true);
        const Inst &sload = *si.inst;
        for (uint64_t j = 0; j < lanes_n; j++) {
            Lane &lane = lanes[j];
            lane.ctx = after;
            lane.ctx.pc = si.next_pc;
            uint64_t addr = uint64_t(int64_t(si.addr) +
                                     istride * int64_t(j + 1));
            Cycle issue = g0 + vir.copyOf(uint32_t(j), mask);
            AccessResult res = hier_.access(addr, 0, issue, false,
                                            Requester::Runahead);
            ++stats_.prefetches;
            lane.ready = issue + res.latency;
            uint64_t v = sload.op == Op::Ld32 ? image_.read32(addr)
                                              : image_.read64(addr);
            if (sload.writesDst())
                lane.ctx.setReg(sload.rd, v);
        }
        ++stats_.spawns;
        stats_.lanes_spawned += lanes_n;
        if (trace_sink_ && trace_sink_->enabled(TraceCat::Runahead))
            trace_sink_->runahead(cycle, "enter", name(), "stride",
                                  ilr_pc, lanes_n, 0);
        LaneRunStats lr = executor_.run(lanes, ilr_pc, lbd_.flr(),
                                        !saw_other_branch_,
                                        features_.reconverge, vir.now());
        stats_.prefetches += lr.prefetches;
        stats_.divergences += lr.divergences;
        busy_until_ = lr.end_time;
        if (trace_sink_ && trace_sink_->enabled(TraceCat::Runahead))
            trace_sink_->runahead(busy_until_, "exit", name(), "stride",
                                  ilr_pc, lanes_n,
                                  stats_.prefetches - pf_before);
        return;
    }

    // First vectorization step: 16 outer lanes (§4.3.1), each walked
    // forward to the first iteration of the inner striding load.
    const uint32_t outer_lanes = cfg_.runahead.vector_regs;
    struct OuterLane
    {
        CpuState ctx;
        Cycle ready = 0;
        uint64_t inner_start = 0;
        uint64_t inner_iters = 0;
        bool ok = false;
    };
    std::vector<OuterLane> outers(outer_lanes);
    for (uint32_t k = 0; k < outer_lanes; k++) {
        OuterLane &ol = outers[k];
        ol.ctx = ndm;
        uint64_t addr = uint64_t(int64_t(outer_addr) +
                                 ostride * int64_t(k + 1));
        AccessResult res = hier_.access(addr, 0, t + k, false,
                                        Requester::Runahead);
        ++stats_.prefetches;
        ol.ready = t + k + res.latency;
        uint64_t v = outer_inst->op == Op::Ld32 ? image_.read32(addr)
                                                : image_.read64(addr);
        if (outer_inst->writesDst())
            ol.ctx.setReg(outer_inst->rd, v);

        // Walk the dependents of the outer load to the inner stride.
        for (uint32_t n = 0; n < cfg_.runahead.subthread_timeout &&
                             !ol.ctx.halted; n++) {
            if (ol.ctx.pc == ilr_pc) {
                const Inst &iload = prog_.at(ilr_pc);
                auto rd = [&](uint8_t r) { return ol.ctx.reg(r); };
                ol.inner_start = effectiveAddress(iload, rd);
                // Per-lane loop bound via the LCR registers (§4.3.1).
                if (info.valid) {
                    int64_t cur =
                        int64_t(ol.ctx.regs[info.induction_reg]);
                    int64_t bound =
                        int64_t(ol.ctx.regs[info.bound_reg]);
                    int64_t rem = info.increment
                        ? (bound - cur) / info.increment : 0;
                    ol.inner_iters = rem > 0 ? uint64_t(rem) : 0;
                } else {
                    ol.inner_iters = 1;
                }
                ol.ok = ol.inner_iters > 0;
                break;
            }
            StepInfo s = step(prog_, ol.ctx, image_, true);
            if (s.is_mem && !s.is_store) {
                Cycle issue = std::max(t, ol.ready);
                AccessResult res2 = hier_.access(s.addr, 0, issue,
                                                 false,
                                                 Requester::Runahead);
                ++stats_.prefetches;
                ol.ready = issue + res2.latency;
            }
        }
    }

    // Second step (§4.3.2): collect up to 128 inner iterations across
    // the outer lanes and vectorize the inner chain over all of them.
    const Inst &iload = prog_.at(ilr_pc);
    std::vector<Lane> lanes;
    lanes.reserve(cfg_.runahead.max_lanes());
    Cycle t2 = t;
    for (const OuterLane &ol : outers) {
        if (!ol.ok)
            continue;
        for (uint64_t m = 0; m < ol.inner_iters &&
                             lanes.size() < cfg_.runahead.max_lanes();
             m++) {
            Lane lane;
            lane.ctx = ol.ctx;
            lane.ctx.pc = ilr_pc + 1;
            uint64_t addr = uint64_t(int64_t(ol.inner_start) +
                                     istride * int64_t(m));
            Cycle issue = std::max(t2++, ol.ready);
            AccessResult res = hier_.access(addr, 0, issue, false,
                                            Requester::Runahead);
            ++stats_.prefetches;
            lane.ready = issue + res.latency;
            uint64_t v = iload.op == Op::Ld32 ? image_.read32(addr)
                                              : image_.read64(addr);
            if (iload.writesDst())
                lane.ctx.setReg(iload.rd, v);
            if (info.valid) {
                lane.ctx.regs[info.induction_reg] =
                    ol.ctx.regs[info.induction_reg] +
                    uint64_t(info.increment) * m;
            }
            lanes.push_back(lane);
        }
        if (lanes.size() >= cfg_.runahead.max_lanes())
            break;
    }

    if (lanes.empty()) {
        ++stats_.ndm_fallbacks;
        return;
    }

    ++stats_.spawns;
    ++stats_.nested_spawns;
    stats_.lanes_spawned += lanes.size();
    if (trace_sink_ && trace_sink_->enabled(TraceCat::Runahead))
        trace_sink_->runahead(cycle, "enter", name(), "nested",
                              ilr_pc, lanes.size(), 0);
    LaneRunStats lr = executor_.run(lanes, ilr_pc, lbd_.flr(),
                                    !saw_other_branch_,
                                    features_.reconverge, t2);
    stats_.prefetches += lr.prefetches;
    stats_.divergences += lr.divergences;
    busy_until_ = lr.end_time;
    if (trace_sink_ && trace_sink_->enabled(TraceCat::Runahead))
        trace_sink_->runahead(busy_until_, "exit", name(), "nested",
                              ilr_pc, lanes.size(),
                              stats_.prefetches - pf_before);
}

} // namespace vrsim

#include "runahead/hardware_budget.hh"

namespace vrsim
{

void
printHardwareBudget(std::ostream &os, const HardwareBudget &b)
{
    os << "stride detector   " << b.stride_detector_bytes << " B\n"
       << "VRAT              " << b.vrat_bytes << " B\n"
       << "VIR               " << b.vir_bytes << " B\n"
       << "front-end buffer  " << b.frontend_buffer_bytes << " B\n"
       << "reconv. stack     " << b.reconv_stack_bytes << " B\n"
       << "FLR               " << b.flr_bytes << " B\n"
       << "LCR               " << b.lcr_bytes << " B\n"
       << "loop-bound det.   " << b.loop_bound_bytes << " B\n"
       << "taint tracker     " << b.taint_bytes << " B\n"
       << "NDM (IR+ILR)      " << b.ndm_bytes << " B\n"
       << "total             " << b.total() << " B\n";
}

} // namespace vrsim

/**
 * @file
 * Hardware overhead accounting (paper §4.4): computes the storage cost
 * in bytes of every DVR structure from the configuration. With the
 * paper's parameters the total is 1139 bytes.
 */

#ifndef VRSIM_RUNAHEAD_HARDWARE_BUDGET_HH
#define VRSIM_RUNAHEAD_HARDWARE_BUDGET_HH

#include <cstdint>
#include <ostream>

#include "sim/config.hh"

namespace vrsim
{

/** Per-structure storage budget in bits/bytes. */
struct HardwareBudget
{
    uint64_t stride_detector_bytes = 0;
    uint64_t vrat_bytes = 0;
    uint64_t vir_bytes = 0;
    uint64_t frontend_buffer_bytes = 0;
    uint64_t reconv_stack_bytes = 0;
    uint64_t flr_bytes = 0;
    uint64_t lcr_bytes = 0;
    uint64_t loop_bound_bytes = 0;
    uint64_t taint_bytes = 0;
    uint64_t ndm_bytes = 0;   //!< IR + ILR (+ SBB bit, rounded in)

    uint64_t
    total() const
    {
        return stride_detector_bytes + vrat_bytes + vir_bytes +
               frontend_buffer_bytes + reconv_stack_bytes + flr_bytes +
               lcr_bytes + loop_bound_bytes + taint_bytes + ndm_bytes;
    }
};

/**
 * Compute the budget for a configuration, following the paper's §4.4
 * accounting (bit widths per field, rounded as in the paper).
 *
 * @param cfg            runahead configuration (table geometries)
 * @param arch_regs      architectural integer registers (16 for the
 *                       paper's x86 accounting)
 */
inline HardwareBudget
computeHardwareBudget(const RunaheadConfig &cfg, unsigned arch_regs = 16)
{
    HardwareBudget b;

    // Stride detector: 48b PC + 48b last addr + 16b stride + 2b ctr +
    // 1b innermost = 115 bits per entry.
    b.stride_detector_bytes = cfg.stride_entries * 115 / 8;

    // VRAT: 16 entries x 16 register ids x 9 bits.
    b.vrat_bytes = arch_regs * cfg.vector_regs * 9 / 8;

    // VIR: 128b mask + 16b issued + 16b executed + 64b uop/imm +
    // 9x16 dst + 10x16 src1 + 10x16 src2 = 688 bits.
    b.vir_bytes = (cfg.max_lanes() + 16 + 16 + 64 +
                   9 * cfg.vector_regs + 10 * cfg.vector_regs +
                   10 * cfg.vector_regs) / 8;

    // Front-end buffer: 8 micro-ops x 8 bytes.
    b.frontend_buffer_bytes = cfg.frontend_buffer_uops * 8;

    // Reconvergence stack: 8 entries x (48b PC + 128b mask) = 176b,
    // i.e. 22 bytes each (the paper quotes 176 bytes total).
    b.reconv_stack_bytes =
        cfg.reconv_stack_entries * (48 + cfg.max_lanes()) / 8;

    b.flr_bytes = 6;           // one 48-bit load PC
    b.lcr_bytes = 2;           // two register ids

    // Loop-bound detector: two register-map checkpoints of
    // 16 x 8-bit ids plus two instruction registers = 48 bytes.
    b.loop_bound_bytes = 2 * arch_regs * 8 / 8 + 16;

    b.taint_bytes = arch_regs / 8;   // one bit per integer register

    // NDM: IR (7 bits) + ILR (6 bytes); SBB's single bit rides along
    // in the IR byte.
    b.ndm_bytes = 1 + 6;

    return b;
}

/** Print a §4.4-style breakdown. */
void printHardwareBudget(std::ostream &os, const HardwareBudget &b);

} // namespace vrsim

#endif // VRSIM_RUNAHEAD_HARDWARE_BUDGET_HH

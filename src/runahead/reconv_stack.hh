/**
 * @file
 * GPU-style reconvergence stack (paper §4.2.3, Fig. 6): entries of
 * (PC, 128-bit lane mask). On divergence the lanes are split by their
 * next PC; the first group executes to the termination point, then the
 * stack pops and execution proceeds with the next group.
 */

#ifndef VRSIM_RUNAHEAD_RECONV_STACK_HH
#define VRSIM_RUNAHEAD_RECONV_STACK_HH

#include <bitset>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace vrsim
{

/**
 * Maximum scalar-equivalent lanes per DVR invocation the simulator
 * supports. The paper's configuration uses 128 (16 vector registers x
 * 8 lanes); 256 enables the wider-DVR design point discussed in its
 * §6.1 (NAS-CG/NAS-IS would need 256-element DVR to reach Oracle).
 */
constexpr unsigned MAX_LANES = 256;

/** Lane mask covering up to MAX_LANES lanes. */
using LaneMask = std::bitset<MAX_LANES>;

/** The reconvergence stack. */
class ReconvergenceStack
{
  public:
    struct Entry
    {
        uint32_t pc = 0;
        LaneMask mask;
    };

    explicit ReconvergenceStack(uint32_t capacity = 8)
        : capacity_(capacity)
    {}

    bool empty() const { return stack_.empty(); }
    size_t depth() const { return stack_.size(); }

    /**
     * Push a divergent group. If the stack is full the group's lanes
     * are dropped (masked off), which only loses prefetch coverage —
     * runahead execution is transient so this is safe.
     *
     * @return true if pushed, false if dropped for capacity
     */
    bool
    push(uint32_t pc, const LaneMask &mask)
    {
        if (stack_.size() >= capacity_) {
            ++drops_;
            return false;
        }
        stack_.push_back({pc, mask});
        ++pushes_;
        return true;
    }

    /** Pop the next group to execute. */
    Entry
    pop()
    {
        panicIfNot(!stack_.empty(), "pop from empty reconvergence stack");
        Entry e = stack_.back();
        stack_.pop_back();
        ++pops_;
        return e;
    }

    uint64_t drops() const { return drops_; }
    uint32_t capacity() const { return capacity_; }

    // Lifetime balance counters for the invariant check at the end of
    // a lane-executor run: every pushed group must eventually be
    // popped (the stack drains before the subthread terminates).
    uint64_t pushes() const { return pushes_; }
    uint64_t pops() const { return pops_; }

    void clear() { stack_.clear(); }

  private:
    uint32_t capacity_;
    std::vector<Entry> stack_;
    uint64_t drops_ = 0;
    uint64_t pushes_ = 0;
    uint64_t pops_ = 0;
};

} // namespace vrsim

#endif // VRSIM_RUNAHEAD_RECONV_STACK_HH

/**
 * @file
 * The Loop-Bound Detector (paper §4.1.3): Final-Load Register (FLR),
 * Last-Compare Register (LCR), Seen-Branch Bit (SBB) and two
 * architectural-register checkpoints, inferring how many iterations
 * remain in the inner loop so the vector subthread does not fetch
 * out-of-bounds data.
 */

#ifndef VRSIM_RUNAHEAD_LOOP_BOUND_HH
#define VRSIM_RUNAHEAD_LOOP_BOUND_HH

#include <array>
#include <cstdint>
#include <optional>

#include "isa/interp.hh"

namespace vrsim
{

/** Result of loop-bound inference at the end of Discovery Mode. */
struct LoopBoundInfo
{
    bool valid = false;       //!< a (bound, increment) pair was matched
    uint8_t induction_reg = REG_NONE; //!< the register that changes
    uint8_t bound_reg = REG_NONE;     //!< the register that stays fixed
    int64_t increment = 0;    //!< per-iteration induction delta
    uint64_t bound_value = 0; //!< loop bound (constant input value)
    uint32_t branch_pc = 0;   //!< the backward branch
    uint32_t loop_head_pc = 0; //!< its taken destination
};

/** The Loop-Bound Detector state machine, driven by Discovery Mode. */
class LoopBoundDetector
{
  public:
    /** Begin Discovery: checkpoint the register file. */
    void
    enter(const CpuState &state, uint32_t stride_pc)
    {
        entry_regs_ = state.regs;
        stride_pc_ = stride_pc;
        flr_ = 0;
        sbb_ = false;
        lcr_valid_ = false;
        lcr_rd_ = REG_NONE;
        lcr_rs1_ = REG_NONE;
        lcr_rs2_ = REG_NONE;
        branch_pc_ = 0;
        loop_head_pc_ = 0;
    }

    /** A tainted-input load updated the FLR: restart LCR/SBB search. */
    void
    finalLoadSeen(uint32_t pc)
    {
        flr_ = pc;
        sbb_ = false;
        lcr_valid_ = false;
    }

    /** Observe a compare instruction during Discovery Mode. */
    void
    compareSeen(uint32_t pc, const Inst &inst)
    {
        (void)pc;
        if (sbb_)
            return;
        lcr_rd_ = inst.rd;
        lcr_rs1_ = inst.rs1;
        lcr_rs2_ = inst.rs2;
        lcr_valid_ = true;
    }

    /**
     * Observe a conditional branch. A backward branch (taken target
     * at or before the striding load) sourced by the last compare
     * locks the LCR (sets the SBB).
     */
    void
    branchSeen(uint32_t pc, const Inst &inst, uint32_t taken_dest)
    {
        if (sbb_ || !lcr_valid_)
            return;
        if (inst.rs1 != lcr_rd_)
            return;
        if (taken_dest > stride_pc_)
            return;
        sbb_ = true;
        branch_pc_ = pc;
        loop_head_pc_ = taken_dest;
    }

    /** FLR value (0 = no dependent load chain found). */
    uint32_t flr() const { return flr_; }
    bool sbbSet() const { return sbb_; }
    uint8_t lcrRs1() const { return lcr_rs1_; }
    uint8_t lcrRs2() const { return lcr_rs2_; }

    /**
     * End of Discovery Mode: compare the entry checkpoint with the
     * exit state. If exactly one LCR input changed, the constant one
     * is the bound and the delta of the changing one the increment.
     */
    LoopBoundInfo
    infer(const CpuState &exit_state) const
    {
        LoopBoundInfo info;
        info.branch_pc = branch_pc_;
        info.loop_head_pc = loop_head_pc_;
        if (!sbb_ || lcr_rs1_ == REG_NONE)
            return info;

        auto delta = [&](uint8_t r) -> int64_t {
            if (r == REG_NONE || r >= NUM_ARCH_REGS)
                return 0;
            return int64_t(exit_state.regs[r]) - int64_t(entry_regs_[r]);
        };
        int64_t d1 = delta(lcr_rs1_);
        int64_t d2 = lcr_rs2_ == REG_NONE ? 0 : delta(lcr_rs2_);

        uint8_t changing = REG_NONE, constant = REG_NONE;
        if (d1 != 0 && d2 == 0) {
            changing = lcr_rs1_;
            constant = lcr_rs2_;
        } else if (d1 == 0 && d2 != 0 && lcr_rs2_ != REG_NONE) {
            changing = lcr_rs2_;
            constant = lcr_rs1_;
        } else {
            return info;   // no unique (constant, changing) pair
        }

        info.valid = true;
        info.induction_reg = changing;
        info.bound_reg = constant;
        info.increment = changing == lcr_rs1_ ? d1 : d2;
        info.bound_value = constant == REG_NONE
            ? 0 : exit_state.regs[constant];
        return info;
    }

    /**
     * Remaining iterations given the current induction value; empty
     * when inference failed (caller falls back to the 128 cap).
     */
    static std::optional<uint64_t>
    remainingIterations(const LoopBoundInfo &info,
                        const CpuState &state)
    {
        if (!info.valid || info.increment == 0)
            return std::nullopt;
        if (info.induction_reg >= NUM_ARCH_REGS ||
            info.bound_reg >= NUM_ARCH_REGS) {
            return std::nullopt;
        }
        int64_t cur = int64_t(state.regs[info.induction_reg]);
        int64_t bound = int64_t(state.regs[info.bound_reg]);
        int64_t remaining = (bound - cur) / info.increment;
        if (remaining < 0)
            remaining = 0;
        return uint64_t(remaining);
    }

  private:
    std::array<uint64_t, NUM_ARCH_REGS> entry_regs_{};
    uint32_t stride_pc_ = 0;
    uint32_t flr_ = 0;
    bool sbb_ = false;
    bool lcr_valid_ = false;
    uint8_t lcr_rd_ = REG_NONE;
    uint8_t lcr_rs1_ = REG_NONE;
    uint8_t lcr_rs2_ = REG_NONE;
    uint32_t branch_pc_ = 0;
    uint32_t loop_head_pc_ = 0;
};

} // namespace vrsim

#endif // VRSIM_RUNAHEAD_LOOP_BOUND_HH

#include "driver/plan.hh"

#include <csignal>

#include "driver/report.hh"
#include "sim/parse.hh"

namespace vrsim
{

const char *
injectKindName(InjectKind k)
{
    switch (k) {
      case InjectKind::None: return "none";
      case InjectKind::Fatal: return "fatal";
      case InjectKind::Panic: return "panic";
      case InjectKind::Hang: return "hang";
      case InjectKind::Diverge: return "diverge";
      case InjectKind::Segv: return "segv";
      case InjectKind::Oom: return "oom";
      case InjectKind::Spin: return "spin";
      case InjectKind::ExitCode: return "exit";
      case InjectKind::KillSelf: return "killself";
    }
    panic("unknown InjectKind");
}

InjectKind
injectKindFromName(const std::string &name)
{
    static const InjectKind all[] = {
        InjectKind::Fatal,    InjectKind::Panic,
        InjectKind::Hang,     InjectKind::Diverge,
        InjectKind::Segv,     InjectKind::Oom,
        InjectKind::Spin,     InjectKind::ExitCode,
        InjectKind::KillSelf,
    };
    std::string valid;
    for (InjectKind k : all) {
        if (injectKindName(k) == name)
            return k;
        if (!valid.empty())
            valid += ", ";
        valid += injectKindName(k);
    }
    fatal("unknown failure kind '" + name + "' (valid: " + valid + ")");
}

InjectKind
injectKindParse(const std::string &spec, uint32_t &arg)
{
    arg = 0;
    size_t colon = spec.find(':');
    InjectKind kind = injectKindFromName(spec.substr(0, colon));
    bool takes_arg =
        kind == InjectKind::ExitCode || kind == InjectKind::KillSelf;
    if (colon == std::string::npos) {
        if (takes_arg)
            fatal("failure kind '" + spec + "' needs an argument (" +
                  std::string(injectKindName(kind)) + ":N)");
        return kind;
    }
    if (!takes_arg)
        fatal("failure kind '" + std::string(injectKindName(kind)) +
              "' takes no argument (got '" + spec + "')");
    arg = parseU32("--inject-fail " + std::string(injectKindName(kind)),
                   spec.substr(colon + 1).c_str());
    if (kind == InjectKind::ExitCode && arg > 255)
        fatal("exit:N exit code must be 0..255, got " +
              std::to_string(arg));
    if (kind == InjectKind::KillSelf) {
        if (arg == 0 || arg > 64)
            fatal("killself:SIG signal must be 1..64, got " +
                  std::to_string(arg));
        // A stop signal is not a death: the child would sit with its
        // pipes open consuming no CPU until the supervisor's stopped-
        // child sweep SIGKILLs it, which tests nothing useful.
        if (arg == SIGSTOP || arg == SIGTSTP || arg == SIGTTIN ||
            arg == SIGTTOU)
            fatal("killself:SIG rejects stop signals (signal " +
                  std::to_string(arg) + " would suspend the cell, "
                  "not kill it)");
    }
    return kind;
}

bool
injectKindIsProcessGrade(InjectKind k)
{
    switch (k) {
      case InjectKind::Segv:
      case InjectKind::Oom:
      case InjectKind::Spin:
      case InjectKind::ExitCode:
      case InjectKind::KillSelf:
        return true;
      default:
        return false;
    }
}

std::string
RunPoint::id() const
{
    std::string s = spec + ":" + column;
    if (!variant.empty())
        s += ":" + variant;
    return s;
}

RunPlan &
RunPlan::add(std::vector<std::string> specs,
             std::vector<TechColumn> columns,
             std::vector<ConfigVariant> variants)
{
    if (variants.empty())
        variants.push_back(ConfigVariant::base());
    grids_.push_back(Grid{std::move(specs), std::move(columns),
                          std::move(variants)});
    return *this;
}

std::vector<RunPoint>
RunPlan::points() const
{
    std::vector<RunPoint> pts;
    pts.reserve(size());
    for (const Grid &g : grids_) {
        for (const auto &spec : g.specs) {
            for (const TechColumn &col : g.columns) {
                for (const ConfigVariant &var : g.variants) {
                    RunPoint p;
                    p.spec = spec;
                    p.technique = col.tech;
                    p.column = col.label;
                    p.variant = var.label;
                    p.features = col.features;
                    p.cfg = base_;
                    if (var.tweak)
                        var.tweak(p.cfg);
                    p.gscale = gscale_;
                    p.hscale = hscale_;
                    p.max_insts = roi_ + warmup_;
                    p.warmup = warmup_;
                    p.sampling = sampling_;
                    p.inject_fail =
                        inject_fail_ && *inject_fail_ == col.tech;
                    if (p.inject_fail) {
                        p.inject_kind = inject_kind_;
                        p.inject_arg = inject_arg_;
                    }
                    pts.push_back(std::move(p));
                }
            }
        }
    }
    return pts;
}

size_t
RunPlan::size() const
{
    size_t n = 0;
    for (const Grid &g : grids_)
        n += g.specs.size() * g.columns.size() * g.variants.size();
    return n;
}

ResultTable::ResultTable(std::vector<RunPoint> points,
                         std::vector<SimResult> results)
    : points_(std::move(points)), results_(std::move(results))
{
    panicIfNot(points_.size() == results_.size(),
               "result table: points/results size mismatch");
    for (size_t i = 0; i < points_.size(); i++) {
        const RunPoint &p = points_[i];
        bool inserted =
            index_.emplace(cellKey(p.spec, p.column, p.variant), i)
                .second;
        panicIfNot(inserted, "result table: duplicate point " + p.id());
    }
}

std::string
ResultTable::cellKey(const std::string &spec, const std::string &column,
                     const std::string &variant)
{
    return spec + "\x1f" + column + "\x1f" + variant;
}

const SimResult *
ResultTable::find(const std::string &spec, const std::string &column,
                  const std::string &variant) const
{
    auto it = index_.find(cellKey(spec, column, variant));
    return it == index_.end() ? nullptr : &results_[it->second];
}

const SimResult &
ResultTable::at(const std::string &spec, const std::string &column,
                const std::string &variant) const
{
    const SimResult *r = find(spec, column, variant);
    if (!r)
        panic("result table: no point " + spec + ":" + column +
              (variant.empty() ? "" : ":" + variant));
    return *r;
}

size_t
ResultTable::failures() const
{
    size_t n = 0;
    for (const SimResult &r : results_)
        if (!r.ok())
            n++;
    return n;
}

void
ResultTable::writeCsv(std::ostream &os) const
{
    CsvWriter writer(os);
    for (size_t i = 0; i < results_.size(); i++)
        writer.row(results_[i], points_[i].id());
}

} // namespace vrsim

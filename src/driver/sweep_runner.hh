/**
 * @file
 * Parallel, fault-isolated executor for RunPlans: a worker pool runs
 * guarded grid points concurrently (VRSIM_JOBS / --jobs, default 1),
 * shares one workload cache so each spec is built exactly once per
 * process, streams per-point progress to stderr, and returns results
 * in plan order — byte-identical output regardless of job count.
 *
 * Three robustness layers ride on top (see docs/robustness.md):
 *  - differential checking (check_digests): every technique column's
 *    committed-state digest is compared against its spec's OoO
 *    baseline column; a mismatch turns that cell's status into
 *    SimStatus::Diverged with the first mismatching interval named;
 *  - crash-repro bundles (repro_dir): every failed cell (fatal,
 *    panic, hang, diverged) is serialized as a self-contained JSON
 *    bundle that `vrsim --replay` re-runs in isolation;
 *  - resumable sweeps (checkpoint/resume): completed cells are
 *    appended to a journal as they finish; a resumed sweep restores
 *    them and only runs the remainder, producing a byte-identical
 *    final table at any job count.
 */

#ifndef VRSIM_DRIVER_SWEEP_RUNNER_HH
#define VRSIM_DRIVER_SWEEP_RUNNER_HH

#include "driver/plan.hh"
#include "obs/stats_registry.hh"
#include "rt/chaos.hh"
#include "workloads/workload_cache.hh"

namespace vrsim
{

class TraceSink;

/**
 * How each grid point is executed:
 *  - Thread: in a worker thread of this process (the default; fastest,
 *    but a SIGSEGV/OOM in any cell kills the whole sweep);
 *  - Process: in a forked child per cell (rt/cell_supervisor.hh), so
 *    signal deaths, runaway allocations, and wedged cells become
 *    Crashed/TimedOut rows while the parent — and the journal — live
 *    on. All-green sweeps produce byte-identical tables either way.
 */
enum class Isolation : uint8_t
{
    Thread,
    Process,
};

/** Printable isolation name ("thread", "process"). */
const char *isolationName(Isolation i);

/** Parse an isolation mode; fatal() on unknown names. */
Isolation isolationFromName(const std::string &name);

/** Knobs for one sweep execution. */
struct SweepOptions
{
    /**
     * Worker threads. 0 = resolve from the VRSIM_JOBS environment
     * variable (default 1; VRSIM_JOBS=0 means hardware concurrency).
     */
    unsigned jobs = 0;

    /** Stream one "[done/total] id status" line per point to stderr. */
    bool progress = true;

    /** Workload cache to share; null = the process-wide cache. */
    WorkloadCache *cache = nullptr;

    /**
     * Differential oracle: collect a committed-state digest for every
     * point and compare each technique column against its spec's OoO
     * baseline column (same spec and variant). Requires the plan to
     * contain an OoO column for every (spec, variant); fatal()
     * otherwise. Mismatching cells get SimStatus::Diverged.
     */
    bool check_digests = false;

    /** When nonempty, write a crash-repro bundle for every failed
     *  cell into this directory. */
    std::string repro_dir;

    /** When nonempty, append completed cells to this journal file. */
    std::string checkpoint;

    /**
     * Restore completed cells from `checkpoint` before running
     * (fatal() if the journal belongs to a different plan) and only
     * run the rest. Requires `checkpoint` to be set.
     */
    bool resume = false;

    /**
     * Cycle-trace sink attached to every executed point
     * (obs/trace.hh). The sink is a single shared stream, so tracing
     * forces jobs = 1 (with a warning) to keep the event order
     * deterministic. Statistics and digests are unaffected.
     */
    TraceSink *trace = nullptr;

    // ---- process isolation (--isolation process) ----

    /** Execution backend; see Isolation. VRSIM_ISOLATION / --isolation. */
    Isolation isolation = Isolation::Thread;

    /** Wall-clock deadline per cell attempt in ms; 0 = none
     *  (--cell-timeout, VRSIM_CELL_TIMEOUT in seconds). */
    uint64_t cell_timeout_ms = 0;

    /** RLIMIT_AS per cell in MiB; 0 = none (--cell-mem-mb). Do not
     *  combine with ASan builds (rt/subprocess.hh). */
    uint64_t cell_mem_mb = 0;

    /** RLIMIT_CPU per cell in seconds; 0 = none (--cell-cpu-s). */
    uint64_t cell_cpu_s = 0;

    /** Extra attempts after a process-grade cell death (--retries,
     *  VRSIM_RETRIES). Guarded in-taxonomy failures (fatal, panic,
     *  hang, diverged) are never retried. */
    unsigned retries = 0;

    /** First retry delay in ms, doubling per retry (--backoff-ms). */
    uint64_t backoff_ms = 100;

    /** Chaos fault assignment (--chaos SEED:RATE); requires process
     *  isolation. */
    ChaosPolicy chaos;

    /** Test knob: a point's own process-grade fault only fires on
     *  attempts < inject_attempts (rt/cell_supervisor.hh). */
    unsigned inject_attempts = ~0u;
};

class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {}) : opts_(opts) {}

    /**
     * Execute every point of @p plan, fault-isolated: a fatal/panic/
     * hang point becomes a status-carrying result (and a warn line)
     * while its siblings run to completion. Deterministic: the result
     * table is in plan order and each point's simulation is
     * single-threaded and seeded per point, so any job count produces
     * identical tables.
     */
    ResultTable run(const RunPlan &plan);

    /**
     * Run one already-resolved point (bypasses the pool; tests and
     * --replay). Honors the point's injected-failure kind, including
     * Diverge (runs with digest collection and deterministically
     * poisons the digest). @p trace, when non-null, receives a meta
     * event for the point followed by its cycle-level events.
     */
    static SimResult runPoint(const RunPoint &point,
                              WorkloadCache &cache,
                              TraceSink *trace = nullptr);

    /**
     * Worker count the environment asks for: strict-parsed VRSIM_JOBS
     * (absent -> @p dflt, 0 -> hardware concurrency).
     */
    static unsigned jobsFromEnv(unsigned dflt = 1);

    /**
     * Sweep-level telemetry of the last run(): sweep.cells.retried /
     * sweep.cells.crashed / sweep.cells.timed_out counters and the
     * sweep.backoff_ms gauge. Populated (with zeros included) only
     * for process-isolation sweeps; empty otherwise so thread-mode
     * stats output is unchanged.
     */
    const StatsRegistry &stats() const { return stats_; }

  private:
    SweepOptions opts_;
    StatsRegistry stats_;
};

} // namespace vrsim

#endif // VRSIM_DRIVER_SWEEP_RUNNER_HH

/**
 * @file
 * Parallel, fault-isolated executor for RunPlans: a worker pool runs
 * guarded grid points concurrently (VRSIM_JOBS / --jobs, default 1),
 * shares one workload cache so each spec is built exactly once per
 * process, streams per-point progress to stderr, and returns results
 * in plan order — byte-identical output regardless of job count.
 */

#ifndef VRSIM_DRIVER_SWEEP_RUNNER_HH
#define VRSIM_DRIVER_SWEEP_RUNNER_HH

#include "driver/plan.hh"
#include "workloads/workload_cache.hh"

namespace vrsim
{

/** Knobs for one sweep execution. */
struct SweepOptions
{
    /**
     * Worker threads. 0 = resolve from the VRSIM_JOBS environment
     * variable (default 1; VRSIM_JOBS=0 means hardware concurrency).
     */
    unsigned jobs = 0;

    /** Stream one "[done/total] id status" line per point to stderr. */
    bool progress = true;

    /** Workload cache to share; null = the process-wide cache. */
    WorkloadCache *cache = nullptr;
};

class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {}) : opts_(opts) {}

    /**
     * Execute every point of @p plan, fault-isolated: a fatal/panic/
     * hang point becomes a status-carrying result (and a warn line)
     * while its siblings run to completion. Deterministic: the result
     * table is in plan order and each point's simulation is
     * single-threaded and seeded per point, so any job count produces
     * identical tables.
     */
    ResultTable run(const RunPlan &plan);

    /** Run one already-resolved point (bypasses the pool; tests). */
    static SimResult runPoint(const RunPoint &point,
                              WorkloadCache &cache);

    /**
     * Worker count the environment asks for: strict-parsed VRSIM_JOBS
     * (absent -> @p dflt, 0 -> hardware concurrency).
     */
    static unsigned jobsFromEnv(unsigned dflt = 1);

  private:
    SweepOptions opts_;
};

} // namespace vrsim

#endif // VRSIM_DRIVER_SWEEP_RUNNER_HH

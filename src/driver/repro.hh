/**
 * @file
 * Crash-repro bundles and sweep journals: exact JSON round-trips of
 * RunPoints and SimResults.
 *
 * A failed sweep cell is only debuggable if it can be re-run in
 * isolation, bit-for-bit: a ReproBundle captures everything that
 * determined the run (full SystemConfig, technique + DVR feature
 * overrides, workload scales/seeds, budgets, injected-failure kind)
 * plus what went wrong, and `vrsim --replay bundle.json` reconstructs
 * and re-runs it. The same serializers back the resumable-sweep
 * journal (sweep_runner.hh): completed cells are appended as JSON
 * lines and restored on --resume without re-running.
 *
 * Round-trip exactness is the contract: u64 counters are written in
 * decimal and re-read with the strict parser, doubles via "%.17g"
 * (which round-trips IEEE binary64), digests as 16-digit hex. The
 * readers are strict (sim/parse.hh) — a malformed or truncated bundle
 * fails with a diagnostic, never replays the wrong point.
 */

#ifndef VRSIM_DRIVER_REPRO_HH
#define VRSIM_DRIVER_REPRO_HH

#include <optional>
#include <string>
#include <vector>

#include "driver/plan.hh"
#include "sim/digest.hh"

namespace vrsim
{

/** simStatusName's inverse; fatal() on unknown names. */
SimStatus simStatusFromName(const std::string &name);

// ---- SimResult / RunPoint round-trips ----

/** Serialize a result (all statistics, digest included) as one-line
 *  JSON. */
std::string resultToJson(const SimResult &r);

/** Parse a result serialized by resultToJson. @p what names the
 *  document in diagnostics. */
SimResult resultFromJson(const std::string &what,
                         const std::string &text);

/** Serialize a fully resolved grid point (config and scales included)
 *  as one-line JSON. */
std::string pointToJson(const RunPoint &p);

/** Parse a point serialized by pointToJson. */
RunPoint pointFromJson(const std::string &what, const std::string &text);

/**
 * Serialize a committed-state digest as one-line JSON (interval,
 * instruction count, final digest, per-interval hashes as 16-digit
 * hex). Backs `--digest-json` so two runs' committed streams can be
 * compared byte-for-byte from the shell (the ci.sh sampling stage).
 */
std::string digestRecordToJson(const DigestRecord &d);

// ---- crash-repro bundles ----

/** Self-contained description of one failed run. */
struct ReproBundle
{
    RunPoint point;              //!< everything needed to re-run it
    SimStatus status = SimStatus::Ok;
    std::string status_message;
    /** Baseline digest the run was compared against (divergences). */
    std::optional<DigestRecord> baseline_digest;
    /** First mismatching interval (divergences). */
    std::optional<DigestDivergence> divergence;
};

std::string bundleToJson(const ReproBundle &b);
ReproBundle bundleFromJson(const std::string &what,
                           const std::string &text);

/**
 * Write @p b under @p dir (created if needed) as
 * `<sanitized-point-id>.json`. Returns the path written. fatal() on
 * I/O errors.
 */
std::string writeReproBundle(const std::string &dir,
                             const ReproBundle &b);

/** Read and parse a bundle file; fatal() if unreadable/malformed. */
ReproBundle readReproBundle(const std::string &path);

// ---- resumable-sweep journal ----

/**
 * Order-sensitive fingerprint of a resolved plan (every point's full
 * serialization folded into one hash). A journal records the
 * fingerprint it was written under; --resume refuses a journal whose
 * fingerprint differs — resuming a different plan would silently mix
 * results.
 */
uint64_t planFingerprint(const std::vector<RunPoint> &points);

/** The journal's first line, identifying the plan. */
std::string journalHeaderLine(uint64_t fingerprint, size_t points);

/** One completed cell: plan index + id + full result, one line. */
std::string journalEntryLine(size_t index, const RunPoint &point,
                             const SimResult &result);

/**
 * Load a journal written for a plan with @p points points under
 * @p fingerprint. Returns one slot per plan index; completed cells
 * are filled, the rest empty. fatal() on a fingerprint/size mismatch
 * or an entry for an out-of-range index; a torn final line (the
 * process died mid-append) is tolerated with a warn() and reading
 * stops there. A missing file returns all-empty slots.
 */
std::vector<std::optional<SimResult>>
loadJournal(const std::string &path, uint64_t fingerprint,
            size_t points);

} // namespace vrsim

#endif // VRSIM_DRIVER_REPRO_HH

#include "driver/simulation.hh"

#include <chrono>
#include <iomanip>
#include <memory>

#include "obs/self_profile.hh"
#include "obs/stats_registry.hh"
#include "obs/trace.hh"
#include "sim/parse.hh"

namespace vrsim
{

void
SamplingPlan::validate() const
{
    if (!sampling()) {
        if (detail || warm)
            fatal("sampling plan has detail/warm windows but no "
                  "period");
        return;
    }
    if (detail == 0)
        fatal("sampling plan needs a nonzero detailed-measure window "
              "(--sample N:M with N > 0)");
    if (detail + warm > period)
        fatal("sampling plan windows exceed the period: detail " +
              std::to_string(detail) + " + warm " +
              std::to_string(warm) + " > period " +
              std::to_string(period));
}

SamplingPlan
SamplingPlan::parse(const std::string &spec)
{
    SamplingPlan p;
    size_t c1 = spec.find(':');
    if (c1 == std::string::npos)
        fatal("--sample wants N:M[:W] (N measured insts per period of "
              "M, W detailed-warm insts), got '" + spec + "'");
    size_t c2 = spec.find(':', c1 + 1);
    p.detail = parseU64("--sample measure window",
                        spec.substr(0, c1).c_str());
    if (c2 == std::string::npos) {
        p.period = parseU64("--sample period",
                            spec.substr(c1 + 1).c_str());
        p.warm = std::min(p.detail, p.period > p.detail
                                        ? p.period - p.detail : 0);
    } else {
        p.period = parseU64(
            "--sample period", spec.substr(c1 + 1, c2 - c1 - 1).c_str());
        p.warm = parseU64("--sample warm window",
                          spec.substr(c2 + 1).c_str());
    }
    p.validate();
    return p;
}

double
SampleSummary::cpiStddev() const
{
    return momentsStddev(cpi_sum, cpi_sumsq, intervals);
}

double
SampleSummary::cpiCi95() const
{
    return momentsCi95(cpi_sum, cpi_sumsq, intervals);
}

const char *
simStatusName(SimStatus s)
{
    switch (s) {
      case SimStatus::Ok: return "ok";
      case SimStatus::Fatal: return "fatal";
      case SimStatus::Panic: return "panic";
      case SimStatus::Hang: return "hang";
      case SimStatus::Diverged: return "diverged";
      case SimStatus::Crashed: return "crashed";
      case SimStatus::TimedOut: return "timedout";
    }
    panic("unknown SimStatus");
}

int
exitCodeForStatus(SimStatus status, int term_signal)
{
    switch (status) {
      case SimStatus::Ok: return 0;
      case SimStatus::Fatal: return 1;
      case SimStatus::Panic:
      case SimStatus::Hang:
      case SimStatus::Diverged: return 70;  // sysexits EX_SOFTWARE
      case SimStatus::TimedOut: return 124; // coreutils `timeout`
      case SimStatus::Crashed:
        // Shell convention: death by signal N surfaces as 128+N, so
        // a SIGSEGV (139) can never alias a taxonomy code above.
        return term_signal > 0 ? 128 + term_signal : 1;
    }
    panic("unknown SimStatus");
}

SimResult
runGuarded(const std::string &workload_name, Technique technique,
           const std::function<SimResult()> &body)
{
    SimResult failed;
    failed.workload = workload_name;
    failed.technique = technique;
    try {
        return body();
    } catch (const FatalError &e) {
        failed.status = SimStatus::Fatal;
        failed.status_message = e.what();
    } catch (const HangError &e) {
        failed.status = SimStatus::Hang;
        failed.status_message = e.what();
    } catch (const PanicError &e) {
        failed.status = SimStatus::Panic;
        failed.status_message = e.what();
    }
    return failed;
}

namespace
{

/** Field-wise sum of per-window core statistics (sampled runs). */
void
accumulate(CoreStats &into, const CoreStats &win)
{
    into.instructions += win.instructions;
    into.cycles += win.cycles;
    into.loads += win.loads;
    into.stores += win.stores;
    into.branches += win.branches;
    into.mispredicts += win.mispredicts;
    into.rob_stall_cycles += win.rob_stall_cycles;
    into.full_rob_stall_events += win.full_rob_stall_events;
    into.runahead_commit_stall += win.runahead_commit_stall;
    into.btb_misses += win.btb_misses;
    into.icache_misses += win.icache_misses;
    into.stall_fetch += win.stall_fetch;
    into.stall_iq += win.stall_iq;
    into.stall_lq += win.stall_lq;
    into.stall_sq += win.stall_sq;
}

/** Field-wise sum of per-window memory statistics (sampled runs). */
void
accumulate(MemStats &into, const MemStats &win)
{
    into.demand_accesses += win.demand_accesses;
    into.demand_l1_hits += win.demand_l1_hits;
    into.demand_l2_hits += win.demand_l2_hits;
    into.demand_l3_hits += win.demand_l3_hits;
    into.demand_mem += win.demand_mem;
    into.demand_latency_sum += win.demand_latency_sum;
    for (size_t i = 0; i < win.dram_by_requester.size(); i++)
        into.dram_by_requester[i] += win.dram_by_requester[i];
    into.pf_lines_filled += win.pf_lines_filled;
    into.pf_used_l1 += win.pf_used_l1;
    into.pf_used_l2 += win.pf_used_l2;
    into.pf_used_l3 += win.pf_used_l3;
    into.pf_used_inflight += win.pf_used_inflight;
}

double
secondsSince(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0).count();
}

} // namespace

SimResult
runWorkload(Workload &w, Technique technique, SystemConfig cfg,
            uint64_t max_insts, uint64_t warmup_insts,
            const DvrFeatures *dvr_features, TraceSink *trace,
            const SamplingPlan &sampling)
{
    cfg.technique = technique;
    sampling.validate();
    if (sampling.sampling() && warmup_insts)
        fatal("--sample and --warmup are mutually exclusive: the "
              "plan's per-window detailed-warm instructions replace "
              "the global warmup");
    MemoryHierarchy hier(cfg, w.image);
    if (technique == Technique::Imp)
        hier.enableImp();

    std::unique_ptr<RunaheadEngine> engine;
    PreEngine *pre = nullptr;
    VectorRunahead *vr = nullptr;
    DecoupledVectorRunahead *dvr = nullptr;
    switch (technique) {
      case Technique::Pre: {
        auto e = std::make_unique<PreEngine>(cfg, w.prog, w.image, hier);
        pre = e.get();
        engine = std::move(e);
        break;
      }
      case Technique::Vr: {
        auto e = std::make_unique<VectorRunahead>(cfg, w.prog, w.image,
                                                  hier);
        vr = e.get();
        engine = std::move(e);
        break;
      }
      case Technique::DvrOffload:
      case Technique::DvrDiscovery:
      case Technique::Dvr: {
        DvrFeatures f = technique == Technique::DvrOffload
            ? DvrFeatures::offloadOnly()
            : technique == Technique::DvrDiscovery
                ? DvrFeatures::withDiscovery()
                : DvrFeatures::full();
        if (dvr_features)
            f = *dvr_features;
        auto e = std::make_unique<DecoupledVectorRunahead>(
            cfg, w.prog, w.image, hier, f);
        dvr = e.get();
        engine = std::move(e);
        break;
      }
      default:
        break;
    }

    OooCore core(cfg, w.prog, w.image, hier, engine.get());
    if (trace) {
        hier.setTraceSink(trace);
        core.setTraceSink(trace);
        if (engine)
            engine->setTraceSink(trace);
    }
    uint64_t budget = max_insts ? max_insts : w.suggested_insts;

    // Differential oracle: hash the committed stream (incl. warmup,
    // which is a timing distinction only — the committed instructions
    // are identical across techniques by construction).
    std::unique_ptr<StateDigest> digest;
    if (cfg.collect_digest) {
        digest = std::make_unique<StateDigest>(cfg.digest_interval);
        core.setDigest(digest.get());
    }

    SimResult res;
    res.workload = w.name;
    res.technique = technique;
    MemStats warm_mem;
    uint64_t warm_busy = 0;
    bool sampled_mem = false; // res.mem/res.mlp set by the sampled loop
    {
        SelfProfiler::PhaseTimer pt =
            SelfProfiler::process().phase("simulate");
        auto t0 = std::chrono::steady_clock::now();
        auto snap_warm = [&] {
            warm_mem = hier.stats();
            warm_busy = hier.l1Mshrs().busyIntegral();
        };
        if (!sampling.enabled()) {
            res.core = core.run(w.init, budget, warmup_insts, snap_warm);
        } else {
            CpuState state = w.init;
            Cycle clock = 0;
            if (sampling.ff_insts) {
                // Pure functional prefix skip: native-loop speed, no
                // warming — the caches/predictors enter the ROI cold
                // and the first detailed-warm window (or --warmup)
                // recovers them.
                auto f0 = std::chrono::steady_clock::now();
                uint64_t done =
                    core.fastForward(state, sampling.ff_insts, clock,
                                     /*warm=*/false);
                res.host_ff_seconds += secondsSince(f0);
                if (done < sampling.ff_insts)
                    fatal("workload halted after " +
                          std::to_string(done) +
                          " instructions, inside the --ff-insts " +
                          std::to_string(sampling.ff_insts) +
                          " prefix — nothing left to measure");
            }
            if (!sampling.sampling()) {
                // Fast-forward prefix, then an ordinary full-detail
                // ROI over the remaining budget.
                SampleSummary ss;
                ss.ff_insts = sampling.ff_insts;
                res.sample = ss;
                auto d0 = std::chrono::steady_clock::now();
                res.core = core.runFrom(state, budget, warmup_insts,
                                        clock, snap_warm);
                res.host_detailed_seconds += secondsSince(d0);
            } else {
                // SMARTS interval sampling: per period, functionally
                // fast-forward with cache/BP warming, run a detailed-
                // warm window (stats excluded), then a detailed-
                // measure window whose IPC becomes one observation.
                SampleSummary ss;
                ss.ff_insts += sampling.ff_insts;
                const uint64_t periods = budget / sampling.period;
                if (periods == 0)
                    fatal("--sample period " +
                          std::to_string(sampling.period) +
                          " exceeds the instruction budget " +
                          std::to_string(budget) +
                          " (no interval fits)");
                const uint64_t ff_per_period =
                    sampling.period - sampling.detail - sampling.warm;
                CoreStats total;
                MemStats mem_total;
                uint64_t busy_total = 0;
                for (uint64_t p = 0; p < periods && !state.halted;
                     p++) {
                    if (ff_per_period) {
                        auto f0 = std::chrono::steady_clock::now();
                        ss.ff_insts += core.fastForward(
                            state, ff_per_period, clock, /*warm=*/true);
                        res.host_ff_seconds += secondsSince(f0);
                        if (state.halted)
                            break;
                    }
                    MemStats wm;
                    uint64_t wb = 0;
                    bool snapped = false;
                    auto snap_win = [&] {
                        wm = hier.stats();
                        wb = hier.l1Mshrs().busyIntegral();
                        snapped = true;
                    };
                    if (sampling.warm == 0)
                        snap_win();
                    auto d0 = std::chrono::steady_clock::now();
                    CoreStats win = core.runFrom(
                        state, sampling.warm + sampling.detail,
                        sampling.warm, clock, snap_win);
                    res.host_detailed_seconds += secondsSince(d0);
                    if (!snapped)
                        break; // halted inside the warm window
                    ss.warm_insts += sampling.warm;
                    accumulate(total, win);
                    accumulate(mem_total, hier.stats().since(
                                              wm, cfg.invariant_checks));
                    busy_total +=
                        hier.l1Mshrs().busyIntegral() - wb;
                    // Only complete measure windows enter the CI: a
                    // halted tail has different length and would bias
                    // the variance estimate. The observation is the
                    // window's CPI — with equal-length windows the
                    // mean of per-window CPIs is the unbiased ratio
                    // estimate of the full run's CPI, which a mean of
                    // per-window IPCs is not (SampleSummary docs).
                    if (!state.halted &&
                        win.instructions == sampling.detail) {
                        double cpi = double(win.cycles) /
                                     double(win.instructions);
                        ss.cpi_sum += cpi;
                        ss.cpi_sumsq += cpi * cpi;
                        ss.intervals++;
                    }
                }
                res.core = total;
                res.mem = mem_total;
                res.mlp = total.cycles
                              ? double(busy_total) / double(total.cycles)
                              : 0.0;
                res.sample = ss;
                sampled_mem = true;
            }
        }
        res.host_seconds = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();
        if (!sampling.enabled())
            res.host_detailed_seconds = res.host_seconds;
    }
    SelfProfiler::process().addSimulated(res.core.instructions,
                                         res.core.cycles);
    if (!sampled_mem) {
        res.mem = hier.stats().since(warm_mem, cfg.invariant_checks);
        uint64_t busy = hier.l1Mshrs().busyIntegral() - warm_busy;
        res.mlp = res.core.cycles
                      ? double(busy) / double(res.core.cycles)
                      : 0.0;
    }
    if (pre)
        res.pre = pre->stats();
    if (vr)
        res.vr = vr->stats();
    if (dvr)
        res.dvr = dvr->stats();
    if (digest)
        res.digest = digest->record();
    return res;
}

SimResult
runSimulation(const std::string &spec, Technique technique,
              SystemConfig cfg, const GraphScale &gscale,
              const HpcDbScale &hscale, uint64_t max_insts,
              uint64_t warmup_insts)
{
    Workload w = makeWorkload(spec, gscale, hscale);
    return runWorkload(w, technique, cfg, max_insts, warmup_insts);
}

SimResult
runWorkloadGuarded(Workload &w, Technique technique, SystemConfig cfg,
                   uint64_t max_insts, uint64_t warmup_insts,
                   const SamplingPlan &sampling)
{
    return runGuarded(w.name, technique, [&] {
        return runWorkload(w, technique, cfg, max_insts, warmup_insts,
                           nullptr, nullptr, sampling);
    });
}

SimResult
runSimulationGuarded(const std::string &spec, Technique technique,
                     SystemConfig cfg, const GraphScale &gscale,
                     const HpcDbScale &hscale, uint64_t max_insts,
                     uint64_t warmup_insts)
{
    return runGuarded(spec, technique, [&] {
        return runSimulation(spec, technique, cfg, gscale, hscale,
                             max_insts, warmup_insts);
    });
}

std::vector<std::string>
gapBenchmarkSpecs()
{
    std::vector<std::string> specs;
    for (const auto &k : gapKernelNames())
        for (const char *in : {"KR", "LJN", "ORK", "TW", "UR"})
            specs.push_back(k + "/" + in);
    return specs;
}

std::vector<std::string>
allBenchmarkSpecs()
{
    std::vector<std::string> specs = gapBenchmarkSpecs();
    for (const auto &n : hpcDbNames())
        specs.push_back(n);
    return specs;
}

double
harmonicMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double inv = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        inv += 1.0 / v;
    }
    return double(values.size()) / inv;
}

void
printSpeedupTable(std::ostream &os,
                  const std::vector<std::string> &row_names,
                  const std::vector<std::string> &col_names,
                  const std::vector<std::vector<double>> &cells)
{
    os << std::left << std::setw(16) << "benchmark";
    for (const auto &c : col_names)
        os << std::right << std::setw(12) << c;
    os << "\n";
    for (size_t r = 0; r < row_names.size(); r++) {
        os << std::left << std::setw(16) << row_names[r];
        for (double v : cells[r])
            os << std::right << std::setw(12) << std::fixed
               << std::setprecision(3) << v;
        os << "\n";
    }
}

} // namespace vrsim

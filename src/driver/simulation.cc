#include "driver/simulation.hh"

#include <chrono>
#include <iomanip>
#include <memory>

#include "obs/self_profile.hh"
#include "obs/trace.hh"

namespace vrsim
{

const char *
simStatusName(SimStatus s)
{
    switch (s) {
      case SimStatus::Ok: return "ok";
      case SimStatus::Fatal: return "fatal";
      case SimStatus::Panic: return "panic";
      case SimStatus::Hang: return "hang";
      case SimStatus::Diverged: return "diverged";
      case SimStatus::Crashed: return "crashed";
      case SimStatus::TimedOut: return "timedout";
    }
    panic("unknown SimStatus");
}

int
exitCodeForStatus(SimStatus status, int term_signal)
{
    switch (status) {
      case SimStatus::Ok: return 0;
      case SimStatus::Fatal: return 1;
      case SimStatus::Panic:
      case SimStatus::Hang:
      case SimStatus::Diverged: return 70;  // sysexits EX_SOFTWARE
      case SimStatus::TimedOut: return 124; // coreutils `timeout`
      case SimStatus::Crashed:
        // Shell convention: death by signal N surfaces as 128+N, so
        // a SIGSEGV (139) can never alias a taxonomy code above.
        return term_signal > 0 ? 128 + term_signal : 1;
    }
    panic("unknown SimStatus");
}

SimResult
runGuarded(const std::string &workload_name, Technique technique,
           const std::function<SimResult()> &body)
{
    SimResult failed;
    failed.workload = workload_name;
    failed.technique = technique;
    try {
        return body();
    } catch (const FatalError &e) {
        failed.status = SimStatus::Fatal;
        failed.status_message = e.what();
    } catch (const HangError &e) {
        failed.status = SimStatus::Hang;
        failed.status_message = e.what();
    } catch (const PanicError &e) {
        failed.status = SimStatus::Panic;
        failed.status_message = e.what();
    }
    return failed;
}

SimResult
runWorkload(Workload &w, Technique technique, SystemConfig cfg,
            uint64_t max_insts, uint64_t warmup_insts,
            const DvrFeatures *dvr_features, TraceSink *trace)
{
    cfg.technique = technique;
    MemoryHierarchy hier(cfg, w.image);
    if (technique == Technique::Imp)
        hier.enableImp();

    std::unique_ptr<RunaheadEngine> engine;
    PreEngine *pre = nullptr;
    VectorRunahead *vr = nullptr;
    DecoupledVectorRunahead *dvr = nullptr;
    switch (technique) {
      case Technique::Pre: {
        auto e = std::make_unique<PreEngine>(cfg, w.prog, w.image, hier);
        pre = e.get();
        engine = std::move(e);
        break;
      }
      case Technique::Vr: {
        auto e = std::make_unique<VectorRunahead>(cfg, w.prog, w.image,
                                                  hier);
        vr = e.get();
        engine = std::move(e);
        break;
      }
      case Technique::DvrOffload:
      case Technique::DvrDiscovery:
      case Technique::Dvr: {
        DvrFeatures f = technique == Technique::DvrOffload
            ? DvrFeatures::offloadOnly()
            : technique == Technique::DvrDiscovery
                ? DvrFeatures::withDiscovery()
                : DvrFeatures::full();
        if (dvr_features)
            f = *dvr_features;
        auto e = std::make_unique<DecoupledVectorRunahead>(
            cfg, w.prog, w.image, hier, f);
        dvr = e.get();
        engine = std::move(e);
        break;
      }
      default:
        break;
    }

    OooCore core(cfg, w.prog, w.image, hier, engine.get());
    if (trace) {
        hier.setTraceSink(trace);
        core.setTraceSink(trace);
        if (engine)
            engine->setTraceSink(trace);
    }
    uint64_t budget = max_insts ? max_insts : w.suggested_insts;

    // Differential oracle: hash the committed stream (incl. warmup,
    // which is a timing distinction only — the committed instructions
    // are identical across techniques by construction).
    std::unique_ptr<StateDigest> digest;
    if (cfg.collect_digest) {
        digest = std::make_unique<StateDigest>(cfg.digest_interval);
        core.setDigest(digest.get());
    }

    SimResult res;
    res.workload = w.name;
    res.technique = technique;
    MemStats warm_mem;
    uint64_t warm_busy = 0;
    {
        SelfProfiler::PhaseTimer pt =
            SelfProfiler::process().phase("simulate");
        auto t0 = std::chrono::steady_clock::now();
        res.core = core.run(w.init, budget, warmup_insts, [&] {
            warm_mem = hier.stats();
            warm_busy = hier.l1Mshrs().busyIntegral();
        });
        res.host_seconds = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();
    }
    SelfProfiler::process().addSimulated(res.core.instructions,
                                         res.core.cycles);
    res.mem = hier.stats().since(warm_mem, cfg.invariant_checks);
    uint64_t busy = hier.l1Mshrs().busyIntegral() - warm_busy;
    res.mlp = res.core.cycles ? double(busy) / double(res.core.cycles)
                              : 0.0;
    if (pre)
        res.pre = pre->stats();
    if (vr)
        res.vr = vr->stats();
    if (dvr)
        res.dvr = dvr->stats();
    if (digest)
        res.digest = digest->record();
    return res;
}

SimResult
runSimulation(const std::string &spec, Technique technique,
              SystemConfig cfg, const GraphScale &gscale,
              const HpcDbScale &hscale, uint64_t max_insts,
              uint64_t warmup_insts)
{
    Workload w = makeWorkload(spec, gscale, hscale);
    return runWorkload(w, technique, cfg, max_insts, warmup_insts);
}

SimResult
runWorkloadGuarded(Workload &w, Technique technique, SystemConfig cfg,
                   uint64_t max_insts, uint64_t warmup_insts)
{
    return runGuarded(w.name, technique, [&] {
        return runWorkload(w, technique, cfg, max_insts, warmup_insts);
    });
}

SimResult
runSimulationGuarded(const std::string &spec, Technique technique,
                     SystemConfig cfg, const GraphScale &gscale,
                     const HpcDbScale &hscale, uint64_t max_insts,
                     uint64_t warmup_insts)
{
    return runGuarded(spec, technique, [&] {
        return runSimulation(spec, technique, cfg, gscale, hscale,
                             max_insts, warmup_insts);
    });
}

std::vector<std::string>
gapBenchmarkSpecs()
{
    std::vector<std::string> specs;
    for (const auto &k : gapKernelNames())
        for (const char *in : {"KR", "LJN", "ORK", "TW", "UR"})
            specs.push_back(k + "/" + in);
    return specs;
}

std::vector<std::string>
allBenchmarkSpecs()
{
    std::vector<std::string> specs = gapBenchmarkSpecs();
    for (const auto &n : hpcDbNames())
        specs.push_back(n);
    return specs;
}

double
harmonicMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double inv = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            return 0.0;
        inv += 1.0 / v;
    }
    return double(values.size()) / inv;
}

void
printSpeedupTable(std::ostream &os,
                  const std::vector<std::string> &row_names,
                  const std::vector<std::string> &col_names,
                  const std::vector<std::vector<double>> &cells)
{
    os << std::left << std::setw(16) << "benchmark";
    for (const auto &c : col_names)
        os << std::right << std::setw(12) << c;
    os << "\n";
    for (size_t r = 0; r < row_names.size(); r++) {
        os << std::left << std::setw(16) << row_names[r];
        for (double v : cells[r])
            os << std::right << std::setw(12) << std::fixed
               << std::setprecision(3) << v;
        os << "\n";
    }
}

} // namespace vrsim

#include "driver/sweep_runner.hh"

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "sim/parse.hh"

namespace vrsim
{

unsigned
SweepRunner::jobsFromEnv(unsigned dflt)
{
    uint64_t jobs = envU64("VRSIM_JOBS", dflt);
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    if (jobs > 4096)
        fatal("VRSIM_JOBS=" + std::to_string(jobs) +
              " is absurd (max 4096)");
    return unsigned(jobs);
}

SimResult
SweepRunner::runPoint(const RunPoint &p, WorkloadCache &cache)
{
    return runGuarded(p.spec, p.technique, [&] {
        if (p.inject_fail)
            panic("fault injection requested for " +
                  techniqueName(p.technique) + " (--inject-fail)");
        // Instantiate a private copy of the cached build artifact so
        // stores in this run cannot leak into sibling points.
        Workload w = cache.instantiate(p.spec, p.gscale, p.hscale);
        return runWorkload(w, p.technique, p.cfg, p.max_insts,
                           p.warmup,
                           p.features ? &*p.features : nullptr);
    });
}

ResultTable
SweepRunner::run(const RunPlan &plan)
{
    std::vector<RunPoint> points = plan.points();
    std::vector<SimResult> results(points.size());
    WorkloadCache &cache =
        opts_.cache ? *opts_.cache : WorkloadCache::process();

    unsigned jobs = opts_.jobs ? opts_.jobs : jobsFromEnv();
    jobs = unsigned(
        std::min<size_t>(jobs, std::max<size_t>(1, points.size())));

    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    const bool progress = opts_.progress;

    auto worker = [&] {
        for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= points.size())
                return;
            const RunPoint &p = points[i];
            // Tag this thread's warn()/inform() lines with the point
            // so interleaved diagnostics stay attributable.
            setLogContext(p.id());
            SimResult r = runPoint(p, cache);
            setLogContext("");
            size_t n = done.fetch_add(1) + 1;
            if (!r.ok())
                warn(p.id() + " failed (" + simStatusName(r.status) +
                     "): " + r.status_message);
            if (progress) {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "IPC %.3f", r.ipc());
                inform("[" + std::to_string(n) + "/" +
                       std::to_string(points.size()) + "] " + p.id() +
                       " " + simStatusName(r.status) +
                       (r.ok() ? " " + std::string(buf) : ""));
            }
            // Results land at the point's plan index: the table order
            // (and all rendered output) is independent of job count
            // and completion order.
            results[i] = std::move(r);
        }
    };

    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; t++)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }

    return ResultTable(std::move(points), std::move(results));
}

} // namespace vrsim

#include "driver/sweep_runner.hh"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "driver/repro.hh"
#include "obs/trace.hh"
#include "rt/cell_supervisor.hh"
#include "sim/parse.hh"

namespace vrsim
{

namespace
{

/** Deterministic digest poison for InjectKind::Diverge: flips the
 *  second half of the interval samples and the final hash so the
 *  first-mismatching-interval localization is exercised. */
constexpr uint64_t INJECT_POISON = 0x9e3779b97f4a7c15ull;

/** Key of the baseline cell a point is differentially checked
 *  against: same spec and config variant, OoO column. */
std::string
baselineKey(const RunPoint &p)
{
    return p.spec + "\x1f" + p.variant;
}

} // namespace

const char *
isolationName(Isolation i)
{
    switch (i) {
      case Isolation::Thread: return "thread";
      case Isolation::Process: return "process";
    }
    panic("unknown Isolation");
}

Isolation
isolationFromName(const std::string &name)
{
    if (name == "thread")
        return Isolation::Thread;
    if (name == "process")
        return Isolation::Process;
    fatal("unknown isolation mode '" + name +
          "' (valid: thread, process)");
}

unsigned
SweepRunner::jobsFromEnv(unsigned dflt)
{
    uint64_t jobs = envU64("VRSIM_JOBS", dflt);
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    if (jobs > 4096)
        fatal("VRSIM_JOBS=" + std::to_string(jobs) +
              " is absurd (max 4096)");
    return unsigned(jobs);
}

SimResult
SweepRunner::runPoint(const RunPoint &p, WorkloadCache &cache,
                      TraceSink *trace)
{
    return runGuarded(p.spec, p.technique, [&] {
        if (trace)
            trace->meta(p.id(), p.spec, techniqueName(p.technique),
                        p.max_insts, p.warmup);
        const std::string inject_msg = "fault injection requested for " +
            techniqueName(p.technique) + " (--inject-fail)";
        if (p.inject_fail) {
            switch (p.inject_kind) {
              case InjectKind::Fatal:
                fatal(inject_msg);
              case InjectKind::Hang: {
                ProgressSnapshot snap;
                snap.where = "inject";
                hang(inject_msg, std::move(snap));
              }
              case InjectKind::Diverge:
                break;   // run for real below, then poison the digest
              case InjectKind::Segv:
              case InjectKind::Oom:
              case InjectKind::Spin:
              case InjectKind::ExitCode:
              case InjectKind::KillSelf:
                // Executing these here would kill/wedge the calling
                // process — only a supervised child may run them
                // (rt/cell_supervisor.hh).
                fatal("process-grade fault injection (" +
                      std::string(injectKindName(p.inject_kind)) +
                      ") requires --isolation process");
              case InjectKind::None:
              case InjectKind::Panic:
                panic(inject_msg);
            }
        }
        // Instantiate a private copy of the cached build artifact so
        // stores in this run cannot leak into sibling points.
        Workload w = cache.instantiate(p.spec, p.gscale, p.hscale);
        SystemConfig cfg = p.cfg;
        if (p.inject_fail)
            cfg.collect_digest = true;
        SimResult r = runWorkload(w, p.technique, cfg, p.max_insts,
                                  p.warmup,
                                  p.features ? &*p.features : nullptr,
                                  trace, p.sampling);
        if (p.inject_fail && r.digest) {
            // Deterministic divergence: the digest check (or a
            // replay of the resulting bundle) must flag this cell.
            DigestRecord &d = *r.digest;
            for (size_t i = d.intervals.size() / 2;
                 i < d.intervals.size(); i++)
                d.intervals[i] ^= INJECT_POISON;
            d.final_digest ^= INJECT_POISON;
        }
        return r;
    });
}

ResultTable
SweepRunner::run(const RunPlan &plan)
{
    std::vector<RunPoint> points = plan.points();
    std::vector<SimResult> results(points.size());
    std::vector<char> have(points.size(), 0);
    WorkloadCache &cache =
        opts_.cache ? *opts_.cache : WorkloadCache::process();

    // Resolve the effective isolation mode. Tracing is an in-process
    // shared stream, so a traced sweep falls back to thread isolation;
    // chaos and process-grade inject kinds *require* the process
    // backend (executing them in a worker thread would kill the whole
    // sweep — the exact failure isolation exists to prevent).
    Isolation isolation = opts_.isolation;
    if (opts_.trace && isolation == Isolation::Process) {
        warn("tracing is in-process (one shared event stream); "
             "falling back to --isolation thread");
        isolation = Isolation::Thread;
    }
    if (opts_.chaos.enabled() && isolation != Isolation::Process)
        fatal("--chaos requires --isolation process");
    if (isolation != Isolation::Process) {
        for (const RunPoint &p : points)
            if (p.inject_fail &&
                injectKindIsProcessGrade(p.inject_kind))
                fatal("point " + p.id() + " injects a process-grade "
                      "fault (" +
                      std::string(injectKindName(p.inject_kind)) +
                      "); requires --isolation process");
    }

    // Differential checking collects a digest on every point and
    // needs an OoO baseline cell per (spec, variant).
    std::map<std::string, size_t> baseline_of;
    if (opts_.check_digests) {
        for (RunPoint &p : points)
            p.cfg.collect_digest = true;
        for (size_t i = 0; i < points.size(); i++)
            if (points[i].technique == Technique::OoO)
                baseline_of.emplace(baselineKey(points[i]), i);
        for (const RunPoint &p : points)
            if (!baseline_of.count(baselineKey(p)))
                fatal("--check-digests: no OoO baseline column for " +
                      p.id() + "; add Technique::OoO to the plan (the "
                      "vrsim CLI adds it automatically)");
    }

    // Resume: restore completed cells from the journal. The journal
    // stores each cell's pre-comparison result, so the digest pass
    // below re-derives Diverged statuses deterministically.
    const uint64_t fingerprint =
        opts_.checkpoint.empty() ? 0 : planFingerprint(points);
    if (opts_.resume) {
        if (opts_.checkpoint.empty())
            fatal("--resume requires --checkpoint FILE");
        auto slots = loadJournal(opts_.checkpoint, fingerprint,
                                 points.size());
        size_t restored = 0;
        for (size_t i = 0; i < slots.size(); i++) {
            if (slots[i]) {
                results[i] = std::move(*slots[i]);
                have[i] = 1;
                ++restored;
            }
        }
        if (restored)
            inform("resume: restored " + std::to_string(restored) +
                   "/" + std::to_string(points.size()) +
                   " completed points from " + opts_.checkpoint);
    }

    // (Re)write the journal: header plus any restored cells, so a
    // torn tail from a killed run is compacted away and appends keep
    // the file consistent for the next resume.
    std::ofstream journal;
    std::mutex journal_mutex;
    if (!opts_.checkpoint.empty()) {
        journal.open(opts_.checkpoint, std::ios::trunc);
        if (!journal)
            fatal("cannot write checkpoint journal '" +
                  opts_.checkpoint + "'");
        journal << journalHeaderLine(fingerprint, points.size())
                << "\n";
        for (size_t i = 0; i < points.size(); i++)
            if (have[i])
                journal << journalEntryLine(i, points[i], results[i])
                        << "\n";
        journal.flush();
    }

    unsigned jobs = opts_.jobs ? opts_.jobs : jobsFromEnv();
    jobs = unsigned(
        std::min<size_t>(jobs, std::max<size_t>(1, points.size())));
    if (opts_.trace && jobs > 1) {
        warn("tracing writes one shared event stream; forcing "
             "--jobs 1 for a deterministic trace");
        jobs = 1;
    }

    // Fork safety for process mode: build every workload artifact in
    // the parent before the pool starts, so the cache's mutex and
    // builder futures are quiescent at every fork (children only ever
    // hit warm cache entries). A build failure is deliberately left
    // for the child to re-encounter and report as its own Fatal row,
    // matching thread-mode attribution.
    if (isolation == Isolation::Process) {
        std::map<std::string, char> built;
        for (size_t i = 0; i < points.size(); i++) {
            if (have[i])
                continue;
            const RunPoint &p = points[i];
            if (!built.emplace(WorkloadCache::key(p.spec, p.gscale,
                                                  p.hscale), 1)
                     .second)
                continue;
            try {
                cache.artifact(p.spec, p.gscale, p.hscale);
            } catch (const FatalError &) {
                // The child's own build attempt produces the row.
            }
        }
    }

    CellOptions cell_opts;
    cell_opts.timeout_ms = opts_.cell_timeout_ms;
    cell_opts.mem_mb = opts_.cell_mem_mb;
    cell_opts.cpu_s = opts_.cell_cpu_s;
    cell_opts.retries = opts_.retries;
    cell_opts.backoff_ms = opts_.backoff_ms;
    cell_opts.chaos = opts_.chaos;
    cell_opts.inject_attempts = opts_.inject_attempts;

    // What each cell actually executed (chaos may mutate a point);
    // repro bundles record this so --replay reproduces the fault.
    std::vector<RunPoint> as_run = points;
    std::atomic<uint64_t> cells_retried{0};
    std::atomic<uint64_t> cells_crashed{0};
    std::atomic<uint64_t> cells_timed_out{0};
    std::atomic<uint64_t> backoff_ms_total{0};

    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    const bool progress = opts_.progress;
    size_t todo = 0;
    for (char h : have)
        todo += !h;

    auto worker = [&] {
        for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= points.size())
                return;
            if (have[i])
                continue;
            const RunPoint &p = points[i];
            // Tag this thread's warn()/inform() lines with the point
            // so interleaved diagnostics stay attributable.
            setLogContext(p.id());
            SimResult r;
            if (isolation == Isolation::Process) {
                CellSupervisor sup(cell_opts, cache);
                CellOutcome cell = sup.runCell(p);
                r = std::move(cell.result);
                as_run[i] = std::move(cell.as_run);
                if (cell.retried())
                    cells_retried.fetch_add(1);
                backoff_ms_total.fetch_add(cell.backoff_ms_total);
                if (r.status == SimStatus::Crashed)
                    cells_crashed.fetch_add(1);
                else if (r.status == SimStatus::TimedOut)
                    cells_timed_out.fetch_add(1);
            } else {
                r = runPoint(p, cache, opts_.trace);
            }
            setLogContext("");
            size_t n = done.fetch_add(1) + 1;
            if (!r.ok())
                warn(p.id() + " failed (" + simStatusName(r.status) +
                     "): " + r.status_message);
            if (progress) {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "IPC %.3f", r.ipc());
                inform("[" + std::to_string(n) + "/" +
                       std::to_string(todo) + "] " + p.id() +
                       " " + simStatusName(r.status) +
                       (r.ok() ? " " + std::string(buf) : ""));
            }
            // Journal the finished cell immediately (append-only,
            // flushed) so a killed run loses at most the in-flight
            // points.
            if (journal.is_open()) {
                std::lock_guard<std::mutex> lock(journal_mutex);
                journal << journalEntryLine(i, p, r) << "\n";
                journal.flush();
            }
            // Results land at the point's plan index: the table order
            // (and all rendered output) is independent of job count
            // and completion order.
            results[i] = std::move(r);
        }
    };

    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; t++)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }

    // Sweep-level telemetry (zeros included so a green sweep still
    // shows the counters exist); thread mode leaves it empty to keep
    // existing stats output byte-identical.
    stats_ = StatsRegistry{};
    if (isolation == Isolation::Process) {
        stats_.addCounter("sweep.cells.retried",
                          "cells that needed more than one attempt") +=
            cells_retried.load();
        stats_.addCounter("sweep.cells.crashed",
                          "cells whose final attempt died by signal/"
                          "rlimit/bare exit") += cells_crashed.load();
        stats_.addCounter("sweep.cells.timed_out",
                          "cells whose final attempt exceeded the "
                          "wall-clock deadline") += cells_timed_out.load();
        stats_.addGauge("sweep.backoff_ms",
                        "total milliseconds spent in retry backoff") =
            double(backoff_ms_total.load());
    }

    // Differential pass: compare every non-baseline cell's digest
    // against its OoO sibling. Serial and deterministic — run after
    // the pool so restored and fresh cells are treated identically.
    std::vector<std::optional<DigestDivergence>> divergence(
        points.size());
    std::vector<const DigestRecord *> baseline_digest(points.size(),
                                                      nullptr);
    if (opts_.check_digests) {
        for (size_t i = 0; i < points.size(); i++) {
            const RunPoint &p = points[i];
            if (p.technique == Technique::OoO)
                continue;
            SimResult &r = results[i];
            if (!r.ok())
                continue;
            const SimResult &base =
                results[baseline_of.at(baselineKey(p))];
            if (!base.ok()) {
                warn(p.id() + ": OoO baseline failed (" +
                     simStatusName(base.status) +
                     "); cannot differentially check this cell");
                continue;
            }
            if (!r.digest || !base.digest) {
                // Restored cells from a journal written without
                // --check-digests have no digest to compare.
                warn(p.id() + ": no digest collected (journal from a "
                     "run without --check-digests?); cell unchecked");
                continue;
            }
            auto div = compareDigests(*base.digest, *r.digest);
            if (div) {
                r.status = SimStatus::Diverged;
                r.status_message =
                    "committed-state digest diverged from the OoO "
                    "baseline at " + div->toString();
                divergence[i] = *div;
                baseline_digest[i] = &*base.digest;
                warn(p.id() + " failed (diverged): " +
                     r.status_message);
            }
        }
    }

    // Repro bundles for every failed cell, Diverged included.
    if (!opts_.repro_dir.empty()) {
        for (size_t i = 0; i < points.size(); i++) {
            const SimResult &r = results[i];
            if (r.ok())
                continue;
            ReproBundle b;
            // The as-executed point (chaos mutation included), so a
            // --replay of the bundle reproduces the injected fault.
            b.point = as_run[i];
            b.status = r.status;
            b.status_message = r.status_message;
            if (baseline_digest[i])
                b.baseline_digest = *baseline_digest[i];
            if (divergence[i])
                b.divergence = divergence[i];
            std::string path = writeReproBundle(opts_.repro_dir, b);
            inform(points[i].id() + ": repro bundle written to " +
                   path + " (re-run with: vrsim --replay " + path +
                   ")");
        }
    }

    return ResultTable(std::move(points), std::move(results));
}

} // namespace vrsim

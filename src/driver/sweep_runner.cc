#include "driver/sweep_runner.hh"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "driver/repro.hh"
#include "obs/trace.hh"
#include "sim/parse.hh"

namespace vrsim
{

namespace
{

/** Deterministic digest poison for InjectKind::Diverge: flips the
 *  second half of the interval samples and the final hash so the
 *  first-mismatching-interval localization is exercised. */
constexpr uint64_t INJECT_POISON = 0x9e3779b97f4a7c15ull;

/** Key of the baseline cell a point is differentially checked
 *  against: same spec and config variant, OoO column. */
std::string
baselineKey(const RunPoint &p)
{
    return p.spec + "\x1f" + p.variant;
}

} // namespace

unsigned
SweepRunner::jobsFromEnv(unsigned dflt)
{
    uint64_t jobs = envU64("VRSIM_JOBS", dflt);
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    if (jobs > 4096)
        fatal("VRSIM_JOBS=" + std::to_string(jobs) +
              " is absurd (max 4096)");
    return unsigned(jobs);
}

SimResult
SweepRunner::runPoint(const RunPoint &p, WorkloadCache &cache,
                      TraceSink *trace)
{
    return runGuarded(p.spec, p.technique, [&] {
        if (trace)
            trace->meta(p.id(), p.spec, techniqueName(p.technique),
                        p.max_insts, p.warmup);
        const std::string inject_msg = "fault injection requested for " +
            techniqueName(p.technique) + " (--inject-fail)";
        if (p.inject_fail) {
            switch (p.inject_kind) {
              case InjectKind::Fatal:
                fatal(inject_msg);
              case InjectKind::Hang: {
                ProgressSnapshot snap;
                snap.where = "inject";
                hang(inject_msg, std::move(snap));
              }
              case InjectKind::Diverge:
                break;   // run for real below, then poison the digest
              case InjectKind::None:
              case InjectKind::Panic:
                panic(inject_msg);
            }
        }
        // Instantiate a private copy of the cached build artifact so
        // stores in this run cannot leak into sibling points.
        Workload w = cache.instantiate(p.spec, p.gscale, p.hscale);
        SystemConfig cfg = p.cfg;
        if (p.inject_fail)
            cfg.collect_digest = true;
        SimResult r = runWorkload(w, p.technique, cfg, p.max_insts,
                                  p.warmup,
                                  p.features ? &*p.features : nullptr,
                                  trace);
        if (p.inject_fail && r.digest) {
            // Deterministic divergence: the digest check (or a
            // replay of the resulting bundle) must flag this cell.
            DigestRecord &d = *r.digest;
            for (size_t i = d.intervals.size() / 2;
                 i < d.intervals.size(); i++)
                d.intervals[i] ^= INJECT_POISON;
            d.final_digest ^= INJECT_POISON;
        }
        return r;
    });
}

ResultTable
SweepRunner::run(const RunPlan &plan)
{
    std::vector<RunPoint> points = plan.points();
    std::vector<SimResult> results(points.size());
    std::vector<char> have(points.size(), 0);
    WorkloadCache &cache =
        opts_.cache ? *opts_.cache : WorkloadCache::process();

    // Differential checking collects a digest on every point and
    // needs an OoO baseline cell per (spec, variant).
    std::map<std::string, size_t> baseline_of;
    if (opts_.check_digests) {
        for (RunPoint &p : points)
            p.cfg.collect_digest = true;
        for (size_t i = 0; i < points.size(); i++)
            if (points[i].technique == Technique::OoO)
                baseline_of.emplace(baselineKey(points[i]), i);
        for (const RunPoint &p : points)
            if (!baseline_of.count(baselineKey(p)))
                fatal("--check-digests: no OoO baseline column for " +
                      p.id() + "; add Technique::OoO to the plan (the "
                      "vrsim CLI adds it automatically)");
    }

    // Resume: restore completed cells from the journal. The journal
    // stores each cell's pre-comparison result, so the digest pass
    // below re-derives Diverged statuses deterministically.
    const uint64_t fingerprint =
        opts_.checkpoint.empty() ? 0 : planFingerprint(points);
    if (opts_.resume) {
        if (opts_.checkpoint.empty())
            fatal("--resume requires --checkpoint FILE");
        auto slots = loadJournal(opts_.checkpoint, fingerprint,
                                 points.size());
        size_t restored = 0;
        for (size_t i = 0; i < slots.size(); i++) {
            if (slots[i]) {
                results[i] = std::move(*slots[i]);
                have[i] = 1;
                ++restored;
            }
        }
        if (restored)
            inform("resume: restored " + std::to_string(restored) +
                   "/" + std::to_string(points.size()) +
                   " completed points from " + opts_.checkpoint);
    }

    // (Re)write the journal: header plus any restored cells, so a
    // torn tail from a killed run is compacted away and appends keep
    // the file consistent for the next resume.
    std::ofstream journal;
    std::mutex journal_mutex;
    if (!opts_.checkpoint.empty()) {
        journal.open(opts_.checkpoint, std::ios::trunc);
        if (!journal)
            fatal("cannot write checkpoint journal '" +
                  opts_.checkpoint + "'");
        journal << journalHeaderLine(fingerprint, points.size())
                << "\n";
        for (size_t i = 0; i < points.size(); i++)
            if (have[i])
                journal << journalEntryLine(i, points[i], results[i])
                        << "\n";
        journal.flush();
    }

    unsigned jobs = opts_.jobs ? opts_.jobs : jobsFromEnv();
    jobs = unsigned(
        std::min<size_t>(jobs, std::max<size_t>(1, points.size())));
    if (opts_.trace && jobs > 1) {
        warn("tracing writes one shared event stream; forcing "
             "--jobs 1 for a deterministic trace");
        jobs = 1;
    }

    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    const bool progress = opts_.progress;
    size_t todo = 0;
    for (char h : have)
        todo += !h;

    auto worker = [&] {
        for (;;) {
            size_t i = next.fetch_add(1);
            if (i >= points.size())
                return;
            if (have[i])
                continue;
            const RunPoint &p = points[i];
            // Tag this thread's warn()/inform() lines with the point
            // so interleaved diagnostics stay attributable.
            setLogContext(p.id());
            SimResult r = runPoint(p, cache, opts_.trace);
            setLogContext("");
            size_t n = done.fetch_add(1) + 1;
            if (!r.ok())
                warn(p.id() + " failed (" + simStatusName(r.status) +
                     "): " + r.status_message);
            if (progress) {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "IPC %.3f", r.ipc());
                inform("[" + std::to_string(n) + "/" +
                       std::to_string(todo) + "] " + p.id() +
                       " " + simStatusName(r.status) +
                       (r.ok() ? " " + std::string(buf) : ""));
            }
            // Journal the finished cell immediately (append-only,
            // flushed) so a killed run loses at most the in-flight
            // points.
            if (journal.is_open()) {
                std::lock_guard<std::mutex> lock(journal_mutex);
                journal << journalEntryLine(i, p, r) << "\n";
                journal.flush();
            }
            // Results land at the point's plan index: the table order
            // (and all rendered output) is independent of job count
            // and completion order.
            results[i] = std::move(r);
        }
    };

    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; t++)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }

    // Differential pass: compare every non-baseline cell's digest
    // against its OoO sibling. Serial and deterministic — run after
    // the pool so restored and fresh cells are treated identically.
    std::vector<std::optional<DigestDivergence>> divergence(
        points.size());
    std::vector<const DigestRecord *> baseline_digest(points.size(),
                                                      nullptr);
    if (opts_.check_digests) {
        for (size_t i = 0; i < points.size(); i++) {
            const RunPoint &p = points[i];
            if (p.technique == Technique::OoO)
                continue;
            SimResult &r = results[i];
            if (!r.ok())
                continue;
            const SimResult &base =
                results[baseline_of.at(baselineKey(p))];
            if (!base.ok()) {
                warn(p.id() + ": OoO baseline failed (" +
                     simStatusName(base.status) +
                     "); cannot differentially check this cell");
                continue;
            }
            if (!r.digest || !base.digest) {
                // Restored cells from a journal written without
                // --check-digests have no digest to compare.
                warn(p.id() + ": no digest collected (journal from a "
                     "run without --check-digests?); cell unchecked");
                continue;
            }
            auto div = compareDigests(*base.digest, *r.digest);
            if (div) {
                r.status = SimStatus::Diverged;
                r.status_message =
                    "committed-state digest diverged from the OoO "
                    "baseline at " + div->toString();
                divergence[i] = *div;
                baseline_digest[i] = &*base.digest;
                warn(p.id() + " failed (diverged): " +
                     r.status_message);
            }
        }
    }

    // Repro bundles for every failed cell, Diverged included.
    if (!opts_.repro_dir.empty()) {
        for (size_t i = 0; i < points.size(); i++) {
            const SimResult &r = results[i];
            if (r.ok())
                continue;
            ReproBundle b;
            b.point = points[i];
            b.status = r.status;
            b.status_message = r.status_message;
            if (baseline_digest[i])
                b.baseline_digest = *baseline_digest[i];
            if (divergence[i])
                b.divergence = divergence[i];
            std::string path = writeReproBundle(opts_.repro_dir, b);
            inform(points[i].id() + ": repro bundle written to " +
                   path + " (re-run with: vrsim --replay " + path +
                   ")");
        }
    }

    return ResultTable(std::move(points), std::move(results));
}

} // namespace vrsim

/**
 * @file
 * Simulation facade: builds the hierarchy + engine for a technique,
 * runs a workload on the core, and collects a uniform result record —
 * the entry point examples and benches use.
 */

#ifndef VRSIM_DRIVER_SIMULATION_HH
#define VRSIM_DRIVER_SIMULATION_HH

#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/ooo_core.hh"
#include "runahead/dvr.hh"
#include "runahead/pre.hh"
#include "runahead/vector_runahead.hh"
#include "sim/config.hh"
#include "workloads/workload.hh"

namespace vrsim
{

/**
 * How one simulation run ended. The guarded entry points map the
 * error taxonomy (sim/logging.hh) onto this so a sweep can record a
 * failed run and keep going; see docs/robustness.md.
 */
enum class SimStatus : uint8_t
{
    Ok,       //!< run completed, statistics are valid
    Fatal,    //!< rejected configuration / user error (FatalError)
    Panic,    //!< internal invariant violation (PanicError)
    Hang,     //!< forward-progress watchdog expired (HangError)
    Diverged, //!< committed-state digest differs from the baseline's
    Crashed,  //!< child process died (signal / rlimit / bare exit);
              //!< only produced under --isolation process
    TimedOut, //!< child exceeded its wall-clock deadline and was
              //!< SIGKILLed; only produced under --isolation process
};

/** Lower-case status name as rendered in reports and CSV. */
const char *simStatusName(SimStatus s);

/**
 * SMARTS-style interval-sampling plan (docs/sampling.md). A sampled
 * run first functionally fast-forwards @p ff_insts instructions
 * (timing-free, native-loop speed), then covers the remaining budget
 * in periods of @p period instructions, each split into a functional
 * fast-forward with cache/BP warming, @p warm detailed-warm
 * instructions (simulated in full detail, excluded from statistics),
 * and @p detail detailed-measured instructions. Either half can be
 * used alone: ff_insts with period == 0 is a plain prefix skip before
 * a full-detail ROI.
 */
struct SamplingPlan
{
    uint64_t ff_insts = 0;  //!< functional prefix skip before the ROI
    uint64_t period = 0;    //!< instructions per period (0 = off)
    uint64_t detail = 0;    //!< detailed-measured insts per period
    uint64_t warm = 0;      //!< detailed-warm insts per period

    /** Is interval sampling (the periodic part) on? */
    bool sampling() const { return period != 0; }

    /** Does the plan change execution at all? */
    bool enabled() const { return ff_insts != 0 || sampling(); }

    /** fatal() on inconsistent geometry (detail == 0, detail + warm
     *  exceeding period). */
    void validate() const;

    /**
     * Parse the CLI form "N:M[:W]" — N detailed-measured instructions
     * per period of M, with W detailed-warm instructions before each
     * measured window (default: min(N, M - N)). fatal() on malformed
     * or inconsistent specs.
     */
    static SamplingPlan parse(const std::string &spec);
};

/**
 * Per-run summary of a sampled execution: how much ran functionally
 * vs. in detail, and the raw moments of the per-interval CPI
 * observations (mean / stddev / 95% CI derived on demand, Student-t
 * for small interval counts).
 *
 * The sampled quantity is CPI, not IPC, exactly as in SMARTS: with
 * fixed-length measure windows the arithmetic mean of per-interval
 * CPI equals total measured cycles over total measured instructions
 * (the ratio estimate of the full run's CPI), whereas a mean of
 * per-interval IPCs is biased high on any workload whose IPC varies
 * between intervals (Jensen: E[1/x] >= 1/E[x]). The derived ipcMean()
 * is the reciprocal, and ipcCi95() propagates the CPI interval
 * through the reciprocal (delta method) — see docs/sampling.md.
 */
struct SampleSummary
{
    uint64_t intervals = 0;   //!< completed detailed-measure windows
    uint64_t ff_insts = 0;    //!< functionally executed instructions
    uint64_t warm_insts = 0;  //!< detailed-warm insts (excluded from
                              //!< reported statistics)
    double cpi_sum = 0.0;     //!< sum of per-interval CPIs
    double cpi_sumsq = 0.0;   //!< sum of squared per-interval CPIs

    double cpiMean() const
    { return intervals ? cpi_sum / double(intervals) : 0.0; }
    double cpiStddev() const;
    double cpiCi95() const;

    double ipcMean() const
    { return cpiMean() > 0.0 ? 1.0 / cpiMean() : 0.0; }
    double ipcCi95() const
    {
        double m = cpiMean();
        return m > 0.0 ? cpiCi95() / (m * m) : 0.0;
    }
};

/**
 * Process exit code for a run that ended with @p status (the
 * docs/robustness.md table): 0 ok, 1 fatal, 70 panic/hang/diverged,
 * 124 timed out (the coreutils `timeout` convention), and 128+signo
 * for a crash by signal @p term_signal (1 when the terminating
 * signal is unknown) — so a SIGSEGV death can never alias a taxonomy
 * code like 70.
 */
int exitCodeForStatus(SimStatus status, int term_signal = 0);

/** Uniform result record of one simulation run. */
struct SimResult
{
    std::string workload;
    Technique technique = Technique::OoO;
    SimStatus status = SimStatus::Ok;
    std::string status_message;  //!< diagnostic when status != Ok
    CoreStats core;
    MemStats mem;
    double mlp = 0.0;        //!< mean L1D MSHRs busy per cycle
    double host_seconds = 0.0; //!< host wall time of the core run
                               //!< (self-profiling; never part of the
                               //!< default report output)
    double host_ff_seconds = 0.0;       //!< host time in functional
                                        //!< fast-forward segments
    double host_detailed_seconds = 0.0; //!< host time in detailed
                                        //!< (warm + measure) windows
    int term_signal = 0;       //!< terminating signal (Crashed cells
                               //!< under --isolation process; else 0)
    uint64_t rss_peak_kb = 0;  //!< child peak RSS in KiB (process
                               //!< isolation only; else 0)

    /** Did the run complete (statistics below are meaningful)? */
    bool ok() const { return status == SimStatus::Ok; }

    // Engine summaries (whichever applies).
    std::optional<PreStats> pre;
    std::optional<VrStats> vr;
    std::optional<DvrStats> dvr;

    /** Committed-state digest, when cfg.collect_digest was set. */
    std::optional<DigestRecord> digest;

    /** Sampling summary, when the run used an enabled SamplingPlan
     *  (intervals == 0 for a plain --ff-insts prefix skip). */
    std::optional<SampleSummary> sample;

    double ipc() const { return core.ipc(); }

    /** DRAM accesses from the main thread (demand + stride pf + IMP). */
    uint64_t dramMain() const { return mem.dramMain(); }

    /** DRAM accesses from runahead prefetching. */
    uint64_t dramRunahead() const { return mem.dramRunahead(); }
};

/**
 * Run @p spec (see makeWorkload) under @p technique. The workload is
 * rebuilt for each run so mutation by stores cannot leak between
 * techniques.
 */
SimResult runSimulation(const std::string &spec, Technique technique,
                        SystemConfig cfg,
                        const GraphScale &gscale = GraphScale{},
                        const HpcDbScale &hscale = HpcDbScale{},
                        uint64_t max_insts = 0,
                        uint64_t warmup_insts = 0);

/**
 * Run a pre-built workload (used by tests and custom examples).
 * When @p warmup_insts is nonzero, that many leading instructions
 * warm the caches/predictors and are excluded from the statistics.
 * @p dvr_features overrides the technique-derived DVR feature set
 * (ablations); ignored for non-DVR techniques. @p trace, when
 * non-null, is attached to the hierarchy, the engine, and the core
 * for cycle-level event tracing (obs/trace.hh); statistics and
 * digests are identical with and without it.
 *
 * @p sampling, when enabled, turns the run into a fast-forwarded
 * and/or interval-sampled one (docs/sampling.md): @p max_insts then
 * bounds the detailed/sampled ROI stream after the ff_insts prefix,
 * and combining interval sampling with @p warmup_insts is rejected
 * (the plan's per-window warm instructions replace it). The digest,
 * when collected, covers the full committed stream — fast-forwarded
 * regions hash through the functional path and are byte-identical to
 * a detailed run over the same stream.
 */
SimResult runWorkload(Workload &w, Technique technique,
                      SystemConfig cfg, uint64_t max_insts = 0,
                      uint64_t warmup_insts = 0,
                      const DvrFeatures *dvr_features = nullptr,
                      TraceSink *trace = nullptr,
                      const SamplingPlan &sampling = {});

/**
 * Fault-isolated variants: any FatalError / PanicError / HangError
 * raised by the run is caught and recorded as the result's status +
 * message instead of propagating, so one bad configuration or wedged
 * run degrades a sweep rather than destroying it. Failed results
 * carry zeroed statistics and ok() == false.
 */
SimResult runWorkloadGuarded(Workload &w, Technique technique,
                             SystemConfig cfg, uint64_t max_insts = 0,
                             uint64_t warmup_insts = 0,
                             const SamplingPlan &sampling = {});

/** Guarded runSimulation (also catches workload-construction errors). */
SimResult runSimulationGuarded(const std::string &spec,
                               Technique technique, SystemConfig cfg,
                               const GraphScale &gscale = GraphScale{},
                               const HpcDbScale &hscale = HpcDbScale{},
                               uint64_t max_insts = 0,
                               uint64_t warmup_insts = 0);

/**
 * The fault-isolation primitive behind the Guarded entry points: run
 * @p body, folding any FatalError / PanicError / HangError into a
 * failed SimResult labelled @p workload_name / @p technique. Exposed
 * so custom runners (SweepRunner, bespoke harnesses) get identical
 * error taxonomy handling.
 */
SimResult runGuarded(const std::string &workload_name,
                     Technique technique,
                     const std::function<SimResult()> &body);

/** All benchmark-input specs of the paper's Fig. 7 (GAP x 5 inputs +
 *  hpc-db). */
std::vector<std::string> allBenchmarkSpecs();

/** The 5-input GAP specs only. */
std::vector<std::string> gapBenchmarkSpecs();

/** Harmonic mean of positive values. */
double harmonicMean(const std::vector<double> &values);

/** Print a markdown-style table of results (one row per workload). */
void printSpeedupTable(std::ostream &os,
                       const std::vector<std::string> &row_names,
                       const std::vector<std::string> &col_names,
                       const std::vector<std::vector<double>> &cells);

} // namespace vrsim

#endif // VRSIM_DRIVER_SIMULATION_HH

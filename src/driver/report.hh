/**
 * @file
 * Report writers for simulation results: a human-readable full report,
 * a CSV row/sweep writer for downstream analysis, and a flattener that
 * turns a SimResult into a named-scalar StatGroup.
 */

#ifndef VRSIM_DRIVER_REPORT_HH
#define VRSIM_DRIVER_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "driver/simulation.hh"
#include "sim/stats.hh"

namespace vrsim
{

/** Flatten a SimResult into named scalars (stable key set per run). */
StatGroup toStatGroup(const SimResult &result);

/** Print a multi-section human-readable report for one run. */
void printReport(std::ostream &os, const SimResult &result,
                 const SystemConfig &cfg);

/**
 * CSV writer: header once, then one row per result. Columns are the
 * union of toStatGroup keys, fixed by the first row. Rows written
 * with a point ID (sweep output) gain a leading "point" column so
 * config-variant rows of the same workload/technique stay separable.
 */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    /** Append one result (writes the header on first use). */
    void row(const SimResult &result);

    /** Append one sweep-point result labelled with its stable ID. */
    void row(const SimResult &result, const std::string &point_id);

  private:
    void emit(const SimResult &result, const std::string *point_id);

    std::ostream &os_;
    std::vector<std::string> columns_;
    bool wrote_header_ = false;
    bool with_point_ = false;
};

/**
 * Machine-readable JSON for one run: status, message, configuration
 * echo and the full flattened stat set (same keys as the CSV). Used
 * by `vrsim --format json`.
 */
void printJson(std::ostream &os, const SimResult &result);

/** A JSON array of results (one sweep). */
void printJson(std::ostream &os, const std::vector<SimResult> &results);

} // namespace vrsim

#endif // VRSIM_DRIVER_REPORT_HH

/**
 * @file
 * Report writers for simulation results: a human-readable full report,
 * a CSV row/sweep writer for downstream analysis, and the registry
 * builder that maps a SimResult onto the observability layer's
 * hierarchical stat name space (obs/stats_registry.hh). Every output
 * format — CSV sweep rows, --format json, --stats-json — renders the
 * same registry, so the key set and naming convention are defined in
 * exactly one place (documented in docs/observability.md).
 */

#ifndef VRSIM_DRIVER_REPORT_HH
#define VRSIM_DRIVER_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "driver/plan.hh"
#include "driver/simulation.hh"
#include "obs/stats_registry.hh"

namespace vrsim
{

/**
 * Map a SimResult onto the observability registry: run.ok plus the
 * core./cpi./mem. groups always, pre./vr./dvr. when the engine ran,
 * and host. timing columns only when profiling columns are enabled
 * (obs/self_profile.hh) — host time is nondeterministic and must not
 * perturb byte-identical default output. Iteration order is
 * lexicographic by path (the canonical dump order).
 */
StatsRegistry buildRegistry(const SimResult &result);

/** Print a multi-section human-readable report for one run. */
void printReport(std::ostream &os, const SimResult &result,
                 const SystemConfig &cfg);

/**
 * CSV writer: header once, then one row per result. Columns are the
 * registry paths of the first row (buildRegistry), fixed thereafter.
 * Rows written with a point ID (sweep output) gain a leading "point"
 * column so config-variant rows of the same workload/technique stay
 * separable.
 */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    /** Append one result (writes the header on first use). */
    void row(const SimResult &result);

    /** Append one sweep-point result labelled with its stable ID. */
    void row(const SimResult &result, const std::string &point_id);

  private:
    void emit(const SimResult &result, const std::string *point_id);

    std::ostream &os_;
    std::vector<std::string> columns_;
    bool wrote_header_ = false;
    bool with_point_ = false;
};

/**
 * Machine-readable JSON for one run: status, message, configuration
 * echo and the full flattened stat set (same keys as the CSV). Used
 * by `vrsim --format json`.
 */
void printJson(std::ostream &os, const SimResult &result);

/** A JSON array of results (one sweep). */
void printJson(std::ostream &os, const std::vector<SimResult> &results);

/**
 * Registry dump per plan point (`vrsim --stats-json FILE`): a JSON
 * array with one object per point — id, workload, technique, status
 * and the full registry rendered by StatsRegistry::dumpJson, in plan
 * order. Parseable by sim/parse.hh's strict JsonValue reader.
 * When @p sweep is non-null and non-empty (process-isolation sweeps),
 * a trailing `"point": "<sweep>"` object carries the sweep-level
 * execution telemetry.
 */
void writeStatsJson(std::ostream &os, const ResultTable &table,
                    const StatsRegistry *sweep = nullptr);

} // namespace vrsim

#endif // VRSIM_DRIVER_REPORT_HH

/**
 * @file
 * Declarative experiment plans: a RunPlan names a grid (or union of
 * grids) of workload-spec × technique-column × config-variant points
 * with stable IDs, and a ResultTable holds the finished sweep for
 * rendering — figure binaries describe *what* to run here and hand
 * *how* to the SweepRunner (sweep_runner.hh).
 */

#ifndef VRSIM_DRIVER_PLAN_HH
#define VRSIM_DRIVER_PLAN_HH

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "driver/simulation.hh"

namespace vrsim
{

/**
 * One technique column of a plan: the engine to run, the label the
 * figure prints, and an optional DVR feature override for ablations
 * that split one technique into several columns.
 */
struct TechColumn
{
    Technique tech = Technique::OoO;
    std::string label;
    std::optional<DvrFeatures> features;

    TechColumn(Technique t) : tech(t), label(techniqueName(t)) {}
    TechColumn(Technique t, std::string l,
               std::optional<DvrFeatures> f = std::nullopt)
        : tech(t), label(std::move(l)), features(f)
    {}
};

/**
 * One configuration variant: a label ("rob=128") plus a tweak applied
 * to the plan's base SystemConfig. The base variant has an empty
 * label and no tweak.
 */
struct ConfigVariant
{
    std::string label;
    std::function<void(SystemConfig &)> tweak;

    static ConfigVariant base() { return ConfigVariant{}; }
};

/**
 * Which failure class an injected-failure point raises (the
 * `--inject-fail NAME[:KIND]` contract): each kind exercises one leg
 * of the error taxonomy end to end — exception, status, exit code,
 * repro bundle. Diverge runs the point for real but poisons its
 * digest so the differential-check path is exercised too.
 */
enum class InjectKind : uint8_t
{
    None,
    Fatal,
    Panic,
    Hang,
    Diverge,
    // Process-grade kinds (the chaos harness): these kill or wedge the
    // whole process instead of raising a guarded exception, so they
    // only make sense under --isolation process, where the child dies
    // and the supervising parent records the death. Under thread
    // isolation they are rejected with fatal().
    Segv,      //!< dereference null: die by SIGSEGV
    Oom,       //!< allocate until the RLIMIT_AS cap (or a self-bound)
    Spin,      //!< infinite loop: die by deadline / RLIMIT_CPU
    ExitCode,  //!< _exit(arg) without writing a result
    KillSelf,  //!< raise(arg): die by an arbitrary signal
};

/** Printable inject-kind name ("fatal", "panic", ...). */
const char *injectKindName(InjectKind k);

/** Parse an inject kind; fatal() on unknown names. */
InjectKind injectKindFromName(const std::string &name);

/**
 * Parse an inject-kind spec with an optional argument: "exit:3" and
 * "killself:9" carry one, the other kinds are bare names. fatal() on
 * unknown names, a missing/malformed argument, or an argument given
 * to a kind that takes none.
 */
InjectKind injectKindParse(const std::string &spec, uint32_t &arg);

/** Does this kind kill/wedge the process rather than raise a guarded
 *  exception? Such kinds require --isolation process. */
bool injectKindIsProcessGrade(InjectKind k);

/** One fully resolved grid point of a plan. */
struct RunPoint
{
    std::string spec;       //!< workload spec ("bfs/KR", "camel", ...)
    Technique technique = Technique::OoO;
    std::string column;     //!< technique-column label
    std::string variant;    //!< config-variant label ("" = base)
    std::optional<DvrFeatures> features;
    SystemConfig cfg;       //!< base config with the variant applied
    GraphScale gscale;
    HpcDbScale hscale;
    uint64_t max_insts = 0;
    uint64_t warmup = 0;
    SamplingPlan sampling;     //!< fast-forward / interval sampling
    bool inject_fail = false;  //!< raise inject_kind instead of running
    InjectKind inject_kind = InjectKind::None;
    uint32_t inject_arg = 0;   //!< exit code / signal for exit, killself

    /** Stable point ID: "spec:column" or "spec:column:variant". */
    std::string id() const;
};

/**
 * A declarative sweep description. Build it from grids:
 *
 *   RunPlan plan(env.cfg);
 *   plan.scale(env.gscale, env.hscale).roi(env.roi).warmup(env.warmup)
 *       .add(allBenchmarkSpecs(),
 *            {Technique::OoO, Technique::Vr, Technique::Dvr});
 *
 * points() enumerates the grid in declaration order (grid-major,
 * then spec, then technique column, then variant), which fixes both
 * the point IDs and the deterministic result order of any sweep.
 */
class RunPlan
{
  public:
    explicit RunPlan(SystemConfig base_cfg = SystemConfig::benchScale())
        : base_(std::move(base_cfg))
    {}

    /** Input scales applied to every point (default: struct defaults). */
    RunPlan &
    scale(const GraphScale &g, const HpcDbScale &h)
    {
        gscale_ = g;
        hscale_ = h;
        return *this;
    }

    /** Region-of-interest instructions per run (after warmup). */
    RunPlan &
    roi(uint64_t insts)
    {
        roi_ = insts;
        return *this;
    }

    /** Warmup instructions excluded from statistics. */
    RunPlan &
    warmup(uint64_t insts)
    {
        warmup_ = insts;
        return *this;
    }

    /** Functional fast-forward prefix before every point's ROI. */
    RunPlan &
    ffInsts(uint64_t insts)
    {
        sampling_.ff_insts = insts;
        return *this;
    }

    /**
     * Fast-forward / interval-sampling plan applied to every point
     * (docs/sampling.md). Replaces any previously set ffInsts().
     */
    RunPlan &
    sample(const SamplingPlan &plan)
    {
        plan.validate();
        sampling_ = plan;
        return *this;
    }

    /**
     * Append a grid: every spec × column × variant combination. With
     * no variants the base configuration is used. Returns *this so
     * several grids can be unioned into one plan (and one sweep).
     */
    RunPlan &add(std::vector<std::string> specs,
                 std::vector<TechColumn> columns,
                 std::vector<ConfigVariant> variants = {});

    /**
     * Fault injection: points whose technique equals @p t raise the
     * given failure kind instead of (or, for Diverge, after) running
     * (the vrsim --inject-fail contract, used to test that a failing
     * point cannot poison its siblings and that each failure class
     * produces its repro bundle and exit code).
     */
    RunPlan &
    injectFail(Technique t, InjectKind kind = InjectKind::Panic,
               uint32_t arg = 0)
    {
        inject_fail_ = t;
        inject_kind_ = kind;
        inject_arg_ = arg;
        return *this;
    }

    /** The resolved grid, in stable declaration order. */
    std::vector<RunPoint> points() const;

    /** Number of points without materializing them. */
    size_t size() const;

    const SystemConfig &baseConfig() const { return base_; }
    const GraphScale &graphScale() const { return gscale_; }
    const HpcDbScale &hpcdbScale() const { return hscale_; }

  private:
    struct Grid
    {
        std::vector<std::string> specs;
        std::vector<TechColumn> columns;
        std::vector<ConfigVariant> variants;
    };

    SystemConfig base_;
    GraphScale gscale_;
    HpcDbScale hscale_;
    uint64_t roi_ = 150'000;
    uint64_t warmup_ = 0;
    SamplingPlan sampling_;
    std::optional<Technique> inject_fail_;
    InjectKind inject_kind_ = InjectKind::Panic;
    uint32_t inject_arg_ = 0;
    std::vector<Grid> grids_;
};

/**
 * The finished sweep: points and their results in plan order. Lookup
 * is by (spec, column, variant); rendering code asks for exactly the
 * cells a figure needs and never re-runs anything.
 */
class ResultTable
{
  public:
    ResultTable() = default;
    ResultTable(std::vector<RunPoint> points,
                std::vector<SimResult> results);

    /** Result at (spec, column label, variant label); panics if absent. */
    const SimResult &at(const std::string &spec,
                        const std::string &column,
                        const std::string &variant = "") const;

    /** Convenience lookup by technique (column label = techniqueName). */
    const SimResult &
    at(const std::string &spec, Technique t,
       const std::string &variant = "") const
    {
        return at(spec, techniqueName(t), variant);
    }

    /** Null if the cell is not in the table. */
    const SimResult *find(const std::string &spec,
                          const std::string &column,
                          const std::string &variant = "") const;

    const std::vector<RunPoint> &points() const { return points_; }
    const std::vector<SimResult> &results() const { return results_; }
    size_t size() const { return points_.size(); }

    /** Number of failed (non-Ok) points. */
    size_t failures() const;

    /**
     * Write every result as a CSV sweep in plan order (deterministic
     * across job counts; see sweep_runner.hh).
     */
    void writeCsv(std::ostream &os) const;

  private:
    static std::string cellKey(const std::string &spec,
                               const std::string &column,
                               const std::string &variant);

    std::vector<RunPoint> points_;
    std::vector<SimResult> results_;
    std::map<std::string, size_t> index_;
};

} // namespace vrsim

#endif // VRSIM_DRIVER_PLAN_HH

#include "driver/report.hh"

#include <iomanip>

namespace vrsim
{

StatGroup
toStatGroup(const SimResult &r)
{
    StatGroup g(r.workload + "." + techniqueName(r.technique));
    auto set = [&g](const std::string &k, double v) {
        g.scalar(k) = v;
    };

    set("run.ok", r.ok() ? 1.0 : 0.0);
    set("core.instructions", double(r.core.instructions));
    set("core.cycles", double(r.core.cycles));
    set("core.ipc", r.ipc());
    set("core.loads", double(r.core.loads));
    set("core.stores", double(r.core.stores));
    set("core.branches", double(r.core.branches));
    set("core.mispredicts", double(r.core.mispredicts));
    set("core.stall_fetch", double(r.core.stall_fetch));
    set("core.stall_iq", double(r.core.stall_iq));
    set("core.stall_lq", double(r.core.stall_lq));
    set("core.stall_sq", double(r.core.stall_sq));
    set("core.stall_rob", double(r.core.rob_stall_cycles));
    set("core.runahead_triggers", double(r.core.full_rob_stall_events));
    set("core.runahead_commit_stall",
        double(r.core.runahead_commit_stall));

    CoreStats::CpiStack cs = r.core.cpiStack();
    set("cpi.base", cs.base);
    set("cpi.frontend", cs.frontend);
    set("cpi.issue_queue", cs.issue_queue);
    set("cpi.load_queue", cs.load_queue);
    set("cpi.store_queue", cs.store_queue);
    set("cpi.rob", cs.rob);
    set("cpi.runahead", cs.runahead);
    set("cpi.total", cs.total());

    set("mem.demand_accesses", double(r.mem.demand_accesses));
    set("mem.l1_hits", double(r.mem.demand_l1_hits));
    set("mem.l2_hits", double(r.mem.demand_l2_hits));
    set("mem.l3_hits", double(r.mem.demand_l3_hits));
    set("mem.mem_accesses", double(r.mem.demand_mem));
    set("mem.mean_load_latency",
        r.mem.demand_accesses
            ? double(r.mem.demand_latency_sum) /
                  double(r.mem.demand_accesses)
            : 0.0);
    set("mem.dram_total", double(r.mem.dramTotal()));
    set("mem.dram_main", double(r.dramMain()));
    set("mem.dram_runahead", double(r.dramRunahead()));
    set("mem.mlp", r.mlp);
    set("mem.pf_lines_filled", double(r.mem.pf_lines_filled));
    set("mem.pf_used_l1", double(r.mem.pf_used_l1));
    set("mem.pf_used_l2", double(r.mem.pf_used_l2));
    set("mem.pf_used_l3", double(r.mem.pf_used_l3));
    set("mem.pf_used_inflight", double(r.mem.pf_used_inflight));

    if (r.pre) {
        set("pre.intervals", double(r.pre->intervals));
        set("pre.prefetches", double(r.pre->prefetches));
        set("pre.skipped_dependent", double(r.pre->skipped_dependent));
    }
    if (r.vr) {
        set("vr.triggers", double(r.vr->triggers));
        set("vr.vectorizations", double(r.vr->vectorizations));
        set("vr.lanes", double(r.vr->lanes_spawned));
        set("vr.prefetches", double(r.vr->prefetches));
        set("vr.lanes_invalidated", double(r.vr->lanes_invalidated));
    }
    if (r.dvr) {
        set("dvr.discoveries", double(r.dvr->discoveries));
        set("dvr.discovery_aborts", double(r.dvr->discovery_aborts));
        set("dvr.innermost_switches",
            double(r.dvr->innermost_switches));
        set("dvr.spawns", double(r.dvr->spawns));
        set("dvr.nested_spawns", double(r.dvr->nested_spawns));
        set("dvr.lanes", double(r.dvr->lanes_spawned));
        set("dvr.mean_lanes", r.dvr->meanLanes());
        set("dvr.prefetches", double(r.dvr->prefetches));
        set("dvr.divergences", double(r.dvr->divergences));
        set("dvr.bound_limited", double(r.dvr->bound_limited));
        set("dvr.dedupe_skips", double(r.dvr->dedupe_skips));
    }
    return g;
}

void
printReport(std::ostream &os, const SimResult &r,
            const SystemConfig &cfg)
{
    os << "=== " << r.workload << " under "
       << techniqueName(r.technique) << " ===\n";
    SystemConfig shown = cfg;
    shown.technique = r.technique;
    printConfig(os, shown);

    if (!r.ok()) {
        // A failed run has no meaningful statistics: report what
        // happened and stop.
        os << "\n-- status --\n";
        os << "status          " << simStatusName(r.status) << "\n";
        os << "message         " << r.status_message << "\n";
        return;
    }

    os << "\n-- performance --\n";
    os << std::fixed << std::setprecision(3);
    os << "instructions    " << r.core.instructions << "\n";
    os << "cycles          " << r.core.cycles << "\n";
    os << "IPC             " << r.ipc() << "\n";

    auto pct = [&r](uint64_t v) {
        return r.core.cycles ? 100.0 * double(v) / double(r.core.cycles)
                             : 0.0;
    };
    CoreStats::CpiStack cs = r.core.cpiStack();
    os << "\n-- CPI stack --\n" << std::setprecision(3);
    os << "base            " << cs.base << "\n";
    os << "front-end       " << cs.frontend << "\n";
    os << "issue queue     " << cs.issue_queue << "\n";
    os << "load queue      " << cs.load_queue << "\n";
    os << "store queue     " << cs.store_queue << "\n";
    os << "ROB             " << cs.rob << "\n";
    os << "runahead        " << cs.runahead << "\n";
    os << "total CPI       " << cs.total() << "\n";

    os << "\n-- dispatch stalls (% of cycles) --\n"
       << std::setprecision(1);
    os << "fetch redirect  " << pct(r.core.stall_fetch) << "%\n";
    os << "issue queue     " << pct(r.core.stall_iq) << "%\n";
    os << "load queue      " << pct(r.core.stall_lq) << "%\n";
    os << "store queue     " << pct(r.core.stall_sq) << "%\n";
    os << "ROB             " << pct(r.core.rob_stall_cycles) << "%\n";

    os << "\n-- memory --\n";
    double acc = double(std::max<uint64_t>(1, r.mem.demand_accesses));
    os << "demand accesses " << r.mem.demand_accesses << "\n";
    os << "L1/L2/L3/mem    " << 100.0 * r.mem.demand_l1_hits / acc
       << "% / " << 100.0 * r.mem.demand_l2_hits / acc << "% / "
       << 100.0 * r.mem.demand_l3_hits / acc << "% / "
       << 100.0 * r.mem.demand_mem / acc << "%\n";
    os << "mean latency    "
       << double(r.mem.demand_latency_sum) / acc << " cycles\n";
    os << "MLP (MSHRs/cyc) " << r.mlp << "\n";
    os << "DRAM fills      " << r.mem.dramTotal() << " (main "
       << r.dramMain() << ", runahead " << r.dramRunahead() << ")\n";

    if (r.core.branches) {
        os << "\n-- branches --\n";
        os << "mispredict rate "
           << 100.0 * double(r.core.mispredicts) /
                  double(r.core.branches)
           << "% (" << r.core.mispredicts << " / " << r.core.branches
           << ")\n";
    }

    if (r.pre) {
        os << "\n-- PRE --\n";
        os << "intervals       " << r.pre->intervals << "\n";
        os << "prefetches      " << r.pre->prefetches << "\n";
        os << "skipped (dep.)  " << r.pre->skipped_dependent << "\n";
    }
    if (r.vr) {
        os << "\n-- Vector Runahead --\n";
        os << "triggers        " << r.vr->triggers << "\n";
        os << "vectorizations  " << r.vr->vectorizations << "\n";
        os << "lanes           " << r.vr->lanes_spawned << "\n";
        os << "prefetches      " << r.vr->prefetches << "\n";
        os << "invalidated     " << r.vr->lanes_invalidated << "\n";
        os << "commit stall    " << r.core.runahead_commit_stall
           << " cycles\n";
    }
    if (r.dvr) {
        os << "\n-- Decoupled Vector Runahead --\n";
        os << "discoveries     " << r.dvr->discoveries << " ("
           << r.dvr->discovery_aborts << " aborted, "
           << r.dvr->innermost_switches << " innermost switches)\n";
        os << "spawns          " << r.dvr->spawns << " ("
           << r.dvr->nested_spawns << " nested)\n";
        os << "lanes           " << r.dvr->lanes_spawned << " (mean "
           << r.dvr->meanLanes() << ")\n";
        os << "prefetches      " << r.dvr->prefetches << "\n";
        os << "divergences     " << r.dvr->divergences << "\n";
        os << "bound-limited   " << r.dvr->bound_limited << "\n";
    }
}

void
CsvWriter::row(const SimResult &r)
{
    emit(r, nullptr);
}

void
CsvWriter::row(const SimResult &r, const std::string &point_id)
{
    emit(r, &point_id);
}

void
CsvWriter::emit(const SimResult &r, const std::string *point_id)
{
    StatGroup g = toStatGroup(r);
    if (!wrote_header_) {
        wrote_header_ = true;
        with_point_ = point_id != nullptr;
        if (with_point_)
            os_ << "point,";
        os_ << "workload,technique,status,message";
        for (const auto &kv : g.all()) {
            columns_.push_back(kv.first);
            os_ << "," << kv.first;
        }
        os_ << "\n";
    }
    panicIfNot(with_point_ == (point_id != nullptr),
               "CsvWriter: mixing point-labelled and plain rows");
    // The diagnostic message may contain the CSV separator; keep the
    // row machine-parsable.
    std::string msg = r.status_message;
    for (char &c : msg)
        if (c == ',' || c == '\n')
            c = ';';
    if (with_point_)
        os_ << *point_id << ",";
    os_ << r.workload << "," << techniqueName(r.technique) << ","
        << simStatusName(r.status) << "," << msg;
    for (const auto &col : columns_)
        os_ << "," << (g.has(col) ? g.value(col) : 0.0);
    os_ << "\n";
}

namespace
{

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
jsonObject(std::ostream &os, const SimResult &r, const char *indent)
{
    os << indent << "{\n";
    os << indent << "  \"workload\": \"" << jsonEscape(r.workload)
       << "\",\n";
    os << indent << "  \"technique\": \""
       << jsonEscape(techniqueName(r.technique)) << "\",\n";
    os << indent << "  \"status\": \"" << simStatusName(r.status)
       << "\",\n";
    os << indent << "  \"message\": \"" << jsonEscape(r.status_message)
       << "\",\n";
    os << indent << "  \"stats\": {";
    StatGroup g = toStatGroup(r);
    bool first = true;
    for (const auto &kv : g.all()) {
        os << (first ? "\n" : ",\n") << indent << "    \"" << kv.first
           << "\": " << kv.second.value();
        first = false;
    }
    os << "\n" << indent << "  }\n";
    os << indent << "}";
}

} // namespace

void
printJson(std::ostream &os, const SimResult &r)
{
    // Full double precision so downstream tooling round-trips values.
    auto prec = os.precision(15);
    jsonObject(os, r, "");
    os << "\n";
    os.precision(prec);
}

void
printJson(std::ostream &os, const std::vector<SimResult> &results)
{
    auto prec = os.precision(15);
    os << "[\n";
    for (size_t i = 0; i < results.size(); i++) {
        jsonObject(os, results[i], "  ");
        os << (i + 1 < results.size() ? ",\n" : "\n");
    }
    os << "]\n";
    os.precision(prec);
}

} // namespace vrsim

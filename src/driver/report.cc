#include "driver/report.hh"

#include <iomanip>

#include "obs/self_profile.hh"

namespace vrsim
{

StatsRegistry
buildRegistry(const SimResult &r)
{
    StatsRegistry reg;
    reg.addGauge("run.ok", "1 when the run completed") =
        r.ok() ? 1.0 : 0.0;
    r.core.registerIn(reg);
    r.mem.registerIn(reg, r.mlp);
    if (r.pre)
        r.pre->registerIn(reg);
    if (r.vr)
        r.vr->registerIn(reg);
    if (r.dvr)
        r.dvr->registerIn(reg);
    if (r.sample) {
        reg.addCounter("sample.intervals",
                       "completed detailed-measure windows") +=
            r.sample->intervals;
        reg.addCounter("sample.ff_insts",
                       "functionally fast-forwarded instructions") +=
            r.sample->ff_insts;
        reg.addCounter("sample.warm_insts",
                       "detailed-warm instructions excluded from "
                       "statistics") += r.sample->warm_insts;
        reg.addSample("sample.cpi",
                      "per-interval CPI of the detailed-measure "
                      "windows (mean, stddev, 95% CI); sampled IPC "
                      "is 1/mean")
            .setMoments(r.sample->cpi_sum, r.sample->cpi_sumsq,
                        r.sample->intervals);
    }
    // Host-side timing is wall-clock and therefore nondeterministic;
    // it only enters reports when profiling columns are opted into
    // (--profile / VRSIM_PROFILE), keeping default output
    // byte-identical across runs and job counts.
    if (profileColumnsEnabled()) {
        reg.addGauge("host.seconds",
                     "host wall time of the core run") =
            r.host_seconds;
        reg.addGauge("host.minsts_per_sec",
                     "simulated Minsts per host second") =
            r.host_seconds > 0.0
                ? double(r.core.instructions) / r.host_seconds / 1e6
                : 0.0;
        reg.addGauge("host.ff_seconds",
                     "host wall time in functional fast-forward "
                     "segments") = r.host_ff_seconds;
        reg.addGauge("host.detailed_seconds",
                     "host wall time in detailed (warm + measure) "
                     "windows") = r.host_detailed_seconds;
        reg.addGauge("host.ff_minsts_per_sec",
                     "functionally fast-forwarded Minsts per host "
                     "second") =
            r.host_ff_seconds > 0.0 && r.sample
                ? double(r.sample->ff_insts) / r.host_ff_seconds / 1e6
                : 0.0;
    }
    return reg;
}

void
printReport(std::ostream &os, const SimResult &r,
            const SystemConfig &cfg)
{
    os << "=== " << r.workload << " under "
       << techniqueName(r.technique) << " ===\n";
    SystemConfig shown = cfg;
    shown.technique = r.technique;
    printConfig(os, shown);

    if (!r.ok()) {
        // A failed run has no meaningful statistics: report what
        // happened and stop.
        os << "\n-- status --\n";
        os << "status          " << simStatusName(r.status) << "\n";
        os << "message         " << r.status_message << "\n";
        return;
    }

    os << "\n-- performance --\n";
    os << std::fixed << std::setprecision(3);
    os << "instructions    " << r.core.instructions << "\n";
    os << "cycles          " << r.core.cycles << "\n";
    os << "IPC             " << r.ipc() << "\n";

    if (r.sample && (r.sample->intervals || r.sample->ff_insts)) {
        os << "\n-- sampling --\n";
        os << "ff insts        " << r.sample->ff_insts << "\n";
        if (r.sample->intervals) {
            os << "warm insts      " << r.sample->warm_insts << "\n";
            os << "intervals       " << r.sample->intervals << "\n";
            os << "sampled CPI     " << r.sample->cpiMean() << " +- "
               << r.sample->cpiCi95() << " (95% CI, stddev "
               << r.sample->cpiStddev() << ")\n";
            os << "sampled IPC     " << r.sample->ipcMean() << " +- "
               << r.sample->ipcCi95() << " (95% CI, delta method)\n";
        }
    }

    auto pct = [&r](uint64_t v) {
        return r.core.cycles ? 100.0 * double(v) / double(r.core.cycles)
                             : 0.0;
    };
    CoreStats::CpiStack cs = r.core.cpiStack();
    os << "\n-- CPI stack --\n" << std::setprecision(3);
    os << "base            " << cs.base << "\n";
    os << "front-end       " << cs.frontend << "\n";
    os << "issue queue     " << cs.issue_queue << "\n";
    os << "load queue      " << cs.load_queue << "\n";
    os << "store queue     " << cs.store_queue << "\n";
    os << "ROB             " << cs.rob << "\n";
    os << "runahead        " << cs.runahead << "\n";
    os << "total CPI       " << cs.total() << "\n";

    os << "\n-- dispatch stalls (% of cycles) --\n"
       << std::setprecision(1);
    os << "fetch redirect  " << pct(r.core.stall_fetch) << "%\n";
    os << "issue queue     " << pct(r.core.stall_iq) << "%\n";
    os << "load queue      " << pct(r.core.stall_lq) << "%\n";
    os << "store queue     " << pct(r.core.stall_sq) << "%\n";
    os << "ROB             " << pct(r.core.rob_stall_cycles) << "%\n";

    os << "\n-- memory --\n";
    double acc = double(std::max<uint64_t>(1, r.mem.demand_accesses));
    os << "demand accesses " << r.mem.demand_accesses << "\n";
    os << "L1/L2/L3/mem    " << 100.0 * r.mem.demand_l1_hits / acc
       << "% / " << 100.0 * r.mem.demand_l2_hits / acc << "% / "
       << 100.0 * r.mem.demand_l3_hits / acc << "% / "
       << 100.0 * r.mem.demand_mem / acc << "%\n";
    os << "mean latency    "
       << double(r.mem.demand_latency_sum) / acc << " cycles\n";
    os << "MLP (MSHRs/cyc) " << r.mlp << "\n";
    os << "DRAM fills      " << r.mem.dramTotal() << " (main "
       << r.dramMain() << ", runahead " << r.dramRunahead() << ")\n";

    if (r.core.branches) {
        os << "\n-- branches --\n";
        os << "mispredict rate "
           << 100.0 * double(r.core.mispredicts) /
                  double(r.core.branches)
           << "% (" << r.core.mispredicts << " / " << r.core.branches
           << ")\n";
    }

    if (r.pre) {
        os << "\n-- PRE --\n";
        os << "intervals       " << r.pre->intervals << "\n";
        os << "prefetches      " << r.pre->prefetches << "\n";
        os << "skipped (dep.)  " << r.pre->skipped_dependent << "\n";
    }
    if (r.vr) {
        os << "\n-- Vector Runahead --\n";
        os << "triggers        " << r.vr->triggers << "\n";
        os << "vectorizations  " << r.vr->vectorizations << "\n";
        os << "lanes           " << r.vr->lanes_spawned << "\n";
        os << "prefetches      " << r.vr->prefetches << "\n";
        os << "invalidated     " << r.vr->lanes_invalidated << "\n";
        os << "commit stall    " << r.core.runahead_commit_stall
           << " cycles\n";
    }
    if (r.dvr) {
        os << "\n-- Decoupled Vector Runahead --\n";
        os << "discoveries     " << r.dvr->discoveries << " ("
           << r.dvr->discovery_aborts << " aborted, "
           << r.dvr->innermost_switches << " innermost switches)\n";
        os << "spawns          " << r.dvr->spawns << " ("
           << r.dvr->nested_spawns << " nested)\n";
        os << "lanes           " << r.dvr->lanes_spawned << " (mean "
           << r.dvr->meanLanes() << ")\n";
        os << "prefetches      " << r.dvr->prefetches << "\n";
        os << "divergences     " << r.dvr->divergences << "\n";
        os << "bound-limited   " << r.dvr->bound_limited << "\n";
    }
}

void
CsvWriter::row(const SimResult &r)
{
    emit(r, nullptr);
}

void
CsvWriter::row(const SimResult &r, const std::string &point_id)
{
    emit(r, &point_id);
}

void
CsvWriter::emit(const SimResult &r, const std::string *point_id)
{
    StatsRegistry reg = buildRegistry(r);
    if (!wrote_header_) {
        wrote_header_ = true;
        with_point_ = point_id != nullptr;
        if (with_point_)
            os_ << "point,";
        os_ << "workload,technique,status,message";
        for (const auto &path : reg.paths()) {
            columns_.push_back(path);
            os_ << "," << path;
        }
        os_ << "\n";
    }
    panicIfNot(with_point_ == (point_id != nullptr),
               "CsvWriter: mixing point-labelled and plain rows");
    // The diagnostic message may contain the CSV separator; keep the
    // row machine-parsable.
    std::string msg = r.status_message;
    for (char &c : msg)
        if (c == ',' || c == '\n')
            c = ';';
    if (with_point_)
        os_ << *point_id << ",";
    os_ << r.workload << "," << techniqueName(r.technique) << ","
        << simStatusName(r.status) << "," << msg;
    for (const auto &col : columns_)
        os_ << "," << (reg.has(col) ? reg.value(col) : 0.0);
    os_ << "\n";
}

namespace
{

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
jsonObject(std::ostream &os, const SimResult &r, const char *indent)
{
    os << indent << "{\n";
    os << indent << "  \"workload\": \"" << jsonEscape(r.workload)
       << "\",\n";
    os << indent << "  \"technique\": \""
       << jsonEscape(techniqueName(r.technique)) << "\",\n";
    os << indent << "  \"status\": \"" << simStatusName(r.status)
       << "\",\n";
    os << indent << "  \"message\": \"" << jsonEscape(r.status_message)
       << "\",\n";
    os << indent << "  \"stats\": {";
    StatsRegistry reg = buildRegistry(r);
    bool first = true;
    reg.visit([&](const StatNode &n) {
        os << (first ? "\n" : ",\n") << indent << "    \"" << n.path()
           << "\": " << n.value(reg);
        first = false;
    });
    os << "\n" << indent << "  }\n";
    os << indent << "}";
}

} // namespace

void
printJson(std::ostream &os, const SimResult &r)
{
    // Full double precision so downstream tooling round-trips values.
    auto prec = os.precision(15);
    jsonObject(os, r, "");
    os << "\n";
    os.precision(prec);
}

void
printJson(std::ostream &os, const std::vector<SimResult> &results)
{
    auto prec = os.precision(15);
    os << "[\n";
    for (size_t i = 0; i < results.size(); i++) {
        jsonObject(os, results[i], "  ");
        os << (i + 1 < results.size() ? ",\n" : "\n");
    }
    os << "]\n";
    os.precision(prec);
}

void
writeStatsJson(std::ostream &os, const ResultTable &table,
               const StatsRegistry *sweep)
{
    // An empty sweep registry (thread-mode sweeps) is treated as
    // absent so existing output stays byte-identical.
    const bool with_sweep = sweep && sweep->size() > 0;
    auto prec = os.precision(15);
    os << "[\n";
    for (size_t i = 0; i < table.size(); i++) {
        const RunPoint &p = table.points()[i];
        const SimResult &r = table.results()[i];
        os << "  {\n";
        os << "    \"point\": \"" << jsonEscape(p.id()) << "\",\n";
        os << "    \"workload\": \"" << jsonEscape(r.workload)
           << "\",\n";
        os << "    \"technique\": \""
           << jsonEscape(techniqueName(r.technique)) << "\",\n";
        os << "    \"status\": \"" << simStatusName(r.status)
           << "\",\n";
        os << "    \"stats\": ";
        buildRegistry(r).dumpJson(os);
        os << "\n  }"
           << (i + 1 < table.size() || with_sweep ? "," : "") << "\n";
    }
    if (with_sweep) {
        // Trailing element: sweep-level execution telemetry
        // (sweep.cells.*, sweep.backoff_ms) from process isolation.
        os << "  {\n";
        os << "    \"point\": \"<sweep>\",\n";
        os << "    \"stats\": ";
        sweep->dumpJson(os);
        os << "\n  }\n";
    }
    os << "]\n";
    os.precision(prec);
}

} // namespace vrsim

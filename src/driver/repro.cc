#include "driver/repro.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sim/parse.hh"

namespace vrsim
{

namespace
{

// ---- JSON writing primitives ----

std::string
u64(uint64_t v)
{
    return std::to_string(v);
}

std::string
f64(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
hex64(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "\"%016llx\"",
                  (unsigned long long)v);
    return buf;
}

std::string
str(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
boolean(bool b)
{
    return b ? "true" : "false";
}

/** Tiny builder for one-line JSON objects. */
struct Obj
{
    std::string out = "{";
    bool first = true;

    Obj &
    field(const char *key, const std::string &raw)
    {
        if (!first)
            out += ",";
        first = false;
        out += "\"";
        out += key;
        out += "\":";
        out += raw;
        return *this;
    }

    std::string done() { return out + "}"; }
};

uint64_t
hexFromJson(const JsonValue &v)
{
    const std::string &s = v.asString();
    char *end = nullptr;
    unsigned long long x = std::strtoull(s.c_str(), &end, 16);
    if (s.empty() || *end != '\0')
        fatal("malformed hex digest '" + s + "' in bundle/journal");
    return x;
}

// ---- statistics blocks ----

std::string
coreStatsToJson(const CoreStats &c)
{
    return Obj{}
        .field("instructions", u64(c.instructions))
        .field("cycles", u64(c.cycles))
        .field("loads", u64(c.loads))
        .field("stores", u64(c.stores))
        .field("branches", u64(c.branches))
        .field("mispredicts", u64(c.mispredicts))
        .field("rob_stall_cycles", u64(c.rob_stall_cycles))
        .field("full_rob_stall_events", u64(c.full_rob_stall_events))
        .field("runahead_commit_stall", u64(c.runahead_commit_stall))
        .field("btb_misses", u64(c.btb_misses))
        .field("icache_misses", u64(c.icache_misses))
        .field("stall_fetch", u64(c.stall_fetch))
        .field("stall_iq", u64(c.stall_iq))
        .field("stall_lq", u64(c.stall_lq))
        .field("stall_sq", u64(c.stall_sq))
        .done();
}

CoreStats
coreStatsFromJson(const JsonValue &v)
{
    CoreStats c;
    c.instructions = v.at("instructions").asU64();
    c.cycles = v.at("cycles").asU64();
    c.loads = v.at("loads").asU64();
    c.stores = v.at("stores").asU64();
    c.branches = v.at("branches").asU64();
    c.mispredicts = v.at("mispredicts").asU64();
    c.rob_stall_cycles = v.at("rob_stall_cycles").asU64();
    c.full_rob_stall_events = v.at("full_rob_stall_events").asU64();
    c.runahead_commit_stall = v.at("runahead_commit_stall").asU64();
    c.btb_misses = v.at("btb_misses").asU64();
    c.icache_misses = v.at("icache_misses").asU64();
    c.stall_fetch = v.at("stall_fetch").asU64();
    c.stall_iq = v.at("stall_iq").asU64();
    c.stall_lq = v.at("stall_lq").asU64();
    c.stall_sq = v.at("stall_sq").asU64();
    return c;
}

std::string
memStatsToJson(const MemStats &m)
{
    std::string dram = "[";
    for (size_t i = 0; i < m.dram_by_requester.size(); i++) {
        if (i)
            dram += ",";
        dram += u64(m.dram_by_requester[i]);
    }
    dram += "]";
    return Obj{}
        .field("demand_accesses", u64(m.demand_accesses))
        .field("demand_l1_hits", u64(m.demand_l1_hits))
        .field("demand_l2_hits", u64(m.demand_l2_hits))
        .field("demand_l3_hits", u64(m.demand_l3_hits))
        .field("demand_mem", u64(m.demand_mem))
        .field("demand_latency_sum", u64(m.demand_latency_sum))
        .field("dram_by_requester", dram)
        .field("pf_lines_filled", u64(m.pf_lines_filled))
        .field("pf_used_l1", u64(m.pf_used_l1))
        .field("pf_used_l2", u64(m.pf_used_l2))
        .field("pf_used_l3", u64(m.pf_used_l3))
        .field("pf_used_inflight", u64(m.pf_used_inflight))
        .done();
}

MemStats
memStatsFromJson(const JsonValue &v)
{
    MemStats m;
    m.demand_accesses = v.at("demand_accesses").asU64();
    m.demand_l1_hits = v.at("demand_l1_hits").asU64();
    m.demand_l2_hits = v.at("demand_l2_hits").asU64();
    m.demand_l3_hits = v.at("demand_l3_hits").asU64();
    m.demand_mem = v.at("demand_mem").asU64();
    m.demand_latency_sum = v.at("demand_latency_sum").asU64();
    const auto &dram = v.at("dram_by_requester").asArray();
    if (dram.size() != m.dram_by_requester.size())
        fatal("dram_by_requester has " + std::to_string(dram.size()) +
              " entries, expected " +
              std::to_string(m.dram_by_requester.size()));
    for (size_t i = 0; i < dram.size(); i++)
        m.dram_by_requester[i] = dram[i].asU64();
    m.pf_lines_filled = v.at("pf_lines_filled").asU64();
    m.pf_used_l1 = v.at("pf_used_l1").asU64();
    m.pf_used_l2 = v.at("pf_used_l2").asU64();
    m.pf_used_l3 = v.at("pf_used_l3").asU64();
    m.pf_used_inflight = v.at("pf_used_inflight").asU64();
    return m;
}

std::string
preStatsToJson(const PreStats &p)
{
    return Obj{}
        .field("intervals", u64(p.intervals))
        .field("insts_examined", u64(p.insts_examined))
        .field("prefetches", u64(p.prefetches))
        .field("skipped_dependent", u64(p.skipped_dependent))
        .done();
}

PreStats
preStatsFromJson(const JsonValue &v)
{
    PreStats p;
    p.intervals = v.at("intervals").asU64();
    p.insts_examined = v.at("insts_examined").asU64();
    p.prefetches = v.at("prefetches").asU64();
    p.skipped_dependent = v.at("skipped_dependent").asU64();
    return p;
}

std::string
vrStatsToJson(const VrStats &s)
{
    return Obj{}
        .field("triggers", u64(s.triggers))
        .field("vectorizations", u64(s.vectorizations))
        .field("lanes_spawned", u64(s.lanes_spawned))
        .field("prefetches", u64(s.prefetches))
        .field("lanes_invalidated", u64(s.lanes_invalidated))
        .field("delayed_term_cycles", u64(s.delayed_term_cycles))
        .done();
}

VrStats
vrStatsFromJson(const JsonValue &v)
{
    VrStats s;
    s.triggers = v.at("triggers").asU64();
    s.vectorizations = v.at("vectorizations").asU64();
    s.lanes_spawned = v.at("lanes_spawned").asU64();
    s.prefetches = v.at("prefetches").asU64();
    s.lanes_invalidated = v.at("lanes_invalidated").asU64();
    s.delayed_term_cycles = v.at("delayed_term_cycles").asU64();
    return s;
}

std::string
dvrStatsToJson(const DvrStats &s)
{
    return Obj{}
        .field("discoveries", u64(s.discoveries))
        .field("discovery_aborts", u64(s.discovery_aborts))
        .field("innermost_switches", u64(s.innermost_switches))
        .field("spawns", u64(s.spawns))
        .field("nested_spawns", u64(s.nested_spawns))
        .field("ndm_fallbacks", u64(s.ndm_fallbacks))
        .field("lanes_spawned", u64(s.lanes_spawned))
        .field("prefetches", u64(s.prefetches))
        .field("divergences", u64(s.divergences))
        .field("bound_limited", u64(s.bound_limited))
        .field("dedupe_skips", u64(s.dedupe_skips))
        .done();
}

DvrStats
dvrStatsFromJson(const JsonValue &v)
{
    DvrStats s;
    s.discoveries = v.at("discoveries").asU64();
    s.discovery_aborts = v.at("discovery_aborts").asU64();
    s.innermost_switches = v.at("innermost_switches").asU64();
    s.spawns = v.at("spawns").asU64();
    s.nested_spawns = v.at("nested_spawns").asU64();
    s.ndm_fallbacks = v.at("ndm_fallbacks").asU64();
    s.lanes_spawned = v.at("lanes_spawned").asU64();
    s.prefetches = v.at("prefetches").asU64();
    s.divergences = v.at("divergences").asU64();
    s.bound_limited = v.at("bound_limited").asU64();
    s.dedupe_skips = v.at("dedupe_skips").asU64();
    return s;
}

std::string
sampleToJson(const SampleSummary &s)
{
    return Obj{}
        .field("intervals", u64(s.intervals))
        .field("ff_insts", u64(s.ff_insts))
        .field("warm_insts", u64(s.warm_insts))
        .field("cpi_sum", f64(s.cpi_sum))
        .field("cpi_sumsq", f64(s.cpi_sumsq))
        .done();
}

SampleSummary
sampleFromJson(const JsonValue &v)
{
    SampleSummary s;
    s.intervals = v.at("intervals").asU64();
    s.ff_insts = v.at("ff_insts").asU64();
    s.warm_insts = v.at("warm_insts").asU64();
    s.cpi_sum = v.at("cpi_sum").asF64();
    s.cpi_sumsq = v.at("cpi_sumsq").asF64();
    return s;
}

std::string
digestToJson(const DigestRecord &d)
{
    std::string iv = "[";
    for (size_t i = 0; i < d.intervals.size(); i++) {
        if (i)
            iv += ",";
        iv += hex64(d.intervals[i]);
    }
    iv += "]";
    return Obj{}
        .field("interval", u64(d.interval))
        .field("instructions", u64(d.instructions))
        .field("final_digest", hex64(d.final_digest))
        .field("intervals", iv)
        .done();
}

DigestRecord
digestFromJson(const JsonValue &v)
{
    DigestRecord d;
    d.interval = v.at("interval").asU64();
    d.instructions = v.at("instructions").asU64();
    d.final_digest = hexFromJson(v.at("final_digest"));
    for (const JsonValue &e : v.at("intervals").asArray())
        d.intervals.push_back(hexFromJson(e));
    return d;
}

std::string
divergenceToJson(const DigestDivergence &d)
{
    return Obj{}
        .field("interval_index", u64(d.interval_index))
        .field("inst_lo", u64(d.inst_lo))
        .field("inst_hi", u64(d.inst_hi))
        .field("expected", hex64(d.expected))
        .field("actual", hex64(d.actual))
        .done();
}

DigestDivergence
divergenceFromJson(const JsonValue &v)
{
    DigestDivergence d;
    d.interval_index = v.at("interval_index").asU64();
    d.inst_lo = v.at("inst_lo").asU64();
    d.inst_hi = v.at("inst_hi").asU64();
    d.expected = hexFromJson(v.at("expected"));
    d.actual = hexFromJson(v.at("actual"));
    return d;
}

// ---- configuration blocks ----

std::string
cacheToJson(const CacheConfig &c)
{
    return Obj{}
        .field("size_bytes", u64(c.size_bytes))
        .field("assoc", u64(c.assoc))
        .field("line_bytes", u64(c.line_bytes))
        .field("latency", u64(c.latency))
        .field("mshrs", u64(c.mshrs))
        .field("ports", u64(c.ports))
        .field("repl", u64(uint64_t(c.repl)))
        .done();
}

CacheConfig
cacheFromJson(const JsonValue &v)
{
    CacheConfig c;
    c.size_bytes = uint32_t(v.at("size_bytes").asU64());
    c.assoc = uint32_t(v.at("assoc").asU64());
    c.line_bytes = uint32_t(v.at("line_bytes").asU64());
    c.latency = uint32_t(v.at("latency").asU64());
    c.mshrs = uint32_t(v.at("mshrs").asU64());
    c.ports = uint32_t(v.at("ports").asU64());
    uint64_t repl = v.at("repl").asU64();
    if (repl > uint64_t(ReplPolicy::Random))
        fatal("bad replacement-policy code " + std::to_string(repl));
    c.repl = ReplPolicy(repl);
    return c;
}

std::string
configToJson(const SystemConfig &cfg)
{
    const CoreConfig &c = cfg.core;
    std::string core = Obj{}
        .field("width", u64(c.width))
        .field("rob_size", u64(c.rob_size))
        .field("issue_queue", u64(c.issue_queue))
        .field("load_queue", u64(c.load_queue))
        .field("store_queue", u64(c.store_queue))
        .field("frontend_stages", u64(c.frontend_stages))
        .field("int_add_units", u64(c.int_add_units))
        .field("int_add_lat", u64(c.int_add_lat))
        .field("int_mul_units", u64(c.int_mul_units))
        .field("int_mul_lat", u64(c.int_mul_lat))
        .field("int_div_units", u64(c.int_div_units))
        .field("int_div_lat", u64(c.int_div_lat))
        .field("fp_add_units", u64(c.fp_add_units))
        .field("fp_add_lat", u64(c.fp_add_lat))
        .field("fp_mul_units", u64(c.fp_mul_units))
        .field("fp_mul_lat", u64(c.fp_mul_lat))
        .field("fp_div_units", u64(c.fp_div_units))
        .field("fp_div_lat", u64(c.fp_div_lat))
        .field("load_ports", u64(c.load_ports))
        .field("store_ports", u64(c.store_ports))
        .field("int_phys_regs", u64(c.int_phys_regs))
        .field("vec_phys_regs", u64(c.vec_phys_regs))
        .done();
    const RunaheadConfig &r = cfg.runahead;
    std::string runahead = Obj{}
        .field("stride_entries", u64(r.stride_entries))
        .field("stride_confidence", u64(r.stride_confidence))
        .field("vector_regs", u64(r.vector_regs))
        .field("lanes_per_vector", u64(r.lanes_per_vector))
        .field("discovery_max_insts", u64(r.discovery_max_insts))
        .field("subthread_timeout", u64(r.subthread_timeout))
        .field("nested_trigger_lanes", u64(r.nested_trigger_lanes))
        .field("reconv_stack_entries", u64(r.reconv_stack_entries))
        .field("frontend_buffer_uops", u64(r.frontend_buffer_uops))
        .field("pre_chain_cap", u64(r.pre_chain_cap))
        .field("max_budget_bytes", u64(r.max_budget_bytes))
        .done();
    return Obj{}
        .field("core", core)
        .field("l1i", cacheToJson(cfg.l1i))
        .field("l1d", cacheToJson(cfg.l1d))
        .field("l2", cacheToJson(cfg.l2))
        .field("l3", cacheToJson(cfg.l3))
        .field("dram", Obj{}
            .field("latency", u64(cfg.dram.latency))
            .field("bytes_per_cycle", f64(cfg.dram.bytes_per_cycle))
            .field("channels", u64(cfg.dram.channels))
            .done())
        .field("stride_pf", Obj{}
            .field("enabled", boolean(cfg.stride_pf.enabled))
            .field("streams", u64(cfg.stride_pf.streams))
            .field("degree", u64(cfg.stride_pf.degree))
            .field("train_threshold", u64(cfg.stride_pf.train_threshold))
            .done())
        .field("imp", Obj{}
            .field("table_entries", u64(cfg.imp.table_entries))
            .field("prefetch_distance", u64(cfg.imp.prefetch_distance))
            .field("train_threshold", u64(cfg.imp.train_threshold))
            .done())
        .field("runahead", runahead)
        .field("technique", str(techniqueName(cfg.technique)))
        .field("max_insts", u64(cfg.max_insts))
        .field("watchdog_cycles", u64(cfg.watchdog_cycles))
        .field("invariant_checks", boolean(cfg.invariant_checks))
        .field("collect_digest", boolean(cfg.collect_digest))
        .field("digest_interval", u64(cfg.digest_interval))
        .done();
}

SystemConfig
configFromJson(const JsonValue &v)
{
    SystemConfig cfg;
    const JsonValue &c = v.at("core");
    cfg.core.width = uint32_t(c.at("width").asU64());
    cfg.core.rob_size = uint32_t(c.at("rob_size").asU64());
    cfg.core.issue_queue = uint32_t(c.at("issue_queue").asU64());
    cfg.core.load_queue = uint32_t(c.at("load_queue").asU64());
    cfg.core.store_queue = uint32_t(c.at("store_queue").asU64());
    cfg.core.frontend_stages =
        uint32_t(c.at("frontend_stages").asU64());
    cfg.core.int_add_units = uint32_t(c.at("int_add_units").asU64());
    cfg.core.int_add_lat = uint32_t(c.at("int_add_lat").asU64());
    cfg.core.int_mul_units = uint32_t(c.at("int_mul_units").asU64());
    cfg.core.int_mul_lat = uint32_t(c.at("int_mul_lat").asU64());
    cfg.core.int_div_units = uint32_t(c.at("int_div_units").asU64());
    cfg.core.int_div_lat = uint32_t(c.at("int_div_lat").asU64());
    cfg.core.fp_add_units = uint32_t(c.at("fp_add_units").asU64());
    cfg.core.fp_add_lat = uint32_t(c.at("fp_add_lat").asU64());
    cfg.core.fp_mul_units = uint32_t(c.at("fp_mul_units").asU64());
    cfg.core.fp_mul_lat = uint32_t(c.at("fp_mul_lat").asU64());
    cfg.core.fp_div_units = uint32_t(c.at("fp_div_units").asU64());
    cfg.core.fp_div_lat = uint32_t(c.at("fp_div_lat").asU64());
    cfg.core.load_ports = uint32_t(c.at("load_ports").asU64());
    cfg.core.store_ports = uint32_t(c.at("store_ports").asU64());
    cfg.core.int_phys_regs = uint32_t(c.at("int_phys_regs").asU64());
    cfg.core.vec_phys_regs = uint32_t(c.at("vec_phys_regs").asU64());
    cfg.l1i = cacheFromJson(v.at("l1i"));
    cfg.l1d = cacheFromJson(v.at("l1d"));
    cfg.l2 = cacheFromJson(v.at("l2"));
    cfg.l3 = cacheFromJson(v.at("l3"));
    const JsonValue &d = v.at("dram");
    cfg.dram.latency = uint32_t(d.at("latency").asU64());
    cfg.dram.bytes_per_cycle = d.at("bytes_per_cycle").asF64();
    cfg.dram.channels = uint32_t(d.at("channels").asU64());
    const JsonValue &s = v.at("stride_pf");
    cfg.stride_pf.enabled = s.at("enabled").asBool();
    cfg.stride_pf.streams = uint32_t(s.at("streams").asU64());
    cfg.stride_pf.degree = uint32_t(s.at("degree").asU64());
    cfg.stride_pf.train_threshold =
        uint32_t(s.at("train_threshold").asU64());
    const JsonValue &i = v.at("imp");
    cfg.imp.table_entries = uint32_t(i.at("table_entries").asU64());
    cfg.imp.prefetch_distance =
        uint32_t(i.at("prefetch_distance").asU64());
    cfg.imp.train_threshold =
        uint32_t(i.at("train_threshold").asU64());
    const JsonValue &r = v.at("runahead");
    cfg.runahead.stride_entries =
        uint32_t(r.at("stride_entries").asU64());
    cfg.runahead.stride_confidence =
        uint32_t(r.at("stride_confidence").asU64());
    cfg.runahead.vector_regs = uint32_t(r.at("vector_regs").asU64());
    cfg.runahead.lanes_per_vector =
        uint32_t(r.at("lanes_per_vector").asU64());
    cfg.runahead.discovery_max_insts =
        uint32_t(r.at("discovery_max_insts").asU64());
    cfg.runahead.subthread_timeout =
        uint32_t(r.at("subthread_timeout").asU64());
    cfg.runahead.nested_trigger_lanes =
        uint32_t(r.at("nested_trigger_lanes").asU64());
    cfg.runahead.reconv_stack_entries =
        uint32_t(r.at("reconv_stack_entries").asU64());
    cfg.runahead.frontend_buffer_uops =
        uint32_t(r.at("frontend_buffer_uops").asU64());
    cfg.runahead.pre_chain_cap =
        uint32_t(r.at("pre_chain_cap").asU64());
    cfg.runahead.max_budget_bytes = r.at("max_budget_bytes").asU64();
    cfg.technique = techniqueFromName(v.at("technique").asString());
    cfg.max_insts = v.at("max_insts").asU64();
    cfg.watchdog_cycles = v.at("watchdog_cycles").asU64();
    cfg.invariant_checks = v.at("invariant_checks").asBool();
    cfg.collect_digest = v.at("collect_digest").asBool();
    cfg.digest_interval = v.at("digest_interval").asU64();
    return cfg;
}

std::string
resultToJsonBody(const SimResult &r)
{
    Obj o;
    o.field("workload", str(r.workload))
        .field("technique", str(techniqueName(r.technique)))
        .field("status", str(simStatusName(r.status)))
        .field("status_message", str(r.status_message))
        .field("core", coreStatsToJson(r.core))
        .field("mem", memStatsToJson(r.mem))
        .field("mlp", f64(r.mlp));
    // Process-isolation fields: written only when set so journals and
    // bundles from thread-mode sweeps stay byte-identical to before.
    if (r.term_signal)
        o.field("term_signal", u64(uint64_t(r.term_signal)));
    if (r.rss_peak_kb)
        o.field("rss_peak_kb", u64(r.rss_peak_kb));
    if (r.pre)
        o.field("pre", preStatsToJson(*r.pre));
    if (r.vr)
        o.field("vr", vrStatsToJson(*r.vr));
    if (r.dvr)
        o.field("dvr", dvrStatsToJson(*r.dvr));
    if (r.digest)
        o.field("digest", digestToJson(*r.digest));
    // Sampled runs only (only-when-set keeps pre-sampling journals
    // and bundles byte-identical).
    if (r.sample)
        o.field("sample", sampleToJson(*r.sample));
    return o.done();
}

SimResult
resultFromJsonValue(const JsonValue &v)
{
    SimResult r;
    r.workload = v.at("workload").asString();
    r.technique = techniqueFromName(v.at("technique").asString());
    r.status = simStatusFromName(v.at("status").asString());
    r.status_message = v.at("status_message").asString();
    r.core = coreStatsFromJson(v.at("core"));
    r.mem = memStatsFromJson(v.at("mem"));
    r.mlp = v.at("mlp").asF64();
    if (const JsonValue *p = v.find("term_signal"))
        r.term_signal = int(p->asU64());
    if (const JsonValue *p = v.find("rss_peak_kb"))
        r.rss_peak_kb = p->asU64();
    if (const JsonValue *p = v.find("pre"))
        r.pre = preStatsFromJson(*p);
    if (const JsonValue *p = v.find("vr"))
        r.vr = vrStatsFromJson(*p);
    if (const JsonValue *p = v.find("dvr"))
        r.dvr = dvrStatsFromJson(*p);
    if (const JsonValue *p = v.find("digest"))
        r.digest = digestFromJson(*p);
    if (const JsonValue *p = v.find("sample"))
        r.sample = sampleFromJson(*p);
    return r;
}

std::string
pointToJsonBody(const RunPoint &p)
{
    Obj o;
    o.field("spec", str(p.spec))
        .field("technique", str(techniqueName(p.technique)))
        .field("column", str(p.column))
        .field("variant", str(p.variant));
    if (p.features)
        o.field("features", Obj{}
            .field("discovery", boolean(p.features->discovery))
            .field("nested", boolean(p.features->nested))
            .field("reconverge", boolean(p.features->reconverge))
            .done());
    o.field("cfg", configToJson(p.cfg))
        .field("gscale", Obj{}
            .field("nodes", u64(p.gscale.nodes))
            .field("avg_degree", u64(p.gscale.avg_degree))
            .field("seed", u64(p.gscale.seed))
            .done())
        .field("hscale", Obj{}
            .field("elements", u64(p.hscale.elements))
            .field("seed", u64(p.hscale.seed))
            .done())
        .field("max_insts", u64(p.max_insts))
        .field("warmup", u64(p.warmup));
    // Only-when-set: points without a sampling plan keep their
    // pre-sampling serialization (and plan fingerprints) unchanged.
    if (p.sampling.enabled())
        o.field("sampling", Obj{}
            .field("ff_insts", u64(p.sampling.ff_insts))
            .field("period", u64(p.sampling.period))
            .field("detail", u64(p.sampling.detail))
            .field("warm", u64(p.sampling.warm))
            .done());
    o.field("inject_fail", boolean(p.inject_fail));
    if (p.inject_fail) {
        o.field("inject_kind", str(injectKindName(p.inject_kind)));
        if (p.inject_arg)
            o.field("inject_arg", u64(p.inject_arg));
    }
    return o.done();
}

RunPoint
pointFromJsonValue(const JsonValue &v)
{
    RunPoint p;
    p.spec = v.at("spec").asString();
    p.technique = techniqueFromName(v.at("technique").asString());
    p.column = v.at("column").asString();
    p.variant = v.at("variant").asString();
    if (const JsonValue *f = v.find("features")) {
        DvrFeatures feat;
        feat.discovery = f->at("discovery").asBool();
        feat.nested = f->at("nested").asBool();
        feat.reconverge = f->at("reconverge").asBool();
        p.features = feat;
    }
    p.cfg = configFromJson(v.at("cfg"));
    const JsonValue &g = v.at("gscale");
    p.gscale.nodes = g.at("nodes").asU64();
    p.gscale.avg_degree = g.at("avg_degree").asU64();
    p.gscale.seed = g.at("seed").asU64();
    const JsonValue &h = v.at("hscale");
    p.hscale.elements = h.at("elements").asU64();
    p.hscale.seed = h.at("seed").asU64();
    p.max_insts = v.at("max_insts").asU64();
    p.warmup = v.at("warmup").asU64();
    if (const JsonValue *s = v.find("sampling")) {
        p.sampling.ff_insts = s->at("ff_insts").asU64();
        p.sampling.period = s->at("period").asU64();
        p.sampling.detail = s->at("detail").asU64();
        p.sampling.warm = s->at("warm").asU64();
        p.sampling.validate();
    }
    p.inject_fail = v.at("inject_fail").asBool();
    p.inject_kind = p.inject_fail
        ? injectKindFromName(v.at("inject_kind").asString())
        : InjectKind::None;
    if (const JsonValue *a = v.find("inject_arg"))
        p.inject_arg = uint32_t(a->asU64());
    return p;
}

/** FNV-1a over a byte string. */
uint64_t
fnv1aStr(uint64_t h, const std::string &s)
{
    for (unsigned char b : s) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
sanitizeForFilename(const std::string &id)
{
    std::string out;
    out.reserve(id.size());
    for (char c : id) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '.' ||
                  c == '=';
        out += ok ? c : '_';
    }
    return out;
}

} // namespace

SimStatus
simStatusFromName(const std::string &name)
{
    static const SimStatus all[] = {
        SimStatus::Ok,       SimStatus::Fatal,
        SimStatus::Panic,    SimStatus::Hang,
        SimStatus::Diverged, SimStatus::Crashed,
        SimStatus::TimedOut,
    };
    for (SimStatus s : all)
        if (simStatusName(s) == name)
            return s;
    fatal("unknown run status '" + name + "' in bundle/journal");
}

std::string
resultToJson(const SimResult &r)
{
    return resultToJsonBody(r);
}

SimResult
resultFromJson(const std::string &what, const std::string &text)
{
    return resultFromJsonValue(JsonValue::parse(what, text));
}

std::string
pointToJson(const RunPoint &p)
{
    return pointToJsonBody(p);
}

std::string
digestRecordToJson(const DigestRecord &d)
{
    return digestToJson(d);
}

RunPoint
pointFromJson(const std::string &what, const std::string &text)
{
    return pointFromJsonValue(JsonValue::parse(what, text));
}

std::string
bundleToJson(const ReproBundle &b)
{
    Obj o;
    o.field("vrsim_repro", u64(1))
        .field("id", str(b.point.id()))
        .field("status", str(simStatusName(b.status)))
        .field("status_message", str(b.status_message))
        .field("point", pointToJsonBody(b.point));
    if (b.baseline_digest)
        o.field("baseline_digest", digestToJson(*b.baseline_digest));
    if (b.divergence)
        o.field("divergence", divergenceToJson(*b.divergence));
    return o.done();
}

ReproBundle
bundleFromJson(const std::string &what, const std::string &text)
{
    JsonValue v = JsonValue::parse(what, text);
    if (v.at("vrsim_repro").asU64() != 1)
        fatal(what + ": unsupported repro-bundle version");
    ReproBundle b;
    b.status = simStatusFromName(v.at("status").asString());
    b.status_message = v.at("status_message").asString();
    b.point = pointFromJsonValue(v.at("point"));
    if (const JsonValue *d = v.find("baseline_digest"))
        b.baseline_digest = digestFromJson(*d);
    if (const JsonValue *d = v.find("divergence"))
        b.divergence = divergenceFromJson(*d);
    return b;
}

std::string
writeReproBundle(const std::string &dir, const ReproBundle &b)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fatal("cannot create repro directory '" + dir +
              "': " + ec.message());
    const std::string path =
        dir + "/" + sanitizeForFilename(b.point.id()) + ".json";
    std::ofstream os(path, std::ios::trunc);
    if (!os)
        fatal("cannot write repro bundle '" + path + "'");
    os << bundleToJson(b) << "\n";
    os.flush();
    if (!os)
        fatal("error writing repro bundle '" + path + "'");
    return path;
}

ReproBundle
readReproBundle(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot read repro bundle '" + path + "'");
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    return bundleFromJson(path, text);
}

uint64_t
planFingerprint(const std::vector<RunPoint> &points)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const RunPoint &p : points) {
        h = fnv1aStr(h, pointToJsonBody(p));
        h = fnv1aStr(h, "\n");
    }
    return h;
}

std::string
journalHeaderLine(uint64_t fingerprint, size_t points)
{
    return Obj{}
        .field("vrsim_journal", u64(1))
        .field("fingerprint", hex64(fingerprint))
        .field("points", u64(points))
        .done();
}

std::string
journalEntryLine(size_t index, const RunPoint &point,
                 const SimResult &result)
{
    return Obj{}
        .field("index", u64(index))
        .field("id", str(point.id()))
        .field("result", resultToJsonBody(result))
        .done();
}

std::vector<std::optional<SimResult>>
loadJournal(const std::string &path, uint64_t fingerprint,
            size_t points)
{
    std::vector<std::optional<SimResult>> slots(points);
    std::ifstream is(path);
    if (!is)
        return slots;

    std::string line;
    if (!std::getline(is, line))
        return slots;   // empty file: nothing to resume
    JsonValue header = JsonValue::parse(path + " (header)", line);
    if (header.at("vrsim_journal").asU64() != 1)
        fatal(path + ": unsupported journal version");
    if (hexFromJson(header.at("fingerprint")) != fingerprint ||
        header.at("points").asU64() != points)
        fatal(path + ": journal was written for a different plan "
              "(fingerprint/point-count mismatch); refusing to mix "
              "results — delete it or pass a fresh --checkpoint path");

    size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonValue v;
        try {
            v = JsonValue::parse(
                path + ":" + std::to_string(lineno), line);
        } catch (const FatalError &e) {
            // A torn tail means the previous run died mid-append;
            // everything before it is still good.
            warn(path + ": ignoring malformed journal tail at line " +
                 std::to_string(lineno) + " (" + e.what() + ")");
            break;
        }
        size_t index = size_t(v.at("index").asU64());
        if (index >= points)
            fatal(path + ":" + std::to_string(lineno) +
                  ": journal entry index " + std::to_string(index) +
                  " out of range for " + std::to_string(points) +
                  " points");
        slots[index] = resultFromJsonValue(v.at("result"));
    }
    return slots;
}

} // namespace vrsim

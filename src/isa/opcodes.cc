#include "isa/opcodes.hh"

#include <array>

#include "sim/logging.hh"

namespace vrsim
{

namespace
{

std::array<OpTraits, size_t(Op::NumOps)>
buildTraits()
{
    std::array<OpTraits, size_t(Op::NumOps)> t{};
    auto set = [&t](Op op, OpTraits tr) { t[size_t(op)] = tr; };

    OpTraits alu{.writes_dst = true, .fu = FuClass::IntAdd};
    OpTraits alu_imm = alu;
    alu_imm.has_imm = true;

    set(Op::Nop, {});
    set(Op::Halt, {});
    set(Op::Movi, {.writes_dst = true, .has_imm = true,
                   .fu = FuClass::IntAdd});
    set(Op::Mov, alu);
    set(Op::Add, alu);
    set(Op::Sub, alu);
    set(Op::Mul, {.writes_dst = true, .fu = FuClass::IntMul});
    set(Op::Divu, {.writes_dst = true, .fu = FuClass::IntDiv});
    set(Op::And, alu);
    set(Op::Or, alu);
    set(Op::Xor, alu);
    set(Op::Shl, alu);
    set(Op::Shr, alu);
    set(Op::Addi, alu_imm);
    set(Op::Muli, {.writes_dst = true, .has_imm = true,
                   .fu = FuClass::IntMul});
    set(Op::Andi, alu_imm);
    set(Op::Shli, alu_imm);
    set(Op::Shri, alu_imm);
    set(Op::Hash, {.writes_dst = true, .has_imm = true,
                   .fu = FuClass::IntMul});

    OpTraits cmp{.is_compare = true, .writes_dst = true,
                 .fu = FuClass::IntAdd};
    OpTraits cmp_imm = cmp;
    cmp_imm.has_imm = true;
    set(Op::CmpLt, cmp);
    set(Op::CmpLtu, cmp);
    set(Op::CmpEq, cmp);
    set(Op::CmpNe, cmp);
    set(Op::CmpLti, cmp_imm);
    set(Op::CmpEqi, cmp_imm);

    set(Op::Br, {.is_branch = true, .is_cond_branch = true,
                 .has_imm = true, .fu = FuClass::Branch});
    set(Op::Brz, {.is_branch = true, .is_cond_branch = true,
                  .has_imm = true, .fu = FuClass::Branch});
    set(Op::Jmp, {.is_branch = true, .has_imm = true,
                  .fu = FuClass::Branch});

    set(Op::Ld, {.is_load = true, .writes_dst = true, .has_imm = true,
                 .fu = FuClass::Load});
    set(Op::Ld32, {.is_load = true, .writes_dst = true, .has_imm = true,
                   .fu = FuClass::Load});
    set(Op::St, {.is_store = true, .has_imm = true, .fu = FuClass::Store});
    set(Op::St32, {.is_store = true, .has_imm = true,
                   .fu = FuClass::Store});
    set(Op::Pref, {.is_prefetch = true, .has_imm = true,
                   .fu = FuClass::Load});

    set(Op::FAdd, {.writes_dst = true, .fu = FuClass::FpAdd});
    set(Op::FMul, {.writes_dst = true, .fu = FuClass::FpMul});
    set(Op::FDiv, {.writes_dst = true, .fu = FuClass::FpDiv});
    return t;
}

} // namespace

namespace detail
{
const std::array<OpTraits, size_t(Op::NumOps)> OP_TRAITS = buildTraits();
} // namespace detail

std::string
opName(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Halt: return "halt";
      case Op::Movi: return "movi";
      case Op::Mov: return "mov";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Divu: return "divu";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::Addi: return "addi";
      case Op::Muli: return "muli";
      case Op::Andi: return "andi";
      case Op::Shli: return "shli";
      case Op::Shri: return "shri";
      case Op::Hash: return "hash";
      case Op::CmpLt: return "cmplt";
      case Op::CmpLtu: return "cmpltu";
      case Op::CmpEq: return "cmpeq";
      case Op::CmpNe: return "cmpne";
      case Op::CmpLti: return "cmplti";
      case Op::CmpEqi: return "cmpeqi";
      case Op::Br: return "br";
      case Op::Brz: return "brz";
      case Op::Jmp: return "jmp";
      case Op::Ld: return "ld";
      case Op::Ld32: return "ld32";
      case Op::St: return "st";
      case Op::St32: return "st32";
      case Op::Pref: return "pref";
      case Op::FAdd: return "fadd";
      case Op::FMul: return "fmul";
      case Op::FDiv: return "fdiv";
      case Op::NumOps: break;
    }
    panic("unknown opcode");
}

} // namespace vrsim

#include "isa/inst.hh"

#include <sstream>

namespace vrsim
{

std::string
Inst::toString() const
{
    std::ostringstream os;
    os << opName(op);
    auto reg = [](uint8_t r) {
        return r == REG_NONE ? std::string("-")
                             : "r" + std::to_string(unsigned(r));
    };
    if (isLoad()) {
        os << " " << reg(rd) << ", [" << reg(rs1);
        if (rs2 != REG_NONE)
            os << " + " << reg(rs2) << "*" << unsigned(scale);
        if (imm)
            os << " + " << imm;
        os << "]";
    } else if (isStore()) {
        os << " " << reg(rs3) << " -> [" << reg(rs1);
        if (rs2 != REG_NONE)
            os << " + " << reg(rs2) << "*" << unsigned(scale);
        if (imm)
            os << " + " << imm;
        os << "]";
    } else if (isBranch()) {
        if (rs1 != REG_NONE)
            os << " " << reg(rs1) << ",";
        os << " @" << imm;
    } else {
        if (rd != REG_NONE)
            os << " " << reg(rd);
        if (rs1 != REG_NONE)
            os << ", " << reg(rs1);
        if (rs2 != REG_NONE)
            os << ", " << reg(rs2);
        if (traits().has_imm)
            os << ", " << imm;
    }
    return os.str();
}

ProgramBuilder::Label
ProgramBuilder::here()
{
    Label l = makeLabel();
    label_pcs_[l.id] = pc();
    return l;
}

ProgramBuilder::Label
ProgramBuilder::makeLabel()
{
    label_pcs_.push_back(UINT32_MAX);
    return Label{uint32_t(label_pcs_.size() - 1)};
}

void
ProgramBuilder::bind(Label l)
{
    panicIfNot(l.id < label_pcs_.size(), "unknown label");
    panicIfNot(label_pcs_[l.id] == UINT32_MAX, "label already bound");
    label_pcs_[l.id] = pc();
}

uint32_t
ProgramBuilder::emit(Inst i)
{
    panicIfNot(!built_, "builder already consumed");
    uint32_t at = pc();
    prog_.insts_.push_back(i);
    return at;
}

uint32_t
ProgramBuilder::emitBranch(Op op, uint8_t cond, Label target)
{
    uint32_t at = emit({op, REG_NONE, cond});
    fixups_.emplace_back(at, target.id);
    return at;
}

Program
ProgramBuilder::build()
{
    panicIfNot(!built_, "builder already consumed");
    for (auto [inst_pc, label_id] : fixups_) {
        panicIfNot(label_id < label_pcs_.size(), "unknown label");
        uint32_t dest = label_pcs_[label_id];
        panicIfNot(dest != UINT32_MAX, "unbound label at build()");
        prog_.insts_[inst_pc].imm = int64_t(dest);
    }
    built_ = true;
    return std::move(prog_);
}

} // namespace vrsim

#include "isa/interp.hh"

#include <cstring>

namespace vrsim
{

namespace
{

double
asF64(uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
}

uint64_t
asBits(double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    return bits;
}

} // namespace

StepInfo
step(const Program &prog, CpuState &state, MemoryImage &mem,
     bool speculative)
{
    StepInfo info;
    info.pc = state.pc;
    panicIfNot(!state.halted, "stepping a halted context");
    const Inst &inst = prog.at(state.pc);
    info.inst = &inst;
    uint32_t next_pc = state.pc + 1;

    auto r = [&state](uint8_t reg) { return state.reg(reg); };
    uint64_t dst = 0;
    bool write_dst = inst.writesDst();

    switch (inst.op) {
      case Op::Nop:
        break;
      case Op::Halt:
        info.halted = true;
        state.halted = true;
        break;
      case Op::Movi: dst = uint64_t(inst.imm); break;
      case Op::Mov: dst = r(inst.rs1); break;
      case Op::Add: dst = r(inst.rs1) + r(inst.rs2); break;
      case Op::Sub: dst = r(inst.rs1) - r(inst.rs2); break;
      case Op::Mul: dst = r(inst.rs1) * r(inst.rs2); break;
      case Op::Divu: {
        uint64_t d = r(inst.rs2);
        dst = d ? r(inst.rs1) / d : ~0ull;
        break;
      }
      case Op::And: dst = r(inst.rs1) & r(inst.rs2); break;
      case Op::Or: dst = r(inst.rs1) | r(inst.rs2); break;
      case Op::Xor: dst = r(inst.rs1) ^ r(inst.rs2); break;
      case Op::Shl: dst = r(inst.rs1) << (r(inst.rs2) & 63); break;
      case Op::Shr: dst = r(inst.rs1) >> (r(inst.rs2) & 63); break;
      case Op::Addi: dst = r(inst.rs1) + uint64_t(inst.imm); break;
      case Op::Muli: dst = r(inst.rs1) * uint64_t(inst.imm); break;
      case Op::Andi: dst = r(inst.rs1) & uint64_t(inst.imm); break;
      case Op::Shli: dst = r(inst.rs1) << (inst.imm & 63); break;
      case Op::Shri: dst = r(inst.rs1) >> (inst.imm & 63); break;
      case Op::Hash:
        dst = hashMix64(r(inst.rs1) ^ uint64_t(inst.imm));
        break;
      case Op::CmpLt:
        dst = int64_t(r(inst.rs1)) < int64_t(r(inst.rs2));
        break;
      case Op::CmpLtu: dst = r(inst.rs1) < r(inst.rs2); break;
      case Op::CmpEq: dst = r(inst.rs1) == r(inst.rs2); break;
      case Op::CmpNe: dst = r(inst.rs1) != r(inst.rs2); break;
      case Op::CmpLti: dst = int64_t(r(inst.rs1)) < inst.imm; break;
      case Op::CmpEqi: dst = r(inst.rs1) == uint64_t(inst.imm); break;
      case Op::Br:
        info.is_branch = true;
        info.taken = r(inst.rs1) != 0;
        if (info.taken)
            next_pc = uint32_t(inst.imm);
        break;
      case Op::Brz:
        info.is_branch = true;
        info.taken = r(inst.rs1) == 0;
        if (info.taken)
            next_pc = uint32_t(inst.imm);
        break;
      case Op::Jmp:
        info.is_branch = true;
        info.taken = true;
        next_pc = uint32_t(inst.imm);
        break;
      case Op::Ld: {
        info.is_mem = true;
        info.size = 8;
        info.addr = effectiveAddress(inst, r);
        dst = mem.read64(info.addr);
        break;
      }
      case Op::Ld32: {
        info.is_mem = true;
        info.size = 4;
        info.addr = effectiveAddress(inst, r);
        dst = mem.read32(info.addr);
        break;
      }
      case Op::St: {
        info.is_mem = true;
        info.is_store = true;
        info.size = 8;
        info.addr = effectiveAddress(inst, r);
        info.dst_value = r(inst.rs3);
        if (!speculative)
            mem.write64(info.addr, info.dst_value);
        break;
      }
      case Op::St32: {
        info.is_mem = true;
        info.is_store = true;
        info.size = 4;
        info.addr = effectiveAddress(inst, r);
        info.dst_value = uint32_t(r(inst.rs3));
        if (!speculative)
            mem.write32(info.addr, uint32_t(info.dst_value));
        break;
      }
      case Op::Pref: {
        // Non-binding: computes the address, reads nothing.
        info.is_mem = true;
        info.size = 0;
        info.addr = effectiveAddress(inst, r);
        break;
      }
      case Op::FAdd:
        dst = asBits(asF64(r(inst.rs1)) + asF64(r(inst.rs2)));
        break;
      case Op::FMul:
        dst = asBits(asF64(r(inst.rs1)) * asF64(r(inst.rs2)));
        break;
      case Op::FDiv:
        dst = asBits(asF64(r(inst.rs1)) / asF64(r(inst.rs2)));
        break;
      case Op::NumOps:
        panic("invalid opcode");
    }

    if (write_dst) {
        state.setReg(inst.rd, dst);
        info.dst_value = dst;
    }
    if (!state.halted)
        state.pc = next_pc;
    info.next_pc = next_pc;
    return info;
}

uint64_t
run(const Program &prog, CpuState &state, MemoryImage &mem,
    uint64_t inst_limit)
{
    uint64_t count = 0;
    while (!state.halted && (inst_limit == 0 || count < inst_limit)) {
        step(prog, state, mem);
        ++count;
    }
    return count;
}

} // namespace vrsim

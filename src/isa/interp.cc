#include "isa/interp.hh"

namespace vrsim
{

uint64_t
fastForward(const Program &prog, CpuState &state, MemoryImage &mem,
            uint64_t max_insts, StateDigest *digest)
{
    uint64_t count = 0;
    if (!digest) {
        // The hot path: nothing but the inlined stepper.
        while (!state.halted && count < max_insts) {
            step(prog, state, mem);
            ++count;
        }
        return count;
    }
    while (!state.halted && count < max_insts) {
        StepInfo si = step(prog, state, mem);
        ++count;
        digest->retire(commitRecordOf(si));
    }
    return count;
}

uint64_t
run(const Program &prog, CpuState &state, MemoryImage &mem,
    uint64_t inst_limit)
{
    uint64_t count = 0;
    while (!state.halted && (inst_limit == 0 || count < inst_limit)) {
        step(prog, state, mem);
        ++count;
    }
    return count;
}

} // namespace vrsim

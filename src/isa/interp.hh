/**
 * @file
 * Functional interpreter for vrsim programs.
 *
 * The same stepper drives (a) the committed execution of the main
 * thread (producing the dynamic stream for the timing model),
 * (b) speculative execution contexts used by the runahead engines
 * (Discovery Mode, vector lanes), where stores are suppressed, and
 * (c) the timing-free functional fast-forward loop used by SMARTS-
 * style interval sampling (docs/sampling.md). step() is defined
 * inline here so the fast-forward loop compiles to a native
 * dispatch loop with no cross-TU call per instruction, and so the
 * detailed and functional paths execute the literally same code —
 * the StateDigest byte-identity guarantee is by construction.
 */

#ifndef VRSIM_ISA_INTERP_HH
#define VRSIM_ISA_INTERP_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "isa/inst.hh"
#include "isa/memory_image.hh"
#include "sim/digest.hh"

namespace vrsim
{

/** Architectural register + PC state of one hardware context. */
struct CpuState
{
    std::array<uint64_t, NUM_ARCH_REGS> regs{};
    uint32_t pc = 0;
    bool halted = false;

    uint64_t
    reg(uint8_t r) const
    {
        panicIfNot(r < NUM_ARCH_REGS, "register out of range");
        return regs[r];
    }

    void
    setReg(uint8_t r, uint64_t v)
    {
        panicIfNot(r < NUM_ARCH_REGS, "register out of range");
        regs[r] = v;
    }
};

/** Everything the timing model needs to know about one executed µop. */
struct StepInfo
{
    uint32_t pc = 0;          //!< pc of the executed instruction
    uint32_t next_pc = 0;     //!< pc after execution
    const Inst *inst = nullptr;
    bool is_mem = false;
    bool is_store = false;
    uint64_t addr = 0;        //!< effective address of memory ops
    uint8_t size = 0;         //!< access size in bytes
    bool is_branch = false;
    bool taken = false;
    bool halted = false;
    /** Value written to rd (loads: loaded value); for stores, the
     *  value stored (possibly truncated to the access size). Consumed
     *  by the differential StateDigest oracle. */
    uint64_t dst_value = 0;
};

namespace interp_detail
{

inline double
asF64(uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
}

inline uint64_t
asBits(double d)
{
    uint64_t bits;
    std::memcpy(&bits, &d, 8);
    return bits;
}

} // namespace interp_detail

/**
 * Compute the effective address of a memory instruction given a
 * register-read callback; shared by the interpreter and the vector
 * engines (which read lane registers out of the VRAT instead).
 */
template <typename ReadReg>
uint64_t
effectiveAddress(const Inst &inst, ReadReg &&read)
{
    uint64_t ea = read(inst.rs1) + uint64_t(inst.imm);
    if (inst.rs2 != REG_NONE)
        ea += read(inst.rs2) * inst.scale;
    return ea;
}

/**
 * Execute one instruction.
 *
 * @param prog        the program
 * @param state       context to advance (pc and registers updated)
 * @param mem         functional memory
 * @param speculative when true, stores do not modify memory (runahead
 *                    semantics: transient execution must not be
 *                    architecturally visible)
 */
inline StepInfo
step(const Program &prog, CpuState &state, MemoryImage &mem,
     bool speculative = false)
{
    StepInfo info;
    info.pc = state.pc;
    panicIfNot(!state.halted, "stepping a halted context");
    const Inst &inst = prog.at(state.pc);
    info.inst = &inst;
    uint32_t next_pc = state.pc + 1;

    auto r = [&state](uint8_t reg) { return state.reg(reg); };
    uint64_t dst = 0;
    bool write_dst = inst.writesDst();

    switch (inst.op) {
      case Op::Nop:
        break;
      case Op::Halt:
        info.halted = true;
        state.halted = true;
        break;
      case Op::Movi: dst = uint64_t(inst.imm); break;
      case Op::Mov: dst = r(inst.rs1); break;
      case Op::Add: dst = r(inst.rs1) + r(inst.rs2); break;
      case Op::Sub: dst = r(inst.rs1) - r(inst.rs2); break;
      case Op::Mul: dst = r(inst.rs1) * r(inst.rs2); break;
      case Op::Divu: {
        uint64_t d = r(inst.rs2);
        dst = d ? r(inst.rs1) / d : ~0ull;
        break;
      }
      case Op::And: dst = r(inst.rs1) & r(inst.rs2); break;
      case Op::Or: dst = r(inst.rs1) | r(inst.rs2); break;
      case Op::Xor: dst = r(inst.rs1) ^ r(inst.rs2); break;
      case Op::Shl: dst = r(inst.rs1) << (r(inst.rs2) & 63); break;
      case Op::Shr: dst = r(inst.rs1) >> (r(inst.rs2) & 63); break;
      case Op::Addi: dst = r(inst.rs1) + uint64_t(inst.imm); break;
      case Op::Muli: dst = r(inst.rs1) * uint64_t(inst.imm); break;
      case Op::Andi: dst = r(inst.rs1) & uint64_t(inst.imm); break;
      case Op::Shli: dst = r(inst.rs1) << (inst.imm & 63); break;
      case Op::Shri: dst = r(inst.rs1) >> (inst.imm & 63); break;
      case Op::Hash:
        dst = hashMix64(r(inst.rs1) ^ uint64_t(inst.imm));
        break;
      case Op::CmpLt:
        dst = int64_t(r(inst.rs1)) < int64_t(r(inst.rs2));
        break;
      case Op::CmpLtu: dst = r(inst.rs1) < r(inst.rs2); break;
      case Op::CmpEq: dst = r(inst.rs1) == r(inst.rs2); break;
      case Op::CmpNe: dst = r(inst.rs1) != r(inst.rs2); break;
      case Op::CmpLti: dst = int64_t(r(inst.rs1)) < inst.imm; break;
      case Op::CmpEqi: dst = r(inst.rs1) == uint64_t(inst.imm); break;
      case Op::Br:
        info.is_branch = true;
        info.taken = r(inst.rs1) != 0;
        if (info.taken)
            next_pc = uint32_t(inst.imm);
        break;
      case Op::Brz:
        info.is_branch = true;
        info.taken = r(inst.rs1) == 0;
        if (info.taken)
            next_pc = uint32_t(inst.imm);
        break;
      case Op::Jmp:
        info.is_branch = true;
        info.taken = true;
        next_pc = uint32_t(inst.imm);
        break;
      case Op::Ld: {
        info.is_mem = true;
        info.size = 8;
        info.addr = effectiveAddress(inst, r);
        dst = mem.read64(info.addr);
        break;
      }
      case Op::Ld32: {
        info.is_mem = true;
        info.size = 4;
        info.addr = effectiveAddress(inst, r);
        dst = mem.read32(info.addr);
        break;
      }
      case Op::St: {
        info.is_mem = true;
        info.is_store = true;
        info.size = 8;
        info.addr = effectiveAddress(inst, r);
        info.dst_value = r(inst.rs3);
        if (!speculative)
            mem.write64(info.addr, info.dst_value);
        break;
      }
      case Op::St32: {
        info.is_mem = true;
        info.is_store = true;
        info.size = 4;
        info.addr = effectiveAddress(inst, r);
        info.dst_value = uint32_t(r(inst.rs3));
        if (!speculative)
            mem.write32(info.addr, uint32_t(info.dst_value));
        break;
      }
      case Op::Pref: {
        // Non-binding: computes the address, reads nothing.
        info.is_mem = true;
        info.size = 0;
        info.addr = effectiveAddress(inst, r);
        break;
      }
      case Op::FAdd:
        dst = interp_detail::asBits(interp_detail::asF64(r(inst.rs1)) +
                                    interp_detail::asF64(r(inst.rs2)));
        break;
      case Op::FMul:
        dst = interp_detail::asBits(interp_detail::asF64(r(inst.rs1)) *
                                    interp_detail::asF64(r(inst.rs2)));
        break;
      case Op::FDiv:
        dst = interp_detail::asBits(interp_detail::asF64(r(inst.rs1)) /
                                    interp_detail::asF64(r(inst.rs2)));
        break;
      case Op::NumOps:
        panic("invalid opcode");
    }

    if (write_dst) {
        state.setReg(inst.rd, dst);
        info.dst_value = dst;
    }
    if (!state.halted)
        state.pc = next_pc;
    info.next_pc = next_pc;
    return info;
}

/**
 * Build the differential-oracle commit record of one executed µop.
 * Shared by the OoO commit path and the functional fast-forward loop
 * so both feed the StateDigest the byte-identical record for the same
 * committed instruction (docs/sampling.md relies on this).
 */
inline CommitRecord
commitRecordOf(const StepInfo &si)
{
    CommitRecord cr;
    cr.pc = si.pc;
    cr.writes_reg = si.inst->writesDst();
    cr.reg = si.inst->rd;
    cr.reg_value = si.dst_value;
    cr.is_store = si.is_store;
    cr.store_addr = si.addr;
    cr.store_value = si.dst_value;
    return cr;
}

/**
 * Timing-free functional fast-forward: advance architectural state by
 * up to @p max_insts instructions at native dispatch-loop speed. No
 * timing structure is touched; with @p digest attached every executed
 * instruction feeds the differential oracle exactly as the detailed
 * commit path would, so a fast-forwarded prefix hashes identically to
 * a detailed one over the same stream.
 *
 * @return instructions executed (less than @p max_insts only if the
 *         program halted first).
 */
uint64_t fastForward(const Program &prog, CpuState &state,
                     MemoryImage &mem, uint64_t max_insts,
                     StateDigest *digest = nullptr);

/**
 * Run the program to completion (or inst_limit) updating architectural
 * state only; used by workload self-checks and tests.
 *
 * @return number of instructions executed.
 */
uint64_t run(const Program &prog, CpuState &state, MemoryImage &mem,
             uint64_t inst_limit = 0);

} // namespace vrsim

#endif // VRSIM_ISA_INTERP_HH

/**
 * @file
 * Functional interpreter for vrsim programs.
 *
 * The same stepper drives (a) the committed execution of the main
 * thread (producing the dynamic stream for the timing model) and
 * (b) speculative execution contexts used by the runahead engines
 * (Discovery Mode, vector lanes), where stores are suppressed.
 */

#ifndef VRSIM_ISA_INTERP_HH
#define VRSIM_ISA_INTERP_HH

#include <array>
#include <cstdint>

#include "isa/inst.hh"
#include "isa/memory_image.hh"

namespace vrsim
{

/** Architectural register + PC state of one hardware context. */
struct CpuState
{
    std::array<uint64_t, NUM_ARCH_REGS> regs{};
    uint32_t pc = 0;
    bool halted = false;

    uint64_t
    reg(uint8_t r) const
    {
        panicIfNot(r < NUM_ARCH_REGS, "register out of range");
        return regs[r];
    }

    void
    setReg(uint8_t r, uint64_t v)
    {
        panicIfNot(r < NUM_ARCH_REGS, "register out of range");
        regs[r] = v;
    }
};

/** Everything the timing model needs to know about one executed µop. */
struct StepInfo
{
    uint32_t pc = 0;          //!< pc of the executed instruction
    uint32_t next_pc = 0;     //!< pc after execution
    const Inst *inst = nullptr;
    bool is_mem = false;
    bool is_store = false;
    uint64_t addr = 0;        //!< effective address of memory ops
    uint8_t size = 0;         //!< access size in bytes
    bool is_branch = false;
    bool taken = false;
    bool halted = false;
    /** Value written to rd (loads: loaded value); for stores, the
     *  value stored (possibly truncated to the access size). Consumed
     *  by the differential StateDigest oracle. */
    uint64_t dst_value = 0;
};

/**
 * Execute one instruction.
 *
 * @param prog        the program
 * @param state       context to advance (pc and registers updated)
 * @param mem         functional memory
 * @param speculative when true, stores do not modify memory (runahead
 *                    semantics: transient execution must not be
 *                    architecturally visible)
 */
StepInfo step(const Program &prog, CpuState &state, MemoryImage &mem,
              bool speculative = false);

/**
 * Compute the effective address of a memory instruction given a
 * register-read callback; shared by the interpreter and the vector
 * engines (which read lane registers out of the VRAT instead).
 */
template <typename ReadReg>
uint64_t
effectiveAddress(const Inst &inst, ReadReg &&read)
{
    uint64_t ea = read(inst.rs1) + uint64_t(inst.imm);
    if (inst.rs2 != REG_NONE)
        ea += read(inst.rs2) * inst.scale;
    return ea;
}

/**
 * Run the program to completion (or inst_limit) updating architectural
 * state only; used by workload self-checks and tests.
 *
 * @return number of instructions executed.
 */
uint64_t run(const Program &prog, CpuState &state, MemoryImage &mem,
             uint64_t inst_limit = 0);

} // namespace vrsim

#endif // VRSIM_ISA_INTERP_HH

/**
 * @file
 * The functional memory image: a sparse, page-granular, byte-addressed
 * 64-bit address space holding the workload's data. Timing is modelled
 * separately (src/mem); this class only stores values.
 */

#ifndef VRSIM_ISA_MEMORY_IMAGE_HH
#define VRSIM_ISA_MEMORY_IMAGE_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"

namespace vrsim
{

/**
 * Sparse memory. Unbacked addresses read as zero, which also makes
 * speculative (runahead) wild loads safe by construction.
 *
 * Accesses are strongly page-local (the interpreter walks arrays),
 * so the last page touched is memoized to skip the hash lookup on
 * the hot path. The memo makes even const reads mutating under the
 * hood: a MemoryImage must not be shared between threads. Parallel
 * sweeps already honour that — WorkloadCache hands every run its own
 * private copy of the image, and copies start with a cold memo.
 */
class MemoryImage
{
  public:
    static constexpr uint64_t PAGE_BITS = 16;
    static constexpr uint64_t PAGE_SIZE = 1ull << PAGE_BITS;
    static constexpr uint64_t PAGE_MASK = PAGE_SIZE - 1;

    MemoryImage() = default;
    MemoryImage(const MemoryImage &o) : pages_(o.pages_) {}
    MemoryImage(MemoryImage &&o) noexcept : pages_(std::move(o.pages_)) {}

    MemoryImage &
    operator=(const MemoryImage &o)
    {
        pages_ = o.pages_;
        cached_page_no_ = NO_PAGE;
        cached_page_ = nullptr;
        return *this;
    }

    MemoryImage &
    operator=(MemoryImage &&o) noexcept
    {
        pages_ = std::move(o.pages_);
        cached_page_no_ = NO_PAGE;
        cached_page_ = nullptr;
        return *this;
    }

    uint64_t
    read64(uint64_t addr) const
    {
        uint64_t v = 0;
        readBytes(addr, &v, 8);
        return v;
    }

    uint32_t
    read32(uint64_t addr) const
    {
        uint32_t v = 0;
        readBytes(addr, &v, 4);
        return v;
    }

    void write64(uint64_t addr, uint64_t v) { writeBytes(addr, &v, 8); }
    void write32(uint64_t addr, uint32_t v) { writeBytes(addr, &v, 4); }

    double
    readF64(uint64_t addr) const
    {
        uint64_t bits = read64(addr);
        double d;
        std::memcpy(&d, &bits, 8);
        return d;
    }

    void
    writeF64(uint64_t addr, double d)
    {
        uint64_t bits;
        std::memcpy(&bits, &d, 8);
        write64(addr, bits);
    }

    /** Number of resident pages (for footprint reporting). */
    size_t residentPages() const { return pages_.size(); }

    /** Total resident bytes. */
    uint64_t footprintBytes() const { return pages_.size() * PAGE_SIZE; }

  private:
    using Page = std::vector<uint8_t>;

    static constexpr uint64_t NO_PAGE = ~0ull;

    const Page *
    findPage(uint64_t page_no) const
    {
        if (page_no == cached_page_no_)
            return cached_page_;
        auto it = pages_.find(page_no);
        if (it == pages_.end())
            return nullptr;
        // unordered_map references are stable across rehash, so the
        // memo survives later insertions.
        cached_page_no_ = page_no;
        cached_page_ = const_cast<Page *>(&it->second);
        return cached_page_;
    }

    Page &
    getPage(uint64_t page_no)
    {
        if (page_no == cached_page_no_)
            return *cached_page_;
        auto it = pages_.find(page_no);
        if (it == pages_.end())
            it = pages_.emplace(page_no, Page(PAGE_SIZE, 0)).first;
        cached_page_no_ = page_no;
        cached_page_ = &it->second;
        return it->second;
    }

    void
    readBytes(uint64_t addr, void *out, size_t n) const
    {
        auto *dst = static_cast<uint8_t *>(out);
        while (n > 0) {
            uint64_t page_no = addr >> PAGE_BITS;
            uint64_t off = addr & PAGE_MASK;
            size_t chunk = std::min<uint64_t>(n, PAGE_SIZE - off);
            if (const Page *p = findPage(page_no))
                std::memcpy(dst, p->data() + off, chunk);
            else
                std::memset(dst, 0, chunk);
            dst += chunk;
            addr += chunk;
            n -= chunk;
        }
    }

    void
    writeBytes(uint64_t addr, const void *in, size_t n)
    {
        auto *src = static_cast<const uint8_t *>(in);
        while (n > 0) {
            uint64_t page_no = addr >> PAGE_BITS;
            uint64_t off = addr & PAGE_MASK;
            size_t chunk = std::min<uint64_t>(n, PAGE_SIZE - off);
            std::memcpy(getPage(page_no).data() + off, src, chunk);
            src += chunk;
            addr += chunk;
            n -= chunk;
        }
    }

    std::unordered_map<uint64_t, Page> pages_;
    mutable uint64_t cached_page_no_ = NO_PAGE;
    mutable Page *cached_page_ = nullptr;
};

} // namespace vrsim

#endif // VRSIM_ISA_MEMORY_IMAGE_HH

/**
 * @file
 * Instruction encoding and the Program container with its builder.
 */

#ifndef VRSIM_ISA_INST_HH
#define VRSIM_ISA_INST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcodes.hh"
#include "sim/logging.hh"

namespace vrsim
{

/**
 * One micro-op. PCs are instruction indices within a Program.
 *
 * Memory effective address: regs[rs1] + regs[rs2] * scale + imm
 * (rs2 == REG_NONE means no index term). For stores rs3 holds the
 * value register.
 */
struct Inst
{
    Op op = Op::Nop;
    uint8_t rd = REG_NONE;
    uint8_t rs1 = REG_NONE;
    uint8_t rs2 = REG_NONE;
    uint8_t rs3 = REG_NONE;   //!< store-value register
    uint8_t scale = 1;        //!< index scaling for memory ops
    int64_t imm = 0;          //!< immediate / branch target / displacement

    const OpTraits &traits() const { return opTraits(op); }

    bool isLoad() const { return traits().is_load; }
    bool isStore() const { return traits().is_store; }
    bool isPrefetch() const { return traits().is_prefetch; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isBranch() const { return traits().is_branch; }
    bool isCondBranch() const { return traits().is_cond_branch; }
    bool isCompare() const { return traits().is_compare; }
    bool writesDst() const { return traits().writes_dst; }

    /** Disassemble for debugging. */
    std::string toString() const;
};

/**
 * A program: a flat vector of micro-ops plus entry point and
 * human-readable name. Built via ProgramBuilder.
 */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : name_(std::move(name)) {}

    const Inst &at(uint32_t pc) const
    {
        panicIfNot(pc < insts_.size(), "PC out of range");
        return insts_[pc];
    }

    uint32_t size() const { return uint32_t(insts_.size()); }
    const std::string &name() const { return name_; }
    const std::vector<Inst> &insts() const { return insts_; }
    std::vector<Inst> &insts() { return insts_; }

  private:
    friend class ProgramBuilder;
    std::string name_;
    std::vector<Inst> insts_;
};

/**
 * Fluent assembler for Programs with forward-label support.
 *
 * Example:
 * @code
 *   ProgramBuilder b("loop");
 *   auto top = b.here();
 *   b.ld(R2, R1, R0, 8);        // R2 = mem[R1 + R0*8]
 *   b.addi(R0, R0, 1);
 *   b.cmplt(R3, R0, R4);
 *   b.br(R3, top);
 *   b.halt();
 *   Program p = b.build();
 * @endcode
 */
class ProgramBuilder
{
  public:
    /** An opaque label: either bound to a pc or patched at build(). */
    struct Label
    {
        uint32_t id = 0;
    };

    explicit ProgramBuilder(std::string name) : prog_(std::move(name)) {}

    /** Current pc as a bound label. */
    Label here();

    /** A fresh unbound label to be placed later via bind(). */
    Label makeLabel();

    /** Bind an unbound label to the current pc. */
    void bind(Label l);

    // --- emitters (each returns the pc of the emitted inst) ---
    uint32_t nop() { return emit({Op::Nop}); }
    uint32_t halt() { return emit({Op::Halt}); }
    uint32_t movi(uint8_t rd, int64_t imm)
    { return emit({Op::Movi, rd, REG_NONE, REG_NONE, REG_NONE, 1, imm}); }
    uint32_t mov(uint8_t rd, uint8_t rs)
    { return emit({Op::Mov, rd, rs}); }

    uint32_t add(uint8_t rd, uint8_t a, uint8_t b)
    { return emit({Op::Add, rd, a, b}); }
    uint32_t sub(uint8_t rd, uint8_t a, uint8_t b)
    { return emit({Op::Sub, rd, a, b}); }
    uint32_t mul(uint8_t rd, uint8_t a, uint8_t b)
    { return emit({Op::Mul, rd, a, b}); }
    uint32_t divu(uint8_t rd, uint8_t a, uint8_t b)
    { return emit({Op::Divu, rd, a, b}); }
    uint32_t and_(uint8_t rd, uint8_t a, uint8_t b)
    { return emit({Op::And, rd, a, b}); }
    uint32_t or_(uint8_t rd, uint8_t a, uint8_t b)
    { return emit({Op::Or, rd, a, b}); }
    uint32_t xor_(uint8_t rd, uint8_t a, uint8_t b)
    { return emit({Op::Xor, rd, a, b}); }
    uint32_t shl(uint8_t rd, uint8_t a, uint8_t b)
    { return emit({Op::Shl, rd, a, b}); }
    uint32_t shr(uint8_t rd, uint8_t a, uint8_t b)
    { return emit({Op::Shr, rd, a, b}); }

    uint32_t addi(uint8_t rd, uint8_t a, int64_t imm)
    { return emit({Op::Addi, rd, a, REG_NONE, REG_NONE, 1, imm}); }
    uint32_t muli(uint8_t rd, uint8_t a, int64_t imm)
    { return emit({Op::Muli, rd, a, REG_NONE, REG_NONE, 1, imm}); }
    uint32_t andi(uint8_t rd, uint8_t a, int64_t imm)
    { return emit({Op::Andi, rd, a, REG_NONE, REG_NONE, 1, imm}); }
    uint32_t shli(uint8_t rd, uint8_t a, int64_t imm)
    { return emit({Op::Shli, rd, a, REG_NONE, REG_NONE, 1, imm}); }
    uint32_t shri(uint8_t rd, uint8_t a, int64_t imm)
    { return emit({Op::Shri, rd, a, REG_NONE, REG_NONE, 1, imm}); }
    uint32_t hash(uint8_t rd, uint8_t a, int64_t salt = 0)
    { return emit({Op::Hash, rd, a, REG_NONE, REG_NONE, 1, salt}); }

    /**
     * Emit the real µop sequence of hashMix64(src ^ salt) (splitmix64
     * finalizer): ~8-10 ALU µops, clobbering @p tmp. Workloads use
     * this rather than the single-cycle Op::Hash so their per-miss
     * µop density matches real address-calculation code.
     */
    void
    hashSeq(uint8_t rd, uint8_t src, uint8_t tmp, int64_t salt = 0)
    {
        if (salt != 0) {
            movi(tmp, salt);
            xor_(rd, src, tmp);
        } else if (rd != src) {
            mov(rd, src);
        }
        shri(tmp, rd, 30);
        xor_(rd, rd, tmp);
        muli(rd, rd, int64_t(0xBF58476D1CE4E5B9ull));
        shri(tmp, rd, 27);
        xor_(rd, rd, tmp);
        muli(rd, rd, int64_t(0x94D049BB133111EBull));
        shri(tmp, rd, 31);
        xor_(rd, rd, tmp);
    }

    uint32_t cmplt(uint8_t rd, uint8_t a, uint8_t b)
    { return emit({Op::CmpLt, rd, a, b}); }
    uint32_t cmpltu(uint8_t rd, uint8_t a, uint8_t b)
    { return emit({Op::CmpLtu, rd, a, b}); }
    uint32_t cmpeq(uint8_t rd, uint8_t a, uint8_t b)
    { return emit({Op::CmpEq, rd, a, b}); }
    uint32_t cmpne(uint8_t rd, uint8_t a, uint8_t b)
    { return emit({Op::CmpNe, rd, a, b}); }
    uint32_t cmplti(uint8_t rd, uint8_t a, int64_t imm)
    { return emit({Op::CmpLti, rd, a, REG_NONE, REG_NONE, 1, imm}); }
    uint32_t cmpeqi(uint8_t rd, uint8_t a, int64_t imm)
    { return emit({Op::CmpEqi, rd, a, REG_NONE, REG_NONE, 1, imm}); }

    uint32_t br(uint8_t cond, Label target)
    { return emitBranch(Op::Br, cond, target); }
    uint32_t brz(uint8_t cond, Label target)
    { return emitBranch(Op::Brz, cond, target); }
    uint32_t jmp(Label target)
    { return emitBranch(Op::Jmp, REG_NONE, target); }

    uint32_t ld(uint8_t rd, uint8_t base, uint8_t idx = REG_NONE,
                uint8_t scale = 1, int64_t disp = 0)
    { return emit({Op::Ld, rd, base, idx, REG_NONE, scale, disp}); }
    uint32_t ld32(uint8_t rd, uint8_t base, uint8_t idx = REG_NONE,
                  uint8_t scale = 1, int64_t disp = 0)
    { return emit({Op::Ld32, rd, base, idx, REG_NONE, scale, disp}); }
    uint32_t st(uint8_t val, uint8_t base, uint8_t idx = REG_NONE,
                uint8_t scale = 1, int64_t disp = 0)
    { return emit({Op::St, REG_NONE, base, idx, val, scale, disp}); }
    uint32_t st32(uint8_t val, uint8_t base, uint8_t idx = REG_NONE,
                  uint8_t scale = 1, int64_t disp = 0)
    { return emit({Op::St32, REG_NONE, base, idx, val, scale, disp}); }
    uint32_t prefetch(uint8_t base, uint8_t idx = REG_NONE,
                      uint8_t scale = 1, int64_t disp = 0)
    { return emit({Op::Pref, REG_NONE, base, idx, REG_NONE, scale,
                   disp}); }

    uint32_t fadd(uint8_t rd, uint8_t a, uint8_t b)
    { return emit({Op::FAdd, rd, a, b}); }
    uint32_t fmul(uint8_t rd, uint8_t a, uint8_t b)
    { return emit({Op::FMul, rd, a, b}); }
    uint32_t fdiv(uint8_t rd, uint8_t a, uint8_t b)
    { return emit({Op::FDiv, rd, a, b}); }

    /** Emit a pre-encoded instruction (for tests and tooling). */
    uint32_t emitRaw(const Inst &i) { return emit(i); }

    /** Resolve all labels and return the finished program. */
    Program build();

    /** Current instruction count. */
    uint32_t pc() const { return uint32_t(prog_.insts_.size()); }

  private:
    uint32_t emit(Inst i);
    uint32_t emitBranch(Op op, uint8_t cond, Label target);

    Program prog_;
    // label id -> bound pc (UINT32_MAX if unbound)
    std::vector<uint32_t> label_pcs_;
    // (inst pc, label id) fixups resolved in build()
    std::vector<std::pair<uint32_t, uint32_t>> fixups_;
    bool built_ = false;
};

} // namespace vrsim

#endif // VRSIM_ISA_INST_HH

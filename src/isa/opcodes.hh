/**
 * @file
 * The vrsim micro-op ISA: a small RISC-like register machine rich
 * enough to express the paper's workloads (indirect chains, hashes,
 * data-dependent loop bounds and branches) while staying analyzable by
 * the runahead hardware structures (stride detector, taint tracker,
 * loop-bound detector).
 */

#ifndef VRSIM_ISA_OPCODES_HH
#define VRSIM_ISA_OPCODES_HH

#include <array>
#include <cstdint>
#include <string>

#include "sim/logging.hh"

namespace vrsim
{

/** Number of architectural integer registers. */
constexpr unsigned NUM_ARCH_REGS = 32;

/** Register id meaning "no register". */
constexpr uint8_t REG_NONE = 0xFF;

/** Micro-operation opcodes. */
enum class Op : uint8_t
{
    Nop,
    Halt,

    // Moves / immediates.
    Movi,    //!< rd = imm
    Mov,     //!< rd = rs1

    // Integer ALU, register-register.
    Add,     //!< rd = rs1 + rs2
    Sub,     //!< rd = rs1 - rs2
    Mul,     //!< rd = rs1 * rs2
    Divu,    //!< rd = rs1 / rs2 (unsigned; x/0 = ~0)
    And,
    Or,
    Xor,
    Shl,
    Shr,

    // Integer ALU, register-immediate.
    Addi,    //!< rd = rs1 + imm
    Muli,
    Andi,
    Shli,
    Shri,

    // One-op hash (models the paper's hash() address calculation;
    // executes in the integer-multiply pipe).
    Hash,    //!< rd = mix64(rs1 ^ imm)

    // Comparisons producing 0/1 in rd. These are what the Loop-Bound
    // Detector's Last-Compare Register latches.
    CmpLt,   //!< rd = (int64)rs1 <  (int64)rs2
    CmpLtu,  //!< rd = rs1 < rs2 (unsigned)
    CmpEq,
    CmpNe,
    CmpLti,  //!< rd = (int64)rs1 < imm
    CmpEqi,

    // Control flow. Branch targets are instruction indices (imm).
    Br,      //!< if rs1 != 0 goto imm
    Brz,     //!< if rs1 == 0 goto imm
    Jmp,     //!< goto imm

    // Memory. Effective address = rs1 + rs2*scale + imm (rs2 optional).
    Ld,      //!< rd = mem64[ea]
    Ld32,    //!< rd = zext(mem32[ea])
    St,      //!< mem64[ea] = rs3
    St32,    //!< mem32[ea] = low32(rs3)
    Pref,    //!< software prefetch of the line at ea (non-binding)

    // Floating point on bit-cast doubles (for pr / NAS-CG).
    FAdd,
    FMul,
    FDiv,

    NumOps,
};

/** Functional-unit class an op executes on (Table 1 latencies). */
enum class FuClass : uint8_t
{
    IntAdd,   //!< simple ALU, moves, compares, shifts, logic
    IntMul,
    IntDiv,
    FpAdd,
    FpMul,
    FpDiv,
    Load,
    Store,
    Branch,   //!< executes on the IntAdd ports
    None,     //!< nop / halt
};

/** Static per-opcode properties. */
struct OpTraits
{
    bool is_load = false;
    bool is_store = false;
    bool is_prefetch = false;  //!< non-binding software prefetch
    bool is_branch = false;  //!< conditional or unconditional transfer
    bool is_cond_branch = false;
    bool is_compare = false;
    bool writes_dst = false;
    bool has_imm = false;
    FuClass fu = FuClass::None;
};

namespace detail
{
/** The traits table, indexed by opcode. Defined in opcodes.cc. */
extern const std::array<OpTraits, size_t(Op::NumOps)> OP_TRAITS;
} // namespace detail

/**
 * Look up the static traits of an opcode. Inline: this runs several
 * times per simulated instruction on the hot dispatch path
 * (docs/performance.md).
 */
inline const OpTraits &
opTraits(Op op)
{
    if (size_t(op) >= size_t(Op::NumOps)) [[unlikely]]
        panic("bad opcode");
    return detail::OP_TRAITS[size_t(op)];
}

/** Mnemonic for disassembly. */
std::string opName(Op op);

/**
 * The one-op hash used by Op::Hash: a splitmix64-style finalizer.
 * Exposed so workloads and tests can compute expected values.
 */
inline uint64_t
hashMix64(uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace vrsim

#endif // VRSIM_ISA_OPCODES_HH

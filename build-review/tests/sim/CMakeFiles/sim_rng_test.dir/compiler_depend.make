# Empty compiler generated dependencies file for sim_rng_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sim_rng_test.dir/rng_test.cc.o"
  "CMakeFiles/sim_rng_test.dir/rng_test.cc.o.d"
  "sim_rng_test"
  "sim_rng_test.pdb"
  "sim_rng_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sim_logging_test.dir/logging_test.cc.o"
  "CMakeFiles/sim_logging_test.dir/logging_test.cc.o.d"
  "sim_logging_test"
  "sim_logging_test.pdb"
  "sim_logging_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_logging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sim_logging_test.
# This may be replaced when dependencies are built.

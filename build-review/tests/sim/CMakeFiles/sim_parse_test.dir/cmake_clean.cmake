file(REMOVE_RECURSE
  "CMakeFiles/sim_parse_test.dir/parse_test.cc.o"
  "CMakeFiles/sim_parse_test.dir/parse_test.cc.o.d"
  "sim_parse_test"
  "sim_parse_test.pdb"
  "sim_parse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_parse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

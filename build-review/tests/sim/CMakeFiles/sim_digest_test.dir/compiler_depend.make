# Empty compiler generated dependencies file for sim_digest_test.
# This may be replaced when dependencies are built.

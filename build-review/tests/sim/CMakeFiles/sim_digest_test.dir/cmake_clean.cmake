file(REMOVE_RECURSE
  "CMakeFiles/sim_digest_test.dir/digest_test.cc.o"
  "CMakeFiles/sim_digest_test.dir/digest_test.cc.o.d"
  "sim_digest_test"
  "sim_digest_test.pdb"
  "sim_digest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_digest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/build-review/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/sim/sim_stats_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim/sim_rng_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim/sim_config_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim/sim_parse_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim/sim_digest_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim/sim_logging_test[1]_include.cmake")

# CMake generated Testfile for 
# Source directory: /root/repo/tests/workloads
# Build directory: /root/repo/build-review/tests/workloads
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/workloads/workloads_graph_test[1]_include.cmake")
include("/root/repo/build-review/tests/workloads/workloads_kernels_test[1]_include.cmake")
include("/root/repo/build-review/tests/workloads/workloads_param_test[1]_include.cmake")
include("/root/repo/build-review/tests/workloads/workloads_graph_io_test[1]_include.cmake")
include("/root/repo/build-review/tests/workloads/workloads_cache_test[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/workloads_cache_test.dir/workload_cache_test.cc.o"
  "CMakeFiles/workloads_cache_test.dir/workload_cache_test.cc.o.d"
  "workloads_cache_test"
  "workloads_cache_test.pdb"
  "workloads_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for workloads_cache_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/workloads_param_test.dir/workload_param_test.cc.o"
  "CMakeFiles/workloads_param_test.dir/workload_param_test.cc.o.d"
  "workloads_param_test"
  "workloads_param_test.pdb"
  "workloads_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

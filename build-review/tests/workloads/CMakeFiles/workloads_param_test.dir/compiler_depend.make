# Empty compiler generated dependencies file for workloads_param_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for workloads_graph_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/workloads_graph_test.dir/graph_test.cc.o"
  "CMakeFiles/workloads_graph_test.dir/graph_test.cc.o.d"
  "workloads_graph_test"
  "workloads_graph_test.pdb"
  "workloads_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

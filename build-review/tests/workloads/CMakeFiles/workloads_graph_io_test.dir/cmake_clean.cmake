file(REMOVE_RECURSE
  "CMakeFiles/workloads_graph_io_test.dir/graph_io_test.cc.o"
  "CMakeFiles/workloads_graph_io_test.dir/graph_io_test.cc.o.d"
  "workloads_graph_io_test"
  "workloads_graph_io_test.pdb"
  "workloads_graph_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_graph_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for workloads_graph_io_test.
# This may be replaced when dependencies are built.

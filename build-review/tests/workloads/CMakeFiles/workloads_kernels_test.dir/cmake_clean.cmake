file(REMOVE_RECURSE
  "CMakeFiles/workloads_kernels_test.dir/kernels_test.cc.o"
  "CMakeFiles/workloads_kernels_test.dir/kernels_test.cc.o.d"
  "workloads_kernels_test"
  "workloads_kernels_test.pdb"
  "workloads_kernels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/integration_fuzz_test.dir/fuzz_test.cc.o"
  "CMakeFiles/integration_fuzz_test.dir/fuzz_test.cc.o.d"
  "integration_fuzz_test"
  "integration_fuzz_test.pdb"
  "integration_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for integration_fuzz_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/integration_simulation_test.dir/simulation_test.cc.o"
  "CMakeFiles/integration_simulation_test.dir/simulation_test.cc.o.d"
  "integration_simulation_test"
  "integration_simulation_test.pdb"
  "integration_simulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

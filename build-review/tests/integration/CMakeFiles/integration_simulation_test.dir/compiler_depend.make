# Empty compiler generated dependencies file for integration_simulation_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/integration_resume_test.dir/resume_test.cc.o"
  "CMakeFiles/integration_resume_test.dir/resume_test.cc.o.d"
  "integration_resume_test"
  "integration_resume_test.pdb"
  "integration_resume_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_resume_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

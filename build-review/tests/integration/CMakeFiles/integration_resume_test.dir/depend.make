# Empty dependencies file for integration_resume_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for integration_guardrail_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/integration_guardrail_test.dir/guardrail_test.cc.o"
  "CMakeFiles/integration_guardrail_test.dir/guardrail_test.cc.o.d"
  "integration_guardrail_test"
  "integration_guardrail_test.pdb"
  "integration_guardrail_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_guardrail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

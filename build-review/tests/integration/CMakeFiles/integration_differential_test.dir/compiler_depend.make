# Empty compiler generated dependencies file for integration_differential_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/integration_differential_test.dir/differential_test.cc.o"
  "CMakeFiles/integration_differential_test.dir/differential_test.cc.o.d"
  "integration_differential_test"
  "integration_differential_test.pdb"
  "integration_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

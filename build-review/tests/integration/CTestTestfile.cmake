# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/build-review/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/integration/integration_simulation_test[1]_include.cmake")
include("/root/repo/build-review/tests/integration/integration_paper_claims_test[1]_include.cmake")
include("/root/repo/build-review/tests/integration/integration_fuzz_test[1]_include.cmake")
include("/root/repo/build-review/tests/integration/integration_guardrail_test[1]_include.cmake")
include("/root/repo/build-review/tests/integration/integration_differential_test[1]_include.cmake")
include("/root/repo/build-review/tests/integration/integration_resume_test[1]_include.cmake")

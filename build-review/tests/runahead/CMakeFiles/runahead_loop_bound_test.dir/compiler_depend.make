# Empty compiler generated dependencies file for runahead_loop_bound_test.
# This may be replaced when dependencies are built.

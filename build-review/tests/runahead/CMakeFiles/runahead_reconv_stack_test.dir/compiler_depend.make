# Empty compiler generated dependencies file for runahead_reconv_stack_test.
# This may be replaced when dependencies are built.

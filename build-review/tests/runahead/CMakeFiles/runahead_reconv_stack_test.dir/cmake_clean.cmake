file(REMOVE_RECURSE
  "CMakeFiles/runahead_reconv_stack_test.dir/reconv_stack_test.cc.o"
  "CMakeFiles/runahead_reconv_stack_test.dir/reconv_stack_test.cc.o.d"
  "runahead_reconv_stack_test"
  "runahead_reconv_stack_test.pdb"
  "runahead_reconv_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runahead_reconv_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for runahead_loop_bound_param_test.
# This may be replaced when dependencies are built.

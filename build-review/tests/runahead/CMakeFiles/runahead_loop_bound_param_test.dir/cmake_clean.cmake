file(REMOVE_RECURSE
  "CMakeFiles/runahead_loop_bound_param_test.dir/loop_bound_param_test.cc.o"
  "CMakeFiles/runahead_loop_bound_param_test.dir/loop_bound_param_test.cc.o.d"
  "runahead_loop_bound_param_test"
  "runahead_loop_bound_param_test.pdb"
  "runahead_loop_bound_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runahead_loop_bound_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/runahead_hardware_budget_test.dir/hardware_budget_test.cc.o"
  "CMakeFiles/runahead_hardware_budget_test.dir/hardware_budget_test.cc.o.d"
  "runahead_hardware_budget_test"
  "runahead_hardware_budget_test.pdb"
  "runahead_hardware_budget_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runahead_hardware_budget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

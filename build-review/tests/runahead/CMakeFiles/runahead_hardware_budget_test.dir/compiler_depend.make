# Empty compiler generated dependencies file for runahead_hardware_budget_test.
# This may be replaced when dependencies are built.

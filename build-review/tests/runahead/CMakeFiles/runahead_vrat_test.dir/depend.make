# Empty dependencies file for runahead_vrat_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/runahead_vrat_test.dir/vrat_test.cc.o"
  "CMakeFiles/runahead_vrat_test.dir/vrat_test.cc.o.d"
  "runahead_vrat_test"
  "runahead_vrat_test.pdb"
  "runahead_vrat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runahead_vrat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

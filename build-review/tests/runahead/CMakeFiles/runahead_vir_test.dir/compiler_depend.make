# Empty compiler generated dependencies file for runahead_vir_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/runahead_vir_test.dir/vir_test.cc.o"
  "CMakeFiles/runahead_vir_test.dir/vir_test.cc.o.d"
  "runahead_vir_test"
  "runahead_vir_test.pdb"
  "runahead_vir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runahead_vir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for runahead_lane_executor_test.
# This may be replaced when dependencies are built.

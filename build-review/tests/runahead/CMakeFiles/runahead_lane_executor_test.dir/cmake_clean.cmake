file(REMOVE_RECURSE
  "CMakeFiles/runahead_lane_executor_test.dir/lane_executor_test.cc.o"
  "CMakeFiles/runahead_lane_executor_test.dir/lane_executor_test.cc.o.d"
  "runahead_lane_executor_test"
  "runahead_lane_executor_test.pdb"
  "runahead_lane_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runahead_lane_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

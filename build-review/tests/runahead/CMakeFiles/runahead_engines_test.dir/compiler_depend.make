# Empty compiler generated dependencies file for runahead_engines_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/runahead_engines_test.dir/engines_test.cc.o"
  "CMakeFiles/runahead_engines_test.dir/engines_test.cc.o.d"
  "runahead_engines_test"
  "runahead_engines_test.pdb"
  "runahead_engines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runahead_engines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

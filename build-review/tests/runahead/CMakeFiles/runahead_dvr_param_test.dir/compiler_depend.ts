# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for runahead_dvr_param_test.

file(REMOVE_RECURSE
  "CMakeFiles/runahead_dvr_param_test.dir/dvr_param_test.cc.o"
  "CMakeFiles/runahead_dvr_param_test.dir/dvr_param_test.cc.o.d"
  "runahead_dvr_param_test"
  "runahead_dvr_param_test.pdb"
  "runahead_dvr_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runahead_dvr_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for runahead_dvr_param_test.
# This may be replaced when dependencies are built.

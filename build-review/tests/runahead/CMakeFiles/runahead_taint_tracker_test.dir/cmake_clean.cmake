file(REMOVE_RECURSE
  "CMakeFiles/runahead_taint_tracker_test.dir/taint_tracker_test.cc.o"
  "CMakeFiles/runahead_taint_tracker_test.dir/taint_tracker_test.cc.o.d"
  "runahead_taint_tracker_test"
  "runahead_taint_tracker_test.pdb"
  "runahead_taint_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runahead_taint_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

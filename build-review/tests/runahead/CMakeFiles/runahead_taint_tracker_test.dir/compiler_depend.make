# Empty compiler generated dependencies file for runahead_taint_tracker_test.
# This may be replaced when dependencies are built.

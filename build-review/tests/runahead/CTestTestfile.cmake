# CMake generated Testfile for 
# Source directory: /root/repo/tests/runahead
# Build directory: /root/repo/build-review/tests/runahead
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/runahead/runahead_taint_tracker_test[1]_include.cmake")
include("/root/repo/build-review/tests/runahead/runahead_loop_bound_test[1]_include.cmake")
include("/root/repo/build-review/tests/runahead/runahead_reconv_stack_test[1]_include.cmake")
include("/root/repo/build-review/tests/runahead/runahead_vrat_test[1]_include.cmake")
include("/root/repo/build-review/tests/runahead/runahead_vir_test[1]_include.cmake")
include("/root/repo/build-review/tests/runahead/runahead_lane_executor_test[1]_include.cmake")
include("/root/repo/build-review/tests/runahead/runahead_hardware_budget_test[1]_include.cmake")
include("/root/repo/build-review/tests/runahead/runahead_engines_test[1]_include.cmake")
include("/root/repo/build-review/tests/runahead/runahead_loop_bound_param_test[1]_include.cmake")
include("/root/repo/build-review/tests/runahead/runahead_dvr_param_test[1]_include.cmake")

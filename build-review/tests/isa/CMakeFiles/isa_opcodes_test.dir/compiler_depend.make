# Empty compiler generated dependencies file for isa_opcodes_test.
# This may be replaced when dependencies are built.

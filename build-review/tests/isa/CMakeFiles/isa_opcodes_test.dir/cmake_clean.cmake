file(REMOVE_RECURSE
  "CMakeFiles/isa_opcodes_test.dir/opcodes_test.cc.o"
  "CMakeFiles/isa_opcodes_test.dir/opcodes_test.cc.o.d"
  "isa_opcodes_test"
  "isa_opcodes_test.pdb"
  "isa_opcodes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_opcodes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

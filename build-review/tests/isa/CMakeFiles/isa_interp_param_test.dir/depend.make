# Empty dependencies file for isa_interp_param_test.
# This may be replaced when dependencies are built.

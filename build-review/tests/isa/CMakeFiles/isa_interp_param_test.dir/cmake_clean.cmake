file(REMOVE_RECURSE
  "CMakeFiles/isa_interp_param_test.dir/interp_param_test.cc.o"
  "CMakeFiles/isa_interp_param_test.dir/interp_param_test.cc.o.d"
  "isa_interp_param_test"
  "isa_interp_param_test.pdb"
  "isa_interp_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_interp_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for isa_interp_test.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests/isa
# Build directory: /root/repo/build-review/tests/isa
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/isa/isa_interp_test[1]_include.cmake")
include("/root/repo/build-review/tests/isa/isa_interp_param_test[1]_include.cmake")
include("/root/repo/build-review/tests/isa/isa_opcodes_test[1]_include.cmake")

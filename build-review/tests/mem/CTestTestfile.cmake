# CMake generated Testfile for 
# Source directory: /root/repo/tests/mem
# Build directory: /root/repo/build-review/tests/mem
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/mem/mem_cache_test[1]_include.cmake")
include("/root/repo/build-review/tests/mem/mem_interval_resource_test[1]_include.cmake")
include("/root/repo/build-review/tests/mem/mem_dram_test[1]_include.cmake")
include("/root/repo/build-review/tests/mem/mem_stride_rpt_test[1]_include.cmake")
include("/root/repo/build-review/tests/mem/mem_hierarchy_test[1]_include.cmake")
include("/root/repo/build-review/tests/mem/mem_imp_test[1]_include.cmake")
include("/root/repo/build-review/tests/mem/mem_memory_image_test[1]_include.cmake")
include("/root/repo/build-review/tests/mem/mem_cache_param_test[1]_include.cmake")

# Empty compiler generated dependencies file for mem_hierarchy_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mem_hierarchy_test.dir/hierarchy_test.cc.o"
  "CMakeFiles/mem_hierarchy_test.dir/hierarchy_test.cc.o.d"
  "mem_hierarchy_test"
  "mem_hierarchy_test.pdb"
  "mem_hierarchy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

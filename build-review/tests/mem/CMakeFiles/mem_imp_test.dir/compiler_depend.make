# Empty compiler generated dependencies file for mem_imp_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mem_imp_test.dir/imp_test.cc.o"
  "CMakeFiles/mem_imp_test.dir/imp_test.cc.o.d"
  "mem_imp_test"
  "mem_imp_test.pdb"
  "mem_imp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_imp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

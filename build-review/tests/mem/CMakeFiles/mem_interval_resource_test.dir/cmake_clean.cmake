file(REMOVE_RECURSE
  "CMakeFiles/mem_interval_resource_test.dir/interval_resource_test.cc.o"
  "CMakeFiles/mem_interval_resource_test.dir/interval_resource_test.cc.o.d"
  "mem_interval_resource_test"
  "mem_interval_resource_test.pdb"
  "mem_interval_resource_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_interval_resource_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mem_interval_resource_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for mem_stride_rpt_test.
# This may be replaced when dependencies are built.

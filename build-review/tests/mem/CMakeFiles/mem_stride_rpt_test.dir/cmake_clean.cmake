file(REMOVE_RECURSE
  "CMakeFiles/mem_stride_rpt_test.dir/stride_rpt_test.cc.o"
  "CMakeFiles/mem_stride_rpt_test.dir/stride_rpt_test.cc.o.d"
  "mem_stride_rpt_test"
  "mem_stride_rpt_test.pdb"
  "mem_stride_rpt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_stride_rpt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

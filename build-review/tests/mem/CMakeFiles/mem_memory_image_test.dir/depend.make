# Empty dependencies file for mem_memory_image_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mem_memory_image_test.dir/memory_image_test.cc.o"
  "CMakeFiles/mem_memory_image_test.dir/memory_image_test.cc.o.d"
  "mem_memory_image_test"
  "mem_memory_image_test.pdb"
  "mem_memory_image_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_memory_image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/mem_cache_param_test.dir/cache_param_test.cc.o"
  "CMakeFiles/mem_cache_param_test.dir/cache_param_test.cc.o.d"
  "mem_cache_param_test"
  "mem_cache_param_test.pdb"
  "mem_cache_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_cache_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

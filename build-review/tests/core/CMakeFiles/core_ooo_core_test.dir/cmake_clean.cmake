file(REMOVE_RECURSE
  "CMakeFiles/core_ooo_core_test.dir/ooo_core_test.cc.o"
  "CMakeFiles/core_ooo_core_test.dir/ooo_core_test.cc.o.d"
  "core_ooo_core_test"
  "core_ooo_core_test.pdb"
  "core_ooo_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ooo_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

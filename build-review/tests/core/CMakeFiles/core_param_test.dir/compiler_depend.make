# Empty compiler generated dependencies file for core_param_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/core_param_test.dir/core_param_test.cc.o"
  "CMakeFiles/core_param_test.dir/core_param_test.cc.o.d"
  "core_param_test"
  "core_param_test.pdb"
  "core_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build-review/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/core/core_ooo_core_test[1]_include.cmake")
include("/root/repo/build-review/tests/core/core_param_test[1]_include.cmake")

# CMake generated Testfile for 
# Source directory: /root/repo/tests/frontend
# Build directory: /root/repo/build-review/tests/frontend
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/frontend/frontend_branch_predictor_test[1]_include.cmake")
include("/root/repo/build-review/tests/frontend/frontend_btb_test[1]_include.cmake")

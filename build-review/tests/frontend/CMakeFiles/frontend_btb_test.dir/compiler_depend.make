# Empty compiler generated dependencies file for frontend_btb_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/frontend_btb_test.dir/btb_test.cc.o"
  "CMakeFiles/frontend_btb_test.dir/btb_test.cc.o.d"
  "frontend_btb_test"
  "frontend_btb_test.pdb"
  "frontend_btb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_btb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

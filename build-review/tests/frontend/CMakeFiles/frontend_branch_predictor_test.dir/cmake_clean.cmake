file(REMOVE_RECURSE
  "CMakeFiles/frontend_branch_predictor_test.dir/branch_predictor_test.cc.o"
  "CMakeFiles/frontend_branch_predictor_test.dir/branch_predictor_test.cc.o.d"
  "frontend_branch_predictor_test"
  "frontend_branch_predictor_test.pdb"
  "frontend_branch_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_branch_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for frontend_branch_predictor_test.

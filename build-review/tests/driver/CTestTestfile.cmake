# CMake generated Testfile for 
# Source directory: /root/repo/tests/driver
# Build directory: /root/repo/build-review/tests/driver
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/driver/driver_report_test[1]_include.cmake")
include("/root/repo/build-review/tests/driver/driver_sweep_runner_test[1]_include.cmake")
include("/root/repo/build-review/tests/driver/driver_repro_test[1]_include.cmake")

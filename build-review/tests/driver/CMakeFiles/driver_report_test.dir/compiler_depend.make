# Empty compiler generated dependencies file for driver_report_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/driver_report_test.dir/report_test.cc.o"
  "CMakeFiles/driver_report_test.dir/report_test.cc.o.d"
  "driver_report_test"
  "driver_report_test.pdb"
  "driver_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/driver_sweep_runner_test.dir/sweep_runner_test.cc.o"
  "CMakeFiles/driver_sweep_runner_test.dir/sweep_runner_test.cc.o.d"
  "driver_sweep_runner_test"
  "driver_sweep_runner_test.pdb"
  "driver_sweep_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_sweep_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

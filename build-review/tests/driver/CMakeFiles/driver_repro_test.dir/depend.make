# Empty dependencies file for driver_repro_test.
# This may be replaced when dependencies are built.

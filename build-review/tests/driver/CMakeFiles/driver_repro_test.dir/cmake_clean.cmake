file(REMOVE_RECURSE
  "CMakeFiles/driver_repro_test.dir/repro_test.cc.o"
  "CMakeFiles/driver_repro_test.dir/repro_test.cc.o.d"
  "driver_repro_test"
  "driver_repro_test.pdb"
  "driver_repro_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_repro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/technique_tour.dir/technique_tour.cpp.o"
  "CMakeFiles/technique_tour.dir/technique_tour.cpp.o.d"
  "technique_tour"
  "technique_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/technique_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for technique_tour.
# This may be replaced when dependencies are built.

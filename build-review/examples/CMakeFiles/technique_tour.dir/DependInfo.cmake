
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/technique_tour.cpp" "examples/CMakeFiles/technique_tour.dir/technique_tour.cpp.o" "gcc" "examples/CMakeFiles/technique_tour.dir/technique_tour.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/driver/CMakeFiles/vrsim_driver.dir/DependInfo.cmake"
  "/root/repo/build-review/src/runahead/CMakeFiles/vrsim_runahead.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/vrsim_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mem/CMakeFiles/vrsim_mem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/frontend/CMakeFiles/vrsim_frontend.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workloads/CMakeFiles/vrsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build-review/src/isa/CMakeFiles/vrsim_isa.dir/DependInfo.cmake"
  "/root/repo/build-review/src/sim/CMakeFiles/vrsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/hash_join_db.dir/hash_join_db.cpp.o"
  "CMakeFiles/hash_join_db.dir/hash_join_db.cpp.o.d"
  "hash_join_db"
  "hash_join_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_join_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

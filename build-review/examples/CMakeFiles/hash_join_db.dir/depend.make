# Empty dependencies file for hash_join_db.
# This may be replaced when dependencies are built.

# Empty dependencies file for table2_graph_inputs.
# This may be replaced when dependencies are built.

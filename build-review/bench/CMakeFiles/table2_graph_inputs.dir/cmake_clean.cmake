file(REMOVE_RECURSE
  "CMakeFiles/table2_graph_inputs.dir/table2_graph_inputs.cc.o"
  "CMakeFiles/table2_graph_inputs.dir/table2_graph_inputs.cc.o.d"
  "table2_graph_inputs"
  "table2_graph_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_graph_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_mshrs.dir/ablation_mshrs.cc.o"
  "CMakeFiles/ablation_mshrs.dir/ablation_mshrs.cc.o.d"
  "ablation_mshrs"
  "ablation_mshrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mshrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

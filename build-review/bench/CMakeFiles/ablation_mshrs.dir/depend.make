# Empty dependencies file for ablation_mshrs.
# This may be replaced when dependencies are built.

# Empty dependencies file for ablation_stride_detector.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_stride_detector.dir/ablation_stride_detector.cc.o"
  "CMakeFiles/ablation_stride_detector.dir/ablation_stride_detector.cc.o.d"
  "ablation_stride_detector"
  "ablation_stride_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stride_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

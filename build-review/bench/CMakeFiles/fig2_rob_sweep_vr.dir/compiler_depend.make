# Empty compiler generated dependencies file for fig2_rob_sweep_vr.
# This may be replaced when dependencies are built.

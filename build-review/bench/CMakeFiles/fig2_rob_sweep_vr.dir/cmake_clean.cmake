file(REMOVE_RECURSE
  "CMakeFiles/fig2_rob_sweep_vr.dir/fig2_rob_sweep_vr.cc.o"
  "CMakeFiles/fig2_rob_sweep_vr.dir/fig2_rob_sweep_vr.cc.o.d"
  "fig2_rob_sweep_vr"
  "fig2_rob_sweep_vr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_rob_sweep_vr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

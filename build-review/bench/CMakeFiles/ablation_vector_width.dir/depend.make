# Empty dependencies file for ablation_vector_width.
# This may be replaced when dependencies are built.

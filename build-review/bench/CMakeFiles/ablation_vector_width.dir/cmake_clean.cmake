file(REMOVE_RECURSE
  "CMakeFiles/ablation_vector_width.dir/ablation_vector_width.cc.o"
  "CMakeFiles/ablation_vector_width.dir/ablation_vector_width.cc.o.d"
  "ablation_vector_width"
  "ablation_vector_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vector_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig9_mlp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig9_mlp.dir/fig9_mlp.cc.o"
  "CMakeFiles/fig9_mlp.dir/fig9_mlp.cc.o.d"
  "fig9_mlp"
  "fig9_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

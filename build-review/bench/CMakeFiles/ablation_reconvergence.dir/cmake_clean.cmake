file(REMOVE_RECURSE
  "CMakeFiles/ablation_reconvergence.dir/ablation_reconvergence.cc.o"
  "CMakeFiles/ablation_reconvergence.dir/ablation_reconvergence.cc.o.d"
  "ablation_reconvergence"
  "ablation_reconvergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reconvergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

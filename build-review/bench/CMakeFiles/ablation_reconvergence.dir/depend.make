# Empty dependencies file for ablation_reconvergence.
# This may be replaced when dependencies are built.

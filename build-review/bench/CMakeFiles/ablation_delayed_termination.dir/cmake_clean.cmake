file(REMOVE_RECURSE
  "CMakeFiles/ablation_delayed_termination.dir/ablation_delayed_termination.cc.o"
  "CMakeFiles/ablation_delayed_termination.dir/ablation_delayed_termination.cc.o.d"
  "ablation_delayed_termination"
  "ablation_delayed_termination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delayed_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

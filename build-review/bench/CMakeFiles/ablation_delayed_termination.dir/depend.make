# Empty dependencies file for ablation_delayed_termination.
# This may be replaced when dependencies are built.

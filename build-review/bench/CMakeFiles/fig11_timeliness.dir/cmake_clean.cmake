file(REMOVE_RECURSE
  "CMakeFiles/fig11_timeliness.dir/fig11_timeliness.cc.o"
  "CMakeFiles/fig11_timeliness.dir/fig11_timeliness.cc.o.d"
  "fig11_timeliness"
  "fig11_timeliness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_timeliness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig11_timeliness.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig8_breakdown.dir/fig8_breakdown.cc.o"
  "CMakeFiles/fig8_breakdown.dir/fig8_breakdown.cc.o.d"
  "fig8_breakdown"
  "fig8_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig12_rob_sweep_dvr.
# This may be replaced when dependencies are built.

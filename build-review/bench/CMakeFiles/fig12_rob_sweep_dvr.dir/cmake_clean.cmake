file(REMOVE_RECURSE
  "CMakeFiles/fig12_rob_sweep_dvr.dir/fig12_rob_sweep_dvr.cc.o"
  "CMakeFiles/fig12_rob_sweep_dvr.dir/fig12_rob_sweep_dvr.cc.o.d"
  "fig12_rob_sweep_dvr"
  "fig12_rob_sweep_dvr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_rob_sweep_dvr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

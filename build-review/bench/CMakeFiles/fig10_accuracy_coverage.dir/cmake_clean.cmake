file(REMOVE_RECURSE
  "CMakeFiles/fig10_accuracy_coverage.dir/fig10_accuracy_coverage.cc.o"
  "CMakeFiles/fig10_accuracy_coverage.dir/fig10_accuracy_coverage.cc.o.d"
  "fig10_accuracy_coverage"
  "fig10_accuracy_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_accuracy_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

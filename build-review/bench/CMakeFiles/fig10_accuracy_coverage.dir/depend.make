# Empty dependencies file for fig10_accuracy_coverage.
# This may be replaced when dependencies are built.

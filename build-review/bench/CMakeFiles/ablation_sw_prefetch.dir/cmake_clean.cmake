file(REMOVE_RECURSE
  "CMakeFiles/ablation_sw_prefetch.dir/ablation_sw_prefetch.cc.o"
  "CMakeFiles/ablation_sw_prefetch.dir/ablation_sw_prefetch.cc.o.d"
  "ablation_sw_prefetch"
  "ablation_sw_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sw_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-review/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_table2_graph_inputs "/root/repo/build-review/bench/table2_graph_inputs")
set_tests_properties(bench_smoke_table2_graph_inputs PROPERTIES  ENVIRONMENT "VRSIM_NODES=2048;VRSIM_DEGREE=8;VRSIM_ELEMS=4096;VRSIM_ROI=6000;VRSIM_WARMUP=1000" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig2_rob_sweep_vr "/root/repo/build-review/bench/fig2_rob_sweep_vr")
set_tests_properties(bench_smoke_fig2_rob_sweep_vr PROPERTIES  ENVIRONMENT "VRSIM_NODES=2048;VRSIM_DEGREE=8;VRSIM_ELEMS=4096;VRSIM_ROI=6000;VRSIM_WARMUP=1000" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig7_performance "/root/repo/build-review/bench/fig7_performance")
set_tests_properties(bench_smoke_fig7_performance PROPERTIES  ENVIRONMENT "VRSIM_NODES=2048;VRSIM_DEGREE=8;VRSIM_ELEMS=4096;VRSIM_ROI=6000;VRSIM_WARMUP=1000" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig8_breakdown "/root/repo/build-review/bench/fig8_breakdown")
set_tests_properties(bench_smoke_fig8_breakdown PROPERTIES  ENVIRONMENT "VRSIM_NODES=2048;VRSIM_DEGREE=8;VRSIM_ELEMS=4096;VRSIM_ROI=6000;VRSIM_WARMUP=1000" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig9_mlp "/root/repo/build-review/bench/fig9_mlp")
set_tests_properties(bench_smoke_fig9_mlp PROPERTIES  ENVIRONMENT "VRSIM_NODES=2048;VRSIM_DEGREE=8;VRSIM_ELEMS=4096;VRSIM_ROI=6000;VRSIM_WARMUP=1000" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig10_accuracy_coverage "/root/repo/build-review/bench/fig10_accuracy_coverage")
set_tests_properties(bench_smoke_fig10_accuracy_coverage PROPERTIES  ENVIRONMENT "VRSIM_NODES=2048;VRSIM_DEGREE=8;VRSIM_ELEMS=4096;VRSIM_ROI=6000;VRSIM_WARMUP=1000" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig11_timeliness "/root/repo/build-review/bench/fig11_timeliness")
set_tests_properties(bench_smoke_fig11_timeliness PROPERTIES  ENVIRONMENT "VRSIM_NODES=2048;VRSIM_DEGREE=8;VRSIM_ELEMS=4096;VRSIM_ROI=6000;VRSIM_WARMUP=1000" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig12_rob_sweep_dvr "/root/repo/build-review/bench/fig12_rob_sweep_dvr")
set_tests_properties(bench_smoke_fig12_rob_sweep_dvr PROPERTIES  ENVIRONMENT "VRSIM_NODES=2048;VRSIM_DEGREE=8;VRSIM_ELEMS=4096;VRSIM_ROI=6000;VRSIM_WARMUP=1000" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_delayed_termination "/root/repo/build-review/bench/ablation_delayed_termination")
set_tests_properties(bench_smoke_ablation_delayed_termination PROPERTIES  ENVIRONMENT "VRSIM_NODES=2048;VRSIM_DEGREE=8;VRSIM_ELEMS=4096;VRSIM_ROI=6000;VRSIM_WARMUP=1000" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_vector_width "/root/repo/build-review/bench/ablation_vector_width")
set_tests_properties(bench_smoke_ablation_vector_width PROPERTIES  ENVIRONMENT "VRSIM_NODES=2048;VRSIM_DEGREE=8;VRSIM_ELEMS=4096;VRSIM_ROI=6000;VRSIM_WARMUP=1000" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_mshrs "/root/repo/build-review/bench/ablation_mshrs")
set_tests_properties(bench_smoke_ablation_mshrs PROPERTIES  ENVIRONMENT "VRSIM_NODES=2048;VRSIM_DEGREE=8;VRSIM_ELEMS=4096;VRSIM_ROI=6000;VRSIM_WARMUP=1000" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_sw_prefetch "/root/repo/build-review/bench/ablation_sw_prefetch")
set_tests_properties(bench_smoke_ablation_sw_prefetch PROPERTIES  ENVIRONMENT "VRSIM_NODES=2048;VRSIM_DEGREE=8;VRSIM_ELEMS=4096;VRSIM_ROI=6000;VRSIM_WARMUP=1000" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_reconvergence "/root/repo/build-review/bench/ablation_reconvergence")
set_tests_properties(bench_smoke_ablation_reconvergence PROPERTIES  ENVIRONMENT "VRSIM_NODES=2048;VRSIM_DEGREE=8;VRSIM_ELEMS=4096;VRSIM_ROI=6000;VRSIM_WARMUP=1000" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ablation_stride_detector "/root/repo/build-review/bench/ablation_stride_detector")
set_tests_properties(bench_smoke_ablation_stride_detector PROPERTIES  ENVIRONMENT "VRSIM_NODES=2048;VRSIM_DEGREE=8;VRSIM_ELEMS=4096;VRSIM_ROI=6000;VRSIM_WARMUP=1000" LABELS "bench_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;39;add_test;/root/repo/bench/CMakeLists.txt;0;")

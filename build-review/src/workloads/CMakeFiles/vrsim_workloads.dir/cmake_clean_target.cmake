file(REMOVE_RECURSE
  "libvrsim_workloads.a"
)

# Empty compiler generated dependencies file for vrsim_workloads.
# This may be replaced when dependencies are built.

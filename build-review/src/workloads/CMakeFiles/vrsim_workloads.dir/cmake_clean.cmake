file(REMOVE_RECURSE
  "CMakeFiles/vrsim_workloads.dir/gap.cc.o"
  "CMakeFiles/vrsim_workloads.dir/gap.cc.o.d"
  "CMakeFiles/vrsim_workloads.dir/graph.cc.o"
  "CMakeFiles/vrsim_workloads.dir/graph.cc.o.d"
  "CMakeFiles/vrsim_workloads.dir/graph_io.cc.o"
  "CMakeFiles/vrsim_workloads.dir/graph_io.cc.o.d"
  "CMakeFiles/vrsim_workloads.dir/hpcdb.cc.o"
  "CMakeFiles/vrsim_workloads.dir/hpcdb.cc.o.d"
  "CMakeFiles/vrsim_workloads.dir/workload.cc.o"
  "CMakeFiles/vrsim_workloads.dir/workload.cc.o.d"
  "CMakeFiles/vrsim_workloads.dir/workload_cache.cc.o"
  "CMakeFiles/vrsim_workloads.dir/workload_cache.cc.o.d"
  "libvrsim_workloads.a"
  "libvrsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

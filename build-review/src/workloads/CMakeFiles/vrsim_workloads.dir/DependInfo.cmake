
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/gap.cc" "src/workloads/CMakeFiles/vrsim_workloads.dir/gap.cc.o" "gcc" "src/workloads/CMakeFiles/vrsim_workloads.dir/gap.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/workloads/CMakeFiles/vrsim_workloads.dir/graph.cc.o" "gcc" "src/workloads/CMakeFiles/vrsim_workloads.dir/graph.cc.o.d"
  "/root/repo/src/workloads/graph_io.cc" "src/workloads/CMakeFiles/vrsim_workloads.dir/graph_io.cc.o" "gcc" "src/workloads/CMakeFiles/vrsim_workloads.dir/graph_io.cc.o.d"
  "/root/repo/src/workloads/hpcdb.cc" "src/workloads/CMakeFiles/vrsim_workloads.dir/hpcdb.cc.o" "gcc" "src/workloads/CMakeFiles/vrsim_workloads.dir/hpcdb.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/vrsim_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/vrsim_workloads.dir/workload.cc.o.d"
  "/root/repo/src/workloads/workload_cache.cc" "src/workloads/CMakeFiles/vrsim_workloads.dir/workload_cache.cc.o" "gcc" "src/workloads/CMakeFiles/vrsim_workloads.dir/workload_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/vrsim_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/isa/CMakeFiles/vrsim_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/vrsim_mem.dir/cache.cc.o"
  "CMakeFiles/vrsim_mem.dir/cache.cc.o.d"
  "CMakeFiles/vrsim_mem.dir/hierarchy.cc.o"
  "CMakeFiles/vrsim_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/vrsim_mem.dir/imp.cc.o"
  "CMakeFiles/vrsim_mem.dir/imp.cc.o.d"
  "libvrsim_mem.a"
  "libvrsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

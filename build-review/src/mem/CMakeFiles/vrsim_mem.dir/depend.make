# Empty dependencies file for vrsim_mem.
# This may be replaced when dependencies are built.

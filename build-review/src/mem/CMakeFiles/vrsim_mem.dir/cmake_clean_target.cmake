file(REMOVE_RECURSE
  "libvrsim_mem.a"
)

# Empty compiler generated dependencies file for vrsim_frontend.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vrsim_frontend.dir/branch_predictor.cc.o"
  "CMakeFiles/vrsim_frontend.dir/branch_predictor.cc.o.d"
  "libvrsim_frontend.a"
  "libvrsim_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrsim_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

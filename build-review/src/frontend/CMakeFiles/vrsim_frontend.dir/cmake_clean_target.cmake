file(REMOVE_RECURSE
  "libvrsim_frontend.a"
)

# Empty dependencies file for vrsim_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvrsim_sim.a"
)

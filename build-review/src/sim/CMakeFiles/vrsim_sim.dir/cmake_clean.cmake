file(REMOVE_RECURSE
  "CMakeFiles/vrsim_sim.dir/config.cc.o"
  "CMakeFiles/vrsim_sim.dir/config.cc.o.d"
  "CMakeFiles/vrsim_sim.dir/digest.cc.o"
  "CMakeFiles/vrsim_sim.dir/digest.cc.o.d"
  "CMakeFiles/vrsim_sim.dir/parse.cc.o"
  "CMakeFiles/vrsim_sim.dir/parse.cc.o.d"
  "libvrsim_sim.a"
  "libvrsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

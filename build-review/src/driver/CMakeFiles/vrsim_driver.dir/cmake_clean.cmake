file(REMOVE_RECURSE
  "CMakeFiles/vrsim_driver.dir/plan.cc.o"
  "CMakeFiles/vrsim_driver.dir/plan.cc.o.d"
  "CMakeFiles/vrsim_driver.dir/report.cc.o"
  "CMakeFiles/vrsim_driver.dir/report.cc.o.d"
  "CMakeFiles/vrsim_driver.dir/repro.cc.o"
  "CMakeFiles/vrsim_driver.dir/repro.cc.o.d"
  "CMakeFiles/vrsim_driver.dir/simulation.cc.o"
  "CMakeFiles/vrsim_driver.dir/simulation.cc.o.d"
  "CMakeFiles/vrsim_driver.dir/sweep_runner.cc.o"
  "CMakeFiles/vrsim_driver.dir/sweep_runner.cc.o.d"
  "libvrsim_driver.a"
  "libvrsim_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrsim_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

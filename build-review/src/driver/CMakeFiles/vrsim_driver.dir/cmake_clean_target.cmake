file(REMOVE_RECURSE
  "libvrsim_driver.a"
)

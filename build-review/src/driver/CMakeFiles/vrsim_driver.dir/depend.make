# Empty dependencies file for vrsim_driver.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvrsim_core.a"
)

# Empty compiler generated dependencies file for vrsim_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vrsim_core.dir/ooo_core.cc.o"
  "CMakeFiles/vrsim_core.dir/ooo_core.cc.o.d"
  "libvrsim_core.a"
  "libvrsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libvrsim_runahead.a"
)

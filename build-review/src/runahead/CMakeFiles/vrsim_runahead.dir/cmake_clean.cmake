file(REMOVE_RECURSE
  "CMakeFiles/vrsim_runahead.dir/dvr.cc.o"
  "CMakeFiles/vrsim_runahead.dir/dvr.cc.o.d"
  "CMakeFiles/vrsim_runahead.dir/hardware_budget.cc.o"
  "CMakeFiles/vrsim_runahead.dir/hardware_budget.cc.o.d"
  "CMakeFiles/vrsim_runahead.dir/lane_executor.cc.o"
  "CMakeFiles/vrsim_runahead.dir/lane_executor.cc.o.d"
  "CMakeFiles/vrsim_runahead.dir/pre.cc.o"
  "CMakeFiles/vrsim_runahead.dir/pre.cc.o.d"
  "CMakeFiles/vrsim_runahead.dir/vector_runahead.cc.o"
  "CMakeFiles/vrsim_runahead.dir/vector_runahead.cc.o.d"
  "libvrsim_runahead.a"
  "libvrsim_runahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrsim_runahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runahead/dvr.cc" "src/runahead/CMakeFiles/vrsim_runahead.dir/dvr.cc.o" "gcc" "src/runahead/CMakeFiles/vrsim_runahead.dir/dvr.cc.o.d"
  "/root/repo/src/runahead/hardware_budget.cc" "src/runahead/CMakeFiles/vrsim_runahead.dir/hardware_budget.cc.o" "gcc" "src/runahead/CMakeFiles/vrsim_runahead.dir/hardware_budget.cc.o.d"
  "/root/repo/src/runahead/lane_executor.cc" "src/runahead/CMakeFiles/vrsim_runahead.dir/lane_executor.cc.o" "gcc" "src/runahead/CMakeFiles/vrsim_runahead.dir/lane_executor.cc.o.d"
  "/root/repo/src/runahead/pre.cc" "src/runahead/CMakeFiles/vrsim_runahead.dir/pre.cc.o" "gcc" "src/runahead/CMakeFiles/vrsim_runahead.dir/pre.cc.o.d"
  "/root/repo/src/runahead/vector_runahead.cc" "src/runahead/CMakeFiles/vrsim_runahead.dir/vector_runahead.cc.o" "gcc" "src/runahead/CMakeFiles/vrsim_runahead.dir/vector_runahead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/vrsim_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/isa/CMakeFiles/vrsim_isa.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mem/CMakeFiles/vrsim_mem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/vrsim_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/frontend/CMakeFiles/vrsim_frontend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for vrsim_runahead.
# This may be replaced when dependencies are built.

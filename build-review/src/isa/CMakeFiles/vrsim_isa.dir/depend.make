# Empty dependencies file for vrsim_isa.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvrsim_isa.a"
)

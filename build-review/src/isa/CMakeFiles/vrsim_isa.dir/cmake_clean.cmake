file(REMOVE_RECURSE
  "CMakeFiles/vrsim_isa.dir/inst.cc.o"
  "CMakeFiles/vrsim_isa.dir/inst.cc.o.d"
  "CMakeFiles/vrsim_isa.dir/interp.cc.o"
  "CMakeFiles/vrsim_isa.dir/interp.cc.o.d"
  "CMakeFiles/vrsim_isa.dir/opcodes.cc.o"
  "CMakeFiles/vrsim_isa.dir/opcodes.cc.o.d"
  "libvrsim_isa.a"
  "libvrsim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrsim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

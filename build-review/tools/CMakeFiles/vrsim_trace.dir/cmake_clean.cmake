file(REMOVE_RECURSE
  "CMakeFiles/vrsim_trace.dir/vrsim_trace.cc.o"
  "CMakeFiles/vrsim_trace.dir/vrsim_trace.cc.o.d"
  "vrsim_trace"
  "vrsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for vrsim_trace.
# This may be replaced when dependencies are built.

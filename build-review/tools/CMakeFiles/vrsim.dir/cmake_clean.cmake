file(REMOVE_RECURSE
  "CMakeFiles/vrsim.dir/vrsim_cli.cc.o"
  "CMakeFiles/vrsim.dir/vrsim_cli.cc.o.d"
  "vrsim"
  "vrsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for vrsim.
# This may be replaced when dependencies are built.

/**
 * @file
 * Vector-width ablation (paper §6.1 discussion): DVR with 32, 64,
 * 128 and 256 scalar-equivalent lanes. The paper notes NAS-CG/NAS-IS
 * would need 256-element DVR to reach Oracle performance on a large
 * core. Width variants apply only to the DVR column; the OoO and
 * Oracle anchors run once per spec in a second grid.
 */

#include "bench_common.hh"

#include <iomanip>

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Ablation: DVR vector width (lanes)", env);

    // Lane counts are vector_regs x lanes_per_vector; we scale the
    // number of vector registers (the paper's suggestion: wider DVR
    // units need a larger VRAT).
    const uint32_t widths[] = {32, 64, 128, 256};

    std::vector<std::string> specs = {"nas-cg", "nas-is", "camel",
                                      "kangaroo", "bfs/KR", "sssp/KR"};

    std::vector<ConfigVariant> variants;
    for (uint32_t w : widths)
        variants.push_back({std::to_string(w) + "ln",
                            [w](SystemConfig &c) {
                                c.runahead.vector_regs =
                                    w / c.runahead.lanes_per_vector;
                            }});

    RunPlan plan = env.plan();
    plan.add(specs, {Technique::Dvr}, variants);
    plan.add(specs, {Technique::OoO, Technique::Oracle});
    ResultTable table = env.sweep(plan);

    std::cout << std::left << std::setw(16) << "benchmark";
    for (uint32_t w : widths)
        std::cout << std::right << std::setw(10)
                  << (std::to_string(w) + "ln");
    std::cout << std::right << std::setw(10) << "Oracle" << "\n";

    for (const auto &spec : specs) {
        const SimResult &base = table.at(spec, Technique::OoO);
        std::printf("%-16s", spec.c_str());
        for (uint32_t w : widths) {
            const SimResult &r =
                table.at(spec, Technique::Dvr,
                         std::to_string(w) + "ln");
            std::printf("%10.3f", r.ipc() / base.ipc());
        }
        const SimResult &orc = table.at(spec, Technique::Oracle);
        std::printf("%10.3f\n", orc.ipc() / base.ipc());
    }
    return 0;
}

/**
 * @file
 * MSHR-count ablation: DVR's MLP is bounded by the L1D MSHRs (the
 * paper's Table 1 gives 24). Sweeping 8/16/24/48 shows how the
 * speedup and achieved MLP scale with outstanding-miss capacity.
 */

#include "bench_common.hh"

#include <iomanip>

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Ablation: L1D MSHR count", env);

    const uint32_t mshrs[] = {8, 16, 24, 48};
    std::vector<std::string> specs = {"bfs/KR", "sssp/KR", "camel",
                                      "kangaroo", "hj8"};

    std::cout << std::left << std::setw(16) << "benchmark";
    for (uint32_t m : mshrs)
        std::cout << std::right << std::setw(9)
                  << (std::to_string(m) + "sp") << std::setw(9)
                  << (std::to_string(m) + "mlp");
    std::cout << "\n";

    for (const auto &spec : specs) {
        std::printf("%-16s", spec.c_str());
        for (uint32_t m : mshrs) {
            SystemConfig cfg = env.cfg;
            cfg.l1d.mshrs = m;
            SimResult base = runSimulation(spec, Technique::OoO, cfg,
                                           env.gscale, env.hscale,
                                           env.roi + env.warmup,
                                           env.warmup);
            SimResult r = runSimulation(spec, Technique::Dvr, cfg,
                                        env.gscale, env.hscale,
                                        env.roi + env.warmup,
                                        env.warmup);
            std::printf("%9.3f %8.1f", r.ipc() / base.ipc(), r.mlp);
        }
        std::printf("\n");
    }
    return 0;
}

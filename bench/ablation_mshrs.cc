/**
 * @file
 * MSHR-count ablation: DVR's MLP is bounded by the L1D MSHRs (the
 * paper's Table 1 gives 24). Sweeping 8/16/24/48 shows how the
 * speedup and achieved MLP scale with outstanding-miss capacity.
 * The OoO baseline is re-run per MSHR count (its IPC depends on it).
 */

#include "bench_common.hh"

#include <iomanip>

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Ablation: L1D MSHR count", env);

    const uint32_t mshrs[] = {8, 16, 24, 48};
    std::vector<std::string> specs = {"bfs/KR", "sssp/KR", "camel",
                                      "kangaroo", "hj8"};

    std::vector<ConfigVariant> variants;
    for (uint32_t m : mshrs)
        variants.push_back({"mshrs=" + std::to_string(m),
                            [m](SystemConfig &c) { c.l1d.mshrs = m; }});

    RunPlan plan = env.plan();
    plan.add(specs, {Technique::OoO, Technique::Dvr}, variants);
    ResultTable table = env.sweep(plan);

    std::cout << std::left << std::setw(16) << "benchmark";
    for (uint32_t m : mshrs)
        std::cout << std::right << std::setw(9)
                  << (std::to_string(m) + "sp") << std::setw(9)
                  << (std::to_string(m) + "mlp");
    std::cout << "\n";

    for (const auto &spec : specs) {
        std::printf("%-16s", spec.c_str());
        for (uint32_t m : mshrs) {
            const std::string var = "mshrs=" + std::to_string(m);
            const SimResult &base = table.at(spec, Technique::OoO, var);
            const SimResult &r = table.at(spec, Technique::Dvr, var);
            std::printf("%9.3f %8.1f", r.ipc() / base.ipc(), r.mlp);
        }
        std::printf("\n");
    }
    return 0;
}

/**
 * @file
 * Figure 10: accuracy & coverage — total DRAM accesses normalized to
 * the OoO baseline, split into main-thread and runahead fractions,
 * for VR and DVR. VR over-fetches (its total can exceed 2x); DVR's
 * Discovery Mode keeps the total near 1x while shifting most fills
 * into runahead (coverage).
 */

#include "bench_common.hh"

#include <iomanip>

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Figure 10: DRAM accesses vs OoO (main + runahead)",
                env);

    std::vector<std::string> specs;
    for (const auto &k : gapKernelNames())
        specs.push_back(k + "/KR");
    for (const auto &n : hpcDbNames())
        specs.push_back(n);

    RunPlan plan = env.plan();
    plan.add(specs, {Technique::OoO, Technique::Vr, Technique::Dvr});
    ResultTable table = env.sweep(plan);

    std::cout << std::left << std::setw(16) << "benchmark"
              << std::right << std::setw(10) << "VR-main"
              << std::setw(10) << "VR-ra" << std::setw(10) << "VR-tot"
              << std::setw(10) << "DVR-main" << std::setw(10)
              << "DVR-ra" << std::setw(10) << "DVR-tot" << "\n";

    double vr_tot_sum = 0, dvr_tot_sum = 0;
    for (const auto &spec : specs) {
        const SimResult &base = table.at(spec, Technique::OoO);
        double denom = double(std::max<uint64_t>(1, base.mem.dramTotal()));
        const SimResult &vr = table.at(spec, Technique::Vr);
        const SimResult &dvr = table.at(spec, Technique::Dvr);

        double vm = vr.dramMain() / denom;
        double vr_ra = vr.dramRunahead() / denom;
        double dm = dvr.dramMain() / denom;
        double dvr_ra = dvr.dramRunahead() / denom;
        vr_tot_sum += vm + vr_ra;
        dvr_tot_sum += dm + dvr_ra;

        std::printf("%-16s %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f\n",
                    spec.c_str(), vm, vr_ra, vm + vr_ra, dm, dvr_ra,
                    dm + dvr_ra);
    }
    std::printf("%-16s %29.2f %29.2f\n", "mean-total",
                vr_tot_sum / double(specs.size()),
                dvr_tot_sum / double(specs.size()));
    return 0;
}

/**
 * @file
 * §3(2) ablation: VR's delayed termination stalls commit for 7.1% of
 * execution time on average (up to 11.8%) in the paper. This bench
 * reports the measured commit-stall fraction per benchmark and the
 * number of runahead episodes.
 */

#include "bench_common.hh"

#include <iomanip>

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Ablation: VR delayed-termination commit stall", env);

    std::vector<std::string> specs;
    for (const auto &k : gapKernelNames())
        specs.push_back(k + "/KR");
    for (const auto &n : hpcDbNames())
        specs.push_back(n);

    RunPlan plan = env.plan();
    plan.add(specs, {Technique::Vr});
    ResultTable table = env.sweep(plan);

    std::cout << std::left << std::setw(16) << "benchmark"
              << std::right << std::setw(12) << "episodes"
              << std::setw(14) << "stall-cycles" << std::setw(10)
              << "stall%" << "\n";

    double sum = 0;
    for (const auto &spec : specs) {
        const SimResult &r = table.at(spec, Technique::Vr);
        double frac = r.core.cycles
            ? 100.0 * double(r.core.runahead_commit_stall) /
                  double(r.core.cycles)
            : 0.0;
        sum += frac;
        std::printf("%-16s %11llu %13llu %9.1f\n", spec.c_str(),
                    (unsigned long long)r.core.full_rob_stall_events,
                    (unsigned long long)r.core.runahead_commit_stall,
                    frac);
    }
    std::printf("%-16s %33s %9.1f\n", "mean", "",
                sum / double(specs.size()));
    return 0;
}

/**
 * @file
 * Table 2: the graph inputs used for the GAP suite, with node/edge
 * counts and LLC MPKI aggregated over the five kernels on the
 * baseline OoO core. All 25 kernel x input runs come from one plan;
 * the node/edge/max-degree columns come from building the graph
 * directly (no simulation needed).
 */

#include "bench_common.hh"

#include "workloads/graph.hh"

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Table 2: graph inputs (scaled)", env);

    const GraphInput inputs[] = {GraphInput::Kron, GraphInput::Ljn,
                                 GraphInput::Ork, GraphInput::Tw,
                                 GraphInput::Ur};

    std::vector<std::string> specs;
    for (GraphInput in : inputs)
        for (const auto &k : gapKernelNames())
            specs.push_back(k + "/" + graphInputName(in));

    RunPlan plan = env.plan();
    plan.add(specs, {Technique::OoO});
    ResultTable table = env.sweep(plan);

    std::cout << "input    nodes      edges      max-deg   LLC-MPKI\n";
    for (GraphInput in : inputs) {
        Graph g = makeGraph(in, env.gscale);
        uint64_t max_deg = 0;
        for (uint64_t v = 0; v < g.num_nodes; v++)
            max_deg = std::max(max_deg, g.degree(v));

        // LLC MPKI aggregated over the five kernels (paper metric).
        uint64_t misses = 0, insts = 0;
        for (const auto &k : gapKernelNames()) {
            const SimResult &r = table.at(k + "/" + graphInputName(in),
                                          Technique::OoO);
            misses += r.mem.demand_mem;
            insts += r.core.instructions;
        }
        double mpki = insts ? 1000.0 * double(misses) / double(insts)
                            : 0.0;
        std::printf("%-8s %-10llu %-10llu %-9llu %.1f\n",
                    graphInputName(in).c_str(),
                    (unsigned long long)g.num_nodes,
                    (unsigned long long)g.num_edges,
                    (unsigned long long)max_deg, mpki);
    }
    return 0;
}

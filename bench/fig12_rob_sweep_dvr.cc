/**
 * @file
 * Figure 12: DVR performance as a function of ROB size, normalized to
 * the 350-entry-ROB OoO baseline. Unlike VR (Fig. 2), DVR's gain
 * holds (and grows) with bigger ROBs because its trigger is decoupled
 * from full-ROB stalls.
 */

#include "bench_common.hh"

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Figure 12: DVR vs ROB size", env);

    const uint32_t robs[] = {128, 192, 224, 350, 512};

    std::vector<std::string> specs;
    for (const auto &k : gapKernelNames())
        specs.push_back(k + "/KR");
    for (const auto &n : hpcDbNames())
        specs.push_back(n);

    std::vector<ConfigVariant> variants;
    for (uint32_t rob : robs)
        variants.push_back({"rob=" + std::to_string(rob),
                            [rob](SystemConfig &c) {
                                c.core.rob_size = rob;
                            }});

    RunPlan plan = env.plan();
    plan.add(specs, {Technique::OoO, Technique::Dvr}, variants);
    ResultTable table = env.sweep(plan);

    // Baselines at ROB=350.
    std::vector<double> base_ipc;
    for (const auto &s : specs)
        base_ipc.push_back(table.at(s, Technique::OoO, "rob=350").ipc());

    std::cout << "ROB     OoO-IPCn    DVR-IPCn    DVR/OoO\n";
    for (uint32_t rob : robs) {
        const std::string var = "rob=" + std::to_string(rob);
        std::vector<double> ooo_n, dvr_n, ratio;
        for (size_t i = 0; i < specs.size(); i++) {
            const SimResult &o = table.at(specs[i], Technique::OoO, var);
            const SimResult &d = table.at(specs[i], Technique::Dvr, var);
            ooo_n.push_back(o.ipc() / base_ipc[i]);
            dvr_n.push_back(d.ipc() / base_ipc[i]);
            ratio.push_back(d.ipc() / o.ipc());
        }
        std::printf("%-7u %-11.3f %-11.3f %.3f\n", rob,
                    harmonicMean(ooo_n), harmonicMean(dvr_n),
                    harmonicMean(ratio));
    }
    return 0;
}

/**
 * @file
 * Figure 12: DVR performance as a function of ROB size, normalized to
 * the 350-entry-ROB OoO baseline. Unlike VR (Fig. 2), DVR's gain
 * holds (and grows) with bigger ROBs because its trigger is decoupled
 * from full-ROB stalls.
 */

#include "bench_common.hh"

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Figure 12: DVR vs ROB size", env);

    const uint32_t robs[] = {128, 192, 224, 350, 512};

    std::vector<std::string> specs;
    for (const auto &k : gapKernelNames())
        specs.push_back(k + "/KR");
    for (const auto &n : hpcDbNames())
        specs.push_back(n);

    // Baselines at ROB=350.
    std::vector<double> base_ipc;
    for (const auto &s : specs)
        base_ipc.push_back(env.run(s, Technique::OoO).ipc());

    std::cout << "ROB     OoO-IPCn    DVR-IPCn    DVR/OoO\n";
    for (uint32_t rob : robs) {
        SystemConfig cfg = env.cfg;
        cfg.core.rob_size = rob;
        std::vector<double> ooo_n, dvr_n, ratio;
        for (size_t i = 0; i < specs.size(); i++) {
            SimResult o = runSimulation(specs[i], Technique::OoO, cfg,
                                        env.gscale, env.hscale,
                                        env.roi + env.warmup,
                                        env.warmup);
            SimResult d = runSimulation(specs[i], Technique::Dvr, cfg,
                                        env.gscale, env.hscale,
                                        env.roi + env.warmup,
                                        env.warmup);
            ooo_n.push_back(o.ipc() / base_ipc[i]);
            dvr_n.push_back(d.ipc() / base_ipc[i]);
            ratio.push_back(d.ipc() / o.ipc());
        }
        std::printf("%-7u %-11.3f %-11.3f %.3f\n", rob,
                    harmonicMean(ooo_n), harmonicMean(dvr_n),
                    harmonicMean(ratio));
    }
    return 0;
}

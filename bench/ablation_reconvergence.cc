/**
 * @file
 * Divergence-handling ablation (paper §4.2.3 / Key Insight #5): DVR
 * with GPU-style reconvergence versus VR-style lane invalidation, on
 * the workloads with data-dependent control flow inside the chain
 * (bc's two divergent paths, bfs/sssp's visited checks, hj's chain
 * walks).
 */

#include "bench_common.hh"

#include <iomanip>

#include "core/ooo_core.hh"
#include "runahead/dvr.hh"

using namespace vrsim;
using namespace vrsim::bench;

namespace
{

SimResult
runWithFeatures(const BenchEnv &env, const std::string &spec,
                DvrFeatures f)
{
    Workload w = makeWorkload(spec, env.gscale, env.hscale);
    SystemConfig cfg = env.cfg;
    cfg.technique = Technique::Dvr;
    MemoryHierarchy hier(cfg, w.image);
    DecoupledVectorRunahead dvr(cfg, w.prog, w.image, hier, f);
    OooCore core(cfg, w.prog, w.image, hier, &dvr);
    SimResult res;
    res.workload = w.name;
    res.technique = Technique::Dvr;
    res.core = core.run(w.init, env.roi + env.warmup, env.warmup,
                        nullptr);
    res.mem = hier.stats();
    res.mlp = hier.mlp(res.core.cycles);
    res.dvr = dvr.stats();
    return res;
}

} // namespace

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Ablation: SIMT reconvergence vs lane invalidation",
                env);

    std::vector<std::string> specs = {"bc/KR", "bfs/KR", "sssp/KR",
                                      "hj2", "hj8", "graph500"};

    std::cout << std::left << std::setw(12) << "benchmark"
              << std::right << std::setw(14) << "invalidate"
              << std::setw(14) << "reconverge" << std::setw(12)
              << "divergences" << "\n";

    for (const auto &spec : specs) {
        SimResult base = env.run(spec, Technique::OoO);

        DvrFeatures inval = DvrFeatures::full();
        inval.reconverge = false;
        SimResult a = runWithFeatures(env, spec, inval);
        SimResult b = runWithFeatures(env, spec, DvrFeatures::full());

        std::printf("%-12s %13.3f %13.3f %11llu\n", spec.c_str(),
                    a.ipc() / base.ipc(), b.ipc() / base.ipc(),
                    (unsigned long long)b.dvr->divergences);
    }
    return 0;
}

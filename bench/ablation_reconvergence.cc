/**
 * @file
 * Divergence-handling ablation (paper §4.2.3 / Key Insight #5): DVR
 * with GPU-style reconvergence versus VR-style lane invalidation, on
 * the workloads with data-dependent control flow inside the chain
 * (bc's two divergent paths, bfs/sssp's visited checks, hj's chain
 * walks). The two DVR flavours are technique columns with a
 * DvrFeatures override, so the whole comparison is one plan.
 */

#include "bench_common.hh"

#include <iomanip>

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Ablation: SIMT reconvergence vs lane invalidation",
                env);

    std::vector<std::string> specs = {"bc/KR", "bfs/KR", "sssp/KR",
                                      "hj2", "hj8", "graph500"};

    DvrFeatures inval = DvrFeatures::full();
    inval.reconverge = false;

    RunPlan plan = env.plan();
    plan.add(specs,
             {Technique::OoO,
              TechColumn(Technique::Dvr, "invalidate", inval),
              TechColumn(Technique::Dvr, "reconverge",
                         DvrFeatures::full())});
    ResultTable table = env.sweep(plan);

    std::cout << std::left << std::setw(12) << "benchmark"
              << std::right << std::setw(14) << "invalidate"
              << std::setw(14) << "reconverge" << std::setw(12)
              << "divergences" << "\n";

    for (const auto &spec : specs) {
        const SimResult &base = table.at(spec, Technique::OoO);
        const SimResult &a = table.at(spec, "invalidate");
        const SimResult &b = table.at(spec, "reconverge");
        std::printf("%-12s %13.3f %13.3f %11llu\n", spec.c_str(),
                    a.ipc() / base.ipc(), b.ipc() / base.ipc(),
                    (unsigned long long)b.dvr->divergences);
    }
    return 0;
}

/**
 * @file
 * Figure 2: performance of the OoO core and VR as a function of ROB
 * size (128-512), normalized to the 350-entry-ROB OoO baseline, plus
 * the fraction of stall time due to a full ROB. The paper's point:
 * VR's benefit diminishes as the ROB grows because the trigger
 * (full-ROB stall) becomes rare.
 */

#include "bench_common.hh"

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Figure 2: OoO and VR vs ROB size", env);

    const uint32_t robs[] = {128, 192, 224, 350, 512};

    // Baseline: 350-entry OoO per benchmark.
    std::vector<std::string> specs = gapBenchmarkSpecs();
    // Keep the sweep tractable: use the KR and UR inputs (the paper's
    // extremes) for every kernel.
    specs.clear();
    for (const auto &k : gapKernelNames()) {
        specs.push_back(k + "/KR");
        specs.push_back(k + "/UR");
    }

    std::cout << "rows: ROB size; cells: h-mean speedup vs OoO-350, "
                 "and %cycles dispatch-stalled on full ROB (OoO)\n\n";
    std::cout << "ROB     OoO-IPCn    VR-IPCn     VR/OoO      "
                 "robstall%\n";

    // Per-benchmark baseline IPCs at ROB=350.
    std::vector<double> base_ipc;
    for (const auto &s : specs)
        base_ipc.push_back(env.run(s, Technique::OoO).ipc());

    for (uint32_t rob : robs) {
        SystemConfig cfg = env.cfg;
        cfg.core.rob_size = rob;
        std::vector<double> ooo_n, vr_n;
        double stall_frac = 0;
        for (size_t i = 0; i < specs.size(); i++) {
            SimResult o = runSimulation(specs[i], Technique::OoO, cfg,
                                        env.gscale, env.hscale,
                                        env.roi + env.warmup,
                                        env.warmup);
            SimResult v = runSimulation(specs[i], Technique::Vr, cfg,
                                        env.gscale, env.hscale,
                                        env.roi + env.warmup,
                                        env.warmup);
            ooo_n.push_back(o.ipc() / base_ipc[i]);
            vr_n.push_back(v.ipc() / base_ipc[i]);
            stall_frac += o.core.cycles
                ? double(o.core.rob_stall_cycles + o.core.stall_lq) /
                      double(o.core.cycles)
                : 0.0;
        }
        std::printf("%-7u %-11.3f %-11.3f %-11.3f %.1f\n", rob,
                    harmonicMean(ooo_n), harmonicMean(vr_n),
                    harmonicMean(vr_n) / harmonicMean(ooo_n),
                    100.0 * stall_frac / double(specs.size()));
    }
    return 0;
}

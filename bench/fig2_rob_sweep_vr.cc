/**
 * @file
 * Figure 2: performance of the OoO core and VR as a function of ROB
 * size (128-512), normalized to the 350-entry-ROB OoO baseline, plus
 * the fraction of stall time due to a full ROB. The paper's point:
 * VR's benefit diminishes as the ROB grows because the trigger
 * (full-ROB stall) becomes rare.
 */

#include "bench_common.hh"

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Figure 2: OoO and VR vs ROB size", env);

    const uint32_t robs[] = {128, 192, 224, 350, 512};

    // Keep the sweep tractable: use the KR and UR inputs (the paper's
    // extremes) for every kernel.
    std::vector<std::string> specs;
    for (const auto &k : gapKernelNames()) {
        specs.push_back(k + "/KR");
        specs.push_back(k + "/UR");
    }

    std::vector<ConfigVariant> variants;
    for (uint32_t rob : robs)
        variants.push_back({"rob=" + std::to_string(rob),
                            [rob](SystemConfig &c) {
                                c.core.rob_size = rob;
                            }});

    RunPlan plan = env.plan();
    plan.add(specs, {Technique::OoO, Technique::Vr}, variants);
    ResultTable table = env.sweep(plan);

    std::cout << "rows: ROB size; cells: h-mean speedup vs OoO-350, "
                 "and %cycles dispatch-stalled on full ROB (OoO)\n\n";
    std::cout << "ROB     OoO-IPCn    VR-IPCn     VR/OoO      "
                 "robstall%\n";

    // Per-benchmark baseline IPCs at ROB=350.
    std::vector<double> base_ipc;
    for (const auto &s : specs)
        base_ipc.push_back(table.at(s, Technique::OoO, "rob=350").ipc());

    for (uint32_t rob : robs) {
        const std::string var = "rob=" + std::to_string(rob);
        std::vector<double> ooo_n, vr_n;
        double stall_frac = 0;
        for (size_t i = 0; i < specs.size(); i++) {
            const SimResult &o = table.at(specs[i], Technique::OoO, var);
            const SimResult &v = table.at(specs[i], Technique::Vr, var);
            ooo_n.push_back(o.ipc() / base_ipc[i]);
            vr_n.push_back(v.ipc() / base_ipc[i]);
            stall_frac += o.core.cycles
                ? double(o.core.rob_stall_cycles + o.core.stall_lq) /
                      double(o.core.cycles)
                : 0.0;
        }
        std::printf("%-7u %-11.3f %-11.3f %-11.3f %.1f\n", rob,
                    harmonicMean(ooo_n), harmonicMean(vr_n),
                    harmonicMean(vr_n) / harmonicMean(ooo_n),
                    100.0 * stall_frac / double(specs.size()));
    }
    return 0;
}

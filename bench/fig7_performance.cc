/**
 * @file
 * Figure 7: normalized performance of PRE, IMP, VR, DVR and Oracle
 * relative to the baseline OoO core for every benchmark-input
 * combination, with harmonic means. Also prints the §4.4 hardware
 * budget so the headline "1139 bytes" claim is visible next to the
 * headline speedups.
 */

#include "bench_common.hh"

#include "runahead/hardware_budget.hh"

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Figure 7: speedup over OoO baseline", env);

    const std::vector<Technique> techs = {
        Technique::Pre, Technique::Imp, Technique::Vr, Technique::Dvr,
        Technique::Oracle,
    };

    RunPlan plan = env.plan();
    plan.add(allBenchmarkSpecs(),
             {Technique::OoO, Technique::Pre, Technique::Imp,
              Technique::Vr, Technique::Dvr, Technique::Oracle});
    ResultTable table = env.sweep(plan);

    std::vector<std::string> cols;
    for (Technique t : techs)
        cols.push_back(techniqueName(t));

    std::vector<std::string> rows;
    std::vector<std::vector<double>> cells;
    std::vector<std::vector<double>> per_tech(techs.size());

    for (const std::string &spec : allBenchmarkSpecs()) {
        const SimResult &base = table.at(spec, Technique::OoO);
        std::vector<double> row;
        for (size_t t = 0; t < techs.size(); t++) {
            const SimResult &r = table.at(spec, techs[t]);
            double speedup = base.ipc() > 0 ? r.ipc() / base.ipc() : 0;
            row.push_back(speedup);
            per_tech[t].push_back(speedup);
        }
        rows.push_back(spec);
        cells.push_back(row);
    }

    std::vector<double> hmean_row;
    for (size_t t = 0; t < techs.size(); t++)
        hmean_row.push_back(harmonicMean(per_tech[t]));
    rows.push_back("H-mean");
    cells.push_back(hmean_row);

    printSpeedupTable(std::cout, rows, cols, cells);

    std::cout << "\nDVR hardware budget (paper: 1139 bytes):\n";
    printHardwareBudget(std::cout,
                        computeHardwareBudget(env.cfg.runahead));
    return 0;
}

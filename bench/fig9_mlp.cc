/**
 * @file
 * Figure 9: memory-level parallelism — average L1D MSHRs occupied per
 * cycle for the OoO baseline, VR and DVR. The paper reports < 4 for
 * OoO and > 10 for DVR on average.
 */

#include "bench_common.hh"

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Figure 9: MSHRs used per cycle (MLP)", env);

    const std::vector<Technique> techs = {Technique::OoO, Technique::Vr,
                                          Technique::Dvr};
    std::vector<std::string> cols = {"OoO", "VR", "DVR"};

    std::vector<std::string> specs;
    for (const auto &k : gapKernelNames())
        specs.push_back(k + "/KR");
    for (const auto &n : hpcDbNames())
        specs.push_back(n);

    RunPlan plan = env.plan();
    plan.add(specs, {Technique::OoO, Technique::Vr, Technique::Dvr});
    ResultTable table = env.sweep(plan);

    std::vector<std::string> rows;
    std::vector<std::vector<double>> cells;
    std::vector<double> sums(techs.size(), 0.0);

    for (const auto &spec : specs) {
        std::vector<double> row;
        for (size_t t = 0; t < techs.size(); t++) {
            const SimResult &r = table.at(spec, techs[t]);
            row.push_back(r.mlp);
            sums[t] += r.mlp;
        }
        rows.push_back(spec);
        cells.push_back(row);
    }
    std::vector<double> mean_row;
    for (double s : sums)
        mean_row.push_back(s / double(specs.size()));
    rows.push_back("mean");
    cells.push_back(mean_row);

    printSpeedupTable(std::cout, rows, cols, cells);
    return 0;
}

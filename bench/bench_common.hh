/**
 * @file
 * Shared scaffolding for the per-figure experiment binaries: scaled
 * inputs (overridable via environment), the technique list, and
 * uniform header printing.
 *
 * Environment knobs:
 *   VRSIM_NODES   graph nodes (default 16384)
 *   VRSIM_DEGREE  average degree (default 16)
 *   VRSIM_ELEMS   hpc-db element count (default 65536)
 *   VRSIM_ROI     instruction budget per run (default 150000)
 *   VRSIM_WARMUP  leading instructions excluded from stats
 *                 (default 25000; caches/predictors stay warm)
 */

#ifndef VRSIM_BENCH_COMMON_HH
#define VRSIM_BENCH_COMMON_HH

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "driver/simulation.hh"

namespace vrsim::bench
{

inline uint64_t
envU64(const char *name, uint64_t dflt)
{
    const char *v = std::getenv(name);
    if (!v)
        return dflt;
    // A typo'd value silently parsing to 0 would flip e.g. VRSIM_ROI
    // into unlimited-budget mode; reject it loudly instead. Exit
    // rather than throw: the experiment binaries have no try/catch in
    // main, and an uncaught FatalError would abort with a core dump
    // where a one-line diagnostic is wanted.
    errno = 0;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 0);
    if (end == v || *end != '\0' || std::strchr(v, '-')) {
        std::cerr << "fatal: invalid value for " << name << ": '" << v
                  << "' (expected a non-negative integer)\n";
        std::exit(1);
    }
    if (errno == ERANGE) {
        std::cerr << "fatal: value for " << name << " out of range: '"
                  << v << "'\n";
        std::exit(1);
    }
    return parsed;
}

/** Scaled-input environment shared by all experiment binaries. */
struct BenchEnv
{
    GraphScale gscale;
    HpcDbScale hscale;
    uint64_t roi = 150'000;
    uint64_t warmup = 25'000;
    SystemConfig cfg = SystemConfig::benchScale();

    static BenchEnv
    fromEnv()
    {
        BenchEnv e;
        e.gscale.nodes = envU64("VRSIM_NODES", 1 << 14);
        e.gscale.avg_degree = envU64("VRSIM_DEGREE", 16);
        e.hscale.elements = envU64("VRSIM_ELEMS", 1 << 16);
        e.roi = envU64("VRSIM_ROI", 150'000);
        e.warmup = envU64("VRSIM_WARMUP", 25'000);
        return e;
    }

    /**
     * Fault-isolated run: a failed (fatal/panic/hang) combination is
     * warned about and reported with zeroed statistics instead of
     * aborting the whole experiment binary mid-table.
     */
    SimResult
    run(const std::string &spec, Technique t) const
    {
        SimResult r = runSimulationGuarded(spec, t, cfg, gscale,
                                           hscale, roi + warmup,
                                           warmup);
        if (!r.ok())
            warn(spec + " under " + techniqueName(t) + " failed (" +
                 simStatusName(r.status) + "): " + r.status_message);
        return r;
    }
};

inline void
printHeader(const std::string &title, const BenchEnv &env)
{
    std::cout << "=== " << title << " ===\n";
    std::cout << "inputs: " << env.gscale.nodes << " nodes, degree "
              << env.gscale.avg_degree << "; hpc-db "
              << env.hscale.elements << " elements; ROI " << env.roi
              << " insts after " << env.warmup << " warmup\n";
    printConfig(std::cout, env.cfg);
    std::cout << "\n";
}

} // namespace vrsim::bench

#endif // VRSIM_BENCH_COMMON_HH

/**
 * @file
 * Shared scaffolding for the per-figure experiment binaries: scaled
 * inputs (overridable via environment), plan construction and sweep
 * execution, and uniform header printing. Figure binaries declare a
 * RunPlan grid, hand it to the SweepRunner (parallel under
 * VRSIM_JOBS), and render their table from the ResultTable — no
 * binary runs simulations in hand-rolled loops.
 *
 * Environment knobs:
 *   VRSIM_NODES   graph nodes (default 16384)
 *   VRSIM_DEGREE  average degree (default 16)
 *   VRSIM_ELEMS   hpc-db element count (default 65536)
 *   VRSIM_ROI     instruction budget per run (default 150000)
 *   VRSIM_WARMUP  leading instructions excluded from stats
 *                 (default 25000; caches/predictors stay warm)
 *   VRSIM_FF_INSTS  functionally fast-forward this many instructions
 *                 before every point's ROI (docs/sampling.md)
 *   VRSIM_SAMPLE  SMARTS interval sampling as "N:M[:W]" (measure N of
 *                 every M instructions, W detailed-warm); replaces
 *                 VRSIM_WARMUP when set (the per-window warm
 *                 instructions take its place)
 *   VRSIM_JOBS    sweep worker threads (default 1; 0 = all cores)
 *   VRSIM_CHECK_DIGESTS  when nonzero, differentially check every
 *                 technique column against its OoO baseline column
 *                 (the plan must include OoO; mismatches are
 *                 reported as diverged)
 *   VRSIM_REPRO_DIR      write crash-repro bundles for failed points
 *                 into this directory (replay with vrsim --replay)
 *   VRSIM_CHECKPOINT     journal completed points to this file
 *   VRSIM_RESUME  when nonzero, restore completed points from
 *                 VRSIM_CHECKPOINT and run only the rest
 */

#ifndef VRSIM_BENCH_COMMON_HH
#define VRSIM_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "driver/plan.hh"
#include "driver/sweep_runner.hh"
#include "sim/parse.hh"

namespace vrsim::bench
{

/**
 * Strict environment parsing for experiment binaries: a typo'd value
 * silently parsing to 0 would flip e.g. VRSIM_ROI into
 * unlimited-budget mode. Exits rather than throwing: the experiment
 * binaries have no try/catch in main, and an uncaught FatalError
 * would abort with a core dump where a one-line diagnostic is wanted.
 */
inline uint64_t
envU64(const char *name, uint64_t dflt)
{
    try {
        return vrsim::envU64(name, dflt);
    } catch (const FatalError &e) {
        std::cerr << e.what() << "\n";
        std::exit(1);
    }
}

/** Scaled-input environment shared by all experiment binaries. */
struct BenchEnv
{
    GraphScale gscale;
    HpcDbScale hscale;
    uint64_t roi = 150'000;
    uint64_t warmup = 25'000;
    SamplingPlan sampling;
    SystemConfig cfg = SystemConfig::benchScale();

    static BenchEnv
    fromEnv()
    {
        BenchEnv e;
        e.gscale.nodes = envU64("VRSIM_NODES", 1 << 14);
        e.gscale.avg_degree = envU64("VRSIM_DEGREE", 16);
        e.hscale.elements = envU64("VRSIM_ELEMS", 1 << 16);
        e.roi = envU64("VRSIM_ROI", 150'000);
        e.warmup = envU64("VRSIM_WARMUP", 25'000);
        e.sampling.ff_insts = envU64("VRSIM_FF_INSTS", 0);
        if (const char *s = std::getenv("VRSIM_SAMPLE")) {
            try {
                SamplingPlan sp = SamplingPlan::parse(s);
                sp.ff_insts = e.sampling.ff_insts;
                e.sampling = sp;
            } catch (const FatalError &err) {
                std::cerr << err.what() << "\n";
                std::exit(1);
            }
        }
        return e;
    }

    /** An empty plan carrying this environment's config and scales. */
    RunPlan
    plan() const
    {
        RunPlan p(cfg);
        // Interval sampling replaces the global warmup: each measured
        // window gets its own detailed-warm instructions instead.
        p.scale(gscale, hscale).roi(roi)
            .warmup(sampling.sampling() ? 0 : warmup)
            .sample(sampling);
        return p;
    }

    /**
     * Execute @p plan with the worker count VRSIM_JOBS asks for.
     * Fault-isolated: a failed (fatal/panic/hang) point is warned
     * about and carries zeroed statistics instead of aborting the
     * whole experiment binary mid-table.
     */
    ResultTable
    sweep(const RunPlan &p) const
    {
        SweepOptions opts;
        opts.jobs = 0;  // resolve from VRSIM_JOBS
        opts.check_digests = envU64("VRSIM_CHECK_DIGESTS", 0) != 0;
        if (const char *dir = std::getenv("VRSIM_REPRO_DIR"))
            opts.repro_dir = dir;
        if (const char *file = std::getenv("VRSIM_CHECKPOINT"))
            opts.checkpoint = file;
        opts.resume = envU64("VRSIM_RESUME", 0) != 0;
        opts.cell_timeout_ms =
            envU64("VRSIM_CELL_TIMEOUT", 0) * 1000;
        opts.retries = unsigned(envU64("VRSIM_RETRIES", 0));
        try {
            // Process isolation for long campaigns: VRSIM_ISOLATION=
            // thread|process, per-cell deadline in seconds, retries.
            // Parsed inside the guard: a typo'd mode must exit(1)
            // like every other bad knob, not abort the binary.
            if (const char *iso = std::getenv("VRSIM_ISOLATION"))
                opts.isolation = isolationFromName(iso);
            return SweepRunner(opts).run(p);
        } catch (const FatalError &e) {
            std::cerr << e.what() << "\n";
            std::exit(1);
        }
    }
};

inline void
printHeader(const std::string &title, const BenchEnv &env)
{
    std::cout << "=== " << title << " ===\n";
    std::cout << "inputs: " << env.gscale.nodes << " nodes, degree "
              << env.gscale.avg_degree << "; hpc-db "
              << env.hscale.elements << " elements; ROI " << env.roi
              << " insts after " << env.warmup << " warmup\n";
    printConfig(std::cout, env.cfg);
    std::cout << "\n";
}

} // namespace vrsim::bench

#endif // VRSIM_BENCH_COMMON_HH

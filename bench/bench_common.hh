/**
 * @file
 * Shared scaffolding for the per-figure experiment binaries: scaled
 * inputs (overridable via environment), the technique list, and
 * uniform header printing.
 *
 * Environment knobs:
 *   VRSIM_NODES   graph nodes (default 16384)
 *   VRSIM_DEGREE  average degree (default 16)
 *   VRSIM_ELEMS   hpc-db element count (default 65536)
 *   VRSIM_ROI     instruction budget per run (default 150000)
 *   VRSIM_WARMUP  leading instructions excluded from stats
 *                 (default 25000; caches/predictors stay warm)
 */

#ifndef VRSIM_BENCH_COMMON_HH
#define VRSIM_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "driver/simulation.hh"

namespace vrsim::bench
{

inline uint64_t
envU64(const char *name, uint64_t dflt)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 0) : dflt;
}

/** Scaled-input environment shared by all experiment binaries. */
struct BenchEnv
{
    GraphScale gscale;
    HpcDbScale hscale;
    uint64_t roi = 150'000;
    uint64_t warmup = 25'000;
    SystemConfig cfg = SystemConfig::benchScale();

    static BenchEnv
    fromEnv()
    {
        BenchEnv e;
        e.gscale.nodes = envU64("VRSIM_NODES", 1 << 14);
        e.gscale.avg_degree = envU64("VRSIM_DEGREE", 16);
        e.hscale.elements = envU64("VRSIM_ELEMS", 1 << 16);
        e.roi = envU64("VRSIM_ROI", 150'000);
        e.warmup = envU64("VRSIM_WARMUP", 25'000);
        return e;
    }

    SimResult
    run(const std::string &spec, Technique t) const
    {
        return runSimulation(spec, t, cfg, gscale, hscale,
                             roi + warmup, warmup);
    }
};

inline void
printHeader(const std::string &title, const BenchEnv &env)
{
    std::cout << "=== " << title << " ===\n";
    std::cout << "inputs: " << env.gscale.nodes << " nodes, degree "
              << env.gscale.avg_degree << "; hpc-db "
              << env.hscale.elements << " elements; ROI " << env.roi
              << " insts after " << env.warmup << " warmup\n";
    printConfig(std::cout, env.cfg);
    std::cout << "\n";
}

} // namespace vrsim::bench

#endif // VRSIM_BENCH_COMMON_HH

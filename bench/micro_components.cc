/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own hot
 * components: interpreter throughput, cache access path, branch
 * predictor, graph generation, and one end-to-end DVR run — useful
 * for keeping the simulator fast enough for the paper-scale sweeps.
 */

#include <benchmark/benchmark.h>

#include "driver/simulation.hh"
#include "frontend/branch_predictor.hh"
#include "mem/hierarchy.hh"
#include "sim/rng.hh"
#include "workloads/workload_cache.hh"

using namespace vrsim;

namespace
{

void
BM_InterpreterLoop(benchmark::State &state)
{
    ProgramBuilder b("loop");
    b.movi(1, 0);
    b.movi(3, 1u << 20);
    auto top = b.here();
    b.addi(1, 1, 1);
    b.cmpltu(4, 1, 3);
    b.br(4, top);
    b.halt();
    Program p = b.build();
    MemoryImage mem;
    for (auto _ : state) {
        CpuState st;
        benchmark::DoNotOptimize(run(p, st, mem, 100'000));
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 100'000);
}
BENCHMARK(BM_InterpreterLoop);

void
BM_CacheAccessPath(benchmark::State &state)
{
    SystemConfig cfg = SystemConfig::benchScale();
    MemoryImage img;
    MemoryHierarchy hier(cfg, img);
    Rng rng(1);
    Cycle cycle = 0;
    for (auto _ : state) {
        uint64_t addr = rng.below(1u << 24);
        benchmark::DoNotOptimize(
            hier.access(addr, 1, cycle, false, Requester::Demand));
        cycle += 4;
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_CacheAccessPath);

void
BM_BranchPredictor(benchmark::State &state)
{
    BranchPredictor bp;
    Rng rng(2);
    for (auto _ : state) {
        uint64_t pc = 16 + rng.below(64);
        bool taken = (rng.next() & 7) != 0;
        benchmark::DoNotOptimize(bp.predict(pc));
        bp.update(pc, taken);
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_BranchPredictor);

void
BM_KroneckerGeneration(benchmark::State &state)
{
    GraphScale scale;
    scale.nodes = 1 << 12;
    for (auto _ : state) {
        Graph g = makeGraph(GraphInput::Kron, scale);
        benchmark::DoNotOptimize(g.num_edges);
    }
}
BENCHMARK(BM_KroneckerGeneration);

void
BM_WorkloadBuild(benchmark::State &state)
{
    HpcDbScale hs;
    hs.elements = 1 << 14;
    for (auto _ : state) {
        Workload w = makeWorkload("kangaroo", GraphScale{}, hs);
        benchmark::DoNotOptimize(w.image);
    }
}
BENCHMARK(BM_WorkloadBuild);

void
BM_WorkloadInstantiate(benchmark::State &state)
{
    // The per-run cost a sweep pays after the one-time build: copying
    // the cached artifact's memory image. Compare with
    // BM_WorkloadBuild to see what the cache saves per grid point.
    WorkloadCache cache;
    HpcDbScale hs;
    hs.elements = 1 << 14;
    cache.artifact("kangaroo", GraphScale{}, hs);
    for (auto _ : state) {
        Workload w = cache.instantiate("kangaroo", GraphScale{}, hs);
        benchmark::DoNotOptimize(w.image);
    }
}
BENCHMARK(BM_WorkloadInstantiate);

void
BM_EndToEndDvr(benchmark::State &state)
{
    SystemConfig cfg = SystemConfig::benchScale();
    HpcDbScale hs;
    hs.elements = 1 << 14;
    WorkloadCache cache;
    for (auto _ : state) {
        Workload w = cache.instantiate("kangaroo", GraphScale{}, hs);
        SimResult r = runWorkload(w, Technique::Dvr, cfg, 20'000);
        benchmark::DoNotOptimize(r.core.cycles);
    }
    state.SetItemsProcessed(int64_t(state.iterations()) * 20'000);
}
BENCHMARK(BM_EndToEndDvr);

} // namespace

BENCHMARK_MAIN();

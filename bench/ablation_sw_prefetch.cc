/**
 * @file
 * Software-prefetching comparison (paper §7.3 related work): camel
 * hand-augmented with staged software prefetches (Ainsworth & Jones,
 * CGO 2017) versus the microarchitectural techniques. SW prefetching
 * covers the index stream and the first indirection but not the
 * final level, and costs extra µops in the main thread. The plan has
 * two grids because camel-swpf only runs under OoO and DVR.
 */

#include "bench_common.hh"

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Ablation: software prefetching vs runahead", env);

    RunPlan plan = env.plan();
    plan.add({"camel"}, {Technique::OoO, Technique::Vr, Technique::Dvr});
    plan.add({"camel-swpf"}, {Technique::OoO, Technique::Dvr});
    ResultTable table = env.sweep(plan);

    const SimResult &base = table.at("camel", Technique::OoO);
    const SimResult &sw = table.at("camel-swpf", Technique::OoO);
    const SimResult &vr = table.at("camel", Technique::Vr);
    const SimResult &dvr = table.at("camel", Technique::Dvr);
    const SimResult &both = table.at("camel-swpf", Technique::Dvr);

    // Software prefetching adds µops, so compare per-element time:
    // camel does 33 µops/element, camel-swpf ~48.
    double base_cpe = double(base.core.cycles) / base.core.instructions
                      * 33.0;
    double sw_cpe = double(sw.core.cycles) / sw.core.instructions
                    * 48.0;
    std::printf("camel        OoO   %8.1f cycles/elem (IPC %.3f)\n",
                base_cpe, base.ipc());
    std::printf("camel-swpf   OoO   %8.1f cycles/elem (IPC %.3f)  "
                "-> %.2fx\n",
                sw_cpe, sw.ipc(), base_cpe / sw_cpe);
    std::printf("camel        VR    speedup %.2fx\n",
                vr.ipc() / base.ipc());
    std::printf("camel        DVR   speedup %.2fx\n",
                dvr.ipc() / base.ipc());
    std::printf("camel-swpf   DVR   %8.1f cycles/elem  -> %.2fx "
                "(SW+DVR compose)\n",
                double(both.core.cycles) / both.core.instructions
                    * 48.0,
                base_cpe / (double(both.core.cycles) /
                            both.core.instructions * 48.0));
    return 0;
}

/**
 * @file
 * Figure 11: timeliness — of all cachelines prefetched by the DVR
 * subthread, the fraction the main thread later found in L1-D, L2,
 * L3, or "off-chip" (still in flight, or evicted/never used). The
 * paper reports most lines L1-resident with a consistent 10-20%
 * off-chip tail.
 */

#include "bench_common.hh"

#include <algorithm>
#include <iomanip>

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Figure 11: DVR prefetch timeliness", env);

    std::vector<std::string> specs;
    for (const auto &k : gapKernelNames())
        specs.push_back(k + "/KR");
    for (const auto &n : hpcDbNames())
        specs.push_back(n);

    RunPlan plan = env.plan();
    plan.add(specs, {Technique::Dvr});
    ResultTable table = env.sweep(plan);

    std::cout << std::left << std::setw(16) << "benchmark"
              << std::right << std::setw(10) << "L1%" << std::setw(10)
              << "L2%" << std::setw(10) << "L3%" << std::setw(12)
              << "off-chip%" << "\n";

    for (const auto &spec : specs) {
        const SimResult &r = table.at(spec, Technique::Dvr);
        const MemStats &m = r.mem;
        double total = double(std::max<uint64_t>(1, m.pf_lines_filled));
        double l1 = 100.0 * m.pf_used_l1 / total;
        double l2 = 100.0 * m.pf_used_l2 / total;
        double l3 = 100.0 * m.pf_used_l3 / total;
        // Lines can be found in L2/L3 copies whose L1 fill was
        // never counted (inclusive hierarchy), so clamp at zero.
        double off = std::max(0.0, 100.0 - l1 - l2 - l3);
        std::printf("%-16s %9.1f %9.1f %9.1f %11.1f\n", spec.c_str(),
                    l1, l2, l3, off);
    }
    return 0;
}

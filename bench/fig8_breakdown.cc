/**
 * @file
 * Figure 8: DVR performance breakdown — (1) base VR, (2) +Offload to
 * the decoupled subthread, (3) +Discovery Mode, (4) +Nested Runahead
 * Mode — all normalized to the OoO baseline.
 */

#include "bench_common.hh"

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Figure 8: DVR factor breakdown", env);

    const std::vector<Technique> steps = {
        Technique::Vr, Technique::DvrOffload, Technique::DvrDiscovery,
        Technique::Dvr,
    };
    std::vector<std::string> cols = {"VR", "+Offload", "+Discovery",
                                     "+Nested"};

    std::vector<std::string> specs;
    for (const auto &k : gapKernelNames())
        specs.push_back(k + "/KR");
    for (const auto &n : hpcDbNames())
        specs.push_back(n);

    RunPlan plan = env.plan();
    plan.add(specs,
             {Technique::OoO, Technique::Vr, Technique::DvrOffload,
              Technique::DvrDiscovery, Technique::Dvr});
    ResultTable table = env.sweep(plan);

    std::vector<std::string> rows;
    std::vector<std::vector<double>> cells;
    std::vector<std::vector<double>> per_step(steps.size());

    for (const auto &spec : specs) {
        const SimResult &base = table.at(spec, Technique::OoO);
        std::vector<double> row;
        for (size_t s = 0; s < steps.size(); s++) {
            const SimResult &r = table.at(spec, steps[s]);
            double x = base.ipc() > 0 ? r.ipc() / base.ipc() : 0;
            row.push_back(x);
            per_step[s].push_back(x);
        }
        rows.push_back(spec);
        cells.push_back(row);
    }
    std::vector<double> hrow;
    for (auto &v : per_step)
        hrow.push_back(harmonicMean(v));
    rows.push_back("H-mean");
    cells.push_back(hrow);

    printSpeedupTable(std::cout, rows, cols, cells);
    return 0;
}

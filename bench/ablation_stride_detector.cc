/**
 * @file
 * Stride-detector (RPT) size ablation: the paper budgets a 32-entry
 * detector (460 bytes); sweeping 4/8/16/32/64 entries shows how much
 * table pressure the benchmarks generate (kernels with several
 * concurrent stride streams thrash small tables and lose triggers).
 * The OoO baseline ignores the RPT, so it runs once per spec.
 */

#include "bench_common.hh"

#include <iomanip>

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Ablation: stride detector entries", env);

    const uint32_t sizes[] = {4, 8, 16, 32, 64};
    std::vector<std::string> specs = {"bfs/KR", "sssp/KR", "nas-cg",
                                      "camel", "graph500"};

    std::vector<ConfigVariant> variants;
    for (uint32_t n : sizes)
        variants.push_back({std::to_string(n) + "e",
                            [n](SystemConfig &c) {
                                c.runahead.stride_entries = n;
                            }});

    RunPlan plan = env.plan();
    plan.add(specs, {Technique::Dvr}, variants);
    plan.add(specs, {Technique::OoO});
    ResultTable table = env.sweep(plan);

    std::cout << std::left << std::setw(12) << "benchmark";
    for (uint32_t n : sizes)
        std::cout << std::right << std::setw(10)
                  << (std::to_string(n) + "e");
    std::cout << "\n";

    for (const auto &spec : specs) {
        const SimResult &base = table.at(spec, Technique::OoO);
        std::printf("%-12s", spec.c_str());
        for (uint32_t n : sizes) {
            const SimResult &r =
                table.at(spec, Technique::Dvr,
                         std::to_string(n) + "e");
            std::printf("%10.3f", r.ipc() / base.ipc());
        }
        std::printf("\n");
    }
    return 0;
}

/**
 * @file
 * Stride-detector (RPT) size ablation: the paper budgets a 32-entry
 * detector (460 bytes); sweeping 4/8/16/32/64 entries shows how much
 * table pressure the benchmarks generate (kernels with several
 * concurrent stride streams thrash small tables and lose triggers).
 */

#include "bench_common.hh"

#include <iomanip>

using namespace vrsim;
using namespace vrsim::bench;

int
main()
{
    BenchEnv env = BenchEnv::fromEnv();
    printHeader("Ablation: stride detector entries", env);

    const uint32_t sizes[] = {4, 8, 16, 32, 64};
    std::vector<std::string> specs = {"bfs/KR", "sssp/KR", "nas-cg",
                                      "camel", "graph500"};

    std::cout << std::left << std::setw(12) << "benchmark";
    for (uint32_t n : sizes)
        std::cout << std::right << std::setw(10)
                  << (std::to_string(n) + "e");
    std::cout << "\n";

    for (const auto &spec : specs) {
        SimResult base = env.run(spec, Technique::OoO);
        std::printf("%-12s", spec.c_str());
        for (uint32_t n : sizes) {
            SystemConfig cfg = env.cfg;
            cfg.runahead.stride_entries = n;
            SimResult r = runSimulation(spec, Technique::Dvr, cfg,
                                        env.gscale, env.hscale,
                                        env.roi + env.warmup,
                                        env.warmup);
            std::printf("%10.3f", r.ipc() / base.ipc());
        }
        std::printf("\n");
    }
    return 0;
}

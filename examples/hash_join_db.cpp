/**
 * @file
 * Database example: hash-join probe with short (HJ2) and long (HJ8)
 * bucket chains. Longer chains mean more levels of pointer chasing
 * per probe — more latency to hide, and more benefit from vectorized
 * runahead across many independent probes.
 */

#include <iostream>

#include "driver/simulation.hh"

using namespace vrsim;

int
main()
{
    SystemConfig cfg = SystemConfig::benchScale();
    GraphScale gs;
    HpcDbScale hs;
    hs.elements = 1 << 16;

    for (const char *spec : {"hj2", "hj8"}) {
        std::cout << "== " << spec << " (hash-join probe) ==\n";
        SimResult ooo = runSimulation(spec, Technique::OoO, cfg, gs,
                                      hs, 120'000);
        SimResult vr = runSimulation(spec, Technique::Vr, cfg, gs, hs,
                                     120'000);
        SimResult dvr = runSimulation(spec, Technique::Dvr, cfg, gs,
                                      hs, 120'000);
        std::printf("OoO IPC %.3f | VR %.2fx | DVR %.2fx | "
                    "MLP %.1f -> %.1f\n\n",
                    ooo.ipc(), vr.ipc() / ooo.ipc(),
                    dvr.ipc() / ooo.ipc(), ooo.mlp, dvr.mlp);
    }
    return 0;
}

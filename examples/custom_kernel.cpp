/**
 * @file
 * Custom-kernel example: build your own µop program with
 * ProgramBuilder, lay out its data with Layout, wrap it in a
 * Workload, and measure it under any technique. The kernel here is a
 * two-level "B[A[i]]" gather reduction — the smallest program DVR's
 * Discovery Mode can profit from.
 */

#include <iostream>

#include "driver/simulation.hh"

using namespace vrsim;

int
main()
{
    // --- 1. data layout ---
    Workload w;
    w.name = "custom-gather";
    Layout lay;
    const uint64_t n = 1 << 16;
    Rng rng(123);
    std::vector<uint64_t> idx(n), data(n);
    for (uint64_t i = 0; i < n; i++) {
        idx[i] = rng.below(n);
        data[i] = rng.next();
    }
    uint64_t idx_base = lay.put64(w.image, idx);
    uint64_t data_base = lay.put64(w.image, data);

    // --- 2. the µop program ---
    // for (i = 0; i < n; i++) sum += data[idx[i]];
    constexpr uint8_t R_IDX = 1, R_DATA = 2, R_I = 3, R_N = 4,
                      R_T = 5, R_SUM = 6, R_C = 7;
    ProgramBuilder b(w.name);
    auto top = b.here();
    b.ld(R_T, R_IDX, R_I, 8);      // t = idx[i]      (striding)
    b.ld(R_T, R_DATA, R_T, 8);     // t = data[t]     (indirect)
    b.add(R_SUM, R_SUM, R_T);
    b.addi(R_I, R_I, 1);
    b.cmpltu(R_C, R_I, R_N);
    b.br(R_C, top);
    b.halt();
    w.prog = b.build();

    // --- 3. initial registers ---
    w.init.regs[R_IDX] = idx_base;
    w.init.regs[R_DATA] = data_base;
    w.init.regs[R_N] = n;

    // --- 4. verify the kernel functionally first ---
    {
        MemoryImage img_copy = w.image;
        CpuState st = w.init;
        run(w.prog, st, img_copy);
        uint64_t expect = 0;
        for (uint64_t i = 0; i < n; i++)
            expect += data[idx[i]];
        std::cout << "functional check: "
                  << (st.regs[R_SUM] == expect ? "OK" : "MISMATCH")
                  << "\n";
    }

    // --- 5. measure ---
    SystemConfig cfg = SystemConfig::benchScale();
    for (Technique t : {Technique::OoO, Technique::Vr, Technique::Dvr,
                        Technique::Oracle}) {
        Workload wr = w;   // fresh copy: stores mutate the image
        SimResult r = runWorkload(wr, t, cfg, 100'000);
        std::printf("%-8s IPC %.3f  MLP %.1f\n",
                    techniqueName(t).c_str(), r.ipc(), r.mlp);
    }
    return 0;
}

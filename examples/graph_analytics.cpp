/**
 * @file
 * Graph-analytics example: breadth-first search (the paper's
 * Algorithm 1) on a power-law Kronecker graph and a uniform-random
 * graph, comparing all techniques. Shows the scenario the paper's
 * motivation centres on: short, data-dependent inner loops where
 * VR over-fetches but DVR's Discovery + Nested modes pay off.
 */

#include <iostream>

#include "driver/simulation.hh"

using namespace vrsim;

int
main()
{
    SystemConfig cfg = SystemConfig::benchScale();
    GraphScale gs;
    gs.nodes = 1 << 14;
    gs.avg_degree = 16;
    HpcDbScale hs;

    const Technique techs[] = {Technique::OoO, Technique::Pre,
                               Technique::Imp, Technique::Vr,
                               Technique::Dvr, Technique::Oracle};

    for (const char *spec : {"bfs/KR", "bfs/UR"}) {
        std::cout << "== " << spec << " ==\n";
        double base = 0;
        for (Technique t : techs) {
            SimResult r = runSimulation(spec, t, cfg, gs, hs, 120'000);
            if (t == Technique::OoO)
                base = r.ipc();
            std::printf("%-8s IPC %-8.3f speedup %-6.2f MLP %-6.2f "
                        "DRAM %llu\n",
                        techniqueName(t).c_str(), r.ipc(),
                        r.ipc() / base, r.mlp,
                        (unsigned long long)r.mem.dramTotal());
            if (t == Technique::Dvr && r.dvr) {
                std::printf("         discovery: %llu entered, "
                            "%llu aborted; %llu spawns "
                            "(%llu nested), mean lanes %.1f\n",
                            (unsigned long long)r.dvr->discoveries,
                            (unsigned long long)r.dvr->discovery_aborts,
                            (unsigned long long)r.dvr->spawns,
                            (unsigned long long)r.dvr->nested_spawns,
                            r.dvr->meanLanes());
            }
        }
        std::cout << "\n";
    }
    return 0;
}

/**
 * @file
 * Technique tour: run one workload under every technique and print
 * the full per-run report (stall breakdown, memory behaviour, engine
 * statistics). The best starting point for understanding *why* each
 * technique wins or loses on a given kernel.
 *
 * Usage: technique_tour [workload-spec]   (default: sssp/KR)
 */

#include <iostream>

#include "driver/report.hh"
#include "driver/simulation.hh"

using namespace vrsim;

int
main(int argc, char **argv)
{
    std::string spec = argc > 1 ? argv[1] : "sssp/KR";
    SystemConfig cfg = SystemConfig::benchScale();
    GraphScale gs;
    gs.nodes = 1 << 14;
    HpcDbScale hs;
    hs.elements = 1 << 16;

    const Technique techs[] = {Technique::OoO, Technique::Pre,
                               Technique::Imp, Technique::Vr,
                               Technique::Dvr, Technique::Oracle};
    double base = 0;
    for (Technique t : techs) {
        SimResult r = runSimulation(spec, t, cfg, gs, hs, 100'000);
        if (t == Technique::OoO)
            base = r.ipc();
        printReport(std::cout, r, cfg);
        if (t != Technique::OoO)
            std::printf("\nspeedup over OoO: %.2fx\n",
                        r.ipc() / base);
        std::cout << "\n" << std::string(60, '-') << "\n\n";
    }
    return 0;
}

/**
 * @file
 * Quickstart: run one workload (the paper's Figure 1 hash-chain,
 * "camel") on the baseline OoO core and on Decoupled Vector Runahead,
 * and print the headline comparison. This is the 20-line tour of the
 * public API: pick a workload, pick a technique, run, read stats.
 */

#include <iostream>

#include "driver/simulation.hh"

using namespace vrsim;

int
main()
{
    SystemConfig cfg = SystemConfig::benchScale();
    HpcDbScale scale;            // ~64K-element tables
    GraphScale gscale;

    std::cout << "vrsim quickstart: camel (Fig. 1 indirect chain)\n\n";
    printConfig(std::cout, cfg);
    std::cout << "\n";

    SimResult ooo = runSimulation("camel", Technique::OoO, cfg, gscale,
                                  scale, 100'000);
    SimResult dvr = runSimulation("camel", Technique::Dvr, cfg, gscale,
                                  scale, 100'000);

    std::cout << "OoO  IPC: " << ooo.ipc() << "  (L1 hit rate "
              << 100.0 * ooo.mem.demand_l1_hits /
                     std::max<uint64_t>(1, ooo.mem.demand_accesses)
              << "%)\n";
    std::cout << "DVR  IPC: " << dvr.ipc() << "  (L1 hit rate "
              << 100.0 * dvr.mem.demand_l1_hits /
                     std::max<uint64_t>(1, dvr.mem.demand_accesses)
              << "%)\n";
    std::cout << "speedup : " << dvr.ipc() / ooo.ipc() << "x\n";
    if (dvr.dvr) {
        std::cout << "DVR spawned " << dvr.dvr->spawns
                  << " subthreads, " << dvr.dvr->lanes_spawned
                  << " lanes, issued " << dvr.dvr->prefetches
                  << " prefetches\n";
    }
    return 0;
}

/**
 * @file
 * Tests for the GPU-style reconvergence stack (paper §4.2.3).
 */

#include <gtest/gtest.h>

#include "runahead/reconv_stack.hh"

namespace vrsim
{
namespace
{

TEST(ReconvStackTest, PushPopLifo)
{
    ReconvergenceStack s(8);
    LaneMask m1, m2;
    m1.set(0);
    m2.set(1);
    EXPECT_TRUE(s.push(100, m1));
    EXPECT_TRUE(s.push(200, m2));
    EXPECT_EQ(s.depth(), 2u);
    auto e = s.pop();
    EXPECT_EQ(e.pc, 200u);
    EXPECT_TRUE(e.mask.test(1));
    e = s.pop();
    EXPECT_EQ(e.pc, 100u);
    EXPECT_TRUE(s.empty());
}

TEST(ReconvStackTest, CapacityDropsExcessGroups)
{
    ReconvergenceStack s(2);
    LaneMask m;
    m.set(0);
    EXPECT_TRUE(s.push(1, m));
    EXPECT_TRUE(s.push(2, m));
    EXPECT_FALSE(s.push(3, m));
    EXPECT_EQ(s.drops(), 1u);
    EXPECT_EQ(s.depth(), 2u);
}

TEST(ReconvStackTest, PopEmptyPanics)
{
    ReconvergenceStack s(4);
    EXPECT_THROW(s.pop(), PanicError);
}

TEST(ReconvStackTest, MaskPreserves128Lanes)
{
    ReconvergenceStack s(8);
    LaneMask m;
    for (int i = 0; i < 128; i += 3)
        m.set(i);
    s.push(7, m);
    auto e = s.pop();
    EXPECT_EQ(e.mask.count(), m.count());
    EXPECT_TRUE(e.mask.test(126));
}

TEST(ReconvStackTest, ClearEmptiesStack)
{
    ReconvergenceStack s(8);
    LaneMask m;
    m.set(5);
    s.push(1, m);
    s.clear();
    EXPECT_TRUE(s.empty());
}

} // namespace
} // namespace vrsim

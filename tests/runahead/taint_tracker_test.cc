/**
 * @file
 * Tests for the Vector Taint Tracker (VTT, paper §4.1.2).
 */

#include <gtest/gtest.h>

#include "runahead/taint_tracker.hh"

namespace vrsim
{
namespace
{

Inst
aluInst(Op op, uint8_t rd, uint8_t rs1, uint8_t rs2 = REG_NONE)
{
    return Inst{op, rd, rs1, rs2};
}

TEST(TaintTrackerTest, InitSeedsOnlyDestination)
{
    TaintTracker t;
    t.init(5);
    EXPECT_TRUE(t.isTainted(5));
    EXPECT_FALSE(t.isTainted(4));
    EXPECT_FALSE(t.isTainted(REG_NONE));
}

TEST(TaintTrackerTest, TaintPropagatesThroughAlu)
{
    TaintTracker t;
    t.init(1);
    t.propagate(aluInst(Op::Add, 2, 1, 3));   // r2 = r1 + r3
    EXPECT_TRUE(t.isTainted(2));
    t.propagate(aluInst(Op::Shli, 4, 2));     // r4 = r2 << i
    EXPECT_TRUE(t.isTainted(4));
}

TEST(TaintTrackerTest, TransitiveChainAcrossManyRegs)
{
    TaintTracker t;
    t.init(1);
    for (uint8_t r = 2; r < 10; r++)
        t.propagate(aluInst(Op::Mov, r, uint8_t(r - 1)));
    EXPECT_TRUE(t.isTainted(9));
}

TEST(TaintTrackerTest, UntaintedOverwriteClearsTaint)
{
    TaintTracker t;
    t.init(1);
    t.propagate(aluInst(Op::Add, 2, 1, 1));
    EXPECT_TRUE(t.isTainted(2));
    // r2 = r3 + r4, neither tainted: taint must clear (paper rule).
    t.propagate(aluInst(Op::Add, 2, 3, 4));
    EXPECT_FALSE(t.isTainted(2));
}

TEST(TaintTrackerTest, MoviClearsTaint)
{
    TaintTracker t;
    t.init(1);
    t.propagate(Inst{Op::Movi, 1, REG_NONE, REG_NONE, REG_NONE, 1, 7});
    EXPECT_FALSE(t.isTainted(1));
}

TEST(TaintTrackerTest, SourceTaintedChecksAllSources)
{
    TaintTracker t;
    t.init(3);
    Inst ld{Op::Ld, 5, 2, 3, REG_NONE, 8, 0};   // index reg tainted
    EXPECT_TRUE(t.sourceTainted(ld));
    Inst st{Op::St, REG_NONE, 2, REG_NONE, 3, 1, 0}; // value tainted
    EXPECT_TRUE(t.sourceTainted(st));
    Inst clean{Op::Add, 9, 2, 4};
    EXPECT_FALSE(t.sourceTainted(clean));
}

TEST(TaintTrackerTest, LoadFromTaintedAddressTaintsDest)
{
    TaintTracker t;
    t.init(1);
    Inst ld{Op::Ld, 6, 2, 1, REG_NONE, 8, 0};
    t.propagate(ld);
    EXPECT_TRUE(t.isTainted(6));
}

TEST(TaintTrackerTest, BranchesAndStoresDoNotWriteTaint)
{
    TaintTracker t;
    t.init(1);
    uint64_t before = t.raw();
    t.propagate(Inst{Op::Br, REG_NONE, 1, REG_NONE, REG_NONE, 1, 0});
    t.propagate(Inst{Op::St, REG_NONE, 1, REG_NONE, 2, 1, 0});
    EXPECT_EQ(t.raw(), before);
}

TEST(TaintTrackerTest, ReinitResetsEverything)
{
    TaintTracker t;
    t.init(1);
    t.propagate(aluInst(Op::Mov, 2, 1));
    t.init(7);
    EXPECT_FALSE(t.isTainted(1));
    EXPECT_FALSE(t.isTainted(2));
    EXPECT_TRUE(t.isTainted(7));
}

} // namespace
} // namespace vrsim

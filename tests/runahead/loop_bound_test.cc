/**
 * @file
 * Tests for the Loop-Bound Detector (FLR / LCR / SBB and the
 * checkpoint-based bound inference, paper §4.1.3).
 */

#include <gtest/gtest.h>

#include "runahead/loop_bound.hh"

namespace vrsim
{
namespace
{

constexpr uint8_t RJ = 1;     // induction register
constexpr uint8_t REND = 2;   // bound register
constexpr uint8_t RC = 3;     // compare result

Inst
cmpInst()
{
    return Inst{Op::CmpLtu, RC, RJ, REND};
}

Inst
brInst()
{
    return Inst{Op::Br, REG_NONE, RC, REG_NONE, REG_NONE, 1, 10};
}

TEST(LoopBoundTest, DetectsSimpleLoop)
{
    LoopBoundDetector lbd;
    CpuState entry;
    entry.regs[RJ] = 4;
    entry.regs[REND] = 100;
    lbd.enter(entry, /*stride_pc=*/20);

    lbd.finalLoadSeen(22);
    lbd.compareSeen(25, cmpInst());
    // Backward branch: taken dest 20 <= stride pc 20.
    Inst br = brInst();
    br.imm = 20;
    lbd.branchSeen(26, br, 20);
    EXPECT_TRUE(lbd.sbbSet());
    EXPECT_EQ(lbd.flr(), 22u);

    CpuState exit_state = entry;
    exit_state.regs[RJ] = 5;   // one iteration: +1
    LoopBoundInfo info = lbd.infer(exit_state);
    ASSERT_TRUE(info.valid);
    EXPECT_EQ(info.induction_reg, RJ);
    EXPECT_EQ(info.bound_reg, REND);
    EXPECT_EQ(info.increment, 1);
    EXPECT_EQ(info.bound_value, 100u);

    auto rem = LoopBoundDetector::remainingIterations(info, exit_state);
    ASSERT_TRUE(rem.has_value());
    EXPECT_EQ(*rem, 95u);
}

TEST(LoopBoundTest, ForwardBranchDoesNotLockLcr)
{
    LoopBoundDetector lbd;
    CpuState entry;
    lbd.enter(entry, 20);
    lbd.compareSeen(25, cmpInst());
    Inst br = brInst();
    br.imm = 40;   // forward target
    lbd.branchSeen(26, br, 40);
    EXPECT_FALSE(lbd.sbbSet());
}

TEST(LoopBoundTest, BranchSourceMustMatchCompareDest)
{
    LoopBoundDetector lbd;
    CpuState entry;
    lbd.enter(entry, 20);
    lbd.compareSeen(25, cmpInst());
    Inst br = brInst();
    br.rs1 = 9;   // not the compare's destination
    lbd.branchSeen(26, br, 20);
    EXPECT_FALSE(lbd.sbbSet());
}

TEST(LoopBoundTest, SbbFreezesLcr)
{
    LoopBoundDetector lbd;
    CpuState entry;
    entry.regs[RJ] = 0;
    entry.regs[REND] = 10;
    lbd.enter(entry, 20);
    lbd.compareSeen(25, cmpInst());
    Inst br = brInst();
    br.imm = 20;
    lbd.branchSeen(26, br, 20);
    // A later compare must not displace the locked LCR.
    Inst other{Op::CmpEq, 5, 6, 7};
    lbd.compareSeen(30, other);

    CpuState exit_state = entry;
    exit_state.regs[RJ] = 2;
    LoopBoundInfo info = lbd.infer(exit_state);
    EXPECT_TRUE(info.valid);
    EXPECT_EQ(info.induction_reg, RJ);
}

TEST(LoopBoundTest, NewFinalLoadRestartsSearch)
{
    LoopBoundDetector lbd;
    CpuState entry;
    entry.regs[RJ] = 0;
    entry.regs[REND] = 10;
    lbd.enter(entry, 20);
    lbd.compareSeen(21, cmpInst());
    Inst br = brInst();
    br.imm = 20;
    lbd.branchSeen(22, br, 20);
    EXPECT_TRUE(lbd.sbbSet());
    // A new tainted load resets SBB so the *innermost* loop around
    // the chain is re-identified.
    lbd.finalLoadSeen(23);
    EXPECT_FALSE(lbd.sbbSet());
    EXPECT_EQ(lbd.flr(), 23u);
}

TEST(LoopBoundTest, BothRegistersChangingFailsInference)
{
    LoopBoundDetector lbd;
    CpuState entry;
    entry.regs[RJ] = 0;
    entry.regs[REND] = 10;
    lbd.enter(entry, 20);
    lbd.compareSeen(25, cmpInst());
    Inst br = brInst();
    br.imm = 20;
    lbd.branchSeen(26, br, 20);
    CpuState exit_state = entry;
    exit_state.regs[RJ] = 1;
    exit_state.regs[REND] = 11;
    EXPECT_FALSE(lbd.infer(exit_state).valid);
}

TEST(LoopBoundTest, NeitherChangingFailsInference)
{
    LoopBoundDetector lbd;
    CpuState entry;
    lbd.enter(entry, 20);
    lbd.compareSeen(25, cmpInst());
    Inst br = brInst();
    br.imm = 20;
    lbd.branchSeen(26, br, 20);
    EXPECT_FALSE(lbd.infer(entry).valid);
}

TEST(LoopBoundTest, DecrementingLoops)
{
    LoopBoundDetector lbd;
    CpuState entry;
    entry.regs[RJ] = 100;
    entry.regs[REND] = 20;
    lbd.enter(entry, 20);
    lbd.compareSeen(25, cmpInst());
    Inst br = brInst();
    br.imm = 20;
    lbd.branchSeen(26, br, 20);
    CpuState exit_state = entry;
    exit_state.regs[RJ] = 98;   // -2 per iteration
    LoopBoundInfo info = lbd.infer(exit_state);
    ASSERT_TRUE(info.valid);
    EXPECT_EQ(info.increment, -2);
    auto rem = LoopBoundDetector::remainingIterations(info, exit_state);
    ASSERT_TRUE(rem.has_value());
    EXPECT_EQ(*rem, 39u);   // (20 - 98) / -2
}

TEST(LoopBoundTest, RemainingNeverNegative)
{
    LoopBoundInfo info;
    info.valid = true;
    info.induction_reg = RJ;
    info.bound_reg = REND;
    info.increment = 1;
    CpuState st;
    st.regs[RJ] = 50;
    st.regs[REND] = 10;   // already past the bound
    auto rem = LoopBoundDetector::remainingIterations(info, st);
    ASSERT_TRUE(rem.has_value());
    EXPECT_EQ(*rem, 0u);
}

TEST(LoopBoundTest, InvalidInfoYieldsNoRemaining)
{
    LoopBoundInfo info;
    CpuState st;
    EXPECT_FALSE(
        LoopBoundDetector::remainingIterations(info, st).has_value());
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Parameterized sweep of the loop-bound inference over (start, bound,
 * increment) combinations, checking the remaining-iteration count the
 * vector subthread would use.
 */

#include <gtest/gtest.h>

#include "runahead/loop_bound.hh"

namespace vrsim
{
namespace
{

constexpr uint8_t RJ = 1, REND = 2, RC = 3;

struct SweepPoint
{
    int64_t start;
    int64_t bound;
    int64_t increment;
};

class LoopBoundSweep : public ::testing::TestWithParam<SweepPoint>
{
};

TEST_P(LoopBoundSweep, RemainingIterationsMatchClosedForm)
{
    const SweepPoint pt = GetParam();

    LoopBoundDetector lbd;
    CpuState entry;
    entry.regs[RJ] = uint64_t(pt.start);
    entry.regs[REND] = uint64_t(pt.bound);
    lbd.enter(entry, /*stride_pc=*/10);
    lbd.finalLoadSeen(12);
    lbd.compareSeen(14, Inst{Op::CmpLtu, RC, RJ, REND});
    Inst br{Op::Br, REG_NONE, RC, REG_NONE, REG_NONE, 1, 10};
    lbd.branchSeen(15, br, 10);
    ASSERT_TRUE(lbd.sbbSet());

    CpuState exit_state = entry;
    exit_state.regs[RJ] = uint64_t(pt.start + pt.increment);
    LoopBoundInfo info = lbd.infer(exit_state);
    ASSERT_TRUE(info.valid);
    EXPECT_EQ(info.increment, pt.increment);

    auto rem = LoopBoundDetector::remainingIterations(info, exit_state);
    ASSERT_TRUE(rem.has_value());
    int64_t expect =
        (pt.bound - (pt.start + pt.increment)) / pt.increment;
    if (expect < 0)
        expect = 0;
    EXPECT_EQ(int64_t(*rem), expect)
        << "start=" << pt.start << " bound=" << pt.bound
        << " inc=" << pt.increment;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LoopBoundSweep,
    ::testing::Values(
        SweepPoint{0, 100, 1}, SweepPoint{0, 100, 2},
        SweepPoint{0, 100, 7}, SweepPoint{5, 128, 1},
        SweepPoint{50, 51, 1}, SweepPoint{50, 50, 1},
        SweepPoint{0, 1000000, 1}, SweepPoint{0, 8, 1},
        SweepPoint{100, 20, -1}, SweepPoint{100, 20, -4},
        SweepPoint{7, 7, 3}, SweepPoint{0, 127, 1},
        SweepPoint{0, 129, 1}));

} // namespace
} // namespace vrsim

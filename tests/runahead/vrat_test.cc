/**
 * @file
 * Tests for the Vector Register Allocation Table resource model
 * (paper §4.2.1).
 */

#include <gtest/gtest.h>

#include "runahead/vrat.hh"

namespace vrsim
{
namespace
{

TEST(VratTest, ResetAllocatesScalarCopies)
{
    Vrat v(128, 128, 16);
    // Every architectural register gets a fresh scalar register.
    EXPECT_EQ(v.scalarUsed(), uint32_t(NUM_ARCH_REGS));
    EXPECT_EQ(v.vectorUsed(), 0u);
    EXPECT_FALSE(v.failed());
}

TEST(VratTest, VectorizeConsumesSixteenRegisters)
{
    Vrat v(128, 128, 16);
    EXPECT_TRUE(v.vectorizeDst(3));
    EXPECT_TRUE(v.isVectorized(3));
    EXPECT_EQ(v.vectorUsed(), 16u);
    // The scalar copy was freed on overwrite.
    EXPECT_EQ(v.scalarUsed(), uint32_t(NUM_ARCH_REGS) - 1);
}

TEST(VratTest, VectorizeIdempotent)
{
    Vrat v(128, 128, 16);
    v.vectorizeDst(3);
    v.vectorizeDst(3);
    EXPECT_EQ(v.vectorUsed(), 16u);
}

TEST(VratTest, FreeListExhaustionFlagsFailure)
{
    Vrat v(128, 32, 16);   // room for only two vectorized registers
    EXPECT_TRUE(v.vectorizeDst(1));
    EXPECT_TRUE(v.vectorizeDst(2));
    EXPECT_FALSE(v.vectorizeDst(3));
    EXPECT_TRUE(v.failed());
    EXPECT_EQ(v.vectorUsed(), 32u);
}

TEST(VratTest, ScalarOverwriteReturnsVectorRegisters)
{
    Vrat v(128, 128, 16);
    v.vectorizeDst(4);
    EXPECT_TRUE(v.scalarizeDst(4));   // WAW by a scalar instruction
    EXPECT_FALSE(v.isVectorized(4));
    EXPECT_EQ(v.vectorUsed(), 0u);
    EXPECT_EQ(v.scalarUsed(), uint32_t(NUM_ARCH_REGS));
}

TEST(VratTest, ResetReclaimsEverything)
{
    Vrat v(128, 128, 16);
    v.vectorizeDst(1);
    v.vectorizeDst(2);
    v.reset();
    EXPECT_EQ(v.vectorUsed(), 0u);
    EXPECT_FALSE(v.isVectorized(1));
    EXPECT_FALSE(v.failed());
}

TEST(VratTest, PaperBudgetSupportsEightChainRegisters)
{
    // 128 vector physical registers at 16 per mapping: 8 vectorized
    // architectural registers, matching the paper's VRAT geometry.
    Vrat v(128, 128, 16);
    for (uint8_t r = 0; r < 8; r++)
        EXPECT_TRUE(v.vectorizeDst(r));
    EXPECT_FALSE(v.vectorizeDst(9));
}

TEST(VratTest, BadRegisterPanics)
{
    Vrat v(128, 128, 16);
    EXPECT_THROW(v.vectorizeDst(NUM_ARCH_REGS), PanicError);
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Tests that the §4.4 hardware-budget accounting reproduces the
 * paper's 1139-byte total with the paper's parameters.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "runahead/hardware_budget.hh"

namespace vrsim
{
namespace
{

TEST(HardwareBudgetTest, PaperTotalIs1139Bytes)
{
    RunaheadConfig cfg;   // paper defaults
    HardwareBudget b = computeHardwareBudget(cfg, 16);
    EXPECT_EQ(b.total(), 1139u);
}

TEST(HardwareBudgetTest, PerStructureFigures)
{
    RunaheadConfig cfg;
    HardwareBudget b = computeHardwareBudget(cfg, 16);
    EXPECT_EQ(b.stride_detector_bytes, 460u);
    EXPECT_EQ(b.vrat_bytes, 288u);
    EXPECT_EQ(b.vir_bytes, 86u);
    EXPECT_EQ(b.frontend_buffer_bytes, 64u);
    EXPECT_EQ(b.reconv_stack_bytes, 176u);
    EXPECT_EQ(b.flr_bytes, 6u);
    EXPECT_EQ(b.lcr_bytes, 2u);
    EXPECT_EQ(b.loop_bound_bytes, 48u);
    EXPECT_EQ(b.taint_bytes, 2u);
    EXPECT_EQ(b.ndm_bytes, 7u);
}

TEST(HardwareBudgetTest, ScalesWithVectorWidth)
{
    RunaheadConfig wide;
    wide.vector_regs = 32;   // 256 scalar-equivalent lanes
    HardwareBudget b = computeHardwareBudget(wide, 16);
    RunaheadConfig base;
    HardwareBudget b0 = computeHardwareBudget(base, 16);
    EXPECT_GT(b.vrat_bytes, b0.vrat_bytes);
    EXPECT_GT(b.vir_bytes, b0.vir_bytes);
}

TEST(HardwareBudgetTest, ScalesWithStrideEntries)
{
    RunaheadConfig cfg;
    cfg.stride_entries = 64;
    HardwareBudget b = computeHardwareBudget(cfg, 16);
    EXPECT_EQ(b.stride_detector_bytes, 920u);
}

TEST(HardwareBudgetTest, PrintMentionsEveryStructure)
{
    std::ostringstream os;
    printHardwareBudget(os, computeHardwareBudget(RunaheadConfig{}));
    for (const char *k : {"stride", "VRAT", "VIR", "reconv", "FLR",
                          "LCR", "taint", "NDM", "total"})
        EXPECT_NE(os.str().find(k), std::string::npos) << k;
    EXPECT_NE(os.str().find("1139"), std::string::npos);
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Behavioural tests for the three engines (PRE, VR, DVR) on
 * hand-built kernels whose structure we control exactly: trigger
 * conditions, Discovery Mode analyses, loop-bound limiting, nested
 * vectorization and prefetch generation.
 */

#include <gtest/gtest.h>

#include "core/ooo_core.hh"
#include "sim/rng.hh"
#include "runahead/dvr.hh"
#include "runahead/pre.hh"
#include "runahead/vector_runahead.hh"

namespace vrsim
{
namespace
{

SystemConfig
quietCfg()
{
    // Scaled LLC (as the bench harness uses) so the test kernels'
    // working sets actually miss, with the stride prefetcher off so
    // engine effects are isolated.
    SystemConfig cfg = SystemConfig::benchScale();
    cfg.stride_pf.enabled = false;
    return cfg;
}

constexpr uint8_t RI = 1;    // induction
constexpr uint8_t RB = 2;    // index-array base
constexpr uint8_t RD = 3;    // data-array base
constexpr uint8_t RV = 4;    // loaded index
constexpr uint8_t RS = 5;    // sum
constexpr uint8_t RC = 6;    // condition
constexpr uint8_t RN = 7;    // bound

/**
 * for (i = 0; i < n; i++) sum += data[hash(idx[i]) & (range-1)];
 * The hash is emitted as its real µop sequence so the per-miss µop
 * density matches compiled code (a naked 2-µop gather saturates the
 * MSHRs from the window alone and leaves no headroom for any
 * prefetching technique -- see EXPERIMENTS.md).
 */
struct GatherKernel
{
    Program prog;
    MemoryImage image;
    CpuState init;
    uint32_t stride_pc = 0;
    uint32_t indirect_pc = 0;

    explicit GatherKernel(uint64_t n, uint64_t range = 1 << 19)
    {
        constexpr uint8_t RT = 8;
        Rng rng(17);
        for (uint64_t i = 0; i < n; i++)
            image.write64(0x10000 + i * 8, rng.next());
        ProgramBuilder b("gather");
        auto top = b.here();
        stride_pc = b.ld(RV, RB, RI, 8);
        b.hashSeq(RV, RV, RT);
        b.andi(RV, RV, int64_t(range - 1));
        indirect_pc = b.ld(RV, RD, RV, 8);
        b.add(RS, RS, RV);
        b.addi(RI, RI, 1);
        b.cmpltu(RC, RI, RN);
        b.br(RC, top);
        b.halt();
        prog = b.build();
        init.regs[RB] = 0x10000;
        init.regs[RD] = 0x4000000;
        init.regs[RN] = n;
    }
};

TEST(VrEngineTest, TriggersAndVectorizesOnWindowStall)
{
    GatherKernel k(8000);
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, k.image);
    VectorRunahead vr(cfg, k.prog, k.image, hier);
    OooCore core(cfg, k.prog, k.image, hier, &vr);
    CoreStats st = core.run(k.init, 0);
    EXPECT_GT(vr.stats().triggers, 0u);
    EXPECT_GT(vr.stats().vectorizations, 0u);
    EXPECT_GT(vr.stats().prefetches, 0u);
    // Full 128 lanes per vectorization (no loop-bound analysis).
    EXPECT_EQ(vr.stats().lanes_spawned,
              vr.stats().vectorizations * 128);
    EXPECT_GT(st.runahead_commit_stall, 0u);
}

TEST(VrEngineTest, GatherKernelNetCostBounded)
{
    // On a window-stall-heavy gather, VR's prefetch benefit must at
    // least offset most of its delayed-termination freezes: the L1
    // ports rate-limit the vector gathers (2 elements/cycle), so a
    // small net loss is physical, but it must stay bounded. The
    // clear VR wins are asserted on camel in paper_claims_test.
    SystemConfig cfg = quietCfg();
    CoreStats base, with_vr;
    {
        GatherKernel k(8000);
        MemoryHierarchy hier(cfg, k.image);
        OooCore core(cfg, k.prog, k.image, hier);
        base = core.run(k.init, 0);
    }
    {
        GatherKernel k(8000);
        MemoryHierarchy hier(cfg, k.image);
        VectorRunahead vr(cfg, k.prog, k.image, hier);
        OooCore core(cfg, k.prog, k.image, hier, &vr);
        with_vr = core.run(k.init, 0);
        EXPECT_GT(vr.stats().prefetches, 1000u);
    }
    EXPECT_LT(double(with_vr.cycles), 1.10 * double(base.cycles));
}

TEST(PreEngineTest, PrefetchesFirstLevelSkipsDependent)
{
    GatherKernel k(8000);
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, k.image);
    PreEngine pre(cfg, k.prog, k.image, hier);
    OooCore core(cfg, k.prog, k.image, hier, &pre);
    core.run(k.init, 0);
    EXPECT_GT(pre.stats().intervals, 0u);
    EXPECT_GT(pre.stats().prefetches, 0u);
    // The indirect loads depend on in-runahead misses: PRE must have
    // skipped a meaningful number of them (its defining limitation).
    EXPECT_GT(pre.stats().skipped_dependent, 0u);
}

TEST(DvrEngineTest, DiscoveryFindsChainAndSpawns)
{
    GatherKernel k(20000);
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, k.image);
    DecoupledVectorRunahead dvr(cfg, k.prog, k.image, hier);
    OooCore core(cfg, k.prog, k.image, hier, &dvr);
    core.run(k.init, 60000);
    EXPECT_GT(dvr.stats().discoveries, 0u);
    EXPECT_GT(dvr.stats().spawns, 0u);
    EXPECT_GT(dvr.stats().prefetches, 0u);
    // The loop is long: spawns should use the full 128 lanes.
    EXPECT_GT(dvr.stats().meanLanes(), 64.0);
}

TEST(DvrEngineTest, TriggersWithoutWindowStalls)
{
    // DVR is decoupled: it must spawn even when the window never
    // fills. A kernel with mostly-hitting loads plus a small indirect
    // tail never stalls the 350-entry window for long.
    GatherKernel k(20000, 1 << 8);   // data fits in L1: few misses
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, k.image);
    DecoupledVectorRunahead dvr(cfg, k.prog, k.image, hier);
    OooCore core(cfg, k.prog, k.image, hier, &dvr);
    CoreStats st = core.run(k.init, 40000);
    (void)st;
    EXPECT_GT(dvr.stats().spawns, 0u);
}

TEST(DvrEngineTest, NoDependentChainMeansNoSpawn)
{
    // A pure striding loop with no dependent load: Discovery must
    // abort (FLR == 0) and leave prefetching to the stride prefetcher.
    ProgramBuilder b("stream");
    auto top = b.here();
    b.ld(RV, RB, RI, 8);
    b.add(RS, RS, RV);
    b.addi(RI, RI, 1);
    b.cmpltu(RC, RI, RN);
    b.br(RC, top);
    b.halt();
    Program prog = b.build();
    CpuState init;
    init.regs[RB] = 0x10000;
    init.regs[RN] = 20000;

    MemoryImage image;
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, image);
    DecoupledVectorRunahead dvr(cfg, prog, image, hier);
    OooCore core(cfg, prog, image, hier, &dvr);
    core.run(init, 40000);
    EXPECT_GT(dvr.stats().discoveries, 0u);
    EXPECT_EQ(dvr.stats().spawns, 0u);
    EXPECT_GT(dvr.stats().discovery_aborts, 0u);
}

TEST(DvrEngineTest, LoopBoundLimitsLanes)
{
    // Nested loops with a short inner loop (24 iterations) and the
    // nested feature disabled: spawns must be clipped to <= 24 lanes.
    ProgramBuilder b("short");
    constexpr uint8_t RJ = 8, REND = 9, RROW = 10;
    auto exit_l = b.makeLabel();
    auto outer = b.here();
    b.cmplti(RC, RROW, 500);
    b.brz(RC, exit_l);
    b.movi(RJ, 0);
    auto inner = b.here();
    b.ld(RV, RB, RJ, 8);            // inner striding load
    b.ld(RV, RD, RV, 8);            // dependent
    b.add(RS, RS, RV);
    b.addi(RJ, RJ, 1);
    b.cmpltu(RC, RJ, REND);
    b.br(RC, inner);
    b.addi(RROW, RROW, 1);
    b.jmp(outer);
    b.bind(exit_l);
    b.halt();
    Program prog = b.build();

    MemoryImage image;
    Rng rng(3);
    for (int i = 0; i < 64; i++)
        image.write64(0x10000 + i * 8, rng.below(1 << 18));
    CpuState init;
    init.regs[RB] = 0x10000;
    init.regs[RD] = 0x4000000;
    init.regs[REND] = 24;

    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, image);
    DvrFeatures f;
    f.nested = false;
    DecoupledVectorRunahead dvr(cfg, prog, image, hier, f);
    OooCore core(cfg, prog, image, hier, &dvr);
    core.run(init, 60000);
    ASSERT_GT(dvr.stats().spawns, 0u);
    EXPECT_GT(dvr.stats().bound_limited, 0u);
    EXPECT_LE(dvr.stats().meanLanes(), 24.5);
}

TEST(DvrEngineTest, NestedModeExpandsShortInnerLoops)
{
    // Same nested structure, inner trip count 8, with nesting on:
    // NDM should vectorize across outer iterations and spawn far
    // more lanes than the inner bound alone.
    ProgramBuilder b("nested");
    constexpr uint8_t RJ = 8, REND = 9, RROW = 10, RSTART = 11;
    auto exit_l = b.makeLabel();
    auto outer = b.here();
    b.cmplti(RC, RROW, 2000);
    b.brz(RC, exit_l);
    b.ld(RSTART, RB, RROW, 8);      // outer striding load: row start
    b.mov(RJ, RSTART);
    b.addi(REND, RSTART, 8);        // 8 inner iterations
    auto inner = b.here();
    b.ld(RV, RD, RJ, 8);            // inner striding load
    b.ld(RV, 12, RV, 8);            // dependent indirect
    b.add(RS, RS, RV);
    b.addi(RJ, RJ, 1);
    b.cmpltu(RC, RJ, REND);
    b.br(RC, inner);
    b.addi(RROW, RROW, 1);
    b.jmp(outer);
    b.bind(exit_l);
    b.halt();
    Program prog = b.build();

    MemoryImage image;
    Rng rng(5);
    for (uint64_t r = 0; r < 2000; r++)
        image.write64(0x10000 + r * 8, r * 8);   // row starts
    for (uint64_t i = 0; i < 16000; i++)
        image.write64(0x100000 + i * 8, rng.below(1 << 18));
    CpuState init;
    init.regs[RB] = 0x10000;
    init.regs[RD] = 0x100000;
    init.regs[12] = 0x4000000;

    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, image);
    DecoupledVectorRunahead dvr(cfg, prog, image, hier,
                                DvrFeatures::full());
    OooCore core(cfg, prog, image, hier, &dvr);
    core.run(init, 100000);
    EXPECT_GT(dvr.stats().nested_spawns, 0u);
}

TEST(DvrEngineTest, OffloadVariantSkipsDiscovery)
{
    GatherKernel k(20000);
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, k.image);
    DecoupledVectorRunahead dvr(cfg, k.prog, k.image, hier,
                                DvrFeatures::offloadOnly());
    OooCore core(cfg, k.prog, k.image, hier, &dvr);
    core.run(k.init, 40000);
    EXPECT_EQ(dvr.stats().discoveries, 0u);
    EXPECT_GT(dvr.stats().spawns, 0u);
}

TEST(DvrEngineTest, DedupeSkipsCoveredIterations)
{
    GatherKernel k(20000);
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, k.image);
    DecoupledVectorRunahead dvr(cfg, k.prog, k.image, hier);
    OooCore core(cfg, k.prog, k.image, hier, &dvr);
    core.run(k.init, 80000);
    // Spawns happen every ~128 iterations, not on every striding
    // load commit: prefetch volume stays near one per iteration
    // (2 loads per lane: stride + indirect).
    double pf_per_spawn = double(dvr.stats().prefetches) /
                          double(std::max<uint64_t>(1,
                                     dvr.stats().spawns));
    EXPECT_LE(pf_per_spawn, 3.0 * 128);
}

TEST(DvrEngineTest, FullDvrOutperformsBaselineOnGather)
{
    SystemConfig cfg = quietCfg();
    CoreStats base, with_dvr;
    {
        GatherKernel k(20000);
        MemoryHierarchy hier(cfg, k.image);
        OooCore core(cfg, k.prog, k.image, hier);
        base = core.run(k.init, 60000);
    }
    {
        GatherKernel k(20000);
        MemoryHierarchy hier(cfg, k.image);
        DecoupledVectorRunahead dvr(cfg, k.prog, k.image, hier);
        OooCore core(cfg, k.prog, k.image, hier, &dvr);
        with_dvr = core.run(k.init, 60000);
    }
    EXPECT_LT(double(with_dvr.cycles), 0.9 * double(base.cycles));
}

TEST(DvrEngineTest, InnermostSwitchRetargetsDiscovery)
{
    // Nested loops where BOTH levels stride: Discovery starts on the
    // outer striding load but must switch to the inner one after
    // seeing the inner stride pc twice (paper §4.1.1).
    ProgramBuilder b("nested2");
    constexpr uint8_t RROW = 8, RJ = 9, REND = 10, RKEY = 11;
    auto exit_l = b.makeLabel();
    auto outer = b.here();
    b.cmplti(RC, RROW, 2000);
    b.brz(RC, exit_l);
    b.ld(RKEY, RB, RROW, 8);        // outer striding load
    b.movi(RJ, 0);
    auto inner = b.here();
    b.ld(RV, RD, RJ, 8);            // inner striding load
    b.add(RV, RV, RKEY);
    b.andi(RV, RV, (1 << 16) - 1);
    b.ld(RV, 12, RV, 8);            // dependent indirect
    b.add(RS, RS, RV);
    b.addi(RJ, RJ, 1);
    b.cmplti(RC, RJ, 100);          // 100 inner iterations
    b.br(RC, inner);
    b.addi(RROW, RROW, 1);
    b.jmp(outer);
    b.bind(exit_l);
    b.halt();
    Program prog = b.build();

    MemoryImage image;
    Rng rng(8);
    for (int i = 0; i < 4096; i++)
        image.write64(0x10000 + i * 8, rng.next());
    CpuState init;
    init.regs[RB] = 0x10000;
    init.regs[RD] = 0x40000;
    init.regs[12] = 0x4000000;
    (void)REND;

    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, image);
    DecoupledVectorRunahead dvr(cfg, prog, image, hier);
    OooCore core(cfg, prog, image, hier, &dvr);
    core.run(init, 60000);
    EXPECT_GT(dvr.stats().innermost_switches, 0u);
    EXPECT_GT(dvr.stats().spawns, 0u);
}

TEST(DvrEngineTest, DivergentBodyRunsLanesToStridePc)
{
    // A data-dependent branch between the FLR and the loop branch
    // (footnote 1): lanes must explore the whole iteration rather
    // than stopping at the FLR, producing divergence events.
    ProgramBuilder b("divbody");
    auto exit_l = b.makeLabel();
    auto skip_l = b.makeLabel();
    auto top = b.here();
    b.cmpltu(RC, RI, RN);
    b.brz(RC, exit_l);
    b.ld(RV, RB, RI, 8);            // striding load
    b.andi(RV, RV, (1 << 14) - 1);
    b.ld(RV, RD, RV, 8);            // dependent load (FLR)
    b.andi(RV, RV, 1);
    b.br(RV, skip_l);               // data-dependent divergence
    b.addi(RS, RS, 1);
    b.bind(skip_l);
    b.addi(RI, RI, 1);
    b.jmp(top);
    b.bind(exit_l);
    b.halt();
    Program prog = b.build();

    MemoryImage image;
    Rng rng(9);
    for (int i = 0; i < 40000; i++)
        image.write64(0x10000 + i * 8, rng.next());
    for (int i = 0; i < (1 << 14); i++)
        image.write64(0x4000000 + i * 8, rng.next());
    CpuState init;
    init.regs[RB] = 0x10000;
    init.regs[RD] = 0x4000000;
    init.regs[RN] = 40000;

    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, image);
    DecoupledVectorRunahead dvr(cfg, prog, image, hier);
    OooCore core(cfg, prog, image, hier, &dvr);
    core.run(init, 60000);
    ASSERT_GT(dvr.stats().spawns, 0u);
    EXPECT_GT(dvr.stats().divergences, 0u);
}

} // namespace
} // namespace vrsim

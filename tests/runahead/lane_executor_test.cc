/**
 * @file
 * Tests for the SIMT lane executor: lockstep execution, per-lane
 * dependent timing, divergence under both VR (invalidate) and DVR
 * (reconverge) policies, and termination rules.
 */

#include <gtest/gtest.h>

#include <functional>

#include "mem/hierarchy.hh"
#include "runahead/lane_executor.hh"

namespace vrsim
{
namespace
{

class LaneExecTest : public ::testing::Test
{
  protected:
    LaneExecTest() : cfg(makeCfg()), hier(cfg, image) {}

    static SystemConfig
    makeCfg()
    {
        SystemConfig c = SystemConfig::paper();
        c.stride_pf.enabled = false;
        return c;
    }

    SystemConfig cfg;
    MemoryImage image;
    MemoryHierarchy hier;

    std::vector<Lane>
    makeLanes(unsigned n, uint32_t pc,
              std::function<void(unsigned, CpuState &)> seed)
    {
        std::vector<Lane> lanes(n);
        for (unsigned j = 0; j < n; j++) {
            lanes[j].ctx.pc = pc;
            seed(j, lanes[j].ctx);
        }
        return lanes;
    }
};

TEST_F(LaneExecTest, StraightLineChainIssuesPerLanePrefetches)
{
    // r2 = mem[r1]; r3 = mem[r4 + r2*8]; then back to "stride pc" 0.
    Program p = [&] {
        ProgramBuilder bb("chain");
        auto stride = bb.here();
        bb.nop();
        bb.ld(2, 1);
        bb.ld(3, 4, 2, 8);
        bb.jmp(stride);
        return bb.build();
    }();

    for (unsigned j = 0; j < 8; j++)
        image.write64(0x1000 + j * 0x100, j * 3);

    auto lanes = makeLanes(8, 1, [&](unsigned j, CpuState &ctx) {
        ctx.regs[1] = 0x1000 + j * 0x100;
        ctx.regs[4] = 0x800000;
    });

    LaneExecutor ex(cfg.runahead, p, image, hier);
    LaneRunStats st = ex.run(lanes, /*stride_pc=*/0, /*flr=*/0,
                             false, true, 10);
    // Two loads per lane.
    EXPECT_EQ(st.prefetches, 16u);
    EXPECT_EQ(st.divergences, 0u);
    for (auto &l : lanes)
        EXPECT_TRUE(l.done);
    EXPECT_GT(st.end_time, 10u);
}

TEST_F(LaneExecTest, DependentLoadWaitsForLaneFill)
{
    ProgramBuilder bb("dep");
    auto stride = bb.here();
    bb.nop();
    bb.ld(2, 1);                   // miss: ~242 cycles
    bb.ld(3, 4, 2, 8);             // must issue after the fill
    bb.jmp(stride);
    Program p = bb.build();

    auto lanes = makeLanes(1, 1, [&](unsigned, CpuState &ctx) {
        ctx.regs[1] = 0x50000;
        ctx.regs[4] = 0x900000;
    });
    LaneExecutor ex(cfg.runahead, p, image, hier);
    LaneRunStats st = ex.run(lanes, 0, 0, false, true, 0);
    // end_time covers the dependent access issued after ~242 cycles.
    EXPECT_GT(st.end_time, 242u);
}

TEST_F(LaneExecTest, VrModeInvalidatesDivergentLanes)
{
    // Branch on a per-lane value: half the lanes diverge.
    ProgramBuilder bb("div");
    auto stride = bb.here();
    bb.nop();                       // pc 0
    auto path_b = bb.makeLabel();
    bb.br(2, path_b);               // pc 1: diverges on r2
    bb.addi(3, 3, 1);               // pc 2: path A
    bb.jmp(stride);                 // pc 3
    bb.bind(path_b);
    bb.addi(4, 4, 1);               // pc 4: path B
    bb.jmp(stride);                 // pc 5
    Program p = bb.build();

    auto lanes = makeLanes(8, 1, [&](unsigned j, CpuState &ctx) {
        ctx.regs[2] = j % 2;
    });
    LaneExecutor ex(cfg.runahead, p, image, hier);
    LaneRunStats st = ex.run(lanes, 0, 0, false, /*reconverge=*/false,
                             0);
    EXPECT_EQ(st.divergences, 1u);
    EXPECT_EQ(st.invalidated, 4u);   // the non-leading half is killed
}

TEST_F(LaneExecTest, DvrModeExecutesBothPaths)
{
    // Same divergent program, but each path loads different data:
    // with reconvergence both paths' loads must issue.
    ProgramBuilder bb("div2");
    auto stride = bb.here();
    bb.nop();
    auto path_b = bb.makeLabel();
    bb.br(2, path_b);
    bb.ld(3, 5);                    // path A load
    bb.jmp(stride);
    bb.bind(path_b);
    bb.ld(4, 6);                    // path B load
    bb.jmp(stride);
    Program p = bb.build();

    auto lanes = makeLanes(8, 1, [&](unsigned j, CpuState &ctx) {
        ctx.regs[2] = j % 2;
        ctx.regs[5] = 0x111000 + j * 64;
        ctx.regs[6] = 0x222000 + j * 64;
    });
    LaneExecutor ex(cfg.runahead, p, image, hier);
    LaneRunStats st = ex.run(lanes, 0, 0, false, /*reconverge=*/true,
                             0);
    EXPECT_EQ(st.divergences, 1u);
    EXPECT_EQ(st.invalidated, 0u);
    EXPECT_EQ(st.prefetches, 8u);   // every lane issued its load
    for (auto &l : lanes)
        EXPECT_TRUE(l.done);
}

TEST_F(LaneExecTest, StopAtFlrEndsLaneAfterFinalLoad)
{
    ProgramBuilder bb("flr");
    auto stride = bb.here();
    bb.nop();                       // pc 0
    bb.ld(2, 1);                    // pc 1  <- FLR
    bb.addi(3, 3, 1);               // pc 2 (should not execute)
    bb.jmp(stride);
    Program p = bb.build();

    auto lanes = makeLanes(4, 1, [&](unsigned j, CpuState &ctx) {
        ctx.regs[1] = 0x3000 + j * 64;
    });
    LaneExecutor ex(cfg.runahead, p, image, hier);
    LaneRunStats st = ex.run(lanes, 0, /*flr=*/1, /*stop_at_flr=*/true,
                             true, 0);
    EXPECT_EQ(st.prefetches, 4u);
    EXPECT_EQ(st.insts, 4u);        // exactly the FLR load per lane
}

TEST_F(LaneExecTest, TimeoutTerminatesRunawayLanes)
{
    // An infinite loop that never returns to the stride pc.
    ProgramBuilder bb("inf");
    bb.nop();                        // pc 0 (stride pc, never reached)
    auto spin = bb.here();
    bb.addi(1, 1, 1);
    bb.jmp(spin);
    Program p = bb.build();

    auto lanes = makeLanes(2, 1, [&](unsigned, CpuState &) {});
    LaneExecutor ex(cfg.runahead, p, image, hier);
    LaneRunStats st = ex.run(lanes, 0, 0, false, true, 0);
    EXPECT_GT(st.insts, 0u);
    for (auto &l : lanes) {
        EXPECT_TRUE(l.done);
        EXPECT_LE(l.insts, cfg.runahead.subthread_timeout + 1);
    }
}

TEST_F(LaneExecTest, HaltTerminatesLane)
{
    ProgramBuilder bb("halt");
    bb.nop();
    bb.halt();
    Program p = bb.build();
    auto lanes = makeLanes(3, 1, [&](unsigned, CpuState &) {});
    LaneExecutor ex(cfg.runahead, p, image, hier);
    ex.run(lanes, 0, 0, false, true, 0);
    for (auto &l : lanes)
        EXPECT_TRUE(l.done);
}

TEST_F(LaneExecTest, WildPcKillsGroupSafely)
{
    // Jump past the end of the program: lanes must terminate without
    // panicking (speculative wild path).
    Program p = [&] {
        ProgramBuilder b2("wild");
        b2.nop();
        auto end = b2.makeLabel();
        b2.jmp(end);
        b2.nop();
        b2.bind(end);
        b2.nop();   // pc 3: then falls off the end
        return b2.build();
    }();
    auto lanes = makeLanes(2, 1, [&](unsigned, CpuState &) {});
    LaneExecutor ex(cfg.runahead, p, image, hier);
    EXPECT_NO_THROW(ex.run(lanes, 0, 0, false, true, 0));
}

TEST_F(LaneExecTest, SpeculativeStoresDoNotTouchMemory)
{
    ProgramBuilder bb("st");
    auto stride = bb.here();
    bb.nop();
    bb.movi(2, 0x7777);
    bb.st(2, 3);
    bb.jmp(stride);
    Program p = bb.build();
    auto lanes = makeLanes(1, 1, [&](unsigned, CpuState &ctx) {
        ctx.regs[3] = 0x123000;
    });
    LaneExecutor ex(cfg.runahead, p, image, hier);
    ex.run(lanes, 0, 0, false, true, 0);
    EXPECT_EQ(image.read64(0x123000), 0u);
}

TEST_F(LaneExecTest, TooManyLanesPanics)
{
    ProgramBuilder bb("x");
    bb.nop();
    Program p = bb.build();
    std::vector<Lane> lanes(MAX_LANES + 1);
    LaneExecutor ex(cfg.runahead, p, image, hier);
    EXPECT_THROW(ex.run(lanes, 0, 0, false, true, 0), PanicError);
}

} // namespace
} // namespace vrsim

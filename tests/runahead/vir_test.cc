/**
 * @file
 * Tests for the Vector Issue Register pacing model (paper §4.2.2).
 */

#include <gtest/gtest.h>

#include "runahead/vir.hh"

namespace vrsim
{
namespace
{

RunaheadConfig
cfg()
{
    return RunaheadConfig{};   // 16 x 8 lanes
}

TEST(VirTest, ScalarInstructionTakesOneSlot)
{
    VectorIssueRegister vir(cfg());
    vir.start(100);
    LaneMask m;
    for (int i = 0; i < 128; i++)
        m.set(i);
    Cycle t = vir.issue(m, false);
    EXPECT_EQ(t, 100u);
    EXPECT_EQ(vir.now(), 101u);
}

TEST(VirTest, FullVectorTakesSixteenCopies)
{
    VectorIssueRegister vir(cfg());
    vir.start(0);
    LaneMask m;
    for (int i = 0; i < 128; i++)
        m.set(i);
    Cycle t = vir.issue(m, true);
    EXPECT_EQ(t, 0u);
    EXPECT_EQ(vir.now(), 16u);   // 128 lanes / 8 per copy
    EXPECT_EQ(vir.issuedCopies(), 16u);
}

TEST(VirTest, PartialMaskRoundsUp)
{
    VectorIssueRegister vir(cfg());
    vir.start(0);
    LaneMask m;
    for (int i = 0; i < 20; i++)
        m.set(i);
    vir.issue(m, true);
    EXPECT_EQ(vir.now(), 3u);   // ceil(20 / 8)
}

TEST(VirTest, CopyOfMapsLanesToCopies)
{
    VectorIssueRegister vir(cfg());
    LaneMask m;
    for (int i = 0; i < 128; i++)
        m.set(i);
    EXPECT_EQ(vir.copyOf(0, m), 0u);
    EXPECT_EQ(vir.copyOf(7, m), 0u);
    EXPECT_EQ(vir.copyOf(8, m), 1u);
    EXPECT_EQ(vir.copyOf(127, m), 15u);
}

TEST(VirTest, CopyOfCountsOnlyActiveLanes)
{
    VectorIssueRegister vir(cfg());
    LaneMask m;
    // Only even lanes active: lane 16 is the 9th active lane.
    for (int i = 0; i < 128; i += 2)
        m.set(i);
    EXPECT_EQ(vir.copyOf(16, m), 1u);
    EXPECT_EQ(vir.copyOf(14, m), 0u);
}

TEST(VirTest, WaitUntilOnlyMovesForward)
{
    VectorIssueRegister vir(cfg());
    vir.start(50);
    vir.waitUntil(40);
    EXPECT_EQ(vir.now(), 50u);
    vir.waitUntil(70);
    EXPECT_EQ(vir.now(), 70u);
}

TEST(VirTest, EmptyMaskStillAdvancesOneSlot)
{
    VectorIssueRegister vir(cfg());
    vir.start(0);
    LaneMask empty;
    vir.issue(empty, true);
    EXPECT_EQ(vir.now(), 1u);
}

} // namespace
} // namespace vrsim

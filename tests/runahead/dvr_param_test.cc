/**
 * @file
 * Parameterized sweeps of the DVR engine: feature combinations
 * (Fig. 8's factors) and vector widths, each checked for internal
 * consistency and sane behaviour on a representative kernel.
 */

#include <gtest/gtest.h>

#include "driver/simulation.hh"

namespace vrsim
{
namespace
{

struct FeatureCase
{
    Technique technique;
    bool expects_discovery;
    bool expects_nested;
    const char *name;
};

class DvrFeatureSweep : public ::testing::TestWithParam<FeatureCase>
{
};

TEST_P(DvrFeatureSweep, BehavesPerFeatureSet)
{
    const FeatureCase &fc = GetParam();
    GraphScale g{1 << 12, 8, 42};
    HpcDbScale h{1 << 13, 7};
    SimResult r = runSimulation("bfs/KR", fc.technique,
                                SystemConfig::benchScale(), g, h,
                                40000);
    ASSERT_TRUE(r.dvr.has_value());
    EXPECT_GT(r.dvr->spawns, 0u);
    EXPECT_GT(r.dvr->prefetches, 0u);
    if (fc.expects_discovery) {
        EXPECT_GT(r.dvr->discoveries, 0u);
    } else {
        EXPECT_EQ(r.dvr->discoveries, 0u);
    }
    if (!fc.expects_nested) {
        EXPECT_EQ(r.dvr->nested_spawns, 0u);
    }
    // DVR variants never use delayed termination.
    EXPECT_EQ(r.core.runahead_commit_stall, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Fig8Factors, DvrFeatureSweep,
    ::testing::Values(
        FeatureCase{Technique::DvrOffload, false, false, "offload"},
        FeatureCase{Technique::DvrDiscovery, true, false, "discovery"},
        FeatureCase{Technique::Dvr, true, true, "full"}),
    [](const auto &info) { return std::string(info.param.name); });

class VectorWidthSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(VectorWidthSweep, LanesNeverExceedConfiguredWidth)
{
    const uint32_t lanes = GetParam();
    SystemConfig cfg = SystemConfig::benchScale();
    cfg.runahead.vector_regs = lanes / cfg.runahead.lanes_per_vector;
    GraphScale g{1 << 12, 8, 42};
    HpcDbScale h{1 << 14, 7};
    SimResult r = runSimulation("camel", Technique::Dvr, cfg, g, h,
                                30000);
    ASSERT_TRUE(r.dvr.has_value());
    ASSERT_GT(r.dvr->spawns, 0u);
    EXPECT_LE(r.dvr->meanLanes(), double(lanes) + 0.01);
    // Hardware budget scales with the configured width.
    EXPECT_EQ(cfg.runahead.max_lanes(), lanes);
}

INSTANTIATE_TEST_SUITE_P(Widths, VectorWidthSweep,
                         ::testing::Values(32u, 64u, 128u, 256u));

class DiscoveryCapSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(DiscoveryCapSweep, TightCapsAbortCleanly)
{
    // With a tiny discovery-instruction cap, Discovery Mode must
    // abort (not crash, not spawn garbage) on kernels whose loop
    // body exceeds it.
    SystemConfig cfg = SystemConfig::benchScale();
    cfg.runahead.discovery_max_insts = GetParam();
    GraphScale g{1 << 12, 8, 42};
    HpcDbScale h{1 << 13, 7};
    SimResult r = runSimulation("camel", Technique::Dvr, cfg, g, h,
                                30000);
    ASSERT_TRUE(r.dvr.has_value());
    if (GetParam() < 30) {
        // camel's loop body is ~33 µops: nothing can complete.
        EXPECT_EQ(r.dvr->spawns, 0u);
        EXPECT_GT(r.dvr->discovery_aborts, 0u);
    } else {
        EXPECT_GT(r.dvr->spawns, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Caps, DiscoveryCapSweep,
                         ::testing::Values(8u, 16u, 64u, 200u));

} // namespace
} // namespace vrsim

/**
 * @file
 * Unit tests of the per-cell supervision policy: protocol success is
 * byte-identical to thread execution, process-grade deaths become
 * Crashed/TimedOut rows, retries fire only for process-grade deaths,
 * and the chaos policy is a deterministic pure function.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <set>

#include "driver/repro.hh"
#include "rt/cell_supervisor.hh"

namespace vrsim
{
namespace
{

// ---- ChaosPolicy --------------------------------------------------

TEST(ChaosPolicyTest, ParsesSeedAndRate)
{
    ChaosPolicy p = ChaosPolicy::parse("7:0.3");
    EXPECT_EQ(p.seed(), 7u);
    EXPECT_DOUBLE_EQ(p.rate(), 0.3);
    EXPECT_TRUE(p.enabled());
    EXPECT_FALSE(ChaosPolicy().enabled());
}

TEST(ChaosPolicyTest, RejectsMalformedSpecs)
{
    EXPECT_THROW(ChaosPolicy::parse("7"), FatalError);
    EXPECT_THROW(ChaosPolicy::parse(":0.3"), FatalError);
    EXPECT_THROW(ChaosPolicy::parse("7:"), FatalError);
    EXPECT_THROW(ChaosPolicy::parse("x:0.3"), FatalError);
    EXPECT_THROW(ChaosPolicy::parse("7:1.5"), FatalError);
    EXPECT_THROW(ChaosPolicy::parse("7:-0.1"), FatalError);
}

TEST(ChaosPolicyTest, DecisionsAreDeterministic)
{
    ChaosPolicy p(42, 0.5);
    for (unsigned attempt = 0; attempt < 4; attempt++) {
        auto a = p.decide("camel:OoO", attempt);
        auto b = p.decide("camel:OoO", attempt);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) {
            EXPECT_EQ(a->kind, b->kind);
            EXPECT_EQ(a->arg, b->arg);
        }
    }
}

TEST(ChaosPolicyTest, RateOneAlwaysFaultsAndCoversEveryKind)
{
    ChaosPolicy p(1, 1.0);
    std::set<InjectKind> kinds;
    for (int i = 0; i < 64; i++) {
        auto f = p.decide("pt" + std::to_string(i), 0);
        ASSERT_TRUE(f.has_value());
        EXPECT_TRUE(injectKindIsProcessGrade(f->kind));
        kinds.insert(f->kind);
    }
    // All five process-grade classes rotate in.
    EXPECT_EQ(kinds.size(), 5u);
}

TEST(ChaosPolicyTest, AttemptsDrawIndependently)
{
    // With rate 0.5, a cell whose attempt 0 faults should somewhere
    // have a clean attempt 1 (the retried-then-succeeded path).
    ChaosPolicy p(3, 0.5);
    bool saw_transient = false;
    for (int i = 0; i < 256 && !saw_transient; i++) {
        std::string id = "pt" + std::to_string(i);
        saw_transient = p.decide(id, 0).has_value() &&
                        !p.decide(id, 1).has_value();
    }
    EXPECT_TRUE(saw_transient);
}

// ---- CellSupervisor -----------------------------------------------

RunPoint
smallPoint()
{
    GraphScale g;
    g.nodes = 1 << 10;
    g.avg_degree = 8;
    HpcDbScale h;
    h.elements = 1 << 10;
    RunPlan plan(SystemConfig::benchScale());
    plan.scale(g, h).roi(2000).warmup(200);
    plan.add({"camel"}, {Technique::OoO});
    return plan.points().at(0);
}

TEST(CellSupervisorTest, SuccessRowIsByteIdenticalToThreadExecution)
{
    RunPoint p = smallPoint();
    WorkloadCache cache;
    SimResult thread_row = SweepRunner::runPoint(p, cache);

    CellOutcome cell = CellSupervisor(CellOptions{}, cache).runCell(p);
    EXPECT_EQ(cell.attempts, 1u);
    EXPECT_FALSE(cell.retried());
    EXPECT_EQ(resultToJson(cell.result), resultToJson(thread_row));
}

TEST(CellSupervisorTest, SignalDeathBecomesCrashedWithSignal)
{
    RunPoint p = smallPoint();
    p.inject_fail = true;
    p.inject_kind = InjectKind::KillSelf;
    p.inject_arg = SIGKILL;

    WorkloadCache cache;
    CellOutcome cell = CellSupervisor(CellOptions{}, cache).runCell(p);
    EXPECT_EQ(cell.result.status, SimStatus::Crashed);
    EXPECT_EQ(cell.result.term_signal, SIGKILL);
    EXPECT_EQ(cell.attempts, 1u);
    EXPECT_NE(cell.result.status_message.find("attempt 1/1"),
              std::string::npos);
}

TEST(CellSupervisorTest, BareExitBecomesCrashedWithoutSignal)
{
    RunPoint p = smallPoint();
    p.inject_fail = true;
    p.inject_kind = InjectKind::ExitCode;
    p.inject_arg = 7;

    WorkloadCache cache;
    CellOutcome cell = CellSupervisor(CellOptions{}, cache).runCell(p);
    EXPECT_EQ(cell.result.status, SimStatus::Crashed);
    EXPECT_EQ(cell.result.term_signal, 0);
    EXPECT_NE(cell.result.status_message.find("exit code 7"),
              std::string::npos);
}

TEST(CellSupervisorTest, RetryExhaustionCountsEveryAttempt)
{
    RunPoint p = smallPoint();
    p.inject_fail = true;
    p.inject_kind = InjectKind::KillSelf;
    p.inject_arg = SIGKILL;

    CellOptions opts;
    opts.retries = 1;
    opts.backoff_ms = 1;
    WorkloadCache cache;
    CellOutcome cell = CellSupervisor(opts, cache).runCell(p);
    EXPECT_EQ(cell.attempts, 2u);
    EXPECT_TRUE(cell.retried());
    EXPECT_GE(cell.backoff_ms_total, 1u);
    EXPECT_EQ(cell.result.status, SimStatus::Crashed);
    EXPECT_NE(cell.result.status_message.find("attempt 2/2"),
              std::string::npos);
}

TEST(CellSupervisorTest, TransientFaultRetriesIntoCleanSuccess)
{
    RunPoint p = smallPoint();
    WorkloadCache cache;
    SimResult thread_row = SweepRunner::runPoint(p, cache);

    RunPoint faulty = p;
    faulty.inject_fail = true;
    faulty.inject_kind = InjectKind::KillSelf;
    faulty.inject_arg = SIGKILL;

    CellOptions opts;
    opts.retries = 1;
    opts.backoff_ms = 1;
    opts.inject_attempts = 1;  // fault fires on attempt 0 only
    CellOutcome cell = CellSupervisor(opts, cache).runCell(faulty);
    EXPECT_EQ(cell.attempts, 2u);
    EXPECT_TRUE(cell.retried());
    // A retried-then-succeeded cell is indistinguishable from a
    // first-try success.
    EXPECT_EQ(resultToJson(cell.result), resultToJson(thread_row));
    EXPECT_FALSE(cell.as_run.inject_fail);
}

TEST(CellSupervisorTest, DeadlineBecomesTimedOut)
{
    RunPoint p = smallPoint();
    p.inject_fail = true;
    p.inject_kind = InjectKind::Spin;

    CellOptions opts;
    opts.timeout_ms = 300;
    WorkloadCache cache;
    CellOutcome cell = CellSupervisor(opts, cache).runCell(p);
    EXPECT_EQ(cell.result.status, SimStatus::TimedOut);
    EXPECT_EQ(cell.attempts, 1u);
    EXPECT_NE(cell.result.status_message.find("300 ms"),
              std::string::npos);
}

TEST(CellSupervisorTest, GuardedFailuresAreResultsNotRetries)
{
    // An in-taxonomy panic completes the result protocol inside the
    // child, so retries must NOT fire: a rejected configuration is
    // just as rejected on attempt 2.
    RunPoint p = smallPoint();
    p.inject_fail = true;
    p.inject_kind = InjectKind::Panic;

    CellOptions opts;
    opts.retries = 2;
    opts.backoff_ms = 1;
    WorkloadCache cache;
    CellOutcome cell = CellSupervisor(opts, cache).runCell(p);
    EXPECT_EQ(cell.attempts, 1u);
    EXPECT_FALSE(cell.retried());
    EXPECT_EQ(cell.result.status, SimStatus::Panic);
    EXPECT_EQ(cell.backoff_ms_total, 0u);
}

TEST(CellSupervisorTest, ChaosMutationIsReportedInAsRun)
{
    // Rate 1.0: every attempt faults, so the cell permanently fails
    // and as_run must carry the fault the child actually executed
    // (what a repro bundle needs for --replay).
    RunPoint p = smallPoint();
    CellOptions opts;
    opts.chaos = ChaosPolicy(1, 1.0);
    opts.timeout_ms = 2'000;  // bound the Spin draw
    WorkloadCache cache;
    CellOutcome cell = CellSupervisor(opts, cache).runCell(p);
    EXPECT_TRUE(cell.as_run.inject_fail);
    EXPECT_TRUE(injectKindIsProcessGrade(cell.as_run.inject_kind));
    EXPECT_TRUE(cell.result.status == SimStatus::Crashed ||
                cell.result.status == SimStatus::TimedOut);
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Unit tests of the fork/pipe/waitpid execution primitive: protocol
 * success, exit-code and signal decoding, wall-clock deadlines,
 * stderr capture with the flood cap, and resource caps.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>

#include <unistd.h>

#include "rt/subprocess.hh"

// ASan reserves terabytes of virtual address space, so RLIMIT_AS
// tests only run in unsanitized builds.
#if defined(__SANITIZE_ADDRESS__)
#define VRSIM_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define VRSIM_ASAN 1
#endif
#endif
#ifndef VRSIM_ASAN
#define VRSIM_ASAN 0
#endif

namespace vrsim
{
namespace
{

TEST(SubprocessTest, ProtocolSuccessTransportsTheLine)
{
    ChildOutcome out = Subprocess::run(
        [](int fd) {
            return Subprocess::writeAll(fd, "hello result\n") ? 0 : 1;
        },
        ResourceCaps{}, 5'000);
    EXPECT_TRUE(out.protocol_ok);
    EXPECT_TRUE(out.status.exited);
    EXPECT_EQ(out.status.code, 0);
    EXPECT_FALSE(out.timed_out);
    EXPECT_EQ(out.result_line, "hello result\n");
    EXPECT_GT(out.rss_peak_kb, 0u);
}

TEST(SubprocessTest, NonzeroExitIsNotProtocolOk)
{
    ChildOutcome out = Subprocess::run(
        [](int) { return 7; }, ResourceCaps{}, 5'000);
    EXPECT_FALSE(out.protocol_ok);
    EXPECT_TRUE(out.status.exited);
    EXPECT_EQ(out.status.code, 7);
    EXPECT_EQ(out.status.describe(), "exit code 7");
}

TEST(SubprocessTest, MissingResultLineIsNotProtocolOk)
{
    ChildOutcome out = Subprocess::run(
        [](int) { return 0; }, ResourceCaps{}, 5'000);
    EXPECT_FALSE(out.protocol_ok);
    EXPECT_TRUE(out.result_line.empty());
}

TEST(SubprocessTest, SignalDeathIsDecoded)
{
    // SIGKILL cannot be intercepted by sanitizer runtimes, so this
    // assertion is stable under every build mode.
    ChildOutcome out = Subprocess::run(
        [](int) -> int {
            raise(SIGKILL);
            return 0;
        },
        ResourceCaps{}, 5'000);
    EXPECT_FALSE(out.protocol_ok);
    EXPECT_FALSE(out.status.exited);
    EXPECT_EQ(out.status.signal, SIGKILL);
    EXPECT_EQ(out.status.describe(), "signal 9 (SIGKILL)");
}

TEST(SubprocessTest, DeadlineKillsASpinningChild)
{
    ChildOutcome out = Subprocess::run(
        [](int) -> int {
            volatile uint64_t burn = 0;
            for (;;)
                burn = burn + 1;
        },
        ResourceCaps{}, 300);
    EXPECT_TRUE(out.timed_out);
    EXPECT_FALSE(out.protocol_ok);
    EXPECT_FALSE(out.status.exited);
    EXPECT_EQ(out.status.signal, SIGKILL);
}

TEST(SubprocessTest, StoppedChildIsKilledEvenWithoutDeadline)
{
    // A stopped child holds its pipes open while consuming no CPU;
    // the bounded poll slice plus the liveness sweep must SIGKILL it
    // instead of waiting forever (deadline 0 = none).
    ChildOutcome out = Subprocess::run(
        [](int) -> int {
            raise(SIGSTOP);
            return 0;
        },
        ResourceCaps{}, 0);
    EXPECT_FALSE(out.protocol_ok);
    EXPECT_FALSE(out.timed_out);
    EXPECT_FALSE(out.status.exited);
    EXPECT_EQ(out.status.signal, SIGKILL);
}

TEST(SubprocessTest, HugeDeadlineDoesNotOverflowThePollTimeout)
{
    // A deadline beyond INT_MAX ms must not wrap into poll's
    // "wait forever" -1; a healthy child still completes promptly.
    ChildOutcome out = Subprocess::run(
        [](int fd) {
            return Subprocess::writeAll(fd, "ok\n") ? 0 : 1;
        },
        ResourceCaps{}, uint64_t(1) << 40);
    EXPECT_TRUE(out.protocol_ok);
    EXPECT_EQ(out.result_line, "ok\n");
}

TEST(SubprocessTest, ResultFloodIsCappedAndFailsProtocol)
{
    ChildOutcome out = Subprocess::run(
        [](int fd) {
            std::string big(64 * 1024, 'r');
            size_t target = Subprocess::kResultCap + (1u << 20);
            for (size_t sent = 0; sent < target; sent += big.size())
                if (!Subprocess::writeAll(fd, big))
                    return 1;
            return Subprocess::writeAll(fd, "\n") ? 0 : 1;
        },
        ResourceCaps{}, 30'000);
    EXPECT_FALSE(out.protocol_ok);
    EXPECT_LE(out.result_line.size(), Subprocess::kResultCap);
}

TEST(SubprocessTest, ReapFailureDescribesItself)
{
    // A default ExitStatus (reap never succeeded) must not read as a
    // "signal 0" death.
    ExitStatus st;
    EXPECT_NE(st.describe().find("reap failed"), std::string::npos);
    EXPECT_EQ(st.describe().find("signal 0"), std::string::npos);
}

TEST(SubprocessTest, ChildBodyExceptionBecomesExitCode)
{
    ChildOutcome out = Subprocess::run(
        [](int) -> int { throw std::runtime_error("boom"); },
        ResourceCaps{}, 5'000);
    EXPECT_FALSE(out.protocol_ok);
    EXPECT_TRUE(out.status.exited);
    EXPECT_EQ(out.status.code, 81);
    EXPECT_NE(out.stderr_text.find("boom"), std::string::npos);
}

TEST(SubprocessTest, StderrIsCapturedAndCapped)
{
    ChildOutcome out = Subprocess::run(
        [](int fd) {
            std::fprintf(stderr, "diagnostic line\n");
            // Flood well past the cap.
            std::string big(8 * 1024, 'x');
            for (int i = 0; i < 32; i++)
                std::fprintf(stderr, "%s\n", big.c_str());
            return Subprocess::writeAll(fd, "done\n") ? 0 : 1;
        },
        ResourceCaps{}, 10'000);
    EXPECT_TRUE(out.protocol_ok);
    EXPECT_NE(out.stderr_text.find("diagnostic line"),
              std::string::npos);
    EXPECT_LE(out.stderr_text.size(), Subprocess::kStderrCap);
    EXPECT_GT(out.stderr_dropped, 0u);
}

TEST(SubprocessTest, CpuCapKillsASpinningChild)
{
    ResourceCaps caps;
    caps.cpu_seconds = 1;
    // The wall deadline is only a hang backstop here: accruing one
    // CPU-second can take far longer than a second of wall time when
    // the full test suite oversubscribes the host, and a deadline
    // kill would flip timed_out and fail the assertions below.
    ChildOutcome out = Subprocess::run(
        [](int) -> int {
            volatile uint64_t burn = 0;
            for (;;)
                burn = burn + 1;
        },
        caps, 120'000);
    EXPECT_FALSE(out.protocol_ok);
    EXPECT_FALSE(out.timed_out);  // RLIMIT_CPU fired, not the deadline
    EXPECT_FALSE(out.status.exited);
    // The kernel delivers SIGXCPU at the soft limit (default action
    // terminates); SIGKILL at the hard limit is the backstop.
    EXPECT_TRUE(out.status.signal == SIGXCPU ||
                out.status.signal == SIGKILL)
        << out.status.describe();
}

#if !VRSIM_ASAN
TEST(SubprocessTest, MemCapStopsARunawayAllocation)
{
    ResourceCaps caps;
    caps.mem_bytes = 64ull << 20;
    ChildOutcome out = Subprocess::run(
        [](int) -> int {
            constexpr size_t kChunk = 8u << 20;
            for (;;) {
                char *m = new (std::nothrow) char[kChunk];
                if (!m)
                    return 42;  // allocation refused: the cap worked
                std::memset(m, 0xA5, kChunk);
            }
        },
        caps, 30'000);
    EXPECT_FALSE(out.protocol_ok);
    EXPECT_TRUE(out.status.exited);
    EXPECT_EQ(out.status.code, 42);
}
#endif

} // namespace
} // namespace vrsim

/**
 * @file
 * Tests for the workload build-artifact cache: build-once semantics
 * (including under concurrent first requests), instantiation isolation
 * and failure propagation.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "workloads/workload_cache.hh"

namespace vrsim
{
namespace
{

HpcDbScale
smallScale()
{
    HpcDbScale h;
    h.elements = 1 << 10;
    return h;
}

TEST(WorkloadCacheTest, ArtifactBuiltOnceAndShared)
{
    WorkloadCache cache;
    auto a = cache.artifact("camel", {}, smallScale());
    auto b = cache.artifact("camel", {}, smallScale());
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(cache.builds(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(WorkloadCacheTest, DistinctScalesAreDistinctArtifacts)
{
    WorkloadCache cache;
    HpcDbScale big = smallScale();
    big.elements *= 2;
    auto a = cache.artifact("camel", {}, smallScale());
    auto b = cache.artifact("camel", {}, big);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(cache.builds(), 2u);
}

TEST(WorkloadCacheTest, KeyNamesEveryScaleKnob)
{
    GraphScale g;
    g.nodes = 128;
    g.avg_degree = 4;
    HpcDbScale h;
    h.elements = 256;
    std::string k = WorkloadCache::key("bfs/KR", g, h);
    EXPECT_NE(k.find("bfs/KR"), std::string::npos);
    EXPECT_NE(k.find("n=128"), std::string::npos);
    EXPECT_NE(k.find("d=4"), std::string::npos);
    EXPECT_NE(k.find("e=256"), std::string::npos);
    // Different seeds must not alias.
    GraphScale g2 = g;
    g2.seed += 1;
    EXPECT_NE(WorkloadCache::key("bfs/KR", g2, h), k);
}

TEST(WorkloadCacheTest, ConcurrentFirstRequestsBuildOnce)
{
    WorkloadCache cache;
    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const Workload>> got(kThreads);
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; t++)
        pool.emplace_back([&, t] {
            got[t] = cache.artifact("kangaroo", {}, smallScale());
        });
    for (auto &th : pool)
        th.join();
    for (int t = 1; t < kThreads; t++)
        EXPECT_EQ(got[t].get(), got[0].get());
    EXPECT_EQ(cache.builds(), 1u);
}

TEST(WorkloadCacheTest, InstantiateIsIsolatedFromArtifact)
{
    WorkloadCache cache;
    auto pristine = cache.artifact("camel", {}, smallScale());
    Workload run = cache.instantiate("camel", {}, smallScale());

    // A store during one "run" must not leak into the artifact or
    // into a sibling instantiation.
    uint64_t addr = 0x100000;
    uint64_t before = pristine->image.read64(addr);
    run.image.write64(addr, before + 12345);

    EXPECT_EQ(pristine->image.read64(addr), before);
    Workload sibling = cache.instantiate("camel", {}, smallScale());
    EXPECT_EQ(sibling.image.read64(addr), before);
    EXPECT_EQ(cache.builds(), 1u);
}

TEST(WorkloadCacheTest, UnknownSpecThrowsAndIsNotCached)
{
    WorkloadCache cache;
    EXPECT_THROW(cache.artifact("no-such-benchmark"), FatalError);
    // The failed slot is forgotten: a retry re-attempts the build
    // rather than replaying a stale error, and nothing is resident.
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_THROW(cache.artifact("no-such-benchmark"), FatalError);
    EXPECT_EQ(cache.builds(), 0u);
}

TEST(WorkloadCacheTest, ClearDropsArtifacts)
{
    WorkloadCache cache;
    cache.artifact("camel", {}, smallScale());
    EXPECT_EQ(cache.size(), 1u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    cache.artifact("camel", {}, smallScale());
    EXPECT_EQ(cache.builds(), 2u);
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Parameterized sweep over every benchmark-input spec of the paper's
 * suite: each must build, execute on the timing core without errors,
 * and expose the memory behaviour its family is defined by.
 */

#include <gtest/gtest.h>

#include "driver/simulation.hh"

namespace vrsim
{
namespace
{

class EverySpec : public ::testing::TestWithParam<std::string>
{
  protected:
    GraphScale
    g() const
    {
        GraphScale s;
        s.nodes = 1 << 11;
        s.avg_degree = 8;
        return s;
    }

    HpcDbScale
    h() const
    {
        HpcDbScale s;
        s.elements = 1 << 12;
        return s;
    }
};

TEST_P(EverySpec, RunsOnBaselineWithSaneStats)
{
    SimResult r = runSimulation(GetParam(), Technique::OoO,
                                SystemConfig::benchScale(), g(), h(),
                                12000);
    EXPECT_GT(r.core.instructions, 2000u);
    EXPECT_GT(r.ipc(), 0.0);
    EXPECT_LE(r.ipc(), 5.0);
    EXPECT_GT(r.core.loads, 100u);
    EXPECT_GT(r.mem.demand_accesses, 100u);
    // Conservation: level counts partition demand accesses.
    EXPECT_EQ(r.mem.demand_l1_hits + r.mem.demand_l2_hits +
                  r.mem.demand_l3_hits + r.mem.demand_mem,
              r.mem.demand_accesses);
}

TEST_P(EverySpec, DvrNeverChangesArchitecturalState)
{
    // The runahead subthread is speculative and transient: after the
    // same dynamic-instruction budget, the memory image must be
    // bit-identical with and without DVR.
    SystemConfig cfg = SystemConfig::benchScale();
    Workload a = makeWorkload(GetParam(), g(), h());
    Workload b = makeWorkload(GetParam(), g(), h());
    runWorkload(a, Technique::OoO, cfg, 15000);
    runWorkload(b, Technique::Dvr, cfg, 15000);

    // Sample memory around every base register the workload uses.
    for (unsigned r = 0; r < NUM_ARCH_REGS; r++) {
        uint64_t base = a.init.regs[r];
        if (base < 0x10000)
            continue;   // not an address
        for (uint64_t off = 0; off < 4096; off += 56) {
            ASSERT_EQ(a.image.read64(base + off),
                      b.image.read64(base + off))
                << "r" << r << " + " << off;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    PaperSuite, EverySpec,
    ::testing::ValuesIn(allBenchmarkSpecs()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (char &c : n)
            if (c == '/' || c == '-')
                c = '_';
        return n;
    });

/** Technique sweep on one representative workload. */
class EveryTechnique : public ::testing::TestWithParam<Technique>
{
};

TEST_P(EveryTechnique, CamelStatsAreConsistent)
{
    GraphScale g;
    HpcDbScale h;
    h.elements = 1 << 12;
    SimResult r = runSimulation("camel", GetParam(),
                                SystemConfig::benchScale(), g, h,
                                15000);
    EXPECT_GT(r.core.instructions, 10000u);
    EXPECT_GT(r.core.cycles, 0u);
    // Attribution never exceeds totals.
    EXPECT_LE(r.dramRunahead(), r.mem.dramTotal());
    EXPECT_LE(r.mem.pf_used_l1 + r.mem.pf_used_l2 + r.mem.pf_used_l3,
              r.mem.pf_lines_filled +
                  r.mem.pf_used_inflight + 64);
}

INSTANTIATE_TEST_SUITE_P(
    AllTechniques, EveryTechnique,
    ::testing::Values(Technique::OoO, Technique::Pre, Technique::Imp,
                      Technique::Vr, Technique::DvrOffload,
                      Technique::DvrDiscovery, Technique::Dvr,
                      Technique::Oracle),
    [](const ::testing::TestParamInfo<Technique> &info) {
        std::string n = techniqueName(info.param);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

} // namespace
} // namespace vrsim

/**
 * @file
 * Functional tests for the benchmark kernels: each workload's µop
 * program is executed to completion on the interpreter and its
 * architectural effects are checked against a C++ reference.
 */

#include <gtest/gtest.h>

#include "workloads/workload.hh"

namespace vrsim
{
namespace
{

GraphScale
smallGraph()
{
    GraphScale s;
    s.nodes = 1 << 10;
    s.avg_degree = 8;
    return s;
}

HpcDbScale
smallHpc()
{
    HpcDbScale s;
    s.elements = 1 << 12;
    return s;
}

/** Run a workload's program to completion functionally. */
uint64_t
runToHalt(Workload &w, uint64_t limit = 50'000'000)
{
    CpuState st = w.init;
    uint64_t n = run(w.prog, st, w.image, limit);
    EXPECT_TRUE(st.halted) << w.name << " did not halt";
    return n;
}

TEST(KernelsTest, AllWorkloadsBuildAndHaveWork)
{
    for (const auto &spec : {"bfs/KR", "pr/UR", "cc/TW", "sssp/LJN",
                             "bc/ORK", "camel", "graph500", "hj2",
                             "hj8", "kangaroo", "nas-cg", "nas-is",
                             "randomaccess"}) {
        Workload w = makeWorkload(spec, smallGraph(), smallHpc());
        EXPECT_GT(w.prog.size(), 5u) << spec;
        uint64_t n = runToHalt(w);
        EXPECT_GT(n, 1000u) << spec << " does too little work";
    }
}

TEST(KernelsTest, UnknownSpecFails)
{
    EXPECT_THROW(makeWorkload("nope", smallGraph(), smallHpc()),
                 FatalError);
    EXPECT_THROW(makeWorkload("bfs/XX", smallGraph(), smallHpc()),
                 FatalError);
}

TEST(KernelsTest, BfsVisitsReachableVertices)
{
    GraphScale s = smallGraph();
    Workload w = makeBfs(GraphInput::Kron, s);
    // Copy the roots and graph out of the image before running.
    uint64_t visited_base = w.init.regs[6];
    runToHalt(w);
    // After completion, every worklist entry must be marked visited
    // and at least the seeds are set.
    uint64_t marked = 0;
    for (uint64_t v = 0; v < s.nodes; v++)
        if (w.image.read64(visited_base + v * 8))
            ++marked;
    EXPECT_GE(marked, 8u);
}

TEST(KernelsTest, CamelMatchesReferenceCounts)
{
    HpcDbScale s = smallHpc();
    Workload w = makeCamel(s);
    // Reference: replay the chain on a copy of the initial image.
    MemoryImage ref = w.image;
    const uint64_t n = s.elements;
    uint64_t a = w.init.regs[1], b = w.init.regs[2],
             c = w.init.regs[3];
    for (uint64_t i = 0; i < n; i++) {
        uint64_t x = ref.read64(a + i * 8);
        uint64_t h1 = hashMix64(x) & (n - 1);
        uint64_t y = ref.read64(b + h1 * 8);
        uint64_t h2 = hashMix64(y ^ 1) & (n - 1);
        ref.write64(c + h2 * 8, ref.read64(c + h2 * 8) + 1);
    }
    runToHalt(w);
    for (uint64_t i = 0; i < n; i += 97)
        ASSERT_EQ(w.image.read64(c + i * 8), ref.read64(c + i * 8))
            << "C[" << i << "]";
}

TEST(KernelsTest, NasIsCountsEveryKey)
{
    HpcDbScale s = smallHpc();
    Workload w = makeNasIs(s);
    uint64_t keys = w.init.regs[1];
    uint64_t counts = w.init.regs[2];
    MemoryImage before = w.image;
    runToHalt(w);
    // Sum of counts equals the number of keys.
    uint64_t total = 0;
    for (uint64_t bkt = 0; bkt < s.elements / 2; bkt++)
        total += w.image.read64(counts + bkt * 8);
    EXPECT_EQ(total, s.elements);
    // Spot-check one key's bucket grew.
    uint64_t k0 = before.read64(keys);
    EXPECT_GE(w.image.read64(counts + k0 * 8), 1u);
}

TEST(KernelsTest, RandomAccessXorsTable)
{
    HpcDbScale s = smallHpc();
    Workload w = makeRandomAccess(s);
    uint64_t ran = w.init.regs[1];
    uint64_t table = w.init.regs[2];
    MemoryImage ref = w.image;
    uint64_t tmask = 1;
    while (tmask * 2 <= s.elements)
        tmask *= 2;
    for (uint64_t i = 0; i < s.elements; i++) {
        uint64_t r = ref.read64(ran + i * 8);
        uint64_t idx = r & (tmask - 1);
        ref.write64(table + idx * 8,
                    ref.read64(table + idx * 8) ^ r);
    }
    runToHalt(w);
    for (uint64_t i = 0; i < tmask; i += 61)
        ASSERT_EQ(w.image.read64(table + i * 8),
                  ref.read64(table + i * 8));
}

TEST(KernelsTest, HashJoinProbesFindTheirTuples)
{
    HpcDbScale s = smallHpc();
    Workload w = makeHashJoin(2, s);
    // Every probe key exists in the table, so the sum register must
    // accumulate s.elements payloads; payload = key ^ golden.
    CpuState st = w.init;
    run(w.prog, st, w.image, 100'000'000);
    ASSERT_TRUE(st.halted);
    // Recompute the expected sum.
    uint64_t probes = w.init.regs[1];
    uint64_t expect = 0;
    for (uint64_t i = 0; i < s.elements; i++) {
        uint64_t key = w.image.read64(probes + i * 8);
        expect += key ^ 0x9E3779B97F4A7C15ull;
    }
    EXPECT_EQ(st.regs[12], expect);   // R_SUM
}

TEST(KernelsTest, SsspRelaxesDistances)
{
    GraphScale s = smallGraph();
    Workload w = makeSssp(GraphInput::Ur, s);
    uint64_t dist = w.init.regs[6];
    runToHalt(w, 100'000'000);
    uint64_t finite = 0;
    for (uint64_t v = 0; v < s.nodes; v++)
        if (w.image.read64(dist + v * 8) < UINT32_MAX)
            ++finite;
    // Uniform graph with 8 sources: most vertices reachable.
    EXPECT_GT(finite, s.nodes / 2);
}

TEST(KernelsTest, PageRankWritesRanks)
{
    GraphScale s = smallGraph();
    Workload w = makePr(GraphInput::Kron, s);
    uint64_t rank_new = w.init.regs[15];
    runToHalt(w);
    uint64_t nonzero = 0;
    for (uint64_t v = 0; v < s.nodes; v++)
        if (w.image.readF64(rank_new + v * 8) > 0.0)
            ++nonzero;
    EXPECT_GT(nonzero, s.nodes / 4);
}

TEST(KernelsTest, CcHooksComponents)
{
    GraphScale s = smallGraph();
    Workload w = makeCc(GraphInput::Ur, s);
    uint64_t comp = w.init.regs[6];
    runToHalt(w);
    // After one hooking pass, many vertices point below themselves.
    uint64_t hooked = 0;
    for (uint64_t v = 0; v < s.nodes; v++)
        if (w.image.read64(comp + v * 8) < v)
            ++hooked;
    EXPECT_GT(hooked, s.nodes / 4);
}

TEST(KernelsTest, NasCgComputesSpmv)
{
    HpcDbScale s;
    s.elements = 1 << 10;
    Workload w = makeNasCg(s);
    uint64_t y = w.init.regs[15];
    runToHalt(w, 100'000'000);
    uint64_t nonzero = 0;
    const uint64_t rows = std::max<uint64_t>(4096, s.elements * 2);
    for (uint64_t r = 0; r < rows; r += 7)
        if (w.image.readF64(y + r * 8) != 0.0)
            ++nonzero;
    EXPECT_GT(nonzero, rows / 14);
}

TEST(KernelsTest, SuggestedRoiIsReasonable)
{
    Workload w = makeCamel(smallHpc());
    EXPECT_GE(w.suggested_insts, 100'000u);
}

TEST(KernelsTest, NameListsAreComplete)
{
    EXPECT_EQ(gapKernelNames().size(), 5u);
    EXPECT_EQ(hpcDbNames().size(), 8u);
}

} // namespace
} // namespace vrsim

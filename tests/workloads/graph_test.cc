/**
 * @file
 * Tests for the synthetic graph generators (Table 2 inputs).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "workloads/graph.hh"
#include "sim/logging.hh"

namespace vrsim
{
namespace
{

TEST(GraphTest, CsrInvariants)
{
    GraphScale s;
    s.nodes = 1 << 10;
    for (GraphInput in : {GraphInput::Kron, GraphInput::Ljn,
                          GraphInput::Ork, GraphInput::Tw,
                          GraphInput::Ur}) {
        Graph g = makeGraph(in, s);
        ASSERT_EQ(g.offsets.size(), g.num_nodes + 1);
        EXPECT_EQ(g.offsets.front(), 0u);
        EXPECT_EQ(g.offsets.back(), g.num_edges);
        for (uint64_t v = 0; v < g.num_nodes; v++)
            ASSERT_LE(g.offsets[v], g.offsets[v + 1]);
        for (uint64_t e : g.edges)
            ASSERT_LT(e, g.num_nodes);
    }
}

TEST(GraphTest, DeterministicForSeed)
{
    GraphScale s;
    s.nodes = 1 << 10;
    Graph a = makeGraph(GraphInput::Kron, s);
    Graph b = makeGraph(GraphInput::Kron, s);
    EXPECT_EQ(a.edges, b.edges);
    s.seed = 99;
    Graph c = makeGraph(GraphInput::Kron, s);
    EXPECT_NE(a.edges, c.edges);
}

TEST(GraphTest, KroneckerIsSkewedUniformIsNot)
{
    GraphScale s;
    s.nodes = 1 << 12;
    Graph kron = makeGraph(GraphInput::Kron, s);
    Graph ur = makeGraph(GraphInput::Ur, s);

    auto max_degree = [](const Graph &g) {
        uint64_t m = 0;
        for (uint64_t v = 0; v < g.num_nodes; v++)
            m = std::max(m, g.degree(v));
        return m;
    };
    // Power-law: the hub dominates; uniform: close to the mean.
    EXPECT_GT(max_degree(kron), 20 * s.avg_degree);
    EXPECT_LT(max_degree(ur), 5 * s.avg_degree);
}

TEST(GraphTest, UniformDegreeConcentration)
{
    GraphScale s;
    s.nodes = 1 << 12;
    Graph g = makeGraph(GraphInput::Ur, s);
    uint64_t zero_deg = 0;
    for (uint64_t v = 0; v < g.num_nodes; v++)
        if (g.degree(v) == 0)
            ++zero_deg;
    // Poisson(16): essentially no isolated vertices.
    EXPECT_LT(zero_deg, g.num_nodes / 100);
}

TEST(GraphTest, RmatRequiresPowerOfTwoNodes)
{
    EXPECT_THROW(makeRmat(1000, 100, 0.5, 0.2, 0.2, 1), PanicError);
}

TEST(GraphTest, InputNamesMatchPaper)
{
    EXPECT_EQ(graphInputName(GraphInput::Kron), "KR");
    EXPECT_EQ(graphInputName(GraphInput::Ljn), "LJN");
    EXPECT_EQ(graphInputName(GraphInput::Ork), "ORK");
    EXPECT_EQ(graphInputName(GraphInput::Tw), "TW");
    EXPECT_EQ(graphInputName(GraphInput::Ur), "UR");
}

TEST(GraphTest, EdgeCountsScaleWithConfig)
{
    GraphScale s;
    s.nodes = 1 << 10;
    s.avg_degree = 8;
    Graph g = makeGraph(GraphInput::Ur, s);
    EXPECT_EQ(g.num_edges, s.nodes * 8);
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Tests for graph file loading: edge lists, MatrixMarket, round
 * trips, error handling, and the "kernel/file:PATH" workload specs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "driver/simulation.hh"
#include "workloads/graph_io.hh"

namespace vrsim
{
namespace
{

TEST(GraphIoTest, ReadsSimpleEdgeList)
{
    std::istringstream in(
        "# a comment\n"
        "0 1\n"
        "1 2\n"
        "\n"
        "2 0\n"
        "0 2\n");
    Graph g = readEdgeList(in);
    EXPECT_EQ(g.num_nodes, 3u);
    EXPECT_EQ(g.num_edges, 4u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.edges[g.offsets[1]], 2u);
}

TEST(GraphIoTest, MalformedEdgeListFails)
{
    std::istringstream in("0 1\nbroken line\n");
    EXPECT_THROW(readEdgeList(in), FatalError);
}

TEST(GraphIoTest, EmptyEdgeListFails)
{
    std::istringstream in("# nothing\n");
    EXPECT_THROW(readEdgeList(in), FatalError);
}

TEST(GraphIoTest, ReadsMatrixMarket)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "% comment\n"
        "3 3 4\n"
        "1 2\n"
        "2 3\n"
        "3 1\n"
        "1 3\n");
    Graph g = readMatrixMarket(in);
    EXPECT_EQ(g.num_nodes, 3u);
    EXPECT_EQ(g.num_edges, 4u);
    EXPECT_EQ(g.degree(0), 2u);   // 1-based converted
}

TEST(GraphIoTest, TruncatedMatrixMarketFails)
{
    std::istringstream in(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "3 3 4\n"
        "1 2\n");
    EXPECT_THROW(readMatrixMarket(in), FatalError);
}

TEST(GraphIoTest, EdgeListRoundTrip)
{
    GraphScale s;
    s.nodes = 256;
    s.avg_degree = 4;
    Graph g = makeGraph(GraphInput::Ur, s);
    std::stringstream buf;
    writeEdgeList(buf, g);
    Graph h = readEdgeList(buf);
    EXPECT_EQ(h.num_edges, g.num_edges);
    EXPECT_EQ(h.offsets, g.offsets);
    EXPECT_EQ(h.edges, g.edges);
}

TEST(GraphIoTest, MissingFileFails)
{
    EXPECT_THROW(loadGraph("/nonexistent/graph.el"), FatalError);
}

TEST(GraphIoTest, FileSpecRunsKernelOnLoadedGraph)
{
    // Write a small graph to a temp file and run bfs on it end to end.
    GraphScale s;
    s.nodes = 1024;
    s.avg_degree = 8;
    Graph g = makeGraph(GraphInput::Kron, s);
    std::string path = ::testing::TempDir() + "/vrsim_graph_test.el";
    {
        std::ofstream out(path);
        writeEdgeList(out, g);
    }
    SimResult r = runSimulation("bfs/file:" + path, Technique::Dvr,
                                SystemConfig::benchScale(),
                                GraphScale{}, HpcDbScale{}, 10000);
    std::remove(path.c_str());
    EXPECT_GT(r.core.instructions, 1000u);
    EXPECT_GT(r.ipc(), 0.0);
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Parameterized property tests of the core timing model: performance
 * must respond monotonically (within tolerance) to core resources,
 * across ROB sizes, widths and load-port counts.
 */

#include <gtest/gtest.h>

#include "driver/simulation.hh"

namespace vrsim
{
namespace
{

SimResult
runCamel(SystemConfig cfg, uint64_t roi = 25000)
{
    GraphScale g;
    HpcDbScale h;
    h.elements = 1 << 14;
    return runSimulation("camel", Technique::OoO, cfg, g, h, roi);
}

class RobSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(RobSweep, RunsAndStallsShrinkWithRob)
{
    SystemConfig cfg = SystemConfig::benchScale();
    cfg.core.rob_size = GetParam();
    SimResult r = runCamel(cfg);
    EXPECT_GT(r.ipc(), 0.0);
    // Window stalls as a fraction of cycles must be below the
    // 64-entry configuration's.
    SystemConfig tiny = SystemConfig::benchScale();
    tiny.core.rob_size = 64;
    SimResult t = runCamel(tiny);
    double frac_r = double(r.core.rob_stall_cycles + r.core.stall_lq) /
                    double(r.core.cycles);
    double frac_t = double(t.core.rob_stall_cycles + t.core.stall_lq) /
                    double(t.core.cycles);
    if (GetParam() > 64) {
        EXPECT_LE(frac_r, frac_t + 0.05);
    }
}

TEST_P(RobSweep, BiggerRobNeverMuchSlower)
{
    SystemConfig small = SystemConfig::benchScale();
    small.core.rob_size = GetParam();
    SystemConfig big = small;
    big.core.rob_size = GetParam() * 2;
    double ipc_small = runCamel(small).ipc();
    double ipc_big = runCamel(big).ipc();
    EXPECT_GT(ipc_big, 0.95 * ipc_small)
        << "ROB " << GetParam() << " -> " << GetParam() * 2;
}

INSTANTIATE_TEST_SUITE_P(Sizes, RobSweep,
                         ::testing::Values(64u, 128u, 224u, 350u));

class WidthSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(WidthSweep, IpcBoundedByWidth)
{
    SystemConfig cfg = SystemConfig::benchScale();
    cfg.core.width = GetParam();
    SimResult r = runCamel(cfg);
    EXPECT_LE(r.ipc(), double(GetParam()) + 0.01);
    EXPECT_GT(r.ipc(), 0.0);
}

TEST_P(WidthSweep, WiderNeverMuchSlower)
{
    SystemConfig narrow = SystemConfig::benchScale();
    narrow.core.width = GetParam();
    SystemConfig wide = narrow;
    wide.core.width = GetParam() * 2;
    EXPECT_GT(runCamel(wide).ipc(), 0.95 * runCamel(narrow).ipc());
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         ::testing::Values(1u, 2u, 4u, 5u, 8u));

class MshrSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(MshrSweep, MlpNeverExceedsCapacity)
{
    SystemConfig cfg = SystemConfig::benchScale();
    cfg.l1d.mshrs = GetParam();
    SimResult r = runCamel(cfg);
    EXPECT_LE(r.mlp, double(GetParam()) + 0.5);
}

TEST_P(MshrSweep, MoreMshrsNeverMuchSlower)
{
    SystemConfig few = SystemConfig::benchScale();
    few.l1d.mshrs = GetParam();
    SystemConfig many = few;
    many.l1d.mshrs = GetParam() * 2;
    EXPECT_GT(runCamel(many).ipc(), 0.95 * runCamel(few).ipc());
}

INSTANTIATE_TEST_SUITE_P(Counts, MshrSweep,
                         ::testing::Values(4u, 8u, 24u, 48u));

class LlcSweep : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(LlcSweep, BiggerLlcMeansFewerDramFills)
{
    SystemConfig small = SystemConfig::benchScale();
    small.l3.size_bytes = GetParam() * 1024;
    SystemConfig big = small;
    big.l3.size_bytes = GetParam() * 4 * 1024;
    SimResult rs = runCamel(small);
    SimResult rb = runCamel(big);
    EXPECT_LE(rb.mem.dramTotal(), rs.mem.dramTotal() + 50);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LlcSweep,
                         ::testing::Values(128u, 256u, 512u));

} // namespace
} // namespace vrsim

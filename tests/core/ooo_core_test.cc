/**
 * @file
 * Tests for the out-of-order core timing model: width limits,
 * dependence chains, memory latency, mispredict redirects, window
 * stalls and engine triggering.
 */

#include <gtest/gtest.h>

#include "core/ooo_core.hh"
#include "sim/rng.hh"

namespace vrsim
{
namespace
{

SystemConfig
quietCfg()
{
    SystemConfig cfg = SystemConfig::paper();
    cfg.stride_pf.enabled = false;
    return cfg;
}

/** Engine that records trigger invocations. */
class RecordingEngine : public RunaheadEngine
{
  public:
    Cycle
    onFullRobStall(Cycle start, Cycle head_fill, const CpuState &,
                   TriggerKind) override
    {
        ++triggers;
        last_start = start;
        last_fill = head_fill;
        return head_fill + extra;
    }

    const char *name() const override { return "rec"; }

    uint64_t triggers = 0;
    Cycle last_start = 0;
    Cycle last_fill = 0;
    Cycle extra = 0;
};

TEST(OooCoreTest, IndependentAluBoundedByWidth)
{
    // 1000 independent movi: IPC should approach the 5-wide limit.
    ProgramBuilder b("alu");
    for (int i = 0; i < 1000; i++)
        b.movi(uint8_t(1 + (i % 8)), i);
    b.halt();
    Program p = b.build();
    MemoryImage img;
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, img);
    OooCore core(cfg, p, img, hier);
    CoreStats st = core.run();
    EXPECT_GT(st.ipc(), 3.0);
    EXPECT_LE(st.ipc(), 5.0 + 0.01);
}

TEST(OooCoreTest, SerialDependenceChainOneIpc)
{
    // A serial add chain can retire at most 1 per cycle.
    ProgramBuilder b("chain");
    b.movi(1, 0);
    for (int i = 0; i < 500; i++)
        b.addi(1, 1, 1);
    b.halt();
    Program p = b.build();
    MemoryImage img;
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, img);
    OooCore core(cfg, p, img, hier);
    CoreStats st = core.run();
    EXPECT_LT(st.ipc(), 1.2);
    EXPECT_GT(st.ipc(), 0.8);
}

TEST(OooCoreTest, ColdLoadPaysMemoryLatency)
{
    ProgramBuilder b("ld");
    b.movi(1, 0x100000);
    b.ld(2, 1);
    b.halt();
    Program p = b.build();
    MemoryImage img;
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, img);
    OooCore core(cfg, p, img, hier);
    CoreStats st = core.run();
    EXPECT_GT(st.cycles, 240u);   // one full memory round trip
    EXPECT_EQ(st.loads, 1u);
}

TEST(OooCoreTest, IndependentMissesOverlap)
{
    // 16 independent loads to distinct lines: total time must be far
    // below 16 serial round trips.
    ProgramBuilder b("mlp");
    for (int i = 0; i < 16; i++) {
        b.movi(1, 0x100000 + i * 4096);
        b.ld(uint8_t(2 + (i % 8)), 1);
    }
    b.halt();
    Program p = b.build();
    MemoryImage img;
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, img);
    OooCore core(cfg, p, img, hier);
    CoreStats st = core.run();
    EXPECT_LT(st.cycles, 16 * 242 / 4);
}

TEST(OooCoreTest, DependentMissesSerialize)
{
    // mem[a] -> mem[b] -> mem[c] pointer chase: ~3 round trips.
    MemoryImage img;
    img.write64(0x100000, 0x200000);
    img.write64(0x200000, 0x300000);
    ProgramBuilder b("chase");
    b.movi(1, 0x100000);
    b.ld(1, 1);
    b.ld(1, 1);
    b.ld(1, 1);
    b.halt();
    Program p = b.build();
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, img);
    OooCore core(cfg, p, img, hier);
    CoreStats st = core.run();
    EXPECT_GT(st.cycles, 3 * 242u);
}

TEST(OooCoreTest, MispredictsChargeRedirects)
{
    // A data-dependent branch pattern the predictor cannot learn.
    MemoryImage img;
    Rng rng(3);
    for (int i = 0; i < 512; i++)
        img.write64(0x10000 + i * 8, rng.next() & 1);
    ProgramBuilder b("br");
    constexpr uint8_t RI = 1, RB = 2, RV = 3, RC = 4, RN = 5;
    auto skip = b.makeLabel();
    auto top = b.here();
    b.ld(RV, RB, RI, 8);
    auto lskip = b.makeLabel();
    b.brz(RV, lskip);
    b.addi(RC, RC, 1);
    b.bind(lskip);
    b.addi(RI, RI, 1);
    b.cmplti(RV, RI, 512);
    b.br(RV, top);
    b.bind(skip);
    b.halt();
    Program p = b.build();
    CpuState init;
    init.regs[RB] = 0x10000;
    (void)RN;
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, img);
    OooCore core(cfg, p, img, hier);
    CoreStats st = core.run(init, 0);
    EXPECT_GT(st.mispredicts, 100u);
    EXPECT_GT(st.stall_fetch, st.mispredicts * 10);
}

TEST(OooCoreTest, WindowStallTriggersEngine)
{
    // A long stream of independent misses: the LQ/ROB fills behind
    // pending misses and the engine must be invoked.
    MemoryImage img;
    ProgramBuilder b("stall");
    constexpr uint8_t RI = 1, RB = 2, RV = 3, RC = 4;
    auto top = b.here();
    b.ld(RV, RB, RI, 64);      // every load its own line
    b.addi(RI, RI, 1);
    b.cmplti(RC, RI, 4000);
    b.br(RC, top);
    b.halt();
    Program p = b.build();
    CpuState init;
    init.regs[RB] = 0x400000;

    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, img);
    RecordingEngine eng;
    OooCore core(cfg, p, img, hier, &eng);
    CoreStats st = core.run(init, 0);
    EXPECT_GT(eng.triggers, 0u);
    EXPECT_EQ(st.full_rob_stall_events, eng.triggers);
    EXPECT_GT(eng.last_fill, eng.last_start);
}

TEST(OooCoreTest, DelayedTerminationStallsCommit)
{
    MemoryImage img;
    ProgramBuilder b("dt");
    constexpr uint8_t RI = 1, RB = 2, RV = 3, RC = 4;
    auto top = b.here();
    b.ld(RV, RB, RI, 64);
    b.addi(RI, RI, 1);
    b.cmplti(RC, RI, 4000);
    b.br(RC, top);
    b.halt();
    Program p = b.build();
    CpuState init;
    init.regs[RB] = 0x400000;

    SystemConfig cfg = quietCfg();
    MemoryHierarchy h1(cfg, img), h2(cfg, img);
    RecordingEngine plain;
    OooCore c1(cfg, p, img, h1, &plain);
    CoreStats s1 = c1.run(init, 0);

    RecordingEngine delayed;
    delayed.extra = 500;
    OooCore c2(cfg, p, img, h2, &delayed);
    CoreStats s2 = c2.run(init, 0);

    EXPECT_EQ(s1.runahead_commit_stall, 0u);
    EXPECT_GT(s2.runahead_commit_stall, 0u);
    EXPECT_GT(s2.cycles, s1.cycles);
}

TEST(OooCoreTest, OracleFasterThanBaselineOnMissyCode)
{
    MemoryImage img;
    Rng rng(9);
    for (int i = 0; i < 4096; i++)
        img.write64(0x10000 + i * 8, rng.below(4096));
    ProgramBuilder b("gather");
    constexpr uint8_t RI = 1, RB = 2, RD = 3, RV = 4, RS = 5,
                      RC = 6;
    auto top = b.here();
    b.ld(RV, RB, RI, 8);
    b.ld(RV, RD, RV, 8);
    b.add(RS, RS, RV);
    b.addi(RI, RI, 1);
    b.cmplti(RC, RI, 4096);
    b.br(RC, top);
    b.halt();
    Program p = b.build();
    CpuState init;
    init.regs[RB] = 0x10000;
    init.regs[RD] = 0x900000;

    SystemConfig base = quietCfg();
    MemoryHierarchy h1(base, img);
    OooCore c1(base, p, img, h1);
    CoreStats s1 = c1.run(init, 0);

    SystemConfig ocfg = quietCfg();
    ocfg.technique = Technique::Oracle;
    MemoryHierarchy h2(ocfg, img);
    OooCore c2(ocfg, p, img, h2);
    CoreStats s2 = c2.run(init, 0);

    EXPECT_LT(s2.cycles, s1.cycles);
}

TEST(OooCoreTest, InstructionBudgetRespected)
{
    ProgramBuilder b("inf");
    auto top = b.here();
    b.addi(1, 1, 1);
    b.jmp(top);
    Program p = b.build();
    MemoryImage img;
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, img);
    OooCore core(cfg, p, img, hier);
    CoreStats st = core.run(CpuState{}, 1234);
    EXPECT_EQ(st.instructions, 1234u);
}

TEST(OooCoreTest, CountsLoadsStoresBranches)
{
    MemoryImage img;
    ProgramBuilder b("mix");
    b.movi(1, 0x1000);
    b.ld(2, 1);
    b.st(2, 1, REG_NONE, 1, 8);
    b.cmpeqi(3, 2, 0);
    auto l = b.makeLabel();
    b.brz(3, l);
    b.bind(l);
    b.halt();
    Program p = b.build();
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, img);
    OooCore core(cfg, p, img, hier);
    CoreStats st = core.run();
    EXPECT_EQ(st.loads, 1u);
    EXPECT_EQ(st.stores, 1u);
    EXPECT_EQ(st.branches, 1u);
}

TEST(OooCoreTest, IcacheMissesOnlyOnFreshLines)
{
    // A tight loop touches few I-lines: misses stay tiny; a long
    // straight-line program touches many but the sequential prefetch
    // hides all but the first region.
    ProgramBuilder b("loop");
    b.movi(1, 0);
    auto top = b.here();
    b.addi(1, 1, 1);
    b.cmplti(2, 1, 5000);
    b.br(2, top);
    b.halt();
    Program p = b.build();
    MemoryImage img;
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, img);
    OooCore core(cfg, p, img, hier);
    CoreStats st = core.run();
    EXPECT_LE(st.icache_misses, 2u);
}

TEST(OooCoreTest, BtbMissesOncePerTakenTarget)
{
    // The loop's backward branch misses the BTB exactly once.
    ProgramBuilder b("btb");
    b.movi(1, 0);
    auto top = b.here();
    b.addi(1, 1, 1);
    b.cmplti(2, 1, 1000);
    b.br(2, top);
    b.halt();
    Program p = b.build();
    MemoryImage img;
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, img);
    OooCore core(cfg, p, img, hier);
    CoreStats st = core.run();
    EXPECT_EQ(st.btb_misses, 1u);
}

TEST(OooCoreTest, CpiStackSumsToCpi)
{
    MemoryImage img;
    Rng rng(4);
    for (int i = 0; i < 2048; i++)
        img.write64(0x10000 + i * 8, rng.below(2048));
    ProgramBuilder b("cpistack");
    constexpr uint8_t RI = 1, RB = 2, RD = 3, RV = 4, RC = 5;
    auto top = b.here();
    b.ld(RV, RB, RI, 8);
    b.ld(RV, RD, RV, 8);
    b.addi(RI, RI, 1);
    b.cmplti(RC, RI, 2048);
    b.br(RC, top);
    b.halt();
    Program p = b.build();
    CpuState init;
    init.regs[RB] = 0x10000;
    init.regs[RD] = 0x800000;
    SystemConfig cfg = quietCfg();
    MemoryHierarchy hier(cfg, img);
    OooCore core(cfg, p, img, hier);
    CoreStats st = core.run(init, 0);
    auto cs = st.cpiStack();
    double cpi = double(st.cycles) / double(st.instructions);
    EXPECT_NEAR(cs.total(), cpi, 1e-9);
    EXPECT_GE(cs.base, 0.0);
}

TEST(OooCoreTest, WarmupExcludesColdStart)
{
    MemoryImage img;
    Rng rng(6);
    for (int i = 0; i < 8192; i++)
        img.write64(0x10000 + i * 8, rng.below(4096));
    ProgramBuilder b("warm");
    constexpr uint8_t RI = 1, RB = 2, RV = 3, RC = 4;
    auto top = b.here();
    b.ld(RV, RB, RI, 8);       // streaming: hits after warmup
    b.addi(RI, RI, 1);
    b.andi(RI, RI, 8191);
    b.cmplti(RC, 5, 6);        // always true: spin forever
    b.br(RC, top);
    b.halt();
    Program p = b.build();
    CpuState init;
    init.regs[RB] = 0x10000;

    SystemConfig cfg = quietCfg();
    MemoryHierarchy h1(cfg, img);
    OooCore c1(cfg, p, img, h1);
    CoreStats cold = c1.run(init, 40000);

    MemoryHierarchy h2(cfg, img);
    OooCore c2(cfg, p, img, h2);
    CoreStats warm = c2.run(init, 60000, 20000, {});
    EXPECT_EQ(warm.instructions, 40000u);
    // Same ROI length; the warm run must not be slower than the
    // cold-start-inclusive one.
    EXPECT_LE(warm.cycles, cold.cycles + cold.cycles / 10);
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Tests of the warm-state checkpoints behind interval sampling
 * (docs/sampling.md): a MemWarmState + OooCore::WarmState snapshot
 * taken at a quiesced window boundary must let a fresh core/hierarchy
 * reproduce the exact timing of the detailed window the original run
 * would have measured, and warming fast-forward must leave
 * architectural state and statistics untouched.
 */

#include <gtest/gtest.h>

#include "core/ooo_core.hh"

namespace vrsim
{
namespace
{

/**
 * A load/store loop over hashed addresses in a 256 KiB region: big
 * enough to spill L1D, with a data-dependent branch so the BP/BTB
 * warm state matters too.
 */
Program
chaseProgram()
{
    ProgramBuilder b("chase");
    b.movi(1, 0);               // i
    b.movi(2, 0x100000);        // data region base
    b.movi(4, 1'000'000'000);   // bound (budget stops us first)
    auto top = b.here();
    b.hash(5, 1, 17);
    b.andi(5, 5, (1 << 18) - 8);  // 8-aligned offset in 256 KiB
    b.add(5, 5, 2);
    b.ld(6, 5);
    b.add(7, 7, 6);
    b.st(7, 5);
    b.andi(8, 6, 1);            // data-dependent branch
    auto skip = b.makeLabel();
    b.brz(8, skip);
    b.addi(7, 7, 3);
    b.bind(skip);
    b.addi(1, 1, 1);
    b.cmpltu(8, 1, 4);
    b.br(8, top);
    b.halt();
    return b.build();
}

struct Rig
{
    Program prog = chaseProgram();
    MemoryImage img;
    SystemConfig cfg = SystemConfig::paper();
    MemoryHierarchy hier;
    OooCore core;

    Rig() : hier(cfg, img), core(cfg, prog, img, hier) {}
};

TEST(WarmStateTest, WarmingFastForwardPreservesArchitecture)
{
    // Warming FF and plain FF commit identical architectural streams;
    // only the clock (and cache/BP contents) differ.
    Rig warm, plain;
    CpuState sw, sp;
    Cycle cw = 100, cp = 100;

    uint64_t nw = warm.core.fastForward(sw, 5000, cw, /*warm=*/true);
    uint64_t np = plain.core.fastForward(sp, 5000, cp, /*warm=*/false);

    EXPECT_EQ(nw, 5000u);
    EXPECT_EQ(np, 5000u);
    EXPECT_EQ(cw, 100u + 5000u);  // warm FF ticks the clock...
    EXPECT_EQ(cp, 100u);          // ...plain FF leaves it alone
    EXPECT_EQ(sw.pc, sp.pc);
    for (size_t r = 0; r < sw.regs.size(); r++)
        EXPECT_EQ(sw.regs[r], sp.regs[r]) << "reg " << r;
}

TEST(WarmStateTest, WarmingFastForwardLeavesStatisticsUntouched)
{
    Rig rig;
    CpuState s;
    Cycle clock = 0;
    rig.core.fastForward(s, 5000, clock, /*warm=*/true);

    // Warming touches tags and predictors only — the statistics a
    // measured window reports must start from zero.
    const MemStats ms = rig.hier.stats();
    EXPECT_EQ(ms.demand_accesses, 0u);
    EXPECT_EQ(ms.demand_l1_hits, 0u);
    EXPECT_EQ(ms.demand_mem, 0u);
    EXPECT_EQ(ms.dramTotal(), 0u);
}

TEST(WarmStateTest, RestoredCheckpointReproducesDetailedWindow)
{
    // The sampling contract: snapshot at a window boundary, and a
    // fresh core/hierarchy restored from it measures the exact same
    // detailed window (cycle-for-cycle) as the live run.
    Rig live;
    CpuState s;
    Cycle clock = 0;
    live.core.fastForward(s, 8000, clock, /*warm=*/true);

    const MemWarmState mem_ckpt = live.hier.warmSnapshot();
    const OooCore::WarmState core_ckpt = live.core.warmSnapshot();
    CpuState s_ckpt = s;
    Cycle clock_ckpt = clock;

    CoreStats a = live.core.runFrom(s, 4000, 0, clock);

    Rig fresh;
    fresh.hier.warmRestore(mem_ckpt);
    fresh.core.warmRestore(core_ckpt);
    CpuState s2 = s_ckpt;
    Cycle clock2 = clock_ckpt;
    CoreStats b = fresh.core.runFrom(s2, 4000, 0, clock2);

    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.btb_misses, b.btb_misses);
    EXPECT_EQ(a.icache_misses, b.icache_misses);
    EXPECT_EQ(a.rob_stall_cycles, b.rob_stall_cycles);
    EXPECT_EQ(clock, clock2);
    EXPECT_EQ(s.pc, s2.pc);
    for (size_t r = 0; r < s.regs.size(); r++)
        EXPECT_EQ(s.regs[r], s2.regs[r]) << "reg " << r;

    const MemStats ma = live.hier.stats(), mb = fresh.hier.stats();
    EXPECT_EQ(ma.demand_accesses, mb.demand_accesses);
    EXPECT_EQ(ma.demand_l1_hits, mb.demand_l1_hits);
    EXPECT_EQ(ma.demand_l2_hits, mb.demand_l2_hits);
    EXPECT_EQ(ma.demand_l3_hits, mb.demand_l3_hits);
    EXPECT_EQ(ma.demand_mem, mb.demand_mem);
    EXPECT_EQ(ma.demand_latency_sum, mb.demand_latency_sum);
}

TEST(WarmStateTest, CheckpointIsACopyNotAReference)
{
    // Mutating the live structures after the snapshot must not change
    // what a restore reproduces.
    Rig live;
    CpuState s;
    Cycle clock = 0;
    live.core.fastForward(s, 4000, clock, /*warm=*/true);

    const MemWarmState mem_ckpt = live.hier.warmSnapshot();
    const OooCore::WarmState core_ckpt = live.core.warmSnapshot();
    CpuState s_ckpt = s;
    Cycle clock_ckpt = clock;

    // Reference window from an immediate restore into a fresh rig.
    Rig ref;
    ref.hier.warmRestore(mem_ckpt);
    ref.core.warmRestore(core_ckpt);
    CpuState sr = s_ckpt;
    Cycle cr = clock_ckpt;
    CoreStats want = ref.core.runFrom(sr, 2000, 0, cr);

    // Perturb the live rig thoroughly, then restore and re-measure.
    live.core.fastForward(s, 20000, clock, /*warm=*/true);
    Rig again;
    again.hier.warmRestore(mem_ckpt);
    again.core.warmRestore(core_ckpt);
    CpuState sa = s_ckpt;
    Cycle ca = clock_ckpt;
    CoreStats got = again.core.runFrom(sa, 2000, 0, ca);

    EXPECT_EQ(want.cycles, got.cycles);
    EXPECT_EQ(want.instructions, got.instructions);
    EXPECT_EQ(want.mispredicts, got.mispredicts);
    EXPECT_EQ(cr, ca);
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Unit tests of the Sample stat kind: mean / sample-stddev / Student-t
 * 95% confidence intervals against hand-computed references, the
 * moments helpers, the setMoments() restore path, and the JSON dump
 * shape — the error bars the sampling subsystem reports must be
 * arithmetic, not vibes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "obs/stats_registry.hh"

namespace vrsim
{
namespace
{

TEST(SampleStatTest, StudentT95Table)
{
    EXPECT_DOUBLE_EQ(studentT95(0), 0.0);
    EXPECT_DOUBLE_EQ(studentT95(1), 12.706);
    EXPECT_DOUBLE_EQ(studentT95(2), 4.303);
    EXPECT_DOUBLE_EQ(studentT95(9), 2.262);
    EXPECT_DOUBLE_EQ(studentT95(30), 2.042);
    EXPECT_DOUBLE_EQ(studentT95(35), 2.021);
    EXPECT_DOUBLE_EQ(studentT95(50), 2.000);
    EXPECT_DOUBLE_EQ(studentT95(100), 1.980);
    EXPECT_DOUBLE_EQ(studentT95(1000), 1.960);
    // Monotone non-increasing: more samples never widen the interval.
    for (uint64_t dof = 2; dof < 200; dof++)
        EXPECT_LE(studentT95(dof), studentT95(dof - 1)) << dof;
}

TEST(SampleStatTest, MomentsAgainstHandComputed)
{
    // Observations 2, 4, 4, 4, 5, 5, 7, 9: mean 5, sample variance
    // 32/7, stddev sqrt(32/7).
    const double obs[] = {2, 4, 4, 4, 5, 5, 7, 9};
    double sum = 0, sumsq = 0;
    for (double v : obs) {
        sum += v;
        sumsq += v * v;
    }
    EXPECT_DOUBLE_EQ(sum / 8.0, 5.0);
    double stddev = momentsStddev(sum, sumsq, 8);
    EXPECT_NEAR(stddev, std::sqrt(32.0 / 7.0), 1e-12);
    // ci95 = t(7) * stddev / sqrt(8), t(7) = 2.365.
    EXPECT_NEAR(momentsCi95(sum, sumsq, 8),
                2.365 * stddev / std::sqrt(8.0), 1e-12);
}

TEST(SampleStatTest, DegenerateCounts)
{
    EXPECT_DOUBLE_EQ(momentsStddev(0, 0, 0), 0.0);
    EXPECT_DOUBLE_EQ(momentsStddev(5, 25, 1), 0.0);
    EXPECT_DOUBLE_EQ(momentsCi95(5, 25, 1), 0.0);
    // Identical observations: zero spread, zero CI.
    EXPECT_DOUBLE_EQ(momentsStddev(9, 27, 3), 0.0);
    EXPECT_DOUBLE_EQ(momentsCi95(9, 27, 3), 0.0);
    // Catastrophic-cancellation guard: sumsq marginally below the
    // analytic minimum must clamp to 0, not NaN.
    EXPECT_DOUBLE_EQ(momentsStddev(9, 27.0 - 1e-13, 3), 0.0);
}

TEST(SampleStatTest, NodeAccumulatesAndReports)
{
    StatsRegistry reg;
    StatNode &n = reg.addSample("test.ipc", "per-interval IPC");
    for (double v : {1.0, 2.0, 3.0, 4.0})
        n.sample(v);
    EXPECT_EQ(n.samples(), 4u);
    EXPECT_DOUBLE_EQ(n.value(reg), 2.5);
    // Sample variance of {1,2,3,4} is 5/3.
    EXPECT_NEAR(n.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
    EXPECT_NEAR(n.ci95(), 3.182 * n.stddev() / 2.0, 1e-12);
}

TEST(SampleStatTest, SetMomentsRestoresSerializedSummary)
{
    StatsRegistry a, b;
    StatNode &live = a.addSample("s.ipc");
    for (double v : {0.5, 0.7, 0.6, 0.9, 0.8})
        live.sample(v);

    // A summary that crossed a serialization boundary re-enters the
    // registry through raw moments and must report identically.
    double sum = 0.5 + 0.7 + 0.6 + 0.9 + 0.8;
    double sumsq = 0.25 + 0.49 + 0.36 + 0.81 + 0.64;
    StatNode &restored = b.addSample("s.ipc");
    restored.setMoments(sum, sumsq, 5);

    EXPECT_DOUBLE_EQ(restored.value(b), live.value(a));
    EXPECT_DOUBLE_EQ(restored.stddev(), live.stddev());
    EXPECT_DOUBLE_EQ(restored.ci95(), live.ci95());
}

TEST(SampleStatTest, JsonDumpShape)
{
    StatsRegistry reg;
    StatNode &n = reg.addSample("sample.cpi");
    n.sample(1.0);
    n.sample(3.0);
    std::ostringstream os;
    reg.dumpJson(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"sample.cpi\": {\"mean\": 2"),
              std::string::npos) << out;
    EXPECT_NE(out.find("\"n\": 2"), std::string::npos) << out;
    EXPECT_NE(out.find("\"stddev\": "), std::string::npos) << out;
    EXPECT_NE(out.find("\"ci95\": "), std::string::npos) << out;
}

TEST(SampleStatTest, KindChecksPanic)
{
    StatsRegistry reg;
    StatNode &c = reg.addCounter("plain.counter");
    EXPECT_THROW(c.stddev(), PanicError);
    EXPECT_THROW(c.ci95(), PanicError);
    EXPECT_THROW(c.setMoments(1, 1, 1), PanicError);
    StatNode &avg = reg.addAverage("plain.avg");
    avg.sample(2.0);  // Average accepts sample()...
    EXPECT_THROW(avg.ci95(), PanicError);  // ...but has no CI
}

} // namespace
} // namespace vrsim

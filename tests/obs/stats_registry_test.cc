/**
 * @file
 * Tests for the hierarchical stats registry: node semantics per kind,
 * path validation, duplicate-registration refusal, lexicographic
 * iteration, and the JSON/CSV dumps (JSON round-trips through the
 * strict sim/parse.hh reader).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/stats_registry.hh"
#include "sim/parse.hh"

namespace vrsim
{
namespace
{

TEST(StatsRegistryTest, CounterGaugeAverageSemantics)
{
    StatsRegistry reg;
    StatNode &c = reg.addCounter("core.commits", "retired");
    ++c;
    c += 9;
    EXPECT_EQ(c.count(), 10u);
    EXPECT_DOUBLE_EQ(reg.value("core.commits"), 10.0);
    EXPECT_EQ(c.kind(), StatKind::Counter);

    StatNode &g = reg.addGauge("mem.mlp");
    g = 3.5;
    EXPECT_DOUBLE_EQ(reg.value("mem.mlp"), 3.5);

    StatNode &a = reg.addAverage("mem.latency");
    a.sample(100);
    a.sample(200);
    a.sample(600, 2);  // weighted: two samples of 600
    EXPECT_EQ(a.samples(), 4u);
    EXPECT_DOUBLE_EQ(reg.value("mem.latency"), (100 + 200 + 1200) / 4.0);
}

TEST(StatsRegistryTest, HistogramBucketsAndMean)
{
    StatsRegistry reg;
    StatNode &h = reg.addHistogram("core.rob_occ", 4, 8.0);
    h.sample(0);
    h.sample(7.9);   // bucket 0
    h.sample(8);     // bucket 1
    h.sample(31.9);  // bucket 3
    h.sample(1000);  // overflow bucket
    ASSERT_EQ(h.buckets().size(), 5u);  // 4 + overflow
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.buckets()[4], 1u);
    EXPECT_EQ(h.samples(), 5u);
}

TEST(StatsRegistryTest, FormulaReadsOtherNodes)
{
    StatsRegistry reg;
    reg.addCounter("core.instructions") += 200;
    reg.addCounter("core.cycles") += 100;
    reg.addFormula("core.ipc", [](const StatsRegistry &r) {
        double cyc = r.value("core.cycles");
        return cyc ? r.value("core.instructions") / cyc : 0.0;
    });
    EXPECT_DOUBLE_EQ(reg.value("core.ipc"), 2.0);
    // Formulas evaluate on read: bumping an input changes the output.
    reg.at("core.instructions") += 100;
    EXPECT_DOUBLE_EQ(reg.value("core.ipc"), 3.0);
}

TEST(StatsRegistryTest, DuplicateRegistrationIsFatal)
{
    StatsRegistry reg;
    reg.addCounter("a.b");
    EXPECT_THROW(reg.addCounter("a.b"), FatalError);
    EXPECT_THROW(reg.addGauge("a.b"), FatalError);
}

TEST(StatsRegistryTest, InvalidPathsAreFatal)
{
    StatsRegistry reg;
    for (const char *bad : {"", ".", "a.", ".a", "a..b", "A.b",
                            "a b", "a-b", "core.IPC"})
        EXPECT_THROW(reg.addCounter(bad), FatalError) << bad;
    // Valid shapes for contrast.
    reg.addCounter("a");
    reg.addCounter("a.b_2.c0");
}

TEST(StatsRegistryTest, LookupAndIterationOrder)
{
    StatsRegistry reg;
    reg.addCounter("z.last");
    reg.addCounter("a.first");
    reg.addCounter("m.mid");
    EXPECT_TRUE(reg.has("m.mid"));
    EXPECT_FALSE(reg.has("m.missing"));
    EXPECT_EQ(reg.find("m.missing"), nullptr);
    EXPECT_THROW(reg.value("m.missing"), FatalError);
    EXPECT_EQ(reg.paths(),
              (std::vector<std::string>{"a.first", "m.mid", "z.last"}));
    std::vector<std::string> visited;
    reg.visit([&](const StatNode &n) { visited.push_back(n.path()); });
    EXPECT_EQ(visited, reg.paths());
}

TEST(StatsRegistryTest, JsonDumpRoundTrips)
{
    StatsRegistry reg;
    reg.addCounter("core.instructions") += 123;
    reg.addGauge("core.ipc") = 1.25;
    StatNode &h = reg.addHistogram("mem.lat", 2, 10.0);
    h.sample(5);
    h.sample(25);
    std::ostringstream os;
    reg.dumpJson(os);

    JsonValue doc = JsonValue::parse("dump", os.str());
    EXPECT_EQ(doc.at("core.instructions").asU64(), 123u);
    EXPECT_DOUBLE_EQ(doc.at("core.ipc").asF64(), 1.25);
    const JsonValue &hist = doc.at("mem.lat");
    EXPECT_DOUBLE_EQ(hist.at("bucket_width").asF64(), 10.0);
    EXPECT_EQ(hist.at("total").asU64(), 2u);
    ASSERT_EQ(hist.at("buckets").asArray().size(), 3u);  // 2 + overflow
    EXPECT_EQ(hist.at("buckets").asArray()[1].asU64(), 0u);
    EXPECT_EQ(hist.at("buckets").asArray()[2].asU64(), 1u);
}

TEST(StatsRegistryTest, CsvDumpShape)
{
    StatsRegistry reg;
    reg.addCounter("core.instructions", "retired insts") += 7;
    reg.addGauge("core.ipc", "insts per cycle") = 0.5;
    std::ostringstream os;
    reg.dumpCsv(os);
    std::istringstream in(os.str());
    std::string header, row1, row2;
    std::getline(in, header);
    std::getline(in, row1);
    std::getline(in, row2);
    EXPECT_EQ(header, "path,kind,value,description");
    EXPECT_EQ(row1.rfind("core.instructions,counter,7", 0), 0u);
    EXPECT_EQ(row2.rfind("core.ipc,gauge,0.5", 0), 0u);
}

TEST(StatsRegistryTest, NodeReferencesStayValidAcrossInserts)
{
    StatsRegistry reg;
    StatNode &first = reg.addCounter("a.a");
    for (int i = 0; i < 64; i++)
        reg.addCounter("n." + std::to_string(i / 10) +
                       std::to_string(i % 10));
    ++first;
    EXPECT_EQ(reg.at("a.a").count(), 1u);
}

} // namespace
} // namespace vrsim

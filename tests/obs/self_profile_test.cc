/**
 * @file
 * Tests for the host-side self-profiler: phase accumulation, simulated
 * work counters, the exit-summary line, and the opt-in gate for host
 * columns in reports.
 */

#include <gtest/gtest.h>

#include <thread>

#include "obs/self_profile.hh"

namespace vrsim
{
namespace
{

TEST(SelfProfilerTest, PhasesAccumulate)
{
    SelfProfiler p;
    {
        SelfProfiler::PhaseTimer t = p.phase("simulate");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    {
        SelfProfiler::PhaseTimer t = p.phase("simulate");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GT(p.phaseSeconds("simulate"), 0.0);
    EXPECT_DOUBLE_EQ(p.phaseSeconds("never-timed"), 0.0);
}

TEST(SelfProfilerTest, MovedFromTimerDoesNotDoubleCount)
{
    SelfProfiler p;
    {
        SelfProfiler::PhaseTimer outer = [&] {
            SelfProfiler::PhaseTimer inner = p.phase("report");
            return inner;  // moved out; inner must not record
        }();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Exactly one recording: seconds > 0 but only one phase entry.
    EXPECT_GT(p.phaseSeconds("report"), 0.0);
}

TEST(SelfProfilerTest, SimulatedWorkCounters)
{
    SelfProfiler p;
    p.addSimulated(5000, 8000);
    p.addSimulated(1000, 2000);
    EXPECT_EQ(p.insts(), 6000u);
    EXPECT_EQ(p.cycles(), 10000u);
    EXPECT_EQ(p.points(), 2u);
    EXPECT_GT(p.instsPerSecond(), 0.0);
}

TEST(SelfProfilerTest, SummaryNamesThroughputAndPhases)
{
    SelfProfiler p;
    p.addSimulated(2'000'000, 3'000'000);
    { SelfProfiler::PhaseTimer t = p.phase("simulate"); }
    std::string s = p.summary();
    EXPECT_NE(s.find("self-profile:"), std::string::npos) << s;
    EXPECT_NE(s.find("1 points"), std::string::npos) << s;
    EXPECT_NE(s.find("2.00 Minsts"), std::string::npos) << s;
    EXPECT_NE(s.find("Minsts/s"), std::string::npos) << s;
    EXPECT_NE(s.find("simulate"), std::string::npos) << s;
}

TEST(SelfProfilerTest, ResetForgetsEverything)
{
    SelfProfiler p;
    p.addSimulated(100, 100);
    { SelfProfiler::PhaseTimer t = p.phase("simulate"); }
    p.reset();
    EXPECT_EQ(p.insts(), 0u);
    EXPECT_EQ(p.points(), 0u);
    EXPECT_DOUBLE_EQ(p.phaseSeconds("simulate"), 0.0);
}

TEST(SelfProfilerTest, ProfileColumnsToggle)
{
    setProfileColumns(true);
    EXPECT_TRUE(profileColumnsEnabled());
    setProfileColumns(false);
    EXPECT_FALSE(profileColumnsEnabled());
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Tests for the cycle-level trace sink: spec/category parsing, the
 * per-event NDJSON schema (every line parses under the strict
 * sim/parse.hh reader with the documented fields), and a golden-file
 * check that pins the exact serialized bytes — the schema is a
 * contract with tools/trace2chrome.py and external consumers, so any
 * change must be deliberate (bump TRACE_SCHEMA_VERSION, regenerate
 * with VRSIM_REGEN_GOLDEN=1, update docs/observability.md).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/trace.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"

namespace vrsim
{
namespace
{

/** One deterministic event of every kind (the golden sequence). */
void
emitSample(TraceSink &sink)
{
    sink.meta("camel:VR", "camel", "VR", 8000, 1000);
    sink.inst(0, 7, "ld r1, [r2]", 10, 11, 12, 40, 41, true, false, 3);
    sink.mem(12, 4096, 7, "l2", 14, "demand", false, 2, true);
    sink.runahead(50, "enter", "VR", "window", 7, 0, 0);
    sink.lane(60, 9, 64, 32);
    sink.runahead(90, "exit", "VR", "window", 7, 64, 32);
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        out.push_back(line);
    return out;
}

TEST(TraceSpecTest, ParseCats)
{
    EXPECT_EQ(TraceSink::parseCats("all"), TRACE_ALL);
    EXPECT_EQ(TraceSink::parseCats("pipeline"),
              uint32_t(TraceCat::Pipeline));
    EXPECT_EQ(TraceSink::parseCats("mem,lanes"),
              uint32_t(TraceCat::Mem) | uint32_t(TraceCat::Lanes));
    EXPECT_EQ(TraceSink::parseCats("runahead,runahead"),
              uint32_t(TraceCat::Runahead));
    EXPECT_THROW(TraceSink::parseCats("bogus"), FatalError);
    EXPECT_THROW(TraceSink::parseCats(""), FatalError);
}

TEST(TraceSpecTest, ParseSpec)
{
    uint32_t mask = 0;
    std::string path;
    TraceSink::parseSpec("mem,runahead:/tmp/t.ndjson", mask, path);
    EXPECT_EQ(mask,
              uint32_t(TraceCat::Mem) | uint32_t(TraceCat::Runahead));
    EXPECT_EQ(path, "/tmp/t.ndjson");
    // A bare path traces everything.
    TraceSink::parseSpec("trace.out", mask, path);
    EXPECT_EQ(mask, TRACE_ALL);
    EXPECT_EQ(path, "trace.out");
    EXPECT_THROW(TraceSink::parseSpec("mem:", mask, path), FatalError);
}

TEST(TraceSinkTest, MaskGatesCategories)
{
    std::ostringstream os;
    TraceSink sink(os, uint32_t(TraceCat::Mem));
    EXPECT_TRUE(sink.enabled(TraceCat::Mem));
    EXPECT_FALSE(sink.enabled(TraceCat::Pipeline));
    EXPECT_FALSE(sink.enabled(TraceCat::Runahead));
    EXPECT_FALSE(sink.enabled(TraceCat::Lanes));
}

TEST(TraceSinkTest, EverySchemaFieldParsesStrictly)
{
    std::ostringstream os;
    TraceSink sink(os);
    emitSample(sink);
    EXPECT_EQ(sink.eventsEmitted(), 6u);

    std::vector<std::string> ls = lines(os.str());
    ASSERT_EQ(ls.size(), 6u);

    JsonValue meta = JsonValue::parse("meta", ls[0]);
    EXPECT_EQ(meta.at("ev").asString(), "meta");
    EXPECT_EQ(meta.at("version").asU64(), TRACE_SCHEMA_VERSION);
    EXPECT_EQ(meta.at("point").asString(), "camel:VR");
    EXPECT_EQ(meta.at("workload").asString(), "camel");
    EXPECT_EQ(meta.at("technique").asString(), "VR");
    EXPECT_EQ(meta.at("roi").asU64(), 8000u);
    EXPECT_EQ(meta.at("warmup").asU64(), 1000u);

    JsonValue inst = JsonValue::parse("inst", ls[1]);
    EXPECT_EQ(inst.at("ev").asString(), "inst");
    EXPECT_EQ(inst.at("cyc").asU64(), 41u);  // commit cycle
    EXPECT_EQ(inst.at("i").asU64(), 0u);
    EXPECT_EQ(inst.at("pc").asU64(), 7u);
    EXPECT_EQ(inst.at("disp").asU64(), 10u);
    EXPECT_EQ(inst.at("ready").asU64(), 11u);
    EXPECT_EQ(inst.at("iss").asU64(), 12u);
    EXPECT_EQ(inst.at("comp").asU64(), 40u);
    EXPECT_EQ(inst.at("load").asU64(), 1u);
    EXPECT_EQ(inst.at("misp").asU64(), 0u);
    EXPECT_EQ(inst.at("rob").asU64(), 3u);
    EXPECT_EQ(inst.at("op").asString(), "ld r1, [r2]");

    JsonValue mem = JsonValue::parse("mem", ls[2]);
    EXPECT_EQ(mem.at("ev").asString(), "mem");
    EXPECT_EQ(mem.at("cyc").asU64(), 12u);
    EXPECT_EQ(mem.at("addr").asU64(), 4096u);
    EXPECT_EQ(mem.at("lvl").asString(), "l2");
    EXPECT_EQ(mem.at("lat").asU64(), 14u);
    EXPECT_EQ(mem.at("req").asString(), "demand");
    EXPECT_EQ(mem.at("store").asU64(), 0u);
    EXPECT_EQ(mem.at("mshr").asU64(), 2u);
    EXPECT_EQ(mem.at("mshr_stall").asU64(), 1u);

    JsonValue ra = JsonValue::parse("runahead", ls[3]);
    EXPECT_EQ(ra.at("ev").asString(), "runahead");
    EXPECT_EQ(ra.at("phase").asString(), "enter");
    EXPECT_EQ(ra.at("engine").asString(), "VR");
    EXPECT_EQ(ra.at("kind").asString(), "window");
    EXPECT_EQ(ra.at("trigger_pc").asU64(), 7u);

    JsonValue lane = JsonValue::parse("lane", ls[4]);
    EXPECT_EQ(lane.at("ev").asString(), "lane");
    EXPECT_EQ(lane.at("cyc").asU64(), 60u);
    EXPECT_EQ(lane.at("pc").asU64(), 9u);
    EXPECT_EQ(lane.at("active").asU64(), 64u);
    EXPECT_EQ(lane.at("pf").asU64(), 32u);

    JsonValue exit_ev = JsonValue::parse("exit", ls[5]);
    EXPECT_EQ(exit_ev.at("phase").asString(), "exit");
    EXPECT_EQ(exit_ev.at("lanes").asU64(), 64u);
    EXPECT_EQ(exit_ev.at("pf").asU64(), 32u);
}

TEST(TraceSinkTest, GoldenFilePinsExactBytes)
{
    const std::string golden_path =
        std::string(VRSIM_OBS_TEST_DATA) + "/trace_events.ndjson";
    std::ostringstream os;
    TraceSink sink(os);
    emitSample(sink);

    if (const char *regen = std::getenv("VRSIM_REGEN_GOLDEN");
        regen && *regen && std::string(regen) != "0") {
        std::ofstream out(golden_path, std::ios::trunc |
                                       std::ios::binary);
        ASSERT_TRUE(out) << golden_path;
        out << os.str();
        GTEST_SKIP() << "regenerated " << golden_path;
    }

    std::ifstream in(golden_path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << golden_path
                    << " (regenerate with VRSIM_REGEN_GOLDEN=1)";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(os.str(), want.str())
        << "trace schema bytes changed; if intentional, bump "
           "TRACE_SCHEMA_VERSION, re-run with VRSIM_REGEN_GOLDEN=1 "
           "and update docs/observability.md";
}

TEST(TraceSinkTest, EscapesDisassemblyAndMetaStrings)
{
    std::ostringstream os;
    TraceSink sink(os);
    sink.inst(0, 1, "weird \"op\"\nname", 1, 1, 1, 1, 2, false, false,
              1);
    JsonValue v = JsonValue::parse("inst",
                                   lines(os.str()).at(0));
    EXPECT_EQ(v.at("op").asString(), "weird \"op\"\nname");
}

} // namespace
} // namespace vrsim

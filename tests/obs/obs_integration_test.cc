/**
 * @file
 * End-to-end observability guarantees: attaching a trace sink must not
 * perturb a sweep's statistics (byte-identical CSV), traced sweeps
 * stay deterministic across requested job counts (tracing forces one
 * worker), and the per-point trace stream carries one meta event per
 * plan point with pipeline events in between.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "driver/report.hh"
#include "driver/sweep_runner.hh"
#include "obs/trace.hh"
#include "sim/parse.hh"

namespace vrsim
{
namespace
{

RunPlan
smallPlan()
{
    GraphScale g;
    g.nodes = 1 << 10;
    g.avg_degree = 8;
    HpcDbScale h;
    h.elements = 1 << 10;
    RunPlan plan(SystemConfig::benchScale());
    plan.scale(g, h).roi(4000).warmup(500);
    plan.add({"camel"}, {Technique::OoO, Technique::Vr,
                         Technique::Dvr});
    return plan;
}

std::string
tableCsv(const ResultTable &table)
{
    std::ostringstream os;
    table.writeCsv(os);
    return os.str();
}

ResultTable
sweep(unsigned jobs, WorkloadCache &cache, TraceSink *trace = nullptr)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    opts.cache = &cache;
    opts.trace = trace;
    return SweepRunner(opts).run(smallPlan());
}

TEST(ObsIntegrationTest, TracingDoesNotPerturbStats)
{
    WorkloadCache cache;
    std::string plain = tableCsv(sweep(1, cache));

    std::ostringstream trace_os;
    TraceSink sink(trace_os);
    std::string traced = tableCsv(sweep(1, cache, &sink));

    EXPECT_EQ(plain, traced);
    EXPECT_GT(sink.eventsEmitted(), 0u);
}

TEST(ObsIntegrationTest, TracedSweepDeterministicAcrossJobRequests)
{
    // Tracing forces one worker, so an 8-job request must yield the
    // same table AND the same event stream as an explicit 1-job run.
    WorkloadCache cache;
    std::ostringstream os1, os8;
    TraceSink sink1(os1), sink8(os8);
    std::string csv1 = tableCsv(sweep(1, cache, &sink1));
    std::string csv8 = tableCsv(sweep(8, cache, &sink8));
    EXPECT_EQ(csv1, csv8);
    EXPECT_EQ(os1.str(), os8.str());
}

TEST(ObsIntegrationTest, TraceCarriesOneMetaPerPoint)
{
    WorkloadCache cache;
    std::ostringstream os;
    TraceSink sink(os);
    sweep(1, cache, &sink);

    size_t metas = 0;
    std::istringstream in(os.str());
    std::string line;
    std::vector<std::string> points;
    while (std::getline(in, line)) {
        JsonValue ev = JsonValue::parse("event", line);
        if (ev.at("ev").asString() == "meta") {
            ++metas;
            EXPECT_EQ(ev.at("version").asU64(), TRACE_SCHEMA_VERSION);
            points.push_back(ev.at("point").asString());
        }
    }
    EXPECT_EQ(metas, 3u);
    EXPECT_EQ(points, (std::vector<std::string>{
                          "camel:OoO", "camel:VR", "camel:DVR"}));
}

TEST(ObsIntegrationTest, CategoryMaskLimitsEmittedEvents)
{
    WorkloadCache cache;
    std::ostringstream all_os, ra_os;
    TraceSink all_sink(all_os);
    TraceSink ra_sink(ra_os, uint32_t(TraceCat::Runahead));
    sweep(1, cache, &all_sink);
    sweep(1, cache, &ra_sink);
    EXPECT_LT(ra_sink.eventsEmitted(), all_sink.eventsEmitted());

    std::istringstream in(ra_os.str());
    std::string line;
    while (std::getline(in, line)) {
        JsonValue ev = JsonValue::parse("event", line);
        const std::string kind = ev.at("ev").asString();
        EXPECT_TRUE(kind == "meta" || kind == "runahead") << kind;
    }
}

TEST(ObsIntegrationTest, StatsJsonDumpsEveryPoint)
{
    WorkloadCache cache;
    ResultTable table = sweep(1, cache);
    std::ostringstream os;
    writeStatsJson(os, table);
    JsonValue doc = JsonValue::parse("stats-json", os.str());
    ASSERT_EQ(doc.asArray().size(), 3u);
    const JsonValue &cell = doc.asArray()[1];
    EXPECT_EQ(cell.at("point").asString(), "camel:VR");
    EXPECT_EQ(cell.at("technique").asString(), "VR");
    EXPECT_EQ(cell.at("status").asString(), "ok");
    const JsonValue &stats = cell.at("stats");
    EXPECT_GT(stats.at("core.instructions").asU64(), 0u);
    EXPECT_GT(stats.at("vr.triggers").asU64(), 0u);
    EXPECT_FALSE(stats.find("host.seconds"));  // profiling off
}

} // namespace
} // namespace vrsim

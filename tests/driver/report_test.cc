/**
 * @file
 * Tests for the report writers: registry mapping, CSV shape, and the
 * human-readable report's content.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "driver/report.hh"
#include "obs/self_profile.hh"

namespace vrsim
{
namespace
{

SimResult
sampleResult(Technique t)
{
    GraphScale g;
    g.nodes = 1 << 11;
    g.avg_degree = 8;
    HpcDbScale h;
    h.elements = 1 << 12;
    return runSimulation("camel", t, SystemConfig::benchScale(), g, h,
                         10000);
}

TEST(ReportTest, RegistryHasCoreAndMemKeys)
{
    StatsRegistry g = buildRegistry(sampleResult(Technique::OoO));
    for (const char *k :
         {"core.instructions", "core.cycles", "core.ipc", "core.loads",
          "mem.demand_accesses", "mem.dram_total", "mem.mlp",
          "core.stall_fetch", "cpi.base", "cpi.total"})
        EXPECT_TRUE(g.has(k)) << k;
    EXPECT_GT(g.value("core.ipc"), 0.0);
    EXPECT_FALSE(g.has("dvr.spawns"));
}

TEST(ReportTest, RegistryIncludesEngineSections)
{
    StatsRegistry d = buildRegistry(sampleResult(Technique::Dvr));
    EXPECT_TRUE(d.has("dvr.spawns"));
    EXPECT_TRUE(d.has("dvr.mean_lanes"));
    StatsRegistry v = buildRegistry(sampleResult(Technique::Vr));
    EXPECT_TRUE(v.has("vr.triggers"));
    StatsRegistry p = buildRegistry(sampleResult(Technique::Pre));
    EXPECT_TRUE(p.has("pre.intervals"));
}

TEST(ReportTest, RegistryHostColumnsAreOptIn)
{
    SimResult r = sampleResult(Technique::OoO);
    r.host_seconds = 0.5;
    EXPECT_FALSE(buildRegistry(r).has("host.seconds"));
    setProfileColumns(true);
    StatsRegistry g = buildRegistry(r);
    setProfileColumns(false);
    ASSERT_TRUE(g.has("host.seconds"));
    EXPECT_DOUBLE_EQ(g.value("host.seconds"), 0.5);
    EXPECT_GT(g.value("host.minsts_per_sec"), 0.0);
}

TEST(ReportTest, CsvHasHeaderAndMatchingColumns)
{
    std::ostringstream os;
    CsvWriter w(os);
    w.row(sampleResult(Technique::OoO));
    w.row(sampleResult(Technique::OoO));
    std::istringstream in(os.str());
    std::string header, row1, row2;
    std::getline(in, header);
    std::getline(in, row1);
    std::getline(in, row2);
    auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(header), commas(row1));
    EXPECT_EQ(commas(row1), commas(row2));
    EXPECT_NE(header.find("workload,technique"), std::string::npos);
    EXPECT_NE(header.find("core.ipc"), std::string::npos);
    EXPECT_NE(row1.find("camel,OoO"), std::string::npos);
}

TEST(ReportTest, CsvColumnsStableAcrossTechniques)
{
    // The header is fixed by the first row; later rows with more
    // stats must not add columns (missing keys become 0).
    std::ostringstream os;
    CsvWriter w(os);
    w.row(sampleResult(Technique::OoO));
    w.row(sampleResult(Technique::Dvr));
    std::istringstream in(os.str());
    std::string header, row1, row2;
    std::getline(in, header);
    std::getline(in, row1);
    std::getline(in, row2);
    auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(header), commas(row2));
}

TEST(ReportTest, CsvPointColumnPrefixesRows)
{
    std::ostringstream os;
    CsvWriter w(os);
    w.row(sampleResult(Technique::OoO), "camel:OoO:rob=64");
    w.row(sampleResult(Technique::Dvr), "camel:DVR");
    std::istringstream in(os.str());
    std::string header, row1, row2;
    std::getline(in, header);
    std::getline(in, row1);
    std::getline(in, row2);
    EXPECT_EQ(header.rfind("point,workload,technique", 0), 0u);
    EXPECT_EQ(row1.rfind("camel:OoO:rob=64,camel,OoO", 0), 0u);
    EXPECT_EQ(row2.rfind("camel:DVR,camel,DVR", 0), 0u);
    auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(header), commas(row1));
}

TEST(ReportTest, CsvMixingPointAndPlainRowsPanics)
{
    std::ostringstream os;
    CsvWriter w(os);
    w.row(sampleResult(Technique::OoO), "camel:OoO");
    EXPECT_THROW(w.row(sampleResult(Technique::OoO)), PanicError);
}

TEST(ReportTest, JsonSingleResultIsWellFormed)
{
    SimResult r = sampleResult(Technique::Dvr);
    std::ostringstream os;
    printJson(os, r);
    const std::string s = os.str();
    EXPECT_EQ(s.rfind("{", 0), 0u);
    EXPECT_NE(s.find("\"workload\": \"camel\""), std::string::npos);
    EXPECT_NE(s.find("\"technique\": \"DVR\""), std::string::npos);
    EXPECT_NE(s.find("\"status\": \"ok\""), std::string::npos);
    EXPECT_NE(s.find("\"core.ipc\":"), std::string::npos);
    EXPECT_NE(s.find("\"dvr.spawns\":"), std::string::npos);
    // Balanced braces (crude well-formedness check).
    EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
              std::count(s.begin(), s.end(), '}'));
}

TEST(ReportTest, JsonStatusCarriesFailureMessage)
{
    SimResult r;
    r.workload = "camel";
    r.technique = Technique::Vr;
    r.status = SimStatus::Panic;
    r.status_message = "panic: \"quoted\"\nand a newline";
    std::ostringstream os;
    printJson(os, r);
    EXPECT_NE(os.str().find("\"status\": \"panic\""),
              std::string::npos);
    // Quotes and newlines in the message must be escaped.
    EXPECT_NE(os.str().find("\\\"quoted\\\"\\nand a newline"),
              std::string::npos);
}

TEST(ReportTest, JsonArrayWrapsResults)
{
    std::vector<SimResult> rs = {sampleResult(Technique::OoO),
                                 sampleResult(Technique::Vr)};
    std::ostringstream os;
    printJson(os, rs);
    const std::string s = os.str();
    EXPECT_EQ(s.rfind("[", 0), 0u);
    EXPECT_NE(s.find("\"technique\": \"OoO\""), std::string::npos);
    EXPECT_NE(s.find("\"technique\": \"VR\""), std::string::npos);
    EXPECT_EQ(std::count(s.begin(), s.end(), '['),
              std::count(s.begin(), s.end(), ']'));
}

TEST(ReportTest, HumanReportMentionsKeySections)
{
    std::ostringstream os;
    printReport(os, sampleResult(Technique::Dvr),
                SystemConfig::benchScale());
    for (const char *k : {"performance", "dispatch stalls", "memory",
                          "Decoupled Vector Runahead", "IPC",
                          "MLP", "technique       DVR"})
        EXPECT_NE(os.str().find(k), std::string::npos) << k;
}

} // namespace
} // namespace vrsim

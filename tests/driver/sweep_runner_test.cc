/**
 * @file
 * Tests for the experiment-plan layer: RunPlan grid enumeration and
 * point IDs, ResultTable lookup, and the SweepRunner's determinism
 * (identical tables at any job count) and fault isolation (a failing
 * point cannot poison its siblings).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "driver/sweep_runner.hh"

namespace vrsim
{
namespace
{

/** A small, fast plan over real workloads. */
RunPlan
smallPlan()
{
    GraphScale g;
    g.nodes = 1 << 10;
    g.avg_degree = 8;
    HpcDbScale h;
    h.elements = 1 << 10;
    RunPlan plan(SystemConfig::benchScale());
    plan.scale(g, h).roi(4000).warmup(500);
    return plan;
}

ResultTable
sweep(const RunPlan &plan, unsigned jobs, WorkloadCache &cache)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    opts.cache = &cache;
    return SweepRunner(opts).run(plan);
}

TEST(RunPlanTest, GridEnumerationOrderAndIds)
{
    RunPlan plan = smallPlan();
    plan.add({"camel", "kangaroo"}, {Technique::OoO, Technique::Dvr},
             {{"a", [](SystemConfig &) {}},
              {"b", [](SystemConfig &) {}}});
    ASSERT_EQ(plan.size(), 8u);
    std::vector<RunPoint> pts = plan.points();
    ASSERT_EQ(pts.size(), 8u);
    // spec-major, then column, then variant.
    EXPECT_EQ(pts[0].id(), "camel:OoO:a");
    EXPECT_EQ(pts[1].id(), "camel:OoO:b");
    EXPECT_EQ(pts[2].id(), "camel:DVR:a");
    EXPECT_EQ(pts[3].id(), "camel:DVR:b");
    EXPECT_EQ(pts[4].id(), "kangaroo:OoO:a");
    EXPECT_EQ(pts[7].id(), "kangaroo:DVR:b");
}

TEST(RunPlanTest, BaseVariantHasNoIdSuffix)
{
    RunPlan plan = smallPlan();
    plan.add({"camel"}, {Technique::Vr});
    EXPECT_EQ(plan.points().at(0).id(), "camel:VR");
}

TEST(RunPlanTest, VariantTweakAppliesToPointConfig)
{
    RunPlan plan = smallPlan();
    plan.add({"camel"}, {Technique::OoO},
             {{"rob=64", [](SystemConfig &c) { c.core.rob_size = 64; }},
              ConfigVariant::base()});
    std::vector<RunPoint> pts = plan.points();
    EXPECT_EQ(pts[0].cfg.core.rob_size, 64u);
    EXPECT_EQ(pts[1].cfg.core.rob_size,
              SystemConfig::benchScale().core.rob_size);
}

TEST(RunPlanTest, MultipleGridsUnionIntoOnePlan)
{
    RunPlan plan = smallPlan();
    plan.add({"camel"}, {Technique::OoO, Technique::Dvr});
    plan.add({"camel-swpf"}, {Technique::OoO});
    EXPECT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan.points().back().id(), "camel-swpf:OoO");
}

TEST(RunPlanTest, FeatureOverrideColumnsCarryFeatures)
{
    DvrFeatures inval = DvrFeatures::full();
    inval.reconverge = false;
    RunPlan plan = smallPlan();
    plan.add({"camel"},
             {TechColumn(Technique::Dvr, "invalidate", inval),
              TechColumn(Technique::Dvr, "reconverge",
                         DvrFeatures::full())});
    std::vector<RunPoint> pts = plan.points();
    ASSERT_TRUE(pts[0].features.has_value());
    EXPECT_FALSE(pts[0].features->reconverge);
    ASSERT_TRUE(pts[1].features.has_value());
    EXPECT_TRUE(pts[1].features->reconverge);
    EXPECT_EQ(pts[0].id(), "camel:invalidate");
}

TEST(ResultTableTest, LookupByCellAndMissPanics)
{
    RunPlan plan = smallPlan();
    plan.add({"camel"}, {Technique::OoO});
    WorkloadCache cache;
    ResultTable table = sweep(plan, 1, cache);
    EXPECT_NO_THROW(table.at("camel", Technique::OoO));
    EXPECT_EQ(table.find("camel", "nope"), nullptr);
    EXPECT_THROW(table.at("camel", "nope"), PanicError);
    EXPECT_THROW(table.at("camel", Technique::OoO, "rob=64"),
                 PanicError);
}

TEST(ResultTableTest, DuplicatePointPanics)
{
    RunPlan plan = smallPlan();
    plan.add({"camel"}, {Technique::OoO});
    plan.add({"camel"}, {Technique::OoO});
    std::vector<RunPoint> pts = plan.points();
    std::vector<SimResult> results(pts.size());
    EXPECT_THROW(ResultTable(std::move(pts), std::move(results)),
                 PanicError);
}

TEST(SweepRunnerTest, TableIsByteIdenticalAcrossJobCounts)
{
    RunPlan plan = smallPlan();
    plan.add({"camel", "kangaroo", "hj2"},
             {Technique::OoO, Technique::Vr, Technique::Dvr});

    WorkloadCache c1, c8;
    ResultTable serial = sweep(plan, 1, c1);
    ResultTable parallel = sweep(plan, 8, c8);

    std::ostringstream os1, os8;
    serial.writeCsv(os1);
    parallel.writeCsv(os8);
    EXPECT_FALSE(os1.str().empty());
    EXPECT_EQ(os1.str(), os8.str());
}

TEST(SweepRunnerTest, SpecsBuiltOncePerSweep)
{
    RunPlan plan = smallPlan();
    plan.add({"camel", "kangaroo"},
             {Technique::OoO, Technique::Vr, Technique::Dvr});
    WorkloadCache cache;
    sweep(plan, 4, cache);
    // 6 points but only 2 distinct spec+scale artifacts.
    EXPECT_EQ(cache.builds(), 2u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(SweepRunnerTest, InjectedFailureDoesNotPoisonSiblings)
{
    RunPlan plan = smallPlan();
    plan.add({"camel"},
             {Technique::OoO, Technique::Vr, Technique::Dvr});
    plan.injectFail(Technique::Vr);
    WorkloadCache cache;
    ResultTable table = sweep(plan, 2, cache);

    EXPECT_EQ(table.failures(), 1u);
    const SimResult &failed = table.at("camel", Technique::Vr);
    EXPECT_EQ(failed.status, SimStatus::Panic);
    EXPECT_NE(failed.status_message.find("fault injection"),
              std::string::npos);
    EXPECT_TRUE(table.at("camel", Technique::OoO).ok());
    EXPECT_TRUE(table.at("camel", Technique::Dvr).ok());
    EXPECT_GT(table.at("camel", Technique::Dvr).ipc(), 0.0);
}

TEST(SweepRunnerTest, UnknownSpecIsRecordedAsFatalResult)
{
    RunPlan plan = smallPlan();
    plan.add({"camel", "no-such-benchmark"}, {Technique::OoO});
    WorkloadCache cache;
    ResultTable table = sweep(plan, 1, cache);
    EXPECT_TRUE(table.at("camel", Technique::OoO).ok());
    EXPECT_EQ(table.at("no-such-benchmark", Technique::OoO).status,
              SimStatus::Fatal);
}

TEST(SweepRunnerTest, CsvRowsCarryPointIds)
{
    RunPlan plan = smallPlan();
    plan.add({"camel"}, {Technique::OoO},
             {{"rob=64", [](SystemConfig &c) { c.core.rob_size = 64; }},
              ConfigVariant::base()});
    WorkloadCache cache;
    ResultTable table = sweep(plan, 1, cache);
    std::ostringstream os;
    table.writeCsv(os);
    EXPECT_EQ(os.str().rfind("point,workload,technique", 0), 0u);
    EXPECT_NE(os.str().find("camel:OoO:rob=64,"), std::string::npos);
    EXPECT_NE(os.str().find("\ncamel:OoO,"), std::string::npos);
}

TEST(SweepRunnerTest, InjectKindParseRejectsStopSignals)
{
    uint32_t arg = 0;
    EXPECT_EQ(injectKindParse("killself:9", arg), InjectKind::KillSelf);
    EXPECT_EQ(arg, 9u);
    // Stop signals suspend the cell instead of killing it — useless
    // as a death test and a hang risk, so the parser refuses them.
    EXPECT_THROW(injectKindParse("killself:19", arg), FatalError);
    EXPECT_THROW(injectKindParse("killself:20", arg), FatalError);
    EXPECT_THROW(injectKindParse("killself:0", arg), FatalError);
    EXPECT_THROW(injectKindParse("killself:65", arg), FatalError);
}

TEST(SweepRunnerTest, JobsFromEnvParsesStrictly)
{
    unsetenv("VRSIM_JOBS");
    EXPECT_EQ(SweepRunner::jobsFromEnv(3), 3u);
    setenv("VRSIM_JOBS", "5", 1);
    EXPECT_EQ(SweepRunner::jobsFromEnv(1), 5u);
    setenv("VRSIM_JOBS", "0", 1);
    EXPECT_GE(SweepRunner::jobsFromEnv(1), 1u);
    setenv("VRSIM_JOBS", "garbage", 1);
    EXPECT_THROW(SweepRunner::jobsFromEnv(1), FatalError);
    setenv("VRSIM_JOBS", "9999", 1);
    EXPECT_THROW(SweepRunner::jobsFromEnv(1), FatalError);
    unsetenv("VRSIM_JOBS");
}

} // namespace
} // namespace vrsim

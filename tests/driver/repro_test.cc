/**
 * @file
 * Tests for the repro/journal serialization layer: exact JSON
 * round-trips of RunPoints, SimResults and ReproBundles, bundle files
 * on disk, plan fingerprints, and journal parsing (including torn
 * tails and plan mismatches).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "driver/repro.hh"
#include "driver/sweep_runner.hh"

namespace vrsim
{
namespace
{

/** A fully-populated point: feature overrides, tweaked config, small
 *  scales, injected failure — every optional serializer path. */
RunPoint
richPoint()
{
    GraphScale g;
    g.nodes = 1 << 10;
    g.avg_degree = 8;
    g.seed = 99;
    HpcDbScale h;
    h.elements = 1 << 10;
    h.seed = 3;

    SystemConfig cfg = SystemConfig::benchScale();
    cfg.core.rob_size = 123;
    cfg.l1d.mshrs = 17;
    cfg.collect_digest = true;
    cfg.digest_interval = 512;

    DvrFeatures feats = DvrFeatures::full();
    feats.reconverge = false;

    RunPlan plan(cfg);
    plan.scale(g, h).roi(4000).warmup(500);
    plan.add({"camel"}, {TechColumn(Technique::Dvr, "ablate", feats)},
             {{"rob=123", [](SystemConfig &) {}}});
    plan.injectFail(Technique::Dvr, InjectKind::Diverge);
    return plan.points().at(0);
}

/** A real (tiny) run so the result carries live statistics. */
SimResult
smallResult()
{
    RunPoint p = richPoint();
    p.inject_fail = false;
    WorkloadCache cache;
    SimResult r = SweepRunner::runPoint(p, cache);
    EXPECT_TRUE(r.ok()) << r.status_message;
    EXPECT_TRUE(r.digest.has_value());
    return r;
}

TEST(SimStatusNameTest, RoundTripsEveryStatus)
{
    for (SimStatus s : {SimStatus::Ok, SimStatus::Fatal,
                        SimStatus::Panic, SimStatus::Hang,
                        SimStatus::Diverged})
        EXPECT_EQ(simStatusFromName(simStatusName(s)), s);
    EXPECT_THROW(simStatusFromName("exploded"), FatalError);
}

TEST(ReproRoundTripTest, PointJsonIsExact)
{
    RunPoint p = richPoint();
    std::string json = pointToJson(p);
    RunPoint q = pointFromJson("test point", json);
    // Serialize-parse-serialize fixpoint implies every field
    // round-tripped exactly.
    EXPECT_EQ(pointToJson(q), json);
    EXPECT_EQ(q.id(), p.id());
    EXPECT_EQ(q.cfg.core.rob_size, 123u);
    EXPECT_EQ(q.cfg.digest_interval, 512u);
    EXPECT_EQ(q.gscale.seed, 99u);
    ASSERT_TRUE(q.features.has_value());
    EXPECT_FALSE(q.features->reconverge);
    EXPECT_TRUE(q.inject_fail);
    EXPECT_EQ(q.inject_kind, InjectKind::Diverge);
}

TEST(ReproRoundTripTest, PlainPointOmitsOptionals)
{
    RunPlan plan(SystemConfig::benchScale());
    plan.add({"camel"}, {Technique::OoO});
    RunPoint p = plan.points().at(0);
    RunPoint q = pointFromJson("plain point", pointToJson(p));
    EXPECT_EQ(pointToJson(q), pointToJson(p));
    EXPECT_FALSE(q.features.has_value());
    EXPECT_FALSE(q.inject_fail);
}

TEST(ReproRoundTripTest, SamplingFieldsRoundTrip)
{
    RunPoint p = richPoint();
    p.inject_fail = false;
    p.warmup = 0;  // interval sampling replaces the global warmup
    p.sampling = SamplingPlan{256, 2000, 400, 100};
    std::string json = pointToJson(p);
    EXPECT_NE(json.find("\"sampling\":"), std::string::npos);
    RunPoint q = pointFromJson("sampled point", json);
    EXPECT_EQ(pointToJson(q), json);
    EXPECT_EQ(q.sampling.ff_insts, 256u);
    EXPECT_EQ(q.sampling.period, 2000u);
    EXPECT_EQ(q.sampling.detail, 400u);
    EXPECT_EQ(q.sampling.warm, 100u);

    // A live sampled run's summary survives the journal round-trip.
    WorkloadCache cache;
    SimResult r = SweepRunner::runPoint(q, cache);
    ASSERT_TRUE(r.ok()) << r.status_message;
    ASSERT_TRUE(r.sample.has_value());
    EXPECT_GT(r.sample->intervals, 0u);
    std::string rjson = resultToJson(r);
    EXPECT_NE(rjson.find("\"sample\":"), std::string::npos);
    SimResult s = resultFromJson("sampled result", rjson);
    EXPECT_EQ(resultToJson(s), rjson);
    ASSERT_TRUE(s.sample.has_value());
    EXPECT_EQ(s.sample->intervals, r.sample->intervals);
    EXPECT_EQ(s.sample->ff_insts, r.sample->ff_insts);
    EXPECT_EQ(s.sample->warm_insts, r.sample->warm_insts);
    EXPECT_DOUBLE_EQ(s.sample->cpi_sum, r.sample->cpi_sum);
    EXPECT_DOUBLE_EQ(s.sample->cpi_sumsq, r.sample->cpi_sumsq);
}

TEST(ReproRoundTripTest, UnsampledSerializationIsUnchanged)
{
    // Pre-sampling journals and bundles must stay byte-identical:
    // the new keys only appear when a plan/summary is actually set.
    EXPECT_EQ(pointToJson(richPoint()).find("\"sampling\":"),
              std::string::npos);
    EXPECT_EQ(resultToJson(smallResult()).find("\"sample\":"),
              std::string::npos);
}

TEST(ReproRoundTripTest, ResultJsonIsExact)
{
    SimResult r = smallResult();
    std::string json = resultToJson(r);
    SimResult s = resultFromJson("test result", json);
    EXPECT_EQ(resultToJson(s), json);
    EXPECT_EQ(s.workload, r.workload);
    EXPECT_EQ(s.technique, r.technique);
    EXPECT_EQ(s.status, r.status);
    EXPECT_EQ(s.core.instructions, r.core.instructions);
    EXPECT_EQ(s.core.cycles, r.core.cycles);
    EXPECT_DOUBLE_EQ(s.mlp, r.mlp);
    ASSERT_TRUE(s.digest.has_value());
    EXPECT_TRUE(*s.digest == *r.digest);
    EXPECT_EQ(s.dvr.has_value(), r.dvr.has_value());
}

TEST(ReproRoundTripTest, MalformedJsonIsFatalWithDiagnostic)
{
    EXPECT_THROW(resultFromJson("doc", "{\"workload\":"), FatalError);
    EXPECT_THROW(pointFromJson("doc", "not json"), FatalError);
    try {
        resultFromJson("doc", "[1, 2]");
        FAIL() << "array accepted as a result";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("doc"),
                  std::string::npos);
    }
}

TEST(ReproBundleTest, BundleRoundTripsWithDivergence)
{
    ReproBundle b;
    b.point = richPoint();
    b.status = SimStatus::Diverged;
    b.status_message = "digest mismatch at interval 3";
    DigestRecord base;
    base.interval = 512;
    base.instructions = 4000;
    base.final_digest = 0xdeadbeefcafef00dull;
    base.intervals = {1, 2, 3};
    b.baseline_digest = base;
    DigestDivergence div;
    div.interval_index = 3;
    div.inst_lo = 1536;
    div.inst_hi = 2048;
    div.expected = 0x1111;
    div.actual = 0x2222;
    b.divergence = div;

    ReproBundle c = bundleFromJson("bundle", bundleToJson(b));
    EXPECT_EQ(bundleToJson(c), bundleToJson(b));
    EXPECT_EQ(c.status, SimStatus::Diverged);
    ASSERT_TRUE(c.baseline_digest.has_value());
    EXPECT_TRUE(*c.baseline_digest == base);
    ASSERT_TRUE(c.divergence.has_value());
    EXPECT_EQ(c.divergence->interval_index, 3u);
    EXPECT_EQ(c.divergence->actual, 0x2222u);
}

TEST(ReproBundleTest, WriteAndReadBackFromDisk)
{
    ReproBundle b;
    b.point = richPoint();
    b.status = SimStatus::Panic;
    b.status_message = "panic: injected";

    std::string dir = ::testing::TempDir() + "vrsim_repro_test";
    std::string path = writeReproBundle(dir, b);
    EXPECT_EQ(path.rfind(dir, 0), 0u);
    ReproBundle c = readReproBundle(path);
    EXPECT_EQ(bundleToJson(c), bundleToJson(b));

    EXPECT_THROW(readReproBundle(dir + "/no-such-bundle.json"),
                 FatalError);
}

TEST(PlanFingerprintTest, SensitiveToAnyPointChange)
{
    RunPlan plan(SystemConfig::benchScale());
    plan.add({"camel", "kangaroo"}, {Technique::OoO, Technique::Dvr});
    std::vector<RunPoint> pts = plan.points();
    const uint64_t fp = planFingerprint(pts);
    EXPECT_EQ(planFingerprint(pts), fp);

    std::vector<RunPoint> tweaked = pts;
    tweaked[2].cfg.core.rob_size++;
    EXPECT_NE(planFingerprint(tweaked), fp);

    std::vector<RunPoint> reordered = pts;
    std::swap(reordered[0], reordered[1]);
    EXPECT_NE(planFingerprint(reordered), fp);

    std::vector<RunPoint> shorter(pts.begin(), pts.end() - 1);
    EXPECT_NE(planFingerprint(shorter), fp);
}

class JournalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        RunPlan plan(SystemConfig::benchScale());
        GraphScale g;
        g.nodes = 1 << 10;
        g.avg_degree = 8;
        HpcDbScale h;
        h.elements = 1 << 10;
        plan.scale(g, h).roi(4000).warmup(500);
        plan.add({"camel"}, {Technique::OoO, Technique::Dvr});
        points_ = plan.points();
        fp_ = planFingerprint(points_);
        path_ = ::testing::TempDir() + "vrsim_journal_test.jsonl";
    }

    std::string
    journalText(size_t entries)
    {
        SimResult r = smallResult();
        std::ostringstream os;
        os << journalHeaderLine(fp_, points_.size()) << "\n";
        for (size_t i = 0; i < entries; i++)
            os << journalEntryLine(i, points_[i], r) << "\n";
        return os.str();
    }

    void
    writeFile(const std::string &text)
    {
        std::ofstream os(path_);
        os << text;
    }

    std::vector<RunPoint> points_;
    uint64_t fp_ = 0;
    std::string path_;
};

TEST_F(JournalTest, MissingFileYieldsEmptySlots)
{
    auto slots = loadJournal(path_ + ".absent", fp_, points_.size());
    ASSERT_EQ(slots.size(), points_.size());
    for (const auto &s : slots)
        EXPECT_FALSE(s.has_value());
}

TEST_F(JournalTest, RestoresCompletedEntries)
{
    writeFile(journalText(1));
    auto slots = loadJournal(path_, fp_, points_.size());
    ASSERT_EQ(slots.size(), 2u);
    EXPECT_TRUE(slots[0].has_value());
    EXPECT_FALSE(slots[1].has_value());
    EXPECT_TRUE(slots[0]->ok());
    EXPECT_GT(slots[0]->core.instructions, 0u);
}

TEST_F(JournalTest, TornTailIsToleratedAndStopsReading)
{
    std::string text = journalText(2);
    // The process died mid-append: cut the final line in half.
    writeFile(text.substr(0, text.size() - text.size() / 4));
    auto slots = loadJournal(path_, fp_, points_.size());
    EXPECT_TRUE(slots[0].has_value());
    EXPECT_FALSE(slots[1].has_value());
}

TEST_F(JournalTest, FingerprintMismatchIsFatal)
{
    writeFile(journalText(1));
    EXPECT_THROW(loadJournal(path_, fp_ ^ 1, points_.size()),
                 FatalError);
}

TEST_F(JournalTest, PointCountMismatchIsFatal)
{
    writeFile(journalText(1));
    EXPECT_THROW(loadJournal(path_, fp_, points_.size() + 1),
                 FatalError);
}

TEST_F(JournalTest, OutOfRangeEntryIndexIsFatal)
{
    SimResult r = smallResult();
    std::ostringstream os;
    os << journalHeaderLine(fp_, points_.size()) << "\n"
       << journalEntryLine(7, points_[0], r) << "\n";
    writeFile(os.str());
    EXPECT_THROW(loadJournal(path_, fp_, points_.size()), FatalError);
}

} // namespace
} // namespace vrsim

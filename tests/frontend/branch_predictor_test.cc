/**
 * @file
 * Tests for the TAGE-lite branch predictor: learning biased and
 * pattern branches, the loop predictor, and rate accounting.
 */

#include <gtest/gtest.h>

#include "frontend/branch_predictor.hh"
#include "sim/rng.hh"

namespace vrsim
{
namespace
{

/** Run a branch stream and return the accuracy over the last half. */
template <typename Fn>
double
trainAccuracy(BranchPredictor &bp, uint64_t pc, int n, Fn &&outcome)
{
    int correct = 0, measured = 0;
    for (int i = 0; i < n; i++) {
        bool taken = outcome(i);
        bool pred = bp.predict(pc);
        bp.update(pc, taken);
        if (i >= n / 2) {
            ++measured;
            if (pred == taken)
                ++correct;
        }
    }
    return double(correct) / double(measured);
}

TEST(BranchPredictorTest, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    double acc = trainAccuracy(bp, 0x40, 2000,
                               [](int) { return true; });
    EXPECT_GT(acc, 0.99);
}

TEST(BranchPredictorTest, LearnsAlwaysNotTaken)
{
    BranchPredictor bp;
    double acc = trainAccuracy(bp, 0x44, 2000,
                               [](int) { return false; });
    EXPECT_GT(acc, 0.99);
}

TEST(BranchPredictorTest, LearnsShortPeriodicPattern)
{
    BranchPredictor bp;
    // TTTN repeating: needs history, not just bias.
    double acc = trainAccuracy(bp, 0x48, 4000,
                               [](int i) { return i % 4 != 3; });
    EXPECT_GT(acc, 0.9);
}

TEST(BranchPredictorTest, LoopPredictorLearnsTripCount)
{
    BranchPredictor bp;
    // A loop branch taken 9 times then not taken, repeatedly: the
    // loop predictor should capture the trip count exactly.
    double acc = trainAccuracy(bp, 0x4C, 5000,
                               [](int i) { return i % 10 != 9; });
    EXPECT_GT(acc, 0.95);
}

TEST(BranchPredictorTest, RandomBranchStaysNearChance)
{
    BranchPredictor bp;
    Rng rng(5);
    double acc = trainAccuracy(bp, 0x50, 4000,
                               [&](int) { return rng.next() & 1; });
    EXPECT_LT(acc, 0.65);
    EXPECT_GT(acc, 0.35);
}

TEST(BranchPredictorTest, TracksLookupAndMispredictCounts)
{
    BranchPredictor bp;
    for (int i = 0; i < 100; i++) {
        bp.predict(0x60);
        bp.update(0x60, true);
    }
    EXPECT_EQ(bp.lookups(), 100u);
    EXPECT_LE(bp.mispredicts(), 100u);
    EXPECT_GE(bp.mispredictRate(), 0.0);
    EXPECT_LE(bp.mispredictRate(), 1.0);
}

TEST(BranchPredictorTest, ManyBranchesDoNotInterfereFatally)
{
    BranchPredictor bp;
    // 64 biased branches with distinct PCs: aggregate accuracy must
    // stay high despite shared tables.
    int correct = 0, total = 0;
    for (int round = 0; round < 200; round++) {
        for (uint64_t b = 0; b < 64; b++) {
            uint64_t pc = 0x100 + b * 4;
            bool taken = (b & 1) != 0;
            bool pred = bp.predict(pc);
            bp.update(pc, taken);
            if (round > 100) {
                ++total;
                if (pred == taken)
                    ++correct;
            }
        }
    }
    EXPECT_GT(double(correct) / total, 0.95);
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Tests for the branch target buffer.
 */

#include <gtest/gtest.h>

#include "frontend/btb.hh"

namespace vrsim
{
namespace
{

TEST(BtbTest, MissThenHitAfterInstall)
{
    Btb btb(64);
    EXPECT_FALSE(btb.hit(0x100));
    btb.install(0x100, 0x40);
    EXPECT_TRUE(btb.hit(0x100));
    EXPECT_EQ(btb.installs(), 1u);
}

TEST(BtbTest, CapacityRoundsToPowerOfTwo)
{
    Btb btb(100);
    EXPECT_EQ(btb.capacity(), 64u);
}

TEST(BtbTest, AliasingEvicts)
{
    Btb btb(64);
    btb.install(0x10, 1);
    btb.install(0x10 + 64, 2);   // same index, different tag
    EXPECT_FALSE(btb.hit(0x10));
    EXPECT_TRUE(btb.hit(0x10 + 64));
}

TEST(BtbTest, DistinctIndicesCoexist)
{
    Btb btb(64);
    for (uint64_t pc = 0; pc < 64; pc++)
        btb.install(pc, pc * 2);
    for (uint64_t pc = 0; pc < 64; pc++)
        EXPECT_TRUE(btb.hit(pc)) << pc;
}

} // namespace
} // namespace vrsim

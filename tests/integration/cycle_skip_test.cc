/**
 * @file
 * End-to-end guards for the event-driven cycle-skipping calendars
 * (docs/performance.md): with skipping on (the default) versus off
 * (the VRSIM_CYCLE_SKIP=0 linear reference mode), every one of the 8
 * technique columns must produce byte-identical reported statistics
 * and equal architectural digests; and a memory-bound OoO run must
 * actually skip its all-stalled windows (calendar probe bound)
 * rather than polling through them.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "driver/report.hh"
#include "driver/simulation.hh"
#include "driver/sweep_runner.hh"
#include "sim/event_calendar.hh"

namespace vrsim
{
namespace
{

struct SkipMode
{
    explicit SkipMode(bool on) { EventCalendar::setSkipEnabled(on); }
    ~SkipMode() { EventCalendar::setSkipEnabled(true); }
};

const std::vector<Technique> ALL_TECHNIQUES = {
    Technique::OoO,          Technique::Pre,
    Technique::Imp,          Technique::Vr,
    Technique::DvrOffload,   Technique::DvrDiscovery,
    Technique::Dvr,          Technique::Oracle};

/** One all-technique camel sweep rendered to CSV, with digests. */
std::string
sweepCsv(bool skip, ResultTable *table_out = nullptr)
{
    SkipMode m(skip);
    GraphScale g;
    g.nodes = 1 << 11;
    g.avg_degree = 8;
    HpcDbScale h;
    h.elements = 1 << 11;
    RunPlan plan(SystemConfig::benchScale());
    plan.scale(g, h).roi(6000).warmup(500);
    plan.add({"camel"}, std::vector<TechColumn>(ALL_TECHNIQUES.begin(),
                                                ALL_TECHNIQUES.end()));

    SweepOptions opts;
    opts.jobs = 2;
    opts.check_digests = true;
    opts.progress = false;
    WorkloadCache cache;
    opts.cache = &cache;
    ResultTable table = SweepRunner(opts).run(plan);

    std::ostringstream os;
    CsvWriter csv(os);
    for (const SimResult &r : table.results())
        csv.row(r);
    if (table_out)
        *table_out = std::move(table);
    return os.str();
}

TEST(CycleSkipTest, StatsByteIdenticalAcrossModesAllTechniques)
{
    ResultTable skip_table;
    std::string with_skip = sweepCsv(true, &skip_table);
    std::string without = sweepCsv(false);

    // Byte identity of the full report, all 8 technique rows: the
    // skip structure may only change where the answer is found,
    // never the answer.
    EXPECT_EQ(with_skip, without);

    // And the runs were real: every column present and digest-clean.
    EXPECT_EQ(skip_table.results().size(), 8u);
    EXPECT_EQ(skip_table.failures(), 0u);
    for (const SimResult &r : skip_table.results()) {
        EXPECT_TRUE(r.ok()) << techniqueName(r.technique);
        ASSERT_TRUE(r.digest.has_value());
    }
}

TEST(CycleSkipTest, DigestsEqualAcrossModes)
{
    ResultTable on, off;
    sweepCsv(true, &on);
    sweepCsv(false, &off);
    for (Technique t : ALL_TECHNIQUES) {
        const SimResult &a = on.at("camel", t);
        const SimResult &b = off.at("camel", t);
        ASSERT_TRUE(a.digest.has_value() && b.digest.has_value());
        EXPECT_TRUE(*a.digest == *b.digest) << techniqueName(t);
    }
}

TEST(CycleSkipTest, AllStalledWindowsAreSkippedNotPolled)
{
    // camel is the pointer-chase workload: the OoO baseline spends
    // most of its time with the window stalled behind DRAM, which is
    // exactly when the old calendars polled bucket-by-bucket through
    // the backlog. Bound the work actually done: with skipping, the
    // hierarchy's calendars must examine only a small constant number
    // of buckets per access, and far fewer than the linear reference
    // mode examines on the identical run.
    GraphScale g;
    g.nodes = 1 << 11;
    g.avg_degree = 8;
    HpcDbScale h;
    auto probesFor = [&](bool skip, CoreStats *st_out) {
        SkipMode m(skip);
        Workload w = makeWorkload("camel", g, h);
        SystemConfig cfg = SystemConfig::benchScale();
        // Choke the L1 MSHR bank so the miss stream keeps it
        // saturated: the all-stalled backlog the linear reference
        // mode must pay to walk, bucket by bucket, on every
        // allocation — and the skip structure must jump.
        cfg.l1d.mshrs = 1;
        MemoryHierarchy hier(cfg, w.image);
        OooCore core(cfg, w.prog, w.image, hier);
        CoreStats st = core.run(w.init, 12000);
        if (st_out)
            *st_out = st;
        return hier.calendarProbes();
    };
    CoreStats st;
    uint64_t skip_probes = probesFor(true, &st);
    uint64_t linear_probes = probesFor(false, nullptr);
    ASSERT_GT(st.instructions, 0u);
    // Host work per simulated instruction is the throughput story:
    // a bounded handful of probes each, not a backlog walk.
    EXPECT_LT(skip_probes, 32 * st.instructions);
    // The two modes place identically (asserted above), so the probe
    // gap is purely the backlog walks the skip pointers jumped. Span
    // *verification* probes (each reserved bucket examined once) are
    // mode-independent and bound the achievable ratio here; the pure
    // quadratic-vs-amortized-constant backlog bound is asserted in
    // tests/sim/event_calendar_test.cc. Both runs are deterministic,
    // so this is a stable floor, not a flaky perf heuristic.
    EXPECT_LT(skip_probes * 3, linear_probes * 2);
}

} // namespace
} // namespace vrsim

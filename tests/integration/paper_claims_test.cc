/**
 * @file
 * Qualitative paper-claims tests: the key *shapes* of the paper's
 * evaluation, checked on small inputs so they run in CI time. These
 * are the repository's regression net for the reproduction itself;
 * the bench/ binaries regenerate the full figures.
 */

#include <gtest/gtest.h>

#include "driver/simulation.hh"

namespace vrsim
{
namespace
{

struct Harness
{
    SystemConfig cfg = SystemConfig::benchScale();
    GraphScale g{1 << 13, 16, 42};
    HpcDbScale h{1 << 16, 7};
    uint64_t roi = 60000;

    SimResult
    run(const std::string &spec, Technique t) const
    {
        return runSimulation(spec, t, cfg, g, h, roi);
    }

    double
    speedup(const std::string &spec, Technique t) const
    {
        SimResult base = run(spec, Technique::OoO);
        SimResult r = run(spec, t);
        return r.ipc() / base.ipc();
    }
};

TEST(PaperClaimsTest, DvrBeatsOooAcrossTheSuite)
{
    Harness s;
    for (const char *spec : {"bfs/KR", "sssp/KR", "camel", "hj2",
                             "kangaroo", "graph500"})
        EXPECT_GT(s.speedup(spec, Technique::Dvr), 1.3) << spec;
}

TEST(PaperClaimsTest, DvrBeatsVrSubstantially)
{
    // Headline: DVR ~2x VR on average. Check on representative
    // benchmarks (one GAP, one DB, one HPC).
    Harness s;
    double ratio_sum = 0;
    int n = 0;
    for (const char *spec : {"bfs/KR", "hj8", "camel", "kangaroo"}) {
        SimResult vr = s.run(spec, Technique::Vr);
        SimResult dvr = s.run(spec, Technique::Dvr);
        ratio_sum += dvr.ipc() / vr.ipc();
        ++n;
    }
    EXPECT_GT(ratio_sum / n, 1.4);
}

TEST(PaperClaimsTest, OracleIsTheUpperBound)
{
    Harness s;
    for (const char *spec : {"bfs/KR", "camel", "hj2", "kangaroo"}) {
        SimResult dvr = s.run(spec, Technique::Dvr);
        SimResult orc = s.run(spec, Technique::Oracle);
        EXPECT_GE(orc.ipc() * 1.05, dvr.ipc()) << spec;
    }
}

TEST(PaperClaimsTest, DvrGeneratesFarMoreMlp)
{
    // Fig. 9: DVR's mean outstanding misses far exceed the OoO's.
    Harness s;
    SimResult ooo = s.run("kangaroo", Technique::OoO);
    SimResult dvr = s.run("kangaroo", Technique::Dvr);
    EXPECT_GT(dvr.mlp, 1.5 * ooo.mlp);
}

TEST(PaperClaimsTest, DvrPrefetchesAreTimely)
{
    // Fig. 11: most runahead-prefetched lines are found on chip.
    Harness s;
    SimResult r = s.run("camel", Technique::Dvr);
    const MemStats &m = r.mem;
    double on_chip = double(m.pf_used_l1 + m.pf_used_l2 +
                            m.pf_used_l3);
    EXPECT_GT(on_chip / double(m.pf_lines_filled), 0.5);
}

TEST(PaperClaimsTest, DvrKeepsDramTrafficNearBaseline)
{
    // Fig. 10: Discovery Mode keeps DVR's total DRAM traffic close
    // to the baseline's (high accuracy).
    Harness s;
    SimResult base = s.run("bfs/KR", Technique::OoO);
    SimResult dvr = s.run("bfs/KR", Technique::Dvr);
    double ratio = double(dvr.mem.dramTotal()) /
                   double(base.mem.dramTotal());
    EXPECT_LT(ratio, 1.5);
}

TEST(PaperClaimsTest, VrGainShrinksWithRobSizeDvrHolds)
{
    // Figs. 2 and 12: normalized to the 350-entry-ROB OoO baseline,
    // VR's advantage over the same-ROB OoO shrinks as the ROB grows,
    // while DVR's absolute normalized performance keeps growing.
    Harness s;
    SimResult base350 = s.run("camel", Technique::OoO);
    auto ipc_n = [&](Technique t, uint32_t rob) {
        SystemConfig cfg = s.cfg;
        cfg.core.rob_size = rob;
        SimResult r = runSimulation("camel", t, cfg, s.g, s.h, s.roi);
        return r.ipc() / base350.ipc();
    };
    double ooo_small = ipc_n(Technique::OoO, 128);
    double ooo_big = ipc_n(Technique::OoO, 512);
    double vr_small = ipc_n(Technique::Vr, 128);
    double vr_big = ipc_n(Technique::Vr, 512);
    double dvr_small = ipc_n(Technique::Dvr, 128);
    double dvr_big = ipc_n(Technique::Dvr, 512);
    // Fig. 2: the VR-over-OoO edge narrows with ROB size.
    EXPECT_LT(vr_big / ooo_big, vr_small / ooo_small);
    // Fig. 12: DVR's normalized IPC holds (and, over the full suite,
    // grows -- see bench/fig12_rob_sweep_dvr) with ROB size; on this
    // single benchmark at CI scale allow flat-within-noise.
    EXPECT_GT(dvr_big, 0.97 * dvr_small);
    EXPECT_GT(dvr_big, vr_big);
}

TEST(PaperClaimsTest, FullRobStallsShrinkWithRobSize)
{
    // Fig. 2 right axis: dispatch stall time from window exhaustion
    // falls as the ROB grows.
    Harness s;
    auto stall_frac = [&](uint32_t rob) {
        SystemConfig cfg = s.cfg;
        cfg.core.rob_size = rob;
        SimResult r = runSimulation("camel", Technique::OoO, cfg,
                                    s.g, s.h, s.roi);
        return double(r.core.rob_stall_cycles + r.core.stall_lq) /
               double(r.core.cycles);
    };
    EXPECT_GT(stall_frac(128), stall_frac(512));
}

TEST(PaperClaimsTest, DelayedTerminationOnlyInVr)
{
    Harness s;
    SimResult vr = s.run("camel", Technique::Vr);
    SimResult dvr = s.run("camel", Technique::Dvr);
    EXPECT_GT(vr.core.runahead_commit_stall, 0u);
    EXPECT_EQ(dvr.core.runahead_commit_stall, 0u);
}

TEST(PaperClaimsTest, Fig8StepsAreCumulative)
{
    // VR -> Offload -> Discovery -> Nested: h-mean must not regress
    // across the ordered steps by more than noise.
    Harness s;
    const char *specs[] = {"bfs/KR", "sssp/KR", "camel", "hj2"};
    Technique steps[] = {Technique::Vr, Technique::DvrOffload,
                         Technique::Dvr};
    double prev = 0;
    for (Technique t : steps) {
        std::vector<double> xs;
        for (const char *spec : specs)
            xs.push_back(s.speedup(spec, t));
        double hm = harmonicMean(xs);
        EXPECT_GT(hm, prev * 0.95)
            << "step " << techniqueName(t) << " regressed";
        prev = hm;
    }
    EXPECT_GT(prev, 1.5);   // the full technique is clearly ahead
}

TEST(PaperClaimsTest, PreHelpsCamelButNotIndirectDepth)
{
    // The paper: PRE's wins concentrate on Camel/NAS-IS (first-level
    // indirection); it cannot reach hj8's deep pointer chains.
    Harness s;
    EXPECT_GT(s.speedup("camel", Technique::Pre), 1.2);
    EXPECT_LT(s.speedup("hj8", Technique::Pre), 1.2);
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Randomized stress tests: generate random (but well-formed) µop
 * programs and run them under every technique. The timing model must
 * never panic, must respect the dynamic-instruction budget, and must
 * leave the architectural memory image bit-identical to a pure
 * functional run — for every engine, since runahead is transient.
 */

#include <gtest/gtest.h>

#include "driver/simulation.hh"
#include "sim/rng.hh"

namespace vrsim
{
namespace
{

/** Generate a random structured program: nested loops over arrays
 *  with random ALU ops, loads, stores and data-dependent branches. */
Workload
randomWorkload(uint64_t seed)
{
    Rng rng(seed);
    Workload w;
    w.name = "fuzz-" + std::to_string(seed);
    Layout lay;

    const uint64_t n = 4096;
    std::vector<uint64_t> data(n);
    for (auto &v : data)
        v = rng.next();
    uint64_t arr_a = lay.put64(w.image, data);
    for (auto &v : data)
        v = rng.below(n);
    uint64_t arr_b = lay.put64(w.image, data);
    uint64_t arr_c = lay.alloc(n * 8);

    constexpr uint8_t RI = 1, RA = 2, RB = 3, RC = 4, RN = 5,
                      RCND = 6;
    // Scratch registers 8..15.
    auto scratch = [&rng]() { return uint8_t(8 + rng.below(8)); };

    ProgramBuilder b(w.name);
    auto top = b.here();
    // Always make forward progress and keep addresses in range.
    b.ld(8, RA, RI, 8);               // striding load
    uint32_t body = 3 + uint32_t(rng.below(12));
    for (uint32_t k = 0; k < body; k++) {
        switch (rng.below(8)) {
          case 0:
            b.add(scratch(), scratch(), scratch());
            break;
          case 1:
            b.xor_(scratch(), scratch(), scratch());
            break;
          case 2:
            b.muli(scratch(), scratch(), int64_t(rng.below(64)) + 1);
            break;
          case 3: {
            uint8_t idx = scratch();
            b.andi(idx, idx, int64_t(n - 1));
            b.ld(scratch(), RB, idx, 8);   // indirect load
            break;
          }
          case 4: {
            uint8_t idx = scratch();
            b.andi(idx, idx, int64_t(n - 1));
            b.st(scratch(), RC, idx, 8);   // indirect store
            break;
          }
          case 5: {
            // Forward data-dependent branch over the next op.
            uint8_t c = scratch();
            b.andi(c, c, 1);
            auto skip = b.makeLabel();
            b.br(c, skip);
            b.addi(scratch(), scratch(), 1);
            b.bind(skip);
            break;
          }
          case 6:
            b.hashSeq(scratch(), scratch(), scratch(),
                      int64_t(rng.below(16)));
            break;
          default:
            b.shri(scratch(), scratch(), int64_t(rng.below(8)));
            break;
        }
    }
    b.addi(RI, RI, 1);
    b.cmpltu(RCND, RI, RN);
    b.br(RCND, top);
    b.halt();
    w.prog = b.build();

    w.init.regs[RA] = arr_a;
    w.init.regs[RB] = arr_b;
    w.init.regs[RC] = arr_c;
    w.init.regs[RN] = n;
    return w;
}

class FuzzProgram : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(FuzzProgram, AllTechniquesRunAndPreserveArchitecture)
{
    const uint64_t seed = GetParam();
    SystemConfig cfg = SystemConfig::benchScale();
    // Fuzz under the full guardrail set: a generous-but-finite
    // watchdog (these runs take well under 10^6 cycles) plus the
    // always-on invariant checks, so a wedge or corrupted counter in
    // any engine turns into a structured failure instead of a timeout.
    cfg.watchdog_cycles = 2'000'000;
    cfg.invariant_checks = true;
    const uint64_t budget = 20000;

    // Reference: pure functional execution of the same budget.
    Workload ref = randomWorkload(seed);
    CpuState st = ref.init;
    run(ref.prog, st, ref.image, budget);

    for (Technique t : {Technique::OoO, Technique::Pre, Technique::Vr,
                        Technique::Dvr, Technique::Oracle}) {
        Workload w = randomWorkload(seed);
        SimResult r;
        ASSERT_NO_THROW(r = runWorkload(w, t, cfg, budget))
            << "seed " << seed << " " << techniqueName(t);
        EXPECT_LE(r.core.instructions, budget);
        EXPECT_GT(r.core.cycles, 0u);
        // Architectural equivalence: sample the store target array.
        uint64_t arr_c = w.init.regs[4];
        for (uint64_t off = 0; off < 4096 * 8; off += 248) {
            ASSERT_EQ(w.image.read64(arr_c + off),
                      ref.image.read64(arr_c + off))
                << "seed " << seed << " " << techniqueName(t)
                << " @" << off;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProgram,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u, 55u, 89u));

} // namespace
} // namespace vrsim

/**
 * @file
 * End-to-end guards for interval sampling (docs/sampling.md):
 * SamplingPlan parsing/validation, the --sample/--warmup exclusion,
 * digest byte-identity across execution modes (full detail, ff-prefix
 * + detail, interval-sampled — all must commit the identical
 * architectural stream), and the paper-scale accuracy contract: for
 * every one of the 8 technique columns on camel and kangaroo, the
 * sampled CPI must land within its own reported 95% CI of the
 * full-detail reference CPI.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "driver/simulation.hh"
#include "sim/digest.hh"

namespace vrsim
{
namespace
{

const std::vector<Technique> ALL_TECHNIQUES = {
    Technique::OoO,          Technique::Pre,
    Technique::Imp,          Technique::Vr,
    Technique::DvrOffload,   Technique::DvrDiscovery,
    Technique::Dvr,          Technique::Oracle};

TEST(SamplingPlanTest, ParsesSpecWithDefaultWarm)
{
    SamplingPlan p = SamplingPlan::parse("20000:200000");
    EXPECT_EQ(p.detail, 20000u);
    EXPECT_EQ(p.period, 200000u);
    // Default warm: min(detail, period - detail).
    EXPECT_EQ(p.warm, 20000u);
    EXPECT_EQ(p.ff_insts, 0u);

    SamplingPlan q = SamplingPlan::parse("10:100:5");
    EXPECT_EQ(q.detail, 10u);
    EXPECT_EQ(q.period, 100u);
    EXPECT_EQ(q.warm, 5u);

    // Measure-everything degenerate form: detail == period, warm 0.
    SamplingPlan r = SamplingPlan::parse("100:100");
    EXPECT_EQ(r.warm, 0u);
}

TEST(SamplingPlanTest, RejectsMalformedAndInconsistentSpecs)
{
    EXPECT_THROW(SamplingPlan::parse(""), FatalError);
    EXPECT_THROW(SamplingPlan::parse("10"), FatalError);
    EXPECT_THROW(SamplingPlan::parse("10:abc"), FatalError);
    EXPECT_THROW(SamplingPlan::parse("0:100"), FatalError);
    EXPECT_THROW(SamplingPlan::parse("200:100"), FatalError);
    EXPECT_THROW(SamplingPlan::parse("60:100:50"), FatalError);

    SamplingPlan detail_without_period;
    detail_without_period.detail = 5;
    EXPECT_THROW(detail_without_period.validate(), FatalError);
}

TEST(SamplingIntegrationTest, SampleAndWarmupAreMutuallyExclusive)
{
    Workload w = makeWorkload("camel", {}, HpcDbScale{1 << 11});
    SamplingPlan plan = SamplingPlan::parse("500:2000");
    EXPECT_THROW(runWorkload(w, Technique::OoO,
                             SystemConfig::benchScale(), 8000,
                             /*warmup=*/500, nullptr, nullptr, plan),
                 FatalError);
}

/**
 * The sampling correctness oracle: full detail, --ff-insts prefix +
 * detail, and interval sampling must all commit the byte-identical
 * architectural stream. The digest hashes every committed record, so
 * equal digests mean the functional fast-forward path (warming or
 * not) executes exactly what the detailed core would.
 */
TEST(SamplingIntegrationTest, DigestIdenticalAcrossExecutionModes)
{
    SystemConfig cfg = SystemConfig::benchScale();
    cfg.collect_digest = true;
    cfg.digest_interval = 1024;
    const HpcDbScale h{1 << 12};
    const uint64_t roi = 60000;

    for (Technique t : {Technique::OoO, Technique::Vr}) {
        Workload w_full = makeWorkload("camel", {}, h);
        SimResult full = runWorkload(w_full, t, cfg, roi);
        ASSERT_TRUE(full.ok());
        ASSERT_TRUE(full.digest.has_value());

        // --warmup filters statistics, not execution: a warmed run
        // commits the same stream, so its digest is identical too
        // (the --digest-interval x --warmup contract,
        // docs/sampling.md).
        Workload w_warm = makeWorkload("camel", {}, h);
        SimResult warm =
            runWorkload(w_warm, t, cfg, roi, /*warmup=*/10000);
        ASSERT_TRUE(warm.ok());
        ASSERT_TRUE(warm.digest.has_value());
        EXPECT_FALSE(compareDigests(*full.digest, *warm.digest))
            << techniqueName(t) << ": warmup changed the stream";

        // 20k functional prefix + 40k detailed = the same stream.
        Workload w_ff = makeWorkload("camel", {}, h);
        SamplingPlan ff;
        ff.ff_insts = 20000;
        SimResult pref = runWorkload(w_ff, t, cfg, roi - ff.ff_insts,
                                     0, nullptr, nullptr, ff);
        ASSERT_TRUE(pref.ok());
        ASSERT_TRUE(pref.digest.has_value());
        EXPECT_FALSE(compareDigests(*full.digest, *pref.digest))
            << techniqueName(t) << ": ff-prefix stream diverged";

        // 6 sampled periods of 10k covering the same 60k stream.
        Workload w_s = makeWorkload("camel", {}, h);
        SamplingPlan sp = SamplingPlan::parse("2000:10000:3000");
        SimResult samp = runWorkload(w_s, t, cfg, roi, 0, nullptr,
                                     nullptr, sp);
        ASSERT_TRUE(samp.ok());
        ASSERT_TRUE(samp.digest.has_value());
        ASSERT_TRUE(samp.sample.has_value());
        EXPECT_EQ(samp.sample->intervals, 6u);
        EXPECT_FALSE(compareDigests(*full.digest, *samp.digest))
            << techniqueName(t) << ": sampled stream diverged";
    }
}

/**
 * The accuracy contract the EXPERIMENTS.md paper-scale rows rely on:
 * sampled IPC must be within its own reported 95% CI of the
 * full-detail reference, for every technique. The check runs in the
 * CPI domain — the quantity SMARTS actually estimates; an IPC-domain
 * check would leak the Jensen bias of averaging reciprocals
 * (docs/sampling.md). The geometry (20k measured of
 * every 200k, 50k detailed-warm) matches the documented
 * recommendation for runahead techniques — VR's trigger state needs
 * the longer warm window (docs/sampling.md).
 */
void
expectSampledWithinCi(const std::string &spec)
{
    const SystemConfig cfg = SystemConfig::benchScale();
    // Paper-scale working set (the hpc-db default): the tables must
    // spill the LLC so per-interval IPC variance reflects real memory
    // behavior — at cache-resident scales the CIs collapse and tiny
    // warm-up biases dominate them.
    const HpcDbScale h{1 << 17};
    const uint64_t roi = 1'600'000;
    const SamplingPlan plan = SamplingPlan::parse("20000:200000:50000");

    for (Technique t : ALL_TECHNIQUES) {
        Workload w_full = makeWorkload(spec, {}, h);
        SimResult full =
            runWorkload(w_full, t, cfg, roi, /*warmup=*/100000);
        ASSERT_TRUE(full.ok()) << full.status_message;

        Workload w_s = makeWorkload(spec, {}, h);
        SimResult samp = runWorkload(w_s, t, cfg, roi, 0, nullptr,
                                     nullptr, plan);
        ASSERT_TRUE(samp.ok()) << samp.status_message;
        ASSERT_TRUE(samp.sample.has_value());
        EXPECT_EQ(samp.sample->intervals, roi / plan.period);

        const double mean = samp.sample->cpiMean();
        const double ci = samp.sample->cpiCi95();
        const double full_cpi =
            double(full.core.cycles) / double(full.core.instructions);
        const double diff = std::abs(mean - full_cpi);
        EXPECT_LE(diff, ci + 1e-9)
            << spec << ":" << techniqueName(t) << " sampled CPI "
            << mean << " +- " << ci << " vs full " << full_cpi
            << " (IPC " << samp.sample->ipcMean() << " vs "
            << full.ipc() << ")";
    }
}

TEST(SamplingIntegrationTest, SampledIpcWithinCiOfFullDetailCamel)
{
    expectSampledWithinCi("camel");
}

TEST(SamplingIntegrationTest, SampledIpcWithinCiOfFullDetailKangaroo)
{
    expectSampledWithinCi("kangaroo");
}

} // namespace
} // namespace vrsim

/**
 * @file
 * End-to-end tests of the differential correctness oracle: every
 * runahead technique must commit a bit-identical architectural stream
 * to the plain OoO baseline (the paper's central "microarchitectural
 * only" contract), injected divergence must be flagged, bundled, and
 * reproducible via the bundle, and all injection kinds must map to
 * their statuses.
 */

#include <gtest/gtest.h>

#include "driver/repro.hh"
#include "driver/sweep_runner.hh"

namespace vrsim
{
namespace
{

RunPlan
smallPlan()
{
    GraphScale g;
    g.nodes = 1 << 10;
    g.avg_degree = 8;
    HpcDbScale h;
    h.elements = 1 << 10;
    RunPlan plan(SystemConfig::benchScale());
    plan.scale(g, h).roi(4000).warmup(500);
    return plan;
}

ResultTable
sweep(const RunPlan &plan, SweepOptions opts, WorkloadCache &cache)
{
    opts.progress = false;
    opts.cache = &cache;
    return SweepRunner(opts).run(plan);
}

TEST(DifferentialTest, EveryTechniqueMatchesBaselineDigest)
{
    RunPlan plan = smallPlan();
    plan.add({"camel", "kangaroo", "hj2"},
             {Technique::OoO, Technique::Pre, Technique::Imp,
              Technique::Vr, Technique::DvrOffload,
              Technique::DvrDiscovery, Technique::Dvr,
              Technique::Oracle});

    SweepOptions opts;
    opts.jobs = 4;
    opts.check_digests = true;
    WorkloadCache cache;
    ResultTable table = sweep(plan, opts, cache);

    EXPECT_EQ(table.failures(), 0u);
    for (const SimResult &r : table.results()) {
        EXPECT_TRUE(r.ok())
            << r.workload << ":" << techniqueName(r.technique) << " "
            << r.status_message;
        ASSERT_TRUE(r.digest.has_value());
        EXPECT_GT(r.digest->instructions, 0u);
    }

    // Spot-check the contract directly: digests are equal per spec,
    // not merely "not flagged".
    for (const char *spec : {"camel", "kangaroo", "hj2"}) {
        const SimResult &base = table.at(spec, Technique::OoO);
        const SimResult &dvr = table.at(spec, Technique::Dvr);
        EXPECT_TRUE(*base.digest == *dvr.digest) << spec;
    }
}

TEST(DifferentialTest, DigestCollectionOffByDefault)
{
    RunPlan plan = smallPlan();
    plan.add({"camel"}, {Technique::OoO});
    WorkloadCache cache;
    ResultTable table = sweep(plan, SweepOptions{}, cache);
    EXPECT_FALSE(table.at("camel", Technique::OoO).digest.has_value());
}

TEST(DifferentialTest, MissingBaselineColumnIsFatal)
{
    RunPlan plan = smallPlan();
    plan.add({"camel"}, {Technique::Vr, Technique::Dvr});
    SweepOptions opts;
    opts.check_digests = true;
    WorkloadCache cache;
    EXPECT_THROW(sweep(plan, opts, cache), FatalError);
}

TEST(DifferentialTest, InjectedDivergenceIsFlaggedBundledAndReplayable)
{
    RunPlan plan = smallPlan();
    plan.add({"camel"}, {Technique::OoO, Technique::Vr});
    plan.injectFail(Technique::Vr, InjectKind::Diverge);

    SweepOptions opts;
    opts.check_digests = true;
    opts.repro_dir = ::testing::TempDir() + "vrsim_diverge_repro";
    WorkloadCache cache;
    ResultTable table = sweep(plan, opts, cache);

    EXPECT_TRUE(table.at("camel", Technique::OoO).ok());
    const SimResult &bad = table.at("camel", Technique::Vr);
    EXPECT_EQ(bad.status, SimStatus::Diverged);
    EXPECT_NE(bad.status_message.find("diverged"), std::string::npos);
    EXPECT_NE(bad.status_message.find("interval"), std::string::npos);

    // The failed cell produced a self-contained bundle...
    ReproBundle b =
        readReproBundle(opts.repro_dir + "/camel_VR.json");
    EXPECT_EQ(b.status, SimStatus::Diverged);
    EXPECT_EQ(b.status_message, bad.status_message);
    ASSERT_TRUE(b.baseline_digest.has_value());
    ASSERT_TRUE(b.divergence.has_value());

    // ...and replaying the bundled point reproduces the divergence
    // exactly (deterministic injection, deterministic simulation).
    SimResult replayed = SweepRunner::runPoint(b.point, cache);
    ASSERT_TRUE(replayed.ok()) << replayed.status_message;
    ASSERT_TRUE(replayed.digest.has_value());
    auto div = compareDigests(*b.baseline_digest, *replayed.digest);
    ASSERT_TRUE(div.has_value());
    EXPECT_EQ(div->interval_index, b.divergence->interval_index);
    EXPECT_EQ(div->expected, b.divergence->expected);
    EXPECT_EQ(div->actual, b.divergence->actual);
}

TEST(DifferentialTest, InjectKindsMapToStatuses)
{
    WorkloadCache cache;
    struct { InjectKind kind; SimStatus status; } cases[] = {
        {InjectKind::Fatal, SimStatus::Fatal},
        {InjectKind::Panic, SimStatus::Panic},
        {InjectKind::Hang, SimStatus::Hang},
    };
    for (const auto &c : cases) {
        RunPlan plan = smallPlan();
        plan.add({"camel"}, {Technique::Vr});
        plan.injectFail(Technique::Vr, c.kind);
        RunPoint p = plan.points().at(0);
        SimResult r = SweepRunner::runPoint(p, cache);
        EXPECT_EQ(r.status, c.status)
            << injectKindName(c.kind);
        EXPECT_NE(r.status_message.find("fault injection"),
                  std::string::npos);
    }
}

TEST(DifferentialTest, InjectKindNamesRoundTrip)
{
    for (InjectKind k : {InjectKind::Fatal, InjectKind::Panic,
                         InjectKind::Hang, InjectKind::Diverge})
        EXPECT_EQ(injectKindFromName(injectKindName(k)), k);
    EXPECT_THROW(injectKindFromName("none"), FatalError);
    EXPECT_THROW(injectKindFromName("explode"), FatalError);
}

TEST(DifferentialTest, FailedBaselineLeavesCellUncheckedNotDiverged)
{
    RunPlan plan = smallPlan();
    plan.add({"camel"}, {Technique::OoO, Technique::Vr});
    plan.injectFail(Technique::OoO, InjectKind::Panic);
    SweepOptions opts;
    opts.check_digests = true;
    WorkloadCache cache;
    ResultTable table = sweep(plan, opts, cache);
    // The baseline itself failed; the VR cell cannot be checked but
    // must not be misreported as diverged.
    EXPECT_EQ(table.at("camel", Technique::OoO).status,
              SimStatus::Panic);
    EXPECT_TRUE(table.at("camel", Technique::Vr).ok());
}

} // namespace
} // namespace vrsim

/**
 * @file
 * End-to-end tests of process-isolated sweeps: all-green sweeps are
 * byte-identical to thread execution at any job count, and the chaos
 * invariant from the issue — under `--chaos SEED:RATE --retries 2`
 * over a 24-cell plan, the parent survives every fault class,
 * non-faulted and retried-then-succeeded cells are byte-identical to
 * a clean thread run, and permanently failed cells carry
 * Crashed/TimedOut rows plus replayable repro bundles.
 *
 * The chaos seed (kSeed) was chosen so the deterministic policy, at
 * rate kRate with kRetries retries, yields at least one permanently
 * failed cell, several retried-then-succeeded cells, and executions
 * of all five process-grade fault classes over this exact plan; the
 * test recomputes the policy and *predicts* each cell's fate rather
 * than just classifying whatever happened.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>
#include <sstream>

#include "driver/repro.hh"
#include "rt/cell_supervisor.hh"

namespace vrsim
{
namespace
{

constexpr uint64_t kSeed = 35;
constexpr double kRate = 0.3;
constexpr unsigned kRetries = 2;
// Generous next to a ~50 ms healthy cell: the deadline only exists to
// reap Spin faults, and a tight value misclassifies healthy cells as
// TimedOut when the test suite oversubscribes the host (seed 35 draws
// two spin attempts, so each extra second costs two wall-seconds).
// Matches the ci.sh chaos stage's --cell-timeout 5.
constexpr uint64_t kCellTimeoutMs = 5'000;

/** 24 cells: 2 specs x 4 techniques x 3 config variants. */
RunPlan
chaosPlan()
{
    GraphScale g;
    g.nodes = 1 << 10;
    g.avg_degree = 8;
    HpcDbScale h;
    h.elements = 1 << 10;
    RunPlan plan(SystemConfig::benchScale());
    plan.scale(g, h).roi(3000).warmup(300);
    plan.add({"camel", "kangaroo"},
             {Technique::OoO, Technique::Vr, Technique::Dvr,
              Technique::Pre},
             {ConfigVariant::base(),
              {"rob=128", [](SystemConfig &c) { c.core.rob_size = 128; }},
              {"rob=64", [](SystemConfig &c) { c.core.rob_size = 64; }}});
    return plan;
}

std::string
csvOf(const ResultTable &table)
{
    std::ostringstream os;
    table.writeCsv(os);
    return os.str();
}

/** What the chaos policy must do to one cell, recomputed from the
 *  same pure function the supervisor consults. */
struct PredictedFate
{
    bool permanent = false;   //!< every reachable attempt faults
    bool retried = false;     //!< attempt 0 faults (so attempts > 1)
    /** Kind of the final reachable attempt's fault (permanent only). */
    InjectKind final_kind = InjectKind::None;
};

PredictedFate
predict(const ChaosPolicy &policy, const std::string &id)
{
    PredictedFate fate;
    fate.permanent = true;
    for (unsigned a = 0; a <= kRetries && fate.permanent; a++) {
        auto f = policy.decide(id, a);
        if (!f) {
            fate.permanent = false;
        } else {
            if (a == 0)
                fate.retried = true;
            fate.final_kind = f->kind;
        }
    }
    return fate;
}

TEST(ProcessIsolationTest, AllGreenSweepIsByteIdenticalAtAnyJobCount)
{
    RunPlan plan = chaosPlan();

    SweepOptions thread_opts;
    thread_opts.progress = false;
    WorkloadCache cache;
    thread_opts.cache = &cache;
    ResultTable thread_table = SweepRunner(thread_opts).run(plan);
    const std::string want = csvOf(thread_table);

    for (unsigned jobs : {1u, 2u}) {
        SweepOptions opts;
        opts.progress = false;
        opts.isolation = Isolation::Process;
        opts.jobs = jobs;
        WorkloadCache pcache;
        opts.cache = &pcache;
        SweepRunner runner(opts);
        EXPECT_EQ(csvOf(runner.run(plan)), want)
            << "process isolation with jobs=" << jobs;
        // Sweep telemetry exists (all zeros on a green sweep).
        EXPECT_EQ(runner.stats().at("sweep.cells.retried").count(), 0u);
        EXPECT_EQ(runner.stats().at("sweep.cells.crashed").count(), 0u);
    }
    // Thread mode leaves the sweep registry empty so default stats
    // output is unchanged.
    SweepRunner trunner(thread_opts);
    trunner.run(plan);
    EXPECT_EQ(trunner.stats().size(), 0u);
}

TEST(ProcessIsolationTest, ChaosInvariant)
{
    RunPlan plan = chaosPlan();
    const std::vector<RunPoint> points = plan.points();
    ASSERT_EQ(points.size(), 24u);

    // Clean thread baseline for byte-identity of surviving cells.
    SweepOptions base_opts;
    base_opts.progress = false;
    WorkloadCache base_cache;
    base_opts.cache = &base_cache;
    ResultTable clean = SweepRunner(base_opts).run(plan);

    // Predict every cell's fate from the pure policy.
    ChaosPolicy policy(kSeed, kRate);
    std::map<std::string, PredictedFate> fates;
    unsigned want_permanent = 0, want_retried = 0;
    std::set<InjectKind> executed_kinds;
    for (const RunPoint &p : points) {
        PredictedFate f = predict(policy, p.id());
        fates[p.id()] = f;
        want_permanent += f.permanent;
        want_retried += f.retried;
        for (unsigned a = 0; a <= kRetries; a++) {
            auto fault = policy.decide(p.id(), a);
            if (!fault)
                break;  // later attempts unreachable
            executed_kinds.insert(fault->kind);
        }
    }
    // The seed was chosen to make the test meaningful: at least one
    // permanent failure, at least one retried-then-succeeded cell,
    // and every fault class executed.
    ASSERT_GE(want_permanent, 1u);
    ASSERT_GT(want_retried, want_permanent);
    ASSERT_EQ(executed_kinds.size(), 5u);

    const std::string repro_dir =
        ::testing::TempDir() + "vrsim_chaos_repro";
    std::filesystem::remove_all(repro_dir);

    SweepOptions opts;
    opts.progress = false;
    opts.isolation = Isolation::Process;
    opts.jobs = 2;
    opts.chaos = policy;
    opts.retries = kRetries;
    opts.backoff_ms = 1;
    opts.cell_timeout_ms = kCellTimeoutMs;
    opts.repro_dir = repro_dir;
    WorkloadCache cache;
    opts.cache = &cache;
    SweepRunner runner(opts);

    // The parent (this process) must survive every fault class and
    // deliver a full table.
    ResultTable table = runner.run(plan);
    ASSERT_EQ(table.size(), 24u);

    // Index repro bundles by point id.
    std::map<std::string, ReproBundle> bundles;
    for (const auto &ent :
         std::filesystem::directory_iterator(repro_dir)) {
        ReproBundle b = readReproBundle(ent.path().string());
        bundles.emplace(b.point.id(), std::move(b));
    }

    for (size_t i = 0; i < points.size(); i++) {
        const std::string id = points[i].id();
        const PredictedFate &fate = fates.at(id);
        const SimResult &got = table.results()[i];
        const SimResult &want = clean.results()[i];

        if (!fate.permanent) {
            // Non-faulted and retried-then-succeeded cells alike are
            // byte-identical to the clean thread run.
            EXPECT_EQ(resultToJson(got), resultToJson(want)) << id;
            EXPECT_EQ(bundles.count(id), 0u) << id;
            continue;
        }

        // Permanently failed: the predicted final fault class decides
        // the status.
        if (fate.final_kind == InjectKind::Spin) {
            EXPECT_EQ(got.status, SimStatus::TimedOut) << id;
        } else {
            EXPECT_EQ(got.status, SimStatus::Crashed) << id;
        }
        EXPECT_GT(got.rss_peak_kb, 0u) << id;

        // ...and left a replayable bundle recording the chaos-mutated
        // point (the fault the child actually executed).
        ASSERT_EQ(bundles.count(id), 1u) << id;
        const ReproBundle &b = bundles.at(id);
        EXPECT_EQ(b.status, got.status) << id;
        EXPECT_TRUE(b.point.inject_fail) << id;
        EXPECT_EQ(b.point.inject_kind, fate.final_kind) << id;

        CellOptions copts;
        copts.timeout_ms = kCellTimeoutMs;
        WorkloadCache rcache;
        CellOutcome replay =
            CellSupervisor(copts, rcache).runCell(b.point);
        EXPECT_EQ(replay.result.status, b.status)
            << id << ": replay did not reproduce the recorded status";
    }

    // Sweep telemetry matches the prediction exactly.
    const StatsRegistry &stats = runner.stats();
    EXPECT_EQ(stats.at("sweep.cells.retried").count(), want_retried);
    unsigned want_timed_out = 0;
    for (const auto &[id, f] : fates)
        want_timed_out +=
            f.permanent && f.final_kind == InjectKind::Spin;
    EXPECT_EQ(stats.at("sweep.cells.timed_out").count(),
              want_timed_out);
    EXPECT_EQ(stats.at("sweep.cells.crashed").count(),
              want_permanent - want_timed_out);
    EXPECT_GT(stats.at("sweep.backoff_ms").value(stats), 0.0);

    std::filesystem::remove_all(repro_dir);
}

TEST(ProcessIsolationTest, ThreadModeRejectsProcessGradeInjection)
{
    RunPlan plan = chaosPlan();
    plan.injectFail(Technique::Vr, InjectKind::Segv);
    SweepOptions opts;
    opts.progress = false;
    WorkloadCache cache;
    opts.cache = &cache;
    EXPECT_THROW(SweepRunner(opts).run(plan), FatalError);
}

TEST(ProcessIsolationTest, ChaosRequiresProcessIsolation)
{
    SweepOptions opts;
    opts.progress = false;
    opts.chaos = ChaosPolicy(1, 0.5);
    WorkloadCache cache;
    opts.cache = &cache;
    EXPECT_THROW(SweepRunner(opts).run(chaosPlan()), FatalError);
}

} // namespace
} // namespace vrsim

/**
 * @file
 * Integration tests of the Simulation facade: every technique runs
 * every benchmark family end to end, produces sane statistics, and
 * is deterministic.
 */

#include <gtest/gtest.h>

#include "driver/simulation.hh"

namespace vrsim
{
namespace
{

GraphScale
tinyGraph()
{
    GraphScale s;
    s.nodes = 1 << 11;
    s.avg_degree = 8;
    return s;
}

HpcDbScale
tinyHpc()
{
    HpcDbScale s;
    s.elements = 1 << 12;
    return s;
}

TEST(SimulationTest, EveryTechniqueRunsEveryFamily)
{
    SystemConfig cfg = SystemConfig::benchScale();
    for (const char *spec : {"bfs/KR", "camel", "hj2", "nas-cg"}) {
        for (Technique t : {Technique::OoO, Technique::Pre,
                            Technique::Imp, Technique::Vr,
                            Technique::DvrOffload,
                            Technique::DvrDiscovery, Technique::Dvr,
                            Technique::Oracle}) {
            SimResult r = runSimulation(spec, t, cfg, tinyGraph(),
                                        tinyHpc(), 15000);
            EXPECT_EQ(r.workload, spec);
            EXPECT_GT(r.core.instructions, 1000u)
                << spec << " " << techniqueName(t);
            EXPECT_GT(r.core.cycles, 0u);
            EXPECT_GT(r.ipc(), 0.0);
            EXPECT_LE(r.ipc(), 5.0);
        }
    }
}

TEST(SimulationTest, DeterministicAcrossRuns)
{
    SystemConfig cfg = SystemConfig::benchScale();
    SimResult a = runSimulation("kangaroo", Technique::Dvr, cfg,
                                tinyGraph(), tinyHpc(), 20000);
    SimResult b = runSimulation("kangaroo", Technique::Dvr, cfg,
                                tinyGraph(), tinyHpc(), 20000);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.mem.dramTotal(), b.mem.dramTotal());
    EXPECT_EQ(a.dvr->prefetches, b.dvr->prefetches);
}

TEST(SimulationTest, EngineStatsAttachToRightTechnique)
{
    SystemConfig cfg = SystemConfig::benchScale();
    SimResult o = runSimulation("camel", Technique::OoO, cfg,
                                tinyGraph(), tinyHpc(), 10000);
    EXPECT_FALSE(o.pre || o.vr || o.dvr);
    SimResult p = runSimulation("camel", Technique::Pre, cfg,
                                tinyGraph(), tinyHpc(), 10000);
    EXPECT_TRUE(p.pre.has_value());
    SimResult v = runSimulation("camel", Technique::Vr, cfg,
                                tinyGraph(), tinyHpc(), 10000);
    EXPECT_TRUE(v.vr.has_value());
    SimResult d = runSimulation("camel", Technique::Dvr, cfg,
                                tinyGraph(), tinyHpc(), 10000);
    EXPECT_TRUE(d.dvr.has_value());
}

TEST(SimulationTest, DramSplitsSumToTotal)
{
    SystemConfig cfg = SystemConfig::benchScale();
    SimResult r = runSimulation("camel", Technique::Dvr, cfg,
                                tinyGraph(), tinyHpc(), 20000);
    EXPECT_EQ(r.dramMain() + r.dramRunahead(), r.mem.dramTotal());
}

TEST(SimulationTest, SpecListsCoverPaperSuite)
{
    auto specs = allBenchmarkSpecs();
    EXPECT_EQ(specs.size(), 5u * 5u + 8u);   // 5 kernels x 5 inputs + 8
    EXPECT_EQ(gapBenchmarkSpecs().size(), 25u);
}

TEST(SimulationTest, HarmonicMean)
{
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 1.0}), 1.0);
    EXPECT_DOUBLE_EQ(harmonicMean({2.0, 2.0}), 2.0);
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(harmonicMean({}), 0.0);
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 0.0}), 0.0);
}

TEST(SimulationTest, MlpWithinMshrCapacity)
{
    SystemConfig cfg = SystemConfig::benchScale();
    SimResult r = runSimulation("camel", Technique::Dvr, cfg,
                                tinyGraph(), tinyHpc(), 20000);
    EXPECT_GE(r.mlp, 0.0);
    EXPECT_LE(r.mlp, double(cfg.l1d.mshrs) + 0.5);
}

TEST(SimulationTest, TimelinessCountsConsistent)
{
    SystemConfig cfg = SystemConfig::benchScale();
    SimResult r = runSimulation("kangaroo", Technique::Dvr, cfg,
                                tinyGraph(), tinyHpc(), 30000);
    const MemStats &m = r.mem;
    EXPECT_LE(m.pf_used_l1 + m.pf_used_l2 + m.pf_used_l3 +
                  m.pf_used_inflight,
              m.pf_lines_filled + 16 /* L2/L3-origin copies */);
}

} // namespace
} // namespace vrsim

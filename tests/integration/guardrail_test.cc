/**
 * @file
 * Guardrail-subsystem tests: the forward-progress watchdog must
 * terminate wedged runs with a structured HangError, and the guarded
 * entry points must fold the whole error taxonomy into per-run status
 * records so sweeps continue past failures (docs/robustness.md).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "driver/report.hh"
#include "driver/simulation.hh"

namespace vrsim
{
namespace
{

/**
 * A program that never halts: a tight counting loop ending in an
 * unconditional backward jump. With suggested_insts = 0 the run is
 * unbounded — exactly the wedge the watchdog exists to catch.
 */
Workload
wedgedWorkload()
{
    Workload w;
    w.name = "wedged";
    w.suggested_insts = 0;
    ProgramBuilder b(w.name);
    auto top = b.here();
    b.addi(1, 1, 1);
    b.xor_(2, 2, 1);
    b.jmp(top);
    b.halt();  // unreachable
    w.prog = b.build();
    return w;
}

TEST(GuardrailTest, WatchdogTerminatesWedgedUnboundedRun)
{
    Workload w = wedgedWorkload();
    SystemConfig cfg = SystemConfig::benchScale();
    cfg.watchdog_cycles = 50'000;

    try {
        runWorkload(w, Technique::OoO, cfg, /*max_insts=*/0);
        FAIL() << "wedged run returned instead of hanging";
    } catch (const HangError &e) {
        // The snapshot must place the stop just past the bound — the
        // watchdog fired promptly, not after some multiple of it.
        EXPECT_GE(e.progress().cycles, cfg.watchdog_cycles);
        EXPECT_LT(e.progress().cycles, 2 * cfg.watchdog_cycles);
        EXPECT_GT(e.progress().retired, 0u);
        EXPECT_NE(std::string(e.what()).find("watchdog-cycles"),
                  std::string::npos);
    }
}

TEST(GuardrailTest, BudgetedRunIgnoresUnboundedWatchdog)
{
    // A budgeted run of the same non-halting program is legitimate
    // (runs to its instruction budget) and must not trip the
    // unbounded-run bound.
    Workload w = wedgedWorkload();
    SystemConfig cfg = SystemConfig::benchScale();
    cfg.watchdog_cycles = 50'000;
    SimResult r = runWorkload(w, Technique::OoO, cfg,
                              /*max_insts=*/200'000);
    EXPECT_EQ(r.core.instructions, 200'000u);
}

TEST(GuardrailTest, ZeroDisablesWatchdog)
{
    // With the watchdog off, bound the run by instruction count so
    // the test itself terminates; the point is that no HangError
    // escapes even though the budget is generous.
    Workload w = wedgedWorkload();
    SystemConfig cfg = SystemConfig::benchScale();
    cfg.watchdog_cycles = 0;
    EXPECT_NO_THROW(
        runWorkload(w, Technique::OoO, cfg, /*max_insts=*/100'000));
}

TEST(GuardrailTest, GuardedRunRecordsHang)
{
    Workload w = wedgedWorkload();
    SystemConfig cfg = SystemConfig::benchScale();
    cfg.watchdog_cycles = 50'000;
    SimResult r = runWorkloadGuarded(w, Technique::OoO, cfg);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status, SimStatus::Hang);
    EXPECT_EQ(r.workload, "wedged");
    EXPECT_NE(r.status_message.find("hang"), std::string::npos);
}

TEST(GuardrailTest, GuardedRunRecordsFatalConfig)
{
    SystemConfig cfg = SystemConfig::benchScale();
    cfg.core.rob_size = 0;
    SimResult r = runSimulationGuarded("camel", Technique::OoO, cfg,
                                       GraphScale{}, HpcDbScale{},
                                       /*max_insts=*/5'000);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status, SimStatus::Fatal);
    EXPECT_NE(r.status_message.find("rob_size"), std::string::npos);
}

TEST(GuardrailTest, GuardedSweepContinuesPastFailure)
{
    // The acceptance scenario: a sweep where one point is wedged must
    // still produce results for every other point, with the failure
    // recorded in place.
    SystemConfig good = SystemConfig::benchScale();
    SystemConfig hung = good;
    hung.watchdog_cycles = 50'000;

    std::vector<SimResult> results;
    for (int i = 0; i < 3; i++) {
        if (i == 1) {
            Workload w = wedgedWorkload();
            results.push_back(
                runWorkloadGuarded(w, Technique::OoO, hung));
        } else {
            results.push_back(runSimulationGuarded(
                "camel", i == 0 ? Technique::OoO : Technique::Dvr,
                good, GraphScale{}, HpcDbScale{},
                /*max_insts=*/5'000));
        }
    }

    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(results[0].ok());
    EXPECT_GT(results[0].ipc(), 0.0);
    EXPECT_EQ(results[1].status, SimStatus::Hang);
    EXPECT_TRUE(results[2].ok());
    EXPECT_GT(results[2].ipc(), 0.0);
}

TEST(GuardrailTest, FailedRunsRenderStatusInReportAndCsv)
{
    Workload w = wedgedWorkload();
    SystemConfig cfg = SystemConfig::benchScale();
    cfg.watchdog_cycles = 50'000;
    SimResult r = runWorkloadGuarded(w, Technique::OoO, cfg);
    ASSERT_FALSE(r.ok());

    std::ostringstream rep;
    printReport(rep, r, cfg);
    EXPECT_NE(rep.str().find("-- status --"), std::string::npos);
    EXPECT_NE(rep.str().find("hang"), std::string::npos);
    // No statistics sections for a failed run.
    EXPECT_EQ(rep.str().find("-- performance --"), std::string::npos);

    std::ostringstream csv;
    CsvWriter writer(csv);
    writer.row(r);
    EXPECT_NE(csv.str().find("workload,technique,status,message"),
              std::string::npos);
    EXPECT_NE(csv.str().find(",hang,"), std::string::npos);
    // The diagnostic message must not smuggle extra separators into
    // the row: header and data row need identical column counts.
    std::string out = csv.str();
    std::string header = out.substr(0, out.find('\n'));
    std::string body = out.substr(out.find('\n') + 1);
    auto commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(commas(header), commas(body));
}

TEST(GuardrailTest, StatusNames)
{
    EXPECT_STREQ(simStatusName(SimStatus::Ok), "ok");
    EXPECT_STREQ(simStatusName(SimStatus::Fatal), "fatal");
    EXPECT_STREQ(simStatusName(SimStatus::Panic), "panic");
    EXPECT_STREQ(simStatusName(SimStatus::Hang), "hang");
    EXPECT_STREQ(simStatusName(SimStatus::Diverged), "diverged");
}

} // namespace
} // namespace vrsim

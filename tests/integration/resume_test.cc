/**
 * @file
 * End-to-end tests of resumable sweeps: a killed sweep's journal
 * restores completed points (which are not re-run), the resumed table
 * is byte-identical to an uninterrupted run, torn journal tails are
 * tolerated, and a journal from a different plan is refused.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "driver/repro.hh"
#include "driver/sweep_runner.hh"

namespace vrsim
{
namespace
{

RunPlan
smallPlan()
{
    GraphScale g;
    g.nodes = 1 << 10;
    g.avg_degree = 8;
    HpcDbScale h;
    h.elements = 1 << 10;
    RunPlan plan(SystemConfig::benchScale());
    plan.scale(g, h).roi(4000).warmup(500);
    // Two specs so "journaled points are skipped" is observable via
    // the workload cache's build count.
    plan.add({"camel", "kangaroo"}, {Technique::OoO, Technique::Dvr});
    return plan;
}

std::string
csvOf(const ResultTable &table)
{
    std::ostringstream os;
    table.writeCsv(os);
    return os.str();
}

ResultTable
sweep(const RunPlan &plan, SweepOptions opts, WorkloadCache &cache)
{
    opts.progress = false;
    opts.cache = &cache;
    return SweepRunner(opts).run(plan);
}

class ResumeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Unique per test: ctest runs discovered tests as parallel
        // processes, and a shared journal path would let two tests
        // stomp each other's file.
        path_ = ::testing::TempDir() + "vrsim_resume_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".jsonl";
        std::remove(path_.c_str());
    }

    void TearDown() override { std::remove(path_.c_str()); }

    /** Run the full plan with a journal; returns the final CSV. */
    std::string
    fullRun()
    {
        SweepOptions opts;
        opts.checkpoint = path_;
        WorkloadCache cache;
        return csvOf(sweep(smallPlan(), opts, cache));
    }

    /** Keep only the first @p lines lines of the journal, plus
     *  @p partial_tail bytes of the next line (a torn append). */
    void
    truncateJournal(size_t lines, size_t partial_tail = 0)
    {
        std::ifstream is(path_);
        std::string text, line;
        size_t kept = 0;
        while (std::getline(is, line)) {
            if (kept < lines)
                text += line + "\n";
            else if (partial_tail) {
                text += line.substr(
                    0, std::min(partial_tail, line.size()));
                break;
            } else {
                break;
            }
            ++kept;
        }
        is.close();
        std::ofstream os(path_, std::ios::trunc);
        os << text;
    }

    std::string path_;
};

TEST_F(ResumeTest, ResumedTableIsByteIdenticalAndSkipsJournaled)
{
    const std::string full = fullRun();

    // Simulate a kill after the first two points (camel:OoO and
    // camel:Dvr) were journaled: header + 2 entries survive.
    truncateJournal(3);

    SweepOptions opts;
    opts.checkpoint = path_;
    opts.resume = true;
    WorkloadCache cache;
    ResultTable resumed = sweep(smallPlan(), opts, cache);

    EXPECT_EQ(csvOf(resumed), full);
    // Only kangaroo was re-run: camel's workload was never rebuilt,
    // so its journaled cells really were skipped.
    EXPECT_EQ(cache.builds(), 1u);
}

TEST_F(ResumeTest, FullyJournaledResumeRunsNothing)
{
    const std::string full = fullRun();

    SweepOptions opts;
    opts.checkpoint = path_;
    opts.resume = true;
    WorkloadCache cache;
    ResultTable resumed = sweep(smallPlan(), opts, cache);

    EXPECT_EQ(csvOf(resumed), full);
    EXPECT_EQ(cache.builds(), 0u);
}

TEST_F(ResumeTest, TornTailIsCompactedAndRerun)
{
    const std::string full = fullRun();

    // Kill mid-append: two whole entries plus half of a third.
    truncateJournal(3, 40);

    SweepOptions opts;
    opts.checkpoint = path_;
    opts.resume = true;
    WorkloadCache cache;
    EXPECT_EQ(csvOf(sweep(smallPlan(), opts, cache)), full);

    // The rewritten journal is whole again: a second resume restores
    // all four points and runs nothing.
    WorkloadCache cache2;
    EXPECT_EQ(csvOf(sweep(smallPlan(), opts, cache2)), full);
    EXPECT_EQ(cache2.builds(), 0u);
}

TEST_F(ResumeTest, ResumeRequiresCheckpoint)
{
    SweepOptions opts;
    opts.resume = true;
    WorkloadCache cache;
    EXPECT_THROW(sweep(smallPlan(), opts, cache), FatalError);
}

TEST_F(ResumeTest, JournalFromDifferentPlanIsRefused)
{
    fullRun();

    RunPlan other = smallPlan();
    other.add({"hj2"}, {Technique::OoO});

    SweepOptions opts;
    opts.checkpoint = path_;
    opts.resume = true;
    WorkloadCache cache;
    EXPECT_THROW(sweep(other, opts, cache), FatalError);
}

TEST_F(ResumeTest, MissingJournalResumesFromScratch)
{
    SweepOptions opts;
    opts.checkpoint = path_;
    opts.resume = true;
    WorkloadCache cache;
    ResultTable table = sweep(smallPlan(), opts, cache);
    EXPECT_EQ(table.failures(), 0u);
    EXPECT_EQ(cache.builds(), 2u);

    // ...and it wrote a complete journal while doing so.
    auto slots = loadJournal(path_,
                             planFingerprint(smallPlan().points()),
                             smallPlan().points().size());
    for (const auto &s : slots)
        EXPECT_TRUE(s.has_value());
}

TEST_F(ResumeTest, RealSigkillMidSweepResumesByteIdentical)
{
    // The journal's torn-tail tolerance against a *real* SIGKILL, not
    // a simulated truncation: run a process-isolation sweep in a
    // forked child, SIGKILL it as soon as the journal shows progress
    // (wherever mid-write that lands), then --resume and demand the
    // final table is byte-identical to an uninterrupted run.
    const std::string full = fullRun();
    std::remove(path_.c_str());

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        SweepOptions opts;
        opts.checkpoint = path_;
        opts.progress = false;
        opts.isolation = Isolation::Process;
        WorkloadCache cache;
        opts.cache = &cache;
        SweepRunner(opts).run(smallPlan());
        _exit(0);
    }

    // Kill the sweep once at least one entry follows the header (so
    // the kill lands at a random later cell, possibly mid-append).
    for (int spins = 0; spins < 10'000; spins++) {
        std::ifstream is(path_);
        std::string line;
        size_t lines = 0;
        while (std::getline(is, line))
            lines++;
        if (lines >= 2)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);

    SweepOptions opts;
    opts.checkpoint = path_;
    opts.resume = true;
    opts.isolation = Isolation::Process;
    WorkloadCache cache;
    EXPECT_EQ(csvOf(sweep(smallPlan(), opts, cache)), full);

    // The rewritten journal is whole: a second resume restores all
    // cells and builds nothing.
    WorkloadCache cache2;
    EXPECT_EQ(csvOf(sweep(smallPlan(), opts, cache2)), full);
    EXPECT_EQ(cache2.builds(), 0u);
}

TEST_F(ResumeTest, ResumePreservesFailedResults)
{
    // A journaled failure stays a failure on resume — results are
    // restored verbatim, not re-judged.
    RunPlan plan = smallPlan();
    plan.injectFail(Technique::Dvr, InjectKind::Panic);

    SweepOptions opts;
    opts.checkpoint = path_;
    WorkloadCache cache;
    const std::string full = csvOf(sweep(plan, opts, cache));

    opts.resume = true;
    WorkloadCache cache2;
    ResultTable resumed = sweep(plan, opts, cache2);
    EXPECT_EQ(csvOf(resumed), full);
    EXPECT_EQ(cache2.builds(), 0u);
    EXPECT_EQ(resumed.at("camel", Technique::Dvr).status,
              SimStatus::Panic);
}

} // namespace
} // namespace vrsim
